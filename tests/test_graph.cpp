// Unit tests: topo::Graph algorithms.
#include <gtest/gtest.h>

#include "topo/graph.hpp"

namespace sdt::topo {
namespace {

Graph path(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.addEdge(i, i + 1);
  return g;
}

TEST(Graph, DegreesAndEdges) {
  Graph g(3);
  g.addEdge(0, 1, 2);
  g.addEdge(1, 2, 3);
  EXPECT_EQ(g.numEdges(), 2);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.weightedDegree(1), 5);
  EXPECT_EQ(g.other(0, 0), 1);
  EXPECT_EQ(g.other(0, 1), 0);
}

TEST(Graph, ParallelEdgesCounted) {
  Graph g(2);
  g.addEdge(0, 1);
  g.addEdge(0, 1);
  EXPECT_EQ(g.numEdges(), 2);
  EXPECT_EQ(g.degree(0), 2);
}

TEST(Graph, BfsDistances) {
  const Graph g = path(5);
  const auto d = g.bfsDistances(0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[4], 4);
}

TEST(Graph, UnreachableIsMinusOne) {
  Graph g(3);
  g.addEdge(0, 1);
  const auto d = g.bfsDistances(0);
  EXPECT_EQ(d[2], -1);
  EXPECT_FALSE(g.isConnected());
  EXPECT_EQ(g.componentCount(), 2);
}

TEST(Graph, Diameter) {
  EXPECT_EQ(path(6).diameter(), 5);
  Graph ring(6);
  for (int i = 0; i < 6; ++i) ring.addEdge(i, (i + 1) % 6);
  EXPECT_EQ(ring.diameter(), 3);
}

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_TRUE(g.isConnected());
  EXPECT_EQ(g.diameter(), 0);
  EXPECT_EQ(g.componentCount(), 0);
}

TEST(Graph, SingleVertex) {
  Graph g(1);
  EXPECT_TRUE(g.isConnected());
  EXPECT_EQ(g.componentCount(), 1);
}

}  // namespace
}  // namespace sdt::topo
