// Tests: the overload-robustness tier — admission::AdmissionController
// (credit buckets, priority classes, SLO-aware shedding), the datacenter
// serving workloads that drive it, the kOverload fault family, and the
// acceptance gate for this subsystem: an incast overload run must stay
// bit-identical between a serial and a K-worker parallel engine at fixed K.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "admission/admission.hpp"
#include "controller/controller.hpp"
#include "routing/shortest_path.hpp"
#include "sim/faults.hpp"
#include "testbed/evaluator.hpp"
#include "topo/generators.hpp"
#include "workloads/datacenter.hpp"

namespace sdt {
namespace {

using admission::AdmissionController;
using admission::Decision;
using admission::Policy;
using admission::Priority;
using workloads::ServingRuntime;

/// CI overload-soak knob: perturbs the serving-workload RNG so each soak
/// seed exercises a different arrival schedule. Unset => the default seed.
std::uint64_t workloadSeed() {
  const char* env = std::getenv("SDT_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0ULL;
}

TEST(AdmissionPolicy, DefaultValidatesAndOrdersClasses) {
  const Policy p;
  EXPECT_TRUE(p.validate().ok());
  // The whole point of the class table: gold is worth more per credit, has
  // the tightest SLO, and sheds last.
  const auto& gold = p.classes[admission::priorityIndex(Priority::kGold)];
  const auto& silver = p.classes[admission::priorityIndex(Priority::kSilver)];
  const auto& bronze = p.classes[admission::priorityIndex(Priority::kBronze)];
  EXPECT_GT(gold.utilityWeight, silver.utilityWeight);
  EXPECT_GT(silver.utilityWeight, bronze.utilityWeight);
  EXPECT_LT(gold.sloNs, silver.sloNs);
  EXPECT_LT(silver.sloNs, bronze.sloNs);
  EXPECT_GT(gold.shedAtPressure, silver.shedAtPressure);
  EXPECT_GT(silver.shedAtPressure, bronze.shedAtPressure);
}

TEST(AdmissionPolicy, ValidateRejectsEachBadKnob) {
  const auto expectBad = [](Policy p, const char* what) {
    EXPECT_FALSE(p.validate().ok()) << what;
  };
  Policy p;
  p.sampleInterval = 0;
  expectBad(p, "sampleInterval");
  p = {};
  p.queueHighWatermarkBytes = 0;
  expectBad(p, "watermark");
  p = {};
  p.pressureLowWater = 1.0;
  expectBad(p, "lowWater");
  p = {};
  p.creditRateFractionFloor = 0.0;
  expectBad(p, "floor");
  p = {};
  p.pressureSmoothing = 0.0;
  expectBad(p, "smoothing");
  p = {};
  p.pressureSmoothing = 1.5;
  expectBad(p, "smoothing high");
  p = {};
  p.creditBurstBytes = -1;
  expectBad(p, "burst");
  p = {};
  p.deferDelay = 0;
  expectBad(p, "deferDelay");
  p = {};
  p.maxDefers = -1;
  expectBad(p, "maxDefers");
  p = {};
  p.classes[1].utilityWeight = 0.0;
  expectBad(p, "weight");
  p = {};
  p.classes[2].sloNs = 0;
  expectBad(p, "slo");
  p = {};
  p.classes[0].shedAtPressure = 0.0;
  expectBad(p, "shedAt");
}

TEST(AdmissionController, DistributeThroughSdtController) {
  const topo::Topology topo = topo::makeLine(3);
  const routing::ShortestPathRouting routing(topo);
  auto plant = projection::planPlant({&topo}, {.numSwitches = 2});
  ASSERT_TRUE(plant.ok());
  auto inst = testbed::makeFullTestbed(topo, routing);
  AdmissionController adm(*inst.sim, inst.net());

  const controller::SdtController ctl(plant.value());
  Policy next;
  next.creditBurstBytes = 32 * kKiB;
  EXPECT_TRUE(ctl.distributeAdmissionPolicy(adm, next).ok());
  EXPECT_EQ(adm.policy().creditBurstBytes, 32 * kKiB);

  Policy bad = next;
  bad.classes[0].utilityWeight = -1.0;
  EXPECT_FALSE(ctl.distributeAdmissionPolicy(adm, bad).ok());
  // The invalid policy never reached the live controller.
  EXPECT_EQ(adm.policy().creditBurstBytes, 32 * kKiB);
  EXPECT_GT(adm.policy().classes[0].utilityWeight, 0.0);
}

/// Run `fn` inside host `h`'s shard context (request() asserts this).
template <typename Fn>
void onHostShard(testbed::Instance& inst, int h, Fn fn) {
  inst.sim->scheduleOn(inst.net().hostShard(h), 0, std::move(fn));
  inst.sim->run();
}

TEST(AdmissionController, DisabledPolicyAdmitsEverything) {
  const topo::Topology topo = topo::makeLine(2);
  const routing::ShortestPathRouting routing(topo);
  auto inst = testbed::makeFullTestbed(topo, routing);
  Policy p;
  p.enabled = false;
  AdmissionController adm(*inst.sim, inst.net(), p);
  onHostShard(inst, 0, [&]() {
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(adm.request(0, Priority::kBronze, 1 * kMiB), Decision::kAdmit);
    }
  });
  const auto cc = adm.classCounters(Priority::kBronze);
  EXPECT_EQ(cc.requested, 64u);
  EXPECT_EQ(cc.admitted, 64u);
  EXPECT_EQ(cc.deferred, 0u);
  EXPECT_EQ(cc.shed, 0u);
  EXPECT_EQ(cc.admittedBytes, 64 * kMiB);
}

TEST(AdmissionController, CreditBucketDrainsAndWeightsBuyBytes) {
  const topo::Topology topo = topo::makeLine(3);
  const routing::ShortestPathRouting routing(topo);
  auto inst = testbed::makeFullTestbed(topo, routing);
  AdmissionController adm(*inst.sim, inst.net());  // burst = 64 KiB of credits

  // Silver (weight 2): a 64 KiB flow charges 32 Ki credits -> exactly two
  // admits at t=0, then the bucket is dry and the third defers.
  onHostShard(inst, 0, [&]() {
    EXPECT_EQ(adm.request(0, Priority::kSilver, 64 * kKiB), Decision::kAdmit);
    EXPECT_EQ(adm.request(0, Priority::kSilver, 64 * kKiB), Decision::kAdmit);
    EXPECT_EQ(adm.request(0, Priority::kSilver, 64 * kKiB), Decision::kDefer);
  });
  // Gold (weight 4) buys twice the bytes per credit: four 64 KiB admits from
  // a different host's fresh bucket.
  onHostShard(inst, 1, [&]() {
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(adm.request(1, Priority::kGold, 64 * kKiB), Decision::kAdmit) << i;
    }
    EXPECT_EQ(adm.request(1, Priority::kGold, 64 * kKiB), Decision::kDefer);
  });
  EXPECT_EQ(adm.classCounters(Priority::kSilver).admitted, 2u);
  EXPECT_EQ(adm.classCounters(Priority::kSilver).deferred, 1u);
  EXPECT_EQ(adm.classCounters(Priority::kGold).admitted, 4u);
}

TEST(AdmissionController, BucketRefillsOverTime) {
  const topo::Topology topo = topo::makeLine(2);
  const routing::ShortestPathRouting routing(topo);
  auto inst = testbed::makeFullTestbed(topo, routing);
  AdmissionController adm(*inst.sim, inst.net());

  // Drain the bucket at t=0, then come back 100us later: at 100 Gbps line
  // rate the refill (~1.25 MB >> burst cap) restores a full bucket.
  const int shard = inst.net().hostShard(0);
  inst.sim->scheduleOn(shard, 0, [&]() {
    EXPECT_EQ(adm.request(0, Priority::kBronze, 64 * kKiB), Decision::kAdmit);
    EXPECT_EQ(adm.request(0, Priority::kBronze, 64 * kKiB), Decision::kDefer);
  });
  inst.sim->scheduleOn(shard, usToNs(100.0), [&]() {
    EXPECT_EQ(adm.request(0, Priority::kBronze, 64 * kKiB), Decision::kAdmit);
  });
  inst.sim->run();
  EXPECT_EQ(adm.classCounters(Priority::kBronze).admitted, 2u);
}

// ---- Integration: incast overload through the serving runtime -------------

struct OverloadOutcome {
  ServingRuntime::ClassStats totals;
  std::uint64_t drops = 0;
  double peakPressure = 0.0;
  std::uint64_t sheds = 0;       ///< admission-layer shed decisions, all classes
  std::uint64_t samples = 0;
  std::uint64_t statsDigest = 0;
  std::uint64_t events = 0;
};

/// Fat-tree k=4 run lossy (PFC off): 15 hosts incast one aggregator plus a
/// bronze background mix, `scale`x the nominal arrival rate, admission on or
/// off. The knob-free core of both the tests and bench_overload.
OverloadOutcome runIncast(bool admissionOn, double scale) {
  const topo::Topology topo = topo::makeFatTree(4);
  const routing::ShortestPathRouting routing(topo);
  testbed::InstanceOptions opt;
  opt.network.pfcEnabled = false;  // lossy: overload drops instead of pausing
  auto inst = testbed::makeFullTestbed(topo, routing, opt);

  Policy policy;
  policy.enabled = admissionOn;
  AdmissionController adm(*inst.sim, inst.net(), policy);

  workloads::ServingConfig cfg;
  cfg.duration = msToNs(4.0);
  cfg.seed += 0x9E3779B97F4A7C15ULL * workloadSeed();
  ServingRuntime rt(*inst.sim, inst.net(), *inst.transport, cfg);
  rt.setAdmission(&adm);

  // One round (15 x 8 KiB = 120 KiB) drains the aggregator's 10G edge port
  // in ~98us, so a 100us round interval pins saturation at scale 1.0 and
  // `scale` reads directly as multiples of capacity.
  workloads::IncastSpec incast;
  incast.aggregator = 0;
  for (int h = 1; h < topo.numHosts(); ++h) incast.senders.push_back(h);
  incast.bytesPerFlow = 8 * kKiB;
  incast.meanRoundInterval = usToNs(100.0);
  rt.addIncast(incast);

  workloads::BurstyMixSpec mix;
  for (int h = 0; h < topo.numHosts(); ++h) mix.hosts.push_back(h);
  rt.addBurstyMix(mix);

  rt.setRateScale(scale);
  adm.start(cfg.start + cfg.duration);
  rt.start();
  inst.sim->run();

  OverloadOutcome out;
  out.totals = rt.totalStats();
  out.peakPressure = adm.peakPressure();
  out.samples = adm.samplesTaken();
  out.statsDigest = rt.statsDigest();
  out.events = inst.sim->eventsProcessed();
  for (const Priority cls :
       {Priority::kGold, Priority::kSilver, Priority::kBronze}) {
    out.sheds += adm.classCounters(cls).shed;
  }
  for (int sw = 0; sw < inst.net().numSwitches(); ++sw) {
    for (int p = 0; p < inst.net().switchPortCount(sw); ++p) {
      out.drops += inst.net().switchPortCounters(sw, p).drops;
    }
  }
  return out;
}

TEST(Overload, AccountingBalancesAndSamplersRun) {
  const OverloadOutcome on = runIncast(true, 2.0);
  EXPECT_GT(on.totals.offered, 0u);
  // Every offered unit ends exactly one way.
  EXPECT_EQ(on.totals.offered, on.totals.admitted + on.totals.shed);
  EXPECT_GT(on.samples, 0u);           // samplers ticked on every shard
  EXPECT_GT(on.peakPressure, 0.0);     // an overloaded fabric showed pressure
  EXPECT_GT(on.totals.completed, 0u);
}

TEST(Overload, AdmissionShedsLowClassesUnderPressure) {
  const OverloadOutcome on = runIncast(true, 3.0);
  // 3x a saturating incast must push pressure past bronze's 0.6 threshold
  // and produce real shed decisions.
  EXPECT_GT(on.peakPressure, 0.6);
  EXPECT_GT(on.sheds, 0u);
  EXPECT_GT(on.totals.shed, 0u);
}

TEST(Overload, AdmissionProtectsTheFabric) {
  const OverloadOutcome off = runIncast(false, 3.0);
  const OverloadOutcome on = runIncast(true, 3.0);
  // Open loop with no brake piles bytes into lossy queues; the brake turns
  // fabric drops into edge decisions.
  EXPECT_GT(off.drops, 0u) << "baseline not overloaded; tests prove nothing";
  EXPECT_LT(on.drops, off.drops);
  // Goodput (completed units) must not collapse relative to the unbraked
  // run — the admitted subset actually finishes.
  EXPECT_GE(on.totals.completed * 2, off.totals.completed)
      << "admission destroyed goodput instead of protecting it";
  // And the braked run completes what it admits far more reliably.
  const double onRate = static_cast<double>(on.totals.completed) /
                        static_cast<double>(on.totals.admitted);
  const double offRate = static_cast<double>(off.totals.completed) /
                         static_cast<double>(off.totals.admitted);
  EXPECT_GT(onRate, offRate);
}

// ---- kOverload faults ------------------------------------------------------

TEST(OverloadFaults, StormScalesRatesThroughSink) {
  const topo::Topology topo = topo::makeFatTree(4);
  const routing::ShortestPathRouting routing(topo);
  testbed::InstanceOptions opt;
  opt.network.pfcEnabled = false;

  const auto offeredWith = [&](bool storm) {
    auto inst = testbed::makeFullTestbed(topo, routing, opt);
    workloads::ServingConfig cfg;
    cfg.duration = msToNs(4.0);
    ServingRuntime rt(*inst.sim, inst.net(), *inst.transport, cfg);
    workloads::IncastSpec incast;
    incast.aggregator = 0;
    for (int h = 1; h < topo.numHosts(); ++h) incast.senders.push_back(h);
    rt.addIncast(incast);
    sim::FaultInjector inj(*inst.sim, inst.net());
    rt.attachOverload(inj);
    if (storm) inj.flashCrowd(msToNs(1.0), msToNs(2.0), 8.0);
    inj.arm();
    // Overload faults are workload-side: they must NOT pin the engine serial.
    EXPECT_FALSE(inst.sim->serialRequired());
    rt.start();
    inst.sim->run();
    if (storm) {
      EXPECT_EQ(inj.trace().size(), 2u);
      if (inj.trace().size() == 2u) {
        EXPECT_EQ(inj.trace()[0].kind, sim::FaultKind::kOverloadStorm);
        EXPECT_DOUBLE_EQ(inj.trace()[0].intensity, 8.0);
        EXPECT_EQ(inj.trace()[1].kind, sim::FaultKind::kOverloadEnd);
      }
    }
    return rt.totalStats().offered;
  };

  const std::uint64_t calm = offeredWith(false);
  const std::uint64_t stormy = offeredWith(true);
  EXPECT_GT(stormy, calm + calm / 2) << "8x flash crowd barely moved load";
}

TEST(OverloadFaults, RogueTenantScalesOnlyItsOwner) {
  const topo::Topology topo = topo::makeFatTree(4);
  const routing::ShortestPathRouting routing(topo);
  auto inst = testbed::makeFullTestbed(topo, routing);
  workloads::ServingConfig cfg;
  cfg.duration = msToNs(3.0);
  ServingRuntime rt(*inst.sim, inst.net(), *inst.transport, cfg);
  // Two replication chains with different clients; host 2 goes rogue.
  workloads::ReplicationSpec a;
  a.client = 2;
  a.primary = 5;
  a.replicas = {9, 13};
  rt.addReplication(a);
  workloads::ReplicationSpec b = a;
  b.client = 3;
  b.primary = 6;
  rt.addReplication(b);
  sim::FaultInjector inj(*inst.sim, inst.net());
  rt.attachOverload(inj);
  inj.rogueTenant(0, msToNs(3.0), /*srcHost=*/2, /*intensity=*/6.0);
  inj.arm();
  rt.start();
  inst.sim->run();
  const auto total = rt.totalStats();
  EXPECT_GT(total.offered, 0u);
  ASSERT_EQ(inj.trace().size(), 2u);
  EXPECT_EQ(inj.trace()[0].srcHost, 2);
}

TEST(OverloadFaults, PhysicalFaultsStillPinSerial) {
  const topo::Topology topo = topo::makeLine(3);
  const routing::ShortestPathRouting routing(topo);
  auto inst = testbed::makeFullTestbed(topo, routing);
  sim::FaultInjector inj(*inst.sim, inst.net());
  inj.trafficStorm(usToNs(1.0), 2.0);
  inj.arm();
  EXPECT_FALSE(inst.sim->serialRequired());
  inj.downPort(usToNs(2.0), 0, 0);
  inj.arm();
  EXPECT_TRUE(inst.sim->serialRequired());
  EXPECT_TRUE(sim::faultKindNeedsSerial(sim::FaultKind::kPortDown));
  EXPECT_FALSE(sim::faultKindNeedsSerial(sim::FaultKind::kOverloadStorm));
  EXPECT_FALSE(sim::faultKindNeedsSerial(sim::FaultKind::kOverloadEnd));
}

// ---- The acceptance gate: serial == parallel on the overload path ---------

/// Scoped SDT_SHARDS / SDT_SIM_WORKERS override (same idiom as
/// test_determinism.cpp): geometry is read at Simulator construction.
class ShardEnvGuard {
 public:
  ShardEnvGuard(int shards, int workers) {
    setenv("SDT_SHARDS", std::to_string(shards).c_str(), 1);
    setenv("SDT_SIM_WORKERS", std::to_string(workers).c_str(), 1);
  }
  ~ShardEnvGuard() {
    restore("SDT_SHARDS", savedShards_);
    restore("SDT_SIM_WORKERS", savedWorkers_);
  }
  ShardEnvGuard(const ShardEnvGuard&) = delete;
  ShardEnvGuard& operator=(const ShardEnvGuard&) = delete;

 private:
  static std::optional<std::string> snapshot(const char* name) {
    const char* v = std::getenv(name);
    return v == nullptr ? std::nullopt : std::optional<std::string>(v);
  }
  static void restore(const char* name, const std::optional<std::string>& v) {
    if (v.has_value()) {
      setenv(name, v->c_str(), 1);
    } else {
      unsetenv(name);
    }
  }
  std::optional<std::string> savedShards_ = snapshot("SDT_SHARDS");
  std::optional<std::string> savedWorkers_ = snapshot("SDT_SIM_WORKERS");
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Everything observable about one overload run, folded to one word.
std::uint64_t overloadFingerprint(const OverloadOutcome& out) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = fnv1a(h, out.statsDigest);
  h = fnv1a(h, out.events);
  h = fnv1a(h, out.drops);
  h = fnv1a(h, out.sheds);
  h = fnv1a(h, out.samples);
  h = fnv1a(h, static_cast<std::uint64_t>(out.peakPressure * 1e9));
  h = fnv1a(h, out.totals.offered);
  h = fnv1a(h, out.totals.completed);
  h = fnv1a(h, out.totals.sloHit);
  h = fnv1a(h, out.totals.sloMiss);
  h = fnv1a(h, out.totals.latencySumNs);
  return h;
}

TEST(OverloadDeterminism, IncastBitIdenticalSerialVsParallelAtSameK) {
  // The whole admission signal path (sampler -> broker -> broadcast) plus
  // the serving workloads' cross-shard completion chains must be exactly as
  // deterministic as the data plane: at fixed K, 1 worker == K workers.
  for (const int k : {2, 4}) {
    std::uint64_t serial = 0;
    std::uint64_t parallel = 0;
    {
      const ShardEnvGuard env(k, 1);
      serial = overloadFingerprint(runIncast(true, 3.0));
    }
    {
      const ShardEnvGuard env(k, k);
      parallel = overloadFingerprint(runIncast(true, 3.0));
    }
    EXPECT_EQ(parallel, serial) << "K=" << k << " overload run diverged";
  }
}

TEST(OverloadDeterminism, ShardedOverloadRunsAreRepeatable) {
  const auto once = []() {
    const ShardEnvGuard env(4, 4);
    return overloadFingerprint(runIncast(true, 2.0));
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace sdt
