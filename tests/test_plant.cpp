// Tests: physical plant construction and validation.
#include <gtest/gtest.h>

#include "projection/plant.hpp"

namespace sdt::projection {
namespace {

TEST(Plant, BuildCanonical) {
  PlantConfig cfg;
  cfg.numSwitches = 3;
  cfg.spec = openflow64x100G();
  cfg.hostPortsPerSwitch = 11;
  cfg.interLinksPerPair = 8;
  auto plant = buildPlant(cfg);
  ASSERT_TRUE(plant.ok()) << plant.error().message;
  const Plant& p = plant.value();
  EXPECT_EQ(p.numSwitches(), 3);
  // Inter: 8 per pair * 3 pairs.
  EXPECT_EQ(p.interLinks.size(), 24u);
  EXPECT_EQ(p.hostPorts.size(), 33u);
  // Per switch: 64 - 16 inter - 11 host = 37 -> 18 self-links (one spare port).
  EXPECT_EQ(p.selfLinksOf(0).size(), 18u);
  EXPECT_EQ(p.interLinksBetween(0, 1).size(), 8u);
  EXPECT_EQ(p.interLinksBetween(1, 0).size(), 8u);
  EXPECT_EQ(p.hostPortsOf(2).size(), 11u);
  EXPECT_TRUE(p.validate().ok());
  EXPECT_DOUBLE_EQ(p.totalCostUsd(), 15000.0);
}

TEST(Plant, SingleSwitchNoInterLinks) {
  PlantConfig cfg;
  cfg.numSwitches = 1;
  cfg.spec = openflow64x100G();
  cfg.hostPortsPerSwitch = 4;
  cfg.interLinksPerPair = 8;  // no pairs exist
  auto plant = buildPlant(cfg);
  ASSERT_TRUE(plant.ok());
  EXPECT_TRUE(plant.value().interLinks.empty());
  EXPECT_EQ(plant.value().selfLinksOf(0).size(), 30u);
}

TEST(Plant, RejectsOverSubscription) {
  PlantConfig cfg;
  cfg.numSwitches = 2;
  cfg.spec = openflow64x100G();
  cfg.hostPortsPerSwitch = 70;  // more than the switch has
  EXPECT_FALSE(buildPlant(cfg).ok());
}

TEST(Plant, RejectsNegativeReservations) {
  PlantConfig cfg;
  cfg.hostPortsPerSwitch = -1;
  EXPECT_FALSE(buildPlant(cfg).ok());
}

TEST(Plant, ValidateCatchesDoubleUse) {
  Plant p;
  p.switches = {openflow64x100G()};
  p.selfLinks.push_back(PhysLink{{0, 0}, {0, 1}});
  p.hostPorts.push_back(PhysPort{0, 1});  // port 1 used twice
  EXPECT_FALSE(p.validate().ok());
}

TEST(Plant, ValidateCatchesCrossSwitchSelfLink) {
  Plant p;
  p.switches = {openflow64x100G(), openflow64x100G()};
  p.selfLinks.push_back(PhysLink{{0, 0}, {1, 0}});
  EXPECT_FALSE(p.validate().ok());
}

TEST(Plant, SpecCatalog) {
  EXPECT_EQ(openflow64x100G().numPorts, 64);
  EXPECT_EQ(openflow128x100G().numPorts, 128);
  EXPECT_GT(p4Switch64x100G().costUsd, openflow64x100G().costUsd);
  EXPECT_EQ(p4Switch128x100G().kind, SwitchKind::kP4);
  EXPECT_DOUBLE_EQ(h3cS6861().portSpeed.value, 10.0);
  EXPECT_EQ(mems320().numPorts, 320);
}

}  // namespace
}  // namespace sdt::projection
