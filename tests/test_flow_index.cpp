// Differential tests for the FlowTable exact-match index: the indexed
// lookup path must return exactly the entry a pure priority-ordered linear
// scan would, on both controller-compiled tables (the (inPort, dstAddr)
// shape the index is built for) and adversarial synthetic tables full of
// wildcards, priority ties, and mid-stream mutations.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "controller/controller.hpp"
#include "openflow/flow_table.hpp"
#include "routing/shortest_path.hpp"
#include "topo/generators.hpp"

namespace sdt::openflow {
namespace {

/// The pre-index semantics, verbatim: entries are kept sorted by descending
/// priority with stable insertion order, so the first match wins.
const FlowEntry* referenceLookup(const FlowTable& table, const PacketHeader& h) {
  for (const FlowEntry& e : table.entries()) {
    if (e.match.matches(h)) return &e;
  }
  return nullptr;
}

/// Build a header that matches `e` on every concrete field, with random
/// values elsewhere; optionally perturb one field afterwards so roughly half
/// the probes hit a different (or no) entry.
PacketHeader headerNear(const FlowEntry& e, Rng& rng, bool perturb) {
  PacketHeader h;
  h.inPort = e.match.inPort.value_or(static_cast<int>(rng.below(16)));
  h.srcAddr = e.match.srcAddr.value_or(static_cast<std::uint32_t>(rng.below(32)));
  h.dstAddr = e.match.dstAddr.value_or(static_cast<std::uint32_t>(rng.below(32)));
  h.srcPort = e.match.srcPort.value_or(static_cast<std::uint16_t>(rng.below(8)));
  h.dstPort = e.match.dstPort.value_or(static_cast<std::uint16_t>(rng.below(8)));
  h.protocol = e.match.protocol.value_or(static_cast<std::uint8_t>(rng.below(4)));
  h.trafficClass =
      e.match.trafficClass.value_or(static_cast<std::uint8_t>(rng.below(8)));
  if (perturb) {
    switch (rng.below(4)) {
      case 0: h.inPort = static_cast<int>(rng.below(16)); break;
      case 1: h.dstAddr = static_cast<std::uint32_t>(rng.below(32)); break;
      case 2: h.srcAddr = static_cast<std::uint32_t>(rng.below(32)); break;
      default: h.trafficClass = static_cast<std::uint8_t>(rng.below(8)); break;
    }
  }
  return h;
}

void checkDifferential(const FlowTable& table, Rng& rng, int probes) {
  ASSERT_GT(table.size(), 0u);
  for (int i = 0; i < probes; ++i) {
    const FlowEntry& seed =
        table.entries()[rng.below(table.entries().size())];
    const PacketHeader h = headerNear(seed, rng, rng.below(2) == 0);
    const FlowEntry* expect = referenceLookup(table, h);
    const FlowEntry* got = table.lookup(h);
    ASSERT_EQ(got, expect) << "probe " << i << " diverged: indexed lookup "
                           << (got ? got->match.describe() : "miss")
                           << " vs scan "
                           << (expect ? expect->match.describe() : "miss");
  }
}

FlowEntry randomEntry(Rng& rng, std::uint64_t cookie) {
  FlowEntry e;
  e.priority = static_cast<int>(rng.below(8));  // force plenty of ties
  e.cookie = cookie;
  // Each field independently wildcarded; small value domains so entries
  // overlap and shadow each other.
  if (rng.below(4) != 0) e.match.inPort = static_cast<int>(rng.below(16));
  if (rng.below(4) != 0) e.match.dstAddr = static_cast<std::uint32_t>(rng.below(32));
  if (rng.below(8) == 0) e.match.srcAddr = static_cast<std::uint32_t>(rng.below(32));
  if (rng.below(8) == 0) e.match.srcPort = static_cast<std::uint16_t>(rng.below(8));
  if (rng.below(8) == 0) e.match.dstPort = static_cast<std::uint16_t>(rng.below(8));
  if (rng.below(8) == 0) e.match.protocol = static_cast<std::uint8_t>(rng.below(4));
  if (rng.below(6) == 0)
    e.match.trafficClass = static_cast<std::uint8_t>(rng.below(8));
  e.actions.push_back(Action::output(static_cast<int>(rng.below(16))));
  return e;
}

TEST(FlowIndex, MatchesLinearScanOnRandomizedTables) {
  Rng rng(0xF10D1F10Du);
  for (int trial = 0; trial < 8; ++trial) {
    FlowTable table(4096);
    const std::size_t n = 32 + rng.below(480);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(table.add(randomEntry(rng, i)).ok());
    }
    checkDifferential(table, rng, 2000);  // 16k probes across the trials
  }
}

TEST(FlowIndex, MatchesLinearScanOnControllerCompiledTables) {
  // The real deal: tables produced by LinkProjector + routing compilation,
  // where every entry matches (inPort, dstAddr) — the indexed fast path.
  const topo::Topology topo = topo::makeFatTree(4);
  const routing::ShortestPathRouting routing(topo);
  auto plant = projection::planPlant({&topo}, {.numSwitches = 3});
  ASSERT_TRUE(plant.ok()) << plant.error().message;
  const controller::SdtController ctl(std::move(plant).value());
  auto deployment = ctl.deploy(topo, routing);
  ASSERT_TRUE(deployment.ok()) << deployment.error().message;

  Rng rng(0xC0117011u);
  int probes = 0;
  for (const auto& sw : deployment.value().switches) {
    if (sw->table().size() == 0) continue;
    checkDifferential(sw->table(), rng, 4000);
    probes += 4000;
  }
  EXPECT_GE(probes, 10000) << "not enough populated tables to be meaningful";
}

TEST(FlowIndex, SurvivesMutationBetweenLookups) {
  Rng rng(0xDEADBEA7u);
  FlowTable table(4096);
  for (std::size_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(table.add(randomEntry(rng, i % 16)).ok());
  }
  checkDifferential(table, rng, 500);
  // Interleave removals / inserts with differential probes: every mutation
  // must invalidate the index.
  for (int round = 0; round < 12; ++round) {
    if (rng.below(2) == 0) {
      table.removeByCookie(rng.below(16));
    } else {
      ASSERT_TRUE(table.add(randomEntry(rng, rng.below(16))).ok());
    }
    if (table.size() > 0) checkDifferential(table, rng, 500);
  }
  table.clear();
  PacketHeader any;
  EXPECT_EQ(table.lookup(any), nullptr);
}

TEST(FlowIndex, EagerBuildIndexMatchesLazy) {
  Rng rng(0x5EED5EEDu);
  FlowTable lazy(4096);
  FlowTable eager(4096);
  for (std::uint64_t i = 0; i < 200; ++i) {
    FlowEntry e = randomEntry(rng, i);
    ASSERT_TRUE(lazy.add(e).ok());
    ASSERT_TRUE(eager.add(std::move(e)).ok());
  }
  eager.buildIndex();  // the pre-sharing hook for concurrent readers
  for (int i = 0; i < 2000; ++i) {
    const FlowEntry& seed = lazy.entries()[rng.below(lazy.entries().size())];
    const PacketHeader h = headerNear(seed, rng, rng.below(2) == 0);
    const FlowEntry* a = lazy.lookup(h);
    const FlowEntry* b = eager.lookup(h);
    // Different tables, so compare by position, not pointer.
    const auto pos = [](const FlowTable& t, const FlowEntry* e) {
      return e == nullptr ? -1 : static_cast<long>(e - t.entries().data());
    };
    ASSERT_EQ(pos(lazy, a), pos(eager, b));
  }
}

}  // namespace
}  // namespace sdt::openflow
