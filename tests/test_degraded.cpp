// Tests: routing::DegradedRouting — the algorithm SdtController::repair()
// swaps in when a failed physical link has no spare to re-project onto.
// Covers the repair-path corners the controller relies on: the VC dimension
// of the routing being replaced is preserved (recompiled tables keep their
// per-VC shape), overlapping severed-link sets across independent instances
// don't bleed into each other, and pairs the damage disconnects are
// *reported* (nextHop errors, empty candidates) rather than black-holed
// into a dead port.
#include <gtest/gtest.h>

#include <cstdint>

#include "routing/degraded.hpp"
#include "topo/generators.hpp"

namespace sdt::routing {
namespace {

/// Index into Topology::links() of the (unique) link between two switches.
int linkBetween(const topo::Topology& topo, topo::SwitchId a, topo::SwitchId b) {
  for (int li = 0; li < static_cast<int>(topo.links().size()); ++li) {
    const topo::Link& link = topo.link(li);
    if ((link.a.sw == a && link.b.sw == b) || (link.a.sw == b && link.b.sw == a)) {
      return li;
    }
  }
  ADD_FAILURE() << "no link between switch " << a << " and " << b;
  return -1;
}

TEST(Degraded, PreservesVcDimension) {
  // Repair replaces e.g. a 2-VC torus routing; the degraded stand-in must
  // keep numVcs()==2 and pass the requested VC through unchanged so the
  // recompiled flow entries still match per (in_port, dst, vc).
  const topo::Topology topo = topo::makeRing(6);
  DegradedRouting algo(topo, {linkBetween(topo, 0, 1)}, /*numVcs=*/2);
  EXPECT_EQ(algo.numVcs(), 2);
  for (int vc = 0; vc < 2; ++vc) {
    auto hop = algo.nextHop(/*sw=*/0, /*dst=*/3, vc, /*flowHash=*/7);
    ASSERT_TRUE(hop.ok()) << hop.error().message;
    EXPECT_EQ(hop.value().vc, vc);
  }
}

TEST(Degraded, RoutesAroundSeveredLink) {
  // Ring-6 minus one link is a line: every pair stays reachable, and the
  // pair the severed link used to join goes all the way around.
  const topo::Topology topo = topo::makeRing(6);
  DegradedRouting algo(topo, {linkBetween(topo, 0, 1)}, /*numVcs=*/2);
  for (topo::HostId src = 0; src < topo.numHosts(); ++src) {
    for (topo::HostId dst = 0; dst < topo.numHosts(); ++dst) {
      if (src == dst) continue;
      EXPECT_TRUE(algo.reachable(topo.hostSwitch(src), dst)) << src << "->" << dst;
    }
  }
  auto path = algo.tracePath(/*src=*/0, /*dst=*/1);
  ASSERT_TRUE(path.ok()) << path.error().message;
  EXPECT_EQ(path.value().size(), 6u);  // 0-5-4-3-2-1: the long way
}

TEST(Degraded, OverlappingSeveredSetsStayIndependent) {
  // Two repairs of the same topology with overlapping damage (both lost
  // link B, only one lost A / C) must each route around exactly their own
  // set — severedMask_ state is per-instance, not shared.
  const topo::Topology topo = topo::makeTorus2D(3, 3);
  const int a = linkBetween(topo, 0, 1);
  const int b = linkBetween(topo, 1, 2);
  const int c = linkBetween(topo, 3, 4);
  DegradedRouting first(topo, {a, b}, /*numVcs=*/2);
  DegradedRouting second(topo, {b, c}, /*numVcs=*/2);

  EXPECT_TRUE(first.isSevered(a));
  EXPECT_TRUE(first.isSevered(b));
  EXPECT_FALSE(first.isSevered(c));
  EXPECT_TRUE(second.isSevered(b));
  EXPECT_TRUE(second.isSevered(c));
  EXPECT_FALSE(second.isSevered(a));

  // A 3x3 torus is 4-regular: two lost links leave every pair connected in
  // both instances, and neither instance's candidates ride a link it lost.
  for (topo::HostId src = 0; src < topo.numHosts(); ++src) {
    for (topo::HostId dst = 0; dst < topo.numHosts(); ++dst) {
      if (src == dst) continue;
      EXPECT_TRUE(first.reachable(topo.hostSwitch(src), dst));
      EXPECT_TRUE(second.reachable(topo.hostSwitch(src), dst));
    }
  }
  // Switch 1 lost its links to 0 and 2 in `first` but only to 2 in `second`.
  const topo::PortId toSw0 =
      (topo.link(a).a.sw == 1 ? topo.link(a).a : topo.link(a).b).port;
  for (topo::HostId dst = 0; dst < topo.numHosts(); ++dst) {
    if (topo.hostSwitch(dst) == 1) continue;
    for (const topo::PortId port : first.candidates(1, dst)) {
      EXPECT_NE(port, toSw0) << "first routed onto its own severed link";
    }
  }
}

TEST(Degraded, DuplicateSeveredIndicesCollapse) {
  // repair() can feed the same logical link twice (both physical ends of a
  // cut cable map to it); duplicates must behave like a single severing.
  const topo::Topology topo = topo::makeTorus2D(3, 3);
  const int a = linkBetween(topo, 0, 1);
  DegradedRouting once(topo, {a}, /*numVcs=*/2);
  DegradedRouting twice(topo, {a, a, a}, /*numVcs=*/2);
  for (topo::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (topo::HostId dst = 0; dst < topo.numHosts(); ++dst) {
      if (topo.hostSwitch(dst) == sw) continue;
      EXPECT_EQ(once.candidates(sw, dst), twice.candidates(sw, dst))
          << "sw " << sw << " dst " << dst;
    }
  }
}

TEST(Degraded, UnreachablePairsErrorInsteadOfBlackHoling) {
  // Sever both of switch 1's ring links: its host is cut off. The contract
  // (relied on by repair()'s unreachablePairs report) is an explicit nextHop
  // error and an empty candidate set — never a Hop onto a dead port.
  const topo::Topology topo = topo::makeRing(6);
  const std::vector<int> cut = {linkBetween(topo, 0, 1), linkBetween(topo, 1, 2)};
  DegradedRouting algo(topo, cut, /*numVcs=*/2);

  const topo::HostId marooned = 1;  // hosts attach one per switch, in order
  ASSERT_EQ(topo.hostSwitch(marooned), 1);
  for (topo::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    if (sw == 1) continue;
    EXPECT_FALSE(algo.reachable(sw, marooned));
    EXPECT_TRUE(algo.candidates(sw, marooned).empty());
    for (int vc = 0; vc < algo.numVcs(); ++vc) {
      auto hop = algo.nextHop(sw, marooned, vc, /*flowHash=*/3);
      EXPECT_FALSE(hop.ok()) << "black-hole hop from switch " << sw;
    }
  }
  // The marooned switch can't send out either, but switches on the surviving
  // arc still reach each other.
  EXPECT_FALSE(algo.nextHop(1, /*dst=*/4, 0, 0).ok());
  EXPECT_TRUE(algo.nextHop(2, /*dst=*/4, 0, 0).ok());
}

}  // namespace
}  // namespace sdt::routing
