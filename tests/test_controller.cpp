// Tests: SDT controller — config loading, checking function, deployment
// (flow-table compilation, capacity guard, deadlock gate), reconfiguration.
#include <gtest/gtest.h>

#include "controller/config.hpp"
#include "controller/controller.hpp"
#include "routing/shortest_path.hpp"
#include "topo/generators.hpp"

namespace sdt::controller {
namespace {

projection::Plant plantOf(int switches, int hostPorts, int inter,
                          projection::PhysicalSwitchSpec spec =
                              projection::openflow64x100G()) {
  projection::PlantConfig cfg;
  cfg.numSwitches = switches;
  cfg.spec = spec;
  cfg.hostPortsPerSwitch = hostPorts;
  cfg.interLinksPerPair = inter;
  auto p = projection::buildPlant(cfg);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

TEST(Config, TopologyFromJsonFamilies) {
  const auto build = [](const char* text) {
    auto doc = json::parse(text);
    EXPECT_TRUE(doc.ok());
    return topologyFromJson(doc.value());
  };
  auto ft = build(R"({"type": "fattree", "k": 4})");
  ASSERT_TRUE(ft.ok());
  EXPECT_EQ(ft.value().numSwitches(), 20);
  auto df = build(R"({"type": "dragonfly", "a": 4, "g": 9, "h": 2})");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df.value().numSwitches(), 36);
  auto t3 = build(R"({"type": "torus3d", "x": 4, "y": 4, "z": 4})");
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ(t3.value().numLinks(), 192);
  auto line = build(R"({"type": "line", "n": 8, "link_gbps": 25})");
  ASSERT_TRUE(line.ok());
  EXPECT_DOUBLE_EQ(line.value().link(0).speed.value, 25.0);
  auto zoo = build(R"({"type": "zoo", "index": 5})");
  ASSERT_TRUE(zoo.ok());
}

TEST(Config, CustomTopology) {
  auto doc = json::parse(R"({
    "type": "custom", "name": "tri", "switches": 3,
    "links": [[0,1],[1,2],[2,0]], "hosts": [0, 2]
  })");
  ASSERT_TRUE(doc.ok());
  auto t = topologyFromJson(doc.value());
  ASSERT_TRUE(t.ok()) << t.error().message;
  EXPECT_EQ(t.value().numSwitches(), 3);
  EXPECT_EQ(t.value().numLinks(), 3);
  EXPECT_EQ(t.value().numHosts(), 2);
}

TEST(Config, RejectsBadSpecs) {
  const auto tryBuild = [](const char* text) {
    auto doc = json::parse(text);
    EXPECT_TRUE(doc.ok());
    return topologyFromJson(doc.value()).ok();
  };
  EXPECT_FALSE(tryBuild(R"({"type": "fattree", "k": 5})"));   // odd k
  EXPECT_FALSE(tryBuild(R"({"type": "dragonfly", "a": 2, "g": 9, "h": 2})"));
  EXPECT_FALSE(tryBuild(R"({"type": "nope"})"));
  EXPECT_FALSE(tryBuild(R"({"type": "zoo", "index": 999})"));
  EXPECT_FALSE(tryBuild(R"({"type": "custom", "switches": 2, "links": [[0,5]]})"));
}

TEST(Config, ExperimentKnobs) {
  auto doc = json::parse(R"({
    "topology": {"type": "line", "n": 8},
    "routing": "shortest", "pfc": false, "dcqcn": false, "cut_through": false
  })");
  ASSERT_TRUE(doc.ok());
  auto cfg = parseExperimentConfig(doc.value());
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg.value().routingStrategy, "shortest");
  sim::NetworkConfig net;
  applyFabricKnobs(cfg.value(), net);
  EXPECT_FALSE(net.pfcEnabled);
  EXPECT_FALSE(net.ecnEnabled);
  EXPECT_FALSE(net.cutThrough);
}

TEST(Controller, DeployLineTopology) {
  const topo::Topology topo = topo::makeLine(8);
  routing::ShortestPathRouting routing(topo);
  SdtController ctl(plantOf(2, 8, 8));
  auto dep = ctl.deploy(topo, routing);
  ASSERT_TRUE(dep.ok()) << dep.error().message;
  EXPECT_GT(dep.value().totalFlowEntries, 0);
  EXPECT_EQ(dep.value().switches.size(), 2u);
  // Modeled reconfiguration time in the paper's 100ms~1s envelope.
  EXPECT_GE(dep.value().reconfigTime, msToNs(80.0));
  EXPECT_LE(dep.value().reconfigTime, secToNs(1.0));
}

TEST(Controller, FlowTablesForwardEveryPair) {
  // Walk every host pair through the programmed tables by hand.
  const topo::Topology topo = topo::makeLine(4);
  routing::ShortestPathRouting routing(topo);
  SdtController ctl(plantOf(1, 4, 0));
  auto dep = ctl.deploy(topo, routing);
  ASSERT_TRUE(dep.ok()) << dep.error().message;
  const auto& deployment = dep.value();
  for (topo::HostId src = 0; src < 4; ++src) {
    for (topo::HostId dst = 0; dst < 4; ++dst) {
      if (src == dst) continue;
      // Start at src's host port.
      projection::PhysPort at = deployment.projection.hostPortOf(src);
      int hops = 0;
      while (true) {
        ASSERT_LT(++hops, 16) << "loop " << src << "->" << dst;
        openflow::PacketHeader h;
        h.inPort = at.port;
        h.srcAddr = static_cast<std::uint32_t>(src);
        h.dstAddr = static_cast<std::uint32_t>(dst);
        const auto decision = deployment.switches[at.sw]->process(h, 100);
        ASSERT_TRUE(decision.matched) << src << "->" << dst << " at port " << at.port;
        ASSERT_FALSE(decision.drop);
        const projection::PhysPort out{at.sw, decision.outPort};
        if (out == deployment.projection.hostPortOf(dst)) break;  // delivered
        // Otherwise we must be on a fabric link: hop across it.
        const auto logical = deployment.projection.logicalAt(out);
        ASSERT_TRUE(logical.has_value());
        const auto peer = topo.neighborOf(*logical);
        ASSERT_TRUE(peer.has_value());
        at = deployment.projection.physOf(*peer);
      }
    }
  }
}

TEST(Controller, CapacityGuardRefusesTinyTables) {
  const topo::Topology topo = topo::makeFatTree(4);
  routing::ShortestPathRouting routing(topo);
  projection::PhysicalSwitchSpec tiny = projection::openflow128x100G();
  tiny.flowTableCapacity = 50;
  SdtController ctl(plantOf(2, 10, 12, tiny));
  auto dep = ctl.deploy(topo, routing);
  ASSERT_FALSE(dep.ok());
  EXPECT_NE(dep.error().message.find("flow entries"), std::string::npos);
}

TEST(Controller, DeadlockGateBlocksCyclicRouting) {
  const topo::Topology ring = topo::makeRing(6);
  routing::ShortestPathRouting routing(ring);  // cyclic CDG on a ring
  SdtController ctl(plantOf(1, 6, 0));
  DeployOptions opt;
  opt.requireDeadlockFree = true;
  EXPECT_FALSE(ctl.deploy(ring, routing, opt).ok());
  opt.requireDeadlockFree = false;  // lossy network: allowed
  EXPECT_TRUE(ctl.deploy(ring, routing, opt).ok());
}

TEST(Controller, CheckReportsResourceDemands) {
  const topo::Topology a = topo::makeLine(8);
  const topo::Topology b = topo::makeRing(8);
  SdtController ctl(plantOf(2, 8, 8));
  const CheckReport report = ctl.check({&a, &b});
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? "" : report.problems[0]);
  EXPECT_GT(report.maxSelfLinksPerSwitch, 0);
  EXPECT_GT(report.maxHostPortsPerSwitch, 0);
}

TEST(Controller, CheckFlagsInfeasibleTopology) {
  const topo::Topology big = topo::makeFullMesh(24);  // 276 links >> plant
  SdtController ctl(plantOf(2, 8, 8));
  const CheckReport report = ctl.check({&big});
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.problems.empty());
}

TEST(Controller, ReconfigureNeverMovesCables) {
  // Deploy A, then B on the same plant: pure table work. The reconfig cost
  // is the incremental per-switch diff, which must be strictly cheaper than
  // the teardown+reinstall it replaced (line and ring share most rules).
  const topo::Topology a = topo::makeLine(8);
  const topo::Topology b = topo::makeRing(8);
  routing::ShortestPathRouting ra(a);
  routing::ShortestPathRouting rb(b);
  SdtController ctl(plantOf(2, 8, 8));
  auto da = ctl.deploy(a, ra, {.requireDeadlockFree = true});
  ASSERT_TRUE(da.ok());
  auto db = ctl.reconfigure(da.value(), b, rb, {.requireDeadlockFree = false});
  ASSERT_TRUE(db.ok()) << db.error().message;
  EXPECT_GT(db.value().reconfigFlowMods, 0);
  EXPECT_LT(db.value().reconfigFlowMods,
            da.value().totalFlowEntries + db.value().totalFlowEntries);
  EXPECT_GT(db.value().reconfigTime, 0);
  EXPECT_LE(db.value().reconfigTime, secToNs(1.5));
}

TEST(Controller, ReconfigureToSameTopologyIsFree) {
  // The diff of a deployment against an identical recompile is empty: zero
  // flow-mods, only the fixed barrier round-trip cost of the update model.
  const topo::Topology a = topo::makeLine(8);
  routing::ShortestPathRouting ra(a);
  SdtController ctl(plantOf(2, 8, 8));
  auto da = ctl.deploy(a, ra);
  ASSERT_TRUE(da.ok());
  auto again = ctl.reconfigure(da.value(), a, ra);
  ASSERT_TRUE(again.ok()) << again.error().message;
  EXPECT_EQ(again.value().reconfigFlowMods, 0);
  EXPECT_LE(again.value().reconfigTime, da.value().reconfigTime);
}

TEST(Controller, EntriesScaleIsSane) {
  // §VII-C ballpark: FT k=4 on 2 switches needs hundreds (not tens of
  // thousands) of entries per switch.
  const topo::Topology topo = topo::makeFatTree(4);
  routing::ShortestPathRouting routing(topo);
  SdtController ctl(plantOf(2, 10, 12, projection::openflow128x100G()));
  auto dep = ctl.deploy(topo, routing);
  ASSERT_TRUE(dep.ok()) << dep.error().message;
  EXPECT_GT(dep.value().maxEntriesPerSwitch, 100);
  EXPECT_LT(dep.value().maxEntriesPerSwitch, 5000);
}

}  // namespace
}  // namespace sdt::controller
