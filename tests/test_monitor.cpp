// Tests: Network Monitor telemetry (§V-3) and its adaptive-routing oracle.
#include <gtest/gtest.h>

#include "controller/monitor.hpp"
#include "obs/metrics.hpp"
#include "sim/faults.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/transport.hpp"
#include "topo/generators.hpp"

namespace sdt::controller {
namespace {

TEST(Monitor, ObservesCongestedPort) {
  sim::Simulator sim;
  const topo::Topology topo = topo::makeLine(3);
  routing::ShortestPathRouting routing(topo);
  sim::NetworkConfig cfg;
  auto built = sim::buildLogicalNetwork(sim, topo, routing, cfg);
  sim::TransportManager transport(sim, *built.net, {});

  NetworkMonitor monitor(sim, *built.net, topo);
  monitor.start(usToNs(5.0));

  // Saturate host0 -> host2 (through both fabric links) plus host1 -> host2.
  transport.sendMessage(0, 2, 2 * kMiB, 0, {});
  transport.sendMessage(1, 2, 2 * kMiB, 0, {});
  sim.runUntil(msToNs(1.0));
  monitor.stop();

  EXPECT_GT(monitor.samplesTaken(), 100u);
  // Switch 1's egress toward switch 2 carries both flows: it must show the
  // highest load among fabric ports.
  const auto link12 = topo.linkAt(topo::SwitchPort{1, 1});
  ASSERT_TRUE(link12.has_value());
  double congested = monitor.load(1, 1);
  EXPECT_GT(congested, 0.0);
  // The reverse-direction port at switch 2 only carries ACK/CNP traffic.
  EXPECT_GT(congested, monitor.load(2, 0) + 1.0);

  const routing::CongestionOracle oracle = monitor.oracle();
  EXPECT_DOUBLE_EQ(oracle(1, 1), congested);
}

TEST(Monitor, StopEndsSampling) {
  sim::Simulator sim;
  const topo::Topology topo = topo::makeLine(2);
  routing::ShortestPathRouting routing(topo);
  auto built = sim::buildLogicalNetwork(sim, topo, routing, {});
  NetworkMonitor monitor(sim, *built.net, topo);
  monitor.start(usToNs(10.0));
  sim.runUntil(usToNs(100.0));
  monitor.stop();
  const auto samples = monitor.samplesTaken();
  sim.run();  // queue must drain (monitor no longer reschedules)
  EXPECT_EQ(monitor.samplesTaken(), samples);
}

TEST(Monitor, RestartDoesNotDoubleChain) {
  sim::Simulator sim;
  const topo::Topology topo = topo::makeLine(2);
  routing::ShortestPathRouting routing(topo);
  auto built = sim::buildLogicalNetwork(sim, topo, routing, {});
  NetworkMonitor monitor(sim, *built.net, topo);
  monitor.start(usToNs(10.0));
  sim.runUntil(usToNs(95.0));
  const auto before = monitor.samplesTaken();
  EXPECT_GE(before, 9u);
  // Restart while the old chain's next sample event is still queued: the
  // epoch guard must kill the stale chain, leaving exactly one.
  monitor.stop();
  monitor.start(usToNs(10.0));
  sim.runUntil(usToNs(195.0));
  const auto after = monitor.samplesTaken() - before;
  EXPECT_GE(after, 9u);
  EXPECT_LE(after, 10u);  // a doubled chain would take ~20
}

// Regression: an out-of-range load() used to return 0.0 silently —
// indistinguishable from a genuinely idle port. It still returns 0.0 (the
// adaptive-routing oracle must stay total) but every such query is now
// counted, and the counter is visible through an attached registry.
TEST(Monitor, OutOfRangeQueriesAreCounted) {
  sim::Simulator sim;
  const topo::Topology topo = topo::makeLine(2);
  routing::ShortestPathRouting routing(topo);
  auto built = sim::buildLogicalNetwork(sim, topo, routing, {});
  NetworkMonitor monitor(sim, *built.net, topo);
  obs::Registry registry;
  monitor.attachMetrics(registry);

  EXPECT_EQ(monitor.oobQueries(), 0u);
  EXPECT_DOUBLE_EQ(monitor.load(0, 99), 0.0);  // bad port
  EXPECT_EQ(monitor.oobQueries(), 1u);
  EXPECT_DOUBLE_EQ(monitor.load(99, 0), 0.0);  // bad switch
  EXPECT_EQ(monitor.oobQueries(), 2u);
  // In-range queries do not count.
  (void)monitor.load(0, 0);
  EXPECT_EQ(monitor.oobQueries(), 2u);

  registry.collect();
  EXPECT_EQ(registry.counter("sdt_monitor_oob_queries_total").value(), 2u);
}

// Regression for the epoch-guard window: a PortFailure used to carry no
// epoch at all, so a consumer acting on the report *after* a reconfiguration
// flip had no way to tell it was diagnosed against a configuration that no
// longer exists. The epoch is now read from the provider at DETECTION time —
// a failure detected under epoch N keeps N forever, no matter when the
// report is consumed or what the fabric flipped to in between.
TEST(Monitor, PortFailureCarriesDetectionTimeEpoch) {
  sim::Simulator sim;
  const topo::Topology topo = topo::makeLine(3);
  routing::ShortestPathRouting routing(topo);
  auto built = sim::buildLogicalNetwork(sim, topo, routing, {});

  NetworkMonitor monitor(sim, *built.net, topo);
  std::uint32_t liveEpoch = 7;
  monitor.setEpochProvider([&liveEpoch]() { return liveEpoch; });
  monitor.enableFailureDetection(usToNs(60.0));
  monitor.start(usToNs(5.0));

  // Two fabric cables; cut the first under epoch 7, flip to epoch 8, then
  // cut the second.
  std::vector<topo::Link> fabric;
  for (const topo::Link& l : topo.links()) fabric.push_back(l);
  ASSERT_GE(fabric.size(), 2u);
  sim::FaultInjector inj(sim, *built.net, 42);
  inj.cutCable(usToNs(200.0), fabric[0].a.sw, fabric[0].a.port);
  inj.cutCable(usToNs(900.0), fabric[1].a.sw, fabric[1].a.port);
  inj.arm();
  // The flip lands between the two detections (detection latency is
  // timeout + <= 2 periods, so the first cut is detected well before 600us).
  sim.schedule(usToNs(600.0), [&liveEpoch]() { liveEpoch = 8; });

  sim.runUntil(msToNs(2.0));
  monitor.stop();

  const auto isOn = [](const PortFailure& f, const topo::Link& l) {
    return (f.sw == l.a.sw && f.port == l.a.port) ||
           (f.sw == l.b.sw && f.port == l.b.port);
  };
  int first = 0;
  int second = 0;
  for (const PortFailure& f : monitor.portFailures()) {
    if (isOn(f, fabric[0])) {
      ++first;
      EXPECT_EQ(f.epoch, 7u) << "consumed late, but detected under epoch 7";
      EXPECT_LT(f.detectedAt, usToNs(600.0));
    } else if (isOn(f, fabric[1])) {
      ++second;
      EXPECT_EQ(f.epoch, 8u);
      EXPECT_GT(f.detectedAt, usToNs(900.0));
    }
  }
  EXPECT_GE(first, 1);   // both ends of a cut report; at least one each
  EXPECT_GE(second, 1);
}

// Without a provider the stamp stays 0 — the single-tenant legacy value —
// rather than picking up garbage.
TEST(Monitor, PortFailureEpochDefaultsToZeroWithoutProvider) {
  sim::Simulator sim;
  const topo::Topology topo = topo::makeLine(2);
  routing::ShortestPathRouting routing(topo);
  auto built = sim::buildLogicalNetwork(sim, topo, routing, {});
  NetworkMonitor monitor(sim, *built.net, topo);
  monitor.enableFailureDetection(usToNs(60.0));
  monitor.start(usToNs(5.0));
  sim::FaultInjector inj(sim, *built.net, 42);
  inj.cutCable(usToNs(100.0), topo.links()[0].a.sw, topo.links()[0].a.port);
  inj.arm();
  sim.runUntil(msToNs(1.0));
  ASSERT_FALSE(monitor.portFailures().empty());
  for (const PortFailure& f : monitor.portFailures()) {
    EXPECT_EQ(f.epoch, 0u);
  }
}

}  // namespace
}  // namespace sdt::controller
