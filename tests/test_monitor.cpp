// Tests: Network Monitor telemetry (§V-3) and its adaptive-routing oracle.
#include <gtest/gtest.h>

#include "controller/monitor.hpp"
#include "obs/metrics.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/transport.hpp"
#include "topo/generators.hpp"

namespace sdt::controller {
namespace {

TEST(Monitor, ObservesCongestedPort) {
  sim::Simulator sim;
  const topo::Topology topo = topo::makeLine(3);
  routing::ShortestPathRouting routing(topo);
  sim::NetworkConfig cfg;
  auto built = sim::buildLogicalNetwork(sim, topo, routing, cfg);
  sim::TransportManager transport(sim, *built.net, {});

  NetworkMonitor monitor(sim, *built.net, topo);
  monitor.start(usToNs(5.0));

  // Saturate host0 -> host2 (through both fabric links) plus host1 -> host2.
  transport.sendMessage(0, 2, 2 * kMiB, 0, {});
  transport.sendMessage(1, 2, 2 * kMiB, 0, {});
  sim.runUntil(msToNs(1.0));
  monitor.stop();

  EXPECT_GT(monitor.samplesTaken(), 100u);
  // Switch 1's egress toward switch 2 carries both flows: it must show the
  // highest load among fabric ports.
  const auto link12 = topo.linkAt(topo::SwitchPort{1, 1});
  ASSERT_TRUE(link12.has_value());
  double congested = monitor.load(1, 1);
  EXPECT_GT(congested, 0.0);
  // The reverse-direction port at switch 2 only carries ACK/CNP traffic.
  EXPECT_GT(congested, monitor.load(2, 0) + 1.0);

  const routing::CongestionOracle oracle = monitor.oracle();
  EXPECT_DOUBLE_EQ(oracle(1, 1), congested);
}

TEST(Monitor, StopEndsSampling) {
  sim::Simulator sim;
  const topo::Topology topo = topo::makeLine(2);
  routing::ShortestPathRouting routing(topo);
  auto built = sim::buildLogicalNetwork(sim, topo, routing, {});
  NetworkMonitor monitor(sim, *built.net, topo);
  monitor.start(usToNs(10.0));
  sim.runUntil(usToNs(100.0));
  monitor.stop();
  const auto samples = monitor.samplesTaken();
  sim.run();  // queue must drain (monitor no longer reschedules)
  EXPECT_EQ(monitor.samplesTaken(), samples);
}

TEST(Monitor, RestartDoesNotDoubleChain) {
  sim::Simulator sim;
  const topo::Topology topo = topo::makeLine(2);
  routing::ShortestPathRouting routing(topo);
  auto built = sim::buildLogicalNetwork(sim, topo, routing, {});
  NetworkMonitor monitor(sim, *built.net, topo);
  monitor.start(usToNs(10.0));
  sim.runUntil(usToNs(95.0));
  const auto before = monitor.samplesTaken();
  EXPECT_GE(before, 9u);
  // Restart while the old chain's next sample event is still queued: the
  // epoch guard must kill the stale chain, leaving exactly one.
  monitor.stop();
  monitor.start(usToNs(10.0));
  sim.runUntil(usToNs(195.0));
  const auto after = monitor.samplesTaken() - before;
  EXPECT_GE(after, 9u);
  EXPECT_LE(after, 10u);  // a doubled chain would take ~20
}

// Regression: an out-of-range load() used to return 0.0 silently —
// indistinguishable from a genuinely idle port. It still returns 0.0 (the
// adaptive-routing oracle must stay total) but every such query is now
// counted, and the counter is visible through an attached registry.
TEST(Monitor, OutOfRangeQueriesAreCounted) {
  sim::Simulator sim;
  const topo::Topology topo = topo::makeLine(2);
  routing::ShortestPathRouting routing(topo);
  auto built = sim::buildLogicalNetwork(sim, topo, routing, {});
  NetworkMonitor monitor(sim, *built.net, topo);
  obs::Registry registry;
  monitor.attachMetrics(registry);

  EXPECT_EQ(monitor.oobQueries(), 0u);
  EXPECT_DOUBLE_EQ(monitor.load(0, 99), 0.0);  // bad port
  EXPECT_EQ(monitor.oobQueries(), 1u);
  EXPECT_DOUBLE_EQ(monitor.load(99, 0), 0.0);  // bad switch
  EXPECT_EQ(monitor.oobQueries(), 2u);
  // In-range queries do not count.
  (void)monitor.load(0, 0);
  EXPECT_EQ(monitor.oobQueries(), 2u);

  registry.collect();
  EXPECT_EQ(registry.counter("sdt_monitor_oob_queries_total").value(), 2u);
}

}  // namespace
}  // namespace sdt::controller
