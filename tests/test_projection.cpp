// Tests: Link Projection (the SDT core algorithm, paper §IV).
#include <gtest/gtest.h>

#include <set>

#include "projection/link_projector.hpp"
#include "topo/generators.hpp"

namespace sdt::projection {
namespace {

Plant canonicalPlant(int switches = 3, int hostPorts = 11, int inter = 8,
                     PhysicalSwitchSpec spec = openflow64x100G()) {
  PlantConfig cfg;
  cfg.numSwitches = switches;
  cfg.spec = spec;
  cfg.hostPortsPerSwitch = hostPorts;
  cfg.interLinksPerPair = inter;
  auto p = buildPlant(cfg);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

TEST(LinkProjection, SingleSwitchLine) {
  const topo::Topology topo = topo::makeLine(8);
  const Plant plant = canonicalPlant(1, 8, 0);
  auto proj = LinkProjector::project(topo, plant);
  ASSERT_TRUE(proj.ok()) << proj.error().message;
  const Projection& p = proj.value();
  EXPECT_TRUE(p.validate(topo, plant).ok());
  EXPECT_EQ(p.interSwitchLinkCount(), 0);
  // All 8 sub-switches share crossbar 0.
  EXPECT_EQ(p.subSwitchCountOn(0), 8);
  EXPECT_EQ(p.subSwitches().size(), 8u);
}

TEST(LinkProjection, PortMapIsBijective) {
  const topo::Topology topo = topo::makeLine(8);
  const Plant plant = canonicalPlant(1, 8, 0);
  auto proj = LinkProjector::project(topo, plant);
  ASSERT_TRUE(proj.ok());
  std::set<std::pair<int, int>> physSeen;
  for (topo::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (topo::PortId lp = 0; lp < topo.fabricRadix(sw); ++lp) {
      const PhysPort pp = proj.value().physOf(topo::SwitchPort{sw, lp});
      ASSERT_TRUE(pp.valid());
      EXPECT_TRUE(physSeen.insert({pp.sw, pp.port}).second)
          << "physical port reused";
      // Reverse lookup round-trips.
      const auto back = proj.value().logicalAt(pp);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(back->sw, sw);
      EXPECT_EQ(back->port, lp);
    }
  }
}

TEST(LinkProjection, RealizedLinksJoinProjectedPorts) {
  // The Projection::validate() call inside project() already enforces this;
  // double-check the self/inter split for a topology forced across switches.
  const topo::Topology topo = topo::makeTorus2D(4, 4);  // 32 links, 64 ports
  const Plant plant = canonicalPlant(2, 16, 10);
  auto proj = LinkProjector::project(topo, plant);
  ASSERT_TRUE(proj.ok()) << proj.error().message;
  EXPECT_TRUE(proj.value().validate(topo, plant).ok());
  EXPECT_GT(proj.value().interSwitchLinkCount(), 0);
  EXPECT_LE(proj.value().interSwitchLinkCount(), 10);
}

TEST(LinkProjection, PrefersFewestSwitches) {
  // A tiny ring fits one switch; it must not be spread.
  const topo::Topology topo = topo::makeRing(4);
  const Plant plant = canonicalPlant(3, 4, 8);
  auto proj = LinkProjector::project(topo, plant);
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj.value().interSwitchLinkCount(), 0);
}

TEST(LinkProjection, HostsLandOnTheirLogicalSwitch) {
  // Dragonfly(4,9,2) needs 216 ports; the paper's 3 H3C boxes provide 264.
  const topo::Topology topo = topo::makeDragonfly(4, 9, 2);
  auto planned = planPlant({&topo}, {.numSwitches = 3, .spec = h3cS6861()});
  ASSERT_TRUE(planned.ok()) << planned.error().message;
  const Plant plant = std::move(planned).value();
  auto proj = LinkProjector::project(topo, plant);
  ASSERT_TRUE(proj.ok()) << proj.error().message;
  for (topo::HostId h = 0; h < topo.numHosts(); ++h) {
    const int physSw = proj.value().hostPortOf(h).sw;
    EXPECT_EQ(physSw, proj.value().physSwitchOf(topo.hostSwitch(h)));
  }
}

TEST(LinkProjection, FailsWithHelpfulErrorWhenSelfLinksShort) {
  const topo::Topology topo = topo::makeFullMesh(10);  // 45 links, 90 ports
  const Plant plant = canonicalPlant(1, 2, 0, openflow64x100G());
  auto proj = LinkProjector::project(topo, plant);
  ASSERT_FALSE(proj.ok());
  EXPECT_NE(proj.error().message.find("self-link"), std::string::npos)
      << proj.error().message;
}

TEST(LinkProjection, FailsWhenInterLinksShort) {
  // Force 2 parts but reserve zero inter-switch links.
  const topo::Topology topo = topo::makeTorus3D(4, 4, 4);  // 384 fabric ports
  PlantConfig cfg;
  cfg.numSwitches = 2;
  cfg.spec = openflow128x100G();  // 2x128 < 384+hosts: must span... still 2 parts
  cfg.hostPortsPerSwitch = 32;
  cfg.interLinksPerPair = 0;
  auto plant = buildPlant(cfg);
  ASSERT_TRUE(plant.ok());
  auto proj = LinkProjector::project(topo, plant.value());
  EXPECT_FALSE(proj.ok());
}

TEST(LinkProjection, FailsWhenHostPortsShort) {
  const topo::Topology topo = topo::makeLine(4, {.hostsPerSwitch = 3, .linkSpeed = Gbps{10}});
  const Plant plant = canonicalPlant(1, 2, 0);  // 12 hosts needed, 2 ports
  auto proj = LinkProjector::project(topo, plant);
  ASSERT_FALSE(proj.ok());
  EXPECT_NE(proj.error().message.find("host port"), std::string::npos);
}

TEST(LinkProjection, ExplicitAssignmentRespected) {
  const topo::Topology topo = topo::makeLine(4);
  const Plant plant = canonicalPlant(2, 8, 8);
  const std::vector<int> assignment{0, 0, 1, 1};
  auto proj = LinkProjector::projectWithAssignment(topo, plant, assignment);
  ASSERT_TRUE(proj.ok()) << proj.error().message;
  EXPECT_EQ(proj.value().physSwitchOf(0), 0);
  EXPECT_EQ(proj.value().physSwitchOf(3), 1);
  EXPECT_EQ(proj.value().interSwitchLinkCount(), 1);  // the 1-2 link
}

TEST(LinkProjection, AssignmentValidation) {
  const topo::Topology topo = topo::makeLine(4);
  const Plant plant = canonicalPlant(2, 8, 8);
  EXPECT_FALSE(LinkProjector::projectWithAssignment(topo, plant, {0, 0, 0}).ok());
  EXPECT_FALSE(LinkProjector::projectWithAssignment(topo, plant, {0, 0, 0, 7}).ok());
}

// Paper-scale sweep: every evaluation topology projects onto the paper's
// 3-switch class of plant (port counts scaled to fit hosts).
class ProjectionSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ProjectionSweep, ProjectsOnPlant) {
  const std::string which = GetParam();
  topo::Topology topo;
  PlanOptions opt;
  if (which == "fattree4") {
    topo = topo::makeFatTree(4);
    opt = {.numSwitches = 2, .spec = openflow64x100G()};
  } else if (which == "dragonfly") {
    topo = topo::makeDragonfly(4, 9, 2);
    opt = {.numSwitches = 3, .spec = h3cS6861()};
  } else if (which == "torus2d") {
    topo = topo::makeTorus2D(5, 5);
    opt = {.numSwitches = 2, .spec = openflow128x100G()};
  } else {
    topo = topo::makeTorus3D(4, 4, 4);
    opt = {.numSwitches = 4, .spec = openflow128x100G()};
  }
  auto planned = planPlant({&topo}, opt);
  ASSERT_TRUE(planned.ok()) << which << ": " << planned.error().message;
  const Plant plant = std::move(planned).value();
  auto proj = LinkProjector::project(topo, plant);
  ASSERT_TRUE(proj.ok()) << which << ": " << proj.error().message;
  EXPECT_TRUE(proj.value().validate(topo, plant).ok());
}

INSTANTIATE_TEST_SUITE_P(PaperTopologies, ProjectionSweep,
                         ::testing::Values("fattree4", "dragonfly", "torus2d",
                                           "torus3d"));

}  // namespace
}  // namespace sdt::projection
