// Tests: trace serialization round-trip (§VI-A2 trace-driven evaluation).
#include <gtest/gtest.h>

#include <sstream>

#include "workloads/apps.hpp"
#include "workloads/trace.hpp"

namespace sdt::workloads {
namespace {

bool sameWorkload(const Workload& a, const Workload& b) {
  if (a.numRanks() != b.numRanks()) return false;
  for (int r = 0; r < a.numRanks(); ++r) {
    if (a.perRank[r].size() != b.perRank[r].size()) return false;
    for (std::size_t i = 0; i < a.perRank[r].size(); ++i) {
      const Op& x = a.perRank[r][i];
      const Op& y = b.perRank[r][i];
      if (x.kind != y.kind || x.bytesOrNs != y.bytesOrNs || x.peer != y.peer ||
          x.tag != y.tag) {
        return false;
      }
    }
  }
  return true;
}

TEST(Trace, RoundTripPingpong) {
  const Workload w = imbPingpong(2, 4096, 3);
  std::stringstream ss;
  writeTrace(ss, w);
  auto back = readTrace(ss);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_TRUE(sameWorkload(w, back.value()));
  EXPECT_EQ(back.value().name, w.name);
}

TEST(Trace, RoundTripAllApps) {
  for (const Workload& w :
       {hpcg(8, {.iterations = 1, .faceBytes = 1024, .computePerIteration = 10}),
        hpl(8, {.panels = 2, .panelBytes = 2048, .computePerPanel = 10}),
        miniGhost(8, {.iterations = 1, .faceBytes = 512, .computePerIteration = 5}),
        imbAlltoall(8, 256, 1)}) {
    std::stringstream ss;
    writeTrace(ss, w);
    auto back = readTrace(ss);
    ASSERT_TRUE(back.ok()) << w.name << ": " << back.error().message;
    EXPECT_TRUE(sameWorkload(w, back.value())) << w.name;
  }
}

TEST(Trace, RejectsMalformedInput) {
  const auto tryParse = [](const std::string& text) {
    std::stringstream ss(text);
    return readTrace(ss);
  };
  EXPECT_FALSE(tryParse("").ok());                                // no header
  EXPECT_FALSE(tryParse("# workload x ranks 2\nc 10\n").ok());    // op before rank
  EXPECT_FALSE(tryParse("# workload x ranks 2\nrank 5\n").ok());  // bad rank
  EXPECT_FALSE(tryParse("# workload x ranks 2\nrank 0\ns 9 100 0\n").ok());  // bad dst
  EXPECT_FALSE(tryParse("# workload x ranks 2\nrank 0\nq\n").ok());  // unknown op
  EXPECT_FALSE(tryParse("# workload x ranks 2\nrank 0\nc -5\n").ok());  // negative
}

TEST(Trace, FileRoundTrip) {
  const Workload w = imbAlltoall(4, 128, 1);
  const std::string path = ::testing::TempDir() + "/sdt_trace_test.txt";
  ASSERT_TRUE(writeTraceFile(path, w).ok());
  auto back = readTraceFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(sameWorkload(w, back.value()));
  EXPECT_FALSE(readTraceFile("/nonexistent/path").ok());
}

TEST(Trace, WildcardRecvSurvivesRoundTrip) {
  Workload w;
  w.name = "wild";
  w.perRank.resize(2);
  w.perRank[0].push_back(Op::recv(-1, 3));
  w.perRank[1].push_back(Op::send(0, 100, 3));
  std::stringstream ss;
  writeTrace(ss, w);
  auto back = readTrace(ss);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().perRank[0][0].peer, -1);
}

}  // namespace
}  // namespace sdt::workloads
