// Tests: SP / SP-OS / TurboNet baseline projectors (paper §III, §VI-C).
#include <gtest/gtest.h>

#include "projection/link_projector.hpp"
#include "projection/switch_projector.hpp"
#include "projection/turbonet.hpp"
#include "topo/generators.hpp"

namespace sdt::projection {
namespace {

TEST(SwitchProjection, BuildsCablePlan) {
  const topo::Topology topo = topo::makeLine(8);
  auto sp = SwitchProjector::project(topo, openflow64x100G(), 1);
  ASSERT_TRUE(sp.ok()) << sp.error().message;
  // One cable per fabric link.
  EXPECT_EQ(sp.value().cables.cables.size(), 7u);
  EXPECT_TRUE(sp.value().projection.validate(topo, sp.value().plant).ok());
}

TEST(SwitchProjection, PortBudgetEnforced) {
  const topo::Topology topo = topo::makeFatTree(6);  // 216 fabric + 54 host ports
  auto sp = SwitchProjector::project(topo, openflow64x100G(), 1);
  EXPECT_FALSE(sp.ok());
  // Three 128-port switches fit (270 ports total demand).
  auto sp3 = SwitchProjector::project(topo, openflow128x100G(), 3);
  EXPECT_TRUE(sp3.ok()) << sp3.error().message;
}

TEST(SwitchProjection, CableMovesBetweenTopologies) {
  const topo::Topology a = topo::makeLine(6);
  const topo::Topology b = topo::makeRing(6);
  auto pa = SwitchProjector::project(a, openflow64x100G(), 1);
  auto pb = SwitchProjector::project(b, openflow64x100G(), 1);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  const int moves = pb.value().cables.movesFrom(pa.value().cables);
  EXPECT_GT(moves, 0);  // reconfiguring SP requires manual moves...
  EXPECT_LE(moves, 6);
  // ...identical topologies need none.
  EXPECT_EQ(pa.value().cables.movesFrom(pa.value().cables), 0);
}

TEST(SwitchProjection, OpticalCapacity) {
  const topo::Topology topo = topo::makeDragonfly(4, 9, 2);  // 90 fabric links
  auto sp = SwitchProjector::project(topo, openflow128x100G(), 2);
  ASSERT_TRUE(sp.ok());
  // 90 cables need 180 OCS ports: a 320-port MEMS suffices...
  EXPECT_TRUE(SwitchProjector::checkOpticalCapacity(sp.value(), mems320()).ok());
  // ...a 128-port one does not.
  OpticalSwitchSpec small = mems320();
  small.numPorts = 128;
  EXPECT_FALSE(SwitchProjector::checkOpticalCapacity(sp.value(), small).ok());
}

TEST(TurboNet, RequiresP4Switch) {
  const topo::Topology topo = topo::makeLine(4);
  EXPECT_FALSE(TurboNetProjector::project(topo, openflow64x100G(), 1).ok());
}

TEST(TurboNet, HalvesBandwidthAndLoopbackPool) {
  const topo::Topology topo = topo::makeLine(8);
  TurboNetOptions opt;
  opt.hostPortsPerSwitch = 8;
  auto tn = TurboNetProjector::project(topo, p4Switch64x100G(), 1, opt);
  ASSERT_TRUE(tn.ok()) << tn.error().message;
  EXPECT_DOUBLE_EQ(tn.value().effectiveLinkSpeed.value, 50.0);
  // Loopback pool = half the self-link pairs of the equivalent SDT plant.
  PlantConfig cfg;
  cfg.numSwitches = 1;
  cfg.spec = p4Switch64x100G();
  cfg.hostPortsPerSwitch = 8;
  cfg.interLinksPerPair = 0;
  const auto sdtPlant = buildPlant(cfg);
  ASSERT_TRUE(sdtPlant.ok());
  EXPECT_EQ(tn.value().plant.selfLinks.size(), sdtPlant.value().selfLinks.size() / 2);
}

TEST(TurboNet, LoopbackPoolLimitsScale) {
  // 64-port P4 switch: 8 host ports -> 28 self pairs -> 14 usable loopbacks.
  // A 16-switch ring (16 links) needs 16 > 14: must fail on one switch.
  TurboNetOptions opt;
  opt.hostPortsPerSwitch = 8;
  const topo::Topology ring = topo::makeRing(16, {.hostsPerSwitch = 0, .linkSpeed = Gbps{10}});
  auto tn = TurboNetProjector::project(ring, p4Switch64x100G(), 1, opt);
  EXPECT_FALSE(tn.ok());
  // The same ring fits the SDT plant (28 self-links available).
  PlantConfig cfg;
  cfg.numSwitches = 1;
  cfg.spec = openflow64x100G();
  cfg.hostPortsPerSwitch = 8;
  cfg.interLinksPerPair = 0;
  auto plant = buildPlant(cfg);
  ASSERT_TRUE(plant.ok());
  EXPECT_TRUE(LinkProjector::project(ring, plant.value()).ok());
}

}  // namespace
}  // namespace sdt::projection
