// Tests: controller crash recovery — the write-ahead journal's replay
// decision (roll forward / roll back / reinstall), switch table readback
// over the lossy control channel, and anti-entropy reconciliation.
//
// The invariant under test everywhere: whatever instant the controller dies
// at, and whatever the channel or a switch power-cycle did meanwhile,
// recover() converges the fabric to a SINGLE-epoch state that exactly
// matches either the old or the new journaled intent — never a mix, never a
// third thing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "controller/controller.hpp"
#include "controller/journal.hpp"
#include "controller/monitor.hpp"
#include "controller/recovery.hpp"
#include "controller/table_diff.hpp"
#include "controller/transaction.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/consistency.hpp"
#include "sim/control_channel.hpp"
#include "sim/faults.hpp"
#include "sim/transport.hpp"
#include "topo/generators.hpp"

namespace sdt {
namespace {

std::uint64_t faultSeed() {
  const char* env = std::getenv("SDT_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1ULL;
}

/// All-pairs table walk (same helper as test_reconfig).
bool walkDelivers(const controller::Deployment& dep, const topo::Topology& topo,
                  topo::HostId src, topo::HostId dst) {
  projection::PhysPort at = dep.projection.hostPortOf(src);
  for (int hops = 0; hops < 32; ++hops) {
    openflow::PacketHeader h;
    h.inPort = at.port;
    h.srcAddr = static_cast<std::uint32_t>(src);
    h.dstAddr = static_cast<std::uint32_t>(dst);
    const openflow::ForwardDecision decision = dep.switches[at.sw]->process(h, 100);
    if (!decision.matched || decision.drop) return false;
    const projection::PhysPort out{at.sw, decision.outPort};
    if (out == dep.projection.hostPortOf(dst)) return true;
    const auto logical = dep.projection.logicalAt(out);
    if (!logical) return false;
    const auto peer = topo.neighborOf(*logical);
    if (!peer) return false;
    at = dep.projection.physOf(*peer);
  }
  return false;  // forwarding loop
}

bool allPairsDeliver(const controller::Deployment& dep, const topo::Topology& topo) {
  for (topo::HostId src = 0; src < topo.numHosts(); ++src) {
    for (topo::HostId dst = 0; dst < topo.numHosts(); ++dst) {
      if (src != dst && !walkDelivers(dep, topo, src, dst)) return false;
    }
  }
  return true;
}

/// Every switch holds rules of exactly `epoch` and stamps it at ingress.
bool pureEpoch(const std::vector<std::shared_ptr<openflow::Switch>>& switches,
               std::uint32_t epoch) {
  for (const auto& ofs : switches) {
    if (ofs->ingressEpoch() != epoch) return false;
    if (ofs->table().countEpoch(epoch) != ofs->table().size()) return false;
  }
  return true;
}

/// Epoch-insensitive exact-match check: the recovered tables hold the same
/// rules an independent fresh deploy of `topo` would install, per switch.
bool tablesMatchFreshDeploy(const controller::Deployment& actual,
                            const projection::Plant& plant,
                            const topo::Topology& topo,
                            const routing::RoutingAlgorithm& routing) {
  controller::SdtController ref(plant);
  controller::DeployOptions opt;
  opt.requireDeadlockFree = false;  // ring + shortest path: cyclic CDG
  auto refDep = ref.deploy(topo, routing, opt);
  if (!refDep.ok()) return false;
  for (std::size_t s = 0; s < actual.switches.size(); ++s) {
    const controller::detail::TableDiff diff = controller::detail::diffEntries(
        actual.switches[s]->table().entries(),
        refDep.value().switches[s]->table().entries());
    if (!diff.toRemove.empty() || !diff.toAdd.empty()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// The crash matrix: every CrashPoint x {clean channel, lossy channel, one
// switch rebooted while the controller is down}. Each cell is a full life:
// deploy line(6), journal it, start the line->ring transaction with an
// injected crash, optionally power-cycle a switch, then cold-start recovery
// from the journal and the (distrusted) fabric alone.
// ---------------------------------------------------------------------------

enum class Disturbance { kCleanChannel, kLossyChannel, kSwitchRebooted };

struct MatrixOutcome {
  bool txCrashed = false;
  bool recovered = false;
  bool pure = false;
  bool exactMatch = false;
  bool delivers = false;
  bool journalClean = false;  ///< post-recovery replay: closed tx, target live
  controller::RecoveryDecision decision = controller::RecoveryDecision::kNone;
  std::uint32_t targetEpoch = 0;
  std::string topology;
  controller::RecoveryReport report;
};

MatrixOutcome runMatrixCell(controller::CrashPoint crashAt, Disturbance disturb,
                            std::uint64_t seed) {
  MatrixOutcome out;
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  routing::ShortestPathRouting rFrom(from);
  routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  if (!plantR.ok()) return out;
  const projection::Plant plant = std::move(plantR).value();
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(from, rFrom);
  if (!depR.ok()) return out;
  controller::Deployment dep = std::move(depR).value();

  controller::MemoryJournalStorage storage;
  controller::Journal journal(storage);
  if (!controller::journalDeploy(journal, dep, 0).ok()) return out;

  sim::Simulator sim;
  sim::ControlChannelConfig ccfg;
  if (disturb == Disturbance::kLossyChannel) {
    ccfg.dropProb = 0.15;
    ccfg.dupProb = 0.15;
    ccfg.reorderProb = 0.15;
  }
  sim::ControlChannel channel(sim, seed, ccfg);

  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(dep, to, rTo, dopt);
  if (!planR.ok()) return out;

  controller::ReconfigOptions topt;
  topt.journal = &journal;
  topt.crashAt = crashAt;
  controller::ReconfigTransaction tx(sim, channel, dep, std::move(planR).value(),
                                     topt);
  sim.schedule(usToNs(100.0), [&]() { tx.start(); });
  sim.runUntil(msToNs(80.0));
  if (!tx.finished()) return out;  // txCrashed stays false; cell fails
  out.txCrashed = tx.crashed();

  if (disturb == Disturbance::kSwitchRebooted) {
    dep.switches[seed % dep.switches.size()]->reboot();
  }

  // --- The crashed controller process is gone; only `journal` and the live
  // switches survive. Plan and run recovery from those alone. ---
  controller::IntentCatalog catalog;
  catalog[from.name()] = {&from, &rFrom};
  catalog[to.name()] = {&to, &rTo};
  auto rplanR = controller::planRecovery(ctl, journal, catalog, dopt);
  if (!rplanR.ok()) return out;
  out.decision = rplanR.value().decision;
  out.targetEpoch = rplanR.value().targetEpoch;
  out.topology = rplanR.value().topology;

  controller::RecoveryOptions ropt;
  ropt.journal = &journal;
  ropt.retry.seed = seed;
  controller::RecoveryRun recovery(sim, channel, dep.switches,
                                   std::move(rplanR).value(), ropt);
  recovery.start();
  sim.runUntil(sim.now() + msToNs(100.0));
  if (!recovery.finished()) return out;
  out.report = recovery.report();
  out.recovered = out.report.converged && out.report.pureStateVerified;
  if (!out.recovered) return out;

  const controller::Deployment converged = recovery.takeDeployment();
  out.pure = pureEpoch(converged.switches, out.targetEpoch);
  const bool forward = out.topology == to.name();
  const topo::Topology& winner = forward ? to : from;
  const routing::RoutingAlgorithm& winnerRouting =
      forward ? static_cast<const routing::RoutingAlgorithm&>(rTo) : rFrom;
  out.exactMatch = tablesMatchFreshDeploy(converged, plant, winner, winnerRouting);
  out.delivers = allPairsDeliver(converged, winner);

  auto replayed = journal.replay();
  out.journalClean = replayed.ok() && !replayed.value().state.txOpen &&
                     replayed.value().state.epoch == out.targetEpoch &&
                     replayed.value().state.topology == out.topology;
  return out;
}

class CrashMatrix
    : public ::testing::TestWithParam<std::tuple<controller::CrashPoint,
                                                 Disturbance>> {};

TEST_P(CrashMatrix, RecoveryConvergesToExactlyOldOrNewIntent) {
  const auto [crashAt, disturb] = GetParam();
  const MatrixOutcome out = runMatrixCell(crashAt, disturb, faultSeed());
  ASSERT_TRUE(out.txCrashed)
      << "transaction did not reach crash point " <<
      controller::crashPointName(crashAt);
  ASSERT_TRUE(out.recovered) << out.report.failure;

  // Which side of the commit point the crash fell on dictates the decision:
  // a journaled flip marker means some ingress may already stamp the new
  // epoch, so recovery may only roll forward; no marker proves no packet
  // ever saw the new epoch, so it rolls back.
  const bool pastCommit = crashAt == controller::CrashPoint::kPostFlip ||
                          crashAt == controller::CrashPoint::kMidGc;
  EXPECT_EQ(out.decision, pastCommit ? controller::RecoveryDecision::kRollForward
                                     : controller::RecoveryDecision::kRollBack);
  EXPECT_EQ(out.targetEpoch, pastCommit ? 2u : 1u);

  EXPECT_TRUE(out.pure) << "mixed-epoch state survived recovery";
  EXPECT_TRUE(out.exactMatch) << "converged tables are not the journaled intent";
  EXPECT_TRUE(out.delivers) << "recovered fabric does not forward all pairs";
  EXPECT_TRUE(out.journalClean) << "journal still shows an open transaction";
  if (disturb == Disturbance::kSwitchRebooted) {
    EXPECT_GE(out.report.switchesRebooted + out.report.switchesDrifted, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPhasesAllDisturbances, CrashMatrix,
    ::testing::Combine(
        ::testing::Values(controller::CrashPoint::kPrepare,
                          controller::CrashPoint::kMidInstall,
                          controller::CrashPoint::kPreFlip,
                          controller::CrashPoint::kPostFlip,
                          controller::CrashPoint::kMidGc),
        ::testing::Values(Disturbance::kCleanChannel, Disturbance::kLossyChannel,
                          Disturbance::kSwitchRebooted)),
    [](const auto& info) {
      std::string name = controller::crashPointName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      switch (std::get<1>(info.param)) {
        case Disturbance::kCleanChannel: name += "_clean"; break;
        case Disturbance::kLossyChannel: name += "_lossy"; break;
        case Disturbance::kSwitchRebooted: name += "_rebooted"; break;
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Targeted scenarios beyond the matrix.
// ---------------------------------------------------------------------------

TEST(CrashRecovery, PlanRefusesUnknownIntentAndEmptyJournal) {
  const topo::Topology line = topo::makeLine(6);
  routing::ShortestPathRouting rLine(line);
  auto plantR = projection::planPlant({&line}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  controller::SdtController ctl(plantR.value());

  controller::MemoryJournalStorage storage;
  controller::Journal journal(storage);
  controller::IntentCatalog catalog;
  catalog[line.name()] = {&line, &rLine};

  // Empty journal: nothing to recover toward.
  auto empty = controller::planRecovery(ctl, journal, catalog);
  EXPECT_FALSE(empty.ok());

  // Journaled intent whose topology the new process cannot reconstruct.
  controller::JournalRecord rec;
  rec.kind = controller::JournalRecordKind::kDeploy;
  rec.epoch = 1;
  rec.topology = "not-in-catalog";
  rec.routing = rLine.name();
  ASSERT_TRUE(journal.append(rec).ok());
  auto unknown = controller::planRecovery(ctl, journal, catalog);
  EXPECT_FALSE(unknown.ok());
}

TEST(CrashRecovery, FabricKeepsForwardingWhileControllerIsDown) {
  // The paper's separation of planes, sharpened: a post-flip crash leaves
  // both rule versions installed and mixed ingress stamps, and the data
  // plane must not care. TCP flows launched before the crash finish during
  // the controller outage with zero consistency violations; recovery then
  // converges, and a second wave of flows runs on the recovered ring.
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  routing::ShortestPathRouting rFrom(from);
  routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  const projection::Plant plant = std::move(plantR).value();
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(from, rFrom);
  ASSERT_TRUE(depR.ok());
  controller::Deployment dep = std::move(depR).value();

  controller::MemoryJournalStorage storage;
  controller::Journal journal(storage);
  ASSERT_TRUE(controller::journalDeploy(journal, dep, 0).ok());

  sim::Simulator sim;
  sim::EpochConsistencyChecker checker;
  sim::BuiltNetwork built = sim::buildProjectedNetwork(
      sim, from, dep.projection, plant, dep.switches, {}, {2.0, 1.0}, &checker);
  sim::TransportManager tm(sim, *built.net, {});
  sim::ControlChannel channel(sim, faultSeed());

  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(dep, to, rTo, dopt);
  ASSERT_TRUE(planR.ok());

  controller::ReconfigOptions topt;
  topt.journal = &journal;
  topt.crashAt = controller::CrashPoint::kPostFlip;
  controller::ReconfigTransaction tx(sim, channel, dep, std::move(planR).value(),
                                     topt);
  int wave1 = 0;
  const int hosts = from.numHosts();
  for (int h = 0; h < hosts; ++h) {
    tm.startTcpFlow(h, (h + hosts / 2) % hosts, 128 * 1024,
                    [&](sim::Time) { ++wave1; });
  }
  sim.schedule(usToNs(100.0), [&]() { tx.start(); });
  sim.runUntil(msToNs(40.0));
  ASSERT_TRUE(tx.crashed());
  EXPECT_EQ(wave1, hosts) << "flows stalled during the controller outage";
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().front().describe();
  EXPECT_GT(checker.stampedPackets(), 0u);

  // Reboot one switch through the fault injector (the SwitchReboot fault),
  // then recover. No data traffic is in flight during reconciliation.
  sim::FaultInjector faults(sim, *built.net, faultSeed());
  faults.attachSwitches(dep.switches);
  faults.rebootSwitch(sim.now() + usToNs(10.0), 1);
  faults.arm();
  sim.runUntil(sim.now() + usToNs(20.0));
  EXPECT_EQ(dep.switches[1]->table().size(), 0u);

  controller::IntentCatalog catalog;
  catalog[from.name()] = {&from, &rFrom};
  catalog[to.name()] = {&to, &rTo};
  auto rplanR = controller::planRecovery(ctl, journal, catalog, dopt);
  ASSERT_TRUE(rplanR.ok()) << rplanR.error().message;
  EXPECT_EQ(rplanR.value().decision, controller::RecoveryDecision::kRollForward);
  controller::RecoveryOptions ropt;
  ropt.journal = &journal;
  controller::RecoveryRun recovery(sim, channel, dep.switches,
                                   std::move(rplanR).value(), ropt);
  recovery.start();
  sim.runUntil(sim.now() + msToNs(50.0));
  ASSERT_TRUE(recovery.finished());
  ASSERT_TRUE(recovery.report().converged) << recovery.report().failure;
  EXPECT_GE(recovery.report().switchesRebooted, 1);
  EXPECT_LT(recovery.report().flowMods, recovery.report().fullRedeployFlowMods)
      << "anti-entropy should beat a trust-nothing full redeploy";

  controller::Deployment converged = recovery.takeDeployment();
  EXPECT_TRUE(pureEpoch(converged.switches, 2));
  EXPECT_TRUE(allPairsDeliver(converged, to));

  // Second wave on the recovered ring: still zero violations.
  const std::size_t violationsAfterRecovery = checker.violations().size();
  int wave2 = 0;
  for (int h = 0; h < hosts; ++h) {
    tm.startTcpFlow(h, (h + 1) % hosts, 128 * 1024, [&](sim::Time) { ++wave2; });
  }
  sim.runUntil(sim.now() + msToNs(40.0));
  EXPECT_EQ(wave2, hosts);
  EXPECT_EQ(checker.violations().size(), violationsAfterRecovery);
}

TEST(CrashRecovery, MonitorStaysQuietDuringRecoveryAndReseedsBaselines) {
  // Reconciliation rewrites tables and flips ingress stamps in exactly the
  // counter pattern the wedged-transceiver detector hunts for. The NEW
  // controller's monitor must be guarded for the duration and reseeded
  // after — no spurious PortFailure storm from recovery itself.
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  routing::ShortestPathRouting rFrom(from);
  routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  const projection::Plant plant = std::move(plantR).value();
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(from, rFrom);
  ASSERT_TRUE(depR.ok());
  controller::Deployment dep = std::move(depR).value();

  controller::MemoryJournalStorage storage;
  controller::Journal journal(storage);
  ASSERT_TRUE(controller::journalDeploy(journal, dep, 0).ok());

  sim::Simulator sim;
  sim::BuiltNetwork built = sim::buildProjectedNetwork(
      sim, from, dep.projection, plant, dep.switches, {}, {2.0, 1.0}, nullptr);
  sim::TransportManager tm(sim, *built.net, {});
  sim::ControlChannel channel(sim, faultSeed());

  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(dep, to, rTo, dopt);
  ASSERT_TRUE(planR.ok());
  controller::ReconfigOptions topt;
  topt.journal = &journal;
  topt.crashAt = controller::CrashPoint::kPreFlip;  // roll-back recovery
  controller::ReconfigTransaction tx(sim, channel, dep, std::move(planR).value(),
                                     topt);
  const int hosts = from.numHosts();
  for (int h = 0; h < hosts; ++h) {
    tm.startTcpFlow(h, (h + hosts / 2) % hosts, 256 * 1024, nullptr);
  }
  sim.schedule(usToNs(100.0), [&]() { tx.start(); });
  sim.runUntil(msToNs(10.0));
  ASSERT_TRUE(tx.crashed());

  // The crashed controller's monitor died with it; this is the successor's.
  controller::NetworkMonitor monitor(sim, *built.net, from, dep.projection);
  monitor.enableFailureDetection(usToNs(60.0));
  monitor.start(usToNs(5.0));

  controller::IntentCatalog catalog;
  catalog[from.name()] = {&from, &rFrom};
  catalog[to.name()] = {&to, &rTo};
  auto rplanR = controller::planRecovery(ctl, journal, catalog, dopt);
  ASSERT_TRUE(rplanR.ok());
  controller::RecoveryOptions ropt;
  ropt.journal = &journal;
  ropt.monitor = &monitor;
  controller::RecoveryRun recovery(sim, channel, dep.switches,
                                   std::move(rplanR).value(), ropt);
  sim.schedule(usToNs(50.0), [&]() {
    recovery.start();
    EXPECT_TRUE(monitor.guarded(0));
    EXPECT_TRUE(monitor.guarded(1));
  });
  sim.runUntil(sim.now() + msToNs(30.0));

  ASSERT_TRUE(recovery.finished());
  ASSERT_TRUE(recovery.report().converged) << recovery.report().failure;
  EXPECT_FALSE(monitor.guarded(0));
  EXPECT_FALSE(monitor.guarded(1));
  EXPECT_TRUE(monitor.portFailures().empty())
      << "recovery tripped the failure detector";

  // Baselines were reseeded at unguard: quiet post-recovery polling must not
  // retroactively blame recovery's counter wobble on a port.
  sim.runUntil(sim.now() + msToNs(5.0));
  EXPECT_TRUE(monitor.portFailures().empty());
  EXPECT_GT(monitor.samplesTaken(), 0u);
}

TEST(CrashRecovery, DuplicateDeliveryCannotDeleteReAddedTwinRules) {
  // The xid-dedup bugfix, end to end: a duplicate-heavy channel redelivers
  // converge bundles whose strict-deletes would — without dedup — remove
  // rules a later bundle legitimately re-added. Recovery must still land on
  // the exact intent.
  const MatrixOutcome out =
      runMatrixCell(controller::CrashPoint::kMidInstall,
                    Disturbance::kLossyChannel, faultSeed() + 77);
  ASSERT_TRUE(out.txCrashed);
  ASSERT_TRUE(out.recovered) << out.report.failure;
  EXPECT_TRUE(out.exactMatch);
  EXPECT_TRUE(out.delivers);
}

TEST(CrashRecovery, SwitchXidCacheRefusesDuplicatesUntilReboot) {
  openflow::Switch sw(0, 8);
  EXPECT_TRUE(sw.acceptXid(42));   // first delivery: apply
  EXPECT_FALSE(sw.acceptXid(42));  // duplicate: re-ack only
  EXPECT_TRUE(sw.seenXid(42));
  EXPECT_TRUE(sw.acceptXid(43));
  sw.reboot();
  // The cache is volatile — after a power cycle the same xid applies again
  // (and must, or a rebooted switch would ignore its repopulation bundle).
  EXPECT_FALSE(sw.seenXid(42));
  EXPECT_TRUE(sw.acceptXid(42));
}

// ---------------------------------------------------------------------------
// Fuzz: 200 random schedules over (crash point, channel impairments, switch
// reboot, recovery-time disconnect). Every run must terminate, converge, and
// land bit-exactly on one journaled intent.
// ---------------------------------------------------------------------------

struct FuzzOutcome {
  bool finished = false;
  bool converged = false;
  bool pure = false;
  bool exactMatch = false;
  bool delivers = false;
  std::string failure;
};

FuzzOutcome runFuzzSchedule(std::uint64_t seed) {
  Rng rng(seed);
  FuzzOutcome out;
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  routing::ShortestPathRouting rFrom(from);
  routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  if (!plantR.ok()) return out;
  const projection::Plant plant = std::move(plantR).value();
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(from, rFrom);
  if (!depR.ok()) return out;
  controller::Deployment dep = std::move(depR).value();

  controller::MemoryJournalStorage storage;
  controller::Journal journal(storage);
  if (!controller::journalDeploy(journal, dep, 0).ok()) return out;

  sim::Simulator sim;
  sim::ControlChannelConfig cfg;
  cfg.dropProb = rng.uniform() * 0.35;
  cfg.dupProb = rng.uniform() * 0.35;
  cfg.reorderProb = rng.uniform() * 0.3;
  cfg.jitter = static_cast<TimeNs>(rng.between(500, 4'000));
  cfg.reorderDelay = static_cast<TimeNs>(rng.between(5'000, 30'000));
  sim::ControlChannel channel(sim, seed, cfg);

  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(dep, to, rTo, dopt);
  if (!planR.ok()) return out;

  // Any crash point, including kNone (the transaction resolves on its own
  // and recovery degenerates to a reinstall audit of whichever side won).
  const controller::CrashPoint points[] = {
      controller::CrashPoint::kNone,       controller::CrashPoint::kPrepare,
      controller::CrashPoint::kMidInstall, controller::CrashPoint::kPreFlip,
      controller::CrashPoint::kPostFlip,   controller::CrashPoint::kMidGc};
  controller::ReconfigOptions topt;
  topt.journal = &journal;
  topt.crashAt = points[rng.below(6)];
  controller::ReconfigTransaction tx(sim, channel, dep, std::move(planR).value(),
                                     topt);
  sim.schedule(usToNs(100.0), [&]() { tx.start(); });
  sim.runUntil(msToNs(80.0));
  if (!tx.finished()) {
    out.failure = "transaction never finished";
    return out;
  }

  if (rng.uniform() < 0.5) {
    dep.switches[rng.below(static_cast<std::uint64_t>(dep.switches.size()))]
        ->reboot();
  }

  controller::IntentCatalog catalog;
  catalog[from.name()] = {&from, &rFrom};
  catalog[to.name()] = {&to, &rTo};
  auto rplanR = controller::planRecovery(ctl, journal, catalog, dopt);
  if (!rplanR.ok()) {
    out.failure = "planRecovery: " + rplanR.error().message;
    return out;
  }
  const std::uint32_t targetEpoch = rplanR.value().targetEpoch;
  const bool forward = rplanR.value().topology == to.name();

  controller::RecoveryOptions ropt;
  ropt.journal = &journal;
  ropt.retry.seed = seed;
  controller::RecoveryRun recovery(sim, channel, dep.switches,
                                   std::move(rplanR).value(), ropt);
  // Half the schedules also sever one switch's management link across the
  // start of reconciliation; recovery's unbounded per-round retries must
  // ride it out.
  if (rng.uniform() < 0.5) {
    const int sw = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(plant.numSwitches())));
    const TimeNs fromT = sim.now();
    channel.disconnect(sw, fromT, fromT + static_cast<TimeNs>(
                                              rng.between(50'000, 2'000'000)));
  }
  recovery.start();
  sim.runUntil(sim.now() + msToNs(150.0));
  out.finished = recovery.finished();
  if (!out.finished) {
    out.failure = "recovery never finished";
    return out;
  }
  out.converged = recovery.report().converged &&
                  recovery.report().pureStateVerified;
  if (!out.converged) {
    out.failure = recovery.report().failure;
    return out;
  }
  const controller::Deployment converged = recovery.takeDeployment();
  out.pure = pureEpoch(converged.switches, targetEpoch);
  const topo::Topology& winner = forward ? to : from;
  const routing::RoutingAlgorithm& winnerRouting =
      forward ? static_cast<const routing::RoutingAlgorithm&>(rTo) : rFrom;
  out.exactMatch = tablesMatchFreshDeploy(converged, plant, winner, winnerRouting);
  out.delivers = allPairsDeliver(converged, winner);
  return out;
}

TEST(CrashRecoveryFuzz, TwoHundredSchedulesAllConvergeOnOneIntent) {
  const std::uint64_t base = faultSeed() * 1'000'000ULL;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const std::uint64_t seed = base + i;
    const FuzzOutcome out = runFuzzSchedule(seed);
    ASSERT_TRUE(out.finished) << "seed " << seed << ": " << out.failure;
    ASSERT_TRUE(out.converged) << "seed " << seed << ": " << out.failure;
    EXPECT_TRUE(out.pure) << "seed " << seed << " left mixed-epoch state";
    EXPECT_TRUE(out.exactMatch)
        << "seed " << seed << " converged on a third configuration";
    EXPECT_TRUE(out.delivers) << "seed " << seed << " broke forwarding";
  }
}

}  // namespace
}  // namespace sdt
