// Tests: network builders — wiring invariants of the logical (full-testbed)
// and projected (SDT) planes.
#include <gtest/gtest.h>

#include "controller/controller.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/transport.hpp"
#include "topo/generators.hpp"

namespace sdt::sim {
namespace {

TEST(Builder, LogicalNetworkMirrorsTopology) {
  Simulator sim;
  const topo::Topology topo = topo::makeFatTree(4);
  routing::ShortestPathRouting routing(topo);
  auto built = buildLogicalNetwork(sim, topo, routing, {});
  EXPECT_EQ(built.net->numSwitches(), topo.numSwitches());
  EXPECT_EQ(built.net->numHosts(), topo.numHosts());
  for (topo::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    EXPECT_EQ(built.net->switchPortCount(sw), topo.radix(sw));
  }
  EXPECT_TRUE(built.ofSwitches.empty());
}

TEST(Builder, LogicalHostLinkSpeedPreserved) {
  Simulator sim;
  const topo::Topology topo = topo::makeLine(2, {.hostsPerSwitch = 1,
                                                 .linkSpeed = Gbps{25.0}});
  routing::ShortestPathRouting routing(topo);
  auto built = buildLogicalNetwork(sim, topo, routing, {});
  EXPECT_DOUBLE_EQ(built.net->hostLinkSpeed(0).value, 25.0);
}

TEST(Builder, ProjectedNetworkUsesPhysicalSwitches) {
  const topo::Topology topo = topo::makeLine(8);
  routing::ShortestPathRouting routing(topo);
  projection::PlantConfig cfg;
  cfg.numSwitches = 2;
  cfg.spec = projection::openflow64x100G();
  cfg.hostPortsPerSwitch = 8;
  cfg.interLinksPerPair = 8;
  auto plant = projection::buildPlant(cfg);
  ASSERT_TRUE(plant.ok());
  controller::SdtController ctl(plant.value());
  auto dep = ctl.deploy(topo, routing);
  ASSERT_TRUE(dep.ok()) << dep.error().message;

  Simulator sim;
  auto built = buildProjectedNetwork(sim, topo, dep.value().projection, plant.value(),
                                     dep.value().switches, {}, CrossbarModel{});
  // 8 logical switches collapse onto 2 physical ones.
  EXPECT_EQ(built.net->numSwitches(), 2);
  EXPECT_EQ(built.net->numHosts(), 8);
  EXPECT_EQ(built.net->switchPortCount(0), 64);
  EXPECT_EQ(built.ofSwitches.size(), 2u);
}

TEST(Builder, ProjectedDeliveryEndToEnd) {
  const topo::Topology topo = topo::makeLine(4);
  routing::ShortestPathRouting routing(topo);
  projection::PlantConfig cfg;
  cfg.numSwitches = 1;
  cfg.spec = projection::openflow64x100G();
  cfg.hostPortsPerSwitch = 4;
  cfg.interLinksPerPair = 0;
  auto plant = projection::buildPlant(cfg);
  ASSERT_TRUE(plant.ok());
  controller::SdtController ctl(plant.value());
  auto dep = ctl.deploy(topo, routing);
  ASSERT_TRUE(dep.ok());

  Simulator sim;
  auto built = buildProjectedNetwork(sim, topo, dep.value().projection, plant.value(),
                                     dep.value().switches, {}, CrossbarModel{});
  TransportManager transport(sim, *built.net, {});
  int done = 0;
  transport.sendMessage(0, 3, 64 * 1024, 0, [&](std::uint64_t, Time) { ++done; });
  sim.run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(built.net->totalDrops(), 0u);
  // The OpenFlow models saw the traffic (their counters drive the monitor).
  std::uint64_t ofRx = 0;
  for (const auto& ofs : built.ofSwitches) {
    for (int p = 0; p < ofs->numPorts(); ++p) ofRx += ofs->portStats(p).rxPackets;
  }
  EXPECT_GT(ofRx, 0u);
}

TEST(Builder, CrossbarExtraLatencyScalesWithSubSwitches) {
  // Same projection, two crossbar models: latency difference must equal
  // extra * traversals exactly (deterministic engine).
  const topo::Topology topo = topo::makeLine(4);
  routing::ShortestPathRouting routing(topo);
  projection::PlantConfig cfg;
  cfg.numSwitches = 1;
  cfg.spec = projection::openflow64x100G();
  cfg.hostPortsPerSwitch = 4;
  cfg.interLinksPerPair = 0;
  auto plant = projection::buildPlant(cfg);
  ASSERT_TRUE(plant.ok());
  controller::SdtController ctl(plant.value());
  auto dep = ctl.deploy(topo, routing);
  ASSERT_TRUE(dep.ok());

  Time arrival[2] = {0, 0};
  const CrossbarModel models[2] = {CrossbarModel{0, 0}, CrossbarModel{10, 5}};
  for (int i = 0; i < 2; ++i) {
    Simulator sim;
    auto built = buildProjectedNetwork(sim, topo, dep.value().projection, plant.value(),
                                       dep.value().switches, {}, models[i]);
    built.net->setReceiver(3, [&, i](const Packet&) { arrival[i] = sim.now(); });
    Packet p;
    p.id = 1;
    p.flowId = 1;
    p.srcHost = 0;
    p.dstHost = 3;
    p.payloadBytes = 1000;
    built.net->injectFromHost(0, p);
    sim.run();
  }
  // 4 sub-switches on one crossbar: extra = 10 + 5*3 = 25 ns per traversal;
  // host0 -> host3 crosses the physical switch 4 times (once per sub-switch).
  EXPECT_EQ(arrival[1] - arrival[0], 4 * 25);
}

}  // namespace
}  // namespace sdt::sim
