// Tests: OpenFlow flow-table semantics (priority matching, capacity,
// counters) and the switch pipeline.
#include <gtest/gtest.h>

#include "openflow/flow_table.hpp"
#include "openflow/of_switch.hpp"

namespace sdt::openflow {
namespace {

PacketHeader header(int inPort, std::uint32_t dst, std::uint8_t tc = 0) {
  PacketHeader h;
  h.inPort = inPort;
  h.srcAddr = 1;
  h.dstAddr = dst;
  h.trafficClass = tc;
  return h;
}

TEST(Match, WildcardMatchesEverything) {
  Match m;
  EXPECT_TRUE(m.matches(header(3, 7)));
  EXPECT_EQ(m.specificity(), 0);
}

TEST(Match, ExactFields) {
  Match m;
  m.inPort = 2;
  m.dstAddr = 9;
  EXPECT_TRUE(m.matches(header(2, 9)));
  EXPECT_FALSE(m.matches(header(3, 9)));
  EXPECT_FALSE(m.matches(header(2, 8)));
  EXPECT_EQ(m.specificity(), 2);
}

TEST(Match, TrafficClass) {
  Match m;
  m.trafficClass = 1;
  EXPECT_TRUE(m.matches(header(0, 0, 1)));
  EXPECT_FALSE(m.matches(header(0, 0, 0)));
}

TEST(FlowTable, PriorityOrder) {
  FlowTable t(16);
  FlowEntry low;
  low.priority = 1;
  low.actions = {Action::output(1)};
  FlowEntry high;
  high.priority = 10;
  high.match.dstAddr = 5;
  high.actions = {Action::output(2)};
  ASSERT_TRUE(t.add(low).ok());
  ASSERT_TRUE(t.add(high).ok());
  const FlowEntry* e = t.lookup(header(0, 5));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->actions[0].arg, 2);  // high priority wins
  e = t.lookup(header(0, 6));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->actions[0].arg, 1);  // falls through to wildcard
}

TEST(FlowTable, StableOrderWithinPriority) {
  FlowTable t(16);
  FlowEntry first;
  first.priority = 5;
  first.actions = {Action::output(1)};
  FlowEntry second;
  second.priority = 5;
  second.actions = {Action::output(2)};
  ASSERT_TRUE(t.add(first).ok());
  ASSERT_TRUE(t.add(second).ok());
  EXPECT_EQ(t.lookup(header(0, 0))->actions[0].arg, 1);
}

TEST(FlowTable, CapacityEnforced) {
  FlowTable t(2);
  EXPECT_TRUE(t.add(FlowEntry{}).ok());
  EXPECT_TRUE(t.add(FlowEntry{}).ok());
  EXPECT_TRUE(t.full());
  EXPECT_FALSE(t.add(FlowEntry{}).ok());
}

TEST(FlowTable, RemoveByCookie) {
  FlowTable t(8);
  FlowEntry a;
  a.cookie = 7;
  FlowEntry b;
  b.cookie = 8;
  ASSERT_TRUE(t.add(a).ok());
  ASSERT_TRUE(t.add(b).ok());
  ASSERT_TRUE(t.add(a).ok());
  EXPECT_EQ(t.removeByCookie(7), 2u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlowTable, MissReturnsNull) {
  FlowTable t(8);
  FlowEntry e;
  e.match.dstAddr = 1;
  ASSERT_TRUE(t.add(e).ok());
  EXPECT_EQ(t.lookup(header(0, 2)), nullptr);
}

TEST(FlowTable, CountersUpdateOnlyOnLookupAndCount) {
  FlowTable t(8);
  FlowEntry e;
  ASSERT_TRUE(t.add(e).ok());
  t.lookupAndCount(header(0, 0), 100);
  t.lookupAndCount(header(0, 0), 50);
  t.lookup(header(0, 0));  // const peek: no counting
  EXPECT_EQ(t.entries()[0].packetCount, 2u);
  EXPECT_EQ(t.entries()[0].byteCount, 150u);
}

TEST(Switch, PipelineOutputAndCounters) {
  Switch sw(0, 4);
  FlowEntry e;
  e.match.inPort = 1;
  e.actions = {Action::setQueue(3), Action::output(2)};
  ASSERT_TRUE(sw.table().add(e).ok());
  const ForwardDecision d = sw.process(header(1, 0), 500);
  EXPECT_TRUE(d.matched);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(d.outPort, 2);
  EXPECT_EQ(d.queue, 3);
  EXPECT_EQ(sw.portStats(1).rxPackets, 1u);
  EXPECT_EQ(sw.portStats(1).rxBytes, 500u);
  EXPECT_EQ(sw.portStats(2).txPackets, 1u);
}

TEST(Switch, TableMissDrops) {
  Switch sw(0, 4);
  const ForwardDecision d = sw.process(header(0, 9), 100);
  EXPECT_FALSE(d.matched);
  EXPECT_TRUE(d.drop);
  EXPECT_EQ(sw.portStats(0).rxPackets, 1u);
}

TEST(Switch, ExplicitDropAction) {
  Switch sw(0, 4);
  FlowEntry e;
  e.actions = {Action::drop()};
  ASSERT_TRUE(sw.table().add(e).ok());
  const ForwardDecision d = sw.process(header(0, 0), 100);
  EXPECT_TRUE(d.matched);
  EXPECT_TRUE(d.drop);
  EXPECT_EQ(sw.portStats(0).txDrops, 1u);
}

TEST(Switch, SetVcAction) {
  Switch sw(0, 4);
  FlowEntry e;
  e.actions = {Action::setVc(1), Action::output(3)};
  ASSERT_TRUE(sw.table().add(e).ok());
  const ForwardDecision d = sw.process(header(0, 0), 100);
  EXPECT_EQ(d.vc, 1);
  EXPECT_EQ(d.outPort, 3);
}

TEST(Switch, ResetStats) {
  Switch sw(0, 2);
  FlowEntry e;
  e.actions = {Action::output(1)};
  ASSERT_TRUE(sw.table().add(e).ok());
  sw.process(header(0, 0), 100);
  sw.resetStats();
  EXPECT_EQ(sw.portStats(0).rxPackets, 0u);
  EXPECT_EQ(sw.portStats(1).txPackets, 0u);
}

}  // namespace
}  // namespace sdt::openflow
