// End-to-end property tests: the SDT plane (projection + compiled flow
// tables on physical switches) must forward exactly like the logical plane
// (routing algorithm on the full testbed) — the transparency property the
// paper's whole evaluation rests on. Verified on randomized topologies.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "controller/controller.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/transport.hpp"
#include "testbed/evaluator.hpp"
#include "topo/generators.hpp"
#include "workloads/apps.hpp"

namespace sdt {
namespace {

/// Random connected topology: spanning tree + extra edges + hosts.
topo::Topology randomTopology(std::uint64_t seed) {
  Rng rng(seed);
  const int n = 5 + static_cast<int>(rng.below(12));
  topo::Topology t(strFormat("rand-%llu-n%d", static_cast<unsigned long long>(seed), n),
                   n);
  for (int v = 1; v < n; ++v) {
    t.connect(static_cast<int>(rng.below(static_cast<std::uint64_t>(v))), v);
  }
  const int extra = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  for (int e = 0; e < extra; ++e) {
    const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    if (u != v) t.connect(u, v);
  }
  for (int sw = 0; sw < n; ++sw) {
    if (rng.uniform() < 0.7) t.attachHost(sw);
  }
  if (t.numHosts() < 2) {
    t.attachHost(0);
    t.attachHost(n - 1);
  }
  return t;
}

/// Walk a (src, dst) pair through the deployment's flow tables; returns the
/// sequence of *logical* switches traversed.
Result<std::vector<topo::SwitchId>> tableWalk(const topo::Topology& topo,
                                              const controller::Deployment& dep,
                                              topo::HostId src, topo::HostId dst) {
  std::vector<topo::SwitchId> path;
  projection::PhysPort at = dep.projection.hostPortOf(src);
  path.push_back(topo.hostSwitch(src));
  int vc = 0;
  for (int hop = 0; hop < 4 * topo.numSwitches() + 8; ++hop) {
    openflow::PacketHeader h;
    h.inPort = at.port;
    h.srcAddr = static_cast<std::uint32_t>(src);
    h.dstAddr = static_cast<std::uint32_t>(dst);
    h.trafficClass = static_cast<std::uint8_t>(vc);
    const auto decision = dep.switches[at.sw]->process(h, 100);
    if (!decision.matched || decision.drop) return makeError("table miss");
    if (decision.vc >= 0) vc = decision.vc;
    const projection::PhysPort out{at.sw, decision.outPort};
    if (out == dep.projection.hostPortOf(dst)) return path;  // delivered
    const auto logical = dep.projection.logicalAt(out);
    if (!logical) return makeError("forwarded out an unmapped port");
    const auto peer = topo.neighborOf(*logical);
    if (!peer) return makeError("mapped port carries no fabric link");
    at = dep.projection.physOf(*peer);
    path.push_back(peer->sw);
  }
  return makeError("loop");
}

class EquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceSweep, FlowTablesMatchRoutingPaths) {
  const topo::Topology t = randomTopology(GetParam());
  routing::ShortestPathRouting routing(t);
  auto plant = projection::planPlant(
      {&t}, {.numSwitches = 2, .spec = projection::openflow64x100G()});
  ASSERT_TRUE(plant.ok()) << t.name() << ": " << plant.error().message;
  controller::SdtController ctl(plant.value());
  // Random graphs may have cyclic CDGs; equivalence is about forwarding.
  auto dep = ctl.deploy(t, routing, {.requireDeadlockFree = false});
  ASSERT_TRUE(dep.ok()) << t.name() << ": " << dep.error().message;

  for (topo::HostId src = 0; src < t.numHosts(); ++src) {
    for (topo::HostId dst = 0; dst < t.numHosts(); ++dst) {
      if (src == dst || t.hostSwitch(src) == t.hostSwitch(dst)) continue;
      // The controller compiles per-destination ECMP (hash = dst), so the
      // logical reference must use the same hash.
      std::vector<topo::SwitchId> logicalPath;
      topo::SwitchId sw = t.hostSwitch(src);
      logicalPath.push_back(sw);
      int vc = 0;
      while (sw != t.hostSwitch(dst)) {
        auto hop = routing.nextHop(sw, dst, vc, static_cast<std::uint64_t>(dst));
        ASSERT_TRUE(hop.ok());
        const auto peer = t.neighborOf(topo::SwitchPort{sw, hop.value().outPort});
        ASSERT_TRUE(peer.has_value());
        sw = peer->sw;
        vc = hop.value().vc;
        logicalPath.push_back(sw);
        ASSERT_LE(logicalPath.size(), 64u);
      }
      auto walked = tableWalk(t, dep.value(), src, dst);
      ASSERT_TRUE(walked.ok()) << t.name() << " " << src << "->" << dst << ": "
                               << walked.error().message;
      EXPECT_EQ(walked.value(), logicalPath) << t.name() << " " << src << "->" << dst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, EquivalenceSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

class ActEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ActEquivalence, SdtActWithinBandOnRandomTopologies) {
  // The dynamic version of the same property: running real traffic, the
  // SDT plane's ACT stays within the paper's accuracy band of the logical
  // plane's on arbitrary topologies.
  const topo::Topology t = randomTopology(GetParam() * 1000 + 7);
  routing::ShortestPathRouting routing(t);
  auto plant = projection::planPlant(
      {&t}, {.numSwitches = 2, .spec = projection::openflow64x100G()});
  ASSERT_TRUE(plant.ok()) << plant.error().message;

  testbed::InstanceOptions opt;
  opt.deploy.requireDeadlockFree = false;
  opt.network.pfcEnabled = false;  // arbitrary graphs: run lossy ethernet

  const workloads::Workload w = workloads::imbAlltoall(t.numHosts(), 8 * 1024, 1);
  auto full = testbed::makeFullTestbed(t, routing, opt);
  const testbed::RunResult fr = testbed::runWorkload(full, w);
  auto sdt = testbed::makeSdt(t, routing, plant.value(), opt);
  ASSERT_TRUE(sdt.ok()) << sdt.error().message;
  const testbed::RunResult sr = testbed::runWorkload(sdt.value(), w);

  ASSERT_GT(fr.act, 0);
  const double deviation = std::abs(static_cast<double>(sr.act - fr.act)) /
                           static_cast<double>(fr.act);
  EXPECT_LT(deviation, 0.05) << t.name() << ": full=" << fr.act << " sdt=" << sr.act;
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, ActEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace sdt
