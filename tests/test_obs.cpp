// Observability layer: registry instruments, label canonicalization,
// collectors, span tracer, and byte-determinism of both exporters.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace sdt;
using namespace sdt::obs;

TEST(Counter, IncAndSyncToAreMonotonic) {
  Registry reg;
  Counter& c = reg.counter("sdt_test_total");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // syncTo adopts a larger snapshot...
  c.syncTo(100);
  EXPECT_EQ(c.value(), 100u);
  // ...but never regresses below what it already saw.
  c.syncTo(7);
  EXPECT_EQ(c.value(), 100u);
}

TEST(Gauge, SetAndAdd) {
  Registry reg;
  Gauge& g = reg.gauge("sdt_test_gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.add(-5.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Histogram, BucketsAreNonCumulativeWithOverflow) {
  Registry reg;
  Histogram& h = reg.histogram("sdt_test_hist", {10.0, 100.0, 1000.0});
  // One per bucket, plus one past the last bound.
  h.observe(5.0);     // <= 10
  h.observe(10.0);    // <= 10 (boundary lands in its bucket)
  h.observe(50.0);    // <= 100
  h.observe(999.0);   // <= 1000
  h.observe(5000.0);  // +Inf overflow
  const std::vector<std::uint64_t> counts = h.bucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // bounds + 1 overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0 + 10.0 + 50.0 + 999.0 + 5000.0);
}

TEST(Histogram, LatencyBucketsCoverMicrosecondsToMilliseconds) {
  const std::vector<double> b = latencyBucketsNs();
  ASSERT_FALSE(b.empty());
  // Strictly increasing, spanning at least 1us .. 100ms.
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  EXPECT_LE(b.front(), 1e3);
  EXPECT_GE(b.back(), 1e8);
}

TEST(RingSeries, WrapsKeepingNewestSamples) {
  Registry reg;
  RingSeries& s = reg.series("sdt_test_series", 4);
  EXPECT_EQ(s.capacity(), 4u);
  for (int i = 0; i < 7; ++i) {
    s.record(static_cast<TimeNs>(i * 1000), static_cast<double>(i));
  }
  EXPECT_EQ(s.recorded(), 7u);
  EXPECT_EQ(s.dropped(), 3u);
  const auto samples = s.samples();
  ASSERT_EQ(samples.size(), 4u);
  // Oldest -> newest, the last `capacity` records survive.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].first, static_cast<TimeNs>((i + 3) * 1000));
    EXPECT_DOUBLE_EQ(samples[i].second, static_cast<double>(i + 3));
  }
}

TEST(Registry, LabelOrderDoesNotSplitCells) {
  Registry reg;
  Counter& a = reg.counter("sdt_labeled_total", {{"sw", "0"}, {"port", "1"}});
  Counter& b = reg.counter("sdt_labeled_total", {{"port", "1"}, {"sw", "0"}});
  EXPECT_EQ(&a, &b);  // canonicalized to the same cell
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(labelKey({{"sw", "0"}, {"port", "1"}}), "port=1,sw=0");
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  reg.counter("sdt_shape_total");
  EXPECT_THROW(reg.gauge("sdt_shape_total"), std::logic_error);
  EXPECT_THROW(reg.histogram("sdt_shape_total", {1.0}), std::logic_error);
  EXPECT_THROW(reg.series("sdt_shape_total", 8), std::logic_error);
}

TEST(Registry, CollectorsRunAtCollectTime) {
  Registry reg;
  std::uint64_t source = 0;
  reg.addCollector([&reg, &source]() {
    reg.counter("sdt_pulled_total").syncTo(source);
  });
  source = 17;
  reg.collect();
  EXPECT_EQ(reg.counter("sdt_pulled_total").value(), 17u);
  source = 25;
  reg.collect();
  EXPECT_EQ(reg.counter("sdt_pulled_total").value(), 25u);
}

TEST(Registry, CellCapReroutesUnboundedLabelSetsToOverflow) {
  // A per-flow label leak (e.g. flow id as a label value) must not grow the
  // registry without bound: past the per-family cap, *new* label sets land
  // in one shared {overflow="true"} cell; existing cells keep their identity.
  Registry reg;
  reg.setCellLimitPerFamily(8);
  EXPECT_EQ(reg.cellLimitPerFamily(), 8u);
  std::vector<Counter*> early;
  for (int i = 0; i < 7; ++i) {
    early.push_back(&reg.counter("sdt_leak_total", {{"flow", std::to_string(i)}}));
  }
  for (int i = 0; i < 100000; ++i) {
    reg.counter("sdt_leak_total", {{"flow", std::to_string(i)}}).inc();
  }
  // 8 regular cells (flow=0..7) plus the one shared overflow cell.
  EXPECT_LE(reg.cellCount(), 9u);
  EXPECT_EQ(reg.overflowCells(), 100000u - 8u);
  // Pre-cap cells survive, stay addressable, and kept their own counts.
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(&reg.counter("sdt_leak_total", {{"flow", std::to_string(i)}}),
              early[static_cast<std::size_t>(i)]);
    EXPECT_EQ(early[static_cast<std::size_t>(i)]->value(), 1u);
  }
  // Everything rerouted accumulated in the single overflow cell.
  EXPECT_EQ(reg.counter("sdt_leak_total", {{"overflow", "true"}}).value(),
            100000u - 8u);
}

TEST(Registry, FootprintStaysBoundedUnderLabelChurn) {
  // One million distinct label sets against a small cap: memory must track
  // the cap, not the churn. approxBytes() is an estimate, so the bound is
  // generous — without the cap this registry would be hundreds of MB.
  Registry reg;
  reg.setCellLimitPerFamily(64);
  for (int i = 0; i < 1000000; ++i) {
    reg.counter("sdt_churn_total", {{"id", std::to_string(i)}}).inc();
  }
  EXPECT_LE(reg.cellCount(), 65u);  // 64 regular + 1 overflow
  EXPECT_EQ(reg.overflowCells(), 1000000u - 64u);
  EXPECT_LT(reg.approxBytes(), 256u * 1024u);
}

TEST(Registry, ConcurrentIncrementsAreLossless) {
  Registry reg;
  Counter& c = reg.counter("sdt_racy_total");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c]() {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Tracer, SpansNestAndAnnotate) {
  Tracer tracer;
  const SpanId root = tracer.begin("deploy", 100);
  const SpanId child = tracer.begin("deploy.install", 150, root);
  tracer.annotate(child, "rules", "12");
  tracer.end(child, 400);
  tracer.annotate(root, "outcome", "ok");
  tracer.end(root, 500);

  const std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "deploy");
  EXPECT_EQ(spans[0].parent, kNoSpan);
  EXPECT_TRUE(spans[0].closed);
  EXPECT_EQ(spans[0].duration(), 400);
  EXPECT_EQ(spans[1].name, "deploy.install");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].duration(), 250);
  ASSERT_EQ(spans[1].attrs.size(), 1u);
  EXPECT_EQ(spans[1].attrs[0].first, "rules");
  EXPECT_EQ(spans[1].attrs[0].second, "12");
}

TEST(Tracer, DoubleEndAndBadIdsAreHarmless) {
  Tracer tracer;
  const SpanId id = tracer.begin("op", 0);
  tracer.end(id, 10);
  tracer.end(id, 99);  // second close ignored
  tracer.end(12345, 1);  // out of range ignored
  tracer.annotate(9999, "k", "v");  // out of range ignored
  const std::vector<Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].end, 10);
  // An open span reports zero duration until closed.
  Tracer t2;
  const SpanId open = t2.begin("open", 5);
  EXPECT_EQ(t2.spans()[open].duration(), 0);
}

namespace {

/// Populate a registry with a representative mix of instruments. `reversed`
/// flips the creation order — the export must not care.
void populate(Registry& reg, bool reversed) {
  const auto counters = [&reg]() {
    reg.counter("sdt_z_total", {{"sw", "1"}}).inc(5);
    reg.counter("sdt_z_total", {{"sw", "0"}}).inc(3);
  };
  const auto rest = [&reg]() {
    reg.gauge("sdt_a_gauge").set(1.5);
    Histogram& h = reg.histogram("sdt_m_hist", {10.0, 100.0});
    h.observe(7.0);
    h.observe(70.0);
    h.observe(700.0);
    RingSeries& s = reg.series("sdt_q_series", 4, {{"port", "2"}});
    s.record(1000, 0.5);
    s.record(2000, 1.5);
  };
  if (reversed) {
    rest();
    counters();
  } else {
    counters();
    rest();
  }
}

}  // namespace

TEST(Export, JsonAndPrometheusAreCreationOrderInvariant) {
  Registry a;
  Registry b;
  populate(a, /*reversed=*/false);
  populate(b, /*reversed=*/true);
  EXPECT_EQ(metricsToJson(a).dump(2), metricsToJson(b).dump(2));
  EXPECT_EQ(metricsToPrometheus(a), metricsToPrometheus(b));
}

TEST(Export, JsonShapeCarriesKindAndValues) {
  Registry reg;
  populate(reg, false);
  const json::Value v = metricsToJson(reg);
  const std::string text = v.dump(2);
  EXPECT_NE(text.find("\"sdt_z_total\""), std::string::npos);
  EXPECT_NE(text.find("\"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"gauge\""), std::string::npos);
  EXPECT_NE(text.find("\"histogram\""), std::string::npos);
  EXPECT_NE(text.find("\"series\""), std::string::npos);
  EXPECT_NE(text.find("+Inf"), std::string::npos);
}

TEST(Export, PrometheusHistogramIsCumulative) {
  Registry reg;
  Histogram& h = reg.histogram("sdt_cum_hist", {10.0, 100.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);
  const std::string text = metricsToPrometheus(reg);
  // Cumulative convention: le="10" sees 1, le="100" sees 2, le="+Inf" 3.
  EXPECT_NE(text.find("sdt_cum_hist_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("sdt_cum_hist_bucket{le=\"100\"} 2"), std::string::npos);
  EXPECT_NE(text.find("sdt_cum_hist_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("sdt_cum_hist_count 3"), std::string::npos);
}

TEST(Export, TracerJsonPreservesOrderAndAttrs) {
  Tracer tracer;
  const SpanId root = tracer.begin("reconfigure", 10);
  const SpanId phase = tracer.begin("reconfigure.install", 20, root);
  tracer.annotate(phase, "attempt", "1");
  tracer.annotate(phase, "attempt", "2");  // keys may repeat
  tracer.end(phase, 30);
  tracer.end(root, 40);
  const std::string text = tracerToJson(tracer).dump(2);
  EXPECT_NE(text.find("\"reconfigure\""), std::string::npos);
  EXPECT_NE(text.find("\"reconfigure.install\""), std::string::npos);
  const auto first = text.find("\"attempt\"");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(text.find("\"attempt\"", first + 1), std::string::npos);
}
