// Tests: deterministic fault injection (sim/faults.hpp) and its interplay
// with the controller's incremental repair.
//
// The injector's contract is the engine's: a run with a fault schedule is
// bit-identical across repeats and across serial vs. SweepRunner-parallel
// sweeps. SDT_FAULT_SEED (the CI fault-soak knob) selects the injector seed
// so the same binary can be soaked under several deterministic schedules.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/retry.hpp"
#include "controller/controller.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/faults.hpp"
#include "sim/transport.hpp"
#include "testbed/evaluator.hpp"
#include "testbed/sweep.hpp"
#include "topo/generators.hpp"

namespace sdt {
namespace {

std::uint64_t faultSeed() {
  const char* env = std::getenv("SDT_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1ULL;
}

struct FaultFingerprint {
  int completed = 0;          ///< TCP flows that finished inside the horizon
  std::int64_t delivered = 0; ///< application bytes delivered over all flows
  std::uint64_t faultDrops = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t portHash = 0;  ///< FNV-1a over every PortCounters field
  std::uint64_t traceHash = 0; ///< FNV-1a over the applied-fault trace

  bool operator==(const FaultFingerprint&) const = default;
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// One SDT-mode experiment under a fixed fault schedule: a cable cut that
/// heals, a wedged transceiver, and an impaired host-facing port, with TCP
/// traffic riding through all of it (TCP because go-back-N retransmission
/// survives the losses; RoCE has no retransmit and would wedge forever).
FaultFingerprint runFaultPoint(std::uint64_t seed, std::int64_t flowBytes) {
  FaultFingerprint fp;
  const topo::Topology topo = topo::makeFatTree(4);
  const routing::ShortestPathRouting routing(topo);
  auto plant = projection::planPlant({&topo}, {.numSwitches = 3});
  EXPECT_TRUE(plant.ok());
  auto instR = testbed::makeSdt(topo, routing, plant.value(), {});
  EXPECT_TRUE(instR.ok()) << instR.error().message;
  testbed::Instance& inst = instR.value();
  const projection::Projection& proj = inst.deployment->projection;
  const projection::Plant& pl = plant.value();

  sim::FaultInjector inj(*inst.sim, inst.net(), seed);
  inj.attachSwitches(inst.built.ofSwitches);
  std::vector<projection::PhysLink> fabric;
  for (const projection::RealizedLink& rl : proj.realizedLinks()) {
    if (rl.optical) continue;
    fabric.push_back(rl.interSwitch ? pl.interLinks[rl.physLink]
                                    : pl.selfLinks[rl.physLink]);
    if (fabric.size() == 2) break;
  }
  if (fabric.size() < 2) {
    ADD_FAILURE() << "expected at least two realized fabric links";
    return fp;
  }
  inj.cutCable(usToNs(40.0), fabric[0].a.sw, fabric[0].a.port);
  inj.restoreCable(usToNs(260.0), fabric[0].a.sw, fabric[0].a.port);
  inj.stallPort(usToNs(60.0), fabric[1].a.sw, fabric[1].a.port);
  inj.unstallPort(usToNs(200.0), fabric[1].a.sw, fabric[1].a.port);
  // Impair the switch port receiving everything host 0 sends, so the
  // probabilistic draws are guaranteed a packet stream to chew on.
  const projection::PhysPort h0 = proj.hostPortOf(0);
  inj.impairPort(usToNs(10.0), h0.sw, h0.port, 0.2, 0.2);
  inj.arm();

  sim::TransportManager& tm = *inst.transport;
  const int hosts = topo.numHosts();
  std::vector<std::uint64_t> flows;
  flows.reserve(static_cast<std::size_t>(hosts));
  for (int h = 0; h < hosts; ++h) {
    const int dst = (h + hosts / 2) % hosts;  // self-free permutation
    flows.push_back(tm.startTcpFlow(h, dst, flowBytes,
                                    [&fp](sim::Time) { ++fp.completed; }));
  }
  inst.sim->runUntil(msToNs(20.0));

  for (const std::uint64_t id : flows) fp.delivered += tm.tcpDeliveredBytes(id);
  fp.faultDrops = inst.net().faultDrops();
  std::uint64_t h = 0xCBF29CE484222325ULL;
  sim::Network& net = inst.net();
  for (int sw = 0; sw < net.numSwitches(); ++sw) {
    for (int p = 0; p < net.switchPortCount(sw); ++p) {
      const sim::PortCounters& c = net.switchPortCounters(sw, p);
      for (const std::uint64_t v :
           {c.txPackets, c.txBytes, c.rxPackets, c.rxBytes, c.drops, c.pausesSent,
            c.ecnMarks, c.faultDrops, c.corruptedPackets}) {
        h = fnv1a(h, v);
      }
      fp.corrupted += c.corruptedPackets;
    }
  }
  fp.portHash = h;
  std::uint64_t t = 0xCBF29CE484222325ULL;
  for (const sim::AppliedFault& f : inj.trace()) {
    t = fnv1a(t, static_cast<std::uint64_t>(f.at));
    t = fnv1a(t, static_cast<std::uint64_t>(f.kind));
    t = fnv1a(t, static_cast<std::uint64_t>(f.sw));
    t = fnv1a(t, static_cast<std::uint64_t>(f.port));
    t = fnv1a(t, static_cast<std::uint64_t>(f.peerSw));
    t = fnv1a(t, static_cast<std::uint64_t>(f.peerPort));
  }
  fp.traceHash = t;
  return fp;
}

TEST(Faults, SameSeedRunsBitIdentical) {
  const std::uint64_t seed = faultSeed();
  const FaultFingerprint a = runFaultPoint(seed, 16 * kKiB);
  const FaultFingerprint b = runFaultPoint(seed, 16 * kKiB);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.faultDrops, 0u);  // the impaired/dead ports really dropped
  EXPECT_GT(a.corrupted, 0u);   // and really damaged frames
  EXPECT_GT(a.delivered, 0);    // yet TCP kept making progress
}

TEST(Faults, DistinctSeedsDiverge) {
  const std::uint64_t seed = faultSeed();
  // Same schedule, different impairment draws: the applied-fault trace is
  // identical but the packet-level outcome must not be.
  const FaultFingerprint a = runFaultPoint(seed, 16 * kKiB);
  const FaultFingerprint b = runFaultPoint(seed + 1, 16 * kKiB);
  EXPECT_EQ(a.traceHash, b.traceHash);
  EXPECT_NE(a, b);
}

TEST(Faults, SerialAndParallelSweepsBitIdentical) {
  const std::uint64_t seed = faultSeed();
  struct Point {
    std::uint64_t seed;
    std::int64_t bytes;
  };
  const std::vector<Point> points{
      {seed, 8 * kKiB}, {seed + 1, 8 * kKiB}, {seed, 24 * kKiB}};

  std::vector<FaultFingerprint> serial;
  serial.reserve(points.size());
  for (const Point& p : points) serial.push_back(runFaultPoint(p.seed, p.bytes));

  const testbed::SweepRunner sweep(4);
  const std::vector<FaultFingerprint> threaded = sweep.run(
      points.size(),
      [&](std::size_t i) { return runFaultPoint(points[i].seed, points[i].bytes); });

  ASSERT_EQ(threaded.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(threaded[i], serial[i]) << "point " << i << " diverged";
  }
  EXPECT_NE(serial[0], serial[1]);  // seeds must matter, or the above is vacuous
}

TEST(Faults, CableCutDownsBothPeerPortsAndRestores) {
  const topo::Topology topo = topo::makeLine(2);
  routing::ShortestPathRouting routing(topo);
  projection::PlantConfig cfg;
  cfg.numSwitches = 1;
  cfg.hostPortsPerSwitch = 2;
  cfg.interLinksPerPair = 0;
  auto plant = projection::buildPlant(cfg);
  ASSERT_TRUE(plant.ok());
  controller::SdtController ctl(plant.value());
  auto dep = ctl.deploy(topo, routing);
  ASSERT_TRUE(dep.ok()) << dep.error().message;

  sim::Simulator sim;
  auto built = sim::buildProjectedNetwork(sim, topo, dep.value().projection,
                                          plant.value(), dep.value().switches, {}, {});
  const projection::RealizedLink& rl = dep.value().projection.realizedLinks().at(0);
  ASSERT_FALSE(rl.interSwitch);
  const projection::PhysLink cable = plant.value().selfLinks[rl.physLink];

  sim::FaultInjector inj(sim, *built.net, faultSeed());
  inj.apply({0, sim::FaultKind::kCableCut, cable.a.sw, cable.a.port});
  EXPECT_FALSE(built.net->isPortUp(cable.a.sw, cable.a.port));
  EXPECT_FALSE(built.net->isPortUp(cable.b.sw, cable.b.port));
  ASSERT_EQ(inj.trace().size(), 1u);
  EXPECT_EQ(inj.trace()[0].kind, sim::FaultKind::kCableCut);
  EXPECT_EQ(inj.trace()[0].peerSw, cable.b.sw);
  EXPECT_EQ(inj.trace()[0].peerPort, cable.b.port);

  inj.apply({0, sim::FaultKind::kCableRestore, cable.a.sw, cable.a.port});
  EXPECT_TRUE(built.net->isPortUp(cable.a.sw, cable.a.port));
  EXPECT_TRUE(built.net->isPortUp(cable.b.sw, cable.b.port));
}

TEST(Faults, SwitchCrashRepairReinstallsExactTable) {
  const topo::Topology topo = topo::makeFatTree(4);
  routing::ShortestPathRouting routing(topo);
  auto plant = projection::planPlant({&topo}, {.numSwitches = 3});
  ASSERT_TRUE(plant.ok());
  controller::SdtController ctl(plant.value());
  auto depR = ctl.deploy(topo, routing);
  ASSERT_TRUE(depR.ok()) << depR.error().message;
  controller::Deployment dep = std::move(depR).value();

  const int crashed = 1;
  const std::vector<openflow::FlowEntry> fresh = dep.switches[crashed]->table().entries();
  ASSERT_FALSE(fresh.empty());
  dep.switches[crashed]->table().clear();  // power cycle: table gone

  controller::FailureSet failures;
  failures.crashedSwitches = {crashed};
  auto repR = ctl.repair(dep, topo, routing, failures);
  ASSERT_TRUE(repR.ok()) << repR.error().message;
  const controller::RepairReport& report = repR.value();

  // Differential: the repaired table must be the fresh-deploy table, entry
  // for entry and in the same order (priorities are uniform, FlowTable::add
  // is stable, the recompile is deterministic).
  const std::vector<openflow::FlowEntry>& entries = dep.switches[crashed]->table().entries();
  ASSERT_EQ(entries.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_TRUE(openflow::sameRule(entries[i], fresh[i])) << "entry " << i;
  }
  EXPECT_EQ(report.remappedLinks, 0);
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.flowModsRemoved, 0);
  EXPECT_EQ(report.flowModsAdded, static_cast<int>(fresh.size()));
  EXPECT_LT(report.flowMods(), report.fullRedeployFlowMods);
  EXPECT_GT(report.repairTime, 0);
}

TEST(Faults, RetryBackoffIsDeterministicAndBounded) {
  retry::RetryPolicy policy;
  policy.maxAttempts = 5;
  int calls = 0;
  const retry::RetryResult r1 =
      retry::retryWithBackoff(policy, 7, [&](int) { return ++calls == 3; });
  EXPECT_TRUE(r1.succeeded);
  EXPECT_EQ(r1.attempts, 3);
  EXPECT_GT(r1.elapsed, 0);
  calls = 0;
  const retry::RetryResult r2 =
      retry::retryWithBackoff(policy, 7, [&](int) { return ++calls == 3; });
  EXPECT_EQ(r1.elapsed, r2.elapsed);  // same stream id -> same jitter draws
  const retry::RetryResult fail =
      retry::retryWithBackoff(policy, 9, [](int) { return false; });
  EXPECT_FALSE(fail.succeeded);
  EXPECT_EQ(fail.attempts, 5);
  const retry::RetryResult instant =
      retry::retryWithBackoff(policy, 11, [](int) { return true; });
  EXPECT_EQ(instant.attempts, 1);
  EXPECT_EQ(instant.elapsed, 0);  // success on attempt 1 costs nothing extra
}

TEST(Faults, ControlChannelRetriesAreAccounted) {
  const topo::Topology topo = topo::makeLine(4);
  routing::ShortestPathRouting routing(topo);
  projection::PlantConfig cfg;
  cfg.numSwitches = 1;
  cfg.hostPortsPerSwitch = 4;
  cfg.interLinksPerPair = 0;
  auto plant = projection::buildPlant(cfg);
  ASSERT_TRUE(plant.ok());
  controller::SdtController ctl(plant.value());
  auto depR = ctl.deploy(topo, routing);
  ASSERT_TRUE(depR.ok()) << depR.error().message;
  controller::Deployment dep = std::move(depR).value();
  dep.switches[0]->table().clear();

  controller::FailureSet failures;
  failures.crashedSwitches = {0};
  controller::RepairOptions options;
  options.controlChannel = [](int attempt) { return attempt >= 2; };  // fail once each
  auto repR = ctl.repair(dep, topo, routing, failures, options);
  ASSERT_TRUE(repR.ok()) << repR.error().message;
  EXPECT_GT(repR.value().flowModsAdded, 0);
  EXPECT_EQ(repR.value().installRetries, repR.value().flowModsAdded);
  EXPECT_GT(repR.value().retryBackoffTime, 0);
  EXPECT_GT(repR.value().repairTime, repR.value().retryBackoffTime);
}

TEST(Faults, UnreachableControlChannelFailsRepair) {
  const topo::Topology topo = topo::makeLine(4);
  routing::ShortestPathRouting routing(topo);
  projection::PlantConfig cfg;
  cfg.numSwitches = 1;
  cfg.hostPortsPerSwitch = 4;
  cfg.interLinksPerPair = 0;
  auto plant = projection::buildPlant(cfg);
  ASSERT_TRUE(plant.ok());
  controller::SdtController ctl(plant.value());
  auto depR = ctl.deploy(topo, routing);
  ASSERT_TRUE(depR.ok()) << depR.error().message;
  controller::Deployment dep = std::move(depR).value();
  dep.switches[0]->table().clear();

  controller::FailureSet failures;
  failures.crashedSwitches = {0};
  controller::RepairOptions options;
  options.retry.maxAttempts = 3;
  options.controlChannel = [](int) { return false; };  // switch is gone
  auto repR = ctl.repair(dep, topo, routing, failures, options);
  ASSERT_FALSE(repR.ok());
  EXPECT_NE(repR.error().message.find("control channel"), std::string::npos);
}

}  // namespace
}  // namespace sdt
