// Tests: channel-dependency-graph analysis — Table III's deadlock-avoidance
// column, verified algorithmically, plus a positive control (a routing
// function designed to deadlock must be flagged).
#include <gtest/gtest.h>

#include "routing/adaptive.hpp"
#include "routing/deadlock.hpp"
#include "routing/dragonfly.hpp"
#include "routing/fat_tree.hpp"
#include "routing/mesh_torus.hpp"
#include "routing/shortest_path.hpp"
#include "topo/generators.hpp"

namespace sdt::routing {
namespace {

TEST(Deadlock, FatTreeUpDownNeedsNoVcs) {
  const topo::Topology ft = topo::makeFatTree(4);
  auto algo = FatTreeRouting::create(ft);
  ASSERT_TRUE(algo.ok());
  EXPECT_EQ(algo.value()->numVcs(), 1);  // Table III: "No need"
  const DeadlockReport r = analyzeDeadlock(ft, *algo.value());
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.deadlockFree);
  EXPECT_GT(r.channelsUsed, 0);
}

TEST(Deadlock, DragonflyMinimalWithVcChange) {
  const topo::Topology df = topo::makeDragonfly(4, 9, 2);
  auto algo = DragonflyMinimalRouting::create(df);
  ASSERT_TRUE(algo.ok());
  const DeadlockReport r = analyzeDeadlock(df, *algo.value());
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.deadlockFree);
}

TEST(Deadlock, MeshXyByRouting) {
  const topo::Topology m = topo::makeMesh2D(4, 4);
  auto algo = DimensionOrderRouting::create(m);
  ASSERT_TRUE(algo.ok());
  const DeadlockReport r = analyzeDeadlock(m, *algo.value());
  EXPECT_TRUE(r.deadlockFree);
}

TEST(Deadlock, Mesh3DXyzByRouting) {
  const topo::Topology m = topo::makeMesh3D(3, 3, 3);
  auto algo = DimensionOrderRouting::create(m);
  ASSERT_TRUE(algo.ok());
  EXPECT_TRUE(analyzeDeadlock(m, *algo.value()).deadlockFree);
}

class TorusDeadlockSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TorusDeadlockSweep, DatelineVcsBreakRingCycles) {
  const auto [x, y, z] = GetParam();
  const topo::Topology t =
      z == 1 ? topo::makeTorus2D(x, y) : topo::makeTorus3D(x, y, z);
  auto algo = DimensionOrderRouting::create(t);
  ASSERT_TRUE(algo.ok());
  const DeadlockReport r = analyzeDeadlock(t, *algo.value());
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.deadlockFree) << "cycle of " << r.cycle.size() << " channels";
}

INSTANTIATE_TEST_SUITE_P(Shapes, TorusDeadlockSweep,
                         ::testing::Values(std::tuple{4, 4, 1}, std::tuple{5, 5, 1},
                                           std::tuple{4, 4, 4}, std::tuple{3, 3, 3}));

TEST(Deadlock, AdaptiveDragonflyUnionOfModes) {
  // Verify the union CDG of never-detour and always-detour behaviours.
  const topo::Topology df = topo::makeDragonfly(4, 9, 2);
  auto minimalMode = AdaptiveDragonflyRouting::create(df);
  auto valiantMode = AdaptiveDragonflyRouting::create(df);
  ASSERT_TRUE(minimalMode.ok() && valiantMode.ok());
  valiantMode.value()->setBias(-1.0);
  valiantMode.value()->setCongestionOracle([](topo::SwitchId, topo::PortId) {
    return 1.0;
  });
  const DeadlockReport r = analyzeDeadlock(
      df, {minimalMode.value().get(), valiantMode.value().get()});
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.deadlockFree) << "cycle of " << r.cycle.size() << " channels";
}

// Positive control: single-VC routing around a ring that always travels
// clockwise has the textbook channel cycle and must be flagged.
class ClockwiseRingRouting : public RoutingAlgorithm {
 public:
  explicit ClockwiseRingRouting(const topo::Topology& topo) : RoutingAlgorithm(topo) {}
  [[nodiscard]] std::string name() const override { return "clockwise-ring"; }
  [[nodiscard]] Result<Hop> nextHop(topo::SwitchId sw, topo::HostId /*dst*/, int vc,
                                    std::uint64_t /*flowHash*/) const override {
    const int n = topo_->numSwitches();
    const topo::SwitchId next = (sw + 1) % n;
    for (const int li : topo_->linksOf(sw)) {
      const topo::Link& link = topo_->link(li);
      const topo::SwitchPort mine = link.a.sw == sw ? link.a : link.b;
      if (link.peerOf(sw).sw == next) return Hop{mine.port, vc};
    }
    return makeError("no clockwise link");
  }
};

TEST(Deadlock, ClockwiseRingIsFlagged) {
  const topo::Topology ring = topo::makeRing(6);
  ClockwiseRingRouting algo(ring);
  const DeadlockReport r = analyzeDeadlock(ring, algo);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_FALSE(r.deadlockFree);
  EXPECT_GE(r.cycle.size(), 3u);  // the witness cycle covers the ring
}

TEST(Deadlock, ShortestPathOnRingIsUnsafe) {
  // Dally & Seitz's classic observation: single-VC shortest-path routing on
  // a ring closes a channel cycle (consecutive-hop dependencies cover the
  // whole ring). This is exactly why the torus algorithm needs datelines;
  // the analyzer must flag the naive version.
  const topo::Topology ring = topo::makeRing(6);
  ShortestPathRouting algo(ring);
  const DeadlockReport r = analyzeDeadlock(ring, algo);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_FALSE(r.deadlockFree);
}

TEST(Deadlock, ReportCountsChannels) {
  const topo::Topology m = topo::makeMesh2D(3, 3);
  auto algo = DimensionOrderRouting::create(m);
  ASSERT_TRUE(algo.ok());
  const DeadlockReport r = analyzeDeadlock(m, *algo.value());
  // 12 links x 2 directions x 1 VC = 24 possible channels; DOR uses most.
  EXPECT_GT(r.channelsUsed, 10);
  EXPECT_LE(r.channelsUsed, 24);
  EXPECT_GT(r.dependencyEdges, 0);
}

}  // namespace
}  // namespace sdt::routing
