// Tests: multilevel partitioner vs the paper's §IV-C requirements —
// small cut, balanced per-part port load — including optimality-gap checks
// against exhaustive bisection on small graphs.
#include <gtest/gtest.h>

#include <numeric>

#include "partition/partitioner.hpp"
#include "topo/generators.hpp"

namespace sdt::partition {
namespace {

using topo::Graph;

TEST(Partition, RejectsBadInputs) {
  Graph g(4);
  EXPECT_FALSE(partitionGraph(g, {.parts = 0}).ok());
  EXPECT_FALSE(partitionGraph(Graph{}, {.parts = 2}).ok());
  EXPECT_FALSE(partitionGraph(g, {.parts = 5}).ok());
}

TEST(Partition, SinglePartTrivial) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  auto r = partitionGraph(g, {.parts = 1});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().cutWeight, 0);
  EXPECT_EQ(r.value().internalEdges[0], 2);
}

TEST(Partition, TwoCliquesWithBridgeCutsTheBridge) {
  // Two K4s joined by one edge: the optimal bisection cuts exactly it.
  Graph g(8);
  for (int base : {0, 4}) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) g.addEdge(base + i, base + j);
    }
  }
  g.addEdge(3, 4);
  auto r = partitionGraph(g, {.parts = 2, .seed = 3});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().cutWeight, 1);
  // Each side keeps its clique.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r.value().assignment[i], r.value().assignment[0]);
  for (int i = 4; i < 8; ++i) EXPECT_EQ(r.value().assignment[i], r.value().assignment[4]);
}

TEST(Partition, EvaluateAssignmentCountsCutAndLoads) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 3);
  PartitionOptions opt{.parts = 2};
  auto r = evaluateAssignment(g, {0, 0, 1, 1}, 2, opt);
  EXPECT_EQ(r.cutWeight, 1);
  EXPECT_EQ(r.internalEdges[0], 1);
  EXPECT_EQ(r.internalEdges[1], 1);
  // Degree loads: part0 = deg(0)+deg(1) = 1+2 = 3; part1 same.
  EXPECT_EQ(r.partLoad[0], 3);
  EXPECT_EQ(r.partLoad[1], 3);
}

TEST(Partition, ExactBisectionAgreesOnTinyGraphs) {
  // Heuristic cut must be within 2x of the exact optimum on small rings.
  for (const int n : {6, 8, 10}) {
    Graph g(n);
    for (int i = 0; i < n; ++i) g.addEdge(i, (i + 1) % n);
    auto exact = exactBisection(g);
    auto heur = partitionGraph(g, {.parts = 2, .seed = 5});
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(heur.ok());
    EXPECT_EQ(exact.value().cutWeight, 2);  // ring bisection cuts 2 edges
    EXPECT_LE(heur.value().cutWeight, 2 * exact.value().cutWeight);
  }
}

TEST(Partition, ExactBisectionRespectsBalanceCap) {
  Graph g(6);
  for (int i = 0; i + 1 < 6; ++i) g.addEdge(i, i + 1);
  PartitionOptions opt;
  opt.maxImbalance = 0.35;
  auto r = exactBisection(g, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.value().imbalance(), 0.35);
}

TEST(Partition, ExactRefusesOversizedGraphs) {
  EXPECT_FALSE(exactBisection(Graph(23)).ok());
}

// Property sweep: on every paper topology, the partitioner must produce a
// valid, reasonably balanced split for 2 and 3 parts (the plant sizes the
// paper uses).
class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(PartitionSweep, BalancedAndComplete) {
  const auto [name, parts] = GetParam();
  topo::Topology t;
  const std::string which = name;
  if (which == "fattree") t = topo::makeFatTree(4);
  if (which == "dragonfly") t = topo::makeDragonfly(4, 9, 2);
  if (which == "torus") t = topo::makeTorus3D(4, 4, 4);
  if (which == "mesh") t = topo::makeMesh2D(5, 5);
  const Graph g = t.switchGraph();
  auto r = partitionGraph(g, {.parts = parts, .seed = 42});
  ASSERT_TRUE(r.ok()) << r.error().message;
  const auto& res = r.value();
  ASSERT_EQ(static_cast<int>(res.assignment.size()), g.numVertices());
  for (const int p : res.assignment) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, parts);
  }
  // Every part non-empty.
  std::vector<int> count(static_cast<std::size_t>(parts), 0);
  for (const int p : res.assignment) ++count[p];
  for (const int c : count) EXPECT_GT(c, 0);
  // Load balance within the configured tolerance plus slack for coarse
  // structures (a Fat-Tree pod is hard to split exactly).
  EXPECT_LE(res.imbalance(), 0.60) << which << " parts=" << parts;
  // Cut not absurd: strictly less than all edges.
  EXPECT_LT(res.cutWeight, g.numEdges());
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, PartitionSweep,
    ::testing::Combine(::testing::Values("fattree", "dragonfly", "torus", "mesh"),
                       ::testing::Values(2, 3)));

TEST(Partition, DeterministicForSeed) {
  const Graph g = topo::makeDragonfly(4, 9, 2).switchGraph();
  auto a = partitionGraph(g, {.parts = 3, .seed = 9});
  auto b = partitionGraph(g, {.parts = 3, .seed = 9});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().assignment, b.value().assignment);
}

// Regression: evaluateAssignment used to score an empty part with a finite
// 2.0 penalty, so on dense graphs (here K8) parking *everything* on one
// physical switch scored 4*(1/28 + 2) ~ 8.1, beating the balanced split's
// 16 + 4*(1/6 + 1/6) ~ 17.3 — an idle switch "won" on cut savings. The
// paper's beta term 1/|E_i| diverges as |E_i| -> 0, so an internal-edge-free
// part must carry a dominating penalty when beta > 0.
TEST(Partition, EmptyPartCannotBeatBalancedSplit) {
  Graph k8(8);
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) k8.addEdge(i, j);
  }
  PartitionOptions opt{.parts = 2};
  const auto emptySide = evaluateAssignment(k8, {0, 0, 0, 0, 0, 0, 0, 0}, 2, opt);
  const auto balanced = evaluateAssignment(k8, {0, 0, 0, 0, 1, 1, 1, 1}, 2, opt);
  EXPECT_GT(emptySide.objective, balanced.objective);
  // The penalty dominates: one internal-edge-free part must outweigh the
  // largest possible finite objective (cutting every edge).
  std::vector<int> everyOther(8);
  for (int i = 0; i < 8; ++i) everyOther[i] = i % 2;
  const auto worstCut = evaluateAssignment(k8, std::move(everyOther), 2, opt);
  EXPECT_GT(emptySide.objective, worstCut.objective);
  // With beta == 0 the balance term is off and min-cut semantics remain.
  PartitionOptions minCut{.parts = 2, .beta = 0.0};
  const auto cutOnly = evaluateAssignment(k8, {0, 0, 0, 0, 0, 0, 0, 0}, 2, minCut);
  EXPECT_DOUBLE_EQ(cutOnly.objective, 0.0);
}

// Regression: recursive kWay stranded parts empty on small/star graphs —
// multilevelBisect balances *degree load*, so it can park every vertex on
// one side (always, with beta == 0 disabling balance repair), and the
// orphaned branch silently kept partLoad == 0. Every part must be non-empty
// whenever parts <= numVertices.
TEST(Partition, KWayNeverStrandsAPartEmpty) {
  for (const int n : {3, 4, 5, 8}) {
    Graph path(n), star(n);
    for (int i = 0; i + 1 < n; ++i) path.addEdge(i, i + 1);
    for (int i = 1; i < n; ++i) star.addEdge(0, i);
    for (const Graph* g : {&path, &star}) {
      for (const int parts : {2, 3}) {
        if (parts > n) continue;
        for (const double beta : {0.0, 4.0}) {
          for (const double cap : {0.35, 10.0}) {
            for (std::uint64_t seed = 1; seed <= 5; ++seed) {
              auto r = partitionGraph(
                  *g, {.parts = parts, .beta = beta, .maxImbalance = cap, .seed = seed});
              ASSERT_TRUE(r.ok());
              std::vector<int> count(static_cast<std::size_t>(parts), 0);
              for (const int p : r.value().assignment) ++count[p];
              for (int p = 0; p < parts; ++p) {
                EXPECT_GT(count[p], 0)
                    << (g == &path ? "path" : "star") << n << " parts=" << parts
                    << " beta=" << beta << " cap=" << cap << " seed=" << seed;
              }
            }
          }
        }
      }
    }
  }
  // The weighted-star shape that previously stranded part 1 even with the
  // default balanced objective (beta=4, cap 0.35 -> 0.3, seed 7).
  Graph ws(5);
  ws.addEdge(0, 1, 100);
  ws.addEdge(0, 2, 1);
  ws.addEdge(0, 3, 1);
  ws.addEdge(0, 4, 1);
  auto r = partitionGraph(ws, {.parts = 3, .maxImbalance = 0.3, .seed = 7});
  ASSERT_TRUE(r.ok());
  std::vector<int> count(3, 0);
  for (const int p : r.value().assignment) ++count[p];
  for (int p = 0; p < 3; ++p) EXPECT_GT(count[p], 0);
}

// Regression: maxImbalance is documented as a hard cap, but partitionGraph
// only repaired bisections to a hard-coded 5% tolerance per level, so the
// k-way composition could silently return e.g. 46.7% on star-16 at a 35%
// cap. Now a final repair pass drains the heaviest part, and residual
// violations (cap infeasible: the hub's degree alone exceeds it) are
// surfaced via imbalanceViolated instead of ignored.
TEST(Partition, HardImbalanceCapRepairedOrFlagged) {
  const Graph star = topo::makeStar(16).switchGraph();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    PartitionOptions opt{.parts = 2, .seed = seed};
    auto r = partitionGraph(star, opt);
    ASSERT_TRUE(r.ok());
    // Feasible at 2 parts (hub alone = exactly the ideal load): the repair
    // pass must reach the cap, not just flag it.
    EXPECT_LE(r.value().imbalance(), opt.maxImbalance + 1e-9) << "seed=" << seed;
    EXPECT_FALSE(r.value().imbalanceViolated);
  }
  // At 3 parts the cap is infeasible: the hub part's load is >= 15 against
  // an ideal of 10, so imbalance >= 50% always. The result must say so.
  auto r3 = partitionGraph(star, {.parts = 3, .seed = 1});
  ASSERT_TRUE(r3.ok());
  EXPECT_GT(r3.value().imbalance(), 0.35);
  EXPECT_TRUE(r3.value().imbalanceViolated);
  // And the repair must have pushed to the floor, not given up early.
  EXPECT_LE(r3.value().imbalance(), 0.5 + 1e-9);
}

TEST(Partition, BalanceObjectiveBeatsPureMinCutOnStar) {
  // Fig. 8: pure min-cut would slice off a leaf; the balanced objective
  // should keep parts comparable.
  Graph g(9);
  for (int i = 1; i < 9; ++i) g.addEdge(0, i);
  auto r = partitionGraph(g, {.parts = 2, .beta = 8.0, .seed = 1});
  ASSERT_TRUE(r.ok());
  const auto total = std::accumulate(r.value().partLoad.begin(),
                                     r.value().partLoad.end(), std::int64_t{0});
  // No part may hold less than ~20% of the load.
  for (const auto load : r.value().partLoad) {
    EXPECT_GE(load, total / 5);
  }
}

}  // namespace
}  // namespace sdt::partition
