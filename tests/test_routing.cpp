// Tests: routing algorithms (Table III) — all-pairs reachability, path
// properties, and structural expectations per topology family.
#include <gtest/gtest.h>

#include "routing/adaptive.hpp"
#include "routing/dragonfly.hpp"
#include "routing/fat_tree.hpp"
#include "routing/mesh_torus.hpp"
#include "routing/routing.hpp"
#include "routing/shortest_path.hpp"
#include "topo/generators.hpp"

namespace sdt::routing {
namespace {

/// Every host pair must be routable with a bounded path.
void expectAllPairsRoutable(const topo::Topology& topo, const RoutingAlgorithm& algo,
                            int maxHops) {
  for (topo::HostId src = 0; src < topo.numHosts(); ++src) {
    for (topo::HostId dst = 0; dst < topo.numHosts(); ++dst) {
      if (topo.hostSwitch(src) == topo.hostSwitch(dst)) continue;
      auto path = algo.tracePath(src, dst);
      ASSERT_TRUE(path.ok()) << algo.name() << " " << src << "->" << dst << ": "
                             << path.error().message;
      ASSERT_LE(static_cast<int>(path.value().size()), maxHops + 1)
          << algo.name() << " " << src << "->" << dst;
    }
  }
}

TEST(ShortestPath, LineIsDirect) {
  const topo::Topology topo = topo::makeLine(8);
  ShortestPathRouting algo(topo);
  auto path = algo.tracePath(0, 7);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value().size(), 8u);  // all 8 switches
}

TEST(ShortestPath, AllPairsOnIrregularGraph) {
  const topo::Topology topo = topo::makeStar(6);
  ShortestPathRouting algo(topo);
  expectAllPairsRoutable(topo, algo, 2);
}

TEST(ShortestPath, EcmpCandidatesAreEqualCost) {
  const topo::Topology topo = topo::makeFatTree(4);
  ShortestPathRouting algo(topo);
  // From an edge switch to a remote pod there are k/2 = 2 uplinks.
  const auto cands = algo.candidates(16, 12);  // edge sw, host in another pod
  EXPECT_GE(cands.size(), 1u);
}

TEST(FatTree, CreateValidatesStructure) {
  const topo::Topology ft = topo::makeFatTree(4);
  EXPECT_TRUE(FatTreeRouting::create(ft).ok());
  const topo::Topology notFt = topo::makeLine(20);
  EXPECT_FALSE(FatTreeRouting::create(notFt).ok());
}

TEST(FatTree, LevelsAndPods) {
  const topo::Topology ft = topo::makeFatTree(4);
  auto algo = FatTreeRouting::create(ft);
  ASSERT_TRUE(algo.ok());
  const auto& r = *algo.value();
  EXPECT_EQ(r.k(), 4);
  EXPECT_EQ(r.levelOf(0), 0);   // core
  EXPECT_EQ(r.levelOf(4), 1);   // first agg of pod 0
  EXPECT_EQ(r.levelOf(6), 2);   // first edge of pod 0
  EXPECT_EQ(r.podOf(6), 0);
  EXPECT_EQ(r.podOf(8), 1);
}

class FatTreeRoutingSweep : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeRoutingSweep, AllPairsUpDown) {
  const int k = GetParam();
  const topo::Topology ft = topo::makeFatTree(k);
  auto algo = FatTreeRouting::create(ft);
  ASSERT_TRUE(algo.ok());
  // Up*/down* paths are at most 4 switch-hops (edge-agg-core-agg-edge).
  expectAllPairsRoutable(ft, *algo.value(), 4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FatTreeRoutingSweep, ::testing::Values(4, 6));

TEST(FatTree, EcmpSpreadsOverUplinks) {
  const topo::Topology ft = topo::makeFatTree(4);
  auto algo = FatTreeRouting::create(ft);
  ASSERT_TRUE(algo.ok());
  const auto ups = algo.value()->upCandidates(16, 0);  // edge sw in last pod
  EXPECT_EQ(ups.size(), 2u);
  // Different hashes select different uplinks at least once.
  auto h0 = algo.value()->nextHop(16, 0, 0, 0);
  auto h1 = algo.value()->nextHop(16, 0, 0, 1);
  ASSERT_TRUE(h0.ok() && h1.ok());
  EXPECT_NE(h0.value().outPort, h1.value().outPort);
}

TEST(Dragonfly, MinimalPathsAtMostLGL) {
  const topo::Topology df = topo::makeDragonfly(4, 9, 2);
  auto algo = DragonflyMinimalRouting::create(df);
  ASSERT_TRUE(algo.ok()) << algo.error().message;
  // Minimal dragonfly: local, global, local = 4 switches max on the path.
  expectAllPairsRoutable(df, *algo.value(), 3);
}

TEST(Dragonfly, VcBumpsExactlyOnGlobalHop) {
  const topo::Topology df = topo::makeDragonfly(4, 9, 2);
  auto algo = DragonflyMinimalRouting::create(df);
  ASSERT_TRUE(algo.ok());
  const auto& r = *algo.value();
  // Host 0 (router 0, group 0) -> host in group 5.
  const topo::HostId dst = 5 * 4;  // router 20's host
  topo::SwitchId sw = 0;
  int vc = 0;
  int globalHops = 0;
  for (int i = 0; i < 4 && sw != df.hostSwitch(dst); ++i) {
    auto hop = r.nextHop(sw, dst, vc, 0);
    ASSERT_TRUE(hop.ok());
    const auto peer = df.neighborOf(topo::SwitchPort{sw, hop.value().outPort});
    ASSERT_TRUE(peer.has_value());
    const bool global = r.groupOf(peer->sw) != r.groupOf(sw);
    if (global) {
      ++globalHops;
      EXPECT_EQ(hop.value().vc, 1);  // VC bump on the global hop
    }
    sw = peer->sw;
    vc = hop.value().vc;
  }
  EXPECT_EQ(globalHops, 1);
  EXPECT_EQ(sw, df.hostSwitch(dst));
}

TEST(Dragonfly, RejectsNonDragonfly) {
  const topo::Topology line = topo::makeLine(8);
  EXPECT_FALSE(DragonflyMinimalRouting::create(line).ok());
}

class DorSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(DorSweep, AllPairsDimensionOrder) {
  const std::string which = GetParam();
  topo::Topology t;
  int maxHops = 0;
  if (which == "mesh2d") {
    t = topo::makeMesh2D(4, 4);
    maxHops = 6;
  } else if (which == "mesh3d") {
    t = topo::makeMesh3D(3, 3, 3);
    maxHops = 6;
  } else if (which == "torus2d") {
    t = topo::makeTorus2D(5, 5);
    maxHops = 4;
  } else {
    t = topo::makeTorus3D(4, 4, 4);
    maxHops = 6;
  }
  auto algo = DimensionOrderRouting::create(t);
  ASSERT_TRUE(algo.ok()) << algo.error().message;
  expectAllPairsRoutable(t, *algo.value(), maxHops);
}

INSTANTIATE_TEST_SUITE_P(Grids, DorSweep,
                         ::testing::Values("mesh2d", "mesh3d", "torus2d", "torus3d"));

TEST(Dor, TorusTakesShorterRingDirection) {
  const topo::Topology t = topo::makeTorus2D(5, 5);
  auto algo = DimensionOrderRouting::create(t);
  ASSERT_TRUE(algo.ok());
  // From (0,0) to (4,0): backward through the wraparound (1 hop), not 4.
  auto path = algo.value()->tracePath(0, 4);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value().size(), 2u);
}

TEST(Dor, MeshNeedsOneVc) {
  const topo::Topology t = topo::makeMesh2D(4, 4);
  auto algo = DimensionOrderRouting::create(t);
  ASSERT_TRUE(algo.ok());
  EXPECT_EQ(algo.value()->numVcs(), 1);
  EXPECT_EQ(algo.value()->name(), "mesh-xy");
}

TEST(Dor, TorusUsesDatelineVcs) {
  const topo::Topology t = topo::makeTorus3D(4, 4, 4);
  auto algo = DimensionOrderRouting::create(t);
  ASSERT_TRUE(algo.ok());
  EXPECT_EQ(algo.value()->numVcs(), 6);  // 2 per dimension
  EXPECT_EQ(algo.value()->name(), "torus-clue");
}

TEST(Adaptive, MinimalWhenUncongested) {
  const topo::Topology df = topo::makeDragonfly(4, 9, 2);
  auto algo = AdaptiveDragonflyRouting::create(df);
  ASSERT_TRUE(algo.ok());
  // No oracle -> zero loads -> identical to minimal routing.
  auto minimal = DragonflyMinimalRouting::create(df);
  ASSERT_TRUE(minimal.ok());
  for (topo::HostId dst = 0; dst < df.numHosts(); dst += 7) {
    for (topo::SwitchId sw = 0; sw < df.numSwitches(); sw += 5) {
      if (df.hostSwitch(dst) == sw) continue;
      auto a = algo.value()->nextHop(sw, dst, 0, 3);
      auto m = minimal.value()->nextHop(sw, dst, 0, 3);
      ASSERT_TRUE(a.ok() && m.ok());
      EXPECT_EQ(a.value().outPort, m.value().outPort);
    }
  }
}

TEST(Adaptive, DetoursUnderCongestion) {
  const topo::Topology df = topo::makeDragonfly(4, 9, 2);
  auto algo = AdaptiveDragonflyRouting::create(df);
  ASSERT_TRUE(algo.ok());
  auto minimal = DragonflyMinimalRouting::create(df);
  ASSERT_TRUE(minimal.ok());
  // Oracle: the minimal out-port at router 0 toward group 5 is saturated.
  const topo::HostId dst = 5 * 4;
  auto minHop = minimal.value()->nextHop(0, dst, 0, 1);
  ASSERT_TRUE(minHop.ok());
  algo.value()->setCongestionOracle(
      [&](topo::SwitchId sw, topo::PortId port) {
        return (sw == 0 && port == minHop.value().outPort) ? 1e9 : 0.0;
      });
  auto hop = algo.value()->nextHop(0, dst, 0, 1);
  ASSERT_TRUE(hop.ok());
  EXPECT_NE(hop.value().outPort, minHop.value().outPort);
  // Valiant paths still terminate for every pair even when forced.
  algo.value()->setBias(-1.0);  // always prefer the detour
  algo.value()->setCongestionOracle(
      [](topo::SwitchId, topo::PortId) { return 1.0; });
  expectAllPairsRoutable(df, *algo.value(), 6);
}

TEST(Factory, KnownStrategies) {
  const topo::Topology ft = topo::makeFatTree(4);
  EXPECT_TRUE(makeRouting("fattree-dfs", ft).ok());
  EXPECT_TRUE(makeRouting("shortest", ft).ok());
  const topo::Topology df = topo::makeDragonfly(4, 9, 2);
  EXPECT_TRUE(makeRouting("dragonfly-minimal", df).ok());
  EXPECT_TRUE(makeRouting("dragonfly-adaptive", df).ok());
  const topo::Topology t2 = topo::makeTorus2D(5, 5);
  EXPECT_TRUE(makeRouting("torus-clue", t2).ok());
  EXPECT_FALSE(makeRouting("bogus", ft).ok());
  // Mismatched strategy/topology pairs fail cleanly.
  EXPECT_FALSE(makeRouting("dragonfly-minimal", ft).ok());
  EXPECT_FALSE(makeRouting("mesh-xy", df).ok());
}

}  // namespace
}  // namespace sdt::routing
