// Tests: replicated controller HA (controller/ha.hpp) — lease-based
// leadership, journal streaming with gap detection and snapshot catch-up,
// and fenced failover.
//
// The invariant under test everywhere: kill (or partition) the leader at any
// CrashPoint of an in-flight reconfiguration and a standby takes over within
// one lease interval, fences every stale-term write, and converges the
// fabric to tables byte-identical to what a crash-free run would hold —
// never a mix, never a third thing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "controller/ha.hpp"
#include "controller/journal.hpp"
#include "controller/monitor.hpp"
#include "controller/recovery.hpp"
#include "controller/table_diff.hpp"
#include "controller/transaction.hpp"
#include "openflow/of_switch.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/consistency.hpp"
#include "sim/control_channel.hpp"
#include "sim/faults.hpp"
#include "sim/transport.hpp"
#include "tenant/tenant.hpp"
#include "topo/generators.hpp"

namespace sdt {
namespace {

std::uint64_t faultSeed() {
  const char* env = std::getenv("SDT_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1ULL;
}

// -- Fabric fingerprint ------------------------------------------------------

struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
};

std::uint64_t entryHash(const openflow::FlowEntry& e) {
  Fnv f;
  f.mix(static_cast<std::uint64_t>(e.priority));
  const auto mixOpt = [&f](const auto& opt) {
    f.mix(opt.has_value() ? 1u : 0u);
    f.mix(opt.has_value() ? static_cast<std::uint64_t>(*opt) : 0u);
  };
  mixOpt(e.match.inPort);
  mixOpt(e.match.srcAddr);
  mixOpt(e.match.dstAddr);
  mixOpt(e.match.srcPort);
  mixOpt(e.match.dstPort);
  mixOpt(e.match.protocol);
  mixOpt(e.match.trafficClass);
  for (const openflow::Action& a : e.actions) {
    f.mix(static_cast<std::uint64_t>(a.type));
    f.mix(static_cast<std::uint64_t>(a.arg));
  }
  f.mix(e.cookie);
  return f.h;
}

/// Order-insensitive but otherwise exact (cookie/epoch included) fingerprint
/// of every switch table plus its ingress stamp. Two fabrics with the same
/// fingerprint hold byte-identical rule sets and stamping.
std::uint64_t fabricFingerprint(
    const std::vector<std::shared_ptr<openflow::Switch>>& switches) {
  Fnv f;
  for (const auto& sw : switches) {
    std::vector<std::uint64_t> hashes;
    hashes.reserve(sw->table().size());
    for (const openflow::FlowEntry& e : sw->table().entries()) {
      hashes.push_back(entryHash(e));
    }
    std::sort(hashes.begin(), hashes.end());
    f.mix(0x53574954ULL);  // per-switch separator
    for (const std::uint64_t h : hashes) f.mix(h);
    f.mix(sw->ingressEpoch());
  }
  return f.h;
}

/// Every switch holds rules of exactly `epoch` and stamps it at ingress.
bool pureEpoch(const std::vector<std::shared_ptr<openflow::Switch>>& switches,
               std::uint32_t epoch) {
  for (const auto& ofs : switches) {
    if (ofs->ingressEpoch() != epoch) return false;
    if (ofs->table().countEpoch(epoch) != ofs->table().size()) return false;
  }
  return true;
}

/// What a crash-free life of the same world ends with: the original line
/// deploy (roll-back cells) or a committed line->ring transaction over a
/// clean channel (roll-forward cells).
std::uint64_t crashFreeFingerprint(bool forward) {
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  routing::ShortestPathRouting rFrom(from);
  routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  if (!plantR.ok()) return 0;
  controller::SdtController ctl(plantR.value());
  auto depR = ctl.deploy(from, rFrom);
  if (!depR.ok()) return 0;
  controller::Deployment dep = std::move(depR).value();
  if (!forward) return fabricFingerprint(dep.switches);

  sim::Simulator sim;
  sim::ControlChannel channel(sim, 1);
  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(dep, to, rTo, dopt);
  if (!planR.ok()) return 0;
  controller::ReconfigTransaction tx(sim, channel, dep,
                                     std::move(planR).value());
  sim.schedule(usToNs(100.0), [&]() { tx.start(); });
  sim.run();
  if (!tx.report().committed) return 0;
  return fabricFingerprint(dep.switches);
}

// ---------------------------------------------------------------------------
// Kill-the-leader matrix: every CrashPoint x {clean, lossy} OpenFlow fabric.
// Each cell: 3 replicas, deploy line(6), adopt + start HA, run the
// line->ring transaction journaling through the leader (streamed live to the
// standbys), kill the leader the instant the injected crash fires, and let
// the lease machinery elect + fence + converge with no outside help.
// ---------------------------------------------------------------------------

struct HaOutcome {
  bool ready = false;      ///< setup reached the run (plant/deploy/plan ok)
  bool txCrashed = false;
  bool tookOver = false;
  controller::FailoverReport report;
  std::uint64_t fingerprint = 0;
  bool pure = false;
  std::uint64_t fencedWrites = 0;
  std::uint64_t standbyFrames = 0;  ///< frames the winning standby replicated
  TimeNs leaseInterval = 0;
  std::uint64_t highestTerm = 0;
  int leaderId = -1;
};

HaOutcome runHaCell(controller::CrashPoint crashAt, bool lossyFabric,
                    std::uint64_t seed) {
  HaOutcome out;
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  routing::ShortestPathRouting rFrom(from);
  routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  if (!plantR.ok()) return out;
  controller::SdtController ctl(plantR.value());
  auto depR = ctl.deploy(from, rFrom);
  if (!depR.ok()) return out;
  controller::Deployment dep = std::move(depR).value();

  sim::Simulator sim;
  sim::ControlChannelConfig fcfg;
  if (lossyFabric) {
    fcfg.dropProb = 0.15;
    fcfg.dupProb = 0.15;
    fcfg.reorderProb = 0.15;
  }
  sim::ControlChannel fabric(sim, seed, fcfg);
  // The replication channel is faster than the fabric: a journal frame lands
  // at the standbys (<= 1.5us) before the fabric ack that fires the crash
  // point can return (>= 2 one-way fabric delays = 4us), so every marker
  // journaled before the crash is durably replicated when the leader dies.
  sim::ControlChannelConfig rcfg;
  rcfg.baseDelay = 1'000;
  rcfg.jitter = 500;
  sim::ControlChannel repl(sim, seed + 101, rcfg);

  controller::HaConfig hcfg;
  hcfg.deploy.requireDeadlockFree = false;
  hcfg.retry.seed = seed;
  controller::ReplicatedController ha(sim, ctl, fabric, repl, 3, hcfg);
  controller::IntentCatalog catalog;
  catalog[from.name()] = {&from, &rFrom};
  catalog[to.name()] = {&to, &rTo};
  ha.setCatalog(catalog);
  if (!ha.adoptDeployment(dep).ok()) return out;
  ha.start();

  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(ha.deployment(), to, rTo, dopt);
  if (!planR.ok()) return out;
  controller::ReconfigOptions topt;
  topt.journal = &ha.leaderJournal();
  topt.term = ha.termOf(ha.leaderId());
  topt.leaderId = ha.leaderId();
  topt.crashAt = crashAt;
  topt.onCrash = [&ha]() { ha.kill(ha.leaderId()); };
  controller::ReconfigTransaction tx(sim, fabric, ha.deployment(),
                                     std::move(planR).value(), topt);
  out.ready = true;
  sim.schedule(usToNs(100.0), [&tx]() { tx.start(); });
  // HA heartbeat chains never drain the queue; run to a deadline.
  sim.runUntil(msToNs(80.0));

  out.txCrashed = tx.crashed();
  out.tookOver = !ha.failovers().empty();
  if (!out.tookOver) return out;
  out.report = ha.failovers().front();
  out.fingerprint = fabricFingerprint(ha.deployment().switches);
  out.pure = pureEpoch(ha.deployment().switches, out.report.recovery.targetEpoch);
  out.fencedWrites = ha.fencedWritesTotal();
  out.standbyFrames = ha.status(out.report.newLeader).framesReceived;
  out.leaseInterval = hcfg.leaseInterval;
  out.highestTerm = ha.term();
  out.leaderId = ha.leaderId();
  return out;
}

class HaFailoverMatrix
    : public ::testing::TestWithParam<std::tuple<controller::CrashPoint, bool>> {
};

TEST_P(HaFailoverMatrix, StandbyTakesOverFencedAndByteIdentical) {
  const auto [crashAt, lossyFabric] = GetParam();
  const HaOutcome out = runHaCell(crashAt, lossyFabric, faultSeed());
  ASSERT_TRUE(out.ready);
  ASSERT_TRUE(out.txCrashed)
      << "transaction did not reach crash point "
      << controller::crashPointName(crashAt);
  ASSERT_TRUE(out.tookOver) << "no standby claimed leadership";
  ASSERT_TRUE(out.report.converged) << out.report.failure;

  // The standby claimed within one lease interval of the lease running out,
  // and the takeover carries a strictly larger term.
  EXPECT_LE(out.report.takeoverStartedAt - out.report.leaseExpiredAt,
            out.leaseInterval);
  EXPECT_EQ(out.report.newLeader, 1) << "highest-priority standby must win";
  EXPECT_EQ(out.report.toTerm, 2u);
  EXPECT_EQ(out.highestTerm, 2u);
  EXPECT_EQ(out.leaderId, 1);

  // The replica journal drove the same roll-forward/roll-back decision a
  // local WAL would have: flip marker replicated => forward, else back.
  const bool pastCommit = crashAt == controller::CrashPoint::kPostFlip ||
                          crashAt == controller::CrashPoint::kMidGc;
  EXPECT_EQ(out.report.recovery.decision,
            pastCommit ? controller::RecoveryDecision::kRollForward
                       : controller::RecoveryDecision::kRollBack);
  EXPECT_EQ(out.report.recovery.targetEpoch, pastCommit ? 2u : 1u);

  // Converged tables are byte-identical (rules, cookies, ingress stamps) to
  // a crash-free run's, and single-epoch pure.
  EXPECT_TRUE(out.pure) << "mixed-epoch state survived failover";
  EXPECT_EQ(out.fingerprint, crashFreeFingerprint(pastCommit))
      << "failover converged on a third configuration";

  // Streaming did its job: the winner held replicated frames, and failover
  // cost strictly fewer flow-mods than a trust-nothing cold redeploy.
  EXPECT_GT(out.standbyFrames, 0u);
  EXPECT_LT(out.report.recovery.flowMods,
            out.report.recovery.fullRedeployFlowMods);
}

INSTANTIATE_TEST_SUITE_P(
    AllCrashPoints, HaFailoverMatrix,
    ::testing::Combine(
        ::testing::Values(controller::CrashPoint::kPrepare,
                          controller::CrashPoint::kMidInstall,
                          controller::CrashPoint::kPreFlip,
                          controller::CrashPoint::kPostFlip,
                          controller::CrashPoint::kMidGc),
        ::testing::Bool()),
    [](const auto& info) {
      std::string name = controller::crashPointName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      name += std::get<1>(info.param) ? "_lossy" : "_clean";
      return name;
    });

TEST(HaFailover, DeterministicAcrossRepeatRuns) {
  // Same seed, same schedule, same fingerprint and takeover timing — the
  // whole election/streaming/recovery pipeline runs on simulated time only.
  const HaOutcome a =
      runHaCell(controller::CrashPoint::kPostFlip, true, faultSeed());
  const HaOutcome b =
      runHaCell(controller::CrashPoint::kPostFlip, true, faultSeed());
  ASSERT_TRUE(a.tookOver);
  ASSERT_TRUE(b.tookOver);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.report.takeoverStartedAt, b.report.takeoverStartedAt);
  EXPECT_EQ(a.report.convergedAt, b.report.convergedAt);
  EXPECT_EQ(a.fencedWrites, b.fencedWrites);
}

// ---------------------------------------------------------------------------
// Split brain: the old leader survives, partitioned from the replica group,
// and keeps driving its transaction at the old term. Every one of its writes
// after the new leader's recovery touches a switch must be fenced.
// ---------------------------------------------------------------------------

TEST(HaFailover, SplitBrainStaleLeaderIsFencedEverywhere) {
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  routing::ShortestPathRouting rFrom(from);
  routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  controller::SdtController ctl(plantR.value());
  auto depR = ctl.deploy(from, rFrom);
  ASSERT_TRUE(depR.ok());
  controller::Deployment dep = std::move(depR).value();

  sim::Simulator sim;
  sim::ControlChannel fabric(sim, faultSeed());
  sim::ControlChannelConfig rcfg;
  rcfg.baseDelay = 1'000;
  rcfg.jitter = 500;
  sim::ControlChannel repl(sim, faultSeed() + 101, rcfg);

  controller::HaConfig hcfg;
  hcfg.deploy.requireDeadlockFree = false;
  controller::ReplicatedController ha(sim, ctl, fabric, repl, 3, hcfg);
  controller::IntentCatalog catalog;
  catalog[from.name()] = {&from, &rFrom};
  catalog[to.name()] = {&to, &rTo};
  ha.setCatalog(catalog);
  ASSERT_TRUE(ha.adoptDeployment(dep).ok());
  ha.start();

  // Partition the leader's outbound replication after the deploy record
  // landed but before its transaction journals anything further: the
  // standbys never see the ring markers and will recover toward the line
  // intent while the partitioned leader pushes ring.
  repl.disconnect(1, usToNs(50.0), usToNs(150.0));
  repl.disconnect(2, usToNs(50.0), usToNs(150.0));

  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(ha.deployment(), to, rTo, dopt);
  ASSERT_TRUE(planR.ok());
  controller::ReconfigOptions topt;
  topt.journal = &ha.leaderJournal();
  topt.term = ha.termOf(ha.leaderId());
  topt.leaderId = ha.leaderId();
  controller::ReconfigTransaction tx(sim, fabric, ha.deployment(),
                                     std::move(planR).value(), topt);
  sim.schedule(usToNs(100.0), [&tx]() { tx.start(); });
  // Mid-install, a standby claims the fabric out from under the live leader
  // (in production this is the lease expiring across the partition; the
  // forced takeover pins the interleaving deterministically).
  sim.schedule(usToNs(150.0), [&ha]() { ha.forceTakeover(1); });
  sim.runUntil(msToNs(50.0));

  ASSERT_FALSE(ha.failovers().empty());
  const controller::FailoverReport& report = ha.failovers().front();
  ASSERT_TRUE(report.converged) << report.failure;
  EXPECT_EQ(report.newLeader, 1);
  EXPECT_EQ(report.toTerm, 2u);
  // The standbys never saw the transaction's markers: reinstall of line@1.
  EXPECT_EQ(report.recovery.decision, controller::RecoveryDecision::kReinstall);
  EXPECT_EQ(report.recovery.targetEpoch, 1u);

  // The deposed leader kept retrying its rounds at term 1; every delivery
  // after the new leader's readback raised the fence was rejected and
  // counted — and none of them reached a table.
  EXPECT_GT(ha.fencedWritesTotal(), 0u);
  EXPECT_TRUE(pureEpoch(ha.deployment().switches, 1));
  EXPECT_EQ(fabricFingerprint(ha.deployment().switches),
            crashFreeFingerprint(false));
  // The partition healed after the claim, so the old leader heard term 2
  // and stepped down — but deposition alone does not stop its in-flight
  // transaction; the term fence is what kept its writes off the fabric.
  EXPECT_TRUE(ha.isLeader(1));
  EXPECT_FALSE(ha.isLeader(0));
  EXPECT_EQ(ha.termOf(0), 2u);
}

// ---------------------------------------------------------------------------
// Data plane across the takeover: flows launched before the leader dies
// finish during the outage and the election with zero per-packet epoch
// violations; a second wave runs on the rolled-forward ring.
// ---------------------------------------------------------------------------

TEST(HaFailover, ZeroMixedEpochPacketsAcrossTakeover) {
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  routing::ShortestPathRouting rFrom(from);
  routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  const projection::Plant plant = std::move(plantR).value();
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(from, rFrom);
  ASSERT_TRUE(depR.ok());
  controller::Deployment dep = std::move(depR).value();

  sim::Simulator sim;
  sim::EpochConsistencyChecker checker;
  sim::BuiltNetwork built = sim::buildProjectedNetwork(
      sim, from, dep.projection, plant, dep.switches, {}, {2.0, 1.0}, &checker);
  sim::TransportManager tm(sim, *built.net, {});
  sim::ControlChannel fabric(sim, faultSeed());
  sim::ControlChannelConfig rcfg;
  rcfg.baseDelay = 1'000;
  rcfg.jitter = 500;
  sim::ControlChannel repl(sim, faultSeed() + 101, rcfg);

  controller::HaConfig hcfg;
  hcfg.deploy.requireDeadlockFree = false;
  controller::ReplicatedController ha(sim, ctl, fabric, repl, 3, hcfg);
  controller::IntentCatalog catalog;
  catalog[from.name()] = {&from, &rFrom};
  catalog[to.name()] = {&to, &rTo};
  ha.setCatalog(catalog);
  ASSERT_TRUE(ha.adoptDeployment(dep).ok());
  ha.start();

  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(ha.deployment(), to, rTo, dopt);
  ASSERT_TRUE(planR.ok());
  controller::ReconfigOptions topt;
  topt.journal = &ha.leaderJournal();
  topt.term = ha.termOf(ha.leaderId());
  topt.leaderId = ha.leaderId();
  topt.crashAt = controller::CrashPoint::kPostFlip;
  topt.onCrash = [&ha]() { ha.kill(ha.leaderId()); };
  controller::ReconfigTransaction tx(sim, fabric, ha.deployment(),
                                     std::move(planR).value(), topt);

  int wave1 = 0;
  const int hosts = from.numHosts();
  for (int h = 0; h < hosts; ++h) {
    tm.startTcpFlow(h, (h + hosts / 2) % hosts, 128 * 1024,
                    [&wave1](sim::Time) { ++wave1; });
  }
  sim.schedule(usToNs(100.0), [&tx]() { tx.start(); });
  sim.runUntil(msToNs(60.0));

  ASSERT_TRUE(tx.crashed());
  ASSERT_FALSE(ha.failovers().empty());
  ASSERT_TRUE(ha.failovers().front().converged)
      << ha.failovers().front().failure;
  EXPECT_EQ(wave1, hosts) << "flows stalled across the takeover";
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().front().describe();
  EXPECT_GT(checker.stampedPackets(), 0u);
  EXPECT_TRUE(pureEpoch(ha.deployment().switches, 2));

  // Second wave on the ring the new leader rolled forward to.
  const std::size_t violationsAfter = checker.violations().size();
  int wave2 = 0;
  for (int h = 0; h < hosts; ++h) {
    tm.startTcpFlow(h, (h + 1) % hosts, 128 * 1024,
                    [&wave2](sim::Time) { ++wave2; });
  }
  sim.runUntil(sim.now() + msToNs(40.0));
  EXPECT_EQ(wave2, hosts);
  EXPECT_EQ(checker.violations().size(), violationsAfter);
}

// ---------------------------------------------------------------------------
// Journal streaming under a lossy replication channel (live leader): gap
// detection + snapshot catch-up must reconverge every standby onto the
// leader's exact record stream.
// ---------------------------------------------------------------------------

TEST(HaStreaming, LossyReplicationChannelReconvergesViaCatchup) {
  const topo::Topology from = topo::makeLine(6);
  routing::ShortestPathRouting rFrom(from);
  auto plantR = projection::planPlant({&from}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  controller::SdtController ctl(plantR.value());
  auto depR = ctl.deploy(from, rFrom);
  ASSERT_TRUE(depR.ok());

  sim::Simulator sim;
  sim::ControlChannel fabric(sim, faultSeed());
  sim::ControlChannelConfig rcfg;
  rcfg.dropProb = 0.35;
  rcfg.dupProb = 0.1;
  sim::ControlChannel repl(sim, faultSeed() + 7, rcfg);

  // Dense heartbeats: at 35% drop an unlucky run of lost heartbeats could
  // otherwise expire a standby's lease and trigger an election, which is
  // not under test here. 20 heartbeats per lease makes that vanishingly
  // rare while keeping the lease (and with it the catch-up retry backstop)
  // short.
  controller::HaConfig hcfg;
  hcfg.heartbeatPeriod = usToNs(100.0);
  controller::ReplicatedController ha(sim, ctl, fabric, repl, 3, hcfg);
  ASSERT_TRUE(ha.adoptDeployment(depR.value()).ok());
  ha.start();

  // 40 journal appends, spaced out so the stream, the drops, and the
  // heartbeat-driven stall detection interleave.
  for (int i = 0; i < 40; ++i) {
    sim.schedule(usToNs(200.0) + i * usToNs(50.0), [&ha, i]() {
      controller::JournalRecord rec;
      rec.kind = controller::JournalRecordKind::kDeploy;
      rec.at = 0;
      rec.epoch = static_cast<std::uint32_t>(i + 2);
      rec.topology = "line6";
      rec.routing = "shortest-path";
      ASSERT_TRUE(ha.leaderJournal().append(rec).ok());
    });
  }
  sim.runUntil(msToNs(40.0));

  auto leaderReplay = ha.leaderJournal().replay();
  ASSERT_TRUE(leaderReplay.ok());
  ASSERT_EQ(leaderReplay.value().records.size(), 41u);  // kDeploy + 40

  bool sawCatchup = false;
  for (int r = 1; r < ha.numReplicas(); ++r) {
    auto replay = ha.journalOf(r).replay();
    ASSERT_TRUE(replay.ok());
    ASSERT_EQ(replay.value().records.size(), leaderReplay.value().records.size())
        << "replica " << r << " diverged";
    for (std::size_t i = 0; i < replay.value().records.size(); ++i) {
      EXPECT_EQ(replay.value().records[i].seq,
                leaderReplay.value().records[i].seq);
      EXPECT_EQ(replay.value().records[i].epoch,
                leaderReplay.value().records[i].epoch);
    }
    const controller::ReplicaStatus st = ha.status(r);
    EXPECT_GT(st.framesReceived, 0u);
    sawCatchup = sawCatchup || st.gapCatchups > 0;
  }
  EXPECT_TRUE(sawCatchup) << "35% drop never exercised the catch-up path";
}

// ---------------------------------------------------------------------------
// Journal::compact() racing replication (satellite): a leader-side
// compaction while a standby is cut off must hand the standby the checkpoint
// + suffix image, and both journals must fold to the same planRecovery
// decision. A torn truncate during streaming re-opens the gap and converges
// the same way.
// ---------------------------------------------------------------------------

TEST(HaStreaming, CompactionDuringPartitionHandsStandbyCheckpointPlusSuffix) {
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  routing::ShortestPathRouting rFrom(from);
  routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  controller::SdtController ctl(plantR.value());
  auto depR = ctl.deploy(from, rFrom);
  ASSERT_TRUE(depR.ok());
  controller::Deployment dep = std::move(depR).value();

  sim::Simulator sim;
  sim::ControlChannel fabric(sim, faultSeed());
  sim::ControlChannelConfig rcfg;
  rcfg.baseDelay = 1'000;
  rcfg.jitter = 500;
  sim::ControlChannel repl(sim, faultSeed() + 101, rcfg);

  controller::HaConfig hcfg;
  hcfg.deploy.requireDeadlockFree = false;
  // Elections are not under test here: the partitioned standby must stay a
  // standby (its lease would otherwise expire mid-partition and it would
  // claim the group for itself).
  hcfg.leaseInterval = msToNs(100.0);
  controller::ReplicatedController ha(sim, ctl, fabric, repl, 2, hcfg);
  ASSERT_TRUE(ha.adoptDeployment(dep).ok());
  ha.start();

  // Cut the standby off, then cross the commit point of a transaction and
  // compact — the standby misses the markers AND the compaction rewrite.
  repl.disconnect(1, usToNs(50.0), msToNs(8.0));

  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(ha.deployment(), to, rTo, dopt);
  ASSERT_TRUE(planR.ok());
  controller::ReconfigOptions topt;
  topt.journal = &ha.leaderJournal();
  topt.term = ha.termOf(ha.leaderId());
  topt.leaderId = ha.leaderId();
  topt.crashAt = controller::CrashPoint::kPostFlip;  // leaves the tx open
  controller::ReconfigTransaction tx(sim, fabric, ha.deployment(),
                                     std::move(planR).value(), topt);
  sim.schedule(usToNs(100.0), [&tx]() { tx.start(); });
  sim.schedule(msToNs(5.0), [&ha]() {
    // Checkpoint + open-tx markers, fresh seqs: the replica stream now has a
    // hole no suffix can fill.
    auto folded = ha.leaderJournal().compact();
    ASSERT_TRUE(folded.ok());
  });
  sim.runUntil(msToNs(40.0));

  // The partition lifted; heartbeat stall detection must have pulled the
  // full checkpoint+suffix image over.
  const controller::ReplicaStatus st = ha.status(1);
  EXPECT_GE(st.gapCatchups, 1u);
  EXPECT_GE(st.snapshotsInstalled, 1u);

  controller::IntentCatalog catalog;
  catalog[from.name()] = {&from, &rFrom};
  catalog[to.name()] = {&to, &rTo};
  auto leaderPlan = controller::planRecovery(ctl, ha.leaderJournal(), catalog,
                                             hcfg.deploy);
  auto standbyPlan = controller::planRecovery(ctl, ha.journalOf(1), catalog,
                                              hcfg.deploy);
  ASSERT_TRUE(leaderPlan.ok()) << leaderPlan.error().message;
  ASSERT_TRUE(standbyPlan.ok()) << standbyPlan.error().message;
  EXPECT_EQ(leaderPlan.value().decision, controller::RecoveryDecision::kRollForward);
  EXPECT_EQ(standbyPlan.value().decision, leaderPlan.value().decision);
  EXPECT_EQ(standbyPlan.value().targetEpoch, leaderPlan.value().targetEpoch);
  EXPECT_EQ(standbyPlan.value().topology, leaderPlan.value().topology);
  EXPECT_EQ(standbyPlan.value().ecmpSalt, leaderPlan.value().ecmpSalt);

  // Byte equality of the whole journal image, not just the fold.
  auto leaderBytes = ha.storageOf(ha.leaderId()).read();
  auto standbyBytes = ha.storageOf(1).read();
  ASSERT_TRUE(leaderBytes.ok());
  ASSERT_TRUE(standbyBytes.ok());
  EXPECT_EQ(leaderBytes.value(), standbyBytes.value());
}

TEST(HaStreaming, TornTruncateDuringStreamingReconvergesToLeaderDecision) {
  const topo::Topology from = topo::makeLine(6);
  routing::ShortestPathRouting rFrom(from);
  auto plantR = projection::planPlant({&from}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  controller::SdtController ctl(plantR.value());
  auto depR = ctl.deploy(from, rFrom);
  ASSERT_TRUE(depR.ok());

  sim::Simulator sim;
  sim::ControlChannel fabric(sim, faultSeed());
  sim::ControlChannelConfig rcfg;
  rcfg.baseDelay = 1'000;
  rcfg.jitter = 500;
  sim::ControlChannel repl(sim, faultSeed() + 11, rcfg);

  controller::ReplicatedController ha(sim, ctl, fabric, repl, 2, {});
  ASSERT_TRUE(ha.adoptDeployment(depR.value()).ok());
  ha.start();

  const auto appendAt = [&sim, &ha](TimeNs at, std::uint32_t epoch) {
    sim.schedule(at, [&ha, epoch]() {
      controller::JournalRecord rec;
      rec.kind = controller::JournalRecordKind::kDeploy;
      rec.epoch = epoch;
      rec.topology = "line6";
      rec.routing = "shortest-path";
      ASSERT_TRUE(ha.leaderJournal().append(rec).ok());
    });
  };
  appendAt(usToNs(200.0), 2);
  appendAt(usToNs(300.0), 3);
  // Tear the standby's journal tail mid-stream (a crashed append leaves a
  // truncated frame; rescan drops it, re-opening the sequence hole).
  sim.schedule(usToNs(400.0), [&ha]() {
    std::string& bytes = ha.storageOf(1).bytes();
    ASSERT_GT(bytes.size(), 5u);
    bytes.resize(bytes.size() - 5);
    ha.journalOf(1).rescan();
  });
  // The next streamed frame arrives past the hole: gap -> snapshot catch-up.
  appendAt(usToNs(500.0), 4);
  sim.runUntil(msToNs(20.0));

  const controller::ReplicaStatus st = ha.status(1);
  EXPECT_GE(st.framesOutOfOrder, 1u);
  EXPECT_GE(st.snapshotsInstalled, 1u);

  auto leaderBytes = ha.storageOf(0).read();
  auto standbyBytes = ha.storageOf(1).read();
  ASSERT_TRUE(leaderBytes.ok());
  ASSERT_TRUE(standbyBytes.ok());
  EXPECT_EQ(leaderBytes.value(), standbyBytes.value());
  auto replay = ha.journalOf(1).replay();
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().records.back().epoch, 4u);
  EXPECT_EQ(replay.value().droppedBytes, 0u);
}

TEST(HaStreaming, AppendReplicaPreservesLeaderSeqsAndRescanContinues) {
  controller::MemoryJournalStorage leaderStorage;
  controller::MemoryJournalStorage standbyStorage;
  controller::Journal leader(leaderStorage);
  controller::Journal standby(standbyStorage);

  for (std::uint32_t e = 1; e <= 3; ++e) {
    controller::JournalRecord rec;
    rec.kind = controller::JournalRecordKind::kDeploy;
    rec.epoch = e;
    rec.topology = "line6";
    rec.routing = "shortest-path";
    ASSERT_TRUE(leader.append(rec).ok());
  }
  auto replayed = leader.replay();
  ASSERT_TRUE(replayed.ok());
  for (const controller::JournalRecord& rec : replayed.value().records) {
    ASSERT_TRUE(standby.appendReplica(rec).ok());
  }
  // Seqs preserved verbatim; the replica numbers appends seamlessly past
  // them (it may have to journal as the next leader).
  EXPECT_EQ(standby.nextSeq(), leader.nextSeq());
  auto standbyReplay = standby.replay();
  ASSERT_TRUE(standbyReplay.ok());
  ASSERT_EQ(standbyReplay.value().records.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(standbyReplay.value().records[i].seq, i + 1);
  }

  // Snapshot install path: swap the whole backing store, rescan, and the
  // sequence horizon follows the new image.
  auto bytes = leaderStorage.read();
  ASSERT_TRUE(bytes.ok());
  controller::MemoryJournalStorage fresh;
  controller::Journal late(fresh);
  EXPECT_EQ(late.nextSeq(), 1u);
  ASSERT_TRUE(fresh.replaceAll(bytes.value()).ok());
  late.rescan();
  EXPECT_EQ(late.nextSeq(), leader.nextSeq());
}

// ---------------------------------------------------------------------------
// Monitor hand-off (satellite): a PortFailure detected inside the takeover
// window — leader dead, successor not yet converged — is buffered and
// delivered to the new leader exactly once, detection-time epoch intact.
// ---------------------------------------------------------------------------

TEST(HaMonitor, PortFailureDuringTakeoverDeliveredExactlyOnceWithEpoch) {
  const topo::Topology from = topo::makeLine(6);
  routing::ShortestPathRouting rFrom(from);
  auto plantR = projection::planPlant({&from}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  const projection::Plant plant = std::move(plantR).value();
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(from, rFrom);
  ASSERT_TRUE(depR.ok());
  controller::Deployment dep = std::move(depR).value();

  sim::Simulator sim;
  sim::BuiltNetwork built = sim::buildProjectedNetwork(
      sim, from, dep.projection, plant, dep.switches, {}, {2.0, 1.0}, nullptr);
  sim::ControlChannel fabric(sim, faultSeed());
  sim::ControlChannelConfig rcfg;
  rcfg.baseDelay = 1'000;
  rcfg.jitter = 500;
  sim::ControlChannel repl(sim, faultSeed() + 101, rcfg);

  controller::ReplicatedController ha(sim, ctl, fabric, repl, 3, {});
  controller::IntentCatalog catalog;
  catalog[from.name()] = {&from, &rFrom};
  ha.setCatalog(catalog);
  ASSERT_TRUE(ha.adoptDeployment(dep).ok());

  controller::NetworkMonitor monitor(sim, *built.net, from, dep.projection);
  monitor.enableFailureDetection(usToNs(60.0));
  monitor.start(usToNs(5.0));
  ha.setMonitor(&monitor);

  struct Delivery {
    controller::PortFailure failure;
    TimeNs at = 0;
  };
  std::vector<Delivery> delivered;
  ha.onPortFailure([&delivered, &sim](const controller::PortFailure& f) {
    delivered.push_back({f, sim.now()});
  });
  ha.start();

  // Kill the leader, then cut a fabric cable while nobody leads: detection
  // fires into the leaderless window and must be parked, not lost.
  const TimeNs killAt = usToNs(500.0);
  sim.schedule(killAt, [&ha]() { ha.kill(ha.leaderId()); });
  const topo::Link cable = from.links()[0];
  const projection::PhysPort cut = dep.projection.physOf(cable.a);
  sim::FaultInjector inj(sim, *built.net, faultSeed());
  inj.cutCable(usToNs(600.0), cut.sw, cut.port);
  inj.arm();
  sim.runUntil(msToNs(30.0));

  ASSERT_FALSE(ha.failovers().empty());
  const controller::FailoverReport& report = ha.failovers().front();
  ASSERT_TRUE(report.converged) << report.failure;

  // The monitor detected the cut before the takeover converged...
  ASSERT_FALSE(monitor.portFailures().empty());
  for (const controller::PortFailure& f : monitor.portFailures()) {
    EXPECT_GT(f.detectedAt, killAt);
    EXPECT_LT(f.detectedAt, report.convergedAt)
        << "detection should land inside the takeover window";
    EXPECT_EQ(f.epoch, 1u) << "detection-time epoch must survive buffering";
  }
  // ...and every detection reached the new leader exactly once, after
  // convergence.
  ASSERT_EQ(delivered.size(), monitor.portFailures().size());
  EXPECT_EQ(report.pendingFailuresDelivered,
            static_cast<int>(delivered.size()));
  std::vector<std::pair<int, int>> seen;
  for (const Delivery& d : delivered) {
    EXPECT_GE(d.at, report.convergedAt);
    EXPECT_EQ(d.failure.epoch, 1u);
    const std::pair<int, int> key{d.failure.sw, d.failure.port};
    EXPECT_EQ(std::count(seen.begin(), seen.end(), key), 0)
        << "duplicate delivery for sw " << key.first << " port " << key.second;
    seen.push_back(key);
  }
  // Recovery's own table rewrites must not have minted spurious failures:
  // everything reported traces back to the one cut cable's link.
  for (const controller::PortFailure& f : monitor.portFailures()) {
    ASSERT_TRUE(f.logicalPort.has_value());
    const auto li = from.linkAt(*f.logicalPort);
    ASSERT_TRUE(li.has_value());
    const topo::Link& link = from.link(*li);
    EXPECT_TRUE((link.a == cable.a && link.b == cable.b) ||
                (link.a == cable.b && link.b == cable.a))
        << "spurious failure on sw " << f.sw << " port " << f.port;
  }
}

// ---------------------------------------------------------------------------
// Tenant mid-slice-update failover (satellite): the leader dies past the
// commit point of one tenant's slice update; the tenant-aware planner rolls
// the slice forward under the new term without disturbing the co-tenant, and
// admission state survives.
// ---------------------------------------------------------------------------

projection::Plant twoTenantPlant() {
  projection::PlantConfig cfg;
  cfg.numSwitches = 2;
  cfg.spec = projection::openflow64x100G();
  cfg.spec.flowTableCapacity = 8192;
  cfg.hostPortsPerSwitch = 6;
  cfg.interLinksPerPair = 8;
  auto plant = projection::buildPlant(cfg);
  EXPECT_TRUE(plant.ok());
  return plant.value();
}

std::vector<openflow::FlowEntry> tenantEntries(const openflow::Switch& sw,
                                               std::uint16_t tenant) {
  std::vector<openflow::FlowEntry> out;
  for (const openflow::FlowEntry& e : sw.table().entries()) {
    if (openflow::cookieTenant(e.cookie) == tenant) out.push_back(e);
  }
  return out;
}

TEST(HaTenant, MidSliceUpdateFailoverRollsForwardWithoutTouchingCoTenant) {
  const topo::Topology lineA = topo::makeLine(4);
  const topo::Topology lineB = topo::makeLine(4);
  const topo::Topology ringB = topo::makeRing(4);
  routing::ShortestPathRouting rA(lineA);
  routing::ShortestPathRouting rB(lineB);
  routing::ShortestPathRouting rRingB(ringB);

  tenant::TenantManager mgr(twoTenantPlant());
  tenant::TenantSpec specA;
  specA.name = "alice";
  specA.topology = &lineA;
  specA.routing = &rA;
  specA.spareSelfLinksPerSwitch = 1;
  specA.deploy.requireDeadlockFree = false;
  ASSERT_TRUE(mgr.admit(specA).ok());
  tenant::TenantSpec specB = specA;
  specB.name = "bob";
  specB.topology = &lineB;
  specB.routing = &rB;
  // Bob's line -> ring update needs one more inter-switch hop than his
  // line; reserve the spare cables at admission so the re-projection can
  // only land on capacity he owns.
  specB.spareInterLinksPerPair = 2;
  ASSERT_TRUE(mgr.admit(specB).ok());

  sim::Simulator sim;
  sim::ControlChannel fabric(sim, faultSeed());
  sim::ControlChannelConfig rcfg;
  rcfg.baseDelay = 1'000;
  rcfg.jitter = 500;
  sim::ControlChannel repl(sim, faultSeed() + 101, rcfg);

  controller::ReplicatedController ha(sim, *mgr.slice(2)->controller, fabric,
                                      repl, 3, {});
  controller::IntentCatalog catalog;
  catalog[lineB.name()] = {&lineB, &rB};
  catalog[ringB.name()] = {&ringB, &rRingB};
  // Tenant-aware takeover: recompile against bob's slice controller and
  // re-scope the plan so the new leader can only ever touch bob's namespace.
  ha.setPlanner([&mgr, catalog](const controller::Journal& journal)
                    -> Result<controller::RecoveryPlan> {
    auto plan = controller::planRecovery(*mgr.slice(2)->controller, journal,
                                         catalog, mgr.slice(2)->deployOptions);
    if (plan.ok()) mgr.scopeRecovery(2, plan.value());
    return plan;
  });
  ASSERT_TRUE(ha.adoptDeployment(mgr.slice(2)->deployment).ok());
  ha.start();

  const int n = mgr.plant().numSwitches();
  std::vector<std::vector<openflow::FlowEntry>> aliceBefore;
  for (int sw = 0; sw < n; ++sw) {
    aliceBefore.push_back(tenantEntries(*mgr.switches()[sw], 1));
  }

  auto planned = mgr.planSliceUpdate(2, ringB, rRingB);
  ASSERT_TRUE(planned.ok()) << planned.error().message;
  controller::ReconfigOptions topt;
  topt.journal = &ha.leaderJournal();
  topt.term = ha.termOf(ha.leaderId());
  topt.leaderId = ha.leaderId();
  topt.crashAt = controller::CrashPoint::kPostFlip;
  topt.onCrash = [&ha]() { ha.kill(ha.leaderId()); };
  controller::ReconfigTransaction tx(sim, fabric,
                                     mgr.mutableSlice(2)->deployment,
                                     std::move(planned).value(), topt);
  sim.schedule(usToNs(100.0), [&tx]() { tx.start(); });
  sim.runUntil(msToNs(60.0));

  ASSERT_TRUE(tx.crashed());
  ASSERT_FALSE(ha.failovers().empty());
  const controller::FailoverReport& report = ha.failovers().front();
  ASSERT_TRUE(report.converged) << report.failure;
  EXPECT_EQ(report.recovery.decision, controller::RecoveryDecision::kRollForward);
  const std::uint32_t target = openflow::makeScopedEpoch(2, 2);
  EXPECT_EQ(report.recovery.targetEpoch, target);

  // Bob's namespace is pure at the rolled-forward scoped epoch; his host
  // ports stamp it.
  for (int sw = 0; sw < n; ++sw) {
    const openflow::FlowTable& table = mgr.switches()[sw]->table();
    EXPECT_EQ(table.countEpoch(target), table.countTenant(2)) << "switch " << sw;
  }
  for (topo::HostId h = 0; h < ringB.numHosts(); ++h) {
    const projection::PhysPort pp =
        ha.deployment().projection.hostPortOf(h);
    EXPECT_EQ(mgr.switches()[pp.sw]->portIngressEpoch(pp.port), target);
  }
  // Alice's slice — rules and stamps — survived the whole failover
  // byte-identical, and admission state still knows both tenants.
  for (int sw = 0; sw < n; ++sw) {
    const auto after = tenantEntries(*mgr.switches()[sw], 1);
    ASSERT_EQ(after.size(), aliceBefore[sw].size()) << "switch " << sw;
    for (std::size_t i = 0; i < after.size(); ++i) {
      EXPECT_TRUE(openflow::sameRule(after[i], aliceBefore[sw][i]));
    }
  }
  for (topo::HostId h = 0; h < lineA.numHosts(); ++h) {
    const projection::PhysPort pp =
        mgr.slice(1)->deployment.projection.hostPortOf(h);
    EXPECT_EQ(mgr.switches()[pp.sw]->portIngressEpoch(pp.port),
              openflow::makeScopedEpoch(1, 1));
  }
  EXPECT_EQ(mgr.numTenants(), 2);
  ASSERT_NE(mgr.slice(1), nullptr);
  ASSERT_NE(mgr.slice(2), nullptr);
}

// ---------------------------------------------------------------------------
// Same-term ties. Two candidates that both miss the other's claim heartbeat
// claim the SAME term; the tie must resolve deterministically toward the
// lower replica id on every switch and every replica — never two unfenced
// writers.
// ---------------------------------------------------------------------------

TEST(HaTermFence, SameTermTieBreaksTowardLowerReplicaId) {
  openflow::Switch sw(0, 4);
  // Term-only legacy callers neither fence ties nor survive them.
  EXPECT_TRUE(sw.admitTerm(1));
  EXPECT_EQ(sw.controllerLeaderId(), -1);
  // First identified writer at term 2.
  EXPECT_TRUE(sw.admitTerm(2, 2));
  EXPECT_EQ(sw.controllerTerm(), 2u);
  EXPECT_EQ(sw.controllerLeaderId(), 2);
  // Equal term, higher id: fenced. Equal term, same id: admitted.
  EXPECT_FALSE(sw.admitTerm(2, 3));
  EXPECT_EQ(sw.fencedWrites(), 1u);
  EXPECT_TRUE(sw.admitTerm(2, 2));
  // Equal term, LOWER id: the higher-priority rival wins the switch — and
  // from then on the old writer is fenced, regardless of arrival order.
  EXPECT_TRUE(sw.admitTerm(2, 1));
  EXPECT_EQ(sw.controllerLeaderId(), 1);
  EXPECT_FALSE(sw.admitTerm(2, 2));
  EXPECT_EQ(sw.fencedWrites(), 2u);
  // A strictly newer term admits whoever claims it; stale terms stay fenced.
  EXPECT_TRUE(sw.admitTerm(3, 5));
  EXPECT_EQ(sw.controllerLeaderId(), 5);
  EXPECT_FALSE(sw.admitTerm(2, 0));
  // Term 0 stays the always-admitted legacy namespace.
  EXPECT_TRUE(sw.admitTerm(0));
  // Power-cycle resets the fence and the tie-breaker with it.
  sw.reboot();
  EXPECT_EQ(sw.controllerTerm(), 0u);
  EXPECT_EQ(sw.controllerLeaderId(), -1);
  EXPECT_EQ(sw.fencedWrites(), 0u);
}

TEST(HaFailover, SameTermDuelResolvesToLowerIdEverywhere) {
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);  // same plant as the baseline
  routing::ShortestPathRouting rFrom(from);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  controller::SdtController ctl(plantR.value());
  auto depR = ctl.deploy(from, rFrom);
  ASSERT_TRUE(depR.ok());
  controller::Deployment dep = std::move(depR).value();

  sim::Simulator sim;
  sim::ControlChannel fabric(sim, faultSeed());
  sim::ControlChannelConfig rcfg;
  rcfg.baseDelay = 1'000;
  rcfg.jitter = 500;
  sim::ControlChannel repl(sim, faultSeed() + 101, rcfg);

  controller::HaConfig hcfg;
  hcfg.deploy.requireDeadlockFree = false;
  controller::ReplicatedController ha(sim, ctl, fabric, repl, 3, hcfg);
  controller::IntentCatalog catalog;
  catalog[from.name()] = {&from, &rFrom};
  ha.setCatalog(catalog);
  ASSERT_TRUE(ha.adoptDeployment(dep).ok());
  ha.start();

  // Replica 2 claims, and replica 1 claims 200ns later — before 2's claim
  // heartbeat (>= 1us replication delay) can reach it. Both claim term 2:
  // the dropped-claim-heartbeat race the electionStagger cannot close.
  sim.schedule(usToNs(150.0), [&ha]() { ha.forceTakeover(2); });
  sim.schedule(usToNs(150.2), [&ha]() { ha.forceTakeover(1); });
  sim.runUntil(msToNs(50.0));

  // Exactly one leader survives the duel: the lower id. The loser heard the
  // winner's equal-term heartbeat and stepped down.
  EXPECT_TRUE(ha.isLeader(1));
  EXPECT_FALSE(ha.isLeader(2));
  EXPECT_EQ(ha.leaderId(), 1);
  EXPECT_EQ(ha.term(), 2u);
  for (int r = 0; r < ha.numReplicas(); ++r) {
    EXPECT_EQ(ha.termOf(r), 2u) << "replica " << r;
  }

  // The loser's recovery kept writing at (term 2, id 2); every delivery
  // after the winner touched a switch was fenced — and the fabric converged
  // on exactly the winner's (reinstalled line@1) configuration.
  EXPECT_GT(ha.fencedWritesTotal(), 0u);
  EXPECT_TRUE(pureEpoch(ha.deployment().switches, 1));
  EXPECT_EQ(fabricFingerprint(ha.deployment().switches),
            crashFreeFingerprint(false));

  // failovers() tells the whole story: replica 2's attempt superseded,
  // replica 1's converged — and the takeover window is closed.
  ASSERT_EQ(ha.failovers().size(), 2u);
  EXPECT_EQ(ha.failovers().front().newLeader, 2);
  EXPECT_FALSE(ha.failovers().front().converged);
  EXPECT_EQ(ha.failovers().back().newLeader, 1);
  EXPECT_TRUE(ha.failovers().back().converged)
      << ha.failovers().back().failure;
  EXPECT_FALSE(ha.takeoverInProgress());
}

// ---------------------------------------------------------------------------
// Cascading failover: the first successor dies mid-recovery. Its RecoveryRun
// must be cancelled with it, and its completion must never adopt a
// deployment or clobber the second successor's takeover.
// ---------------------------------------------------------------------------

TEST(HaFailover, CascadingTakeoverBindsRecoveryToClaimingTerm) {
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);  // same plant as the baseline
  routing::ShortestPathRouting rFrom(from);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  controller::SdtController ctl(plantR.value());
  auto depR = ctl.deploy(from, rFrom);
  ASSERT_TRUE(depR.ok());
  controller::Deployment dep = std::move(depR).value();

  sim::Simulator sim;
  sim::ControlChannel fabric(sim, faultSeed());
  sim::ControlChannelConfig rcfg;
  rcfg.baseDelay = 1'000;
  rcfg.jitter = 500;
  sim::ControlChannel repl(sim, faultSeed() + 101, rcfg);

  controller::HaConfig hcfg;
  hcfg.deploy.requireDeadlockFree = false;
  controller::ReplicatedController ha(sim, ctl, fabric, repl, 3, hcfg);
  controller::IntentCatalog catalog;
  catalog[from.name()] = {&from, &rFrom};
  ha.setCatalog(catalog);
  ASSERT_TRUE(ha.adoptDeployment(dep).ok());
  ha.start();

  // Kill the original leader; replica 1 takes over at term 2 and dies 3us
  // later — mid-recovery (one fabric readback round-trip alone is >= 4us).
  // Replica 2 then claims term 3 (it heard 1's claim heartbeat first).
  sim.schedule(usToNs(150.0), [&ha]() { ha.kill(0); });
  sim.schedule(usToNs(200.0), [&ha]() { ha.forceTakeover(1); });
  sim.schedule(usToNs(203.0), [&ha]() { ha.kill(1); });
  sim.schedule(usToNs(210.0), [&ha]() { ha.forceTakeover(2); });
  sim.runUntil(msToNs(50.0));

  // Only the surviving successor's takeover is recorded (the corpse's
  // attempt died with it, run cancelled, completion never delivered), and
  // the adopted deployment is the term-3 run's.
  ASSERT_EQ(ha.failovers().size(), 1u);
  const controller::FailoverReport& report = ha.failovers().back();
  ASSERT_TRUE(report.converged) << report.failure;
  EXPECT_EQ(report.newLeader, 2);
  EXPECT_EQ(report.fromTerm, 2u);
  EXPECT_EQ(report.toTerm, 3u);
  EXPECT_TRUE(ha.isLeader(2));
  EXPECT_EQ(ha.term(), 3u);
  EXPECT_FALSE(ha.takeoverInProgress());
  EXPECT_EQ(ha.staleRecoveryCompletions(), 0u);
  EXPECT_TRUE(pureEpoch(ha.deployment().switches, 1));
  EXPECT_EQ(fabricFingerprint(ha.deployment().switches),
            crashFreeFingerprint(false));
}

// ---------------------------------------------------------------------------
// Stream flow-control hardening: a zero/negative ack window must stream (not
// silently wedge), a dead standby must not accumulate a send queue at all,
// and a partitioned-but-alive standby's backlog is capped and repaired by
// snapshot catch-up.
// ---------------------------------------------------------------------------

TEST(HaStreaming, NonPositiveAckWindowIsClampedNotWedged) {
  const topo::Topology from = topo::makeLine(6);
  routing::ShortestPathRouting rFrom(from);
  auto plantR = projection::planPlant({&from}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  controller::SdtController ctl(plantR.value());
  auto depR = ctl.deploy(from, rFrom);
  ASSERT_TRUE(depR.ok());

  sim::Simulator sim;
  sim::ControlChannel fabric(sim, faultSeed());
  sim::ControlChannelConfig rcfg;
  rcfg.baseDelay = 1'000;
  rcfg.jitter = 500;
  sim::ControlChannel repl(sim, faultSeed() + 3, rcfg);

  controller::HaConfig hcfg;
  hcfg.ackWindow = 0;  // misconfiguration: must clamp to 1, not disable
  controller::ReplicatedController ha(sim, ctl, fabric, repl, 2, hcfg);
  ASSERT_TRUE(ha.adoptDeployment(depR.value()).ok());
  ha.start();
  sim.runUntil(msToNs(5.0));

  const controller::ReplicaStatus st = ha.status(1);
  EXPECT_GT(st.framesReceived, 0u) << "ackWindow=0 silently disabled streaming";
  EXPECT_EQ(st.lastAppliedSeq, ha.leaderJournal().nextSeq() - 1);
  EXPECT_EQ(st.sendQueueDepth, 0u);
}

TEST(HaStreaming, DeadStandbyAccumulatesNoSendQueue) {
  const topo::Topology from = topo::makeLine(6);
  routing::ShortestPathRouting rFrom(from);
  auto plantR = projection::planPlant({&from}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  controller::SdtController ctl(plantR.value());
  auto depR = ctl.deploy(from, rFrom);
  ASSERT_TRUE(depR.ok());

  sim::Simulator sim;
  sim::ControlChannel fabric(sim, faultSeed());
  sim::ControlChannelConfig rcfg;
  rcfg.baseDelay = 1'000;
  rcfg.jitter = 500;
  sim::ControlChannel repl(sim, faultSeed() + 3, rcfg);

  // Long lease: the live standby must not start an election while we watch
  // the dead one's queue.
  controller::HaConfig hcfg;
  hcfg.leaseInterval = msToNs(500.0);
  controller::ReplicatedController ha(sim, ctl, fabric, repl, 3, hcfg);
  ASSERT_TRUE(ha.adoptDeployment(depR.value()).ok());
  ha.start();

  sim.schedule(usToNs(60.0), [&ha]() { ha.kill(2); });
  for (int i = 0; i < 64; ++i) {
    sim.schedule(usToNs(100.0) + i * usToNs(10.0), [&ha, i]() {
      controller::JournalRecord rec;
      rec.kind = controller::JournalRecordKind::kDeploy;
      rec.epoch = static_cast<std::uint32_t>(i + 2);
      rec.topology = "line6";
      rec.routing = "shortest-path";
      ASSERT_TRUE(ha.leaderJournal().append(rec).ok());
    });
  }
  sim.runUntil(msToNs(10.0));

  // Not one frame queued toward the corpse for the life of the run; the
  // live standby replicated everything.
  EXPECT_EQ(ha.status(2).sendQueueDepth, 0u);
  EXPECT_EQ(ha.status(2).queueOverflows, 0u);
  EXPECT_EQ(ha.status(1).lastAppliedSeq, ha.leaderJournal().nextSeq() - 1);
}

TEST(HaStreaming, PartitionedStandbyQueueIsCappedAndRepairedByCatchup) {
  const topo::Topology from = topo::makeLine(6);
  routing::ShortestPathRouting rFrom(from);
  auto plantR = projection::planPlant({&from}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  controller::SdtController ctl(plantR.value());
  auto depR = ctl.deploy(from, rFrom);
  ASSERT_TRUE(depR.ok());

  sim::Simulator sim;
  sim::ControlChannel fabric(sim, faultSeed());
  sim::ControlChannelConfig rcfg;
  rcfg.baseDelay = 1'000;
  rcfg.jitter = 500;
  sim::ControlChannel repl(sim, faultSeed() + 3, rcfg);

  // Tight cap so the overflow path triggers quickly; long lease so the
  // partition cannot turn into an election mid-test.
  controller::HaConfig hcfg;
  hcfg.ackWindow = 4;  // cap is clamped to >= ackWindow, so keep it below
  hcfg.sendQueueCap = 8;
  hcfg.leaseInterval = msToNs(500.0);
  controller::ReplicatedController ha(sim, ctl, fabric, repl, 2, hcfg);
  ASSERT_TRUE(ha.adoptDeployment(depR.value()).ok());
  ha.start();

  repl.disconnect(1, usToNs(50.0), msToNs(10.0));
  for (int i = 0; i < 64; ++i) {
    sim.schedule(usToNs(100.0) + i * usToNs(10.0), [&ha, i]() {
      controller::JournalRecord rec;
      rec.kind = controller::JournalRecordKind::kDeploy;
      rec.epoch = static_cast<std::uint32_t>(i + 2);
      rec.topology = "line6";
      rec.routing = "shortest-path";
      ASSERT_TRUE(ha.leaderJournal().append(rec).ok());
    });
  }
  // Mid-partition: the backlog is bounded by the cap, overflow counted.
  sim.runUntil(msToNs(5.0));
  EXPECT_LE(ha.status(1).sendQueueDepth, 8u);
  EXPECT_GE(ha.status(1).queueOverflows, 1u);

  // After the heal, heartbeat stall detection pulls the full image over and
  // the standby reconverges byte-identical despite the dropped backlog.
  sim.runUntil(msToNs(60.0));
  EXPECT_GE(ha.status(1).snapshotsInstalled, 1u);
  EXPECT_EQ(ha.status(1).lastAppliedSeq, ha.leaderJournal().nextSeq() - 1);
  auto leaderBytes = ha.storageOf(0).read();
  auto standbyBytes = ha.storageOf(1).read();
  ASSERT_TRUE(leaderBytes.ok());
  ASSERT_TRUE(standbyBytes.ok());
  EXPECT_EQ(leaderBytes.value(), standbyBytes.value());
}

// ---------------------------------------------------------------------------
// Lifetime: destroying the controller while its heartbeat/lease/stream
// events are still queued on the simulator must be safe — every scheduled
// callback holds a liveness token and no-ops after destruction (ASan in the
// failover-soak job gives this test its teeth).
// ---------------------------------------------------------------------------

TEST(HaLifetime, DestructionWithQueuedEventsIsSafe) {
  const topo::Topology from = topo::makeLine(6);
  routing::ShortestPathRouting rFrom(from);
  auto plantR = projection::planPlant({&from}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  controller::SdtController ctl(plantR.value());
  auto depR = ctl.deploy(from, rFrom);
  ASSERT_TRUE(depR.ok());

  sim::Simulator sim;
  sim::ControlChannel fabric(sim, faultSeed());
  sim::ControlChannelConfig rcfg;
  rcfg.baseDelay = 1'000;
  rcfg.jitter = 500;
  sim::ControlChannel repl(sim, faultSeed() + 3, rcfg);

  auto ha = std::make_unique<controller::ReplicatedController>(
      sim, ctl, fabric, repl, 3, controller::HaConfig{});
  ASSERT_TRUE(ha->adoptDeployment(depR.value()).ok());
  ha->start();
  // Heartbeat ticks, lease checks, stream frames, and acks are now queued
  // past this horizon; destroy the controller out from under all of them.
  sim.runUntil(msToNs(1.0));
  ha.reset();
  sim.runUntil(msToNs(10.0));  // drain: every orphaned event must no-op
}

// ---------------------------------------------------------------------------
// Bounded xid dedup cache (satellite): FIFO eviction at the configured
// capacity, and dedup still holds for every xid inside the window.
// ---------------------------------------------------------------------------

TEST(XidCache, FifoEvictionKeepsDedupInsideTheWindow) {
  openflow::Switch sw(0, 8);
  EXPECT_EQ(sw.xidCacheSize(), 0u);
  EXPECT_EQ(sw.xidCacheCapacity(), 4096u);

  sw.setXidCacheCapacity(4);
  for (std::uint64_t xid = 1; xid <= 4; ++xid) {
    EXPECT_TRUE(sw.acceptXid(xid));
  }
  EXPECT_EQ(sw.xidCacheSize(), 4u);
  // Everything inside the window dedups.
  for (std::uint64_t xid = 1; xid <= 4; ++xid) {
    EXPECT_FALSE(sw.acceptXid(xid)) << "xid " << xid;
  }
  EXPECT_EQ(sw.xidCacheSize(), 4u);

  // A fifth xid evicts the oldest (1) and only the oldest.
  EXPECT_TRUE(sw.acceptXid(5));
  EXPECT_EQ(sw.xidCacheSize(), 4u);
  EXPECT_FALSE(sw.seenXid(1));
  EXPECT_TRUE(sw.acceptXid(1));  // re-admitted: beyond the window
  EXPECT_FALSE(sw.seenXid(2));   // ...which in turn evicted 2
  for (const std::uint64_t xid : {3ULL, 4ULL, 5ULL, 1ULL}) {
    EXPECT_FALSE(sw.acceptXid(xid)) << "xid " << xid;
  }

  // Shrinking the capacity evicts immediately, oldest first.
  sw.setXidCacheCapacity(2);
  EXPECT_EQ(sw.xidCacheSize(), 2u);
  EXPECT_TRUE(sw.seenXid(5));
  EXPECT_TRUE(sw.seenXid(1));
  EXPECT_FALSE(sw.seenXid(4));
  // Capacity clamps to >= 1 (a zero-capacity cache would break every
  // duplicate-delivery guard silently).
  sw.setXidCacheCapacity(0);
  EXPECT_EQ(sw.xidCacheCapacity(), 1u);
  EXPECT_EQ(sw.xidCacheSize(), 1u);

  // Reboot clears the window entirely (volatile state).
  sw.reboot();
  EXPECT_EQ(sw.xidCacheSize(), 0u);
  EXPECT_TRUE(sw.acceptXid(1));
}

}  // namespace
}  // namespace sdt
