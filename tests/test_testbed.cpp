// Integration tests: the evaluation harness — SDT vs full-testbed ACT
// equivalence (the paper's central accuracy claim) and the comparison math.
#include <gtest/gtest.h>

#include "projection/plant.hpp"
#include "routing/dragonfly.hpp"
#include "routing/shortest_path.hpp"
#include "testbed/evaluator.hpp"
#include "topo/generators.hpp"
#include "workloads/apps.hpp"

namespace sdt::testbed {
namespace {

projection::Plant paperPlant(int switches = 3, int hostPorts = 14, int inter = 14) {
  projection::PlantConfig cfg;
  cfg.numSwitches = switches;
  cfg.spec = projection::openflow64x100G();
  cfg.hostPortsPerSwitch = hostPorts;
  cfg.interLinksPerPair = inter;
  auto p = projection::buildPlant(cfg);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

/// Auto-sized plant (paper's 3-box cluster class) for one topology.
projection::Plant plannedPlant(const topo::Topology& topo, int switches = 3,
                               projection::PhysicalSwitchSpec spec =
                                   projection::h3cS6861()) {
  auto p = projection::planPlant({&topo}, {.numSwitches = switches, .spec = spec});
  EXPECT_TRUE(p.ok()) << p.error().message;
  return std::move(p).value();
}

TEST(Testbed, SdtActMatchesFullTestbedWithinPaperBand) {
  // Fig. 11 / Table IV accuracy claim: |deviation| small and positive-ish
  // (crossbar sharing only adds latency).
  const topo::Topology topo = topo::makeLine(8);
  routing::ShortestPathRouting routing(topo);
  InstanceOptions opt;

  auto full = makeFullTestbed(topo, routing, opt);
  const workloads::Workload w = workloads::imbPingpong(8, 4096, 50);
  const std::vector<int> map{0, 7, 1, 2, 3, 4, 5, 6};
  const RunResult fullRun = runWorkload(full, w, map);

  auto sdt = makeSdt(topo, routing, paperPlant(2, 8, 8), opt);
  ASSERT_TRUE(sdt.ok()) << sdt.error().message;
  const RunResult sdtRun = runWorkload(sdt.value(), w, map);

  ASSERT_GT(fullRun.act, 0);
  const double deviation =
      static_cast<double>(sdtRun.act - fullRun.act) / static_cast<double>(fullRun.act);
  EXPECT_GT(deviation, 0.0) << "crossbar sharing must not speed things up";
  EXPECT_LT(deviation, 0.03) << "overhead above the paper's ~2% band";
  EXPECT_EQ(sdtRun.drops, 0u);
  EXPECT_EQ(fullRun.drops, 0u);
}

TEST(Testbed, OverheadShrinksWithMessageSize) {
  // Fig. 11's trend: relative overhead decreases as messages grow.
  const topo::Topology topo = topo::makeLine(8);
  routing::ShortestPathRouting routing(topo);
  InstanceOptions opt;
  const std::vector<int> map{0, 7, 1, 2, 3, 4, 5, 6};
  double smallOverhead = 0.0, largeOverhead = 0.0;
  for (const auto& [bytes, iters, out] :
       {std::tuple{256LL, 40, &smallOverhead}, std::tuple{262144LL, 10, &largeOverhead}}) {
    auto full = makeFullTestbed(topo, routing, opt);
    auto sdt = makeSdt(topo, routing, paperPlant(2, 8, 8), opt);
    ASSERT_TRUE(sdt.ok());
    const workloads::Workload w = workloads::imbPingpong(8, bytes, iters);
    const RunResult fr = runWorkload(full, w, map);
    const RunResult sr = runWorkload(sdt.value(), w, map);
    *out = static_cast<double>(sr.act - fr.act) / static_cast<double>(fr.act);
  }
  EXPECT_GT(smallOverhead, largeOverhead);
}

TEST(Testbed, DeployTimeWithinTableIIBand) {
  const topo::Topology topo = topo::makeDragonfly(4, 9, 2);
  auto routing = routing::DragonflyMinimalRouting::create(topo);
  ASSERT_TRUE(routing.ok());
  auto sdt = makeSdt(topo, *routing.value(), plannedPlant(topo), {});
  ASSERT_TRUE(sdt.ok()) << sdt.error().message;
  EXPECT_GE(sdt.value().deployTime, msToNs(100.0));
  EXPECT_LE(sdt.value().deployTime, secToNs(1.0));
}

TEST(Testbed, ComparisonArithmetic) {
  RunResult sdtRun;
  sdtRun.act = msToNs(10.0);
  RunResult fullRun;
  fullRun.act = msToNs(10.0);
  fullRun.fabricTxBytes = 100 * kMiB;
  fullRun.avgComputePerRank = msToNs(2.0);
  const Comparison c = compare(sdtRun, msToNs(200.0), fullRun, 36, /*scaleK=*/1.0);
  EXPECT_NEAR(c.sdtEvalSeconds, 0.210, 1e-9);
  EXPECT_NEAR(c.fullTestbedEvalSeconds, 0.010, 1e-9);
  EXPECT_DOUBLE_EQ(c.actDeviation, 0.0);
  EXPECT_GT(c.simulatorEvalSeconds, c.sdtEvalSeconds);
  // Scaling K multiplies ACT/simulator terms but not the deploy time, so the
  // speedup grows toward its asymptote.
  const Comparison c10 = compare(sdtRun, msToNs(200.0), fullRun, 36, /*scaleK=*/10.0);
  EXPECT_GT(c10.speedupVsSimulator, c.speedupVsSimulator);
}

TEST(Testbed, SimulatorModelChargesTrafficAndActiveTime) {
  SimulatorCostModel model;
  RunResult quiet;  // compute-only run: no traffic, act == compute
  quiet.act = msToNs(5.0);
  quiet.avgComputePerRank = msToNs(5.0);
  EXPECT_DOUBLE_EQ(model.wallNs(quiet, 36), 0.0);
  RunResult busy = quiet;
  busy.fabricTxBytes = kMiB;
  busy.avgComputePerRank = 0;
  EXPECT_GT(model.wallNs(busy, 36), 0.0);
  // More switches -> slower cycle-accurate simulation.
  EXPECT_GT(model.wallNs(busy, 72), model.wallNs(busy, 36));
}

TEST(Testbed, FullAndSdtSeeSameMessageCount) {
  const topo::Topology topo = topo::makeDragonfly(4, 9, 2);
  auto routing = routing::DragonflyMinimalRouting::create(topo);
  ASSERT_TRUE(routing.ok());
  InstanceOptions opt;
  const workloads::Workload w = workloads::imbAlltoall(8, 4096, 1);
  auto full = makeFullTestbed(topo, *routing.value(), opt);
  auto sdt = makeSdt(topo, *routing.value(), plannedPlant(topo), opt);
  ASSERT_TRUE(sdt.ok()) << sdt.error().message;
  const RunResult fr = runWorkload(full, w);
  const RunResult sr = runWorkload(sdt.value(), w);
  EXPECT_EQ(fr.injectedBytes, sr.injectedBytes);
  EXPECT_EQ(fr.drops, 0u);
  EXPECT_EQ(sr.drops, 0u);
  // ACT deviation within the paper's +-3% Table IV band.
  const double dev = std::abs(static_cast<double>(sr.act - fr.act)) /
                     static_cast<double>(fr.act);
  EXPECT_LT(dev, 0.03);
}

}  // namespace
}  // namespace sdt::testbed
