// Integration: the JSON config files shipped under examples/configs must
// parse, build, route, and project — they are the repo's user-facing
// contract (paper Fig. 2's "configuration file" workflow).
#include <gtest/gtest.h>

#include <fstream>

#include "controller/config.hpp"
#include "controller/controller.hpp"

namespace sdt::controller {
namespace {

std::string configDir() {
  // Tests run from the build tree; the sources sit next to this file.
  for (const char* candidate :
       {"../examples/configs", "../../examples/configs", "examples/configs"}) {
    if (std::ifstream(std::string(candidate) + "/fattree_k4.json").good()) {
      return candidate;
    }
  }
  return SDT_SOURCE_DIR "/examples/configs";
}

class ExampleConfigs : public ::testing::TestWithParam<const char*> {};

TEST_P(ExampleConfigs, LoadsDeploysAndRoutes) {
  const std::string path = configDir() + "/" + GetParam();
  auto config = loadExperimentConfig(path);
  ASSERT_TRUE(config.ok()) << path << ": " << config.error().message;
  const topo::Topology& topo = config.value().topology;
  EXPECT_GT(topo.numSwitches(), 0);
  EXPECT_TRUE(topo.validate(/*requireConnected=*/true).ok());

  auto routing = routing::makeRouting(config.value().routingStrategy, topo);
  ASSERT_TRUE(routing.ok()) << routing.error().message;

  auto plant = projection::planPlant(
      {&topo}, {.numSwitches = 2, .spec = projection::openflow128x100G()});
  ASSERT_TRUE(plant.ok()) << plant.error().message;
  SdtController ctl(plant.value());
  DeployOptions opt;
  opt.requireDeadlockFree = config.value().pfc;
  auto dep = ctl.deploy(topo, *routing.value(), opt);
  ASSERT_TRUE(dep.ok()) << dep.error().message;
  EXPECT_GT(dep.value().totalFlowEntries, 0);
}

INSTANTIATE_TEST_SUITE_P(Shipped, ExampleConfigs,
                         ::testing::Values("fattree_k4.json", "dragonfly.json",
                                           "torus_5x5.json",
                                           "custom_triangle.json",
                                           "incast_ft4.json",
                                           "partition_aggregate.json"));

TEST(ExampleConfigs, OverloadDemosRunLossy) {
  // The overload demos only demonstrate anything on a lossy fabric: with PFC
  // on, incast backpressures hop by hop instead of dropping, and the
  // admission tier has nothing to save.
  for (const char* name : {"incast_ft4.json", "partition_aggregate.json"}) {
    auto config = loadExperimentConfig(configDir() + "/" + name);
    ASSERT_TRUE(config.ok()) << name;
    sim::NetworkConfig net;
    applyFabricKnobs(config.value(), net);
    EXPECT_FALSE(net.pfcEnabled) << name;
    EXPECT_TRUE(net.ecnEnabled) << name;
  }
}

TEST(ExampleConfigs, FabricKnobsApplied) {
  auto config = loadExperimentConfig(configDir() + "/custom_triangle.json");
  ASSERT_TRUE(config.ok());
  sim::NetworkConfig net;
  applyFabricKnobs(config.value(), net);
  EXPECT_FALSE(net.pfcEnabled);   // the triangle config runs lossy
  EXPECT_FALSE(net.ecnEnabled);
}

}  // namespace
}  // namespace sdt::controller
