// Tests: the write-ahead intent journal — record framing, torn-write
// tolerance, checksum verification, the file backend, and the fold from a
// record stream to "what should the fabric look like right now".
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "controller/journal.hpp"

namespace sdt::controller {
namespace {

JournalRecord deployRecord(std::uint32_t epoch, const std::string& topo) {
  JournalRecord r;
  r.kind = JournalRecordKind::kDeploy;
  r.at = usToNs(5.0);
  r.epoch = epoch;
  r.topology = topo;
  r.routing = "ecmp";
  r.ecmpSalt = 0x9E3779B97F4A7C15ULL;  // > 2^53: must survive JSON round-trip
  return r;
}

JournalRecord txRecord(JournalRecordKind kind, std::uint32_t from,
                       std::uint32_t to, const std::string& target) {
  JournalRecord r;
  r.kind = kind;
  r.at = usToNs(7.0);
  r.epoch = kind == JournalRecordKind::kTxCommit ? to : from;
  r.fromEpoch = from;
  r.toEpoch = to;
  r.topology = target;
  r.routing = "ecmp";
  return r;
}

TEST(Journal, AppendReplayRoundTripsEveryRecordKind) {
  MemoryJournalStorage storage;
  Journal journal(storage);

  std::vector<JournalRecord> written;
  written.push_back(deployRecord(1, "line6"));
  written.push_back(txRecord(JournalRecordKind::kTxPrepare, 1, 2, "ring6"));
  written.push_back(txRecord(JournalRecordKind::kTxFlip, 1, 2, "ring6"));
  written.push_back(txRecord(JournalRecordKind::kTxGc, 1, 2, "ring6"));
  written.push_back(txRecord(JournalRecordKind::kTxCommit, 1, 2, "ring6"));
  for (JournalRecord& r : written) {
    ASSERT_TRUE(journal.append(r).ok());
  }
  EXPECT_EQ(journal.nextSeq(), 6u);

  auto replayed = journal.replay();
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  const JournalReplay& rep = replayed.value();
  EXPECT_EQ(rep.droppedBytes, 0u);
  ASSERT_EQ(rep.records.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    const JournalRecord& got = rep.records[i];
    EXPECT_EQ(got.seq, i + 1) << "record " << i;
    EXPECT_EQ(got.kind, written[i].kind) << "record " << i;
    EXPECT_EQ(got.at, written[i].at) << "record " << i;
    EXPECT_EQ(got.epoch, written[i].epoch) << "record " << i;
    EXPECT_EQ(got.fromEpoch, written[i].fromEpoch) << "record " << i;
    EXPECT_EQ(got.toEpoch, written[i].toEpoch) << "record " << i;
    EXPECT_EQ(got.topology, written[i].topology) << "record " << i;
    EXPECT_EQ(got.routing, written[i].routing) << "record " << i;
    EXPECT_EQ(got.ecmpSalt, written[i].ecmpSalt) << "record " << i;
  }
}

TEST(Journal, EmptyStorageReplaysToInvalidState) {
  MemoryJournalStorage storage;
  const Journal journal(storage);
  auto replayed = journal.replay();
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed.value().records.empty());
  EXPECT_FALSE(replayed.value().state.valid);
  EXPECT_EQ(replayed.value().droppedBytes, 0u);
}

TEST(Journal, TornWriteDropsOnlyTheTruncatedTail) {
  MemoryJournalStorage storage;
  Journal journal(storage);
  ASSERT_TRUE(journal.append(deployRecord(1, "line6")).ok());
  const std::size_t durable = storage.bytes().size();
  ASSERT_TRUE(
      journal.append(txRecord(JournalRecordKind::kTxPrepare, 1, 2, "ring6")).ok());

  // A crash mid-append can leave any prefix of the second record, including
  // a partial header. Every cut must replay to exactly the first record.
  const std::string full = storage.bytes();
  for (std::size_t cut = durable; cut < full.size(); ++cut) {
    storage.bytes() = full.substr(0, cut);
    auto replayed = journal.replay();
    ASSERT_TRUE(replayed.ok());
    ASSERT_EQ(replayed.value().records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(replayed.value().records[0].topology, "line6");
    EXPECT_EQ(replayed.value().droppedBytes, cut - durable) << "cut at " << cut;
  }
}

TEST(Journal, CorruptPayloadByteEndsReplayAtThatRecord) {
  MemoryJournalStorage storage;
  Journal journal(storage);
  ASSERT_TRUE(journal.append(deployRecord(1, "line6")).ok());
  const std::size_t durable = storage.bytes().size();
  ASSERT_TRUE(
      journal.append(txRecord(JournalRecordKind::kTxPrepare, 1, 2, "ring6")).ok());
  ASSERT_TRUE(
      journal.append(txRecord(JournalRecordKind::kTxFlip, 1, 2, "ring6")).ok());

  // Flip one payload byte inside the SECOND record: the checksum must refuse
  // it, and — with no resync point — the third record is unreachable too.
  storage.bytes()[durable + 14] ^= 0x40;
  auto replayed = journal.replay();
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed.value().records.size(), 1u);
  EXPECT_EQ(replayed.value().records[0].kind, JournalRecordKind::kDeploy);
  EXPECT_EQ(replayed.value().droppedBytes, storage.bytes().size() - durable);
}

TEST(Journal, SequenceNumberingContinuesAcrossRebind) {
  MemoryJournalStorage storage;
  {
    Journal journal(storage);
    ASSERT_TRUE(journal.append(deployRecord(1, "line6")).ok());
    ASSERT_TRUE(
        journal.append(txRecord(JournalRecordKind::kTxPrepare, 1, 2, "ring6")).ok());
  }
  // A recovered controller binds a fresh Journal to the surviving bytes and
  // must continue, not restart, the sequence.
  Journal reborn(storage);
  EXPECT_EQ(reborn.nextSeq(), 3u);
  ASSERT_TRUE(reborn.append(deployRecord(2, "ring6")).ok());
  auto replayed = reborn.replay();
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed.value().records.size(), 3u);
  EXPECT_EQ(replayed.value().records[2].seq, 3u);
}

TEST(Journal, CompactFoldsQuiescentHistoryToOneCheckpoint) {
  MemoryJournalStorage storage;
  Journal journal(storage);
  ASSERT_TRUE(journal.append(deployRecord(1, "line6")).ok());
  ASSERT_TRUE(
      journal.append(txRecord(JournalRecordKind::kTxPrepare, 1, 2, "ring6")).ok());
  ASSERT_TRUE(
      journal.append(txRecord(JournalRecordKind::kTxFlip, 1, 2, "ring6")).ok());
  ASSERT_TRUE(
      journal.append(txRecord(JournalRecordKind::kTxCommit, 1, 2, "ring6")).ok());
  const JournalState before = journal.replay().value().state;
  const std::size_t fatBytes = storage.bytes().size();

  auto compacted = journal.compact();
  ASSERT_TRUE(compacted.ok()) << compacted.error().message;
  EXPECT_EQ(compacted.value(), 3u);  // four records folded into one checkpoint
  EXPECT_LT(storage.bytes().size(), fatBytes);

  auto replayed = journal.replay();
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed.value().records.size(), 1u);
  EXPECT_EQ(replayed.value().records[0].kind, JournalRecordKind::kCheckpoint);
  // The checkpoint folds back to exactly the pre-compaction derived state.
  const JournalState after = replayed.value().state;
  EXPECT_TRUE(after.valid);
  EXPECT_EQ(after.topology, before.topology);
  EXPECT_EQ(after.routing, before.routing);
  EXPECT_EQ(after.epoch, before.epoch);
  EXPECT_EQ(after.ecmpSalt, before.ecmpSalt);
  EXPECT_FALSE(after.txOpen);

  // Sequence numbering continues across the truncation: a record appended
  // after compaction orders after everything ever written, and a rebound
  // journal agrees.
  const std::uint64_t seqAfterCompact = journal.nextSeq();
  EXPECT_GT(seqAfterCompact, 4u);
  ASSERT_TRUE(journal.append(deployRecord(3, "mesh6")).ok());
  Journal reborn(storage);
  EXPECT_EQ(reborn.nextSeq(), seqAfterCompact + 1);
  EXPECT_EQ(reborn.replay().value().state.topology, "mesh6");
}

TEST(Journal, CompactKeepsOpenTransactionMarkers) {
  MemoryJournalStorage storage;
  Journal journal(storage);
  ASSERT_TRUE(journal.append(deployRecord(1, "line6")).ok());
  ASSERT_TRUE(
      journal.append(txRecord(JournalRecordKind::kTxPrepare, 1, 2, "ring6")).ok());
  ASSERT_TRUE(
      journal.append(txRecord(JournalRecordKind::kTxFlip, 1, 2, "ring6")).ok());

  ASSERT_TRUE(journal.compact().ok());
  auto replayed = journal.replay();
  ASSERT_TRUE(replayed.ok());
  // A crash right after compaction must still roll FORWARD: the open
  // transaction's prepare and flip markers survive verbatim.
  const JournalState state = replayed.value().state;
  EXPECT_TRUE(state.valid);
  EXPECT_EQ(state.topology, "line6");
  EXPECT_TRUE(state.txOpen);
  EXPECT_TRUE(state.txFlipped);
  EXPECT_EQ(state.txTopology, "ring6");
  EXPECT_EQ(state.txFromEpoch, 1u);
  EXPECT_EQ(state.txToEpoch, 2u);
}

TEST(Journal, TornTruncateAfterCompactionReplaysToTheIntactPrefix) {
  MemoryJournalStorage storage;
  Journal journal(storage);
  ASSERT_TRUE(journal.append(deployRecord(1, "line6")).ok());
  ASSERT_TRUE(
      journal.append(txRecord(JournalRecordKind::kTxPrepare, 1, 2, "ring6")).ok());
  ASSERT_TRUE(
      journal.append(txRecord(JournalRecordKind::kTxFlip, 1, 2, "ring6")).ok());
  ASSERT_TRUE(journal.compact().ok());

  // replaceAll is atomic old-or-new, but the NEW content itself may land
  // torn (a crash during the rewrite). Every cut of the compacted bytes
  // must replay to a clean record prefix — never an error, never garbage.
  const std::string full = storage.bytes();
  const std::size_t records = journal.replay().value().records.size();
  ASSERT_GE(records, 2u);  // checkpoint + open-tx markers
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    storage.bytes() = full.substr(0, cut);
    Journal reopened(storage);
    auto replayed = reopened.replay();
    ASSERT_TRUE(replayed.ok()) << "cut at " << cut;
    EXPECT_LT(replayed.value().records.size(), records) << "cut at " << cut;
    // Whatever prefix survived folds without crashing; with the checkpoint
    // intact the live intent is already correct.
    if (!replayed.value().records.empty()) {
      EXPECT_TRUE(replayed.value().state.valid) << "cut at " << cut;
      EXPECT_EQ(replayed.value().state.topology, "line6") << "cut at " << cut;
    }
  }
  storage.bytes() = full;
  EXPECT_EQ(Journal(storage).replay().value().records.size(), records);
}

TEST(Journal, FileBackendRoundTripsAndToleratesMissingFile) {
  const std::string path = ::testing::TempDir() + "sdt_journal_test.wal";
  std::remove(path.c_str());
  {
    FileJournalStorage storage(path);
    // Missing file reads as an empty journal, not an error.
    auto empty = storage.read();
    ASSERT_TRUE(empty.ok());
    EXPECT_TRUE(empty.value().empty());
    Journal journal(storage);
    ASSERT_TRUE(journal.append(deployRecord(1, "line6")).ok());
    ASSERT_TRUE(
        journal.append(txRecord(JournalRecordKind::kTxPrepare, 1, 2, "ring6")).ok());
  }
  // Reopen (new storage object, same file): both records survive.
  FileJournalStorage storage(path);
  const Journal journal(storage);
  auto replayed = journal.replay();
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  ASSERT_EQ(replayed.value().records.size(), 2u);
  EXPECT_EQ(replayed.value().records[1].topology, "ring6");
  EXPECT_EQ(journal.nextSeq(), 3u);
  std::remove(path.c_str());
}

// --------------------------------------------------------------------------
// foldJournal: the record stream -> intended-fabric-state reduction that
// drives every recovery decision.
// --------------------------------------------------------------------------

TEST(JournalFold, DeployEstablishesLiveIntent) {
  const JournalState st = foldJournal({deployRecord(1, "line6")});
  EXPECT_TRUE(st.valid);
  EXPECT_EQ(st.topology, "line6");
  EXPECT_EQ(st.routing, "ecmp");
  EXPECT_EQ(st.epoch, 1u);
  EXPECT_EQ(st.ecmpSalt, 0x9E3779B97F4A7C15ULL);
  EXPECT_FALSE(st.txOpen);
}

TEST(JournalFold, PrepareOpensTransactionAndFlipMarksIt) {
  JournalState st = foldJournal(
      {deployRecord(1, "line6"),
       txRecord(JournalRecordKind::kTxPrepare, 1, 2, "ring6")});
  EXPECT_TRUE(st.valid);
  EXPECT_EQ(st.topology, "line6");  // live intent untouched until commit
  EXPECT_TRUE(st.txOpen);
  EXPECT_FALSE(st.txFlipped);
  EXPECT_EQ(st.txTopology, "ring6");
  EXPECT_EQ(st.txFromEpoch, 1u);
  EXPECT_EQ(st.txToEpoch, 2u);

  st = foldJournal({deployRecord(1, "line6"),
                    txRecord(JournalRecordKind::kTxPrepare, 1, 2, "ring6"),
                    txRecord(JournalRecordKind::kTxFlip, 1, 2, "ring6")});
  EXPECT_TRUE(st.txOpen);
  EXPECT_TRUE(st.txFlipped);
  EXPECT_FALSE(st.txGcStarted);

  st = foldJournal({deployRecord(1, "line6"),
                    txRecord(JournalRecordKind::kTxPrepare, 1, 2, "ring6"),
                    txRecord(JournalRecordKind::kTxFlip, 1, 2, "ring6"),
                    txRecord(JournalRecordKind::kTxGc, 1, 2, "ring6")});
  EXPECT_TRUE(st.txFlipped);
  EXPECT_TRUE(st.txGcStarted);
}

TEST(JournalFold, CommitPromotesTargetAndAbortDiscardsIt) {
  const std::vector<JournalRecord> prefix = {
      deployRecord(1, "line6"),
      txRecord(JournalRecordKind::kTxPrepare, 1, 2, "ring6"),
      txRecord(JournalRecordKind::kTxFlip, 1, 2, "ring6")};

  std::vector<JournalRecord> committed = prefix;
  committed.push_back(txRecord(JournalRecordKind::kTxCommit, 1, 2, "ring6"));
  JournalState st = foldJournal(committed);
  EXPECT_FALSE(st.txOpen);
  EXPECT_EQ(st.topology, "ring6");
  EXPECT_EQ(st.epoch, 2u);

  std::vector<JournalRecord> aborted = prefix;
  aborted.push_back(txRecord(JournalRecordKind::kTxAbort, 1, 2, "ring6"));
  st = foldJournal(aborted);
  EXPECT_FALSE(st.txOpen);
  EXPECT_EQ(st.topology, "line6");
  EXPECT_EQ(st.epoch, 1u);
}

TEST(JournalFold, RecoveryRecordClosesTransactionAndSetsLiveIntent) {
  JournalRecord rec = deployRecord(2, "ring6");
  rec.kind = JournalRecordKind::kRecovery;
  const JournalState st = foldJournal(
      {deployRecord(1, "line6"),
       txRecord(JournalRecordKind::kTxPrepare, 1, 2, "ring6"), rec});
  EXPECT_TRUE(st.valid);
  EXPECT_FALSE(st.txOpen);  // the next crash sees a clean slate
  EXPECT_EQ(st.topology, "ring6");
  EXPECT_EQ(st.epoch, 2u);
}

}  // namespace
}  // namespace sdt::controller
