// Tests: discrete-event core.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace sdt::sim {
namespace {

TEST(Simulator, RunsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&]() { order.push_back(3); });
  sim.schedule(10, [&]() { order.push_back(1); });
  sim.schedule(20, [&]() { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.eventsProcessed(), 3u);
}

TEST(Simulator, FifoForSameTimestamp) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(7, [&, i]() { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  Time innerTime = -1;
  sim.schedule(5, [&]() {
    sim.schedule(10, [&]() { innerTime = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(innerTime, 15);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&]() { ++fired; });
  sim.schedule(100, [&]() { ++fired; });
  sim.runUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1, [&]() {
    ++fired;
    sim.stop();
  });
  sim.schedule(2, [&]() { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ZeroDelayRunsNow) {
  Simulator sim;
  bool ran = false;
  sim.schedule(0, [&]() { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 0);
}

}  // namespace
}  // namespace sdt::sim
