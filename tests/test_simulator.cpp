// Tests: discrete-event core, including the sharded parallel engine.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace sdt::sim {
namespace {

TEST(Simulator, RunsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&]() { order.push_back(3); });
  sim.schedule(10, [&]() { order.push_back(1); });
  sim.schedule(20, [&]() { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.eventsProcessed(), 3u);
}

TEST(Simulator, FifoForSameTimestamp) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(7, [&, i]() { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  Time innerTime = -1;
  sim.schedule(5, [&]() {
    sim.schedule(10, [&]() { innerTime = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(innerTime, 15);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&]() { ++fired; });
  sim.schedule(100, [&]() { ++fired; });
  sim.runUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1, [&]() {
    ++fired;
    sim.stop();
  });
  sim.schedule(2, [&]() { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ZeroDelayRunsNow) {
  Simulator sim;
  bool ran = false;
  sim.schedule(0, [&]() { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, KeyPackingBoundary) {
  // K=1 collapses to the legacy seq<<kSlotBits|slot layout, bit for bit.
  static_assert(Simulator::packKey(0, 1, 0) == (1ULL << Simulator::kSlotBits));
  static_assert(Simulator::packKey(0, 5, 7) == ((5ULL << Simulator::kSlotBits) | 7));
  // Round-trip at the field maxima — the seq boundary the overflow check guards.
  constexpr std::uint64_t maxSeq = Simulator::kMaxSeqPerShard - 1;
  constexpr auto maxSlot = static_cast<std::uint32_t>(Simulator::kSlotMask);
  constexpr int maxShard = Simulator::kMaxShards - 1;
  constexpr std::uint64_t key = Simulator::packKey(maxShard, maxSeq, maxSlot);
  static_assert(Simulator::keyShard(key) == maxShard);
  static_assert(Simulator::keySeq(key) == maxSeq);
  static_assert(Simulator::keySlot(key) == maxSlot);
  // Field dominance: seq outranks slot, shard outranks seq — so the packed
  // word compares as (shard, seq) and slot bits never decide an ordering.
  static_assert(Simulator::packKey(0, 1, 0) > Simulator::packKey(0, 0, maxSlot));
  static_assert(Simulator::packKey(1, 0, 0) > Simulator::packKey(0, maxSeq, maxSlot));
}

TEST(SimulatorDeathTest, SeqOverflowAbortsWithClearMessage) {
  Simulator sim;
  sim.debugSetNextSeq(0, Simulator::kMaxSeqPerShard - 1);
  sim.schedule(1, []() {});  // consumes the final sequence number — still fine
  EXPECT_DEATH(sim.schedule(1, []() {}), "exhausted its 34-bit event sequence space");
}

TEST(Simulator, ScheduleOnRunsOnTargetShard) {
  Simulator sim(4, 1);
  std::vector<int> shards;
  for (int s = 3; s >= 0; --s) {
    sim.scheduleOn(s, 10, [&, s]() {
      EXPECT_EQ(sim.currentShard(), s);
      shards.push_back(s);
    });
  }
  sim.run();
  // Same-time events run in global (shard, seq) order, not submission order.
  EXPECT_EQ(shards, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.eventsProcessed(), 4u);
}

TEST(Simulator, CrossShardSameTimestampGlobalOrder) {
  Simulator sim(3, 1);
  std::vector<int> order;
  sim.scheduleOn(2, 5, [&]() { order.push_back(20); });
  sim.scheduleOn(0, 5, [&]() { order.push_back(0); });
  sim.scheduleOn(2, 5, [&]() { order.push_back(21); });
  sim.scheduleOn(1, 5, [&]() { order.push_back(10); });
  sim.run();
  // Shard is the primary same-time tie-break, per-shard FIFO the secondary.
  EXPECT_EQ(order, (std::vector<int>{0, 10, 20, 21}));
}

TEST(Simulator, ZeroLookaheadFallsBackToLockstep) {
  // A zero-latency cross-shard link collapses the safe horizon to nothing;
  // the engine must degrade to the serial merge loop, not deadlock.
  Simulator sim(4, 4);
  sim.setLookahead(0);
  int hops = 0;
  std::function<void(int)> hop = [&](int shard) {
    ++hops;
    if (hops >= 64) return;
    const int next = (shard + 1) % 4;
    sim.scheduleOn(next, sim.crossDelay(next, 0), [&, next]() { hop(next); });
  };
  sim.scheduleOn(0, 0, [&]() { hop(0); });
  sim.run();
  EXPECT_EQ(hops, 64);
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.barrierWindows(), 0u);  // no parallel windows ran
}

TEST(Simulator, EventExactlyOnBarrierBoundaryRunsNextWindow) {
  // An event landing exactly at the horizon (gmin + lookahead) belongs to
  // the *next* window (the in-window test is strictly `when < horizon`) and
  // must never be lost or run early.
  Simulator sim(2, 2);
  const Time la = sim.lookahead();
  std::vector<Time> fired;  // only shard 1 appends — no cross-thread access
  sim.scheduleOn(0, 0, [&]() {
    sim.scheduleOn(1, sim.crossDelay(1, la), [&]() { fired.push_back(sim.now()); });
  });
  sim.scheduleOn(1, 0, [&]() { fired.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 0);
  EXPECT_EQ(fired[1], la);
  EXPECT_EQ(sim.barrierWindows(), 2u);
  EXPECT_EQ(sim.crossShardEvents(), 1u);
}

TEST(Simulator, ParallelMatchesSerialPerShardTraces) {
  // A deterministic branching cascade across 4 shards, run on the serial
  // merge loop and again with 4 workers: each shard's ordered execution
  // trace must be identical (the global interleaving across shards is
  // unordered by design; per-shard order and all state are the contract).
  constexpr int kShards = 4;
  using Trace = std::vector<std::pair<Time, std::uint64_t>>;
  const auto runTrace = [](int workers) {
    Simulator sim(kShards, workers);
    std::array<Trace, kShards> perShard;  // each touched only by its shard
    std::function<void(std::uint64_t, int)> node = [&](std::uint64_t id, int depth) {
      perShard[static_cast<std::size_t>(sim.currentShard())].emplace_back(sim.now(), id);
      if (depth >= 6) return;
      for (std::uint64_t c = 0; c < 2; ++c) {
        const std::uint64_t childId = id * 2 + c + 1;
        const int dest = static_cast<int>(childId % kShards);
        const Time delay = sim.crossDelay(dest, static_cast<Time>(childId % 3) * 100);
        sim.scheduleOn(dest, delay, [&, childId, depth]() { node(childId, depth + 1); });
      }
    };
    sim.scheduleOn(0, 0, [&]() { node(0, 0); });
    sim.run();
    EXPECT_EQ(sim.eventsProcessed(), (1u << 7) - 1);  // full binary tree, depth 6
    return perShard;
  };
  const auto serial = runTrace(1);
  const auto parallel = runTrace(kShards);
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(parallel[s], serial[s]) << "shard " << s << " diverged";
    EXPECT_FALSE(serial[s].empty());
  }
}

}  // namespace
}  // namespace sdt::sim
