// Tests: data plane — latency composition, queueing, PFC losslessness,
// lossy drops, ECN marking, strict priority, cut-through.
#include <gtest/gtest.h>

#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "topo/generators.hpp"

namespace sdt::sim {
namespace {

/// Two hosts on two switches joined by one 10G link.
struct TwoSwitchFixture {
  Simulator sim;
  topo::Topology topo = topo::makeLine(2);
  routing::ShortestPathRouting routing{topo};
  BuiltNetwork built;
  explicit TwoSwitchFixture(NetworkConfig cfg = {}) {
    built = buildLogicalNetwork(sim, topo, routing, cfg);
  }
  Network& net() { return *built.net; }
};

Packet dataPacket(int src, int dst, std::int64_t payload, std::uint64_t id = 1) {
  Packet p;
  p.id = id;
  p.flowId = 99;
  p.srcHost = src;
  p.dstHost = dst;
  p.payloadBytes = payload;
  p.kind = PacketKind::kData;
  return p;
}

TEST(Network, SinglePacketLatencyComposition) {
  NetworkConfig cfg;
  cfg.cutThrough = false;
  TwoSwitchFixture f(cfg);
  Time delivered = -1;
  f.net().setReceiver(1, [&](const Packet&) { delivered = f.sim.now(); });
  f.net().injectFromHost(0, dataPacket(0, 1, 1000));
  f.sim.run();
  // Store-and-forward path: nicTx + 3 serializations (host link, fabric
  // link, host link) + 2 switch latencies + 3 props + nicRx.
  const Time ser = Gbps{10.0}.serializationNs(1000 + kWireHeaderBytes);
  const Time expected = cfg.nicLatency + ser + cfg.hostPropDelay  // host -> sw0
                        + cfg.switchLatency + ser + cfg.linkPropDelay  // sw0 -> sw1
                        + cfg.switchLatency + ser + cfg.hostPropDelay  // sw1 -> host
                        + cfg.nicLatency;
  EXPECT_EQ(delivered, expected);
}

TEST(Network, CutThroughIsFasterAcrossFabric) {
  Time sf = 0, ct = 0;
  for (const bool cutThrough : {false, true}) {
    NetworkConfig cfg;
    cfg.cutThrough = cutThrough;
    // 3 switches so the fabric hop count matters.
    Simulator sim;
    topo::Topology topo = topo::makeLine(3);
    routing::ShortestPathRouting routing{topo};
    auto built = buildLogicalNetwork(sim, topo, routing, cfg);
    Time delivered = -1;
    built.net->setReceiver(2, [&](const Packet&) { delivered = sim.now(); });
    built.net->injectFromHost(0, dataPacket(0, 2, 4000));
    sim.run();
    (cutThrough ? ct : sf) = delivered;
  }
  EXPECT_LT(ct, sf);
  // CT saves roughly one full serialization per fabric-to-fabric hop.
  EXPECT_GT(sf - ct, Gbps{10.0}.serializationNs(3000));
}

TEST(Network, BackToBackPacketsPipelineAtLineRate) {
  NetworkConfig cfg;
  cfg.cutThrough = false;
  TwoSwitchFixture f(cfg);
  std::vector<Time> arrivals;
  f.net().setReceiver(1, [&](const Packet&) { arrivals.push_back(f.sim.now()); });
  for (int i = 0; i < 10; ++i) f.net().injectFromHost(0, dataPacket(0, 1, 1000, i));
  f.sim.run();
  ASSERT_EQ(arrivals.size(), 10u);
  // Steady state: one packet per serialization time.
  const Time ser = Gbps{10.0}.serializationNs(1000 + kWireHeaderBytes);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i] - arrivals[i - 1], ser);
  }
}

TEST(Network, LossyModeDropsAtCapacity) {
  // Two senders incast one receiver: the 2:1 oversubscription must overflow
  // the tiny lossy buffer and drop, conserving packets (received + dropped).
  NetworkConfig cfg;
  cfg.pfcEnabled = false;
  cfg.lossyQueueCapBytes = 4 * 1024;  // tiny
  Simulator sim;
  topo::Topology topo = topo::makeLine(3);
  routing::ShortestPathRouting routing{topo};
  auto built = buildLogicalNetwork(sim, topo, routing, cfg);
  int received = 0;
  built.net->setReceiver(1, [&](const Packet&) { ++received; });
  for (int i = 0; i < 100; ++i) {
    built.net->injectFromHost(0, dataPacket(0, 1, 1000, 2 * i));
    built.net->injectFromHost(2, dataPacket(2, 1, 1000, 2 * i + 1));
  }
  sim.run();
  EXPECT_GT(built.net->totalDrops(), 0u);
  EXPECT_LT(received, 200);
  EXPECT_EQ(received + static_cast<int>(built.net->totalDrops()), 200);
}

TEST(Network, PfcIsLossless) {
  NetworkConfig cfg;
  cfg.pfcEnabled = true;
  cfg.pfcXoffBytes = 8 * 1024;
  cfg.pfcXonBytes = 4 * 1024;
  TwoSwitchFixture f(cfg);
  int received = 0;
  f.net().setReceiver(1, [&](const Packet&) { ++received; });
  for (int i = 0; i < 200; ++i) f.net().injectFromHost(0, dataPacket(0, 1, 1000, i));
  f.sim.run();
  EXPECT_EQ(f.net().totalDrops(), 0u);
  EXPECT_EQ(received, 200);
}

TEST(Network, PfcBoundsQueueDepth) {
  // Incast: both far hosts blast one middle target; PFC must keep every
  // egress queue within XOFF + in-flight slack, not grow without bound.
  NetworkConfig cfg;
  cfg.pfcEnabled = true;
  cfg.pfcXoffBytes = 16 * 1024;
  cfg.pfcXonBytes = 8 * 1024;
  Simulator sim;
  topo::Topology topo = topo::makeLine(3);
  routing::ShortestPathRouting routing{topo};
  auto built = buildLogicalNetwork(sim, topo, routing, cfg);
  int received = 0;
  built.net->setReceiver(1, [&](const Packet&) { ++received; });
  for (int i = 0; i < 300; ++i) {
    built.net->injectFromHost(0, dataPacket(0, 1, 1000, 2 * i));
    built.net->injectFromHost(2, dataPacket(2, 1, 1000, 2 * i + 1));
  }
  sim.run();
  EXPECT_EQ(received, 600);
  EXPECT_EQ(built.net->totalDrops(), 0u);
  // Peak occupancy stays near the watermark (XOFF + a pause-latency skid).
  EXPECT_LT(built.net->peakQueueBytes(), cfg.pfcXoffBytes + 64 * 1024);
}

TEST(Network, EcnMarksAboveThreshold) {
  // Incast builds a standing queue at the shared egress; packets landing in
  // a queue above the threshold get CE-marked, the burst head does not.
  NetworkConfig cfg;
  cfg.ecnEnabled = true;
  cfg.ecnThresholdBytes = 2 * 1024;
  Simulator sim;
  topo::Topology topo = topo::makeLine(3);
  routing::ShortestPathRouting routing{topo};
  auto built = buildLogicalNetwork(sim, topo, routing, cfg);
  int marked = 0, total = 0;
  built.net->setReceiver(1, [&](const Packet& p) {
    ++total;
    marked += p.ecnMarked;
  });
  for (int i = 0; i < 50; ++i) {
    Packet a = dataPacket(0, 1, 1000, 2 * i);
    a.ecnCapable = true;
    built.net->injectFromHost(0, a);
    Packet b = dataPacket(2, 1, 1000, 2 * i + 1);
    b.ecnCapable = true;
    built.net->injectFromHost(2, b);
  }
  sim.run();
  EXPECT_EQ(total, 100);
  EXPECT_GT(marked, 0);
  EXPECT_LT(marked, 100);  // the head of the burst passes unmarked
}

TEST(Network, EcnIgnoresNonCapablePackets) {
  NetworkConfig cfg;
  cfg.ecnEnabled = true;
  cfg.ecnThresholdBytes = 1024;
  TwoSwitchFixture f(cfg);
  int marked = 0;
  f.net().setReceiver(1, [&](const Packet& p) { marked += p.ecnMarked; });
  for (int i = 0; i < 30; ++i) f.net().injectFromHost(0, dataPacket(0, 1, 1000, i));
  f.sim.run();
  EXPECT_EQ(marked, 0);
}

TEST(Network, StrictPriorityServesControlFirst) {
  NetworkConfig cfg;
  cfg.cutThrough = false;
  TwoSwitchFixture f(cfg);
  std::vector<std::uint64_t> order;
  f.net().setReceiver(1, [&](const Packet& p) { order.push_back(p.id); });
  // Queue a burst of bulk data, then one control packet; the control class
  // must overtake the still-queued data.
  for (int i = 0; i < 20; ++i) f.net().injectFromHost(0, dataPacket(0, 1, 1000, i));
  Packet ctrl = dataPacket(0, 1, 0, 999);
  ctrl.vc = kControlClass;
  ctrl.kind = PacketKind::kAck;
  f.net().injectFromHost(0, ctrl);
  f.sim.run();
  ASSERT_EQ(order.size(), 21u);
  const auto pos = std::find(order.begin(), order.end(), 999u) - order.begin();
  EXPECT_LT(pos, 20);
}

TEST(Network, SnifferSeesDeliveredPackets) {
  TwoSwitchFixture f;
  int sniffed = 0, received = 0;
  f.net().setSniffer(1, [&](const Packet&) { ++sniffed; });
  f.net().setReceiver(1, [&](const Packet&) { ++received; });
  f.net().injectFromHost(0, dataPacket(0, 1, 100));
  f.sim.run();
  EXPECT_EQ(sniffed, 1);
  EXPECT_EQ(received, 1);
}

TEST(Network, PortCountersTrack) {
  TwoSwitchFixture f;
  f.net().setReceiver(1, [](const Packet&) {});
  f.net().injectFromHost(0, dataPacket(0, 1, 1000));
  f.sim.run();
  // Switch 0 received on its host port and transmitted on its fabric port.
  const topo::HostLink& hl = f.topo.hostLink(0);
  const PortCounters& in = f.net().switchPortCounters(0, hl.attach.port);
  EXPECT_EQ(in.rxPackets, 1u);
  EXPECT_GT(in.rxBytes, 1000u);
}

}  // namespace
}  // namespace sdt::sim
