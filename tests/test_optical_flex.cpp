// Tests: §VII-A flexibility enhancement — flex ports cabled into a MEMS
// optical switch let the projector dial on-demand self-links or
// inter-switch links when the fixed reservation runs out.
#include <gtest/gtest.h>

#include "projection/link_projector.hpp"
#include "topo/generators.hpp"

namespace sdt::projection {
namespace {

Plant basePlant(int switches, int hostPorts, int inter) {
  PlantConfig cfg;
  cfg.numSwitches = switches;
  cfg.spec = openflow64x100G();
  cfg.hostPortsPerSwitch = hostPorts;
  cfg.interLinksPerPair = inter;
  auto p = buildPlant(cfg);
  EXPECT_TRUE(p.ok());
  return std::move(p).value();
}

TEST(OpticalFlex, ConvertsSelfLinksToFlexPorts) {
  Plant plant = basePlant(2, 8, 4);
  const std::size_t selfBefore = plant.selfLinks.size();
  ASSERT_TRUE(addOpticalFlex(plant, 3).ok());
  EXPECT_EQ(plant.selfLinks.size(), selfBefore - 6);  // 3 pairs x 2 switches
  EXPECT_EQ(plant.flexPorts.size(), 12u);
  EXPECT_EQ(plant.flexPortsOf(0).size(), 6u);
  EXPECT_TRUE(plant.validate().ok());
}

TEST(OpticalFlex, RespectsOpticalPortBudget) {
  Plant plant = basePlant(2, 8, 4);
  OpticalSwitchSpec tiny = mems320();
  tiny.numPorts = 4;
  EXPECT_FALSE(addOpticalFlex(plant, 3, tiny).ok());  // needs 12 ports
  EXPECT_TRUE(addOpticalFlex(plant, 1, tiny).ok());   // needs 4 ports
}

TEST(OpticalFlex, FailsWhenNoSelfLinksLeft) {
  Plant plant = basePlant(1, 62, 0);  // 64-port switch: 1 self-link left
  EXPECT_FALSE(addOpticalFlex(plant, 2).ok());
}

TEST(OpticalFlex, RescuesSelfLinkShortage) {
  // A ring of 20 needs 20 self-links; leave only 16 fixed ones and let the
  // optical pool carry the remainder.
  const topo::Topology ring = topo::makeRing(20, {.hostsPerSwitch = 0, .linkSpeed = Gbps{10}});
  Plant plant = basePlant(1, 22, 0);  // (64-22)/2 = 21 self-links
  ASSERT_TRUE(addOpticalFlex(plant, 5).ok());  // 16 fixed self-links + 10 flex ports
  ASSERT_EQ(plant.selfLinksOf(0).size(), 16u);

  auto proj = LinkProjector::project(ring, plant);
  ASSERT_TRUE(proj.ok()) << proj.error().message;
  EXPECT_TRUE(proj.value().validate(ring, plant).ok());
  // Exactly 4 links had to go optical.
  EXPECT_EQ(proj.value().opticalCircuits().size(), 4u);
  int optical = 0;
  for (const RealizedLink& rl : proj.value().realizedLinks()) optical += rl.optical;
  EXPECT_EQ(optical, 4);
}

TEST(OpticalFlex, RescuesInterLinkShortage) {
  // Two-switch plant with only 1 reserved inter-switch link; force a split
  // topology needing 2 cross links.
  const topo::Topology ring = topo::makeRing(40, {.hostsPerSwitch = 0, .linkSpeed = Gbps{10}});
  // 40 links total; one 64-port switch offers at most 32 -> must split; a
  // ring split in two needs exactly 2 cross links.
  Plant plant = basePlant(2, 2, 1);
  ASSERT_TRUE(addOpticalFlex(plant, 2).ok());
  auto proj = LinkProjector::project(ring, plant);
  ASSERT_TRUE(proj.ok()) << proj.error().message;
  int opticalInter = 0;
  for (const RealizedLink& rl : proj.value().realizedLinks()) {
    opticalInter += rl.optical && rl.interSwitch;
  }
  EXPECT_GE(opticalInter, 1);
  EXPECT_TRUE(proj.value().validate(ring, plant).ok());
}

TEST(OpticalFlex, WithoutFlexTheSameProjectionFails) {
  const topo::Topology ring = topo::makeRing(20, {.hostsPerSwitch = 0, .linkSpeed = Gbps{10}});
  Plant plant = basePlant(1, 22, 0);
  ASSERT_TRUE(addOpticalFlex(plant, 5).ok());
  Plant noFlex = plant;
  noFlex.flexPorts.clear();
  EXPECT_TRUE(LinkProjector::project(ring, plant).ok());
  EXPECT_FALSE(LinkProjector::project(ring, noFlex).ok());
}

}  // namespace
}  // namespace sdt::projection
