// Integration test: §VI-B hardware isolation — two unconnected logical
// topologies deployed on ONE SDT plant; running traffic in both at once,
// no host may ever sniff a packet from the other topology (the paper's
// Wireshark experiment).
#include <gtest/gtest.h>

#include "controller/controller.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/transport.hpp"
#include "topo/generators.hpp"

namespace sdt {
namespace {

TEST(Isolation, TwoTopologiesShareOnePlantWithoutCrosstalk) {
  // One combined "topology" object holding two disconnected 4-switch lines:
  // switches 0-3 + hosts 0-3 form network A; switches 4-7 + hosts 4-7 form
  // network B. The controller deploys it as one projection; isolation must
  // come from the flow tables alone.
  topo::Topology both("two-islands", 8);
  for (int i = 0; i + 1 < 4; ++i) both.connect(i, i + 1);
  for (int i = 4; i + 1 < 8; ++i) both.connect(i, i + 1);
  for (int sw = 0; sw < 8; ++sw) both.attachHost(sw);
  ASSERT_TRUE(both.validate(/*requireConnected=*/false).ok());

  routing::ShortestPathRouting routing(both);

  projection::PlantConfig cfg;
  cfg.numSwitches = 1;
  cfg.spec = projection::openflow64x100G();
  cfg.hostPortsPerSwitch = 8;
  cfg.interLinksPerPair = 0;
  auto plant = projection::buildPlant(cfg);
  ASSERT_TRUE(plant.ok());

  controller::SdtController ctl(plant.value());
  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;  // disconnected graph: analysis per island
  auto dep = ctl.deploy(both, routing, dopt);
  ASSERT_TRUE(dep.ok()) << dep.error().message;

  sim::Simulator sim;
  auto built = sim::buildProjectedNetwork(sim, both, dep.value().projection,
                                          plant.value(), dep.value().switches, {},
                                          sim::CrossbarModel{2.0, 1.0});
  sim::TransportManager transport(sim, *built.net, {});

  // Sniffers on every host record the source of everything they see.
  std::vector<std::vector<int>> seenSources(8);
  for (int h = 0; h < 8; ++h) {
    built.net->setSniffer(h, [&, h](const sim::Packet& p) {
      seenSources[h].push_back(p.srcHost);
    });
  }

  // Simultaneous pingpong-ish traffic inside each island.
  int delivered = 0;
  for (const auto& [src, dst] : {std::pair{0, 3}, std::pair{3, 0},
                                 std::pair{4, 7}, std::pair{7, 4},
                                 std::pair{1, 2}, std::pair{5, 6}}) {
    transport.sendMessage(src, dst, 64 * 1024, 0,
                          [&](std::uint64_t, TimeNs) { ++delivered; });
  }
  sim.run();
  EXPECT_EQ(delivered, 6);

  // The Wireshark check: hosts 0-3 only ever see sources 0-3; hosts 4-7
  // only 4-7.
  for (int h = 0; h < 8; ++h) {
    for (const int src : seenSources[h]) {
      EXPECT_EQ(h < 4, src < 4) << "host " << h << " sniffed a packet from " << src;
    }
  }
  // And no packet vanished into the wrong island silently either: the only
  // acceptable drops are none at all (lossless, correctly programmed).
  EXPECT_EQ(built.net->totalDrops(), 0u);
}

TEST(Isolation, CrossIslandTrafficIsDroppedNotLeaked) {
  // A host that *tries* to reach the other island (no route installed) must
  // have its packets dropped at the first switch, never delivered.
  topo::Topology both("two-islands-2", 4);
  both.connect(0, 1);
  both.connect(2, 3);
  for (int sw = 0; sw < 4; ++sw) both.attachHost(sw);

  routing::ShortestPathRouting routing(both);
  projection::PlantConfig cfg;
  cfg.numSwitches = 1;
  cfg.spec = projection::openflow64x100G();
  cfg.hostPortsPerSwitch = 4;
  cfg.interLinksPerPair = 0;
  auto plant = projection::buildPlant(cfg);
  ASSERT_TRUE(plant.ok());
  controller::SdtController ctl(plant.value());
  auto dep = ctl.deploy(both, routing, {.requireDeadlockFree = false});
  ASSERT_TRUE(dep.ok()) << dep.error().message;

  sim::Simulator sim;
  auto built = sim::buildProjectedNetwork(sim, both, dep.value().projection,
                                          plant.value(), dep.value().switches, {},
                                          sim::CrossbarModel{});
  int sniffed = 0;
  for (int h = 0; h < 4; ++h) {
    built.net->setSniffer(h, [&](const sim::Packet&) { ++sniffed; });
  }
  // Raw cross-island packet (host 0 -> host 2), bypassing the transports.
  sim::Packet p;
  p.id = 1;
  p.flowId = 1;
  p.srcHost = 0;
  p.dstHost = 2;
  p.payloadBytes = 1000;
  built.net->injectFromHost(0, p);
  sim.run();
  EXPECT_EQ(sniffed, 0);
  EXPECT_EQ(built.net->totalDrops(), 1u);
}

}  // namespace
}  // namespace sdt
