// Tests: RoCE message transport with DCQCN, and TCP-lite flows.
#include <gtest/gtest.h>

#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/transport.hpp"
#include "topo/generators.hpp"

namespace sdt::sim {
namespace {

struct Fixture {
  Simulator sim;
  topo::Topology topo;
  std::unique_ptr<routing::ShortestPathRouting> routing;
  BuiltNetwork built;
  std::unique_ptr<TransportManager> transport;

  explicit Fixture(topo::Topology t, NetworkConfig netCfg = {},
                   TransportConfig txCfg = {})
      : topo(std::move(t)) {
    routing = std::make_unique<routing::ShortestPathRouting>(topo);
    built = buildLogicalNetwork(sim, topo, *routing, netCfg);
    transport = std::make_unique<TransportManager>(sim, *built.net, txCfg);
  }
};

TEST(Rdma, MessageDeliveredOnce) {
  Fixture f(topo::makeLine(2));
  int completions = 0;
  Time when = 0;
  f.transport->sendMessage(0, 1, 10 * 1024, 0, [&](std::uint64_t, Time t) {
    ++completions;
    when = t;
  });
  f.sim.run();
  EXPECT_EQ(completions, 1);
  EXPECT_GT(when, 0);
  EXPECT_EQ(f.transport->rdmaDeliveredBytes(1), 10 * 1024);
  EXPECT_EQ(f.built.net->totalDrops(), 0u);
}

TEST(Rdma, ManyMessagesFifoPerFlow) {
  Fixture f(topo::makeLine(2));
  std::vector<std::uint64_t> completed;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(f.transport->sendMessage(0, 1, 4096, 0,
                                           [&](std::uint64_t id, Time) {
                                             completed.push_back(id);
                                           }));
  }
  f.sim.run();
  EXPECT_EQ(completed, ids);  // same flow: in-order completion
}

TEST(Rdma, LargeMessageThroughputNearLineRate) {
  Fixture f(topo::makeLine(2));
  const std::int64_t bytes = 4 * kMiB;
  Time done = 0;
  f.transport->sendMessage(0, 1, bytes, 0, [&](std::uint64_t, Time t) { done = t; });
  f.sim.run();
  // Goodput >= 80% of the 10G line rate (headers + latency overheads).
  const double gbps = static_cast<double>(bytes) * 8.0 / static_cast<double>(done);
  EXPECT_GT(gbps, 8.0);
  EXPECT_LT(gbps, 10.0);
}

TEST(Rdma, DcqcnReactsToCongestion) {
  // Two senders incast one receiver through a shared 10G link: ECN marks
  // must generate CNPs and the transport must stay lossless end-to-end.
  NetworkConfig cfg;
  cfg.ecnThresholdBytes = 16 * 1024;
  Fixture f(topo::makeStar(3, {.hostsPerSwitch = 1, .linkSpeed = Gbps{10.0}}), cfg);
  int done = 0;
  for (const int src : {1, 2}) {
    f.transport->sendMessage(src, 0, 2 * kMiB, 0,
                             [&](std::uint64_t, Time) { ++done; });
  }
  f.sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_GT(f.transport->cnpsSent(), 0u);
  EXPECT_EQ(f.built.net->totalDrops(), 0u);
}

TEST(Rdma, DcqcnDisabledSendsNoCnps) {
  NetworkConfig cfg;
  cfg.ecnThresholdBytes = 16 * 1024;
  TransportConfig tx;
  tx.dcqcn.enabled = false;
  Fixture f(topo::makeStar(3, {.hostsPerSwitch = 1, .linkSpeed = Gbps{10.0}}), cfg, tx);
  int done = 0;
  for (const int src : {1, 2}) {
    f.transport->sendMessage(src, 0, kMiB, 0, [&](std::uint64_t, Time) { ++done; });
  }
  f.sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(f.transport->cnpsSent(), 0u);
}

TEST(Tcp, BoundedFlowCompletes) {
  Fixture f(topo::makeLine(2));
  Time done = 0;
  const auto id = f.transport->startTcpFlow(0, 1, 256 * 1024,
                                            [&](Time t) { done = t; });
  f.sim.run();
  EXPECT_GT(done, 0);
  EXPECT_EQ(f.transport->tcpDeliveredBytes(id), 256 * 1024);
}

TEST(Tcp, RecoversFromLoss) {
  // Two flows incast one host through a tiny lossy buffer: drops are
  // guaranteed, and both flows must still complete via retransmission.
  NetworkConfig cfg;
  cfg.pfcEnabled = false;
  cfg.lossyQueueCapBytes = 8 * 1024;  // force drops during slow start
  Fixture f(topo::makeLine(3), cfg);
  Time doneA = 0, doneB = 0;
  f.transport->startTcpFlow(0, 1, 512 * 1024, [&](Time t) { doneA = t; });
  f.transport->startTcpFlow(2, 1, 512 * 1024, [&](Time t) { doneB = t; });
  f.sim.run();
  EXPECT_GT(f.built.net->totalDrops(), 0u);
  EXPECT_GT(doneA, 0) << "flow A must complete despite drops";
  EXPECT_GT(doneB, 0) << "flow B must complete despite drops";
}

TEST(Tcp, UnboundedFlowKeepsDelivering) {
  Fixture f(topo::makeLine(2));
  const auto id = f.transport->startTcpFlow(0, 1, -1);
  f.sim.runUntil(msToNs(5.0));
  const std::int64_t at5ms = f.transport->tcpDeliveredBytes(id);
  EXPECT_GT(at5ms, 0);
  f.sim.runUntil(msToNs(10.0));
  EXPECT_GT(f.transport->tcpDeliveredBytes(id), at5ms);
}

TEST(Tcp, SharesBottleneckRoughlyFairly) {
  // Two flows over the same 10G hop: each should get a comparable share.
  Fixture f(topo::makeLine(2, {.hostsPerSwitch = 2, .linkSpeed = Gbps{10.0}}));
  // hosts 0,1 on switch 0; hosts 2,3 on switch 1.
  const auto a = f.transport->startTcpFlow(0, 2, -1);
  const auto b = f.transport->startTcpFlow(1, 3, -1);
  f.sim.runUntil(msToNs(20.0));
  const double da = static_cast<double>(f.transport->tcpDeliveredBytes(a));
  const double db = static_cast<double>(f.transport->tcpDeliveredBytes(b));
  EXPECT_GT(da, 0);
  EXPECT_GT(db, 0);
  const double ratio = da > db ? da / db : db / da;
  EXPECT_LT(ratio, 2.5) << "a=" << da << " b=" << db;
  // Combined goodput near line rate.
  const double gbps = (da + db) * 8.0 / static_cast<double>(msToNs(20.0));
  EXPECT_GT(gbps, 7.0);
}

TEST(Tcp, PfcOnMeansNoDropsUnderIncast) {
  NetworkConfig cfg;
  cfg.pfcEnabled = true;
  Fixture f(topo::makeLine(3), cfg);
  f.transport->startTcpFlow(0, 1, -1);
  f.transport->startTcpFlow(2, 1, -1);
  f.sim.runUntil(msToNs(10.0));
  EXPECT_EQ(f.built.net->totalDrops(), 0u);
}

}  // namespace
}  // namespace sdt::sim
