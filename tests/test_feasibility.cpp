// Tests: Table II models — projectable link speed, WAN counts, costs,
// reconfiguration times.
#include <gtest/gtest.h>

#include "projection/feasibility.hpp"
#include "topo/generators.hpp"

namespace sdt::projection {
namespace {

HardwareBudget budget64() { return {openflow64x100G(), 3}; }
HardwareBudget budget128() { return {openflow128x100G(), 3}; }
HardwareBudget p4Budget64() { return {p4Switch64x100G(), 3}; }
HardwareBudget p4Budget128() { return {p4Switch128x100G(), 3}; }

TEST(Feasibility, FatTreeK4FullSpeedEverywhereButTurboNet) {
  const topo::Topology ft = topo::makeFatTree(4);
  EXPECT_DOUBLE_EQ(maxProjectableSpeed(TpMethod::kSDT, ft, budget128()).linkSpeed.value,
                   100.0);
  EXPECT_DOUBLE_EQ(maxProjectableSpeed(TpMethod::kSDT, ft, budget64()).linkSpeed.value,
                   100.0);
  EXPECT_DOUBLE_EQ(maxProjectableSpeed(TpMethod::kSP, ft, budget128()).linkSpeed.value,
                   100.0);
  // TurboNet halves the rate.
  EXPECT_DOUBLE_EQ(
      maxProjectableSpeed(TpMethod::kTurboNet, ft, p4Budget64()).linkSpeed.value, 50.0);
  EXPECT_DOUBLE_EQ(
      maxProjectableSpeed(TpMethod::kTurboNet, ft, p4Budget128()).linkSpeed.value, 50.0);
}

TEST(Feasibility, SpeedDegradesWithTopologySize) {
  // Bigger fat-trees force deeper breakout: speed is monotonically
  // non-increasing in topology size for a fixed budget.
  const auto speedOf = [&](int k) {
    return maxProjectableSpeed(TpMethod::kSDT, topo::makeFatTree(k), budget128());
  };
  const SpeedClass k4 = speedOf(4);
  const SpeedClass k6 = speedOf(6);
  const SpeedClass k8 = speedOf(8);
  ASSERT_TRUE(k4.feasible && k6.feasible && k8.feasible);
  EXPECT_GE(k4.linkSpeed.value, k6.linkSpeed.value);
  EXPECT_GE(k6.linkSpeed.value, k8.linkSpeed.value);
}

TEST(Feasibility, TorusRowsMatchPaperOrdering) {
  // 4x4x4 at full rate on 3x128; 5^3 and 6^3 degrade (paper: 100/50/25G).
  const SpeedClass t4 = maxProjectableSpeed(TpMethod::kSDT, topo::makeTorus3D(4, 4, 4),
                                            budget128());
  const SpeedClass t5 = maxProjectableSpeed(TpMethod::kSDT, topo::makeTorus3D(5, 5, 5),
                                            budget128());
  const SpeedClass t6 = maxProjectableSpeed(TpMethod::kSDT, topo::makeTorus3D(6, 6, 6),
                                            budget128());
  ASSERT_TRUE(t4.feasible && t5.feasible && t6.feasible);
  EXPECT_DOUBLE_EQ(t4.linkSpeed.value, 100.0);
  EXPECT_DOUBLE_EQ(t5.linkSpeed.value, 50.0);
  EXPECT_DOUBLE_EQ(t6.linkSpeed.value, 25.0);
  // 6^3 does not fit the 64-port budget at >= 25G (paper: x).
  EXPECT_FALSE(maxProjectableSpeed(TpMethod::kSDT, topo::makeTorus3D(6, 6, 6),
                                   budget64()).feasible);
}

TEST(Feasibility, SdtAlwaysAtLeastMatchesTurboNet) {
  for (const auto* name : {"ft4", "ft6", "df", "t4", "t5"}) {
    topo::Topology t;
    const std::string which = name;
    if (which == "ft4") t = topo::makeFatTree(4);
    if (which == "ft6") t = topo::makeFatTree(6);
    if (which == "df") t = topo::makeDragonfly(4, 9, 2);
    if (which == "t4") t = topo::makeTorus3D(4, 4, 4);
    if (which == "t5") t = topo::makeTorus3D(5, 5, 5);
    const SpeedClass sdt = maxProjectableSpeed(TpMethod::kSDT, t, budget128());
    const SpeedClass turbo = maxProjectableSpeed(TpMethod::kTurboNet, t, p4Budget128());
    if (turbo.feasible) {
      ASSERT_TRUE(sdt.feasible) << which;
      EXPECT_GE(sdt.linkSpeed.value, turbo.linkSpeed.value) << which;
    }
  }
}

TEST(Feasibility, WanCountsMatchTableII) {
  // Paper bottom row: SP/SP-OS/SDT @128 -> 260; SDT@64 & TurboNet@128 -> 249;
  // TurboNet@64 -> 248.
  EXPECT_EQ(countProjectableWans(TpMethod::kSDT, budget128()), 260);
  EXPECT_EQ(countProjectableWans(TpMethod::kSP, budget128()), 260);
  EXPECT_EQ(countProjectableWans(TpMethod::kSPOS, budget128()), 260);
  EXPECT_EQ(countProjectableWans(TpMethod::kSDT, budget64()), 249);
  EXPECT_EQ(countProjectableWans(TpMethod::kTurboNet, p4Budget128()), 249);
  EXPECT_EQ(countProjectableWans(TpMethod::kTurboNet, p4Budget64()), 248);
}

TEST(Feasibility, CostOrdering) {
  // Paper: SDT cheapest, TurboNet pricier (P4), SP-OS most expensive (OCS).
  const double sdt = hardwareCost(TpMethod::kSDT, budget128()).hardwareUsd;
  const double sp = hardwareCost(TpMethod::kSP, budget128()).hardwareUsd;
  const double turbo = hardwareCost(TpMethod::kTurboNet, p4Budget128()).hardwareUsd;
  const double spos = hardwareCost(TpMethod::kSPOS, budget128()).hardwareUsd;
  EXPECT_DOUBLE_EQ(sdt, sp);  // same switches; savings are in reconfig labor
  EXPECT_LT(sdt, turbo);
  EXPECT_LT(turbo, spos);
}

TEST(Feasibility, ReconfigurationTimeBands) {
  // SP: ~45 s per manual cable move -> hours for 100+ cables.
  EXPECT_GT(reconfigTime(TpMethod::kSP, 100), secToNs(3600.0));
  // SP-OS and SDT stay within the 100ms~1s envelope for realistic sizes.
  EXPECT_LE(reconfigTime(TpMethod::kSPOS, 200), secToNs(1.0));
  EXPECT_GE(reconfigTime(TpMethod::kSPOS, 0), msToNs(100.0));
  EXPECT_LE(reconfigTime(TpMethod::kSDT, 10000), secToNs(1.0));
  EXPECT_GE(reconfigTime(TpMethod::kSDT, 1000), msToNs(100.0));
  // TurboNet pays the P4 recompile.
  EXPECT_GE(reconfigTime(TpMethod::kTurboNet, 0), secToNs(10.0));
}

TEST(Feasibility, InfeasibleCarriesReason) {
  const SpeedClass r = maxProjectableSpeed(TpMethod::kSDT, topo::makeFatTree(8),
                                           {openflow64x100G(), 1});
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.reason.empty());
}

TEST(Feasibility, MethodNames) {
  EXPECT_STREQ(methodName(TpMethod::kSP), "SP");
  EXPECT_STREQ(methodName(TpMethod::kSPOS), "SP-OS");
  EXPECT_STREQ(methodName(TpMethod::kTurboNet), "TurboNet");
  EXPECT_STREQ(methodName(TpMethod::kSDT), "SDT");
}

}  // namespace
}  // namespace sdt::projection
