// Determinism regression tests: the engine must be bit-reproducible.
//
// The event arena + pooled packet queues reordered nothing by construction
// (the heap still pops by (when, seq)); these tests pin that down end to
// end: the same seed/configuration run twice — and run through a
// multi-threaded SweepRunner — must produce identical flow-completion
// times, event counts, and per-port counters.
#include <gtest/gtest.h>

#include "routing/shortest_path.hpp"
#include "testbed/evaluator.hpp"
#include "testbed/sweep.hpp"
#include "topo/generators.hpp"
#include "workloads/apps.hpp"

namespace sdt::testbed {
namespace {

struct Fingerprint {
  TimeNs act = 0;
  std::uint64_t events = 0;
  std::int64_t fabricTxBytes = 0;
  std::uint64_t drops = 0;
  std::uint64_t portHash = 0;  ///< FNV-1a over every PortCounters field

  bool operator==(const Fingerprint&) const = default;
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t hashPorts(sim::Network& net) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (int sw = 0; sw < net.numSwitches(); ++sw) {
    for (int p = 0; p < net.switchPortCount(sw); ++p) {
      const sim::PortCounters& c = net.switchPortCounters(sw, p);
      h = fnv1a(h, c.txPackets);
      h = fnv1a(h, c.txBytes);
      h = fnv1a(h, c.rxPackets);
      h = fnv1a(h, c.rxBytes);
      h = fnv1a(h, c.drops);
      h = fnv1a(h, c.pausesSent);
      h = fnv1a(h, c.ecnMarks);
    }
  }
  return h;
}

/// One full SDT-mode experiment (projection + flow tables + transport), so
/// the run exercises the indexed flow-table path and the packet pool.
Fingerprint runPoint(std::int64_t msgBytes) {
  const topo::Topology topo = topo::makeFatTree(4);
  const routing::ShortestPathRouting routing(topo);
  auto plant = projection::planPlant({&topo}, {.numSwitches = 3});
  EXPECT_TRUE(plant.ok());
  auto inst = makeSdt(topo, routing, plant.value(), {});
  EXPECT_TRUE(inst.ok()) << inst.error().message;
  const workloads::Workload w = workloads::imbAlltoall(8, msgBytes, 2);
  const RunResult run = runWorkload(inst.value(), w, {});
  Fingerprint fp;
  fp.act = run.act;
  fp.events = run.events;
  fp.fabricTxBytes = run.fabricTxBytes;
  fp.drops = run.drops;
  fp.portHash = hashPorts(inst.value().net());
  return fp;
}

TEST(Determinism, SameConfigurationRunsBitIdentical) {
  const Fingerprint a = runPoint(16 * 1024);
  const Fingerprint b = runPoint(16 * 1024);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.events, 0u);
  EXPECT_GT(a.act, 0);
}

TEST(Determinism, SweepRunnerMatchesSerialBitForBit) {
  const std::vector<std::int64_t> sizes{1024, 4096, 16384, 65536};

  std::vector<Fingerprint> serial;
  serial.reserve(sizes.size());
  for (const std::int64_t s : sizes) serial.push_back(runPoint(s));

  const SweepRunner sweep(4);
  EXPECT_EQ(sweep.threads(), 4);
  const std::vector<Fingerprint> threaded =
      sweep.run(sizes.size(), [&](std::size_t i) { return runPoint(sizes[i]); });

  ASSERT_EQ(threaded.size(), serial.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(threaded[i], serial[i]) << "point " << i << " diverged";
  }
  // Distinct configurations must actually differ — otherwise the equality
  // above proves nothing.
  EXPECT_NE(serial[0], serial[3]);
}

TEST(Determinism, SweepRunnerPropagatesExceptions) {
  const SweepRunner sweep(2);
  EXPECT_THROW(sweep.run(8,
                         [](std::size_t i) -> int {
                           if (i == 5) throw std::runtime_error("boom");
                           return static_cast<int>(i);
                         }),
               std::runtime_error);
}

TEST(Determinism, PointSeedsAreStableAndDistinct) {
  const std::uint64_t base = 2023;
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint64_t s = SweepRunner::pointSeed(base, i);
    EXPECT_EQ(s, SweepRunner::pointSeed(base, i));  // pure function
    for (const std::uint64_t prior : seeds) EXPECT_NE(s, prior);
    seeds.push_back(s);
  }
  EXPECT_NE(SweepRunner::pointSeed(base, 0), SweepRunner::pointSeed(base + 1, 0));
}

TEST(Determinism, SerialAndParallelRunnersAgree) {
  // threads=1 takes the inline path; threads=3 the pool path. Same results,
  // same order.
  const SweepRunner one(1);
  const SweepRunner three(3);
  const auto square = [](std::size_t i) { return i * i; };
  EXPECT_EQ(one.run(37, square), three.run(37, square));
}

}  // namespace
}  // namespace sdt::testbed
