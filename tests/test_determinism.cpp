// Determinism regression tests: the engine must be bit-reproducible.
//
// The event arena + pooled packet queues reordered nothing by construction
// (the heap still pops by (when, seq)); these tests pin that down end to
// end: the same seed/configuration run twice — and run through a
// multi-threaded SweepRunner — must produce identical flow-completion
// times, event counts, and per-port counters.
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <optional>
#include <string>

#include "controller/controller.hpp"
#include "controller/journal.hpp"
#include "controller/recovery.hpp"
#include "controller/transaction.hpp"
#include "obs/collectors.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/consistency.hpp"
#include "sim/control_channel.hpp"
#include "sim/transport.hpp"
#include "testbed/evaluator.hpp"
#include "testbed/sweep.hpp"
#include "topo/generators.hpp"
#include "workloads/apps.hpp"
#include "workloads/datacenter.hpp"

namespace sdt::testbed {
namespace {

struct Fingerprint {
  TimeNs act = 0;
  std::uint64_t events = 0;
  std::int64_t fabricTxBytes = 0;
  std::uint64_t drops = 0;
  std::uint64_t portHash = 0;  ///< FNV-1a over every PortCounters field

  bool operator==(const Fingerprint&) const = default;
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t hashPorts(sim::Network& net) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (int sw = 0; sw < net.numSwitches(); ++sw) {
    for (int p = 0; p < net.switchPortCount(sw); ++p) {
      const sim::PortCounters& c = net.switchPortCounters(sw, p);
      h = fnv1a(h, c.txPackets);
      h = fnv1a(h, c.txBytes);
      h = fnv1a(h, c.rxPackets);
      h = fnv1a(h, c.rxBytes);
      h = fnv1a(h, c.drops);
      h = fnv1a(h, c.pausesSent);
      h = fnv1a(h, c.ecnMarks);
    }
  }
  return h;
}

/// One full SDT-mode experiment (projection + flow tables + transport), so
/// the run exercises the indexed flow-table path and the packet pool.
Fingerprint runPoint(std::int64_t msgBytes) {
  const topo::Topology topo = topo::makeFatTree(4);
  const routing::ShortestPathRouting routing(topo);
  auto plant = projection::planPlant({&topo}, {.numSwitches = 3});
  EXPECT_TRUE(plant.ok());
  auto inst = makeSdt(topo, routing, plant.value(), {});
  EXPECT_TRUE(inst.ok()) << inst.error().message;
  const workloads::Workload w = workloads::imbAlltoall(8, msgBytes, 2);
  const RunResult run = runWorkload(inst.value(), w, {});
  Fingerprint fp;
  fp.act = run.act;
  fp.events = run.events;
  fp.fabricTxBytes = run.fabricTxBytes;
  fp.drops = run.drops;
  fp.portHash = hashPorts(inst.value().net());
  return fp;
}

TEST(Determinism, SameConfigurationRunsBitIdentical) {
  const Fingerprint a = runPoint(16 * 1024);
  const Fingerprint b = runPoint(16 * 1024);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.events, 0u);
  EXPECT_GT(a.act, 0);
}

TEST(Determinism, SweepRunnerMatchesSerialBitForBit) {
  const std::vector<std::int64_t> sizes{1024, 4096, 16384, 65536};

  std::vector<Fingerprint> serial;
  serial.reserve(sizes.size());
  for (const std::int64_t s : sizes) serial.push_back(runPoint(s));

  const SweepRunner sweep(4);
  EXPECT_EQ(sweep.threads(), 4);
  const std::vector<Fingerprint> threaded =
      sweep.run(sizes.size(), [&](std::size_t i) { return runPoint(sizes[i]); });

  ASSERT_EQ(threaded.size(), serial.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(threaded[i], serial[i]) << "point " << i << " diverged";
  }
  // Distinct configurations must actually differ — otherwise the equality
  // above proves nothing.
  EXPECT_NE(serial[0], serial[3]);
}

/// Scoped SDT_SHARDS / SDT_SIM_WORKERS override: the default Simulator
/// constructor reads both at construction time, so everything built inside
/// the guard's lifetime runs on the requested engine geometry. Ambient
/// values (e.g. a CI shard matrix exporting SDT_SHARDS) are restored on
/// exit so the rest of the suite keeps its configured geometry.
class ShardEnvGuard {
 public:
  struct Unset {};  ///< tag: force the no-env legacy default

  ShardEnvGuard(int shards, int workers) {
    setenv("SDT_SHARDS", std::to_string(shards).c_str(), 1);
    setenv("SDT_SIM_WORKERS", std::to_string(workers).c_str(), 1);
  }
  explicit ShardEnvGuard(Unset) {
    unsetenv("SDT_SHARDS");
    unsetenv("SDT_SIM_WORKERS");
  }
  ~ShardEnvGuard() {
    restore("SDT_SHARDS", savedShards_);
    restore("SDT_SIM_WORKERS", savedWorkers_);
  }
  ShardEnvGuard(const ShardEnvGuard&) = delete;
  ShardEnvGuard& operator=(const ShardEnvGuard&) = delete;

 private:
  static std::optional<std::string> snapshot(const char* name) {
    const char* v = std::getenv(name);
    return v == nullptr ? std::nullopt : std::optional<std::string>(v);
  }
  static void restore(const char* name, const std::optional<std::string>& v) {
    if (v.has_value()) {
      setenv(name, v->c_str(), 1);
    } else {
      unsetenv(name);
    }
  }

  std::optional<std::string> savedShards_ = snapshot("SDT_SHARDS");
  std::optional<std::string> savedWorkers_ = snapshot("SDT_SIM_WORKERS");
};

TEST(ShardedDeterminism, OneShardMatchesLegacySerialPath) {
  // Explicit K=1 must be byte-identical to the no-env legacy engine: with
  // one shard the key layout, arena, and run loop collapse to the legacy
  // serial path exactly.
  Fingerprint base;
  {
    const ShardEnvGuard env(ShardEnvGuard::Unset{});
    base = runPoint(16 * 1024);
  }
  Fingerprint one;
  {
    const ShardEnvGuard env(1, 1);
    one = runPoint(16 * 1024);
  }
  EXPECT_EQ(one, base);
  EXPECT_GT(base.events, 0u);
}

TEST(ShardedDeterminism, ParallelBitIdenticalToSerialAtSameK) {
  // The acceptance gate: at fixed shard count K, a K-worker parallel run
  // must be bit-identical to the 1-worker serial merge over the same
  // shards. (Fingerprints are NOT comparable across different K: crossDelay
  // pads shard-boundary latencies, which legitimately shifts timing.)
  for (const int k : {2, 4, 8}) {
    Fingerprint serial;
    Fingerprint parallel;
    {
      const ShardEnvGuard env(k, 1);
      serial = runPoint(16 * 1024);
    }
    {
      const ShardEnvGuard env(k, k);
      parallel = runPoint(16 * 1024);
    }
    EXPECT_EQ(parallel, serial) << "K=" << k << " parallel diverged from serial";
    EXPECT_GT(serial.events, 0u);
    EXPECT_GT(serial.act, 0);
  }
}

/// Incast point: many-to-one traffic concentrates every flow onto one edge
/// port — the worst case for cross-shard event ordering (all shards target
/// the aggregator's shard) and the traffic shape the admission tier guards.
Fingerprint runIncastPoint(std::int64_t bytesPerFlow) {
  const topo::Topology topo = topo::makeFatTree(4);
  const routing::ShortestPathRouting routing(topo);
  auto plant = projection::planPlant({&topo}, {.numSwitches = 3});
  EXPECT_TRUE(plant.ok());
  InstanceOptions opt;
  opt.network.pfcEnabled = false;  // lossy: drops must also reproduce
  auto inst = makeSdt(topo, routing, plant.value(), opt);
  EXPECT_TRUE(inst.ok()) << inst.error().message;
  const workloads::Workload w = workloads::incast(12, bytesPerFlow, 3);
  const RunResult run = runWorkload(inst.value(), w, {});
  Fingerprint fp;
  fp.act = run.act;
  fp.events = run.events;
  fp.fabricTxBytes = run.fabricTxBytes;
  fp.drops = run.drops;
  fp.portHash = hashPorts(inst.value().net());
  return fp;
}

TEST(ShardedDeterminism, IncastBitIdenticalSerialVsParallelAtSameK) {
  for (const int k : {2, 4}) {
    Fingerprint serial;
    Fingerprint parallel;
    {
      const ShardEnvGuard env(k, 1);
      serial = runIncastPoint(8 * 1024);
    }
    {
      const ShardEnvGuard env(k, k);
      parallel = runIncastPoint(8 * 1024);
    }
    EXPECT_EQ(parallel, serial) << "K=" << k << " incast diverged";
    EXPECT_GT(serial.events, 0u);
    EXPECT_GT(serial.act, 0);
  }
}

TEST(ShardedDeterminism, ShardedRunsAreRepeatable) {
  // Two identical sharded parallel runs must also be bit-identical to each
  // other (no hidden wall-clock or thread-id dependence).
  const auto once = []() {
    const ShardEnvGuard env(4, 4);
    return runPoint(8 * 1024);
  };
  const Fingerprint a = once();
  const Fingerprint b = once();
  EXPECT_EQ(a, b);
}

TEST(ShardedDeterminism, ControlPlanePinsEngineSerial) {
  // Wiring a ControlChannel (any control-plane component) must permanently
  // disable the worker threads: controller handlers mutate flow tables on
  // arbitrary shards, so a parallel window would race. The K-shard key
  // space is unchanged — only the threads go away.
  sim::Simulator sim(4, 4);
  EXPECT_FALSE(sim.serialRequired());
  const sim::ControlChannel channel(sim, 42);
  EXPECT_TRUE(sim.serialRequired());
  int hops = 0;
  std::function<void(int)> hop = [&](int shard) {
    if (++hops >= 32) return;
    const int next = (shard + 1) % 4;
    sim.scheduleOn(next, sim.crossDelay(next, 1000), [&, next]() { hop(next); });
  };
  sim.scheduleOn(0, 0, [&]() { hop(0); });
  sim.run();
  EXPECT_EQ(hops, 32);
  EXPECT_EQ(sim.barrierWindows(), 0u);  // serial merge loop, no windows
}

TEST(Determinism, SweepRunnerPropagatesExceptions) {
  const SweepRunner sweep(2);
  EXPECT_THROW(sweep.run(8,
                         [](std::size_t i) -> int {
                           if (i == 5) throw std::runtime_error("boom");
                           return static_cast<int>(i);
                         }),
               std::runtime_error);
}

TEST(Determinism, PointSeedsAreStableAndDistinct) {
  const std::uint64_t base = 2023;
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint64_t s = SweepRunner::pointSeed(base, i);
    EXPECT_EQ(s, SweepRunner::pointSeed(base, i));  // pure function
    for (const std::uint64_t prior : seeds) EXPECT_NE(s, prior);
    seeds.push_back(s);
  }
  EXPECT_NE(SweepRunner::pointSeed(base, 0), SweepRunner::pointSeed(base + 1, 0));
}

/// Everything observable about one live reconfiguration under a lossy
/// control channel: the protocol trace, the data-plane counters, and the
/// consistency checker's view.
struct ReconfigFingerprint {
  bool committed = false;
  bool rolledBack = false;
  int flowModsInstalled = 0;
  int flowModsRolledBack = 0;
  int flowModsGarbageCollected = 0;
  int barrierRoundTrips = 0;
  int retriesTotal = 0;
  TimeNs updateWindowEnd = 0;
  TimeNs finishedAt = 0;
  std::size_t violations = 0;
  std::size_t stamped = 0;
  std::uint64_t lookups = 0;
  std::uint64_t portHash = 0;

  bool operator==(const ReconfigFingerprint&) const = default;
};

/// One live line->ring update over a drop/dup/reorder channel while TCP
/// traffic runs: the whole transaction (retries, backoff draws, channel
/// schedule) must be a pure function of the seed.
ReconfigFingerprint runReconfigPoint(std::uint64_t seed) {
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  const routing::ShortestPathRouting rFrom(from);
  const routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  EXPECT_TRUE(plantR.ok());
  const projection::Plant plant = std::move(plantR).value();
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(from, rFrom);
  EXPECT_TRUE(depR.ok());
  controller::Deployment dep = std::move(depR).value();

  sim::Simulator sim;
  sim::EpochConsistencyChecker checker;
  sim::BuiltNetwork built = sim::buildProjectedNetwork(
      sim, from, dep.projection, plant, dep.switches, {}, {2.0, 1.0}, &checker);
  sim::TransportManager tm(sim, *built.net, {});

  sim::ControlChannelConfig cfg;
  cfg.dropProb = 0.25;
  cfg.dupProb = 0.15;
  cfg.reorderProb = 0.15;
  sim::ControlChannel channel(sim, seed, cfg);

  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(dep, to, rTo, dopt);
  EXPECT_TRUE(planR.ok());

  controller::ReconfigTransaction tx(sim, channel, dep, std::move(planR).value());
  const int hosts = from.numHosts();
  for (int h = 0; h < hosts; ++h) {
    tm.startTcpFlow(h, (h + hosts / 2) % hosts, 64 * 1024, nullptr);
  }
  sim.schedule(usToNs(100.0), [&]() { tx.start(); });
  sim.runUntil(msToNs(80.0));

  ReconfigFingerprint fp;
  if (!tx.finished()) return fp;
  const controller::ReconfigReport& r = tx.report();
  fp.committed = r.committed;
  fp.rolledBack = r.rolledBack;
  fp.flowModsInstalled = r.flowModsInstalled;
  fp.flowModsRolledBack = r.flowModsRolledBack;
  fp.flowModsGarbageCollected = r.flowModsGarbageCollected;
  fp.barrierRoundTrips = r.barrierRoundTrips;
  fp.retriesTotal = r.retriesTotal;
  fp.updateWindowEnd = r.updateWindowEnd;
  fp.finishedAt = r.finishedAt;
  fp.violations = checker.violations().size();
  fp.stamped = checker.stampedPackets();
  fp.lookups = checker.lookups();
  fp.portHash = hashPorts(*built.net);
  return fp;
}

TEST(Determinism, TransactionalReconfigBitIdenticalSerialVsThreaded) {
  const std::vector<std::uint64_t> seeds{11, 22, 33, 44};

  std::vector<ReconfigFingerprint> serial;
  serial.reserve(seeds.size());
  for (const std::uint64_t s : seeds) serial.push_back(runReconfigPoint(s));

  const SweepRunner sweep(4);
  const std::vector<ReconfigFingerprint> threaded = sweep.run(
      seeds.size(), [&](std::size_t i) { return runReconfigPoint(seeds[i]); });

  ASSERT_EQ(threaded.size(), serial.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(threaded[i], serial[i]) << "reconfig point " << i << " diverged";
    // Rerunning the same seed serially must also reproduce bit-for-bit.
    EXPECT_EQ(runReconfigPoint(seeds[i]), serial[i])
        << "reconfig seed " << seeds[i] << " not a pure function of the seed";
    EXPECT_GT(serial[i].retriesTotal, 0) << "channel too kind: no retries";
    EXPECT_EQ(serial[i].violations, 0u);
  }
  // Distinct seeds must actually schedule differently somewhere.
  bool anyDiffer = false;
  for (std::size_t i = 1; i < seeds.size(); ++i) {
    anyDiffer = anyDiffer || !(serial[i] == serial[0]);
  }
  EXPECT_TRUE(anyDiffer);
}

/// Everything observable about a crash-at-phase-K + cold-start recovery:
/// the crashed transaction's trace, the journal's exact byte stream (records
/// carry simulated time only — any wall-clock leak shows up here first), and
/// the reconciliation trace.
struct CrashRecoveryFingerprint {
  bool crashed = false;
  int decision = 0;
  bool converged = false;
  std::uint32_t targetEpoch = 0;
  int flowMods = 0;
  int statsRounds = 0;
  int retriesTotal = 0;
  int switchesDrifted = 0;
  int switchesRebooted = 0;
  TimeNs recoveredAt = 0;
  std::uint64_t journalHash = 0;  ///< FNV-1a over the raw journal bytes
  std::uint64_t portHash = 0;

  bool operator==(const CrashRecoveryFingerprint&) const = default;
};

std::uint64_t hashBytes(const std::string& bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

CrashRecoveryFingerprint runCrashRecoverPoint(std::uint64_t seed,
                                              controller::CrashPoint crashAt) {
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  const routing::ShortestPathRouting rFrom(from);
  const routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  EXPECT_TRUE(plantR.ok());
  const projection::Plant plant = std::move(plantR).value();
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(from, rFrom);
  EXPECT_TRUE(depR.ok());
  controller::Deployment dep = std::move(depR).value();

  controller::MemoryJournalStorage storage;
  controller::Journal journal(storage);
  EXPECT_TRUE(controller::journalDeploy(journal, dep, 0).ok());

  sim::Simulator sim;
  sim::BuiltNetwork built = sim::buildProjectedNetwork(
      sim, from, dep.projection, plant, dep.switches, {}, {2.0, 1.0}, nullptr);
  sim::TransportManager tm(sim, *built.net, {});
  sim::ControlChannelConfig cfg;
  cfg.dropProb = 0.2;
  cfg.dupProb = 0.15;
  cfg.reorderProb = 0.15;
  sim::ControlChannel channel(sim, seed, cfg);

  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(dep, to, rTo, dopt);
  EXPECT_TRUE(planR.ok());
  controller::ReconfigOptions topt;
  topt.journal = &journal;
  topt.crashAt = crashAt;
  controller::ReconfigTransaction tx(sim, channel, dep, std::move(planR).value(),
                                     topt);
  const int hosts = from.numHosts();
  for (int h = 0; h < hosts; ++h) {
    tm.startTcpFlow(h, (h + hosts / 2) % hosts, 64 * 1024, nullptr);
  }
  sim.schedule(usToNs(100.0), [&]() { tx.start(); });
  sim.runUntil(msToNs(80.0));

  CrashRecoveryFingerprint fp;
  if (!tx.finished()) return fp;
  fp.crashed = tx.crashed();
  // A seed-determined switch power-cycles while the controller is down.
  dep.switches[seed % dep.switches.size()]->reboot();

  controller::IntentCatalog catalog;
  catalog[from.name()] = {&from, &rFrom};
  catalog[to.name()] = {&to, &rTo};
  auto rplanR = controller::planRecovery(ctl, journal, catalog, dopt);
  if (!rplanR.ok()) return fp;
  fp.decision = static_cast<int>(rplanR.value().decision);
  fp.targetEpoch = rplanR.value().targetEpoch;
  controller::RecoveryOptions ropt;
  ropt.journal = &journal;
  ropt.retry.seed = seed;
  controller::RecoveryRun recovery(sim, channel, dep.switches,
                                   std::move(rplanR).value(), ropt);
  recovery.start();
  sim.runUntil(sim.now() + msToNs(100.0));
  if (!recovery.finished()) return fp;
  const controller::RecoveryReport& r = recovery.report();
  fp.converged = r.converged;
  fp.flowMods = r.flowMods;
  fp.statsRounds = r.statsRounds;
  fp.retriesTotal = r.retriesTotal;
  fp.switchesDrifted = r.switchesDrifted;
  fp.switchesRebooted = r.switchesRebooted;
  fp.recoveredAt = r.finishedAt;
  fp.journalHash = hashBytes(storage.bytes());
  fp.portHash = hashPorts(*built.net);
  return fp;
}

TEST(Determinism, CrashRecoveryBitIdenticalSerialVsThreaded) {
  // One point per crash phase, each with its own channel seed: the journal
  // byte stream, the recovery trace, and the data-plane counters must all be
  // pure functions of (seed, crash point).
  const std::vector<std::uint64_t> seeds{11, 22, 33, 44, 55};
  const controller::CrashPoint points[] = {
      controller::CrashPoint::kPrepare, controller::CrashPoint::kMidInstall,
      controller::CrashPoint::kPreFlip, controller::CrashPoint::kPostFlip,
      controller::CrashPoint::kMidGc};

  std::vector<CrashRecoveryFingerprint> serial;
  serial.reserve(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    serial.push_back(runCrashRecoverPoint(seeds[i], points[i]));
  }

  const SweepRunner sweep(4);
  const std::vector<CrashRecoveryFingerprint> threaded = sweep.run(
      seeds.size(),
      [&](std::size_t i) { return runCrashRecoverPoint(seeds[i], points[i]); });

  ASSERT_EQ(threaded.size(), serial.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(threaded[i], serial[i]) << "crash point " << i << " diverged";
    EXPECT_EQ(runCrashRecoverPoint(seeds[i], points[i]), serial[i])
        << "crash seed " << seeds[i] << " not a pure function of the seed";
    EXPECT_TRUE(serial[i].crashed) << "point " << i << " never crashed";
    EXPECT_TRUE(serial[i].converged) << "point " << i << " never recovered";
    EXPECT_NE(serial[i].journalHash, 0u);
  }
  // Distinct (seed, phase) points must actually journal differently.
  bool anyDiffer = false;
  for (std::size_t i = 1; i < seeds.size(); ++i) {
    anyDiffer = anyDiffer || serial[i].journalHash != serial[0].journalHash;
  }
  EXPECT_TRUE(anyDiffer);
}

/// One fully instrumented live update: registry fed by the data-plane and
/// switch collectors plus the transaction's own push-side counters, tracer
/// recording the transaction's span tree. Returns the exported bytes — the
/// observability layer itself must be a pure function of the seed.
std::string runObservedPoint(std::uint64_t seed) {
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  const routing::ShortestPathRouting rFrom(from);
  const routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  EXPECT_TRUE(plantR.ok());
  const projection::Plant plant = std::move(plantR).value();
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(from, rFrom);
  EXPECT_TRUE(depR.ok());
  controller::Deployment dep = std::move(depR).value();

  sim::Simulator sim;
  sim::BuiltNetwork built = sim::buildProjectedNetwork(
      sim, from, dep.projection, plant, dep.switches, {}, {2.0, 1.0}, nullptr);
  sim::TransportManager tm(sim, *built.net, {});

  sim::ControlChannelConfig cfg;
  cfg.dropProb = 0.25;
  cfg.dupProb = 0.15;
  sim::ControlChannel channel(sim, seed, cfg);

  obs::Registry registry;
  obs::Tracer tracer;
  obs::registerNetworkCollector(registry, *built.net);
  obs::registerControlChannelCollector(registry, channel);
  obs::registerSwitchCollector(registry, built.ofSwitches);

  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(dep, to, rTo, dopt);
  EXPECT_TRUE(planR.ok());
  controller::ReconfigOptions topt;
  topt.metrics = &registry;
  topt.tracer = &tracer;
  controller::ReconfigTransaction tx(sim, channel, dep, std::move(planR).value(),
                                     topt);
  const int hosts = from.numHosts();
  for (int h = 0; h < hosts; ++h) {
    tm.startTcpFlow(h, (h + hosts / 2) % hosts, 64 * 1024, nullptr);
  }
  sim.schedule(usToNs(100.0), [&]() { tx.start(); });
  sim.runUntil(msToNs(80.0));
  EXPECT_TRUE(tx.finished());

  return obs::metricsToJson(registry).dump(2) + "\n" +
         obs::tracerToJson(tracer).dump(2);
}

TEST(Determinism, ExportedTelemetryBitIdenticalSerialVsThreaded) {
  const std::vector<std::uint64_t> seeds{11, 22, 33, 44};

  std::vector<std::string> serial;
  serial.reserve(seeds.size());
  for (const std::uint64_t s : seeds) serial.push_back(runObservedPoint(s));

  const SweepRunner sweep(4);
  const std::vector<std::string> threaded = sweep.run(
      seeds.size(), [&](std::size_t i) { return runObservedPoint(seeds[i]); });

  ASSERT_EQ(threaded.size(), serial.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(threaded[i], serial[i])
        << "telemetry for seed " << seeds[i] << " diverged under threads";
    // The export must actually carry telemetry, not vacuous empty objects.
    EXPECT_NE(serial[i].find("sdt_net_tx_bytes_total"), std::string::npos);
    EXPECT_NE(serial[i].find("sdt_ctrl_msgs_total"), std::string::npos);
    EXPECT_NE(serial[i].find("sdt_of_flow_mods_total"), std::string::npos);
    EXPECT_NE(serial[i].find("\"reconfigure\""), std::string::npos);
  }
  // Different channel seeds must leave different telemetry somewhere.
  EXPECT_NE(serial[0], serial[1]);
}

TEST(Determinism, SerialAndParallelRunnersAgree) {
  // threads=1 takes the inline path; threads=3 the pool path. Same results,
  // same order.
  const SweepRunner one(1);
  const SweepRunner three(3);
  const auto square = [](std::size_t i) { return i * i; };
  EXPECT_EQ(one.run(37, square), three.run(37, square));
}

}  // namespace
}  // namespace sdt::testbed
