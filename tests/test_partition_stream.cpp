// Tests: streaming partitioner (partition/streaming.hpp) and the EdgeStream
// generators behind it — differential checks of synthetic streams against the
// in-memory generators, every heuristic against exhaustive bisection on small
// graphs, determinism, and cut/imbalance sanity against multilevel on zoo
// topologies.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "partition/partitioner.hpp"
#include "partition/streaming.hpp"
#include "topo/generators.hpp"
#include "topo/stream.hpp"
#include "topo/zoo.hpp"

namespace sdt::partition {
namespace {

using topo::EdgeStream;
using topo::Graph;

constexpr PartitionMethod kAllStreaming[] = {
    PartitionMethod::kLDG, PartitionMethod::kFennel, PartitionMethod::kHDRF,
    PartitionMethod::kDBH};

/// Normalized (min, max, weight) edge multiset, sorted — replay-order
/// independent equality.
using EdgeSet = std::vector<std::tuple<int, int, std::int64_t>>;

EdgeSet edgesOf(const EdgeStream& stream) {
  EdgeSet out;
  stream.forEachEdge([&](int u, int v, std::int64_t w) {
    out.emplace_back(std::min(u, v), std::max(u, v), w);
  });
  std::sort(out.begin(), out.end());
  return out;
}

EdgeSet edgesOf(const Graph& graph) {
  EdgeSet out;
  for (const topo::GraphEdge& e : graph.edges()) {
    out.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v), e.weight);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The vertex-major replay must agree with the edge-major one: each edge seen
/// once per endpoint, weighted degrees matching, vertices in order.
void expectVertexMajorConsistent(const EdgeStream& stream) {
  const int n = stream.numVertices();
  std::vector<std::int64_t> degreeFromEdges(static_cast<std::size_t>(n), 0);
  std::int64_t edgeCount = 0, weightSum = 0;
  stream.forEachEdge([&](int u, int v, std::int64_t w) {
    ASSERT_GE(u, 0);
    ASSERT_LT(u, n);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n);
    degreeFromEdges[u] += w;
    if (u != v) degreeFromEdges[v] += w;
    ++edgeCount;
    weightSum += w;
  });
  EXPECT_EQ(edgeCount, stream.numEdges()) << stream.name();
  EXPECT_EQ(weightSum, stream.totalWeight()) << stream.name();

  EdgeSet fromVertices;
  int nextVertex = 0;
  stream.forEachVertex([&](const topo::VertexRecord& rec) {
    ASSERT_EQ(rec.v, nextVertex++) << stream.name();
    ASSERT_EQ(rec.neighbors.size(), rec.weights.size());
    std::int64_t degree = 0;
    for (std::size_t i = 0; i < rec.neighbors.size(); ++i) {
      degree += rec.weights[i];
      if (rec.neighbors[i] >= rec.v) {
        fromVertices.emplace_back(rec.v, rec.neighbors[i], rec.weights[i]);
      }
    }
    EXPECT_EQ(degree, rec.weightedDegree) << stream.name() << " v=" << rec.v;
    EXPECT_EQ(degree, degreeFromEdges[rec.v]) << stream.name() << " v=" << rec.v;
  });
  EXPECT_EQ(nextVertex, n);
  std::sort(fromVertices.begin(), fromVertices.end());
  EXPECT_EQ(fromVertices, edgesOf(stream)) << stream.name();
}

TEST(PartitionStream, FatTreeStreamMatchesGenerator) {
  for (const int k : {2, 4, 6}) {
    const topo::FatTreeStream stream(k);
    const Graph graph = topo::makeFatTree(k).switchGraph();
    EXPECT_EQ(stream.numVertices(), graph.numVertices()) << "k=" << k;
    EXPECT_EQ(stream.numEdges(), graph.numEdges()) << "k=" << k;
    EXPECT_EQ(edgesOf(stream), edgesOf(graph)) << "k=" << k;
    expectVertexMajorConsistent(stream);
  }
}

TEST(PartitionStream, TorusStreamMatchesGenerator) {
  for (const auto& [x, y, z] : {std::tuple{2, 2, 2}, {3, 3, 3}, {4, 3, 2}}) {
    const topo::Torus3DStream stream(x, y, z);
    const Graph graph = topo::makeTorus3D(x, y, z).switchGraph();
    EXPECT_EQ(stream.numVertices(), graph.numVertices());
    EXPECT_EQ(stream.numEdges(), graph.numEdges()) << stream.name();
    EXPECT_EQ(edgesOf(stream), edgesOf(graph)) << stream.name();
    expectVertexMajorConsistent(stream);
  }
}

TEST(PartitionStream, ScaledZooStreamMatchesGenerator) {
  // One copy is exactly the catalog graph; multiple copies tile it.
  for (const int zoo : {0, 7, 42}) {
    const topo::ScaledZooStream one(zoo, 1);
    const Graph base = topo::makeZooTopology(zoo).switchGraph();
    EXPECT_EQ(one.numVertices(), base.numVertices());
    EXPECT_EQ(edgesOf(one), edgesOf(base)) << one.name();
    expectVertexMajorConsistent(one);
  }
  for (const int copies : {2, 3, 5}) {
    const topo::ScaledZooStream tiled(3, copies);
    const Graph base = topo::makeZooTopology(3).switchGraph();
    EXPECT_EQ(tiled.numVertices(), copies * base.numVertices());
    EXPECT_EQ(tiled.numEdges(),
              copies * base.numEdges() + (copies == 2 ? 1 : copies));
    expectVertexMajorConsistent(tiled);
  }
}

TEST(PartitionStream, GraphStreamRoundTrips) {
  const Graph g = topo::makeDragonfly(3, 4, 1).switchGraph();
  const topo::GraphStream stream(g, "dragonfly");
  EXPECT_EQ(edgesOf(stream), edgesOf(g));
  expectVertexMajorConsistent(stream);
}

TEST(PartitionStream, RejectsBadInputs) {
  const Graph g = topo::makeRing(6).switchGraph();
  const topo::GraphStream stream(g);
  EXPECT_FALSE(partitionStream(stream, {.parts = 0}).ok());
  EXPECT_FALSE(partitionStream(stream, {.parts = 7}).ok());
  EXPECT_FALSE(
      partitionStream(stream, {.method = PartitionMethod::kMultilevel, .parts = 2})
          .ok());
  const Graph empty{};
  const topo::GraphStream emptyStream(empty);
  EXPECT_FALSE(partitionStream(emptyStream, {.parts = 1}).ok());
}

TEST(PartitionStream, SinglePartTrivial) {
  const Graph g = topo::makeRing(6).switchGraph();
  const topo::GraphStream stream(g);
  for (const PartitionMethod m : kAllStreaming) {
    auto r = partitionStream(stream, {.method = m, .parts = 1});
    ASSERT_TRUE(r.ok()) << partitionMethodName(m);
    EXPECT_EQ(r.value().partition.cutWeight, 0);
    EXPECT_DOUBLE_EQ(r.value().replicationFactor, 1.0);
  }
}

TEST(PartitionStream, EveryHeuristicNearExactOnSmallGraphs) {
  // Two K4s joined by a bridge (planted bisection), a ring, and a small zoo
  // WAN — all <= 22 vertices so exhaustive bisection is the ground truth.
  Graph cliques(8);
  for (int base : {0, 4}) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) cliques.addEdge(base + i, base + j);
    }
  }
  cliques.addEdge(0, 4);
  const std::vector<std::pair<const char*, Graph>> cases = {
      {"cliques", cliques},
      {"ring12", topo::makeRing(12).switchGraph()},
      {"zoo5", topo::makeZooTopology(5).switchGraph()},
  };
  for (const auto& [label, graph] : cases) {
    ASSERT_LE(graph.numVertices(), 22);
    PartitionOptions opt{.parts = 2};
    const auto exact = exactBisection(graph, opt);
    ASSERT_TRUE(exact.ok()) << label;
    for (const PartitionMethod m : kAllStreaming) {
      opt.method = m;
      auto r = partitionGraph(graph, opt);
      ASSERT_TRUE(r.ok()) << label << " " << partitionMethodName(m);
      // Bounded optimality gap: streaming sees each edge once (plus bounded
      // restreams) and cannot refine globally, but on these small structured
      // graphs it must stay within 3x of the exhaustive optimum.
      EXPECT_LE(r.value().objective, 3.0 * exact.value().objective + 1e-9)
          << label << " " << partitionMethodName(m)
          << " streaming=" << r.value().objective
          << " exact=" << exact.value().objective;
    }
  }
}

TEST(PartitionStream, DeterministicUnderFixedSeed) {
  const Graph g = topo::makeZooTopology(10).switchGraph();
  const topo::GraphStream stream(g);
  for (const PartitionMethod m : kAllStreaming) {
    const StreamingOptions opt{.method = m, .parts = 4, .seed = 123};
    auto a = partitionStream(stream, opt);
    auto b = partitionStream(stream, opt);
    ASSERT_TRUE(a.ok() && b.ok()) << partitionMethodName(m);
    EXPECT_EQ(a.value().partition.assignment, b.value().partition.assignment)
        << partitionMethodName(m);
    EXPECT_EQ(a.value().partition.cutWeight, b.value().partition.cutWeight);
    EXPECT_DOUBLE_EQ(a.value().replicationFactor, b.value().replicationFactor);
  }
}

TEST(PartitionStream, SanityVersusMultilevelOnZooTopologies) {
  // On real WAN graphs the streaming heuristics must stay in the same league
  // as multilevel: every part populated, imbalance within the cap unless
  // flagged, cut within a constant factor.
  for (const int zoo : {20, 60, 120}) {
    const Graph g = topo::makeZooTopology(zoo).switchGraph();
    const int parts = std::min(4, g.numVertices() / 2);
    if (parts < 2) continue;
    PartitionOptions opt{.parts = parts, .seed = 3};
    const auto multi = partitionGraph(g, opt);
    ASSERT_TRUE(multi.ok());
    for (const PartitionMethod m : kAllStreaming) {
      opt.method = m;
      auto r = partitionGraph(g, opt);
      ASSERT_TRUE(r.ok()) << partitionMethodName(m) << " zoo" << zoo;
      const PartitionResult& res = r.value();
      ASSERT_EQ(res.assignment.size(), static_cast<std::size_t>(g.numVertices()));
      std::vector<int> count(static_cast<std::size_t>(parts), 0);
      for (const int p : res.assignment) {
        ASSERT_GE(p, 0);
        ASSERT_LT(p, parts);
        ++count[p];
      }
      for (int p = 0; p < parts; ++p) {
        EXPECT_GT(count[p], 0) << partitionMethodName(m) << " zoo" << zoo;
      }
      if (!res.imbalanceViolated) {
        EXPECT_LE(res.imbalance(), opt.maxImbalance + 1e-9)
            << partitionMethodName(m) << " zoo" << zoo;
      }
      // Cut sanity: within a constant factor of multilevel (which itself is
      // near-optimal on these sizes). Loose bound — streaming's contract is
      // memory, not matching FM refinement.
      EXPECT_LE(res.cutWeight, 4 * multi.value().cutWeight + 8)
          << partitionMethodName(m) << " zoo" << zoo
          << " stream=" << res.cutWeight << " multi=" << multi.value().cutWeight;
    }
  }
}

TEST(PartitionStream, ReplicationFactorSemantics) {
  const Graph g = topo::makeFatTree(6).switchGraph();
  const topo::GraphStream stream(g);
  for (const PartitionMethod m : kAllStreaming) {
    auto r = partitionStream(stream, {.method = m, .parts = 4});
    ASSERT_TRUE(r.ok()) << partitionMethodName(m);
    const bool edgeStreaming =
        m == PartitionMethod::kHDRF || m == PartitionMethod::kDBH;
    if (edgeStreaming) {
      EXPECT_GE(r.value().replicationFactor, 1.0) << partitionMethodName(m);
      EXPECT_LE(r.value().replicationFactor, 4.0) << partitionMethodName(m);
    } else {
      EXPECT_DOUBLE_EQ(r.value().replicationFactor, 1.0) << partitionMethodName(m);
    }
    EXPECT_GT(r.value().edgesStreamed, 0);
    EXPECT_GT(r.value().peakStateBytes, 0);
  }
}

TEST(PartitionStream, DispatchMatchesDirectStreamingCall) {
  // partitionGraph(method=streaming) must be exactly streamingPartitionOfGraph.
  const Graph g = topo::makeZooTopology(33).switchGraph();
  for (const PartitionMethod m : kAllStreaming) {
    PartitionOptions opt{.parts = 3, .seed = 9};
    opt.method = m;
    auto viaDispatch = partitionGraph(g, opt);
    auto direct = streamingPartitionOfGraph(g, opt);
    ASSERT_TRUE(viaDispatch.ok() && direct.ok()) << partitionMethodName(m);
    EXPECT_EQ(viaDispatch.value().assignment, direct.value().assignment)
        << partitionMethodName(m);
  }
}

TEST(PartitionStream, EvaluateStreamMatchesEvaluateAssignment) {
  const Graph g = topo::makeHypercube(4).switchGraph();
  const topo::GraphStream stream(g);
  std::vector<int> assignment(static_cast<std::size_t>(g.numVertices()));
  for (int v = 0; v < g.numVertices(); ++v) assignment[v] = v % 3;
  const PartitionOptions opt{.parts = 3};
  const auto inMemory = evaluateAssignment(g, assignment, 3, opt);
  const auto streamed = evaluateStreamAssignment(stream, assignment, 3, opt);
  EXPECT_EQ(streamed.cutWeight, inMemory.cutWeight);
  EXPECT_EQ(streamed.partLoad, inMemory.partLoad);
  EXPECT_EQ(streamed.internalEdges, inMemory.internalEdges);
  EXPECT_DOUBLE_EQ(streamed.objective, inMemory.objective);
  EXPECT_EQ(streamed.imbalanceViolated, inMemory.imbalanceViolated);
}

TEST(PartitionStream, SyntheticStreamScalesWithoutAdjacency) {
  // A 20^3 torus (8000 vertices) onto 16 parts: every heuristic must place
  // all vertices, keep parts populated, and report state far below the edge
  // set's footprint (24000 edges would be ~384 KiB as an adjacency; the
  // per-vertex tables stay within a small multiple of n).
  const topo::Torus3DStream stream(20, 20, 20);
  for (const PartitionMethod m : kAllStreaming) {
    auto r = partitionStream(stream, {.method = m, .parts = 16, .restreamPasses = 1});
    ASSERT_TRUE(r.ok()) << partitionMethodName(m);
    const StreamingResult& res = r.value();
    ASSERT_EQ(res.partition.assignment.size(), 8000u);
    std::vector<int> count(16, 0);
    for (const int p : res.partition.assignment) ++count[p];
    for (int p = 0; p < 16; ++p) EXPECT_GT(count[p], 0) << partitionMethodName(m);
    EXPECT_LT(res.peakStateBytes, 8000 * 40) << partitionMethodName(m);
  }
}

}  // namespace
}  // namespace sdt::partition
