// Adversarial isolation suite: a hostile tenant does its worst — storms
// traffic, thrashes live reconfigurations, crashes its controller
// mid-transaction, replays a torn journal — while a victim tenant runs a
// fixed workload on the same shared plant. The victim's packet trace
// (receiver, source, destination, payload bytes, and the exact simulated
// time of every sniffed packet and delivery) must be BYTE-IDENTICAL to a
// run where the hostile tenant sits idle, and so must the victim's flow
// entries and host-port epoch stamps. Runs under any SDT_SHARDS (CI
// exercises 1 and 4): baseline and attack runs share the engine
// configuration, so the comparison is exact either way.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "controller/journal.hpp"
#include "controller/recovery.hpp"
#include "controller/transaction.hpp"
#include "openflow/flow_table.hpp"
#include "routing/shortest_path.hpp"
#include "sim/control_channel.hpp"
#include "sim/transport.hpp"
#include "tenant/tenant.hpp"
#include "topo/generators.hpp"

namespace sdt {
namespace {

// -- Victim trace fingerprint ------------------------------------------------

struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
};

// -- Shared world ------------------------------------------------------------

/// Two line(4) tenants on a 2-switch plant: victim = tenant 1 (global hosts
/// 0..3), hostile = tenant 2 (global hosts 4..7).
struct World {
  topo::Topology victimTopo;
  topo::Topology hostileTopo;
  topo::Topology hostileAlt;
  std::unique_ptr<routing::ShortestPathRouting> victimRouting;
  std::unique_ptr<routing::ShortestPathRouting> hostileRouting;
  std::unique_ptr<routing::ShortestPathRouting> hostileAltRouting;
  std::unique_ptr<tenant::TenantManager> mgr;
  sim::Simulator sim;
  sim::BuiltNetwork built;
  std::unique_ptr<sim::TransportManager> transport;
  Fnv victimTrace;
  int victimDelivered = 0;
  /// Attack paraphernalia (transactions, recovery runs, channels, journals)
  /// parked here so it outlives every in-flight control message and stale
  /// retry timer, then dies before the simulator does.
  std::vector<std::shared_ptr<void>> keepAlive;

  World() {
    victimTopo = topo::makeLine(4);
    hostileTopo = topo::makeLine(4);
    hostileAlt = topo::makeRing(4);
    victimRouting = std::make_unique<routing::ShortestPathRouting>(victimTopo);
    hostileRouting = std::make_unique<routing::ShortestPathRouting>(hostileTopo);
    hostileAltRouting = std::make_unique<routing::ShortestPathRouting>(hostileAlt);

    projection::PlantConfig cfg;
    cfg.numSwitches = 2;
    cfg.spec = projection::openflow64x100G();
    cfg.hostPortsPerSwitch = 6;
    cfg.interLinksPerPair = 8;
    auto plant = projection::buildPlant(cfg);
    EXPECT_TRUE(plant.ok());
    mgr = std::make_unique<tenant::TenantManager>(plant.value());

    tenant::TenantSpec victim;
    victim.name = "victim";
    victim.topology = &victimTopo;
    victim.routing = victimRouting.get();
    victim.spareSelfLinksPerSwitch = 1;
    victim.deploy.requireDeadlockFree = false;
    EXPECT_TRUE(mgr->admit(victim).ok());

    tenant::TenantSpec hostile = victim;
    hostile.name = "hostile";
    hostile.topology = &hostileTopo;
    hostile.routing = hostileRouting.get();
    // Headroom for the line <-> ring thrash: the ring needs cables the line
    // does not, and a slice can only morph onto spares it owns.
    hostile.spareSelfLinksPerSwitch = 2;
    hostile.spareInterLinksPerPair = 2;
    EXPECT_TRUE(mgr->admit(hostile).ok());

    built = mgr->buildNetwork(sim, {}, {2.0, 1.0});
    // One transport stack is safe to share: every message/packet id is
    // host-tagged from a per-host lane counter, so hostile sends can never
    // renumber (or otherwise perturb) the victim's flows.
    transport = std::make_unique<sim::TransportManager>(sim, *built.net,
                                                        sim::TransportConfig{});

    // Victim trace: everything its hosts ever receive, bit-exact.
    for (int h = 0; h < 4; ++h) {
      built.net->setSniffer(h, [this, h](const sim::Packet& p) {
        victimTrace.mix(static_cast<std::uint64_t>(h));
        victimTrace.mix(static_cast<std::uint64_t>(p.srcHost));
        victimTrace.mix(static_cast<std::uint64_t>(p.dstHost));
        victimTrace.mix(static_cast<std::uint64_t>(p.payloadBytes));
        victimTrace.mix(static_cast<std::uint64_t>(sim.now()));
      });
    }
  }

  /// Fixed victim workload: bursts of pair messages on a strict schedule,
  /// spanning the whole attack window.
  void startVictimWorkload() {
    for (int k = 0; k < 6; ++k) {
      const TimeNs at = usToNs(50.0) + k * msToNs(4.0);
      for (const auto& [src, dst] :
           {std::pair{0, 3}, std::pair{3, 0}, std::pair{1, 2}, std::pair{2, 1}}) {
        sim.schedule(at, [this, src = src, dst = dst]() {
          transport->sendMessage(src, dst, 32 * 1024, 0,
                                       [this](std::uint64_t, TimeNs) {
                                         ++victimDelivered;
                                         victimTrace.mix(
                                             static_cast<std::uint64_t>(sim.now()));
                                       });
        });
      }
    }
  }

  /// Final victim control-plane state, hashed: its flow entries on every
  /// shared switch (cookie namespace 1) plus its host-port epoch stamps.
  std::uint64_t victimStateDigest() const {
    Fnv d;
    for (const auto& sw : mgr->switches()) {
      for (const openflow::FlowEntry& e : sw->table().entries()) {
        if (openflow::cookieTenant(e.cookie) != 1) continue;
        d.mix(e.cookie);
        d.mix(static_cast<std::uint64_t>(e.priority));
        d.mix(e.match.inPort ? static_cast<std::uint64_t>(*e.match.inPort) : ~0ULL);
        d.mix(e.match.dstAddr ? static_cast<std::uint64_t>(*e.match.dstAddr) : ~0ULL);
      }
    }
    const tenant::TenantSlice* v = mgr->slice(1);
    for (topo::HostId h = 0; h < 4; ++h) {
      const projection::PhysPort pp = v->deployment.projection.hostPortOf(h);
      d.mix(mgr->switches()[pp.sw]->hasPortIngressEpoch(pp.port)
                ? static_cast<std::uint64_t>(
                      mgr->switches()[pp.sw]->portIngressEpoch(pp.port))
                : ~0ULL);
    }
    return d.h;
  }
};

struct RunResult {
  std::uint64_t trace = 0;
  std::uint64_t state = 0;
  int delivered = 0;
};

/// Run a world to a fixed horizon with the victim workload plus `attack`
/// (null = the solo baseline).
RunResult runWorld(const std::function<void(World&)>& attack) {
  World w;
  w.startVictimWorkload();
  if (attack) attack(w);
  w.sim.runUntil(msToNs(60.0));
  RunResult out;
  out.trace = w.victimTrace.h;
  out.state = w.victimStateDigest();
  out.delivered = w.victimDelivered;
  return out;
}

// -- Scenarios ---------------------------------------------------------------

TEST(TenantAdversarial, StormingNeighborLeavesVictimTraceByteIdentical) {
  const RunResult solo = runWorld(nullptr);
  EXPECT_EQ(solo.delivered, 24);

  int hostileDelivered = 0;
  const RunResult stormed = runWorld([&](World& w) {
    // Saturating storm inside the hostile slice, started before the victim's
    // first burst and outliving its last.
    for (int k = 0; k < 8; ++k) {
      for (const auto& [src, dst] :
           {std::pair{4, 7}, std::pair{7, 4}, std::pair{5, 6}, std::pair{6, 5}}) {
        w.sim.schedule(
            usToNs(10.0) + k * msToNs(3.0),
            [&w, src = src, dst = dst, &hostileDelivered]() {
              w.transport->sendMessage(
                  src, dst, 512 * 1024, 0,
                  [&hostileDelivered](std::uint64_t, TimeNs) { ++hostileDelivered; });
            });
      }
    }
  });
  EXPECT_GT(hostileDelivered, 0);  // the storm really ran
  EXPECT_EQ(stormed.delivered, solo.delivered);
  EXPECT_EQ(stormed.trace, solo.trace);
  EXPECT_EQ(stormed.state, solo.state);
}

TEST(TenantAdversarial, ReconfigThrashLeavesVictimTraceByteIdentical) {
  const RunResult solo = runWorld(nullptr);

  int commits = 0;
  const RunResult thrashed = runWorld([&](World& w) {
    // The hostile tenant flips line -> ring -> line -> ring live, back to
    // back, each a scoped two-phase transaction over the shared data plane.
    auto channel = std::make_shared<sim::ControlChannel>(w.sim, 7);
    auto txs = std::make_shared<
        std::vector<std::unique_ptr<controller::ReconfigTransaction>>>();
    w.keepAlive.push_back(channel);
    w.keepAlive.push_back(txs);
    for (int round = 0; round < 3; ++round) {
      w.sim.schedule(usToNs(200.0) + round * msToNs(8.0), [&w, channel, txs,
                                                           round, &commits]() {
        const bool toRing = round % 2 == 0;
        const topo::Topology& next = toRing ? w.hostileAlt : w.hostileTopo;
        const routing::RoutingAlgorithm& routing =
            toRing ? *w.hostileAltRouting : *w.hostileRouting;
        auto plan = w.mgr->planSliceUpdate(2, next, routing);
        ASSERT_TRUE(plan.ok()) << plan.error().message;
        auto tx = std::make_unique<controller::ReconfigTransaction>(
            w.sim, *channel, w.mgr->mutableSlice(2)->deployment,
            std::move(plan).value());
        tx->start();
        controller::ReconfigTransaction* raw = tx.get();
        txs->push_back(std::move(tx));
        // Settle bookkeeping just before the next round begins.
        w.sim.schedule(msToNs(7.0), [&w, raw, toRing, &commits]() {
          ASSERT_TRUE(raw->finished());
          ASSERT_TRUE(raw->report().committed) << raw->report().failure;
          ++commits;
          w.mgr->noteReconfigured(2, toRing ? &w.hostileAlt : &w.hostileTopo,
                                  toRing ? w.hostileAltRouting.get()
                                         : w.hostileRouting.get());
        });
      });
    }
  });
  EXPECT_EQ(commits, 3);
  EXPECT_EQ(thrashed.delivered, solo.delivered);
  EXPECT_EQ(thrashed.trace, solo.trace);
  EXPECT_EQ(thrashed.state, solo.state);
}

TEST(TenantAdversarial, CrashMidTransactionAndRecoveryLeaveVictimUntouched) {
  const RunResult solo = runWorld(nullptr);

  bool recovered = false;
  std::uint32_t recoveredEpoch = 0;
  const RunResult crashed = runWorld([&](World& w) {
    auto channel = std::make_shared<sim::ControlChannel>(w.sim, 11);
    auto storage = std::make_shared<controller::MemoryJournalStorage>();
    auto journal = std::make_shared<controller::Journal>(*storage);
    auto holder =
        std::make_shared<std::unique_ptr<controller::ReconfigTransaction>>();
    auto recovery = std::make_shared<std::unique_ptr<controller::RecoveryRun>>();
    for (const std::shared_ptr<void>& p :
         {std::shared_ptr<void>(channel), std::shared_ptr<void>(storage),
          std::shared_ptr<void>(journal), std::shared_ptr<void>(holder),
          std::shared_ptr<void>(recovery)}) {
      w.keepAlive.push_back(p);
    }
    ASSERT_TRUE(
        controller::journalDeploy(*journal, w.mgr->slice(2)->deployment, 0).ok());

    w.sim.schedule(usToNs(200.0), [&w, channel, journal, holder]() {
      auto plan = w.mgr->planSliceUpdate(2, w.hostileAlt, *w.hostileAltRouting);
      ASSERT_TRUE(plan.ok()) << plan.error().message;
      controller::ReconfigOptions topt;
      topt.journal = journal.get();
      topt.crashAt = controller::CrashPoint::kPostFlip;  // dies mid-commit
      *holder = std::make_unique<controller::ReconfigTransaction>(
          w.sim, *channel, w.mgr->mutableSlice(2)->deployment,
          std::move(plan).value(), topt);
      (*holder)->start();
    });
    // The crashed hostile controller's successor cold-starts from the
    // journal alone: the flip marker is durable, so it rolls FORWARD and
    // converges its own namespace only.
    w.sim.schedule(msToNs(20.0), [&w, channel, journal, holder, recovery]() {
      ASSERT_TRUE(*holder != nullptr && (*holder)->finished());
      ASSERT_TRUE((*holder)->crashed());
      controller::IntentCatalog catalog;
      catalog[w.hostileTopo.name()] = {&w.hostileTopo, w.hostileRouting.get()};
      catalog[w.hostileAlt.name()] = {&w.hostileAlt, w.hostileAltRouting.get()};
      auto rplan = controller::planRecovery(*w.mgr->slice(2)->controller,
                                            *journal, catalog,
                                            w.mgr->slice(2)->deployOptions);
      ASSERT_TRUE(rplan.ok()) << rplan.error().message;
      EXPECT_EQ(rplan.value().decision, controller::RecoveryDecision::kRollForward);
      w.mgr->scopeRecovery(2, rplan.value());
      controller::RecoveryOptions ropt;
      ropt.journal = journal.get();
      *recovery = std::make_unique<controller::RecoveryRun>(
          w.sim, *channel, w.mgr->switches(), std::move(rplan).value(), ropt);
      (*recovery)->start();
    });
    w.sim.schedule(msToNs(50.0), [&w, recovery, &recovered, &recoveredEpoch]() {
      ASSERT_TRUE(*recovery != nullptr && (*recovery)->finished());
      recovered = (*recovery)->report().converged &&
                  (*recovery)->report().pureStateVerified;
      recoveredEpoch = (*recovery)->report().targetEpoch;
      if (!recovered) return;
      w.mgr->mutableSlice(2)->deployment = (*recovery)->takeDeployment();
      w.mgr->noteReconfigured(2, &w.hostileAlt, w.hostileAltRouting.get());
    });
  });
  EXPECT_TRUE(recovered);
  EXPECT_EQ(recoveredEpoch, openflow::makeScopedEpoch(2, 2));  // rolled forward
  EXPECT_EQ(crashed.delivered, solo.delivered);
  EXPECT_EQ(crashed.trace, solo.trace);
  EXPECT_EQ(crashed.state, solo.state);
}

TEST(TenantAdversarial, TornJournalReplayIsContainedToTheHostileTenant) {
  const RunResult solo = runWorld(nullptr);

  bool recovered = false;
  std::size_t dropped = 0;
  const RunResult replayed = runWorld([&](World& w) {
    auto channel = std::make_shared<sim::ControlChannel>(w.sim, 13);
    auto storage = std::make_shared<controller::MemoryJournalStorage>();
    auto journal = std::make_shared<controller::Journal>(*storage);
    auto holder =
        std::make_shared<std::unique_ptr<controller::ReconfigTransaction>>();
    auto recovery = std::make_shared<std::unique_ptr<controller::RecoveryRun>>();
    for (const std::shared_ptr<void>& p :
         {std::shared_ptr<void>(channel), std::shared_ptr<void>(storage),
          std::shared_ptr<void>(journal), std::shared_ptr<void>(holder),
          std::shared_ptr<void>(recovery)}) {
      w.keepAlive.push_back(p);
    }
    ASSERT_TRUE(
        controller::journalDeploy(*journal, w.mgr->slice(2)->deployment, 0).ok());

    w.sim.schedule(usToNs(200.0), [&w, channel, journal, holder]() {
      auto plan = w.mgr->planSliceUpdate(2, w.hostileAlt, *w.hostileAltRouting);
      ASSERT_TRUE(plan.ok()) << plan.error().message;
      controller::ReconfigOptions topt;
      topt.journal = journal.get();
      topt.crashAt = controller::CrashPoint::kPostFlip;
      *holder = std::make_unique<controller::ReconfigTransaction>(
          w.sim, *channel, w.mgr->mutableSlice(2)->deployment,
          std::move(plan).value(), topt);
      (*holder)->start();
    });
    w.sim.schedule(msToNs(20.0), [&w, channel, storage, holder, recovery,
                                  &dropped]() {
      ASSERT_TRUE(*holder != nullptr && (*holder)->crashed());
      // Torn write: the journal's tail (the flip marker) lost its last
      // bytes. Replay degrades to the intact record prefix — and whatever
      // the recovery then decides, it stays inside the hostile namespace.
      ASSERT_GT(storage->bytes().size(), 7u);
      storage->bytes().resize(storage->bytes().size() - 7);
      controller::Journal reopened(*storage);
      auto replayR = reopened.replay();
      ASSERT_TRUE(replayR.ok());
      EXPECT_GT(replayR.value().droppedBytes, 0u);
      dropped = replayR.value().droppedBytes;
      controller::IntentCatalog catalog;
      catalog[w.hostileTopo.name()] = {&w.hostileTopo, w.hostileRouting.get()};
      catalog[w.hostileAlt.name()] = {&w.hostileAlt, w.hostileAltRouting.get()};
      auto rplan = controller::planRecovery(*w.mgr->slice(2)->controller,
                                            reopened, catalog,
                                            w.mgr->slice(2)->deployOptions);
      ASSERT_TRUE(rplan.ok()) << rplan.error().message;
      w.mgr->scopeRecovery(2, rplan.value());
      *recovery = std::make_unique<controller::RecoveryRun>(
          w.sim, *channel, w.mgr->switches(), std::move(rplan).value(),
          controller::RecoveryOptions{});
      (*recovery)->start();
    });
    w.sim.schedule(msToNs(50.0), [&w, recovery, &recovered]() {
      ASSERT_TRUE(*recovery != nullptr && (*recovery)->finished());
      recovered = (*recovery)->report().converged &&
                  (*recovery)->report().pureStateVerified;
      if (!recovered) return;
      const bool forward = (*recovery)->report().decision ==
                           controller::RecoveryDecision::kRollForward;
      w.mgr->mutableSlice(2)->deployment = (*recovery)->takeDeployment();
      w.mgr->noteReconfigured(2, forward ? &w.hostileAlt : &w.hostileTopo,
                              forward ? w.hostileAltRouting.get()
                                      : w.hostileRouting.get());
    });
  });
  EXPECT_GT(dropped, 0u);
  EXPECT_TRUE(recovered);
  EXPECT_EQ(replayed.delivered, solo.delivered);
  EXPECT_EQ(replayed.trace, solo.trace);
  EXPECT_EQ(replayed.state, solo.state);
}

}  // namespace
}  // namespace sdt
