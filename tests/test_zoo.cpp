// Tests: synthetic Topology Zoo catalog (Table II WAN substitution).
#include <gtest/gtest.h>

#include <algorithm>

#include "topo/zoo.hpp"

namespace sdt::topo {
namespace {

TEST(Zoo, CatalogSizeMatchesPaper) {
  EXPECT_EQ(zooSize(), 261);
  EXPECT_EQ(zooCatalog().size(), 261u);
}

TEST(Zoo, Deterministic) {
  const Topology a = makeZooTopology(17);
  const Topology b = makeZooTopology(17);
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.numLinks(), b.numLinks());
  ASSERT_EQ(a.numSwitches(), b.numSwitches());
  for (int i = 0; i < a.numLinks(); ++i) {
    EXPECT_EQ(a.link(i).a, b.link(i).a);
    EXPECT_EQ(a.link(i).b, b.link(i).b);
  }
}

TEST(Zoo, AllEntriesValidAndConnected) {
  for (int i = 0; i < zooSize(); ++i) {
    const Topology t = makeZooTopology(i);
    ASSERT_TRUE(t.validate(/*requireConnected=*/true).ok())
        << "entry " << i << " (" << t.name() << ")";
    ASSERT_GE(t.numSwitches(), 4) << t.name();
    ASSERT_EQ(t.numHosts(), t.numSwitches()) << t.name();
  }
}

TEST(Zoo, SizeDistributionMatchesZooStats) {
  std::vector<int> sizes;
  for (int i = 0; i < zooSize(); ++i) sizes.push_back(makeZooTopology(i).numSwitches());
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes.back(), 754);               // the "Kdl"-sized giant
  EXPECT_GE(sizes.front(), 4);                // Zoo minimum
  const int median = sizes[sizes.size() / 2];
  EXPECT_GE(median, 10);
  EXPECT_LE(median, 35);                      // Zoo median ~21
}

TEST(Zoo, TailBandsForTableII) {
  // Exactly one entry above 768 edges, exactly 12 above 384 (incl. giant),
  // exactly 13 above 192: these bands drive the 260/249/249/248 WAN row.
  int over768 = 0, over384 = 0, over192 = 0;
  for (int i = 0; i < zooSize(); ++i) {
    const int edges = makeZooTopology(i).numLinks();
    over768 += edges > 768;
    over384 += edges > 384;
    over192 += edges > 192;
  }
  EXPECT_EQ(over768, 1);
  EXPECT_EQ(over384, 12);
  EXPECT_EQ(over192, 13);
}

TEST(Zoo, IndexBoundsAsserted) {
  EXPECT_NO_THROW(makeZooTopology(0));
  EXPECT_NO_THROW(makeZooTopology(260));
}

}  // namespace
}  // namespace sdt::topo
