// Tests: transactional topology reconfiguration — two-phase consistent
// updates with versioned rules over an unreliable control channel.
//
// The invariant under test everywhere: during a live reconfiguration every
// packet is forwarded end-to-end by exactly one configuration epoch's rules
// (sim::EpochConsistencyChecker), and a transaction either converges to a
// pure new-epoch state or rolls back to a pure old-epoch state — never
// anything in between.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "controller/controller.hpp"
#include "controller/monitor.hpp"
#include "controller/transaction.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/consistency.hpp"
#include "sim/control_channel.hpp"
#include "sim/transport.hpp"
#include "topo/generators.hpp"

namespace sdt {
namespace {

std::uint64_t faultSeed() {
  const char* env = std::getenv("SDT_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1ULL;
}

/// All-pairs table walk (same helper as test_recovery).
bool walkDelivers(const controller::Deployment& dep, const topo::Topology& topo,
                  topo::HostId src, topo::HostId dst) {
  projection::PhysPort at = dep.projection.hostPortOf(src);
  for (int hops = 0; hops < 32; ++hops) {
    openflow::PacketHeader h;
    h.inPort = at.port;
    h.srcAddr = static_cast<std::uint32_t>(src);
    h.dstAddr = static_cast<std::uint32_t>(dst);
    const openflow::ForwardDecision decision = dep.switches[at.sw]->process(h, 100);
    if (!decision.matched || decision.drop) return false;
    const projection::PhysPort out{at.sw, decision.outPort};
    if (out == dep.projection.hostPortOf(dst)) return true;
    const auto logical = dep.projection.logicalAt(out);
    if (!logical) return false;
    const auto peer = topo.neighborOf(*logical);
    if (!peer) return false;
    at = dep.projection.physOf(*peer);
  }
  return false;  // forwarding loop
}

/// Every switch holds rules of exactly `epoch` and stamps it at ingress.
void expectPureEpoch(const controller::Deployment& dep, std::uint32_t epoch) {
  const std::uint32_t other = epoch == dep.epoch ? epoch + 1 : dep.epoch;
  for (const auto& ofs : dep.switches) {
    EXPECT_EQ(ofs->ingressEpoch(), epoch) << "switch " << ofs->id();
    EXPECT_EQ(ofs->table().countEpoch(other), 0u) << "switch " << ofs->id();
    EXPECT_EQ(ofs->table().countEpoch(epoch), ofs->table().size())
        << "switch " << ofs->id();
  }
}

/// Shared live-reconfiguration rig: line(6) deployed and carrying TCP
/// traffic on a 2-switch plant that can also hold ring(6); both topologies
/// attach host i to logical switch i, so host ports stay put and a live
/// line -> ring update is plannable.
class LiveReconfig : public ::testing::Test {
 protected:
  void SetUp() override {
    from_ = topo::makeLine(6);
    to_ = topo::makeRing(6);
    routingFrom_ = std::make_unique<routing::ShortestPathRouting>(from_);
    routingTo_ = std::make_unique<routing::ShortestPathRouting>(to_);
    auto plantR = projection::planPlant({&from_, &to_}, {.numSwitches = 2});
    ASSERT_TRUE(plantR.ok());
    plant_ = std::move(plantR).value();
    ctl_ = std::make_unique<controller::SdtController>(plant_);
    auto depR = ctl_->deploy(from_, *routingFrom_);
    ASSERT_TRUE(depR.ok()) << depR.error().message;
    dep_ = std::move(depR).value();
    built_ = sim::buildProjectedNetwork(sim_, from_, dep_.projection, plant_,
                                        dep_.switches, {}, {2.0, 1.0}, &checker_);
    tm_ = std::make_unique<sim::TransportManager>(sim_, *built_.net,
                                                  sim::TransportConfig{});
  }

  [[nodiscard]] controller::UpdatePlan plan() {
    controller::DeployOptions opt;
    opt.requireDeadlockFree = false;  // ring + shortest path: cyclic CDG
    auto planR = ctl_->planUpdate(dep_, to_, *routingTo_, opt);
    EXPECT_TRUE(planR.ok()) << planR.error().message;
    return std::move(planR).value();
  }

  void startTraffic(int bytesPerFlow = 256 * 1024) {
    const int hosts = from_.numHosts();
    for (int h = 0; h < hosts; ++h) {
      tm_->startTcpFlow(h, (h + hosts / 2) % hosts, bytesPerFlow,
                        [this](sim::Time) { ++flowsCompleted_; });
    }
  }

  topo::Topology from_, to_;
  std::unique_ptr<routing::ShortestPathRouting> routingFrom_, routingTo_;
  projection::Plant plant_;
  std::unique_ptr<controller::SdtController> ctl_;
  controller::Deployment dep_;
  sim::Simulator sim_;
  sim::EpochConsistencyChecker checker_;
  sim::BuiltNetwork built_;
  std::unique_ptr<sim::TransportManager> tm_;
  int flowsCompleted_ = 0;
};

TEST_F(LiveReconfig, CommitsUnderReliableChannelWithZeroViolations) {
  const int oldTotal = dep_.totalFlowEntries;
  controller::UpdatePlan plan = this->plan();
  EXPECT_EQ(plan.fromEpoch, 1u);
  EXPECT_EQ(plan.toEpoch, 2u);
  const int planned = plan.totalEntries;

  sim::ControlChannel channel(sim_, faultSeed());
  controller::ReconfigTransaction tx(sim_, channel, dep_, std::move(plan));
  startTraffic();
  sim_.schedule(usToNs(100.0), [&]() { tx.start(); });
  sim_.runUntil(msToNs(40.0));

  ASSERT_TRUE(tx.finished());
  const controller::ReconfigReport& r = tx.report();
  EXPECT_TRUE(r.committed);
  EXPECT_FALSE(r.rolledBack);
  EXPECT_EQ(r.phaseReached, controller::ReconfigPhase::kDone);
  EXPECT_TRUE(r.pureStateVerified);
  EXPECT_FALSE(r.gcIncomplete);
  EXPECT_TRUE(r.failure.empty());
  EXPECT_EQ(r.flowModsInstalled, planned);
  EXPECT_EQ(r.flowModsGarbageCollected, oldTotal);
  EXPECT_EQ(r.flowModsRolledBack, 0);
  EXPECT_EQ(r.barrierRoundTrips, plant_.numSwitches());
  EXPECT_EQ(r.retriesTotal, 0);  // perfect channel: no resends
  EXPECT_GT(r.updateWindow(), 0);
  EXPECT_GT(r.finishedAt, r.updateWindowEnd);
  for (const controller::SwitchTxState& s : r.switches) {
    EXPECT_TRUE(s.installAcked && s.barrierAcked && s.flipAcked && s.gcAcked);
    EXPECT_FALSE(s.rollbackAcked);
  }

  // The deployment is now the ring, epoch 2, pure.
  EXPECT_EQ(dep_.epoch, 2u);
  EXPECT_EQ(dep_.totalFlowEntries, planned);
  expectPureEpoch(dep_, 2);
  for (topo::HostId src = 0; src < to_.numHosts(); ++src) {
    for (topo::HostId dst = 0; dst < to_.numHosts(); ++dst) {
      if (src != dst) {
        EXPECT_TRUE(walkDelivers(dep_, to_, src, dst)) << src << "->" << dst;
      }
    }
  }

  // Per-packet consistency held throughout, and the checker really saw
  // epoch-stamped traffic spanning the update.
  EXPECT_TRUE(checker_.violations().empty())
      << checker_.violations().front().describe();
  EXPECT_GT(checker_.stampedPackets(), 0u);
  EXPECT_EQ(flowsCompleted_, from_.numHosts());
}

TEST_F(LiveReconfig, RollsBackToPureOldEpochWhenSwitchUnreachable) {
  controller::UpdatePlan plan = this->plan();

  // Switch 0's management link is dead across the whole install-retry
  // budget, then comes back: the transaction must abort and roll back —
  // including the delayed rollback delete to switch 0 once it reconnects.
  sim::ControlChannel channel(sim_, faultSeed());
  channel.disconnect(0, 0, msToNs(2.0));
  controller::ReconfigTransaction tx(sim_, channel, dep_, std::move(plan));
  startTraffic();
  sim_.schedule(usToNs(100.0), [&]() { tx.start(); });
  sim_.runUntil(msToNs(40.0));

  ASSERT_TRUE(tx.finished());
  const controller::ReconfigReport& r = tx.report();
  EXPECT_FALSE(r.committed);
  EXPECT_TRUE(r.rolledBack);
  EXPECT_EQ(r.phaseReached, controller::ReconfigPhase::kInstall);
  EXPECT_TRUE(r.pureStateVerified);
  EXPECT_FALSE(r.failure.empty());
  EXPECT_GT(r.retriesTotal, 0);
  EXPECT_GT(r.rollbackLatency, 0);
  EXPECT_EQ(r.flowModsInstalled, r.flowModsRolledBack);  // every add undone

  // The deployment still runs the line at epoch 1, pure, fully forwarding.
  EXPECT_EQ(dep_.epoch, 1u);
  expectPureEpoch(dep_, 1);
  for (topo::HostId src = 0; src < from_.numHosts(); ++src) {
    for (topo::HostId dst = 0; dst < from_.numHosts(); ++dst) {
      if (src != dst) {
        EXPECT_TRUE(walkDelivers(dep_, from_, src, dst)) << src << "->" << dst;
      }
    }
  }
  EXPECT_TRUE(checker_.violations().empty())
      << checker_.violations().front().describe();
  EXPECT_EQ(flowsCompleted_, from_.numHosts());
}

TEST_F(LiveReconfig, MonitorGuardSuppressesSpuriousFailuresDuringTransaction) {
  controller::UpdatePlan plan = this->plan();

  controller::NetworkMonitor monitor(sim_, *built_.net, from_, dep_.projection);
  monitor.enableFailureDetection(usToNs(60.0));
  monitor.start(usToNs(5.0));

  sim::ControlChannel channel(sim_, faultSeed());
  controller::ReconfigOptions opt;
  opt.monitor = &monitor;
  controller::ReconfigTransaction tx(sim_, channel, dep_, std::move(plan), opt);
  startTraffic();
  sim_.schedule(usToNs(100.0), [&]() {
    tx.start();
    EXPECT_TRUE(monitor.guarded(0));
    EXPECT_TRUE(monitor.guarded(1));
  });
  sim_.runUntil(msToNs(40.0));

  ASSERT_TRUE(tx.finished());
  EXPECT_TRUE(tx.report().committed);
  // Guards lifted at finish; no spurious PortFailure fired even though the
  // topology swap idled previously-busy ports mid-stream.
  EXPECT_FALSE(monitor.guarded(0));
  EXPECT_FALSE(monitor.guarded(1));
  EXPECT_TRUE(monitor.portFailures().empty());
}

TEST(Reconfig, PlanUpdateAbortsCleanlyWhenBothVersionsExceedCapacity) {
  // Size the flow tables so one configuration fits but two do not: the
  // prepare phase must refuse before anything is installed.
  const topo::Topology line = topo::makeLine(6);
  const topo::Topology ring = topo::makeRing(6);
  routing::ShortestPathRouting rLine(line);
  routing::ShortestPathRouting rRing(ring);
  auto plantR = projection::planPlant({&line, &ring}, {.numSwitches = 2});
  ASSERT_TRUE(plantR.ok());
  projection::Plant plant = std::move(plantR).value();
  {
    controller::SdtController probe(plant);
    auto dep = probe.deploy(line, rLine);
    ASSERT_TRUE(dep.ok());
    for (auto& spec : plant.switches) {
      spec.flowTableCapacity =
          static_cast<std::size_t>(dep.value().maxEntriesPerSwitch) + 8;
    }
  }
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(line, rLine);
  ASSERT_TRUE(depR.ok()) << depR.error().message;
  controller::Deployment dep = std::move(depR).value();

  controller::DeployOptions opt;
  opt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(dep, ring, rRing, opt);
  ASSERT_FALSE(planR.ok());
  EXPECT_NE(planR.error().message.find("two-phase update"), std::string::npos);
  // Nothing touched: still epoch 1, still the full line table.
  EXPECT_EQ(dep.epoch, 1u);
  expectPureEpoch(dep, 1);
}

// ---------------------------------------------------------------------------
// Fuzz: 200+ random control-channel schedules through a live reconfiguration.
// Every run must (a) terminate, (b) end committed-and-pure or
// rolled-back-and-pure, and (c) never mix epochs on any packet's path.
// ---------------------------------------------------------------------------

struct FuzzOutcome {
  bool finished = false;
  bool committed = false;
  bool rolledBack = false;
  bool pure = false;
  std::size_t violations = 0;
  std::size_t stamped = 0;
};

FuzzOutcome runFuzzSchedule(std::uint64_t seed) {
  Rng rng(seed);
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  routing::ShortestPathRouting rFrom(from);
  routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  if (!plantR.ok()) return {};
  const projection::Plant plant = std::move(plantR).value();
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(from, rFrom);
  if (!depR.ok()) return {};
  controller::Deployment dep = std::move(depR).value();

  sim::Simulator sim;
  sim::EpochConsistencyChecker checker;
  sim::BuiltNetwork built = sim::buildProjectedNetwork(
      sim, from, dep.projection, plant, dep.switches, {}, {2.0, 1.0}, &checker);
  sim::TransportManager tm(sim, *built.net, {});

  // Random impairment mix, drawn deterministically from the fuzz seed.
  sim::ControlChannelConfig cfg;
  cfg.dropProb = rng.uniform() * 0.4;
  cfg.dupProb = rng.uniform() * 0.3;
  cfg.reorderProb = rng.uniform() * 0.3;
  cfg.jitter = static_cast<TimeNs>(rng.between(500, 4'000));
  cfg.reorderDelay = static_cast<TimeNs>(rng.between(5'000, 30'000));
  sim::ControlChannel channel(sim, seed, cfg);
  // Half the schedules also sever one switch's management link for a
  // window that may or may not outlast the bounded retry budget.
  if (rng.uniform() < 0.5) {
    const int sw = static_cast<int>(rng.below(static_cast<std::uint64_t>(
        plant.numSwitches())));
    const TimeNs fromT = static_cast<TimeNs>(rng.between(0, 500'000));
    const TimeNs len = static_cast<TimeNs>(rng.between(50'000, 3'000'000));
    channel.disconnect(sw, fromT, fromT + len);
  }

  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(dep, to, rTo, dopt);
  if (!planR.ok()) return {};

  controller::ReconfigTransaction tx(sim, channel, dep, std::move(planR).value());
  const int hosts = from.numHosts();
  for (int h = 0; h < hosts; ++h) {
    tm.startTcpFlow(h, (h + hosts / 2) % hosts, 96 * 1024, nullptr);
  }
  sim.schedule(usToNs(100.0), [&]() { tx.start(); });
  sim.runUntil(msToNs(80.0));

  FuzzOutcome out;
  out.finished = tx.finished();
  if (!out.finished) return out;
  const controller::ReconfigReport& r = tx.report();
  out.committed = r.committed;
  out.rolledBack = r.rolledBack;
  out.pure = r.pureStateVerified;
  out.violations = checker.violations().size();
  out.stamped = checker.stampedPackets();
  // Cross-check the report's purity claim against the tables directly.
  const std::uint32_t keep = r.committed ? r.toEpoch : r.fromEpoch;
  const std::uint32_t gone = r.committed ? r.fromEpoch : r.toEpoch;
  for (const auto& ofs : dep.switches) {
    if (ofs->table().countEpoch(gone) != 0 || ofs->ingressEpoch() != keep) {
      out.pure = false;
    }
  }
  return out;
}

TEST(ReconfigFuzz, TwoHundredSchedulesConvergeOrRollBackPure) {
  const std::uint64_t base = faultSeed() * 100'000ULL;
  int committed = 0;
  int rolledBack = 0;
  std::size_t stampedTotal = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const std::uint64_t seed = base + i;
    const FuzzOutcome out = runFuzzSchedule(seed);
    ASSERT_TRUE(out.finished) << "seed " << seed << " did not converge";
    ASSERT_TRUE(out.committed != out.rolledBack)
        << "seed " << seed << " ended neither committed nor rolled back";
    EXPECT_TRUE(out.pure) << "seed " << seed << " left mixed-epoch state";
    EXPECT_EQ(out.violations, 0u) << "seed " << seed << " mixed epochs on a path";
    committed += out.committed;
    rolledBack += out.rolledBack;
    stampedTotal += out.stamped;
  }
  // The schedule space must actually exercise both outcomes and real
  // epoch-stamped traffic, or the suite is vacuous.
  EXPECT_GT(committed, 0);
  EXPECT_GT(rolledBack, 0);
  EXPECT_GT(stampedTotal, 0u);
}

// ---------------------------------------------------------------------------
// Fuzz: CONCURRENT transactions on disjoint switch sets. Two controllers
// reconfigure two deployments whose switches never overlap, but they share
// one simulator and one lossy management channel — their install/barrier/
// flip/gc acks interleave freely in time. 200 random schedules assert no
// cross-transaction barrier interference: each transaction's barrier counts
// exactly its own switches' acks, its flow-mod totals never absorb the
// neighbor's, and each lands committed-pure or rolled-back-pure on its own
// merits (one may roll back while the other commits).
// ---------------------------------------------------------------------------

struct ConcurrentOutcome {
  bool valid = false;
  bool finishedA = false, finishedB = false;
  bool committedA = false, committedB = false;
  bool rolledBackA = false, rolledBackB = false;
  bool pureA = false, pureB = false;
  int barrierA = 0, barrierB = 0;
  int installedA = 0, installedB = 0;
  int planEntriesA = 0, planEntriesB = 0;
};

ConcurrentOutcome runConcurrentSchedule(std::uint64_t seed) {
  Rng rng(seed);
  const topo::Topology from = topo::makeLine(4);
  const topo::Topology to = topo::makeRing(4);
  routing::ShortestPathRouting rFrom(from);
  routing::ShortestPathRouting rTo(to);

  // Two fully independent fabrics (disjoint switch sets) behind one
  // management network.
  struct Lane {
    projection::Plant plant;
    std::unique_ptr<controller::SdtController> ctl;
    controller::Deployment dep;
    int planEntries = 0;
    std::unique_ptr<controller::ReconfigTransaction> tx;
  };
  Lane lanes[2];
  sim::Simulator sim;
  sim::ControlChannelConfig cfg;
  cfg.dropProb = rng.uniform() * 0.4;
  cfg.dupProb = rng.uniform() * 0.3;
  cfg.reorderProb = rng.uniform() * 0.3;
  cfg.jitter = static_cast<TimeNs>(rng.between(500, 4'000));
  cfg.reorderDelay = static_cast<TimeNs>(rng.between(5'000, 30'000));
  sim::ControlChannel channel(sim, seed, cfg);
  if (rng.uniform() < 0.5) {
    const int sw = static_cast<int>(rng.below(2));
    const TimeNs fromT = static_cast<TimeNs>(rng.between(0, 500'000));
    const TimeNs len = static_cast<TimeNs>(rng.between(50'000, 3'000'000));
    channel.disconnect(sw, fromT, fromT + len);
  }

  for (Lane& lane : lanes) {
    auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
    if (!plantR.ok()) return {};
    lane.plant = std::move(plantR).value();
    lane.ctl = std::make_unique<controller::SdtController>(lane.plant);
    auto depR = lane.ctl->deploy(from, rFrom);
    if (!depR.ok()) return {};
    lane.dep = std::move(depR).value();
    controller::DeployOptions dopt;
    dopt.requireDeadlockFree = false;
    auto planR = lane.ctl->planUpdate(lane.dep, to, rTo, dopt);
    if (!planR.ok()) return {};
    lane.planEntries = planR.value().totalEntries;
    lane.tx = std::make_unique<controller::ReconfigTransaction>(
        sim, channel, lane.dep, std::move(planR).value());
    sim.schedule(static_cast<TimeNs>(rng.between(10'000, 400'000)),
                 [&lane]() { lane.tx->start(); });
  }
  sim.runUntil(msToNs(80.0));

  ConcurrentOutcome out;
  out.valid = true;
  out.finishedA = lanes[0].tx->finished();
  out.finishedB = lanes[1].tx->finished();
  if (!out.finishedA || !out.finishedB) return out;
  const controller::ReconfigReport& a = lanes[0].tx->report();
  const controller::ReconfigReport& b = lanes[1].tx->report();
  out.committedA = a.committed;
  out.committedB = b.committed;
  out.rolledBackA = a.rolledBack;
  out.rolledBackB = b.rolledBack;
  out.pureA = a.pureStateVerified;
  out.pureB = b.pureStateVerified;
  out.barrierA = a.barrierRoundTrips;
  out.barrierB = b.barrierRoundTrips;
  out.installedA = a.flowModsInstalled;
  out.installedB = b.flowModsInstalled;
  out.planEntriesA = lanes[0].planEntries;
  out.planEntriesB = lanes[1].planEntries;
  // Cross-check purity directly against each lane's own tables.
  for (int i = 0; i < 2; ++i) {
    const controller::ReconfigReport& r = lanes[i].tx->report();
    const std::uint32_t keep = r.committed ? r.toEpoch : r.fromEpoch;
    const std::uint32_t gone = r.committed ? r.fromEpoch : r.toEpoch;
    for (const auto& ofs : lanes[i].dep.switches) {
      if (ofs->table().countEpoch(gone) != 0 || ofs->ingressEpoch() != keep) {
        (i == 0 ? out.pureA : out.pureB) = false;
      }
    }
  }
  return out;
}

TEST(ReconfigFuzz, ConcurrentDisjointTransactionsNeverShareBarriers) {
  const std::uint64_t base = faultSeed() * 7'000'000ULL;
  int bothCommitted = 0;
  int split = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const std::uint64_t seed = base + i;
    const ConcurrentOutcome out = runConcurrentSchedule(seed);
    ASSERT_TRUE(out.valid) << "seed " << seed << " failed to set up";
    ASSERT_TRUE(out.finishedA && out.finishedB)
        << "seed " << seed << " left a transaction unfinished";
    ASSERT_TRUE(out.committedA != out.rolledBackA) << "seed " << seed;
    ASSERT_TRUE(out.committedB != out.rolledBackB) << "seed " << seed;
    EXPECT_TRUE(out.pureA) << "seed " << seed << " lane A mixed epochs";
    EXPECT_TRUE(out.pureB) << "seed " << seed << " lane B mixed epochs";
    // Barrier accounting stays per-transaction: a barrier over 2 own
    // switches completes in exactly 2 round-trips no matter how the
    // neighbor's acks interleave. A committed transaction installed exactly
    // its own plan's entries — never a neighbor's flow-mods.
    if (out.committedA) {
      EXPECT_EQ(out.barrierA, 2) << "seed " << seed;
      EXPECT_EQ(out.installedA, out.planEntriesA) << "seed " << seed;
    }
    if (out.committedB) {
      EXPECT_EQ(out.barrierB, 2) << "seed " << seed;
      EXPECT_EQ(out.installedB, out.planEntriesB) << "seed " << seed;
    }
    bothCommitted += out.committedA && out.committedB;
    split += out.committedA != out.committedB;
  }
  // The schedule space must exercise genuine concurrency outcomes: both
  // committing, and one rolling back while the other commits (independent
  // fates prove the transactions share nothing).
  EXPECT_GT(bothCommitted, 0);
  EXPECT_GT(split, 0);
}

}  // namespace
}  // namespace sdt
