// Tests: the full self-healing loop — fault -> Network Monitor detection ->
// SdtController::repair() re-projection — end to end on live traffic, plus
// the graceful-degradation path when the plant has no spare to heal with.
#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>
#include <vector>

#include "controller/controller.hpp"
#include "controller/monitor.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/faults.hpp"
#include "sim/transport.hpp"
#include "testbed/evaluator.hpp"
#include "topo/generators.hpp"

namespace sdt {
namespace {

std::uint64_t faultSeed() {
  const char* env = std::getenv("SDT_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1ULL;
}

/// Walk a (src, dst) header through the programmed tables by hand (the
/// test_controller all-pairs walk, tolerant of misses so it can also prove
/// that severed pairs die on a clean table miss instead of looping).
bool walkDelivers(const controller::Deployment& dep, const topo::Topology& topo,
                  topo::HostId src, topo::HostId dst) {
  projection::PhysPort at = dep.projection.hostPortOf(src);
  for (int hops = 0; hops < 32; ++hops) {
    openflow::PacketHeader h;
    h.inPort = at.port;
    h.srcAddr = static_cast<std::uint32_t>(src);
    h.dstAddr = static_cast<std::uint32_t>(dst);
    const openflow::ForwardDecision decision = dep.switches[at.sw]->process(h, 100);
    if (!decision.matched || decision.drop) return false;
    const projection::PhysPort out{at.sw, decision.outPort};
    if (out == dep.projection.hostPortOf(dst)) return true;
    const auto logical = dep.projection.logicalAt(out);
    if (!logical) return false;
    const auto peer = topo.neighborOf(*logical);
    if (!peer) return false;
    at = dep.projection.physOf(*peer);
  }
  return false;  // forwarding loop
}

TEST(Recovery, EndToEndCutDetectRepairKeepsTrafficFlowing) {
  const std::uint64_t seed = faultSeed();
  const topo::Topology topo = topo::makeFatTree(4);
  routing::ShortestPathRouting routing(topo);
  auto plantR = projection::planPlant({&topo}, {.numSwitches = 3});
  ASSERT_TRUE(plantR.ok());
  const projection::Plant& plant = plantR.value();
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(topo, routing);
  ASSERT_TRUE(depR.ok()) << depR.error().message;
  controller::Deployment dep = std::move(depR).value();

  sim::Simulator sim;
  sim::BuiltNetwork built = sim::buildProjectedNetwork(
      sim, topo, dep.projection, plant, dep.switches, {}, {2.0, 1.0});
  sim::Network& net = *built.net;
  sim::TransportManager tm(sim, net, {});

  controller::NetworkMonitor monitor(sim, net, topo, dep.projection);
  monitor.enableFailureDetection(usToNs(60.0));
  monitor.start(usToNs(5.0));

  // Cut a realized self-link mid-flight.
  sim::FaultInjector inj(sim, net, seed);
  inj.attachSwitches(built.ofSwitches);
  int target = -1;
  const auto& rls = dep.projection.realizedLinks();
  for (std::size_t i = 0; i < rls.size(); ++i) {
    if (!rls[i].optical && !rls[i].interSwitch) {
      target = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(target, 0);
  const projection::PhysLink cut = plant.selfLinks[rls[target].physLink];
  const TimeNs cutAt = usToNs(200.0);
  inj.cutCable(cutAt, cut.a.sw, cut.a.port);
  inj.arm();

  // Self-healing hook: first detection of the cut schedules one repair. No
  // clearFailures() afterwards — the cut ports stay down, and forgetting
  // them would re-detect and re-repair forever.
  bool repairScheduled = false;
  bool repaired = false;
  controller::RepairReport report;
  monitor.onPortFailure([&](const controller::PortFailure& f) {
    const bool isCut = (f.sw == cut.a.sw && f.port == cut.a.port) ||
                       (f.sw == cut.b.sw && f.port == cut.b.port);
    if (!isCut || repairScheduled) return;
    repairScheduled = true;
    sim.schedule(usToNs(1.0), [&]() {
      controller::FailureSet failures;
      failures.ports = monitor.failedPorts();
      auto repR = ctl.repair(dep, topo, routing, failures);
      ASSERT_TRUE(repR.ok()) << repR.error().message;
      report = repR.value();
      repaired = true;
    });
  });

  const int hosts = topo.numHosts();
  int completed = 0;
  for (int h = 0; h < hosts; ++h) {
    tm.startTcpFlow(h, (h + hosts / 2) % hosts, 1 * kMiB,
                    [&completed](sim::Time) { ++completed; });
  }
  sim.runUntil(msToNs(50.0));

  // Detection: both cut ports reported down, within timeout + 2 periods.
  const controller::PortFailure* cutFailure = nullptr;
  for (const controller::PortFailure& f : monitor.portFailures()) {
    if (f.sw == cut.a.sw && f.port == cut.a.port) cutFailure = &f;
  }
  ASSERT_NE(cutFailure, nullptr);
  EXPECT_TRUE(cutFailure->reportedDown);
  EXPECT_TRUE(cutFailure->logicalPort.has_value());
  EXPECT_GE(cutFailure->suspectedAt, cutAt);
  EXPECT_LE(cutFailure->detectedAt - cutAt, usToNs(80.0));

  // Repair: the severed logical link moved onto a spare, incrementally.
  ASSERT_TRUE(repaired);
  EXPECT_GE(report.remappedLinks, 1);
  EXPECT_FALSE(report.degraded);
  EXPECT_TRUE(report.severedLinks.empty());
  EXPECT_TRUE(report.unreachablePairs.empty());
  EXPECT_GT(report.flowModsAdded, 0);
  EXPECT_LT(report.flowMods(), report.fullRedeployFlowMods);

  // Traffic: every flow finished despite the mid-flight cut (TCP RTO rides
  // through the outage window onto the repaired path).
  EXPECT_EQ(completed, hosts);
  // And the repaired tables forward every pair again.
  for (topo::HostId src = 0; src < hosts; ++src) {
    for (topo::HostId dst = 0; dst < hosts; ++dst) {
      if (src == dst) continue;
      EXPECT_TRUE(walkDelivers(dep, topo, src, dst)) << src << "->" << dst;
    }
  }
}

TEST(Recovery, NoSpareDegradesGracefullyWithStructuredReport) {
  // A hand-built plant with zero spare capacity: one 16-port switch whose
  // three self-links are all consumed by line(4). (planPlant always wires
  // leftover ports into spare self-links, hence the manual construction.)
  projection::Plant plant;
  plant.switches.push_back(projection::openflow64x100G());
  plant.switches[0].numPorts = 16;
  plant.selfLinks = {{{0, 0}, {0, 1}}, {{0, 2}, {0, 3}}, {{0, 4}, {0, 5}}};
  plant.hostPorts = {{0, 6}, {0, 7}, {0, 8}, {0, 9}};
  ASSERT_TRUE(plant.validate().ok());

  const topo::Topology topo = topo::makeLine(4);
  routing::ShortestPathRouting routing(topo);
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(topo, routing);
  ASSERT_TRUE(depR.ok()) << depR.error().message;
  controller::Deployment dep = std::move(depR).value();

  // Fail the cable carrying the middle logical link (switches 1-2).
  int idx = -1;
  const auto& rls = dep.projection.realizedLinks();
  for (std::size_t i = 0; i < rls.size(); ++i) {
    if (rls[i].logicalLink == 1) idx = static_cast<int>(i);
  }
  ASSERT_GE(idx, 0);
  const projection::PhysLink cable = plant.selfLinks[rls[idx].physLink];
  controller::FailureSet failures;
  failures.ports = {cable.a, cable.b};

  auto repR = ctl.repair(dep, topo, routing, failures);
  ASSERT_TRUE(repR.ok()) << repR.error().message;
  const controller::RepairReport& report = repR.value();

  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.remappedLinks, 0);
  ASSERT_EQ(report.severedLinks.size(), 1u);
  EXPECT_EQ(report.severedLinks[0].logicalLink, 1);
  const std::vector<std::pair<topo::HostId, topo::HostId>> expected{
      {0, 2}, {0, 3}, {1, 2}, {1, 3}};
  EXPECT_EQ(report.unreachablePairs, expected);
  EXPECT_GT(report.flowModsRemoved, 0);  // entries into the dead link withdrawn
  EXPECT_TRUE(report.deadlockChecked);
  EXPECT_TRUE(report.deadlockFree);

  // Surviving pairs still forward; severed pairs die on a clean table miss
  // (no black-holing into the failed ports, no loops).
  EXPECT_TRUE(walkDelivers(dep, topo, 0, 1));
  EXPECT_TRUE(walkDelivers(dep, topo, 2, 3));
  for (const auto& [a, b] : expected) {
    EXPECT_FALSE(walkDelivers(dep, topo, a, b));
    EXPECT_FALSE(walkDelivers(dep, topo, b, a));
  }
}

TEST(Recovery, MonitorDetectsCounterStallUnderTraffic) {
  // Full-testbed mode: a wedged transceiver is not reported down, so only
  // the counter-stall signature (tx frozen + backlog) can catch it.
  const topo::Topology topo = topo::makeLine(3);
  routing::ShortestPathRouting routing(topo);
  testbed::Instance inst = testbed::makeFullTestbed(topo, routing, {});

  controller::NetworkMonitor monitor(*inst.sim, inst.net(), topo);
  monitor.enableFailureDetection(usToNs(20.0));
  monitor.start(usToNs(5.0));

  // Switch 1's port toward switch 2 carries the whole 0->2 stream.
  const topo::Link& link12 = topo.link(1);
  const topo::SwitchPort victim = link12.a.sw == 1 ? link12.a : link12.b;
  ASSERT_EQ(victim.sw, 1);
  sim::FaultInjector inj(*inst.sim, inst.net(), faultSeed());
  inj.stallPort(usToNs(50.0), victim.sw, victim.port);
  inj.arm();

  inst.transport->startTcpFlow(0, 2, -1);  // iperf-style, keeps the queue fed
  inst.sim->runUntil(usToNs(400.0));

  const controller::PortFailure* wedged = nullptr;
  for (const controller::PortFailure& f : monitor.portFailures()) {
    if (f.sw == victim.sw && f.port == victim.port) wedged = &f;
  }
  ASSERT_NE(wedged, nullptr);
  EXPECT_FALSE(wedged->reportedDown);  // signature 2, not loss-of-signal
  EXPECT_FALSE(wedged->logicalPort.has_value());  // full-testbed plane
  EXPECT_GE(wedged->suspectedAt, usToNs(50.0));
  EXPECT_GE(wedged->detectedAt - wedged->suspectedAt, usToNs(20.0));
}

}  // namespace
}  // namespace sdt
