// Unit tests: common utilities (units, Result, RNG, retry, strings, JSON).
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "common/json.hpp"
#include "common/result.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"

namespace sdt {
namespace {

TEST(Units, SerializationDelay) {
  // 1 Gbps = 1 bit/ns: 1000 bytes = 8000 ns.
  EXPECT_EQ(Gbps{1.0}.serializationNs(1000), 8000);
  // 10 Gbps: 1KB = 800 ns; 100 Gbps: 80 ns.
  EXPECT_EQ(Gbps{10.0}.serializationNs(1000), 800);
  EXPECT_EQ(Gbps{100.0}.serializationNs(1000), 80);
}

TEST(Units, BytesInWindow) {
  EXPECT_DOUBLE_EQ(Gbps{10.0}.bytesIn(800), 1000.0);
}

TEST(Units, Conversions) {
  EXPECT_EQ(usToNs(1.5), 1500);
  EXPECT_EQ(msToNs(2.0), 2'000'000);
  EXPECT_EQ(secToNs(1.0), 1'000'000'000);
  EXPECT_DOUBLE_EQ(nsToSec(500'000'000), 0.5);
}

TEST(Units, RateArithmetic) {
  EXPECT_DOUBLE_EQ((Gbps{100.0} / 2.0).value, 50.0);
  EXPECT_DOUBLE_EQ((Gbps{25.0} * 4.0).value, 100.0);
}

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad = makeError("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
  EXPECT_EQ(bad.valueOr(7), 7);
}

TEST(Result, StatusDefaultOk) {
  Status<Error> s;
  EXPECT_TRUE(s.ok());
  Status<Error> f = makeError("bad");
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.error().message, "bad");
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRangeAndCoversAll) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 8u);
}

TEST(Rng, BetweenCoversSmallRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const std::int64_t x = rng.between(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

// Regression: `hi - lo + 1` in signed arithmetic overflows (UB) for the
// full-width span. The width must be computed in uint64_t, where the span
// wraps to 0 and every raw 64-bit draw is a valid result.
TEST(Rng, BetweenFullInt64RangeIsDefined) {
  Rng rng(7);
  constexpr std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  bool sawNegative = false;
  bool sawPositive = false;
  for (int i = 0; i < 64; ++i) {
    const std::int64_t x = rng.between(lo, hi);
    sawNegative = sawNegative || x < 0;
    sawPositive = sawPositive || x > 0;
  }
  // 64 raw draws land on both halves of the range with near certainty.
  EXPECT_TRUE(sawNegative);
  EXPECT_TRUE(sawPositive);
  // Spans over 2^63 but short of full width also must not overflow.
  const std::int64_t y = rng.between(lo, hi - 1);
  EXPECT_LE(y, hi - 1);
}

TEST(Retry, SucceedsWithoutBackoffOnFirstTry) {
  retry::RetryPolicy policy;
  const auto r = retry::retryWithBackoff(policy, 0, [](int) { return true; });
  EXPECT_TRUE(r.succeeded);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.elapsed, 0);
}

// Regression: backoff grew unclamped as a double (`backoff *= multiplier`
// every attempt), exceeding 2^63 within ~64 attempts; casting that to
// TimeNs is UB. With the clamp, 64 exhausted attempts stay bounded by
// maxAttempts * (attemptTimeout + maxBackoff).
TEST(Retry, SixtyFourAttemptsStayClamped) {
  retry::RetryPolicy policy;
  policy.maxAttempts = 64;
  policy.jitter = 0.0;  // deterministic: every wait is the clamped backoff
  retry::RetryCounters counters;
  const auto r = retry::retryWithBackoff(policy, 1, [](int) { return false; },
                                         &counters);
  EXPECT_FALSE(r.succeeded);
  EXPECT_EQ(r.attempts, 64);
  const TimeNs bound = 64 * (policy.attemptTimeout + policy.maxBackoff);
  EXPECT_GT(r.elapsed, 0);
  EXPECT_LE(r.elapsed, bound);
  EXPECT_EQ(counters.attempts, 64u);
  EXPECT_EQ(counters.retries, 63u);  // the last failure does not wait
  EXPECT_EQ(counters.exhausted, 1u);
  EXPECT_LE(counters.backoffNs,
            static_cast<std::uint64_t>(63 * policy.maxBackoff));
}

TEST(Retry, CountersAccumulateAcrossExchanges) {
  retry::RetryPolicy policy;
  policy.maxAttempts = 3;
  retry::RetryCounters counters;
  // First exchange succeeds on attempt 2, second exhausts all 3.
  retry::retryWithBackoff(policy, 0, [](int i) { return i == 2; }, &counters);
  retry::retryWithBackoff(policy, 1, [](int) { return false; }, &counters);
  EXPECT_EQ(counters.attempts, 5u);
  EXPECT_EQ(counters.retries, 3u);
  EXPECT_EQ(counters.exhausted, 1u);
}

// Regression: maxAttempts < 1 used to fall straight through the loop and
// return {succeeded=false, attempts=0} — indistinguishable from "tried and
// the switch never answered". The guard makes the degenerate policy explicit.
TEST(Retry, ZeroAttemptBudgetIsNeverAttempted) {
  retry::RetryPolicy policy;
  retry::RetryCounters counters;
  for (const int budget : {0, -1, -100}) {
    policy.maxAttempts = budget;
    int calls = 0;
    const auto r = retry::retryWithBackoff(
        policy, 7, [&](int) { ++calls; return true; }, &counters);
    EXPECT_FALSE(r.succeeded) << budget;
    EXPECT_TRUE(r.neverAttempted) << budget;
    EXPECT_EQ(r.attempts, 0) << budget;
    EXPECT_EQ(r.elapsed, 0) << budget;
    EXPECT_EQ(calls, 0) << "attempt fn ran under a zero budget";
  }
  EXPECT_EQ(counters.attempts, 0u);
  EXPECT_EQ(counters.retries, 0u);
  EXPECT_EQ(counters.exhausted, 3u);  // each empty exchange counts as exhausted
  // A normal exhausted exchange is distinguishable: it *did* attempt.
  policy.maxAttempts = 2;
  const auto r = retry::retryWithBackoff(policy, 7, [](int) { return false; });
  EXPECT_FALSE(r.succeeded);
  EXPECT_FALSE(r.neverAttempted);
  EXPECT_EQ(r.attempts, 2);
}

TEST(Retry, DeterministicAcrossRuns) {
  retry::RetryPolicy policy;
  policy.maxAttempts = 6;
  const auto a = retry::retryWithBackoff(policy, 42, [](int) { return false; });
  const auto b = retry::retryWithBackoff(policy, 42, [](int) { return false; });
  EXPECT_EQ(a.elapsed, b.elapsed);
  const auto c = retry::retryWithBackoff(policy, 43, [](int) { return false; });
  EXPECT_NE(a.elapsed, c.elapsed);  // stream id decorrelates jitter
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x \t\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Format) {
  EXPECT_EQ(strFormat("%d-%s", 5, "x"), "5-x");
}

TEST(Strings, HumanReadable) {
  EXPECT_EQ(humanBytes(512), "512 B");
  EXPECT_EQ(humanBytes(2048), "2.00 KiB");
  EXPECT_EQ(humanTime(1500), "1.50us");
  EXPECT_EQ(humanTime(2'500'000), "2.50ms");
}

TEST(Json, ParsePrimitives) {
  auto v = json::parse(R"({"a": 1, "b": true, "c": "x", "d": null, "e": 2.5})");
  ASSERT_TRUE(v.ok()) << v.error().message;
  EXPECT_EQ(v.value().getInt("a", 0), 1);
  EXPECT_TRUE(v.value().getBool("b", false));
  EXPECT_EQ(v.value().getString("c", ""), "x");
  EXPECT_TRUE(v.value().at("d").isNull());
  EXPECT_DOUBLE_EQ(v.value().getDouble("e", 0), 2.5);
}

TEST(Json, ParseNested) {
  auto v = json::parse(R"({"links": [[0,1],[1,2]], "meta": {"k": 4}})");
  ASSERT_TRUE(v.ok());
  const auto& links = v.value().at("links").asArray();
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[1].asArray()[1].asInt(), 2);
  EXPECT_EQ(v.value().at("meta").getInt("k", 0), 4);
}

TEST(Json, Comments) {
  auto v = json::parse("{\n// a comment\n\"a\": 1}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().getInt("a", 0), 1);
}

TEST(Json, StringEscapes) {
  auto v = json::parse(R"(["a\nb", "A"])");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().asArray()[0].asString(), "a\nb");
  EXPECT_EQ(v.value().asArray()[1].asString(), "A");
}

TEST(Json, Errors) {
  EXPECT_FALSE(json::parse("{").ok());
  EXPECT_FALSE(json::parse("[1,]").ok());
  EXPECT_FALSE(json::parse("tru").ok());
  EXPECT_FALSE(json::parse(R"({"a":1} x)").ok());
  EXPECT_FALSE(json::parse("").ok());
}

TEST(Json, DumpRoundTrip) {
  const char* doc = R"({"a":[1,2,{"b":"x"}],"c":true})";
  auto v = json::parse(doc);
  ASSERT_TRUE(v.ok());
  auto round = json::parse(v.value().dump());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().dump(), v.value().dump());
}

TEST(Json, NegativeAndExponentNumbers) {
  auto v = json::parse(R"([-3, 1e3, -2.5e-1])");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().asArray()[0].asInt(), -3);
  EXPECT_DOUBLE_EQ(v.value().asArray()[1].asDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(v.value().asArray()[2].asDouble(), -0.25);
}

}  // namespace
}  // namespace sdt
