// Tests: multi-tenant slicing — capacity-aware admission, cookie/epoch
// namespacing, per-port ingress stamps, scoped reconfiguration, eviction GC,
// and fault containment (tenant/tenant.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "controller/transaction.hpp"
#include "routing/shortest_path.hpp"
#include "sim/control_channel.hpp"
#include "sim/transport.hpp"
#include "tenant/tenant.hpp"
#include "topo/generators.hpp"

namespace sdt {
namespace {

/// Plant with room for two line(4)/ring(4) tenants on two shared switches.
projection::Plant twoTenantPlant(std::size_t flowTableCapacity = 8192) {
  projection::PlantConfig cfg;
  cfg.numSwitches = 2;
  cfg.spec = projection::openflow64x100G();
  cfg.spec.flowTableCapacity = flowTableCapacity;
  cfg.hostPortsPerSwitch = 6;
  cfg.interLinksPerPair = 8;
  auto plant = projection::buildPlant(cfg);
  EXPECT_TRUE(plant.ok());
  return plant.value();
}

/// This slice's entries on switch `sw`, in table order (byte-identity probe).
std::vector<openflow::FlowEntry> tenantEntries(const openflow::Switch& sw,
                                               std::uint16_t tenant) {
  std::vector<openflow::FlowEntry> out;
  for (const openflow::FlowEntry& e : sw.table().entries()) {
    if (openflow::cookieTenant(e.cookie) == tenant) out.push_back(e);
  }
  return out;
}

bool sameEntries(const std::vector<openflow::FlowEntry>& a,
                 const std::vector<openflow::FlowEntry>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!openflow::sameRule(a[i], b[i])) return false;
  }
  return true;
}

class Tenancy : public ::testing::Test {
 protected:
  void SetUp() override {
    lineA_ = topo::makeLine(4);
    lineB_ = topo::makeLine(4);
    ringA_ = topo::makeRing(4);
    routingA_ = std::make_unique<routing::ShortestPathRouting>(lineA_);
    routingB_ = std::make_unique<routing::ShortestPathRouting>(lineB_);
    routingRingA_ = std::make_unique<routing::ShortestPathRouting>(ringA_);
  }

  tenant::TenantSpec specFor(const std::string& name, const topo::Topology& t,
                             const routing::RoutingAlgorithm& r) {
    tenant::TenantSpec spec;
    spec.name = name;
    spec.topology = &t;
    spec.routing = &r;
    spec.spareSelfLinksPerSwitch = 1;
    spec.deploy.requireDeadlockFree = false;  // ring target: cyclic CDG
    return spec;
  }

  topo::Topology lineA_, lineB_, ringA_;
  std::unique_ptr<routing::ShortestPathRouting> routingA_, routingB_, routingRingA_;
};

TEST_F(Tenancy, AdmitTwoSlicesNamespacesCookiesAndStampsHostPorts) {
  tenant::TenantManager mgr(twoTenantPlant());
  auto a = mgr.admit(specFor("alice", lineA_, *routingA_));
  ASSERT_TRUE(a.ok()) << a.error().message;
  auto b = mgr.admit(specFor("bob", lineB_, *routingB_));
  ASSERT_TRUE(b.ok()) << b.error().message;
  EXPECT_EQ(a.value().id, 1);
  EXPECT_EQ(b.value().id, 2);
  EXPECT_EQ(mgr.numTenants(), 2);

  const tenant::TenantSlice* alice = mgr.slice(1);
  const tenant::TenantSlice* bob = mgr.slice(2);
  ASSERT_NE(alice, nullptr);
  ASSERT_NE(bob, nullptr);
  EXPECT_EQ(alice->hostBase, 0u);
  EXPECT_EQ(bob->hostBase, 4u);
  EXPECT_EQ(alice->deployment.epoch, openflow::makeScopedEpoch(1, 1));
  EXPECT_EQ(bob->deployment.epoch, openflow::makeScopedEpoch(2, 1));

  // Every installed entry belongs to exactly one tenant's cookie namespace,
  // and the two-version reservation covers both.
  for (int sw = 0; sw < mgr.plant().numSwitches(); ++sw) {
    const openflow::FlowTable& table = mgr.switches()[sw]->table();
    const std::size_t t1 = table.countTenant(1);
    const std::size_t t2 = table.countTenant(2);
    EXPECT_EQ(t1 + t2, table.size()) << "switch " << sw;
    EXPECT_EQ(mgr.reservedEntries(sw), 2 * (t1 + t2)) << "switch " << sw;
    // No whole-switch stamp: shared hardware never flips globally.
    EXPECT_EQ(mgr.switches()[sw]->ingressEpoch(), 0u);
  }

  // Each slice's host-facing ports carry its scoped epoch.
  for (const tenant::TenantSlice* s : {alice, bob}) {
    for (topo::HostId h = 0; h < s->topology->numHosts(); ++h) {
      const projection::PhysPort pp = s->deployment.projection.hostPortOf(h);
      EXPECT_TRUE(mgr.switches()[pp.sw]->hasPortIngressEpoch(pp.port));
      EXPECT_EQ(mgr.switches()[pp.sw]->portIngressEpoch(pp.port),
                s->deployment.epoch);
    }
  }

  // Carved resources are disjoint: no watched queue belongs to both.
  std::vector<std::pair<int, int>> overlap;
  std::set_intersection(alice->watchPorts.begin(), alice->watchPorts.end(),
                        bob->watchPorts.begin(), bob->watchPorts.end(),
                        std::back_inserter(overlap));
  EXPECT_TRUE(overlap.empty());
}

TEST_F(Tenancy, TrafficFlowsWithinEachSliceWithoutCrosstalk) {
  tenant::TenantManager mgr(twoTenantPlant());
  ASSERT_TRUE(mgr.admit(specFor("alice", lineA_, *routingA_)).ok());
  ASSERT_TRUE(mgr.admit(specFor("bob", lineB_, *routingB_)).ok());

  sim::Simulator sim;
  auto built = mgr.buildNetwork(sim, {}, {2.0, 1.0});
  sim::TransportManager transport(sim, *built.net, {});

  std::vector<std::vector<int>> seenSources(8);
  for (int h = 0; h < 8; ++h) {
    built.net->setSniffer(h, [&seenSources, h](const sim::Packet& p) {
      seenSources[h].push_back(p.srcHost);
    });
  }
  int delivered = 0;
  // Alice = global hosts 0..3, Bob = 4..7; end-to-end in both at once.
  for (const auto& [src, dst] :
       {std::pair{0, 3}, std::pair{3, 0}, std::pair{4, 7}, std::pair{7, 4}}) {
    transport.sendMessage(src, dst, 64 * 1024, 0,
                          [&](std::uint64_t, TimeNs) { ++delivered; });
  }
  sim.run();
  EXPECT_EQ(delivered, 4);
  for (int h = 0; h < 8; ++h) {
    for (const int src : seenSources[h]) {
      EXPECT_EQ(h < 4, src < 4) << "host " << h << " sniffed tenant-foreign " << src;
    }
  }
  EXPECT_EQ(built.net->totalDrops(), 0u);
}

TEST_F(Tenancy, AdmissionRejectsWhenTwoVersionCapacityWouldBreak) {
  // Measure one slice's worst-case per-switch footprint first.
  std::size_t maxPerSwitch = 0;
  {
    tenant::TenantManager probe(twoTenantPlant());
    ASSERT_TRUE(probe.admit(specFor("alice", lineA_, *routingA_)).ok());
    for (int sw = 0; sw < probe.plant().numSwitches(); ++sw) {
      maxPerSwitch = std::max(maxPerSwitch, probe.switches()[sw]->table().countTenant(1));
    }
  }
  ASSERT_GT(maxPerSwitch, 0u);

  // Capacity is exactly one slice's two-version budget on its heaviest
  // switch: the first tenant can always morph, a second must be rejected
  // up front (admitting it would wedge someone's reconfig window).
  tenant::TenantManager mgr(twoTenantPlant(/*flowTableCapacity=*/2 * maxPerSwitch));
  auto a = mgr.admit(specFor("alice", lineA_, *routingA_));
  ASSERT_TRUE(a.ok()) << a.error().message;
  auto b = mgr.admit(specFor("bob", lineB_, *routingB_));
  ASSERT_FALSE(b.ok());
  EXPECT_NE(b.error().message.find("two-version capacity"), std::string::npos)
      << b.error().message;
  // Clean rejection: nothing of bob's touched the shared plane.
  EXPECT_EQ(mgr.numTenants(), 1);
  for (int sw = 0; sw < mgr.plant().numSwitches(); ++sw) {
    EXPECT_EQ(mgr.switches()[sw]->table().countTenant(2), 0u);
  }
}

TEST_F(Tenancy, EvictRemovesOnlyItsOwnNamespaceAndFreesResources) {
  tenant::TenantManager mgr(twoTenantPlant());
  ASSERT_TRUE(mgr.admit(specFor("alice", lineA_, *routingA_)).ok());
  ASSERT_TRUE(mgr.admit(specFor("bob", lineB_, *routingB_)).ok());

  const int n = mgr.plant().numSwitches();
  std::vector<std::vector<openflow::FlowEntry>> bobBefore;
  for (int sw = 0; sw < n; ++sw) {
    bobBefore.push_back(tenantEntries(*mgr.switches()[sw], 2));
  }
  std::vector<projection::PhysPort> aliceHostPorts;
  for (topo::HostId h = 0; h < 4; ++h) {
    aliceHostPorts.push_back(mgr.slice(1)->deployment.projection.hostPortOf(h));
  }

  ASSERT_TRUE(mgr.evict(1).ok());
  EXPECT_EQ(mgr.numTenants(), 1);
  EXPECT_EQ(mgr.slice(1), nullptr);
  for (int sw = 0; sw < n; ++sw) {
    EXPECT_EQ(mgr.switches()[sw]->table().countTenant(1), 0u);
    EXPECT_TRUE(sameEntries(tenantEntries(*mgr.switches()[sw], 2), bobBefore[sw]))
        << "bob's entries disturbed on switch " << sw;
  }
  for (const projection::PhysPort& pp : aliceHostPorts) {
    EXPECT_FALSE(mgr.switches()[pp.sw]->hasPortIngressEpoch(pp.port));
  }
  // Bob's host ports keep their stamps.
  for (topo::HostId h = 0; h < 4; ++h) {
    const projection::PhysPort pp = mgr.slice(2)->deployment.projection.hostPortOf(h);
    EXPECT_EQ(mgr.switches()[pp.sw]->portIngressEpoch(pp.port),
              mgr.slice(2)->deployment.epoch);
  }

  // The freed cables, ports, and host-id range are reusable.
  auto c = mgr.admit(specFor("carol", lineA_, *routingA_));
  ASSERT_TRUE(c.ok()) << c.error().message;
  EXPECT_EQ(c.value().id, 3);
  EXPECT_EQ(mgr.slice(3)->hostBase, 0u);
}

TEST_F(Tenancy, ScopedReconfigLeavesCoTenantByteIdentical) {
  tenant::TenantManager mgr(twoTenantPlant());
  ASSERT_TRUE(mgr.admit(specFor("alice", lineA_, *routingA_)).ok());
  ASSERT_TRUE(mgr.admit(specFor("bob", lineB_, *routingB_)).ok());
  const int n = mgr.plant().numSwitches();

  auto planned = mgr.planSliceUpdate(1, ringA_, *routingRingA_);
  ASSERT_TRUE(planned.ok()) << planned.error().message;
  controller::UpdatePlan plan = std::move(planned).value();
  EXPECT_EQ(plan.fromEpoch, openflow::makeScopedEpoch(1, 1));
  EXPECT_EQ(plan.toEpoch, openflow::makeScopedEpoch(1, 2));
  ASSERT_FALSE(plan.scope.empty());
  ASSERT_EQ(plan.scope.size(), plan.flipPorts.size());

  std::vector<std::vector<openflow::FlowEntry>> bobBefore;
  for (int sw = 0; sw < n; ++sw) {
    bobBefore.push_back(tenantEntries(*mgr.switches()[sw], 2));
  }

  sim::Simulator sim;
  sim::ControlChannel channel(sim, 1);
  tenant::TenantSlice* alice = mgr.mutableSlice(1);
  controller::ReconfigTransaction tx(sim, channel, alice->deployment,
                                     std::move(plan));
  sim.schedule(usToNs(10.0), [&]() { tx.start(); });
  sim.runUntil(msToNs(40.0));
  ASSERT_TRUE(tx.finished());
  ASSERT_TRUE(tx.report().committed) << tx.report().failure;
  EXPECT_TRUE(tx.report().pureStateVerified);
  mgr.noteReconfigured(1, &ringA_, routingRingA_.get());

  // Alice is on her new scoped epoch: old rules gone, host ports re-stamped.
  EXPECT_EQ(alice->deployment.epoch, openflow::makeScopedEpoch(1, 2));
  for (int sw = 0; sw < n; ++sw) {
    EXPECT_EQ(mgr.switches()[sw]->table().countEpoch(openflow::makeScopedEpoch(1, 1)),
              0u);
    EXPECT_EQ(mgr.switches()[sw]->ingressEpoch(), 0u);  // never whole-switch
  }
  for (topo::HostId h = 0; h < 4; ++h) {
    const projection::PhysPort pp = alice->deployment.projection.hostPortOf(h);
    EXPECT_EQ(mgr.switches()[pp.sw]->portIngressEpoch(pp.port),
              openflow::makeScopedEpoch(1, 2));
  }
  // Bob's world is byte-identical: entries, stamps, epoch.
  for (int sw = 0; sw < n; ++sw) {
    EXPECT_TRUE(sameEntries(tenantEntries(*mgr.switches()[sw], 2), bobBefore[sw]))
        << "bob's entries disturbed on switch " << sw;
  }
  for (topo::HostId h = 0; h < 4; ++h) {
    const projection::PhysPort pp = mgr.slice(2)->deployment.projection.hostPortOf(h);
    EXPECT_EQ(mgr.switches()[pp.sw]->portIngressEpoch(pp.port),
              openflow::makeScopedEpoch(2, 1));
  }
}

TEST_F(Tenancy, FaultContainmentRoutesFailuresToOwningSliceOnly) {
  tenant::TenantManager mgr(twoTenantPlant());
  ASSERT_TRUE(mgr.admit(specFor("alice", lineA_, *routingA_)).ok());
  ASSERT_TRUE(mgr.admit(specFor("bob", lineB_, *routingB_)).ok());
  const int n = mgr.plant().numSwitches();

  // Pick one of alice's realized (traffic-carrying) cables.
  const tenant::TenantSlice* alice = mgr.slice(1);
  ASSERT_FALSE(alice->deployment.projection.realizedLinks().empty());
  const projection::RealizedLink rl = alice->deployment.projection.realizedLinks()[0];
  const projection::PhysLink cable =
      rl.interSwitch
          ? mgr.plant().interLinks[alice->interToShared[rl.physLink]]
          : mgr.plant().selfLinks[alice->selfToShared[rl.physLink]];
  EXPECT_EQ(mgr.tenantOwningPort(cable.a), 1);
  EXPECT_EQ(mgr.tenantOwningPort(cable.b), 1);

  std::vector<std::vector<openflow::FlowEntry>> bobBefore;
  for (int sw = 0; sw < n; ++sw) {
    bobBefore.push_back(tenantEntries(*mgr.switches()[sw], 2));
  }

  controller::FailureSet failures;
  failures.ports = {cable.a, cable.b};
  // Bob's repair path sees nothing of alice's failure: a no-op.
  auto bobRepair = mgr.repairSlice(2, failures);
  ASSERT_TRUE(bobRepair.ok());
  EXPECT_EQ(bobRepair.value().remappedLinks, 0);
  EXPECT_EQ(bobRepair.value().flowMods(), 0);

  // Alice's repair lands on her own spare and never disturbs bob.
  auto aliceRepair = mgr.repairSlice(1, failures);
  ASSERT_TRUE(aliceRepair.ok()) << aliceRepair.error().message;
  EXPECT_EQ(aliceRepair.value().remappedLinks, 1);
  EXPECT_FALSE(aliceRepair.value().degraded);
  for (int sw = 0; sw < n; ++sw) {
    EXPECT_TRUE(sameEntries(tenantEntries(*mgr.switches()[sw], 2), bobBefore[sw]))
        << "bob's entries disturbed on switch " << sw;
  }
}

}  // namespace
}  // namespace sdt
