// Tests: MPI-like runtime semantics and the application generators.
#include <gtest/gtest.h>

#include <numeric>

#include "routing/shortest_path.hpp"
#include "topo/generators.hpp"
#include "sim/builder.hpp"
#include "workloads/apps.hpp"
#include "workloads/mpi.hpp"

namespace sdt::workloads {
namespace {

struct Fixture {
  sim::Simulator sim;
  topo::Topology topo;
  std::unique_ptr<routing::ShortestPathRouting> routing;
  sim::BuiltNetwork built;
  std::unique_ptr<sim::TransportManager> transport;

  explicit Fixture(topo::Topology t) : topo(std::move(t)) {
    routing = std::make_unique<routing::ShortestPathRouting>(topo);
    built = sim::buildLogicalNetwork(sim, topo, *routing, {});
    transport = std::make_unique<sim::TransportManager>(sim, *built.net, sim::TransportConfig{});
  }

  MpiRuntime runtime(int ranks) {
    std::vector<int> map(static_cast<std::size_t>(ranks));
    std::iota(map.begin(), map.end(), 0);
    return MpiRuntime(sim, *transport, std::move(map));
  }
};

TEST(Mpi, PingpongCompletes) {
  Fixture f(topo::makeLine(2));
  auto rt = f.runtime(2);
  const Workload w = imbPingpong(2, 1024, 10);
  rt.run(w);
  f.sim.run();
  ASSERT_TRUE(rt.finished());
  EXPECT_GT(rt.completionTime(), 0);
  EXPECT_EQ(rt.messagesSent(), 20);
}

TEST(Mpi, PingpongRttScalesWithIterations) {
  Fixture f1(topo::makeLine(2));
  auto rt1 = f1.runtime(2);
  rt1.run(imbPingpong(2, 1024, 10));
  f1.sim.run();
  Fixture f2(topo::makeLine(2));
  auto rt2 = f2.runtime(2);
  rt2.run(imbPingpong(2, 1024, 20));
  f2.sim.run();
  ASSERT_TRUE(rt1.finished() && rt2.finished());
  const double perIter1 = static_cast<double>(rt1.completionTime()) / 10;
  const double perIter2 = static_cast<double>(rt2.completionTime()) / 20;
  EXPECT_NEAR(perIter1, perIter2, perIter1 * 0.05);
}

TEST(Mpi, RecvBlocksUntilMessage) {
  Fixture f(topo::makeLine(2));
  auto rt = f.runtime(2);
  Workload w;
  w.name = "recv-blocks";
  w.perRank.resize(2);
  // Rank 1 computes for 1 ms before sending; rank 0's recv must wait.
  w.perRank[1].push_back(Op::compute(msToNs(1.0)));
  w.perRank[1].push_back(Op::send(0, 1024, 0));
  w.perRank[0].push_back(Op::recv(1, 0));
  rt.run(w);
  f.sim.run();
  ASSERT_TRUE(rt.finished());
  EXPECT_GT(rt.completionTime(), msToNs(1.0));
}

TEST(Mpi, WildcardRecvMatchesAnySource) {
  Fixture f(topo::makeLine(3));
  auto rt = f.runtime(3);
  Workload w;
  w.name = "wildcard";
  w.perRank.resize(3);
  w.perRank[1].push_back(Op::send(0, 512, 7));
  w.perRank[2].push_back(Op::send(0, 512, 7));
  w.perRank[0].push_back(Op::recv(-1, 7));
  w.perRank[0].push_back(Op::recv(-1, 7));
  rt.run(w);
  f.sim.run();
  EXPECT_TRUE(rt.finished());
}

TEST(Mpi, OutOfOrderArrivalBuffered) {
  Fixture f(topo::makeLine(2));
  auto rt = f.runtime(2);
  Workload w;
  w.name = "ooo";
  w.perRank.resize(2);
  // Sender sends tags 1 then 2; receiver waits for 2 first, then 1: the
  // tag-1 message must be buffered in the mailbox.
  w.perRank[1].push_back(Op::send(0, 64 * 1024, 1));
  w.perRank[1].push_back(Op::send(0, 64, 2));
  w.perRank[0].push_back(Op::recv(1, 2));
  w.perRank[0].push_back(Op::recv(1, 1));
  rt.run(w);
  f.sim.run();
  EXPECT_TRUE(rt.finished());
}

TEST(Mpi, BarrierSynchronizesAllRanks) {
  Fixture f(topo::makeLine(4));
  auto rt = f.runtime(4);
  Workload w;
  w.name = "barrier";
  w.perRank.resize(4);
  // Rank 3 computes longest; everyone leaves the barrier after it.
  for (int r = 0; r < 4; ++r) {
    w.perRank[r].push_back(Op::compute(usToNs(10.0) * (r + 1)));
    w.perRank[r].push_back(Op::barrier());
  }
  rt.run(w);
  f.sim.run();
  ASSERT_TRUE(rt.finished());
  EXPECT_GE(rt.completionTime(), usToNs(40.0));
}

TEST(Mpi, ConsecutiveBarriers) {
  Fixture f(topo::makeLine(3));
  auto rt = f.runtime(3);
  Workload w;
  w.name = "barriers";
  w.perRank.resize(3);
  for (int r = 0; r < 3; ++r) {
    for (int i = 0; i < 5; ++i) w.perRank[r].push_back(Op::barrier());
  }
  rt.run(w);
  f.sim.run();
  EXPECT_TRUE(rt.finished());
}

TEST(Apps, AlltoallDeliversAllMessages) {
  Fixture f(topo::makeFullMesh(4));
  auto rt = f.runtime(4);
  const Workload w = imbAlltoall(4, 2048, 2);
  rt.run(w);
  f.sim.run();
  ASSERT_TRUE(rt.finished());
  // 2 iterations x 4 ranks x 3 peers.
  EXPECT_EQ(rt.messagesSent(), 24);
  EXPECT_EQ(w.totalSendBytes(), 24 * 2048);
}

TEST(Apps, CollectiveBuildingBlocksComplete) {
  Fixture f(topo::makeFullMesh(8));
  auto rt = f.runtime(8);
  Workload w;
  w.name = "collectives";
  w.perRank.resize(8);
  int tag = 0;
  addRingAllreduce(w.perRank, 64 * 1024, tag);
  addSmallAllreduce(w.perRank, 64, tag);
  addBinomialBcast(w.perRank, 3, 32 * 1024, tag);
  addBarrier(w.perRank);
  rt.run(w);
  f.sim.run();
  EXPECT_TRUE(rt.finished());
}

TEST(Apps, HaloExchangeMatchesGridNeighbors) {
  Fixture f(topo::makeFullMesh(8));
  auto rt = f.runtime(8);
  Workload w;
  w.name = "halo";
  w.perRank.resize(8);
  int px, py, pz;
  processGrid3D(8, px, py, pz);
  EXPECT_EQ(px * py * pz, 8);
  int tag = 0;
  addHaloExchange3D(w.perRank, px, py, pz, 4096, tag);
  rt.run(w);
  f.sim.run();
  EXPECT_TRUE(rt.finished());
}

TEST(Apps, ProcessGridIsNearCubic) {
  int px, py, pz;
  processGrid3D(32, px, py, pz);
  EXPECT_EQ(px * py * pz, 32);
  EXPECT_LE(px, 8);
  processGrid3D(27, px, py, pz);
  EXPECT_EQ(px, 3);
  EXPECT_EQ(py, 3);
  EXPECT_EQ(pz, 3);
  processGrid3D(7, px, py, pz);  // prime
  EXPECT_EQ(px, 7);
  EXPECT_EQ(py * pz, 1);
}

class AppSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(AppSweep, RunsToCompletionOnFatTree) {
  const std::string which = GetParam();
  Fixture f(topo::makeFatTree(4));  // 16 hosts
  auto rt = f.runtime(16);
  Workload w;
  if (which == "hpcg") w = hpcg(16, {.iterations = 2, .faceBytes = 8192, .computePerIteration = usToNs(50)});
  if (which == "hpl") w = hpl(16, {.panels = 3, .panelBytes = 64 * 1024, .computePerPanel = usToNs(80)});
  if (which == "minighost") w = miniGhost(16, {.iterations = 2, .faceBytes = 8192, .computePerIteration = usToNs(30)});
  if (which == "minife") w = miniFe(16, {.cgIterations = 3, .haloBytes = 4096, .computePerIteration = usToNs(10)});
  if (which == "alltoall") w = imbAlltoall(16, 4096, 2);
  if (which == "pingpong") w = imbPingpong(16, 4096, 20);
  auto* routing = f.routing.get();
  (void)routing;
  rt.run(w);
  f.sim.run();
  EXPECT_TRUE(rt.finished()) << which;
  EXPECT_GT(rt.completionTime(), 0) << which;
}

INSTANTIATE_TEST_SUITE_P(Apps, AppSweep,
                         ::testing::Values("hpcg", "hpl", "minighost", "minife",
                                           "alltoall", "pingpong"));

TEST(Apps, ComputeCommRatioOrdering) {
  // The Table IV speedup ordering rests on comm-fraction ordering:
  // HPL most compute-heavy, then HPCG, miniGhost, miniFE; IMB pure comm.
  const auto commPerComputeByte = [](const Workload& w) {
    return static_cast<double>(w.totalSendBytes()) /
           std::max<double>(1.0, static_cast<double>(w.totalComputeNs()));
  };
  const double rHpl = commPerComputeByte(hpl(32));
  const double rHpcg = commPerComputeByte(hpcg(32));
  const double rGhost = commPerComputeByte(miniGhost(32));
  const double rFe = commPerComputeByte(miniFe(32));
  EXPECT_LT(rHpl, rHpcg);
  EXPECT_LT(rHpcg, rGhost);
  EXPECT_LT(rGhost, rFe);
  EXPECT_EQ(imbAlltoall(32, 4096, 1).totalComputeNs(), 0);
}

}  // namespace
}  // namespace sdt::workloads
