// Unit + property tests: Topology model and all generators.
#include <gtest/gtest.h>

#include "topo/generators.hpp"
#include "topo/topology.hpp"

namespace sdt::topo {
namespace {

TEST(Topology, ConnectAssignsPortsSequentially) {
  Topology t("t", 2);
  const int l0 = t.connect(0, 1);
  const int l1 = t.connect(0, 1);
  EXPECT_EQ(t.link(l0).a.port, 0);
  EXPECT_EQ(t.link(l1).a.port, 1);
  EXPECT_EQ(t.radix(0), 2);
  EXPECT_EQ(t.fabricRadix(0), 2);
}

TEST(Topology, HostsUsePortsToo) {
  Topology t("t", 1);
  t.addSwitches(1);
  t.connect(0, 1);
  const HostId h = t.attachHost(0);
  EXPECT_EQ(t.hostSwitch(h), 0);
  EXPECT_EQ(t.radix(0), 2);
  EXPECT_EQ(t.fabricRadix(0), 1);
  EXPECT_EQ(t.hostsOf(0).size(), 1u);
}

TEST(Topology, NeighborAndLookup) {
  Topology t("t", 2);
  t.connect(0, 1);
  const auto peer = t.neighborOf(SwitchPort{0, 0});
  ASSERT_TRUE(peer.has_value());
  EXPECT_EQ(peer->sw, 1);
  EXPECT_FALSE(t.neighborOf(SwitchPort{0, 5}).has_value());
  EXPECT_TRUE(t.linkAt(SwitchPort{1, 0}).has_value());
}

TEST(Topology, ValidateCatchesDisconnected) {
  Topology t("t", 4);
  t.connect(0, 1);
  t.connect(2, 3);
  EXPECT_FALSE(t.validate(/*requireConnected=*/true).ok());
  EXPECT_TRUE(t.validate(/*requireConnected=*/false).ok());
}

TEST(Generators, LineShape) {
  const Topology t = makeLine(8);
  EXPECT_EQ(t.numSwitches(), 8);
  EXPECT_EQ(t.numLinks(), 7);
  EXPECT_EQ(t.numHosts(), 8);
  EXPECT_TRUE(t.validate().ok());
  EXPECT_EQ(t.switchGraph().diameter(), 7);
}

TEST(Generators, RingShape) {
  const Topology t = makeRing(6);
  EXPECT_EQ(t.numLinks(), 6);
  EXPECT_EQ(t.switchGraph().diameter(), 3);
}

TEST(Generators, StarShape) {
  const Topology t = makeStar(5);
  EXPECT_EQ(t.numLinks(), 4);
  EXPECT_EQ(t.fabricRadix(0), 4);
}

TEST(Generators, FullMeshShape) {
  const Topology t = makeFullMesh(5);
  EXPECT_EQ(t.numLinks(), 10);
  EXPECT_EQ(t.switchGraph().diameter(), 1);
}

TEST(Generators, HypercubeShape) {
  const Topology t = makeHypercube(4);
  EXPECT_EQ(t.numSwitches(), 16);
  EXPECT_EQ(t.numLinks(), 32);  // n*d/2
  EXPECT_EQ(t.switchGraph().diameter(), 4);
}

// Fat-Tree structural properties (paper Fig. 1: k=4 -> 20 switches, 16 hosts).
class FatTreeTest : public ::testing::TestWithParam<int> {};

TEST_P(FatTreeTest, Structure) {
  const int k = GetParam();
  const Topology t = makeFatTree(k);
  EXPECT_EQ(t.numSwitches(), 5 * k * k / 4);
  EXPECT_EQ(t.numHosts(), k * k * k / 4);
  EXPECT_EQ(t.numLinks(), k * k * k / 2);
  EXPECT_TRUE(t.validate().ok());
  // Every switch has radix k (hosts included for edge switches).
  for (SwitchId sw = 0; sw < t.numSwitches(); ++sw) {
    EXPECT_EQ(t.radix(sw), k) << "switch " << sw;
  }
  // Rearrangeably non-blocking core layer: diameter 4 switch-hops.
  EXPECT_EQ(t.switchGraph().diameter(), 4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FatTreeTest, ::testing::Values(4, 6, 8));

TEST(Generators, FatTreeK4Matches20Switches16Hosts) {
  const Topology t = makeFatTree(4);
  EXPECT_EQ(t.numSwitches(), 20);
  EXPECT_EQ(t.numHosts(), 16);
}

// Dragonfly structural properties (paper: a=4, g=9, h=2).
TEST(Generators, DragonflyStructure) {
  const Topology t = makeDragonfly(4, 9, 2);
  EXPECT_EQ(t.numSwitches(), 36);
  // Local: 9 * C(4,2) = 54; global: C(9,2) = 36 (a*h == g-1).
  EXPECT_EQ(t.numLinks(), 54 + 36);
  EXPECT_TRUE(t.validate().ok());
  // Every router: 3 local + 2 global + 1 host = 6 ports.
  for (SwitchId sw = 0; sw < t.numSwitches(); ++sw) {
    EXPECT_EQ(t.fabricRadix(sw), 5);
  }
  EXPECT_LE(t.switchGraph().diameter(), 3);  // l-g-l
}

TEST(Generators, DragonflyEveryGroupPairLinked) {
  const Topology t = makeDragonfly(4, 9, 2);
  // Count global links per group pair.
  int globalLinks = 0;
  for (const Link& l : t.links()) {
    if (l.a.sw / 4 != l.b.sw / 4) ++globalLinks;
  }
  EXPECT_EQ(globalLinks, 36);
}

class TorusTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TorusTest, Torus3DStructure) {
  const auto [x, y, z] = GetParam();
  const Topology t = makeTorus3D(x, y, z);
  EXPECT_EQ(t.numSwitches(), x * y * z);
  const auto linksInDim = [](int d) { return d > 2 ? d : d - 1; };
  const int expected = x * y * z == 0 ? 0
      : linksInDim(x) * y * z + x * linksInDim(y) * z + x * y * linksInDim(z);
  EXPECT_EQ(t.numLinks(), expected);
  EXPECT_TRUE(t.validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Shapes, TorusTest,
                         ::testing::Values(std::tuple{4, 4, 4}, std::tuple{5, 5, 5},
                                           std::tuple{6, 6, 6}, std::tuple{2, 3, 4}));

TEST(Generators, Torus3D4x4x4LinkCount) {
  // Paper's 4x4x4: 3 * 64 = 192 links.
  EXPECT_EQ(makeTorus3D(4, 4, 4).numLinks(), 192);
}

TEST(Generators, Mesh2DNoWraparound) {
  const Topology t = makeMesh2D(4, 4);
  EXPECT_EQ(t.numLinks(), 2 * 4 * 3);
  EXPECT_EQ(t.switchGraph().diameter(), 6);
}

TEST(Generators, Torus2DWraparound) {
  const Topology t = makeTorus2D(5, 5);
  EXPECT_EQ(t.numLinks(), 50);
  EXPECT_EQ(t.switchGraph().diameter(), 4);
}

TEST(Generators, TorusSize2NoDoubleLinks) {
  // A dimension of size 2 must produce a single link, not a parallel pair.
  const Topology t = makeTorus2D(2, 2);
  EXPECT_EQ(t.numLinks(), 4);
}

TEST(Generators, MeshShapeHelpers) {
  MeshShape s{4, 4, 4};
  const int id = s.index(1, 2, 3);
  EXPECT_EQ(s.xOf(id), 1);
  EXPECT_EQ(s.yOf(id), 2);
  EXPECT_EQ(s.zOf(id), 3);
}

TEST(Generators, HostsPerSwitchOption) {
  const Topology t = makeRing(4, GenOptions{.hostsPerSwitch = 3, .linkSpeed = Gbps{25.0}});
  EXPECT_EQ(t.numHosts(), 12);
  EXPECT_DOUBLE_EQ(t.link(0).speed.value, 25.0);
}

}  // namespace
}  // namespace sdt::topo
