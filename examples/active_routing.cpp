// Active routing on Dragonfly (paper §VI-E): the Network Monitor module
// periodically samples port loads; a UGAL-style policy (based on
// topology-custom UGAL, SC'19) uses them to detour flows through a random
// intermediate group when the minimal global link is congested.
//
// This example builds an adversarial traffic pattern for minimal routing —
// several hot group pairs whose minimal paths share single global links —
// and compares minimal vs active routing.
#include <cstdio>

#include "common/strings.hpp"
#include "controller/monitor.hpp"
#include "routing/adaptive.hpp"
#include "testbed/evaluator.hpp"
#include "topo/generators.hpp"
#include "workloads/mpi.hpp"

using namespace sdt;

namespace {

/// Hot-pair traffic: every router of group 0 sends a large message to the
/// same-index router of group 1 — all of it wants the single 0<->1 global
/// link under minimal routing.
workloads::Workload hotPairs(int a) {
  workloads::Workload w;
  w.name = "hot-group-pairs";
  w.perRank.resize(static_cast<std::size_t>(2 * a));
  // Ranks 0..a-1 live in group 0, ranks a..2a-1 in group 1 (see rank map).
  for (int r = 0; r < a; ++r) {
    w.perRank[r].push_back(workloads::Op::send(a + r, 2 * kMiB, r));
    w.perRank[a + r].push_back(workloads::Op::recv(r, r));
  }
  return w;
}

}  // namespace

int main() {
  const int a = 4, g = 9, h = 2;
  const topo::Topology topo = topo::makeDragonfly(a, g, h);
  // Rank -> host map: group 0's hosts then group 1's hosts.
  std::vector<int> rankMap;
  for (int r = 0; r < a; ++r) rankMap.push_back(r);          // routers 0..3
  for (int r = 0; r < a; ++r) rankMap.push_back(a + r);      // routers 4..7

  std::printf("Dragonfly(%d,%d,%d): group 0 -> group 1 hot traffic (one global link "
              "on the minimal path)\n\n", a, g, h);

  // Minimal routing.
  auto minimal = routing::DragonflyMinimalRouting::create(topo);
  if (!minimal) return 1;
  auto inst1 = testbed::makeFullTestbed(topo, *minimal.value(), {});
  const testbed::RunResult r1 = testbed::runWorkload(inst1, hotPairs(a), rankMap);

  // Active routing fed by the Network Monitor.
  auto adaptive = routing::AdaptiveDragonflyRouting::create(topo);
  if (!adaptive) return 1;
  auto inst2 = testbed::makeFullTestbed(topo, *adaptive.value(), {});
  controller::NetworkMonitor monitor(*inst2.sim, inst2.net(), topo);
  adaptive.value()->setCongestionOracle(monitor.oracle());
  adaptive.value()->setBias(2048.0);
  monitor.start(usToNs(10.0));
  workloads::MpiRuntime runtime(*inst2.sim, *inst2.transport, rankMap);
  runtime.setOnFinished([&monitor]() { monitor.stop(); });
  runtime.run(hotPairs(a));
  inst2.sim->run();
  monitor.stop();
  if (!runtime.finished()) {
    std::fprintf(stderr, "adaptive run did not finish\n");
    return 1;
  }

  std::printf("%-28s %14s\n", "routing", "completion");
  std::printf("%s\n", std::string(44, '-').c_str());
  std::printf("%-28s %14s\n", "dragonfly-minimal", humanTime(r1.act).c_str());
  std::printf("%-28s %14s\n", "dragonfly-adaptive (UGAL)",
              humanTime(runtime.completionTime()).c_str());
  const double gain =
      1.0 - static_cast<double>(runtime.completionTime()) / static_cast<double>(r1.act);
  std::printf("\nactive routing reduced completion time by %.1f%%\n", gain * 100.0);
  return runtime.completionTime() <= r1.act ? 0 : 1;
}
