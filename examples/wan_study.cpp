// WAN study: project Internet-Topology-Zoo-class networks (Table II's
// bottom row) onto a small SDT plant and measure end-to-end latency across
// each, demonstrating SDT beyond data-center fabrics.
#include <cstdio>

#include "common/strings.hpp"
#include "routing/shortest_path.hpp"
#include "testbed/evaluator.hpp"
#include "topo/zoo.hpp"
#include "workloads/apps.hpp"

using namespace sdt;

int main() {
  std::printf("projecting synthetic Topology Zoo WANs onto one SDT plant class\n\n");
  std::printf("%-26s %8s %7s %8s %12s %14s\n", "WAN", "switches", "links",
              "diameter", "flow entries", "pingpong RTT");
  std::printf("%s\n", std::string(82, '-').c_str());

  for (const int index : {3, 12, 47, 101, 200}) {
    const topo::Topology wan = topo::makeZooTopology(index);
    routing::ShortestPathRouting routing(wan);
    auto plant = projection::planPlant(
        {&wan}, {.numSwitches = 3, .spec = projection::openflow128x100G()});
    if (!plant) {
      std::printf("%-26s  does not fit: %s\n", wan.name().c_str(),
                  plant.error().message.c_str());
      continue;
    }
    testbed::InstanceOptions opt;
    // WANs run plain lossy ethernet; shortest-path CDGs may cycle, which is
    // harmless without PFC.
    opt.network.pfcEnabled = false;
    opt.network.ecnEnabled = false;
    opt.deploy.requireDeadlockFree = false;
    auto inst = testbed::makeSdt(wan, routing, plant.value(), opt);
    if (!inst) {
      std::printf("%-26s  deploy failed: %s\n", wan.name().c_str(),
                  inst.error().message.c_str());
      continue;
    }
    // Pingpong across the diameter: hosts on the two most distant switches.
    const topo::Graph graph = wan.switchGraph();
    int bestSrc = 0, bestDst = 0, best = -1;
    for (int v = 0; v < graph.numVertices(); ++v) {
      const auto dist = graph.bfsDistances(v);
      for (int u = 0; u < graph.numVertices(); ++u) {
        if (dist[u] > best) {
          best = dist[u];
          bestSrc = v;
          bestDst = u;
        }
      }
    }
    std::vector<int> rankMap{wan.hostsOf(bestSrc)[0], wan.hostsOf(bestDst)[0]};
    for (int h = 0; h < wan.numHosts() && static_cast<int>(rankMap.size()) < 2; ++h) {
    }
    const int iters = 40;
    workloads::MpiRuntime runtime(*inst.value().sim, *inst.value().transport, rankMap);
    runtime.run(workloads::imbPingpong(2, 512, iters));
    inst.value().sim->run();
    std::printf("%-26s %8d %7d %8d %12d %11.2f us\n", wan.name().c_str(),
                wan.numSwitches(), wan.numLinks(), best,
                inst.value().deployment->totalFlowEntries,
                nsToUs(runtime.completionTime()) / iters);
  }
  std::printf("\nlarger WANs cost more flow entries and longer paths; all of them\n"
              "share the same physical plant, reconfigured in software only.\n");
  return 0;
}
