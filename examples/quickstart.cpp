// Quickstart: the full SDT workflow in one file.
//
//   topology config (JSON)  ->  check  ->  project (Link Projection)  ->
//   compile flow tables     ->  build the testbed  ->  run a workload.
//
// Usage: quickstart [path/to/config.json]
// With no argument it uses an embedded Fat-Tree k=4 config (the same
// content as examples/configs/fattree_k4.json).
#include <cstdio>

#include "common/strings.hpp"
#include "controller/config.hpp"
#include "controller/controller.hpp"
#include "testbed/evaluator.hpp"
#include "workloads/apps.hpp"

using namespace sdt;

namespace {
constexpr const char* kDefaultConfig = R"({
  "topology": {"type": "fattree", "k": 4, "link_gbps": 10},
  "routing": "fattree-dfs",
  "pfc": true, "dcqcn": true, "cut_through": true
})";
}

int main(int argc, char** argv) {
  // 1. Load the user's topology configuration (paper Fig. 2).
  Result<controller::ExperimentConfig> config =
      argc > 1 ? controller::loadExperimentConfig(argv[1])
               : [] {
                   auto doc = json::parse(kDefaultConfig);
                   return controller::parseExperimentConfig(doc.value());
                 }();
  if (!config) {
    std::fprintf(stderr, "config: %s\n", config.error().message.c_str());
    return 1;
  }
  const topo::Topology& topo = config.value().topology;
  std::printf("topology: %s (%d switches, %d hosts, %d links)\n",
              topo.name().c_str(), topo.numSwitches(), topo.numHosts(),
              topo.numLinks());

  // 2. Pick the routing strategy named in the config.
  auto routing = routing::makeRouting(config.value().routingStrategy, topo);
  if (!routing) {
    std::fprintf(stderr, "routing: %s\n", routing.error().message.c_str());
    return 1;
  }

  // 3. Plan a plant (how many commodity switches do we need, and how are
  //    they cabled once at deployment time?).
  auto plant = projection::planPlant(
      {&topo}, {.numSwitches = 2, .spec = projection::openflow128x100G()});
  if (!plant) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    return 1;
  }
  std::printf("plant: %d x %s, %zu self-links, %zu inter-switch links, "
              "%zu host ports\n",
              plant.value().numSwitches(), plant.value().switches[0].model.c_str(),
              plant.value().selfLinks.size(), plant.value().interLinks.size(),
              plant.value().hostPorts.size());

  // 4. Check + deploy: Link Projection and flow-table compilation.
  controller::SdtController ctl(plant.value());
  const controller::CheckReport report = ctl.check({&topo});
  if (!report.ok) {
    for (const std::string& p : report.problems) std::fprintf(stderr, "check: %s\n", p.c_str());
    return 1;
  }
  auto deployment = ctl.deploy(topo, *routing.value());
  if (!deployment) {
    std::fprintf(stderr, "deploy: %s\n", deployment.error().message.c_str());
    return 1;
  }
  std::printf("deployed: %d flow entries (max %d per switch), reconfig time %s\n",
              deployment.value().totalFlowEntries,
              deployment.value().maxEntriesPerSwitch,
              humanTime(deployment.value().reconfigTime).c_str());
  // A peek at the first few compiled rules.
  const auto& table0 = deployment.value().switches[0]->table();
  for (std::size_t i = 0; i < std::min<std::size_t>(3, table0.size()); ++i) {
    const openflow::FlowEntry& e = table0.entries()[i];
    std::printf("  rule[%zu]: prio=%d match=%s -> port %d\n", i, e.priority,
                e.match.describe().c_str(), e.actions.back().arg);
  }

  // 5. Run IMB Pingpong between the first two hosts on the SDT testbed.
  testbed::InstanceOptions opt;
  controller::applyFabricKnobs(config.value(), opt.network);
  auto inst = testbed::makeSdt(topo, *routing.value(), plant.value(), opt);
  if (!inst) {
    std::fprintf(stderr, "testbed: %s\n", inst.error().message.c_str());
    return 1;
  }
  const int iters = 100;
  const testbed::RunResult run = testbed::runWorkload(
      inst.value(), workloads::imbPingpong(topo.numHosts(), 4096, iters));
  std::printf("pingpong host0 <-> host1: RTT %.3f us over %d iterations "
              "(%llu sim events, %llu drops)\n",
              nsToUs(run.act) / iters, iters,
              static_cast<unsigned long long>(run.events),
              static_cast<unsigned long long>(run.drops));
  std::printf("done: the same binary reruns any topology config without rewiring.\n");
  return 0;
}
