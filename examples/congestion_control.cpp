// Congestion-control study on SDT (paper §VI-E: "most existing ethernet
// features can be easily deployed in SDT"): a 7-to-1 RoCE incast on the
// Fig. 10 line topology under four fabric configurations:
//   lossy                      (PFC off, DCQCN off)
//   lossless                   (PFC on,  DCQCN off)   - pure backpressure
//   lossy + ECN/DCQCN          (PFC off, DCQCN on)
//   lossless + ECN/DCQCN       (PFC on,  DCQCN on)    - the RoCEv2 deployment
// Reports completion time, drops, PFC pauses, and CNPs.
#include <cstdio>

#include "common/strings.hpp"
#include "routing/shortest_path.hpp"
#include "testbed/evaluator.hpp"
#include "topo/generators.hpp"
#include "workloads/apps.hpp"

using namespace sdt;

int main() {
  const topo::Topology topo = topo::makeLine(8);
  routing::ShortestPathRouting routing(topo);
  projection::PlantConfig pc;
  pc.numSwitches = 2;
  pc.spec = projection::openflow64x100G();
  pc.hostPortsPerSwitch = 8;
  pc.interLinksPerPair = 8;
  auto plant = projection::buildPlant(pc);
  if (!plant) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    return 1;
  }

  std::printf("7-to-1 RoCE incast (4 MiB per sender) on SDT, line-8 topology\n\n");
  std::printf("%-24s %12s %10s %10s %10s\n", "fabric", "completion", "drops",
              "pauses", "CNPs");
  std::string rule(70, '-');
  std::printf("%s\n", rule.c_str());

  for (const auto& [pfc, dcqcn, label] :
       {std::tuple{false, false, "lossy"},
        std::tuple{true, false, "lossless (PFC)"},
        std::tuple{false, true, "lossy + DCQCN"},
        std::tuple{true, true, "lossless + DCQCN (RoCEv2)"}}) {
    testbed::InstanceOptions opt;
    opt.network.pfcEnabled = pfc;
    opt.network.ecnEnabled = dcqcn;
    opt.transport.dcqcn.enabled = dcqcn;
    auto inst = testbed::makeSdt(topo, routing, plant.value(), opt);
    if (!inst) {
      std::fprintf(stderr, "%s\n", inst.error().message.c_str());
      return 1;
    }
    const int target = 3;
    int done = 0;
    TimeNs lastDone = 0;
    for (int h = 0; h < topo.numHosts(); ++h) {
      if (h == target) continue;
      inst.value().transport->sendMessage(h, target, 4 * kMiB, 0,
                                          [&](std::uint64_t, TimeNs t) {
                                            ++done;
                                            lastDone = std::max(lastDone, t);
                                          });
    }
    inst.value().sim->run();
    std::uint64_t pauses = 0;
    for (int sw = 0; sw < inst.value().net().numSwitches(); ++sw) {
      for (int p = 0; p < inst.value().net().switchPortCount(sw); ++p) {
        pauses += inst.value().net().switchPortCounters(sw, p).pausesSent;
      }
    }
    // RoCE has no retransmission layer here: on lossy fabrics some messages
    // never complete — exactly why RoCEv2 requires a lossless network.
    char completion[32];
    if (done == 7) {
      std::snprintf(completion, sizeof(completion), "%s", humanTime(lastDone).c_str());
    } else {
      std::snprintf(completion, sizeof(completion), "%d/7 done", done);
    }
    std::printf("%-24s %12s %10llu %10llu %10llu\n", label, completion,
                static_cast<unsigned long long>(inst.value().net().totalDrops()),
                static_cast<unsigned long long>(pauses),
                static_cast<unsigned long long>(inst.value().transport->cnpsSent()));
  }
  std::printf("%s\n", rule.c_str());
  std::printf("expected: lossy fabrics drop RoCE traffic and strand transfers\n"
              "(RoCEv2 requires losslessness); PFC completes everything; adding\n"
              "DCQCN slashes PFC pause storms (less head-of-line blocking).\n");
  return 0;
}
