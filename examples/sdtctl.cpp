// sdtctl — command-line front end to the SDT controller, the closest
// equivalent of the paper's "run a configuration file at the controller"
// workflow (Fig. 2).
//
//   sdtctl topo     <config.json>             describe the topology
//   sdtctl check    <config.json...>          can one plant host all of them?
//   sdtctl deploy   <config.json>             project + compile flow tables
//   sdtctl run      <config.json> [workload]  deploy and run a workload
//                                             (pingpong | alltoall | hpcg |
//                                              hpl | minighost | minife |
//                                              incast | partagg)
//   sdtctl feas     <config.json>             Table II feasibility per method
//   sdtctl recover  <from.json> <to.json>     crash-recovery demo: deploy the
//                                             first topology, start a live
//                                             update to the second, kill the
//                                             controller mid-flight
//                                             (--crash-at), optionally reboot
//                                             a switch, then recover from the
//                                             journal
//   sdtctl status                             replay a journal (--journal)
//                                             and print the durable intent
//   sdtctl stats    <config.json> [workload]  deploy, run a short workload
//                                             with the obs registry attached,
//                                             and print the collected metrics
//                                             (Prometheus text, or --json)
//   sdtctl serve    [config.json...]          long-running multi-tenant mode:
//                                             carve the plant into per-tenant
//                                             slices and read admit/evict/
//                                             status/run/metrics commands
//                                             from stdin until quit/EOF.
//                                             `metrics` prints Prometheus
//                                             text with a tenant label on
//                                             every per-slice series.
//                                             --standbys N replicates the
//                                             control plane (leader + N
//                                             standbys); `failover` kills
//                                             the leader and reports the
//                                             takeover.
//   sdtctl trace    <config.json> [to.json]   stage a full traced lifecycle:
//                                             deploy, switch-crash repair, a
//                                             live transactional update (with
//                                             a second config), and a
//                                             journal-driven recovery audit;
//                                             print the spans with per-phase
//                                             timings (--json for
//                                             machine-readable output)
//
// Common flags: --switches N (default 2), --spec 64|128|h3c (default 128),
//               --flex P (add P optical flex pairs per switch, §VII-A)
// Recovery flags: --journal FILE (default in-memory), --json,
//                 --crash-at prepare|mid-install|pre-flip|post-flip|mid-gc,
//                 --reboot-switch N
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "controller/config.hpp"
#include "controller/controller.hpp"
#include "controller/ha.hpp"
#include "controller/journal.hpp"
#include "controller/monitor.hpp"
#include "controller/recovery.hpp"
#include "controller/transaction.hpp"
#include "obs/collectors.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "projection/feasibility.hpp"
#include "sim/control_channel.hpp"
#include "sim/transport.hpp"
#include "tenant/tenant.hpp"
#include "testbed/evaluator.hpp"
#include "workloads/apps.hpp"
#include "workloads/datacenter.hpp"

using namespace sdt;

namespace {

struct CliOptions {
  int switches = 2;
  projection::PhysicalSwitchSpec spec = projection::openflow128x100G();
  int flexPairs = 0;
  int standbys = 0;  ///< serve: replicate the control plane over N standbys
  std::vector<std::string> configs;
  std::string journalPath;  ///< empty: in-memory journal (recover demo only)
  controller::CrashPoint crashAt = controller::CrashPoint::kPreFlip;
  int rebootSwitch = -1;
  bool jsonOut = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: sdtctl <topo|check|deploy|run|feas|recover|status|stats|serve|trace> "
               "<config.json>... \n"
               "       [--switches N] [--spec 64|128|h3c] [--flex P] "
               "[--standbys N for 'serve'] [workload name for 'run']\n"
               "       [--journal FILE] [--json] [--reboot-switch N]\n"
               "       [--crash-at prepare|mid-install|pre-flip|post-flip|mid-gc]\n");
  return 2;
}

Result<CliOptions> parseArgs(int argc, char** argv, std::string& workload) {
  CliOptions opt;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--switches" && i + 1 < argc) {
      opt.switches = std::atoi(argv[++i]);
    } else if (arg == "--journal" && i + 1 < argc) {
      opt.journalPath = argv[++i];
    } else if (arg == "--json") {
      opt.jsonOut = true;
    } else if (arg == "--reboot-switch" && i + 1 < argc) {
      opt.rebootSwitch = std::atoi(argv[++i]);
    } else if (arg == "--crash-at" && i + 1 < argc) {
      const std::string point = argv[++i];
      bool known = false;
      for (const controller::CrashPoint p :
           {controller::CrashPoint::kNone, controller::CrashPoint::kPrepare,
            controller::CrashPoint::kMidInstall, controller::CrashPoint::kPreFlip,
            controller::CrashPoint::kPostFlip, controller::CrashPoint::kMidGc}) {
        if (point == controller::crashPointName(p)) {
          opt.crashAt = p;
          known = true;
        }
      }
      if (!known) return makeError("unknown --crash-at: " + point);
    } else if (arg == "--spec" && i + 1 < argc) {
      const std::string spec = argv[++i];
      if (spec == "64") opt.spec = projection::openflow64x100G();
      else if (spec == "128") opt.spec = projection::openflow128x100G();
      else if (spec == "h3c") opt.spec = projection::h3cS6861();
      else return makeError("unknown --spec: " + spec);
    } else if (arg == "--flex" && i + 1 < argc) {
      opt.flexPairs = std::atoi(argv[++i]);
    } else if (arg == "--standbys" && i + 1 < argc) {
      opt.standbys = std::atoi(argv[++i]);
      if (opt.standbys < 0) return makeError("--standbys must be >= 0");
    } else if (!arg.empty() && arg[0] != '-' && arg.find(".json") != std::string::npos) {
      opt.configs.push_back(arg);
    } else if (!arg.empty() && arg[0] != '-') {
      workload = arg;
    } else {
      return makeError("unknown flag: " + arg);
    }
  }
  // `status` works from the journal alone; every other command needs configs
  // (main enforces the count per command).
  return opt;
}

Result<projection::Plant> makePlant(
    const std::vector<controller::ExperimentConfig>& configs, const CliOptions& opt) {
  std::vector<const topo::Topology*> topos;
  for (const auto& c : configs) topos.push_back(&c.topology);
  auto plant = projection::planPlant(topos, {.numSwitches = opt.switches,
                                             .spec = opt.spec});
  if (!plant) return plant;
  if (opt.flexPairs > 0) {
    if (auto s = projection::addOpticalFlex(plant.value(), opt.flexPairs); !s) {
      return s.error();
    }
  }
  return plant;
}

int cmdTopo(const controller::ExperimentConfig& config) {
  const topo::Topology& t = config.topology;
  std::printf("name:      %s\n", t.name().c_str());
  std::printf("switches:  %d\n", t.numSwitches());
  std::printf("hosts:     %d\n", t.numHosts());
  std::printf("links:     %d (%d fabric ports)\n", t.numLinks(), t.totalFabricPorts());
  std::printf("diameter:  %d switch hops\n", t.switchGraph().diameter());
  std::printf("routing:   %s\n", config.routingStrategy.c_str());
  std::printf("fabric:    pfc=%s dcqcn=%s cut-through=%s\n", config.pfc ? "on" : "off",
              config.dcqcn ? "on" : "off", config.cutThrough ? "on" : "off");
  return 0;
}

int cmdCheck(const std::vector<controller::ExperimentConfig>& configs,
             const CliOptions& opt) {
  auto plant = makePlant(configs, opt);
  if (!plant) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    return 1;
  }
  controller::SdtController ctl(plant.value());
  std::vector<const topo::Topology*> topos;
  for (const auto& c : configs) topos.push_back(&c.topology);
  const controller::CheckReport report = ctl.check(topos);
  std::printf("plant: %d x %s (+%d flex pairs/switch)\n", opt.switches,
              opt.spec.model.c_str(), opt.flexPairs);
  std::printf("check: %s\n", report.ok ? "OK - all topologies deployable" : "FAILED");
  for (const std::string& p : report.problems) std::printf("  problem: %s\n", p.c_str());
  std::printf("worst-case demand: %d self-links/switch, %d inter-links/pair, "
              "%d host ports/switch\n",
              report.maxSelfLinksPerSwitch, report.maxInterLinksPerPair,
              report.maxHostPortsPerSwitch);
  return report.ok ? 0 : 1;
}

int cmdDeploy(const controller::ExperimentConfig& config, const CliOptions& opt) {
  auto plant = makePlant({config}, opt);
  if (!plant) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    return 1;
  }
  auto routing = routing::makeRouting(config.routingStrategy, config.topology);
  if (!routing) {
    std::fprintf(stderr, "routing: %s\n", routing.error().message.c_str());
    return 1;
  }
  controller::SdtController ctl(plant.value());
  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = config.pfc;  // lossless fabrics must be safe
  auto dep = ctl.deploy(config.topology, *routing.value(), dopt);
  if (!dep) {
    std::fprintf(stderr, "deploy: %s\n", dep.error().message.c_str());
    return 1;
  }
  std::printf("deployed '%s' on %d x %s\n", config.topology.name().c_str(),
              opt.switches, opt.spec.model.c_str());
  std::printf("  flow entries: %d total, %d max/switch (capacity %zu)\n",
              dep.value().totalFlowEntries, dep.value().maxEntriesPerSwitch,
              opt.spec.flowTableCapacity);
  std::printf("  reconfiguration time: %s\n",
              humanTime(dep.value().reconfigTime).c_str());
  std::printf("  inter-switch links used: %d, optical circuits: %zu\n",
              dep.value().projection.interSwitchLinkCount(),
              dep.value().projection.opticalCircuits().size());
  return 0;
}

int cmdRun(const controller::ExperimentConfig& config, const CliOptions& opt,
           const std::string& workloadName) {
  auto plant = makePlant({config}, opt);
  if (!plant) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    return 1;
  }
  auto routing = routing::makeRouting(config.routingStrategy, config.topology);
  if (!routing) {
    std::fprintf(stderr, "routing: %s\n", routing.error().message.c_str());
    return 1;
  }
  testbed::InstanceOptions iopt;
  controller::applyFabricKnobs(config, iopt.network);
  iopt.deploy.requireDeadlockFree = config.pfc;
  auto inst = testbed::makeSdt(config.topology, *routing.value(), plant.value(), iopt);
  if (!inst) {
    std::fprintf(stderr, "testbed: %s\n", inst.error().message.c_str());
    return 1;
  }
  const int ranks = std::min(32, config.topology.numHosts());
  workloads::Workload w;
  if (workloadName == "pingpong" || workloadName.empty()) {
    w = workloads::imbPingpong(config.topology.numHosts(), 4096, 100);
  } else if (workloadName == "alltoall") {
    w = workloads::imbAlltoall(ranks, 32 * 1024, 2);
  } else if (workloadName == "hpcg") {
    w = workloads::hpcg(ranks);
  } else if (workloadName == "hpl") {
    w = workloads::hpl(ranks);
  } else if (workloadName == "minighost") {
    w = workloads::miniGhost(ranks);
  } else if (workloadName == "minife") {
    w = workloads::miniFe(ranks);
  } else if (workloadName == "incast") {
    // Sized so each synchronized round (ranks-1 flows) brushes the lossy
    // 256 KiB edge-queue cap without overflowing it: the demo completes,
    // the queue spike is still visible in `sdtctl stats`.
    w = workloads::incast(ranks, 8 * 1024, 8);
  } else if (workloadName == "partagg") {
    w = workloads::partitionAggregate(ranks, 2 * 1024, 16 * 1024, 8);
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", workloadName.c_str());
    return 2;
  }
  const testbed::RunResult run = testbed::runWorkload(inst.value(), w);
  std::printf("workload:     %s\n", w.name.empty() ? workloadName.c_str()
                                                     : w.name.c_str());
  std::printf("deploy time:  %s\n", humanTime(inst.value().deployTime).c_str());
  std::printf("ACT:          %s\n", humanTime(run.act).c_str());
  std::printf("sim events:   %llu (%.2fs wall)\n",
              static_cast<unsigned long long>(run.events), run.wallSeconds);
  std::printf("fabric bytes: %s, drops: %llu\n", humanBytes(run.fabricTxBytes).c_str(),
              static_cast<unsigned long long>(run.drops));
  return 0;
}

int cmdFeas(const controller::ExperimentConfig& config, const CliOptions& opt) {
  using projection::TpMethod;
  std::printf("max projectable link speed for '%s' on 3 switches:\n",
              config.topology.name().c_str());
  for (const TpMethod m : {TpMethod::kSP, TpMethod::kSPOS, TpMethod::kTurboNet,
                           TpMethod::kSDT}) {
    projection::HardwareBudget budget{opt.spec, 3};
    if (m == TpMethod::kTurboNet) {
      budget.spec = opt.spec.numPorts >= 128 ? projection::p4Switch128x100G()
                                             : projection::p4Switch64x100G();
    }
    const projection::SpeedClass s = projection::maxProjectableSpeed(m, config.topology,
                                                                     budget);
    const projection::CostEstimate cost = projection::hardwareCost(m, budget);
    if (s.feasible) {
      std::printf("  %-9s <= %3.0fG (breakout x%d)  cost >$%.0fk  reconfig %s\n",
                  projection::methodName(m), s.linkSpeed.value, s.breakout,
                  cost.hardwareUsd / 1000.0, projection::reconfigRangeLabel(m).c_str());
    } else {
      std::printf("  %-9s infeasible (%s)\n", projection::methodName(m),
                  s.reason.c_str());
    }
  }
  return 0;
}

int cmdStatus(const CliOptions& opt) {
  if (opt.journalPath.empty()) {
    std::fprintf(stderr, "status needs --journal FILE\n");
    return 2;
  }
  controller::FileJournalStorage storage(opt.journalPath);
  const controller::Journal journal(storage);
  auto replayed = journal.replay();
  if (!replayed) {
    std::fprintf(stderr, "journal: %s\n", replayed.error().message.c_str());
    return 1;
  }
  const controller::JournalReplay& rep = replayed.value();
  if (opt.jsonOut) {
    json::Object out;
    json::Array records;
    for (const controller::JournalRecord& r : rep.records) {
      records.push_back(r.toJson());
    }
    out["records"] = std::move(records);
    out["state"] = rep.state.toJson();
    out["droppedBytes"] = static_cast<std::int64_t>(rep.droppedBytes);
    std::printf("%s\n", json::Value(std::move(out)).dump(2).c_str());
    return 0;
  }
  std::printf("journal: %s (%zu records", opt.journalPath.c_str(), rep.records.size());
  if (rep.droppedBytes > 0) {
    std::printf(", %zu torn/corrupt tail bytes dropped", rep.droppedBytes);
  }
  std::printf(")\n");
  for (const controller::JournalRecord& r : rep.records) {
    std::printf("  #%llu %-10s at=%s epoch=%u", static_cast<unsigned long long>(r.seq),
                controller::journalRecordKindName(r.kind), humanTime(r.at).c_str(),
                r.epoch);
    if (r.fromEpoch != 0 || r.toEpoch != 0) {
      std::printf(" tx=%u->%u", r.fromEpoch, r.toEpoch);
    }
    if (!r.topology.empty()) {
      std::printf(" '%s'/%s", r.topology.c_str(), r.routing.c_str());
    }
    std::printf("\n");
  }
  if (!rep.state.valid) {
    std::printf("state: no deployable intent\n");
  } else {
    std::printf("state: '%s'/%s at epoch %u\n", rep.state.topology.c_str(),
                rep.state.routing.c_str(), rep.state.epoch);
  }
  if (rep.state.txOpen) {
    std::printf("open transaction: %u->%u to '%s' (%s -> recovery rolls %s)\n",
                rep.state.txFromEpoch, rep.state.txToEpoch,
                rep.state.txTopology.c_str(),
                rep.state.txFlipped ? "flipped" : "not flipped",
                rep.state.txFlipped ? "forward" : "back");
  }
  return 0;
}

int cmdRecover(const std::vector<controller::ExperimentConfig>& configs,
               const CliOptions& opt) {
  if (configs.size() != 2) {
    std::fprintf(stderr, "recover needs exactly two configs: <from.json> <to.json>\n");
    return 2;
  }
  const controller::ExperimentConfig& from = configs[0];
  const controller::ExperimentConfig& to = configs[1];
  auto plant = makePlant(configs, opt);
  if (!plant) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    return 1;
  }
  auto routingA = routing::makeRouting(from.routingStrategy, from.topology);
  auto routingB = routing::makeRouting(to.routingStrategy, to.topology);
  if (!routingA || !routingB) {
    std::fprintf(stderr, "routing: %s\n",
                 (!routingA ? routingA.error() : routingB.error()).message.c_str());
    return 1;
  }

  // Fresh journal for a self-contained demo (a stale file would carry
  // another run's intent into this one).
  controller::MemoryJournalStorage memStorage;
  std::unique_ptr<controller::FileJournalStorage> fileStorage;
  controller::JournalStorage* storage = &memStorage;
  if (!opt.journalPath.empty()) {
    std::remove(opt.journalPath.c_str());
    fileStorage = std::make_unique<controller::FileJournalStorage>(opt.journalPath);
    storage = fileStorage.get();
  }
  controller::Journal journal(*storage);

  controller::SdtController ctl(plant.value());
  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = from.pfc && to.pfc;
  auto dep = ctl.deploy(from.topology, *routingA.value(), dopt);
  if (!dep) {
    std::fprintf(stderr, "deploy: %s\n", dep.error().message.c_str());
    return 1;
  }
  controller::Deployment deployment = std::move(dep).value();
  if (auto s = controller::journalDeploy(journal, deployment, 0); !s) {
    std::fprintf(stderr, "journal: %s\n", s.error().message.c_str());
    return 1;
  }

  auto plan = ctl.planUpdate(deployment, to.topology, *routingB.value(), dopt);
  if (!plan) {
    std::fprintf(stderr, "planUpdate: %s\n", plan.error().message.c_str());
    return 1;
  }

  std::uint64_t seed = 1;
  if (const char* env = std::getenv("SDT_FAULT_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  sim::Simulator sim;
  sim::ControlChannelConfig ccfg;
  ccfg.dropProb = 0.05;
  ccfg.dupProb = 0.05;
  ccfg.reorderProb = 0.05;
  sim::ControlChannel channel(sim, seed, ccfg);

  controller::ReconfigOptions topt;
  topt.journal = &journal;
  topt.crashAt = opt.crashAt;
  controller::ReconfigTransaction tx(sim, channel, deployment, std::move(plan).value(),
                                     topt);
  tx.start();
  sim.runUntil(msToNs(500.0));
  if (tx.crashed()) {
    std::printf("transaction: crashed at %s (phase reached: %s)\n",
                controller::crashPointName(opt.crashAt),
                controller::reconfigPhaseName(tx.report().phaseReached));
  } else {
    std::printf("transaction: completed without crashing (recovery becomes a "
                "no-drift audit)\n");
  }

  if (opt.rebootSwitch >= 0 &&
      opt.rebootSwitch < static_cast<int>(deployment.switches.size())) {
    deployment.switches[static_cast<std::size_t>(opt.rebootSwitch)]->reboot();
    std::printf("switch %d power-cycled while the controller was down\n",
                opt.rebootSwitch);
  }

  // --- The old controller process is gone. A new one starts from the
  // journal and the plant alone. ---
  controller::IntentCatalog catalog;
  catalog[from.topology.name()] = {&from.topology, routingA.value().get()};
  catalog[to.topology.name()] = {&to.topology, routingB.value().get()};
  auto rplan = controller::planRecovery(ctl, journal, catalog, dopt);
  if (!rplan) {
    std::fprintf(stderr, "planRecovery: %s\n", rplan.error().message.c_str());
    return 1;
  }
  controller::RecoveryOptions ropt;
  ropt.journal = &journal;
  ropt.retry.seed = seed;
  controller::RecoveryRun recovery(sim, channel, deployment.switches,
                                   std::move(rplan).value(), ropt);
  recovery.start();
  sim.runUntil(sim.now() + msToNs(500.0));
  const controller::RecoveryReport& rr = recovery.report();

  if (opt.jsonOut) {
    json::Object out;
    out["transaction"] = tx.report().toJson();
    out["recovery"] = rr.toJson();
    auto replayed = journal.replay();
    if (replayed) out["journal"] = replayed.value().state.toJson();
    std::printf("%s\n", json::Value(std::move(out)).dump(2).c_str());
    return rr.converged ? 0 : 1;
  }
  std::printf("recovery: %s (%s to epoch %u, intent '%s')\n",
              rr.converged ? "CONVERGED" : "FAILED",
              controller::recoveryDecisionName(rr.decision), rr.targetEpoch,
              rr.topology.c_str());
  std::printf("  drift: %d switches (%d rebooted), %d missing / %d extra / "
              "%d restamped rules\n",
              rr.switchesDrifted, rr.switchesRebooted, rr.rulesMissing,
              rr.rulesExtra, rr.rulesRestamped);
  std::printf("  flow-mods: %d (full redeploy would cost %d), %d stats rounds, "
              "%d retries\n",
              rr.flowMods, rr.fullRedeployFlowMods, rr.statsRounds, rr.retriesTotal);
  std::printf("  convergence time: %s, pure state verified: %s\n",
              humanTime(rr.convergenceTime()).c_str(),
              rr.pureStateVerified ? "yes" : "no");
  if (!rr.failure.empty()) std::printf("  failure: %s\n", rr.failure.c_str());
  return rr.converged ? 0 : 1;
}

int cmdStats(const controller::ExperimentConfig& config, const CliOptions& opt,
             const std::string& workloadName) {
  auto plant = makePlant({config}, opt);
  if (!plant) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    return 1;
  }
  auto routing = routing::makeRouting(config.routingStrategy, config.topology);
  if (!routing) {
    std::fprintf(stderr, "routing: %s\n", routing.error().message.c_str());
    return 1;
  }
  testbed::InstanceOptions iopt;
  controller::applyFabricKnobs(config, iopt.network);
  iopt.deploy.requireDeadlockFree = config.pfc;
  auto inst = testbed::makeSdt(config.topology, *routing.value(), plant.value(), iopt);
  if (!inst) {
    std::fprintf(stderr, "testbed: %s\n", inst.error().message.c_str());
    return 1;
  }

  obs::Registry registry;
  obs::registerNetworkCollector(registry, inst.value().net());
  obs::registerSwitchCollector(registry, inst.value().built.ofSwitches);
  controller::NetworkMonitor monitor(*inst.value().sim, inst.value().net(),
                                     config.topology,
                                     inst.value().deployment->projection);
  monitor.attachMetrics(registry, 64);
  monitor.start();

  workloads::Workload w =
      workloadName == "alltoall"
          ? workloads::imbAlltoall(std::min(16, config.topology.numHosts()),
                                   16 * 1024, 2)
          : workloads::imbPingpong(config.topology.numHosts(), 4096, 20);
  // Drive the sim in bounded slices rather than testbed::runWorkload(): the
  // monitor's periodic sampling keeps the event queue non-empty forever, so
  // a drain-the-queue run() would never return.
  std::vector<int> rankToHost(static_cast<std::size_t>(w.numRanks()));
  for (int r = 0; r < w.numRanks(); ++r) rankToHost[static_cast<std::size_t>(r)] = r;
  workloads::MpiRuntime runtime(*inst.value().sim, *inst.value().transport,
                                std::move(rankToHost));
  runtime.run(w);
  sim::Simulator& sim = *inst.value().sim;
  const TimeNs deadline = secToNs(10.0);
  while (!runtime.finished() && sim.now() < deadline) {
    sim.runUntil(sim.now() + msToNs(1.0));
  }
  monitor.stop();
  if (!runtime.finished()) {
    std::fprintf(stderr, "workload did not complete within 10 s of sim time\n");
    return 1;
  }

  if (opt.jsonOut) {
    std::printf("%s\n", obs::metricsToJson(registry).dump(2).c_str());
  } else {
    std::printf("%s", obs::metricsToPrometheus(registry).c_str());
  }
  return 0;
}

int cmdTrace(const std::vector<controller::ExperimentConfig>& configs,
             const CliOptions& opt) {
  auto plant = makePlant(configs, opt);
  if (!plant) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    return 1;
  }
  const controller::ExperimentConfig& from = configs[0];
  auto routingA = routing::makeRouting(from.routingStrategy, from.topology);
  if (!routingA) {
    std::fprintf(stderr, "routing: %s\n", routingA.error().message.c_str());
    return 1;
  }

  obs::Registry registry;
  obs::Tracer tracer;
  sim::Simulator sim;
  controller::SdtController ctl(plant.value());
  ctl.setObservability({&registry, &tracer, [&sim]() { return sim.now(); }});

  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = from.pfc;
  auto dep = ctl.deploy(from.topology, *routingA.value(), dopt);
  if (!dep) {
    std::fprintf(stderr, "deploy: %s\n", dep.error().message.c_str());
    return 1;
  }
  controller::Deployment deployment = std::move(dep).value();

  // Repair demo: power-cycle switch 0 (table gone) and let repair()
  // reinstall it over a control channel that fails each first send, so the
  // repair span carries real retry counters.
  {
    deployment.switches[0]->table().clear();
    controller::FailureSet failures;
    failures.crashedSwitches = {0};
    controller::RepairOptions ropt;
    ropt.controlChannel = [](int attempt) { return attempt >= 2; };
    auto rep = ctl.repair(deployment, from.topology, *routingA.value(), failures,
                          ropt);
    if (!rep) {
      std::fprintf(stderr, "repair: %s\n", rep.error().message.c_str());
      return 1;
    }
  }

  // The recovery demo below replays this journal; the transaction journals
  // its own flip/commit into it so the successor sees the final intent.
  controller::MemoryJournalStorage storage;
  controller::Journal journal(storage);
  if (auto s = controller::journalDeploy(journal, deployment, 0); !s) {
    std::fprintf(stderr, "journal: %s\n", s.error().message.c_str());
    return 1;
  }

  sim::ControlChannelConfig ccfg;
  ccfg.dropProb = 0.05;
  ccfg.dupProb = 0.05;
  sim::ControlChannel channel(sim, 1, ccfg);

  controller::IntentCatalog catalog;
  catalog[from.topology.name()] = {&from.topology, routingA.value().get()};

  std::unique_ptr<routing::RoutingAlgorithm> routingB;
  if (configs.size() >= 2) {
    // Live transactional update to the second topology, over a mildly lossy
    // control channel so the retry counters have something to show.
    const controller::ExperimentConfig& to = configs[1];
    auto routingR = routing::makeRouting(to.routingStrategy, to.topology);
    if (!routingR) {
      std::fprintf(stderr, "routing: %s\n", routingR.error().message.c_str());
      return 1;
    }
    routingB = std::move(routingR).value();
    dopt.requireDeadlockFree = from.pfc && to.pfc;
    auto plan = ctl.planUpdate(deployment, to.topology, *routingB, dopt);
    if (!plan) {
      std::fprintf(stderr, "planUpdate: %s\n", plan.error().message.c_str());
      return 1;
    }
    controller::ReconfigOptions topt;
    topt.tracer = &tracer;
    topt.metrics = &registry;
    topt.journal = &journal;
    controller::ReconfigTransaction tx(sim, channel, deployment,
                                       std::move(plan).value(), topt);
    tx.start();
    sim.runUntil(msToNs(500.0));
    if (!tx.finished()) {
      std::fprintf(stderr, "transaction did not finish within 500 ms\n");
      return 1;
    }
    catalog[to.topology.name()] = {&to.topology, routingB.get()};
  }

  // Recovery demo: a successor controller replays the journal and
  // anti-entropies the fabric (a no-drift audit here — readback, converge,
  // verify — since nothing was lost).
  {
    auto rplan = controller::planRecovery(ctl, journal, catalog, dopt);
    if (!rplan) {
      std::fprintf(stderr, "planRecovery: %s\n", rplan.error().message.c_str());
      return 1;
    }
    controller::RecoveryOptions ropt;
    ropt.journal = &journal;
    ropt.tracer = &tracer;
    ropt.metrics = &registry;
    controller::RecoveryRun recovery(sim, channel, deployment.switches,
                                     std::move(rplan).value(), ropt);
    recovery.start();
    sim.runUntil(sim.now() + msToNs(500.0));
    if (!recovery.finished() || !recovery.report().converged) {
      std::fprintf(stderr, "recovery did not converge within 500 ms\n");
      return 1;
    }
  }

  if (opt.jsonOut) {
    std::printf("%s\n", obs::tracerToJson(tracer).dump(2).c_str());
    return 0;
  }
  const std::vector<obs::Span> spans = tracer.spans();
  std::vector<int> depth(spans.size(), 0);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent != obs::kNoSpan) depth[i] = depth[spans[i].parent] + 1;
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const obs::Span& s = spans[i];
    std::printf("%*s%-28s start=%-12s dur=%-10s", depth[i] * 2, "",
                s.name.c_str(), humanTime(s.start).c_str(),
                humanTime(s.duration()).c_str());
    for (const auto& [k, v] : s.attrs) std::printf(" %s=%s", k.c_str(), v.c_str());
    std::printf("\n");
  }
  return 0;
}

}  // namespace

// -- serve: long-running multi-tenant testbed-as-a-service --------------------

/// One admitted tenant. Owns the loaded config (and with it the topology)
/// and the routing algorithm so the TenantManager's intent pointers stay
/// valid for the slice's whole lifetime.
struct ServeTenant {
  std::uint16_t id = 0;
  std::string name;
  std::unique_ptr<controller::ExperimentConfig> config;
  std::unique_ptr<routing::RoutingAlgorithm> routing;
  std::uint64_t bytesDelivered = 0;     ///< cumulative over `run` bursts
  std::uint64_t messagesDelivered = 0;  ///< ditto
};

int serveAdmit(tenant::TenantManager& mgr,
               std::vector<std::unique_ptr<ServeTenant>>& tenants,
               const std::string& path) {
  auto config = controller::loadExperimentConfig(path);
  if (!config) {
    std::printf("admit %s: %s\n", path.c_str(), config.error().message.c_str());
    return 1;
  }
  auto t = std::make_unique<ServeTenant>();
  t->config = std::make_unique<controller::ExperimentConfig>(std::move(config).value());
  t->name = t->config->topology.name();
  for (const auto& live : tenants) {
    if (live->name == t->name) {
      std::printf("admit %s: tenant '%s' is already live (id %u) — evict it "
                  "first, nothing was carved\n",
                  path.c_str(), t->name.c_str(), live->id);
      return 1;
    }
  }
  auto routing =
      routing::makeRouting(t->config->routingStrategy, t->config->topology);
  if (!routing) {
    std::printf("admit %s: %s\n", path.c_str(), routing.error().message.c_str());
    return 1;
  }
  t->routing = std::move(routing).value();

  tenant::TenantSpec spec;
  spec.name = t->name;
  spec.topology = &t->config->topology;
  spec.routing = t->routing.get();
  spec.spareSelfLinksPerSwitch = 1;
  spec.deploy.requireDeadlockFree = t->config->pfc;
  auto admitted = mgr.admit(spec);
  if (!admitted) {
    std::printf("admit %s: %s\n", path.c_str(), admitted.error().message.c_str());
    return 1;
  }
  t->id = admitted.value().id;
  std::printf("admitted tenant %u '%s': %d hosts, %d flow entries, "
              "peak two-version reservation %.0f%%\n",
              t->id, t->name.c_str(), t->config->topology.numHosts(),
              admitted.value().flowEntries,
              admitted.value().peakReservedFraction * 100.0);
  tenants.push_back(std::move(t));
  return 0;
}

/// Replicated control plane for `serve --standbys N`: one leader plus N
/// standbys over in-sim control channels, attached to the first admitted
/// tenant's slice controller. The `failover` command kills the current
/// leader and drives simulated time until a standby has claimed the term,
/// fenced the old leader, and converged the slice from its journal replica.
struct ServeHa {
  std::uint16_t tenantId = 0;
  std::string tenantName;
  sim::Simulator sim;
  std::unique_ptr<sim::ControlChannel> fabric;
  std::unique_ptr<sim::ControlChannel> repl;
  controller::IntentCatalog catalog;
  std::unique_ptr<controller::ReplicatedController> ha;
};

std::unique_ptr<ServeHa> serveHaAttach(tenant::TenantManager& mgr,
                                       const ServeTenant& t, int standbys) {
  const tenant::TenantSlice* slice = mgr.slice(t.id);
  if (slice == nullptr) return nullptr;
  auto s = std::make_unique<ServeHa>();
  s->tenantId = t.id;
  s->tenantName = t.name;
  s->fabric = std::make_unique<sim::ControlChannel>(s->sim, 1);
  sim::ControlChannelConfig rcfg;
  rcfg.baseDelay = 1'000;  // management network: faster than the fabric
  rcfg.jitter = 500;
  s->repl = std::make_unique<sim::ControlChannel>(s->sim, 102, rcfg);
  controller::HaConfig hcfg;
  hcfg.deploy = slice->deployOptions;
  s->ha = std::make_unique<controller::ReplicatedController>(
      s->sim, *slice->controller, *s->fabric, *s->repl, standbys + 1, hcfg);
  s->catalog[slice->topology->name()] = {slice->topology, slice->routing};
  s->ha->setCatalog(s->catalog);
  // Takeover recompiles run against the tenant's slice controller and are
  // re-scoped so a new leader can only ever touch this tenant's namespace.
  const std::uint16_t id = t.id;
  s->ha->setPlanner([&mgr, id, raw = s.get()](const controller::Journal& journal)
                        -> Result<controller::RecoveryPlan> {
    auto plan = controller::planRecovery(*mgr.slice(id)->controller, journal,
                                         raw->catalog,
                                         mgr.slice(id)->deployOptions);
    if (plan) mgr.scopeRecovery(id, plan.value());
    return plan;
  });
  if (auto adopted = s->ha->adoptDeployment(slice->deployment); !adopted) {
    std::printf("ha: cannot adopt tenant '%s' deployment: %s\n", t.name.c_str(),
                adopted.error().message.c_str());
    return nullptr;
  }
  s->ha->start();
  // Let the adopt record stream and the first heartbeats land so `status`
  // reflects a settled group (sim time only advances inside HA commands).
  s->sim.runUntil(msToNs(1.0));
  std::printf("ha: control plane replicated over %d standby(s) for tenant %u "
              "'%s' (leader replica %d, term %llu)\n",
              standbys, t.id, t.name.c_str(), s->ha->leaderId(),
              static_cast<unsigned long long>(s->ha->term()));
  return s;
}

void serveHaStatus(const ServeHa& s) {
  const controller::ReplicatedController& ha = *s.ha;
  int alive = 0;
  std::uint64_t streamed = 0;
  for (int r = 0; r < ha.numReplicas(); ++r) {
    const controller::ReplicaStatus rs = ha.status(r);
    if (rs.alive) ++alive;
    if (!rs.isLeader) streamed += rs.framesReceived;
  }
  std::printf("  ha: tenant '%s', leader replica %d, term %llu, %d/%d "
              "replicas alive, %llu journal frames replicated, %zu "
              "failover(s), %llu fenced write(s)\n",
              s.tenantName.c_str(), ha.leaderId(),
              static_cast<unsigned long long>(ha.term()), alive,
              ha.numReplicas(), static_cast<unsigned long long>(streamed),
              ha.failovers().size(),
              static_cast<unsigned long long>(ha.fencedWritesTotal()));
}

int serveFailover(ServeHa& s) {
  controller::ReplicatedController& ha = *s.ha;
  int alive = 0;
  for (int r = 0; r < ha.numReplicas(); ++r) {
    if (ha.status(r).alive) ++alive;
  }
  if (alive < 2) {
    std::printf("failover: no live standby left to fail over to\n");
    return 1;
  }
  const std::size_t before = ha.failovers().size();
  const int old = ha.leaderId();
  ha.kill(old);
  s.sim.runUntil(s.sim.now() + msToNs(50.0));
  if (ha.failovers().size() == before || !ha.failovers().back().converged) {
    std::printf("failover: takeover did not converge within 50 ms of sim "
                "time after killing replica %d\n",
                old);
    return 1;
  }
  const controller::FailoverReport& r = ha.failovers().back();
  std::printf("failover: killed leader replica %d; replica %d took over at "
              "term %llu in %.1f us of sim time (%d flow-mods vs %d for a "
              "cold start, %llu stale write(s) fenced)\n",
              old, r.newLeader, static_cast<unsigned long long>(r.toTerm),
              static_cast<double>(r.takeoverWindow()) / 1e3,
              r.recovery.flowMods, r.recovery.fullRedeployFlowMods,
              static_cast<unsigned long long>(ha.fencedWritesTotal()));
  return 0;
}

void serveStatus(const tenant::TenantManager& mgr,
                 const std::vector<std::unique_ptr<ServeTenant>>& tenants) {
  std::printf("tenants: %d\n", mgr.numTenants());
  for (const auto& t : tenants) {
    const tenant::TenantSlice* slice = mgr.slice(t->id);
    if (slice == nullptr) continue;
    std::size_t entries = 0;
    for (const auto& sw : mgr.switches()) entries += sw->table().countTenant(t->id);
    std::printf("  tenant %u '%s': topology %s, %d hosts (global %u..%u), "
                "%zu live flow entries, %llu bytes delivered\n",
                t->id, t->name.c_str(), slice->topology->name().c_str(),
                slice->topology->numHosts(), slice->hostBase,
                slice->hostBase +
                    static_cast<std::uint32_t>(slice->topology->numHosts()) - 1,
                entries, static_cast<unsigned long long>(t->bytesDelivered));
  }
  for (std::size_t sw = 0; sw < mgr.switches().size(); ++sw) {
    std::printf("  switch %zu: %zu/%zu entries reserved (two-version)\n", sw,
                mgr.reservedEntries(static_cast<int>(sw)),
                mgr.plant().switches[sw].flowTableCapacity);
  }
}

/// Build the shared data plane and run a short message burst inside every
/// slice (each logical host sends to its ring successor). Delivered bytes
/// fold into the per-tenant counters `metrics` exports.
void serveRun(tenant::TenantManager& mgr,
              std::vector<std::unique_ptr<ServeTenant>>& tenants, double ms) {
  if (tenants.empty()) {
    std::printf("run: no tenants admitted\n");
    return;
  }
  sim::Simulator sim;
  auto built = mgr.buildNetwork(sim);
  sim::TransportManager transport(sim, *built.net, {});
  for (auto& t : tenants) {
    const tenant::TenantSlice* slice = mgr.slice(t->id);
    const int n = slice->topology->numHosts();
    if (n < 2) continue;
    for (int h = 0; h < n; ++h) {
      const int src = static_cast<int>(slice->hostBase) + h;
      const int dst = static_cast<int>(slice->hostBase) + (h + 1) % n;
      transport.sendMessage(src, dst, 64 * kKiB, 0,
                            [raw = t.get()](std::uint64_t, TimeNs) {
                              raw->bytesDelivered += 64 * kKiB;
                              raw->messagesDelivered += 1;
                            });
    }
  }
  sim.runUntil(msToNs(ms));
  std::printf("ran %.1f ms of traffic across %zu tenant slice(s)\n", ms,
              tenants.size());
}

void serveMetrics(const tenant::TenantManager& mgr,
                  const std::vector<std::unique_ptr<ServeTenant>>& tenants) {
  obs::Registry registry;
  for (const auto& t : tenants) {
    const tenant::TenantSlice* slice = mgr.slice(t->id);
    if (slice == nullptr) continue;
    const obs::Labels labels{{"tenant", t->name}};
    registry
        .gauge("sdt_tenant_hosts", labels, "hosts attached to the tenant slice")
        .set(slice->topology->numHosts());
    std::size_t entries = 0;
    for (const auto& sw : mgr.switches()) entries += sw->table().countTenant(t->id);
    registry
        .gauge("sdt_tenant_flow_entries", labels,
               "live flow entries in the tenant's cookie namespace")
        .set(static_cast<double>(entries));
    registry
        .gauge("sdt_tenant_watch_ports", labels,
               "egress queues the tenant's admission controller samples")
        .set(static_cast<double>(slice->watchPorts.size()));
    registry
        .counter("sdt_tenant_bytes_delivered_total", labels,
                 "application bytes delivered inside the slice by `run` bursts")
        .syncTo(t->bytesDelivered);
    registry
        .counter("sdt_tenant_messages_delivered_total", labels,
                 "messages delivered inside the slice by `run` bursts")
        .syncTo(t->messagesDelivered);
  }
  for (std::size_t sw = 0; sw < mgr.switches().size(); ++sw) {
    registry
        .gauge("sdt_plant_reserved_entries",
               {{"switch", strFormat("%zu", sw)}},
               "two-version flow-table reservation held against the switch")
        .set(static_cast<double>(mgr.reservedEntries(static_cast<int>(sw))));
  }
  std::printf("%s", obs::metricsToPrometheus(registry).c_str());
}

int cmdServe(const CliOptions& opt) {
  projection::PlantConfig pc;
  pc.numSwitches = opt.switches;
  pc.spec = opt.spec;
  auto plant = projection::buildPlant(pc);
  if (!plant) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    return 1;
  }
  if (opt.flexPairs > 0) {
    if (auto s = projection::addOpticalFlex(plant.value(), opt.flexPairs); !s) {
      std::fprintf(stderr, "flex: %s\n", s.error().message.c_str());
      return 1;
    }
  }
  tenant::TenantManager mgr(std::move(plant).value());
  std::vector<std::unique_ptr<ServeTenant>> tenants;
  std::unique_ptr<ServeHa> serveHa;
  // The replicated control plane attaches to the first live tenant; after
  // that tenant is evicted it re-attaches on the next admit.
  const auto maybeAttachHa = [&]() {
    if (opt.standbys > 0 && serveHa == nullptr && !tenants.empty()) {
      serveHa = serveHaAttach(mgr, *tenants.front(), opt.standbys);
    }
  };

  std::printf("sdt tenant service: plant %d x %s, %zu-entry tables\n",
              opt.switches, opt.spec.model.c_str(), opt.spec.flowTableCapacity);
  for (const std::string& path : opt.configs) {
    serveAdmit(mgr, tenants, path);
  }
  maybeAttachHa();
  std::printf("commands: admit <config.json> | evict <id> | status | "
              "run [ms] | metrics%s | quit\n",
              opt.standbys > 0 ? " | failover" : "");

  int unknownCommands = 0;
  char line[1024];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    std::string cmd;
    std::string arg;
    {
      const std::string s(line);
      const std::size_t sp = s.find_first_of(" \t\n");
      cmd = s.substr(0, sp);
      if (sp != std::string::npos) {
        const std::size_t b = s.find_first_not_of(" \t\n", sp);
        const std::size_t e = s.find_last_not_of(" \t\n");
        if (b != std::string::npos && e >= b) arg = s.substr(b, e - b + 1);
      }
    }
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "admit" && !arg.empty()) {
      if (serveAdmit(mgr, tenants, arg) == 0) maybeAttachHa();
    } else if (cmd == "evict" && !arg.empty()) {
      const auto id = static_cast<std::uint16_t>(std::atoi(arg.c_str()));
      // The HA replicas reference the slice controller — detach before the
      // slice (and with it that controller) is torn down.
      if (serveHa != nullptr && serveHa->tenantId == id) {
        std::printf("ha: detaching from tenant %u before eviction\n", id);
        serveHa.reset();
      }
      if (auto s = mgr.evict(id); !s) {
        std::printf("evict %u: %s\n", id, s.error().message.c_str());
      } else {
        std::erase_if(tenants, [id](const auto& t) { return t->id == id; });
        std::printf("evicted tenant %u (entries GC'd, cables freed)\n", id);
      }
    } else if (cmd == "status") {
      serveStatus(mgr, tenants);
      if (serveHa != nullptr) serveHaStatus(*serveHa);
    } else if (cmd == "run") {
      const double ms = arg.empty() ? 5.0 : std::atof(arg.c_str());
      serveRun(mgr, tenants, ms);
    } else if (cmd == "metrics") {
      serveMetrics(mgr, tenants);
    } else if (cmd == "failover") {
      if (serveHa == nullptr) {
        std::printf("failover: no replicated control plane (start serve with "
                    "--standbys N and admit a tenant)\n");
      } else {
        serveFailover(*serveHa);
      }
    } else {
      std::printf("unknown command: %s\n", cmd.c_str());
      ++unknownCommands;
    }
  }
  if (unknownCommands > 0) {
    std::fprintf(stderr, "serve: %d unknown command(s) rejected\n",
                 unknownCommands);
    return 1;
  }
  return 0;
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::string workloadName;
  auto opt = parseArgs(argc, argv, workloadName);
  if (!opt) {
    std::fprintf(stderr, "%s\n", opt.error().message.c_str());
    return usage();
  }
  std::vector<controller::ExperimentConfig> configs;
  for (const std::string& path : opt.value().configs) {
    auto c = controller::loadExperimentConfig(path);
    if (!c) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), c.error().message.c_str());
      return 1;
    }
    configs.push_back(std::move(c).value());
  }
  if (command == "status") return cmdStatus(opt.value());
  if (command == "serve") return cmdServe(opt.value());
  if (configs.empty()) {
    std::fprintf(stderr, "no config file given\n");
    return usage();
  }
  if (command == "topo") return cmdTopo(configs[0]);
  if (command == "check") return cmdCheck(configs, opt.value());
  if (command == "deploy") return cmdDeploy(configs[0], opt.value());
  if (command == "run") return cmdRun(configs[0], opt.value(), workloadName);
  if (command == "feas") return cmdFeas(configs[0], opt.value());
  if (command == "recover") return cmdRecover(configs, opt.value());
  if (command == "stats") return cmdStats(configs[0], opt.value(), workloadName);
  if (command == "trace") return cmdTrace(configs, opt.value());
  return usage();
}
