// sdtctl — command-line front end to the SDT controller, the closest
// equivalent of the paper's "run a configuration file at the controller"
// workflow (Fig. 2).
//
//   sdtctl topo     <config.json>             describe the topology
//   sdtctl check    <config.json...>          can one plant host all of them?
//   sdtctl deploy   <config.json>             project + compile flow tables
//   sdtctl run      <config.json> [workload]  deploy and run a workload
//                                             (pingpong | alltoall | hpcg |
//                                              hpl | minighost | minife)
//   sdtctl feas     <config.json>             Table II feasibility per method
//
// Common flags: --switches N (default 2), --spec 64|128|h3c (default 128),
//               --flex P (add P optical flex pairs per switch, §VII-A)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "controller/config.hpp"
#include "controller/controller.hpp"
#include "projection/feasibility.hpp"
#include "testbed/evaluator.hpp"
#include "workloads/apps.hpp"

using namespace sdt;

namespace {

struct CliOptions {
  int switches = 2;
  projection::PhysicalSwitchSpec spec = projection::openflow128x100G();
  int flexPairs = 0;
  std::vector<std::string> configs;
};

int usage() {
  std::fprintf(stderr,
               "usage: sdtctl <topo|check|deploy|run|feas> <config.json>... \n"
               "       [--switches N] [--spec 64|128|h3c] [--flex P] "
               "[workload name for 'run']\n");
  return 2;
}

Result<CliOptions> parseArgs(int argc, char** argv, std::string& workload) {
  CliOptions opt;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--switches" && i + 1 < argc) {
      opt.switches = std::atoi(argv[++i]);
    } else if (arg == "--spec" && i + 1 < argc) {
      const std::string spec = argv[++i];
      if (spec == "64") opt.spec = projection::openflow64x100G();
      else if (spec == "128") opt.spec = projection::openflow128x100G();
      else if (spec == "h3c") opt.spec = projection::h3cS6861();
      else return makeError("unknown --spec: " + spec);
    } else if (arg == "--flex" && i + 1 < argc) {
      opt.flexPairs = std::atoi(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-' && arg.find(".json") != std::string::npos) {
      opt.configs.push_back(arg);
    } else if (!arg.empty() && arg[0] != '-') {
      workload = arg;
    } else {
      return makeError("unknown flag: " + arg);
    }
  }
  if (opt.configs.empty()) return makeError("no config file given");
  return opt;
}

Result<projection::Plant> makePlant(
    const std::vector<controller::ExperimentConfig>& configs, const CliOptions& opt) {
  std::vector<const topo::Topology*> topos;
  for (const auto& c : configs) topos.push_back(&c.topology);
  auto plant = projection::planPlant(topos, {.numSwitches = opt.switches,
                                             .spec = opt.spec});
  if (!plant) return plant;
  if (opt.flexPairs > 0) {
    if (auto s = projection::addOpticalFlex(plant.value(), opt.flexPairs); !s) {
      return s.error();
    }
  }
  return plant;
}

int cmdTopo(const controller::ExperimentConfig& config) {
  const topo::Topology& t = config.topology;
  std::printf("name:      %s\n", t.name().c_str());
  std::printf("switches:  %d\n", t.numSwitches());
  std::printf("hosts:     %d\n", t.numHosts());
  std::printf("links:     %d (%d fabric ports)\n", t.numLinks(), t.totalFabricPorts());
  std::printf("diameter:  %d switch hops\n", t.switchGraph().diameter());
  std::printf("routing:   %s\n", config.routingStrategy.c_str());
  std::printf("fabric:    pfc=%s dcqcn=%s cut-through=%s\n", config.pfc ? "on" : "off",
              config.dcqcn ? "on" : "off", config.cutThrough ? "on" : "off");
  return 0;
}

int cmdCheck(const std::vector<controller::ExperimentConfig>& configs,
             const CliOptions& opt) {
  auto plant = makePlant(configs, opt);
  if (!plant) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    return 1;
  }
  controller::SdtController ctl(plant.value());
  std::vector<const topo::Topology*> topos;
  for (const auto& c : configs) topos.push_back(&c.topology);
  const controller::CheckReport report = ctl.check(topos);
  std::printf("plant: %d x %s (+%d flex pairs/switch)\n", opt.switches,
              opt.spec.model.c_str(), opt.flexPairs);
  std::printf("check: %s\n", report.ok ? "OK - all topologies deployable" : "FAILED");
  for (const std::string& p : report.problems) std::printf("  problem: %s\n", p.c_str());
  std::printf("worst-case demand: %d self-links/switch, %d inter-links/pair, "
              "%d host ports/switch\n",
              report.maxSelfLinksPerSwitch, report.maxInterLinksPerPair,
              report.maxHostPortsPerSwitch);
  return report.ok ? 0 : 1;
}

int cmdDeploy(const controller::ExperimentConfig& config, const CliOptions& opt) {
  auto plant = makePlant({config}, opt);
  if (!plant) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    return 1;
  }
  auto routing = routing::makeRouting(config.routingStrategy, config.topology);
  if (!routing) {
    std::fprintf(stderr, "routing: %s\n", routing.error().message.c_str());
    return 1;
  }
  controller::SdtController ctl(plant.value());
  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = config.pfc;  // lossless fabrics must be safe
  auto dep = ctl.deploy(config.topology, *routing.value(), dopt);
  if (!dep) {
    std::fprintf(stderr, "deploy: %s\n", dep.error().message.c_str());
    return 1;
  }
  std::printf("deployed '%s' on %d x %s\n", config.topology.name().c_str(),
              opt.switches, opt.spec.model.c_str());
  std::printf("  flow entries: %d total, %d max/switch (capacity %zu)\n",
              dep.value().totalFlowEntries, dep.value().maxEntriesPerSwitch,
              opt.spec.flowTableCapacity);
  std::printf("  reconfiguration time: %s\n",
              humanTime(dep.value().reconfigTime).c_str());
  std::printf("  inter-switch links used: %d, optical circuits: %zu\n",
              dep.value().projection.interSwitchLinkCount(),
              dep.value().projection.opticalCircuits().size());
  return 0;
}

int cmdRun(const controller::ExperimentConfig& config, const CliOptions& opt,
           const std::string& workloadName) {
  auto plant = makePlant({config}, opt);
  if (!plant) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    return 1;
  }
  auto routing = routing::makeRouting(config.routingStrategy, config.topology);
  if (!routing) {
    std::fprintf(stderr, "routing: %s\n", routing.error().message.c_str());
    return 1;
  }
  testbed::InstanceOptions iopt;
  controller::applyFabricKnobs(config, iopt.network);
  iopt.deploy.requireDeadlockFree = config.pfc;
  auto inst = testbed::makeSdt(config.topology, *routing.value(), plant.value(), iopt);
  if (!inst) {
    std::fprintf(stderr, "testbed: %s\n", inst.error().message.c_str());
    return 1;
  }
  const int ranks = std::min(32, config.topology.numHosts());
  workloads::Workload w;
  if (workloadName == "pingpong" || workloadName.empty()) {
    w = workloads::imbPingpong(config.topology.numHosts(), 4096, 100);
  } else if (workloadName == "alltoall") {
    w = workloads::imbAlltoall(ranks, 32 * 1024, 2);
  } else if (workloadName == "hpcg") {
    w = workloads::hpcg(ranks);
  } else if (workloadName == "hpl") {
    w = workloads::hpl(ranks);
  } else if (workloadName == "minighost") {
    w = workloads::miniGhost(ranks);
  } else if (workloadName == "minife") {
    w = workloads::miniFe(ranks);
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", workloadName.c_str());
    return 2;
  }
  const testbed::RunResult run = testbed::runWorkload(inst.value(), w);
  std::printf("workload:     %s\n", w.name.empty() ? workloadName.c_str()
                                                     : w.name.c_str());
  std::printf("deploy time:  %s\n", humanTime(inst.value().deployTime).c_str());
  std::printf("ACT:          %s\n", humanTime(run.act).c_str());
  std::printf("sim events:   %llu (%.2fs wall)\n",
              static_cast<unsigned long long>(run.events), run.wallSeconds);
  std::printf("fabric bytes: %s, drops: %llu\n", humanBytes(run.fabricTxBytes).c_str(),
              static_cast<unsigned long long>(run.drops));
  return 0;
}

int cmdFeas(const controller::ExperimentConfig& config, const CliOptions& opt) {
  using projection::TpMethod;
  std::printf("max projectable link speed for '%s' on 3 switches:\n",
              config.topology.name().c_str());
  for (const TpMethod m : {TpMethod::kSP, TpMethod::kSPOS, TpMethod::kTurboNet,
                           TpMethod::kSDT}) {
    projection::HardwareBudget budget{opt.spec, 3};
    if (m == TpMethod::kTurboNet) {
      budget.spec = opt.spec.numPorts >= 128 ? projection::p4Switch128x100G()
                                             : projection::p4Switch64x100G();
    }
    const projection::SpeedClass s = projection::maxProjectableSpeed(m, config.topology,
                                                                     budget);
    const projection::CostEstimate cost = projection::hardwareCost(m, budget);
    if (s.feasible) {
      std::printf("  %-9s <= %3.0fG (breakout x%d)  cost >$%.0fk  reconfig %s\n",
                  projection::methodName(m), s.linkSpeed.value, s.breakout,
                  cost.hardwareUsd / 1000.0, projection::reconfigRangeLabel(m).c_str());
    } else {
      std::printf("  %-9s infeasible (%s)\n", projection::methodName(m),
                  s.reason.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  std::string workloadName;
  auto opt = parseArgs(argc, argv, workloadName);
  if (!opt) {
    std::fprintf(stderr, "%s\n", opt.error().message.c_str());
    return usage();
  }
  std::vector<controller::ExperimentConfig> configs;
  for (const std::string& path : opt.value().configs) {
    auto c = controller::loadExperimentConfig(path);
    if (!c) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), c.error().message.c_str());
      return 1;
    }
    configs.push_back(std::move(c).value());
  }
  if (command == "topo") return cmdTopo(configs[0]);
  if (command == "check") return cmdCheck(configs, opt.value());
  if (command == "deploy") return cmdDeploy(configs[0], opt.value());
  if (command == "run") return cmdRun(configs[0], opt.value(), workloadName);
  if (command == "feas") return cmdFeas(configs[0], opt.value());
  return usage();
}
