// Topology reconfiguration without rewiring — the core SDT pitch (Fig. 2).
//
// One plant is planned for a *set* of topologies (§IV-B: reserve the maximum
// inter-switch links over all of them); the controller then cycles through
// them, and each switch-over is pure flow-table work with a sub-second
// modeled reconfiguration time. A pingpong runs after every deployment to
// show the new topology is live.
#include <cstdio>

#include "common/strings.hpp"
#include "controller/controller.hpp"
#include "testbed/evaluator.hpp"
#include "topo/generators.hpp"
#include "workloads/apps.hpp"

using namespace sdt;

int main() {
  // The experiment plan: three different topologies, one plant.
  const std::vector<topo::Topology> topologies = {
      topo::makeFatTree(4),
      topo::makeTorus2D(4, 4),
      topo::makeRing(12),
  };
  std::vector<const topo::Topology*> pointers;
  for (const auto& t : topologies) pointers.push_back(&t);

  auto plant = projection::planPlant(
      pointers, {.numSwitches = 2, .spec = projection::openflow128x100G()});
  if (!plant) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    return 1;
  }
  std::printf("one plant for %zu topologies: 2 x %s, %zu self-links, "
              "%zu inter-switch links, %zu host ports\n\n",
              topologies.size(), plant.value().switches[0].model.c_str(),
              plant.value().selfLinks.size(), plant.value().interLinks.size(),
              plant.value().hostPorts.size());

  controller::SdtController ctl(plant.value());
  const controller::CheckReport report = ctl.check(pointers);
  std::printf("checking function: %s (self<=%d/switch, inter<=%d/pair, "
              "hosts<=%d/switch)\n\n",
              report.ok ? "all topologies deployable" : "NOT deployable",
              report.maxSelfLinksPerSwitch, report.maxInterLinksPerPair,
              report.maxHostPortsPerSwitch);
  if (!report.ok) {
    for (const auto& p : report.problems) std::fprintf(stderr, "  %s\n", p.c_str());
    return 1;
  }

  controller::Deployment previous;
  bool first = true;
  for (const topo::Topology& t : topologies) {
    auto routing = routing::makeRouting(t.name().rfind("fattree", 0) == 0
                                            ? "fattree-dfs"
                                            : (t.name().rfind("torus", 0) == 0
                                                   ? "torus-clue"
                                                   : "shortest"),
                                        t);
    if (!routing) {
      std::fprintf(stderr, "routing: %s\n", routing.error().message.c_str());
      return 1;
    }
    controller::DeployOptions dopt;
    // The 12-ring's shortest-path CDG has the classic ring cycle; it runs
    // lossy (PFC off), so skip the lossless-fabric gate for it.
    dopt.requireDeadlockFree = t.name().rfind("ring", 0) != 0;
    auto deployment = first ? ctl.deploy(t, *routing.value(), dopt)
                            : ctl.reconfigure(previous, t, *routing.value(), dopt);
    if (!deployment) {
      std::fprintf(stderr, "deploy %s: %s\n", t.name().c_str(),
                   deployment.error().message.c_str());
      return 1;
    }
    std::printf("%-14s -> %4d flow entries, reconfig %-10s (no cables moved)",
                t.name().c_str(), deployment.value().totalFlowEntries,
                humanTime(deployment.value().reconfigTime).c_str());

    // Prove the topology is live: pingpong across it on the projected plant.
    testbed::InstanceOptions opt;
    opt.deploy = dopt;
    opt.network.pfcEnabled = dopt.requireDeadlockFree;
    auto inst = testbed::makeSdt(t, *routing.value(), plant.value(), opt);
    if (!inst) {
      std::fprintf(stderr, "\ninstance: %s\n", inst.error().message.c_str());
      return 1;
    }
    const int iters = 50;
    const testbed::RunResult run = testbed::runWorkload(
        inst.value(), workloads::imbPingpong(t.numHosts(), 1024, iters));
    std::printf(" | pingpong RTT %.2f us\n", nsToUs(run.act) / iters);

    previous = std::move(deployment).value();
    first = false;
  }
  std::printf("\nthree topologies, zero manual rewiring: that is SDT.\n");
  return 0;
}
