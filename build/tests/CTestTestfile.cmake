# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_zoo[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_flow_table[1]_include.cmake")
include("/root/repo/build/tests/test_plant[1]_include.cmake")
include("/root/repo/build/tests/test_projection[1]_include.cmake")
include("/root/repo/build/tests/test_tp_methods[1]_include.cmake")
include("/root/repo/build/tests/test_feasibility[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_deadlock[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_isolation[1]_include.cmake")
include("/root/repo/build/tests/test_optical_flex[1]_include.cmake")
include("/root/repo/build/tests/test_e2e_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_builder[1]_include.cmake")
include("/root/repo/build/tests/test_example_configs[1]_include.cmake")
