# Empty dependencies file for test_plant.
# This may be replaced when dependencies are built.
