file(REMOVE_RECURSE
  "CMakeFiles/test_example_configs.dir/test_example_configs.cpp.o"
  "CMakeFiles/test_example_configs.dir/test_example_configs.cpp.o.d"
  "test_example_configs"
  "test_example_configs.pdb"
  "test_example_configs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_example_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
