# Empty compiler generated dependencies file for test_example_configs.
# This may be replaced when dependencies are built.
