# Empty compiler generated dependencies file for test_optical_flex.
# This may be replaced when dependencies are built.
