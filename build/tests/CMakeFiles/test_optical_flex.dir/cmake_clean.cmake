file(REMOVE_RECURSE
  "CMakeFiles/test_optical_flex.dir/test_optical_flex.cpp.o"
  "CMakeFiles/test_optical_flex.dir/test_optical_flex.cpp.o.d"
  "test_optical_flex"
  "test_optical_flex.pdb"
  "test_optical_flex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optical_flex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
