file(REMOVE_RECURSE
  "CMakeFiles/test_tp_methods.dir/test_tp_methods.cpp.o"
  "CMakeFiles/test_tp_methods.dir/test_tp_methods.cpp.o.d"
  "test_tp_methods"
  "test_tp_methods.pdb"
  "test_tp_methods[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tp_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
