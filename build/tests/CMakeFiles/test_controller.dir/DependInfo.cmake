
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_controller.cpp" "tests/CMakeFiles/test_controller.dir/test_controller.cpp.o" "gcc" "tests/CMakeFiles/test_controller.dir/test_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/sdt_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/sdt_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sdt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/sdt_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/projection/CMakeFiles/sdt_projection.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/sdt_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/sdt_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/sdt_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sdt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
