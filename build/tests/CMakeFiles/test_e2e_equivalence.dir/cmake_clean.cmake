file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_equivalence.dir/test_e2e_equivalence.cpp.o"
  "CMakeFiles/test_e2e_equivalence.dir/test_e2e_equivalence.cpp.o.d"
  "test_e2e_equivalence"
  "test_e2e_equivalence.pdb"
  "test_e2e_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
