# Empty dependencies file for sdtctl.
# This may be replaced when dependencies are built.
