file(REMOVE_RECURSE
  "CMakeFiles/sdtctl.dir/sdtctl.cpp.o"
  "CMakeFiles/sdtctl.dir/sdtctl.cpp.o.d"
  "sdtctl"
  "sdtctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdtctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
