# Empty compiler generated dependencies file for reconfigure_topologies.
# This may be replaced when dependencies are built.
