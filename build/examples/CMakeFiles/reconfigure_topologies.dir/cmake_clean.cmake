file(REMOVE_RECURSE
  "CMakeFiles/reconfigure_topologies.dir/reconfigure_topologies.cpp.o"
  "CMakeFiles/reconfigure_topologies.dir/reconfigure_topologies.cpp.o.d"
  "reconfigure_topologies"
  "reconfigure_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfigure_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
