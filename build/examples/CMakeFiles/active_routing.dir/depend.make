# Empty dependencies file for active_routing.
# This may be replaced when dependencies are built.
