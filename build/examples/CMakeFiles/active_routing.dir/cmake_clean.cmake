file(REMOVE_RECURSE
  "CMakeFiles/active_routing.dir/active_routing.cpp.o"
  "CMakeFiles/active_routing.dir/active_routing.cpp.o.d"
  "active_routing"
  "active_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
