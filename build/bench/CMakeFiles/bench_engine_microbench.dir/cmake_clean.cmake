file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_microbench.dir/bench_engine_microbench.cpp.o"
  "CMakeFiles/bench_engine_microbench.dir/bench_engine_microbench.cpp.o.d"
  "bench_engine_microbench"
  "bench_engine_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
