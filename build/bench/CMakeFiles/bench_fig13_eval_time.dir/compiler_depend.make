# Empty compiler generated dependencies file for bench_fig13_eval_time.
# This may be replaced when dependencies are built.
