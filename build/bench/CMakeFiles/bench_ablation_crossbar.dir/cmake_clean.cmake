file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_crossbar.dir/bench_ablation_crossbar.cpp.o"
  "CMakeFiles/bench_ablation_crossbar.dir/bench_ablation_crossbar.cpp.o.d"
  "bench_ablation_crossbar"
  "bench_ablation_crossbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_crossbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
