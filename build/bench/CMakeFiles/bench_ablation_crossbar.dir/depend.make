# Empty dependencies file for bench_ablation_crossbar.
# This may be replaced when dependencies are built.
