file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6e_active_routing.dir/bench_sec6e_active_routing.cpp.o"
  "CMakeFiles/bench_sec6e_active_routing.dir/bench_sec6e_active_routing.cpp.o.d"
  "bench_sec6e_active_routing"
  "bench_sec6e_active_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6e_active_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
