# Empty compiler generated dependencies file for bench_sec6e_active_routing.
# This may be replaced when dependencies are built.
