file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_routing.dir/bench_table3_routing.cpp.o"
  "CMakeFiles/bench_table3_routing.dir/bench_table3_routing.cpp.o.d"
  "bench_table3_routing"
  "bench_table3_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
