# Empty dependencies file for bench_table3_routing.
# This may be replaced when dependencies are built.
