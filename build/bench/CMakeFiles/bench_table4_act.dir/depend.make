# Empty dependencies file for bench_table4_act.
# This may be replaced when dependencies are built.
