file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_act.dir/bench_table4_act.cpp.o"
  "CMakeFiles/bench_table4_act.dir/bench_table4_act.cpp.o.d"
  "bench_table4_act"
  "bench_table4_act.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_act.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
