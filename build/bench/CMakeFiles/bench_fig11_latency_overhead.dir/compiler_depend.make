# Empty compiler generated dependencies file for bench_fig11_latency_overhead.
# This may be replaced when dependencies are built.
