file(REMOVE_RECURSE
  "CMakeFiles/sdt_topo.dir/generators.cpp.o"
  "CMakeFiles/sdt_topo.dir/generators.cpp.o.d"
  "CMakeFiles/sdt_topo.dir/graph.cpp.o"
  "CMakeFiles/sdt_topo.dir/graph.cpp.o.d"
  "CMakeFiles/sdt_topo.dir/topology.cpp.o"
  "CMakeFiles/sdt_topo.dir/topology.cpp.o.d"
  "CMakeFiles/sdt_topo.dir/zoo.cpp.o"
  "CMakeFiles/sdt_topo.dir/zoo.cpp.o.d"
  "libsdt_topo.a"
  "libsdt_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
