# Empty compiler generated dependencies file for sdt_topo.
# This may be replaced when dependencies are built.
