file(REMOVE_RECURSE
  "libsdt_topo.a"
)
