file(REMOVE_RECURSE
  "CMakeFiles/sdt_sim.dir/builder.cpp.o"
  "CMakeFiles/sdt_sim.dir/builder.cpp.o.d"
  "CMakeFiles/sdt_sim.dir/network.cpp.o"
  "CMakeFiles/sdt_sim.dir/network.cpp.o.d"
  "CMakeFiles/sdt_sim.dir/simulator.cpp.o"
  "CMakeFiles/sdt_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/sdt_sim.dir/transport.cpp.o"
  "CMakeFiles/sdt_sim.dir/transport.cpp.o.d"
  "libsdt_sim.a"
  "libsdt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
