# Empty dependencies file for sdt_sim.
# This may be replaced when dependencies are built.
