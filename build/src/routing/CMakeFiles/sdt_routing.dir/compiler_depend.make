# Empty compiler generated dependencies file for sdt_routing.
# This may be replaced when dependencies are built.
