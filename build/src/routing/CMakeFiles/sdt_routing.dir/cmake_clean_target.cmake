file(REMOVE_RECURSE
  "libsdt_routing.a"
)
