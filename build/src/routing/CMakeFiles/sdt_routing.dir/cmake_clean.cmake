file(REMOVE_RECURSE
  "CMakeFiles/sdt_routing.dir/adaptive.cpp.o"
  "CMakeFiles/sdt_routing.dir/adaptive.cpp.o.d"
  "CMakeFiles/sdt_routing.dir/deadlock.cpp.o"
  "CMakeFiles/sdt_routing.dir/deadlock.cpp.o.d"
  "CMakeFiles/sdt_routing.dir/dragonfly.cpp.o"
  "CMakeFiles/sdt_routing.dir/dragonfly.cpp.o.d"
  "CMakeFiles/sdt_routing.dir/fat_tree.cpp.o"
  "CMakeFiles/sdt_routing.dir/fat_tree.cpp.o.d"
  "CMakeFiles/sdt_routing.dir/mesh_torus.cpp.o"
  "CMakeFiles/sdt_routing.dir/mesh_torus.cpp.o.d"
  "CMakeFiles/sdt_routing.dir/routing.cpp.o"
  "CMakeFiles/sdt_routing.dir/routing.cpp.o.d"
  "CMakeFiles/sdt_routing.dir/shortest_path.cpp.o"
  "CMakeFiles/sdt_routing.dir/shortest_path.cpp.o.d"
  "libsdt_routing.a"
  "libsdt_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
