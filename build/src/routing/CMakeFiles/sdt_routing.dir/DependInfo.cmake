
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/adaptive.cpp" "src/routing/CMakeFiles/sdt_routing.dir/adaptive.cpp.o" "gcc" "src/routing/CMakeFiles/sdt_routing.dir/adaptive.cpp.o.d"
  "/root/repo/src/routing/deadlock.cpp" "src/routing/CMakeFiles/sdt_routing.dir/deadlock.cpp.o" "gcc" "src/routing/CMakeFiles/sdt_routing.dir/deadlock.cpp.o.d"
  "/root/repo/src/routing/dragonfly.cpp" "src/routing/CMakeFiles/sdt_routing.dir/dragonfly.cpp.o" "gcc" "src/routing/CMakeFiles/sdt_routing.dir/dragonfly.cpp.o.d"
  "/root/repo/src/routing/fat_tree.cpp" "src/routing/CMakeFiles/sdt_routing.dir/fat_tree.cpp.o" "gcc" "src/routing/CMakeFiles/sdt_routing.dir/fat_tree.cpp.o.d"
  "/root/repo/src/routing/mesh_torus.cpp" "src/routing/CMakeFiles/sdt_routing.dir/mesh_torus.cpp.o" "gcc" "src/routing/CMakeFiles/sdt_routing.dir/mesh_torus.cpp.o.d"
  "/root/repo/src/routing/routing.cpp" "src/routing/CMakeFiles/sdt_routing.dir/routing.cpp.o" "gcc" "src/routing/CMakeFiles/sdt_routing.dir/routing.cpp.o.d"
  "/root/repo/src/routing/shortest_path.cpp" "src/routing/CMakeFiles/sdt_routing.dir/shortest_path.cpp.o" "gcc" "src/routing/CMakeFiles/sdt_routing.dir/shortest_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/sdt_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sdt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
