file(REMOVE_RECURSE
  "libsdt_workloads.a"
)
