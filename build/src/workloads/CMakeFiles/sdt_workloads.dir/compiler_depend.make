# Empty compiler generated dependencies file for sdt_workloads.
# This may be replaced when dependencies are built.
