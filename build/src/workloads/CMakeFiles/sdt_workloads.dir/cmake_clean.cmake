file(REMOVE_RECURSE
  "CMakeFiles/sdt_workloads.dir/apps.cpp.o"
  "CMakeFiles/sdt_workloads.dir/apps.cpp.o.d"
  "CMakeFiles/sdt_workloads.dir/mpi.cpp.o"
  "CMakeFiles/sdt_workloads.dir/mpi.cpp.o.d"
  "CMakeFiles/sdt_workloads.dir/trace.cpp.o"
  "CMakeFiles/sdt_workloads.dir/trace.cpp.o.d"
  "libsdt_workloads.a"
  "libsdt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
