file(REMOVE_RECURSE
  "libsdt_testbed.a"
)
