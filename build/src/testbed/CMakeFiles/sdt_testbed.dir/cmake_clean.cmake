file(REMOVE_RECURSE
  "CMakeFiles/sdt_testbed.dir/evaluator.cpp.o"
  "CMakeFiles/sdt_testbed.dir/evaluator.cpp.o.d"
  "libsdt_testbed.a"
  "libsdt_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
