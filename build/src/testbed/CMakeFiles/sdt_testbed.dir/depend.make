# Empty dependencies file for sdt_testbed.
# This may be replaced when dependencies are built.
