file(REMOVE_RECURSE
  "libsdt_projection.a"
)
