
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/projection/feasibility.cpp" "src/projection/CMakeFiles/sdt_projection.dir/feasibility.cpp.o" "gcc" "src/projection/CMakeFiles/sdt_projection.dir/feasibility.cpp.o.d"
  "/root/repo/src/projection/link_projector.cpp" "src/projection/CMakeFiles/sdt_projection.dir/link_projector.cpp.o" "gcc" "src/projection/CMakeFiles/sdt_projection.dir/link_projector.cpp.o.d"
  "/root/repo/src/projection/plant.cpp" "src/projection/CMakeFiles/sdt_projection.dir/plant.cpp.o" "gcc" "src/projection/CMakeFiles/sdt_projection.dir/plant.cpp.o.d"
  "/root/repo/src/projection/projection.cpp" "src/projection/CMakeFiles/sdt_projection.dir/projection.cpp.o" "gcc" "src/projection/CMakeFiles/sdt_projection.dir/projection.cpp.o.d"
  "/root/repo/src/projection/switch_projector.cpp" "src/projection/CMakeFiles/sdt_projection.dir/switch_projector.cpp.o" "gcc" "src/projection/CMakeFiles/sdt_projection.dir/switch_projector.cpp.o.d"
  "/root/repo/src/projection/turbonet.cpp" "src/projection/CMakeFiles/sdt_projection.dir/turbonet.cpp.o" "gcc" "src/projection/CMakeFiles/sdt_projection.dir/turbonet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/sdt_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/sdt_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/sdt_openflow.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sdt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
