file(REMOVE_RECURSE
  "CMakeFiles/sdt_projection.dir/feasibility.cpp.o"
  "CMakeFiles/sdt_projection.dir/feasibility.cpp.o.d"
  "CMakeFiles/sdt_projection.dir/link_projector.cpp.o"
  "CMakeFiles/sdt_projection.dir/link_projector.cpp.o.d"
  "CMakeFiles/sdt_projection.dir/plant.cpp.o"
  "CMakeFiles/sdt_projection.dir/plant.cpp.o.d"
  "CMakeFiles/sdt_projection.dir/projection.cpp.o"
  "CMakeFiles/sdt_projection.dir/projection.cpp.o.d"
  "CMakeFiles/sdt_projection.dir/switch_projector.cpp.o"
  "CMakeFiles/sdt_projection.dir/switch_projector.cpp.o.d"
  "CMakeFiles/sdt_projection.dir/turbonet.cpp.o"
  "CMakeFiles/sdt_projection.dir/turbonet.cpp.o.d"
  "libsdt_projection.a"
  "libsdt_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
