# Empty dependencies file for sdt_projection.
# This may be replaced when dependencies are built.
