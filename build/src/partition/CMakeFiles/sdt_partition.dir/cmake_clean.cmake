file(REMOVE_RECURSE
  "CMakeFiles/sdt_partition.dir/partitioner.cpp.o"
  "CMakeFiles/sdt_partition.dir/partitioner.cpp.o.d"
  "libsdt_partition.a"
  "libsdt_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
