file(REMOVE_RECURSE
  "libsdt_partition.a"
)
