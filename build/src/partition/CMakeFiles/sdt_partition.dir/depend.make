# Empty dependencies file for sdt_partition.
# This may be replaced when dependencies are built.
