file(REMOVE_RECURSE
  "CMakeFiles/sdt_openflow.dir/flow_table.cpp.o"
  "CMakeFiles/sdt_openflow.dir/flow_table.cpp.o.d"
  "CMakeFiles/sdt_openflow.dir/of_switch.cpp.o"
  "CMakeFiles/sdt_openflow.dir/of_switch.cpp.o.d"
  "libsdt_openflow.a"
  "libsdt_openflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_openflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
