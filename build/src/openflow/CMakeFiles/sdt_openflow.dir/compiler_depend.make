# Empty compiler generated dependencies file for sdt_openflow.
# This may be replaced when dependencies are built.
