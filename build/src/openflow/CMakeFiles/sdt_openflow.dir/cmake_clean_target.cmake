file(REMOVE_RECURSE
  "libsdt_openflow.a"
)
