
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/openflow/flow_table.cpp" "src/openflow/CMakeFiles/sdt_openflow.dir/flow_table.cpp.o" "gcc" "src/openflow/CMakeFiles/sdt_openflow.dir/flow_table.cpp.o.d"
  "/root/repo/src/openflow/of_switch.cpp" "src/openflow/CMakeFiles/sdt_openflow.dir/of_switch.cpp.o" "gcc" "src/openflow/CMakeFiles/sdt_openflow.dir/of_switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sdt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
