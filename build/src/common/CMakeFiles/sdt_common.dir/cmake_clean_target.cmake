file(REMOVE_RECURSE
  "libsdt_common.a"
)
