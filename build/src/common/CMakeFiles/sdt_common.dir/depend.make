# Empty dependencies file for sdt_common.
# This may be replaced when dependencies are built.
