file(REMOVE_RECURSE
  "CMakeFiles/sdt_common.dir/json.cpp.o"
  "CMakeFiles/sdt_common.dir/json.cpp.o.d"
  "CMakeFiles/sdt_common.dir/log.cpp.o"
  "CMakeFiles/sdt_common.dir/log.cpp.o.d"
  "CMakeFiles/sdt_common.dir/strings.cpp.o"
  "CMakeFiles/sdt_common.dir/strings.cpp.o.d"
  "libsdt_common.a"
  "libsdt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
