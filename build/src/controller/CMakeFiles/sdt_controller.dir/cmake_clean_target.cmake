file(REMOVE_RECURSE
  "libsdt_controller.a"
)
