# Empty compiler generated dependencies file for sdt_controller.
# This may be replaced when dependencies are built.
