file(REMOVE_RECURSE
  "CMakeFiles/sdt_controller.dir/config.cpp.o"
  "CMakeFiles/sdt_controller.dir/config.cpp.o.d"
  "CMakeFiles/sdt_controller.dir/controller.cpp.o"
  "CMakeFiles/sdt_controller.dir/controller.cpp.o.d"
  "CMakeFiles/sdt_controller.dir/monitor.cpp.o"
  "CMakeFiles/sdt_controller.dir/monitor.cpp.o.d"
  "libsdt_controller.a"
  "libsdt_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdt_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
