// Overload robustness: goodput and SLO curves vs offered load, with the
// admission/backpressure tier on vs off.
//
// The paper's testbed argument assumes the fabric is driven below
// saturation; this bench maps what happens past it. A fat-tree k=4 runs
// lossy (PFC off, the §VI RoCE fabric's failure mode when flow control is
// misconfigured) under a datacenter serving mix — gold partition-aggregate
// queries, silver incast + replication writes, bronze bursty background —
// while the offered load sweeps 0.25x..4x of the saturating rate. Without
// the edge brake, open-loop arrivals pile into the 256 KiB lossy queues,
// flows die on drops (RoCE, no retransmit), and goodput collapses. With
// admission on, injection throttles at the edge: goodput plateaus near
// saturation and the per-class shed order protects gold SLOs. Emits
// BENCH_overload.json with both curves and the headline ratios README cites.
#include <algorithm>
#include <cstdio>

#include "admission/admission.hpp"
#include "bench_util.hpp"
#include "routing/shortest_path.hpp"
#include "workloads/datacenter.hpp"

using namespace sdt;

namespace {

constexpr TimeNs kDuration = msToNs(8.0);

struct LoadPoint {
  double scale = 1.0;
  double goodputGbps = 0.0;      ///< completed application bytes / duration
  double sloGoodputGbps = 0.0;   ///< completed bytes that met their class SLO
  double offeredGbps = 0.0;      ///< admitted-or-not offered bytes / duration
  double completionRate = 0.0;   ///< completed / offered units
  double goldSloHitRate = 1.0;
  double silverSloHitRate = 1.0;
  double bronzeSloHitRate = 1.0;
  double shedFraction = 0.0;     ///< shed units / offered units
  double peakPressure = 0.0;
  std::uint64_t fabricDrops = 0;
};

double sloHitRate(const workloads::ServingRuntime& rt, admission::Priority cls) {
  const auto s = rt.classStats(cls);
  const std::uint64_t scored = s.sloHit + s.sloMiss;
  return scored == 0 ? 1.0
                     : static_cast<double>(s.sloHit) / static_cast<double>(scored);
}

LoadPoint runPoint(bool admissionOn, double scale) {
  const topo::Topology topo = topo::makeFatTree(4);
  const routing::ShortestPathRouting routing(topo);
  testbed::InstanceOptions opt;
  opt.network.pfcEnabled = false;  // lossy fabric: overload drops, not pauses
  auto inst = testbed::makeFullTestbed(topo, routing, opt);

  admission::Policy policy;
  policy.enabled = admissionOn;
  admission::AdmissionController adm(*inst.sim, inst.net(), policy);

  workloads::ServingConfig cfg;
  cfg.duration = kDuration;
  workloads::ServingRuntime rt(*inst.sim, inst.net(), *inst.transport, cfg);
  rt.setAdmission(&adm);

  // Gold: partition-aggregate queries rooted at host 0 over one remote pod.
  workloads::PartitionAggregateSpec pa;
  pa.root = 0;
  pa.workers = {8, 9, 13, 14};
  rt.addPartitionAggregate(pa);
  // Silver: two 15-to-1 incast groups in different pods carry the bulk of
  // the bytes — every flow crosses a drop-prone aggregator edge port. One
  // round (15 x 8 KiB = 120 KiB) fits the 256 KiB lossy queue and takes
  // ~98us to drain the aggregator's 10G edge port, so a 100us round
  // interval puts saturation at scale 1.0: below it rounds drain cleanly,
  // past it they overlap, the queue pins full, and tail-drop spreads
  // packet loss across every concurrent message.
  for (const int aggregator : {4, 10}) {
    workloads::IncastSpec incast;
    incast.aggregator = aggregator;
    for (int h = 0; h < topo.numHosts(); ++h) {
      if (h != aggregator) incast.senders.push_back(h);
    }
    incast.bytesPerFlow = 8 * kKiB;
    incast.meanRoundInterval = usToNs(100.0);
    rt.addIncast(incast);
  }
  // Silver: a replicated write chain.
  workloads::ReplicationSpec repl;
  repl.client = 1;
  repl.primary = 6;
  repl.replicas = {9, 13};
  rt.addReplication(repl);
  // Bronze: light bursty background between everyone (first to shed).
  workloads::BurstyMixSpec mix;
  for (int h = 0; h < topo.numHosts(); ++h) mix.hosts.push_back(h);
  mix.meanFlowInterval = usToNs(200.0);
  rt.addBurstyMix(mix);

  rt.setRateScale(scale);
  adm.start(cfg.start + cfg.duration);
  rt.start();
  inst.sim->run();

  const auto total = rt.totalStats();
  LoadPoint p;
  p.scale = scale;
  // Rate over the *actual* simulated span: generation stops at kDuration but
  // the run drains its backlog, and overloaded arms drain for a long tail.
  // Counting late completions against the nominal window would credit an
  // overloaded fabric with throughput it never sustained.
  const double seconds =
      static_cast<double>(std::max<TimeNs>(kDuration, inst.sim->now())) * 1e-9;
  p.goodputGbps =
      static_cast<double>(total.completedBytes) * 8.0 / seconds * 1e-9;
  p.sloGoodputGbps =
      static_cast<double>(total.sloGoodBytes) * 8.0 / seconds * 1e-9;
  std::int64_t offeredBytes = 0;
  for (const auto cls : {admission::Priority::kGold, admission::Priority::kSilver,
                         admission::Priority::kBronze}) {
    const auto cc = adm.classCounters(cls);
    offeredBytes += cc.admittedBytes + cc.shedBytes;
  }
  p.offeredGbps = static_cast<double>(offeredBytes) * 8.0 / seconds * 1e-9;
  p.completionRate = total.offered == 0
                         ? 0.0
                         : static_cast<double>(total.completed) /
                               static_cast<double>(total.offered);
  p.goldSloHitRate = sloHitRate(rt, admission::Priority::kGold);
  p.silverSloHitRate = sloHitRate(rt, admission::Priority::kSilver);
  p.bronzeSloHitRate = sloHitRate(rt, admission::Priority::kBronze);
  p.shedFraction = total.offered == 0
                       ? 0.0
                       : static_cast<double>(total.shed) /
                             static_cast<double>(total.offered);
  p.peakPressure = adm.peakPressure();
  for (int sw = 0; sw < inst.net().numSwitches(); ++sw) {
    for (int port = 0; port < inst.net().switchPortCount(sw); ++port) {
      p.fabricDrops += inst.net().switchPortCounters(sw, port).drops;
    }
  }
  return p;
}

}  // namespace

int main() {
  const double scales[] = {0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0};

  bench::JsonReport report("overload");
  std::printf("# overload sweep: fat-tree k=4, lossy fabric, serving mix\n");
  std::printf("# slo-goodput = completed bytes that met their class SLO (late work is wasted work)\n");
  std::printf("%-10s %-4s %12s %12s %13s %10s %9s %9s %9s %7s %8s\n", "arm", "x",
              "offered Gb/s", "goodput Gb/s", "slo-gput Gb/s", "complete%",
              "gold-slo", "silver-slo", "bronze-slo", "shed%", "drops");

  double satGoodput = 0.0;   // best admission-on goodput across the sweep
  double onAt4x = 0.0;
  double offAt4x = 0.0;
  double offPeak = 0.0;
  double goldSloAt4x = 0.0;
  for (const bool admissionOn : {false, true}) {
    for (const double scale : scales) {
      const LoadPoint p = runPoint(admissionOn, scale);
      const char* arm = admissionOn ? "admission" : "open-loop";
      std::printf("%-10s %-4.2f %12.2f %12.2f %13.2f %9.1f%% %8.1f%% %8.1f%% %8.1f%% %6.1f%% %8llu\n",
                  arm, scale, p.offeredGbps, p.goodputGbps, p.sloGoodputGbps,
                  p.completionRate * 100.0, p.goldSloHitRate * 100.0,
                  p.silverSloHitRate * 100.0, p.bronzeSloHitRate * 100.0,
                  p.shedFraction * 100.0,
                  static_cast<unsigned long long>(p.fabricDrops));
      report.row(admissionOn ? "admission_on" : "admission_off",
                 {{"scale", p.scale},
                  {"offered_gbps", p.offeredGbps},
                  {"goodput_gbps", p.goodputGbps},
                  {"slo_goodput_gbps", p.sloGoodputGbps},
                  {"completion_rate", p.completionRate},
                  {"gold_slo_hit_rate", p.goldSloHitRate},
                  {"silver_slo_hit_rate", p.silverSloHitRate},
                  {"bronze_slo_hit_rate", p.bronzeSloHitRate},
                  {"shed_fraction", p.shedFraction},
                  {"peak_pressure", p.peakPressure},
                  {"fabric_drops", static_cast<std::int64_t>(p.fabricDrops)}});
      if (admissionOn) {
        satGoodput = std::max(satGoodput, p.sloGoodputGbps);
        if (scale == 4.0) {
          onAt4x = p.sloGoodputGbps;
          goldSloAt4x = p.goldSloHitRate;
        }
      } else {
        offPeak = std::max(offPeak, p.sloGoodputGbps);
        if (scale == 4.0) offAt4x = p.sloGoodputGbps;
      }
    }
  }

  // Headline ratios (the graceful-degradation acceptance criteria), scored
  // on SLO-goodput — bytes that completed within their class SLO, the work
  // the application actually banked:
  //  - plateau: admission-on SLO-goodput at 4x capacity / best-seen;
  //  - collapse: how far the open-loop arm fell from ITS OWN peak at 4x.
  const double plateau = satGoodput > 0.0 ? onAt4x / satGoodput : 0.0;
  const double collapse = offPeak > 0.0 ? offAt4x / offPeak : 0.0;
  std::printf("# admission-on plateau at 4x: %.1f%% of saturation SLO-goodput\n",
              plateau * 100.0);
  std::printf("# open-loop at 4x: %.1f%% of its own peak SLO-goodput (collapse)\n",
              collapse * 100.0);
  std::printf("# gold SLO hit-rate at 4x (admission on): %.1f%%\n",
              goldSloAt4x * 100.0);
  report.set("saturation_goodput_gbps", satGoodput);
  report.set("plateau_ratio_at_4x", plateau);
  report.set("open_loop_collapse_ratio_at_4x", collapse);
  report.set("gold_slo_hit_rate_at_4x", goldSloAt4x);
  report.write();
  return 0;
}
