// Fig. 11 reproduction: additional overhead SDT introduces on 8-hop latency.
//
// Paper setup (§VI-B1, Fig. 10): 8 switches in a line, one node each,
// 10 Gbps links, IMB Pingpong node1 <-> node8, RoCEv2 with ECN disabled,
// message lengths swept (-msglen). Overhead = (l_s - l_r) / l_r.
// Expected shape: overhead positive, <= ~2%, shrinking as messages grow.
#include <cstdio>

#include "bench_util.hpp"
#include "routing/shortest_path.hpp"
#include "workloads/apps.hpp"

using namespace sdt;

int main() {
  std::printf("== Fig. 11: SDT extra overhead on 8-hop RTT (line-8, RoCE, ECN off) ==\n");
  const topo::Topology topo = topo::makeLine(8);
  routing::ShortestPathRouting routing(topo);

  testbed::InstanceOptions opt;
  opt.network.ecnEnabled = false;  // paper: ECN-disabled for the latency test
  // node1 <-> node8: ranks 0/1 on hosts 0 and 7.
  const std::vector<int> rankMap{0, 7, 1, 2, 3, 4, 5, 6};

  projection::PlantConfig pc;
  pc.numSwitches = 2;
  pc.spec = projection::openflow64x100G();
  pc.hostPortsPerSwitch = 8;
  pc.interLinksPerPair = 8;
  auto plant = projection::buildPlant(pc);
  if (!plant) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    return 1;
  }

  std::printf("%10s %14s %14s %10s\n", "msglen", "RTT full (us)", "RTT SDT (us)",
              "overhead");
  bench::printRule(52);
  bool shapeOk = true;
  double previousOverhead = 1.0;
  bool monotoneOverall = true;
  for (const std::int64_t bytes :
       {1LL, 64LL, 256LL, 1024LL, 4096LL, 16384LL, 65536LL, 262144LL, 1048576LL,
        4194304LL}) {
    const int iters = bytes >= 262144 ? 5 : 20;
    const workloads::Workload w = workloads::imbPingpong(8, bytes, iters);

    auto full = testbed::makeFullTestbed(topo, routing, opt);
    const testbed::RunResult fr = testbed::runWorkload(full, w, rankMap);
    auto sdt = testbed::makeSdt(topo, routing, plant.value(), opt);
    if (!sdt) {
      std::fprintf(stderr, "sdt: %s\n", sdt.error().message.c_str());
      return 1;
    }
    const testbed::RunResult sr = testbed::runWorkload(sdt.value(), w, rankMap);

    const double rttFull = nsToUs(fr.act) / iters;
    const double rttSdt = nsToUs(sr.act) / iters;
    const double overhead = (rttSdt - rttFull) / rttFull;
    std::printf("%10lld %14.3f %14.3f %9.3f%%\n", static_cast<long long>(bytes),
                rttFull, rttSdt, overhead * 100.0);
    if (overhead < 0.0 || overhead > 0.02) shapeOk = false;
    if (bytes >= 1024 && overhead > previousOverhead + 1e-4) monotoneOverall = false;
    previousOverhead = overhead;
  }
  bench::printRule(52);
  std::printf("shape: overhead in (0, 2%%] everywhere: %s; shrinking with size: %s\n",
              shapeOk ? "YES" : "NO", monotoneOverall ? "YES" : "NO");
  std::printf("paper: overheads below 1.6%%, decreasing with message length\n");
  return shapeOk ? 0 : 1;
}
