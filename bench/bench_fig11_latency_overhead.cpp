// Fig. 11 reproduction: additional overhead SDT introduces on 8-hop latency.
//
// Paper setup (§VI-B1, Fig. 10): 8 switches in a line, one node each,
// 10 Gbps links, IMB Pingpong node1 <-> node8, RoCEv2 with ECN disabled,
// message lengths swept (-msglen). Overhead = (l_s - l_r) / l_r.
// Expected shape: overhead positive, <= ~2%, shrinking as messages grow.
//
// The message-length points are independent; testbed::SweepRunner fans them
// out and the reported table is bit-identical to a serial sweep.
#include <cstdio>
#include <stdexcept>

#include "bench_util.hpp"
#include "routing/shortest_path.hpp"
#include "testbed/sweep.hpp"
#include "workloads/apps.hpp"

using namespace sdt;

namespace {

struct Point {
  std::int64_t bytes = 0;
  double rttFullUs = 0.0;
  double rttSdtUs = 0.0;
  double overhead = 0.0;
};

}  // namespace

int main() {
  std::printf("== Fig. 11: SDT extra overhead on 8-hop RTT (line-8, RoCE, ECN off) ==\n");
  const topo::Topology topo = topo::makeLine(8);
  const routing::ShortestPathRouting routing(topo);

  testbed::InstanceOptions opt;
  opt.network.ecnEnabled = false;  // paper: ECN-disabled for the latency test
  // node1 <-> node8: ranks 0/1 on hosts 0 and 7.
  const std::vector<int> rankMap{0, 7, 1, 2, 3, 4, 5, 6};

  projection::PlantConfig pc;
  pc.numSwitches = 2;
  pc.spec = projection::openflow64x100G();
  pc.hostPortsPerSwitch = 8;
  pc.interLinksPerPair = 8;
  auto plant = projection::buildPlant(pc);
  if (!plant) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    return 1;
  }

  const std::vector<std::int64_t> msgLens{1, 64, 256, 1024, 4096, 16384,
                                          65536, 262144, 1048576, 4194304};
  const testbed::SweepRunner sweep;
  std::printf("# sweep: %zu points on %d threads\n", msgLens.size(), sweep.threads());
  const std::vector<Point> points = sweep.run(msgLens.size(), [&](std::size_t i) {
    const std::int64_t bytes = msgLens[i];
    const int iters = bytes >= 262144 ? 5 : 20;
    const workloads::Workload w = workloads::imbPingpong(8, bytes, iters);

    auto full = testbed::makeFullTestbed(topo, routing, opt);
    const testbed::RunResult fr = testbed::runWorkload(full, w, rankMap);
    auto sdt = testbed::makeSdt(topo, routing, plant.value(), opt);
    if (!sdt) throw std::runtime_error(sdt.error().message);
    const testbed::RunResult sr = testbed::runWorkload(sdt.value(), w, rankMap);

    Point p;
    p.bytes = bytes;
    p.rttFullUs = nsToUs(fr.act) / iters;
    p.rttSdtUs = nsToUs(sr.act) / iters;
    p.overhead = (p.rttSdtUs - p.rttFullUs) / p.rttFullUs;
    return p;
  });

  bench::JsonReport report("fig11_latency_overhead");
  std::printf("%10s %14s %14s %10s\n", "msglen", "RTT full (us)", "RTT SDT (us)",
              "overhead");
  bench::printRule(52);
  bool shapeOk = true;
  double previousOverhead = 1.0;
  bool monotoneOverall = true;
  for (const Point& p : points) {
    std::printf("%10lld %14.3f %14.3f %9.3f%%\n", static_cast<long long>(p.bytes),
                p.rttFullUs, p.rttSdtUs, p.overhead * 100.0);
    report.row("points", {{"msglen", static_cast<std::int64_t>(p.bytes)},
                          {"rtt_full_us", p.rttFullUs},
                          {"rtt_sdt_us", p.rttSdtUs},
                          {"overhead", p.overhead}});
    if (p.overhead < 0.0 || p.overhead > 0.02) shapeOk = false;
    if (p.bytes >= 1024 && p.overhead > previousOverhead + 1e-4) monotoneOverall = false;
    previousOverhead = p.overhead;
  }
  bench::printRule(52);
  std::printf("shape: overhead in (0, 2%%] everywhere: %s; shrinking with size: %s\n",
              shapeOk ? "YES" : "NO", monotoneOverall ? "YES" : "NO");
  std::printf("paper: overheads below 1.6%%, decreasing with message length\n");
  report.set("shape_ok", shapeOk);
  report.set("monotone", monotoneOverall);
  report.set("sweep_threads", sweep.threads());
  report.write();
  return shapeOk ? 0 : 1;
}
