// Google-benchmark microbenchmarks for the engine primitives: event loop
// throughput, flow-table lookup, partitioning, projection, deadlock
// analysis, and end-to-end packet forwarding. These bound how large an
// experiment the substrate can carry (events/second is the simulator's
// currency).
//
// Besides the google-benchmark tables, the binary re-measures the three
// headline counters (events/sec, packets/sec, flow-lookups/sec) with plain
// timed loops and records them in BENCH_engine_microbench.json so the perf
// trajectory stays comparable across PRs.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.hpp"
#include "controller/controller.hpp"
#include "partition/partitioner.hpp"
#include "projection/link_projector.hpp"
#include "routing/deadlock.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/transport.hpp"
#include "topo/generators.hpp"

namespace {

using namespace sdt;

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.schedule(i % 1000, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(10000)->Arg(100000);

/// Steady-state scheduling: events reschedule themselves, so the arena
/// free-list is exercised instead of cold growth (the common regime inside
/// a running experiment).
void BM_EventSteadyState(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int chains = 64;
    const std::int64_t perChain = state.range(0) / chains;
    for (int c = 0; c < chains; ++c) {
      struct Hop {
        sim::Simulator* sim;
        std::int64_t left;
        void operator()() const {
          if (left > 0) sim->schedule(100, Hop{sim, left - 1});
        }
      };
      sim.schedule(c, Hop{&sim, perChain});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.eventsProcessed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventSteadyState)->Arg(100000);

openflow::FlowTable makeProjectorShapedTable(int entries) {
  openflow::FlowTable table(4096);
  for (int i = 0; i < entries; ++i) {
    openflow::FlowEntry e;
    e.priority = 100;
    e.match.inPort = i % 48;
    e.match.dstAddr = static_cast<std::uint32_t>(i);
    e.actions = {openflow::Action::output(i % 48)};
    (void)table.add(std::move(e));
  }
  return table;
}

void BM_FlowTableLookup(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  openflow::FlowTable table = makeProjectorShapedTable(entries);
  openflow::PacketHeader h;
  h.inPort = (entries - 1) % 48;
  h.dstAddr = static_cast<std::uint32_t>(entries - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookupAndCount(h, 1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowTableLookup)->Arg(64)->Arg(512)->Arg(2048);

void BM_PartitionDragonfly(benchmark::State& state) {
  const topo::Topology topo = topo::makeDragonfly(4, 9, 2);
  const topo::Graph g = topo.switchGraph();
  for (auto _ : state) {
    partition::PartitionOptions opt;
    opt.parts = static_cast<int>(state.range(0));
    auto r = partition::partitionGraph(g, opt);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_PartitionDragonfly)->Arg(2)->Arg(3);

void BM_LinkProjection(benchmark::State& state) {
  const topo::Topology topo = topo::makeDragonfly(4, 9, 2);
  auto plant = projection::planPlant(
      {&topo}, {.numSwitches = 3, .spec = projection::openflow128x100G()});
  if (!plant.ok()) {
    state.SkipWithError("plant planning failed");
    return;
  }
  for (auto _ : state) {
    auto proj = projection::LinkProjector::project(topo, plant.value());
    benchmark::DoNotOptimize(proj.ok());
  }
}
BENCHMARK(BM_LinkProjection);

void BM_DeployFlowTables(benchmark::State& state) {
  const topo::Topology topo = topo::makeFatTree(4);
  routing::ShortestPathRouting routing(topo);
  auto plant = projection::planPlant(
      {&topo}, {.numSwitches = 2, .spec = projection::openflow128x100G()});
  if (!plant.ok()) {
    state.SkipWithError("plant planning failed");
    return;
  }
  controller::SdtController ctl(plant.value());
  for (auto _ : state) {
    auto dep = ctl.deploy(topo, routing, {.requireDeadlockFree = false});
    benchmark::DoNotOptimize(dep.ok());
  }
}
BENCHMARK(BM_DeployFlowTables);

void BM_DeadlockAnalysisTorus(benchmark::State& state) {
  const topo::Topology topo = topo::makeTorus3D(4, 4, 4);
  auto algo = routing::makeRouting("torus-clue", topo);
  if (!algo.ok()) {
    state.SkipWithError("routing construction failed");
    return;
  }
  for (auto _ : state) {
    const auto report = routing::analyzeDeadlock(topo, *algo.value());
    benchmark::DoNotOptimize(report.deadlockFree);
  }
}
BENCHMARK(BM_DeadlockAnalysisTorus);

void BM_PacketForwardingEndToEnd(benchmark::State& state) {
  // Messages across a line-4 fabric: measures full data-plane event cost.
  const topo::Topology topo = topo::makeLine(4);
  routing::ShortestPathRouting routing(topo);
  for (auto _ : state) {
    sim::Simulator sim;
    auto built = sim::buildLogicalNetwork(sim, topo, routing, {});
    sim::TransportManager transport(sim, *built.net, {});
    transport.sendMessage(0, 3, 64 * 1024, 0, {});
    sim.run();
    benchmark::DoNotOptimize(sim.eventsProcessed());
  }
}
BENCHMARK(BM_PacketForwardingEndToEnd);

// -- Headline counters for BENCH_engine_microbench.json ----------------------

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// events/sec, steady state: 64 self-rescheduling event chains — the shape
/// of a running simulation (bounded pending set, every event schedules its
/// successor), where the arena's zero-allocation path is exercised.
double measureEventsPerSec() {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    sim::Simulator sim;
    const long target = 200000;
    long done = 0;
    struct Hop {
      sim::Simulator* sim;
      long* done;
      long target;
      void operator()() const {
        if (++*done >= target) return;
        sim->schedule(10, Hop{sim, done, target});
      }
    };
    for (int c = 0; c < 64; ++c) sim.schedule(c, Hop{&sim, &done, target});
    const auto start = std::chrono::steady_clock::now();
    sim.run();
    best = std::max(best, static_cast<double>(done) / secondsSince(start));
  }
  return best;
}

/// events/sec, bulk: schedule 200k closures up front, then drain — stresses
/// deep-heap push/pop rather than the steady-state arena path.
double measureBulkEventsPerSec() {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    sim::Simulator sim;
    const int n = 200000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) sim.schedule(i % 1000, [] {});
    sim.run();
    best = std::max(best, n / secondsSince(start));
  }
  return best;
}

/// packets/sec: end-to-end line-4 forwarding, counted at switch tx ports.
double measurePacketsPerSec() {
  const topo::Topology topo = topo::makeLine(4);
  routing::ShortestPathRouting routing(topo);
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    sim::Simulator sim;
    auto built = sim::buildLogicalNetwork(sim, topo, routing, {});
    sim::TransportManager transport(sim, *built.net, {});
    const auto start = std::chrono::steady_clock::now();
    for (int m = 0; m < 20; ++m) {
      transport.sendMessage(0, 3, 256 * 1024, 0, {});
      transport.sendMessage(3, 0, 256 * 1024, 0, {});
      sim.run();
    }
    const double wall = secondsSince(start);
    std::uint64_t txPackets = 0;
    for (int sw = 0; sw < built.net->numSwitches(); ++sw) {
      for (int p = 0; p < built.net->switchPortCount(sw); ++p) {
        txPackets += built.net->switchPortCounters(sw, p).txPackets;
      }
    }
    best = std::max(best, static_cast<double>(txPackets) / wall);
  }
  return best;
}

/// flow-lookups/sec against a LinkProjector-shaped table of `entries` rows.
double measureLookupsPerSec(int entries) {
  openflow::FlowTable table = makeProjectorShapedTable(entries);
  openflow::PacketHeader h;
  h.inPort = (entries - 1) % 48;
  h.dstAddr = static_cast<std::uint32_t>(entries - 1);
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const int n = 2000000;
    const auto start = std::chrono::steady_clock::now();
    const openflow::FlowEntry* last = nullptr;
    for (int i = 0; i < n; ++i) {
      last = table.lookupAndCount(h, 1000);
    }
    benchmark::DoNotOptimize(last);
    best = std::max(best, n / secondsSince(start));
  }
  return best;
}

void writeHeadlineReport() {
  bench::JsonReport report("engine_microbench");
  report.set("events_per_sec", measureEventsPerSec());
  report.set("bulk_events_per_sec", measureBulkEventsPerSec());
  report.set("packets_per_sec", measurePacketsPerSec());
  for (const int entries : {64, 512, 2048}) {
    report.row("flow_lookups", {{"entries", entries},
                                {"lookups_per_sec", measureLookupsPerSec(entries)}});
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  writeHeadlineReport();
  return 0;
}
