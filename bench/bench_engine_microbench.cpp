// Google-benchmark microbenchmarks for the engine primitives: event loop
// throughput, flow-table lookup, partitioning, projection, deadlock
// analysis, and end-to-end packet forwarding. These bound how large an
// experiment the substrate can carry (events/second is the simulator's
// currency).
//
// Besides the google-benchmark tables, the binary re-measures the three
// headline counters (events/sec, packets/sec, flow-lookups/sec) with plain
// timed loops and records them in BENCH_engine_microbench.json so the perf
// trajectory stays comparable across PRs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>

#include "bench_util.hpp"
#include "controller/controller.hpp"
#include "partition/partitioner.hpp"
#include "projection/link_projector.hpp"
#include "routing/deadlock.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/transport.hpp"
#include "topo/generators.hpp"
#include "workloads/apps.hpp"

namespace {

using namespace sdt;

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.schedule(i % 1000, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(10000)->Arg(100000);

/// Steady-state scheduling: events reschedule themselves, so the arena
/// free-list is exercised instead of cold growth (the common regime inside
/// a running experiment).
void BM_EventSteadyState(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int chains = 64;
    const std::int64_t perChain = state.range(0) / chains;
    for (int c = 0; c < chains; ++c) {
      struct Hop {
        sim::Simulator* sim;
        std::int64_t left;
        void operator()() const {
          if (left > 0) sim->schedule(100, Hop{sim, left - 1});
        }
      };
      sim.schedule(c, Hop{&sim, perChain});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.eventsProcessed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventSteadyState)->Arg(100000);

openflow::FlowTable makeProjectorShapedTable(int entries) {
  openflow::FlowTable table(4096);
  for (int i = 0; i < entries; ++i) {
    openflow::FlowEntry e;
    e.priority = 100;
    e.match.inPort = i % 48;
    e.match.dstAddr = static_cast<std::uint32_t>(i);
    e.actions = {openflow::Action::output(i % 48)};
    (void)table.add(std::move(e));
  }
  return table;
}

void BM_FlowTableLookup(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  openflow::FlowTable table = makeProjectorShapedTable(entries);
  openflow::PacketHeader h;
  h.inPort = (entries - 1) % 48;
  h.dstAddr = static_cast<std::uint32_t>(entries - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookupAndCount(h, 1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowTableLookup)->Arg(64)->Arg(512)->Arg(2048);

void BM_PartitionDragonfly(benchmark::State& state) {
  const topo::Topology topo = topo::makeDragonfly(4, 9, 2);
  const topo::Graph g = topo.switchGraph();
  for (auto _ : state) {
    partition::PartitionOptions opt;
    opt.parts = static_cast<int>(state.range(0));
    auto r = partition::partitionGraph(g, opt);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_PartitionDragonfly)->Arg(2)->Arg(3);

void BM_LinkProjection(benchmark::State& state) {
  const topo::Topology topo = topo::makeDragonfly(4, 9, 2);
  auto plant = projection::planPlant(
      {&topo}, {.numSwitches = 3, .spec = projection::openflow128x100G()});
  if (!plant.ok()) {
    state.SkipWithError("plant planning failed");
    return;
  }
  for (auto _ : state) {
    auto proj = projection::LinkProjector::project(topo, plant.value());
    benchmark::DoNotOptimize(proj.ok());
  }
}
BENCHMARK(BM_LinkProjection);

void BM_DeployFlowTables(benchmark::State& state) {
  const topo::Topology topo = topo::makeFatTree(4);
  routing::ShortestPathRouting routing(topo);
  auto plant = projection::planPlant(
      {&topo}, {.numSwitches = 2, .spec = projection::openflow128x100G()});
  if (!plant.ok()) {
    state.SkipWithError("plant planning failed");
    return;
  }
  controller::SdtController ctl(plant.value());
  for (auto _ : state) {
    auto dep = ctl.deploy(topo, routing, {.requireDeadlockFree = false});
    benchmark::DoNotOptimize(dep.ok());
  }
}
BENCHMARK(BM_DeployFlowTables);

void BM_DeadlockAnalysisTorus(benchmark::State& state) {
  const topo::Topology topo = topo::makeTorus3D(4, 4, 4);
  auto algo = routing::makeRouting("torus-clue", topo);
  if (!algo.ok()) {
    state.SkipWithError("routing construction failed");
    return;
  }
  for (auto _ : state) {
    const auto report = routing::analyzeDeadlock(topo, *algo.value());
    benchmark::DoNotOptimize(report.deadlockFree);
  }
}
BENCHMARK(BM_DeadlockAnalysisTorus);

void BM_PacketForwardingEndToEnd(benchmark::State& state) {
  // Messages across a line-4 fabric: measures full data-plane event cost.
  const topo::Topology topo = topo::makeLine(4);
  routing::ShortestPathRouting routing(topo);
  for (auto _ : state) {
    sim::Simulator sim;
    auto built = sim::buildLogicalNetwork(sim, topo, routing, {});
    sim::TransportManager transport(sim, *built.net, {});
    transport.sendMessage(0, 3, 64 * 1024, 0, {});
    sim.run();
    benchmark::DoNotOptimize(sim.eventsProcessed());
  }
}
BENCHMARK(BM_PacketForwardingEndToEnd);

// -- Headline counters for BENCH_engine_microbench.json ----------------------

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// events/sec, steady state: 64 self-rescheduling event chains — the shape
/// of a running simulation (bounded pending set, every event schedules its
/// successor), where the arena's zero-allocation path is exercised.
double measureEventsPerSec() {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    sim::Simulator sim;
    const long target = 200000;
    long done = 0;
    struct Hop {
      sim::Simulator* sim;
      long* done;
      long target;
      void operator()() const {
        if (++*done >= target) return;
        sim->schedule(10, Hop{sim, done, target});
      }
    };
    for (int c = 0; c < 64; ++c) sim.schedule(c, Hop{&sim, &done, target});
    const auto start = std::chrono::steady_clock::now();
    sim.run();
    best = std::max(best, static_cast<double>(done) / secondsSince(start));
  }
  return best;
}

/// events/sec, bulk: schedule 200k closures up front, then drain — stresses
/// deep-heap push/pop rather than the steady-state arena path.
double measureBulkEventsPerSec() {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    sim::Simulator sim;
    const int n = 200000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) sim.schedule(i % 1000, [] {});
    sim.run();
    best = std::max(best, n / secondsSince(start));
  }
  return best;
}

/// packets/sec: end-to-end line-4 forwarding, counted at switch tx ports.
double measurePacketsPerSec() {
  const topo::Topology topo = topo::makeLine(4);
  routing::ShortestPathRouting routing(topo);
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    sim::Simulator sim;
    auto built = sim::buildLogicalNetwork(sim, topo, routing, {});
    sim::TransportManager transport(sim, *built.net, {});
    const auto start = std::chrono::steady_clock::now();
    for (int m = 0; m < 20; ++m) {
      transport.sendMessage(0, 3, 256 * 1024, 0, {});
      transport.sendMessage(3, 0, 256 * 1024, 0, {});
      sim.run();
    }
    const double wall = secondsSince(start);
    std::uint64_t txPackets = 0;
    for (int sw = 0; sw < built.net->numSwitches(); ++sw) {
      for (int p = 0; p < built.net->switchPortCount(sw); ++p) {
        txPackets += built.net->switchPortCounters(sw, p).txPackets;
      }
    }
    best = std::max(best, static_cast<double>(txPackets) / wall);
  }
  return best;
}

/// flow-lookups/sec against a LinkProjector-shaped table of `entries` rows.
double measureLookupsPerSec(int entries) {
  openflow::FlowTable table = makeProjectorShapedTable(entries);
  openflow::PacketHeader h;
  h.inPort = (entries - 1) % 48;
  h.dstAddr = static_cast<std::uint32_t>(entries - 1);
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const int n = 2000000;
    const auto start = std::chrono::steady_clock::now();
    const openflow::FlowEntry* last = nullptr;
    for (int i = 0; i < n; ++i) {
      last = table.lookupAndCount(h, 1000);
    }
    benchmark::DoNotOptimize(last);
    best = std::max(best, n / secondsSince(start));
  }
  return best;
}

// -- Shard-scaling sweep for BENCH_engine_shards.json ------------------------

/// One sharded run of an IMB Alltoall on a full-testbed instance (the fig13
/// "simulator" side). Engine geometry is injected through SDT_SHARDS /
/// SDT_SIM_WORKERS, the same knobs users have, so the sweep measures exactly
/// what an env-configured run gets.
struct ShardPoint {
  double wallSeconds = 0.0;
  double eventsPerSec = 0.0;
  std::uint64_t events = 0;
  std::uint64_t barrierWindows = 0;
  double avgWindowNs = 0.0;
  std::uint64_t crossShardEvents = 0;
  TimeNs act = 0;
};

ShardPoint runShardPoint(const topo::Topology& topo,
                         const routing::RoutingAlgorithm& routing, int nodes,
                         int shards, int workers) {
  setenv("SDT_SHARDS", std::to_string(shards).c_str(), 1);
  setenv("SDT_SIM_WORKERS", std::to_string(workers).c_str(), 1);
  ShardPoint best;
  for (int rep = 0; rep < 3; ++rep) {
    auto inst = testbed::makeFullTestbed(topo, routing, {});
    const workloads::Workload w = workloads::imbAlltoall(nodes, 32 * 1024, 2);
    const std::vector<int> rankMap = bench::selectHosts(topo.numHosts(), nodes);
    const testbed::RunResult run = testbed::runWorkload(inst, w, rankMap);
    if (rep == 0 || run.wallSeconds < best.wallSeconds) {
      best.wallSeconds = run.wallSeconds;
      best.events = run.events;
      best.eventsPerSec = static_cast<double>(run.events) / run.wallSeconds;
      best.barrierWindows = inst.sim->barrierWindows();
      best.avgWindowNs = inst.sim->avgWindowNs();
      best.crossShardEvents = inst.sim->crossShardEvents();
      best.act = run.act;
    }
  }
  unsetenv("SDT_SHARDS");
  unsetenv("SDT_SIM_WORKERS");
  return best;
}

void writeShardScalingReport() {
  std::printf("\n== shard scaling: IMB Alltoall on Dragonfly(4,9,2) ==\n");
  const topo::Topology topo = topo::makeDragonfly(4, 9, 2);
  auto algo = routing::makeRouting("dragonfly-minimal", topo);
  if (!algo.ok()) {
    std::fprintf(stderr, "WARN: routing failed, skipping shard sweep\n");
    return;
  }
  bench::JsonReport report("engine_shards");
  std::printf("%6s %7s %12s %14s %10s %12s %12s\n", "nodes", "shards",
              "events/s", "speedup vs 1", "windows", "avg win ns", "cross-ev");
  bench::printRule(80);
  for (const int nodes : {8, 32}) {
    double base = 0.0;
    for (const int k : {1, 2, 4, 8}) {
      const ShardPoint p = runShardPoint(topo, *algo.value(), nodes, k, k);
      if (k == 1) base = p.eventsPerSec;
      const double speedup = base > 0.0 ? p.eventsPerSec / base : 0.0;
      std::printf("%6d %7d %12.0f %14.2f %10llu %12.0f %12llu\n", nodes, k,
                  p.eventsPerSec, speedup,
                  static_cast<unsigned long long>(p.barrierWindows), p.avgWindowNs,
                  static_cast<unsigned long long>(p.crossShardEvents));
      report.row("points",
                 {{"nodes", nodes},
                  {"shards", k},
                  {"workers", k},
                  {"events", static_cast<std::int64_t>(p.events)},
                  {"wall_seconds", p.wallSeconds},
                  {"events_per_sec", p.eventsPerSec},
                  {"speedup_vs_1shard", speedup},
                  {"barrier_windows", static_cast<std::int64_t>(p.barrierWindows)},
                  {"avg_window_ns", p.avgWindowNs},
                  {"cross_shard_events", static_cast<std::int64_t>(p.crossShardEvents)},
                  {"act_ns", static_cast<std::int64_t>(p.act)}});
    }
  }
  report.write();
}

void writeHeadlineReport() {
  bench::JsonReport report("engine_microbench");
  report.set("events_per_sec", measureEventsPerSec());
  report.set("bulk_events_per_sec", measureBulkEventsPerSec());
  report.set("packets_per_sec", measurePacketsPerSec());
  for (const int entries : {64, 512, 2048}) {
    report.row("flow_lookups", {{"entries", entries},
                                {"lookups_per_sec", measureLookupsPerSec(entries)}});
  }
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  writeHeadlineReport();
  writeShardScalingReport();
  return 0;
}
