// Google-benchmark microbenchmarks for the engine primitives: event loop
// throughput, flow-table lookup, partitioning, projection, deadlock
// analysis, and end-to-end packet forwarding. These bound how large an
// experiment the substrate can carry (events/second is the simulator's
// currency).
#include <benchmark/benchmark.h>

#include "controller/controller.hpp"
#include "partition/partitioner.hpp"
#include "projection/link_projector.hpp"
#include "routing/deadlock.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/transport.hpp"
#include "topo/generators.hpp"

namespace {

using namespace sdt;

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.schedule(i % 1000, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(10000)->Arg(100000);

void BM_FlowTableLookup(benchmark::State& state) {
  openflow::FlowTable table(4096);
  const int entries = static_cast<int>(state.range(0));
  for (int i = 0; i < entries; ++i) {
    openflow::FlowEntry e;
    e.priority = 100;
    e.match.inPort = i % 48;
    e.match.dstAddr = static_cast<std::uint32_t>(i);
    e.actions = {openflow::Action::output(i % 48)};
    (void)table.add(std::move(e));
  }
  openflow::PacketHeader h;
  h.inPort = entries % 48;
  h.dstAddr = static_cast<std::uint32_t>(entries - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(h, 1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowTableLookup)->Arg(64)->Arg(512)->Arg(2048);

void BM_PartitionDragonfly(benchmark::State& state) {
  const topo::Topology topo = topo::makeDragonfly(4, 9, 2);
  const topo::Graph g = topo.switchGraph();
  for (auto _ : state) {
    partition::PartitionOptions opt;
    opt.parts = static_cast<int>(state.range(0));
    auto r = partition::partitionGraph(g, opt);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_PartitionDragonfly)->Arg(2)->Arg(3);

void BM_LinkProjection(benchmark::State& state) {
  const topo::Topology topo = topo::makeDragonfly(4, 9, 2);
  auto plant = projection::planPlant(
      {&topo}, {.numSwitches = 3, .spec = projection::openflow128x100G()});
  if (!plant.ok()) {
    state.SkipWithError("plant planning failed");
    return;
  }
  for (auto _ : state) {
    auto proj = projection::LinkProjector::project(topo, plant.value());
    benchmark::DoNotOptimize(proj.ok());
  }
}
BENCHMARK(BM_LinkProjection);

void BM_DeployFlowTables(benchmark::State& state) {
  const topo::Topology topo = topo::makeFatTree(4);
  routing::ShortestPathRouting routing(topo);
  auto plant = projection::planPlant(
      {&topo}, {.numSwitches = 2, .spec = projection::openflow128x100G()});
  if (!plant.ok()) {
    state.SkipWithError("plant planning failed");
    return;
  }
  controller::SdtController ctl(plant.value());
  for (auto _ : state) {
    auto dep = ctl.deploy(topo, routing, {.requireDeadlockFree = false});
    benchmark::DoNotOptimize(dep.ok());
  }
}
BENCHMARK(BM_DeployFlowTables);

void BM_DeadlockAnalysisTorus(benchmark::State& state) {
  const topo::Topology topo = topo::makeTorus3D(4, 4, 4);
  auto algo = routing::makeRouting("torus-clue", topo);
  if (!algo.ok()) {
    state.SkipWithError("routing construction failed");
    return;
  }
  for (auto _ : state) {
    const auto report = routing::analyzeDeadlock(topo, *algo.value());
    benchmark::DoNotOptimize(report.deadlockFree);
  }
}
BENCHMARK(BM_DeadlockAnalysisTorus);

void BM_PacketForwardingEndToEnd(benchmark::State& state) {
  // Messages across a line-4 fabric: measures full data-plane event cost.
  const topo::Topology topo = topo::makeLine(4);
  routing::ShortestPathRouting routing(topo);
  for (auto _ : state) {
    sim::Simulator sim;
    auto built = sim::buildLogicalNetwork(sim, topo, routing, {});
    sim::TransportManager transport(sim, *built.net, {});
    transport.sendMessage(0, 3, 64 * 1024, 0, {});
    sim.run();
    benchmark::DoNotOptimize(sim.eventsProcessed());
  }
}
BENCHMARK(BM_PacketForwardingEndToEnd);

}  // namespace

BENCHMARK_MAIN();
