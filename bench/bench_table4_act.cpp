// Table IV reproduction: real-application ACTs on SDT compared to the
// simulator — speedup "Ax" and ACT deviation "(B%)" per (topology, app).
//
// Both SDT and the full-testbed reference execute on the packet engine; the
// simulator baseline's evaluation time is the BookSim/SST-class cost model
// (testbed::SimulatorCostModel, see DESIGN.md substitution table). The
// paper's runs last seconds to minutes; we run a scaled-down iteration count
// and report the speedup at the paper's scale by replicating iterations
// linearly (scale K multiplies ACT and traffic, not the one-time deploy):
//   speedup(K) = K * simulatorWall / (deploy + K * ACT_sdt).
// Deviation B% = (ACT_sdt - ACT_full)/ACT_full is scale-invariant.
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/apps.hpp"

using namespace sdt;

namespace {

struct AppSpec {
  const char* label;
  workloads::Workload (*make)(int ranks);
};

workloads::Workload mkHpcg(int r) { return workloads::hpcg(r); }
workloads::Workload mkHpl(int r) { return workloads::hpl(r); }
workloads::Workload mkGhost(int r) { return workloads::miniGhost(r); }
workloads::Workload mkFeSmall(int r) {
  return workloads::miniFe(r, {.cgIterations = 20, .haloBytes = 24 * 1024,
                               .computePerIteration = usToNs(40.0)});
}
workloads::Workload mkFeLarge(int r) {
  return workloads::miniFe(r, {.cgIterations = 20, .haloBytes = 96 * 1024,
                               .computePerIteration = usToNs(60.0)});
}
workloads::Workload mkAlltoall(int r) { return workloads::imbAlltoall(r, 32 * 1024, 2); }
workloads::Workload mkPingpong(int r) {
  return workloads::imbPingpong(r, 64 * 1024, 100);
}

}  // namespace

int main() {
  std::printf("== Table IV: ACT on SDT vs simulator (speedup Ax, deviation B%%) ==\n");
  std::printf("scaled to ~16 s application runs as in the paper (see header)\n\n");

  struct TopoSpec {
    const char* label;
    topo::Topology topo;
  };
  std::vector<TopoSpec> topos;
  topos.push_back({"Dragonfly(4,9,2)", topo::makeDragonfly(4, 9, 2)});
  topos.push_back({"Fat-Tree k=4", topo::makeFatTree(4)});
  topos.push_back({"5x5 2D-Torus", topo::makeTorus2D(5, 5)});
  topos.push_back({"4x4x4 3D-Torus", topo::makeTorus3D(4, 4, 4)});

  const AppSpec apps[] = {
      {"HPCG", mkHpcg},          {"HPL", mkHpl},
      {"miniGhost", mkGhost},    {"miniFE-264", mkFeSmall},
      {"miniFE-512", mkFeLarge}, {"IMB-Alltoall", mkAlltoall},
      {"IMB-Pingpong", mkPingpong},
  };

  std::printf("%-17s", "topology");
  for (const AppSpec& a : apps) std::printf("%16s", a.label);
  std::printf("\n");
  bench::printRule(17 + 16 * 7);

  const testbed::SimulatorCostModel model;
  bench::JsonReport report("table4_act");
  for (TopoSpec& ts : topos) {
    const int ranks = std::min(32, ts.topo.numHosts());
    const std::vector<int> rankMap = bench::selectHosts(ts.topo.numHosts(), ranks);
    auto algo = routing::makeRouting(bench::strategyFor(ts.topo), ts.topo);
    if (!algo) {
      std::fprintf(stderr, "%s: %s\n", ts.label, algo.error().message.c_str());
      return 1;
    }
    const projection::Plant plant = bench::autoPlant(ts.topo);

    std::printf("%-17s", ts.label);
    for (const AppSpec& a : apps) {
      const workloads::Workload w = a.make(ranks);
      testbed::InstanceOptions opt;
      auto full = testbed::makeFullTestbed(ts.topo, *algo.value(), opt);
      const testbed::RunResult fr = testbed::runWorkload(full, w, rankMap);
      auto sdt = testbed::makeSdt(ts.topo, *algo.value(), plant, opt);
      if (!sdt) {
        std::fprintf(stderr, "%s/%s: %s\n", ts.label, a.label,
                     sdt.error().message.c_str());
        return 1;
      }
      const testbed::RunResult sr = testbed::runWorkload(sdt.value(), w, rankMap);
      // Scale the run to a paper-sized (~16 s) experiment.
      const double scaleK = 16.0 / std::max(1e-9, nsToSec(fr.act));
      const testbed::Comparison c = testbed::compare(sr, sdt.value().deployTime, fr,
                                                     ts.topo.numSwitches(), scaleK,
                                                     model);
      char cell[48];
      std::snprintf(cell, sizeof(cell), "%.0fx (%+.1f%%)", c.speedupVsSimulator,
                    c.actDeviation * 100.0);
      std::printf("%16s", cell);
      std::fflush(stdout);
      report.row("cells", {{"topology", ts.label},
                           {"app", a.label},
                           {"speedup_vs_simulator", c.speedupVsSimulator},
                           {"act_deviation", c.actDeviation}});
    }
    std::printf("\n");
  }
  bench::printRule(17 + 16 * 7);
  std::printf(
      "paper bands: HPL 33-39x, HPCG 40-52x, miniGhost 349-411x, miniFE 651-935x,\n"
      "IMB-Alltoall 2440-2899x, IMB-Pingpong 1921-2162x; deviations within +-3%%.\n"
      "shape to check: HPL < HPCG < miniGhost < miniFE < IMB; |B%%| small.\n");
  report.write();
  return 0;
}
