// §VI-E reproduction: active (adaptive) routing on Dragonfly(4,9,2), driven
// by Network Monitor statistics, vs minimal routing.
//
// The paper implements this on SDT by having the controller periodically
// refresh flow tables from monitor data; here the adaptive algorithm
// consults the monitor's load oracle directly on the logical plane (the
// controller would compile each refresh into the same table updates).
//
// Two traffic patterns:
//  - IMB Alltoall (the paper's benchmark): uniform load — minimal routing is
//    already near-optimal, so adaptive must match it (UGAL's bias prevents
//    frivolous detours);
//  - group-shift (each group blasts its neighbor group): the adversarial
//    case for minimal dragonfly routing, where each group pair's single
//    global link saturates and Valiant detours pay off.
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "controller/monitor.hpp"
#include "routing/adaptive.hpp"
#include "workloads/apps.hpp"

using namespace sdt;

namespace {

/// Every router in group g sends a large message to the same-index router
/// of group (g+1) mod G: all of it competes for one global link per group
/// pair under minimal routing.
workloads::Workload groupShift(int a, int g, std::int64_t bytes) {
  workloads::Workload w;
  w.name = "group-shift";
  w.perRank.resize(static_cast<std::size_t>(a * g));
  for (int grp = 0; grp < g; ++grp) {
    for (int r = 0; r < a; ++r) {
      const int me = grp * a + r;
      const int peer = ((grp + 1) % g) * a + r;
      w.perRank[me].push_back(workloads::Op::send(peer, bytes, me));
      w.perRank[peer].push_back(workloads::Op::recv(me, me));
    }
  }
  return w;
}

TimeNs runAdaptive(const topo::Topology& topo, const workloads::Workload& w,
                   const std::vector<int>& rankMap) {
  auto adaptive = routing::AdaptiveDragonflyRouting::create(topo);
  if (!adaptive) std::abort();
  auto inst = testbed::makeFullTestbed(topo, *adaptive.value(), {});
  controller::NetworkMonitor monitor(*inst.sim, inst.net(), topo);
  adaptive.value()->setCongestionOracle(monitor.oracle());
  adaptive.value()->setBias(2048.0);
  monitor.start(usToNs(10.0));
  workloads::MpiRuntime runtime(*inst.sim, *inst.transport, rankMap);
  runtime.setOnFinished([&monitor]() { monitor.stop(); });
  runtime.run(w);
  inst.sim->run();
  return runtime.finished() ? runtime.completionTime() : -1;
}

TimeNs runMinimal(const topo::Topology& topo, const workloads::Workload& w,
                  const std::vector<int>& rankMap) {
  auto minimal = routing::DragonflyMinimalRouting::create(topo);
  if (!minimal) std::abort();
  auto inst = testbed::makeFullTestbed(topo, *minimal.value(), {});
  const testbed::RunResult run = testbed::runWorkload(inst, w, rankMap);
  return run.act;
}

}  // namespace

int main() {
  std::printf("== Sec. VI-E: active routing vs minimal routing (Dragonfly 4/9/2) ==\n\n");
  const int a = 4, g = 9;
  const topo::Topology topo = topo::makeDragonfly(a, g, 2);

  std::printf("%-24s %12s %12s %10s\n", "traffic", "minimal ACT", "active ACT",
              "reduction");
  bench::printRule(62);
  bench::JsonReport report("sec6e_active_routing");
  bool ok = true;
  // Paper's benchmark: IMB Alltoall on 32 randomly selected nodes.
  {
    const std::vector<int> rankMap = bench::selectHosts(topo.numHosts(), 32);
    const workloads::Workload w = workloads::imbAlltoall(32, 64 * 1024, 2);
    const TimeNs actMin = runMinimal(topo, w, rankMap);
    const TimeNs actAda = runAdaptive(topo, w, rankMap);
    ok = ok && actAda > 0 &&
         actAda <= static_cast<TimeNs>(static_cast<double>(actMin) * 1.02);
    std::printf("%-24s %12s %12s %9.1f%%\n", "IMB Alltoall (uniform)",
                humanTime(actMin).c_str(), humanTime(actAda).c_str(),
                100.0 * (1.0 - static_cast<double>(actAda) /
                                   static_cast<double>(actMin)));
    report.row("patterns", {{"traffic", "imb_alltoall_uniform"},
                            {"minimal_act_ns", static_cast<std::int64_t>(actMin)},
                            {"active_act_ns", static_cast<std::int64_t>(actAda)}});
  }
  // Adversarial shift: the case adaptive routing exists for.
  {
    std::vector<int> rankMap(static_cast<std::size_t>(topo.numHosts()));
    for (int i = 0; i < topo.numHosts(); ++i) rankMap[i] = i;
    const workloads::Workload w = groupShift(a, g, 2 * kMiB);
    const TimeNs actMin = runMinimal(topo, w, rankMap);
    const TimeNs actAda = runAdaptive(topo, w, rankMap);
    ok = ok && actAda > 0 && actAda < actMin;
    std::printf("%-24s %12s %12s %9.1f%%\n", "group-shift (skewed)",
                humanTime(actMin).c_str(), humanTime(actAda).c_str(),
                100.0 * (1.0 - static_cast<double>(actAda) /
                                   static_cast<double>(actMin)));
    report.row("patterns", {{"traffic", "group_shift_skewed"},
                            {"minimal_act_ns", static_cast<std::int64_t>(actMin)},
                            {"active_act_ns", static_cast<std::int64_t>(actAda)}});
  }
  bench::printRule(62);
  std::printf("shape: adaptive matches minimal under uniform load and is\n"
              "substantially faster under skew: %s\n", ok ? "YES" : "NO");
  std::printf("paper: active routing works on SDT and reduces IMB Alltoall ACT\n");
  report.set("shape_ok", ok);
  report.write();
  return ok ? 0 : 1;
}
