// Crash-recovery benchmark: the cost of a controller cold start — journal
// replay, per-switch flow-stats readback, and anti-entropy reconciliation —
// as a function of where the controller died and how hostile the control
// channel is.
//
// The headline number is the incremental-repair ratio: how many flow-mods
// reconciliation actually sends versus the trust-nothing alternative (wipe
// every table, reinstall the whole target intent). A crash at prepare needs
// nearly nothing; a crash mid-install plus a switch power-cycle approaches —
// but should not exceed — the full-redeploy cost. Emits
// BENCH_crash_recovery.json.
#include <cstdio>

#include "bench_util.hpp"
#include "controller/controller.hpp"
#include "controller/journal.hpp"
#include "controller/recovery.hpp"
#include "controller/transaction.hpp"
#include "routing/shortest_path.hpp"
#include "sim/control_channel.hpp"

using namespace sdt;

namespace {

struct RecoveryOutcome {
  bool converged = false;
  int decision = 0;
  int flowMods = 0;
  int fullRedeployMods = 0;
  int statsRounds = 0;
  int retries = 0;
  int switchesDrifted = 0;
  int switchesRebooted = 0;
  TimeNs convergence = 0;
};

/// One crash + cold-start recovery on the line(6) -> ring(6) rig (4 physical
/// switches so readback fans out), with `rebootOne` optionally power-cycling
/// a switch while the controller is down.
RecoveryOutcome runCrashRecover(std::uint64_t seed, controller::CrashPoint crashAt,
                                const sim::ControlChannelConfig& cfg,
                                bool rebootOne) {
  RecoveryOutcome out;
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  const routing::ShortestPathRouting rFrom(from);
  const routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  if (!plantR) std::abort();
  const projection::Plant& plant = plantR.value();
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(from, rFrom);
  if (!depR) std::abort();
  controller::Deployment dep = std::move(depR).value();

  controller::MemoryJournalStorage storage;
  controller::Journal journal(storage);
  if (!controller::journalDeploy(journal, dep, 0)) std::abort();

  sim::Simulator sim;
  sim::ControlChannel channel(sim, seed, cfg);
  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(dep, to, rTo, dopt);
  if (!planR) std::abort();

  controller::ReconfigOptions topt;
  topt.journal = &journal;
  topt.crashAt = crashAt;
  controller::ReconfigTransaction tx(sim, channel, dep, std::move(planR).value(),
                                     topt);
  sim.schedule(usToNs(100.0), [&]() { tx.start(); });
  sim.runUntil(msToNs(80.0));
  if (!tx.finished()) std::abort();
  if (rebootOne) dep.switches[0]->reboot();

  controller::IntentCatalog catalog;
  catalog[from.name()] = {&from, &rFrom};
  catalog[to.name()] = {&to, &rTo};
  auto rplanR = controller::planRecovery(ctl, journal, catalog, dopt);
  if (!rplanR) std::abort();
  out.decision = static_cast<int>(rplanR.value().decision);

  controller::RecoveryOptions ropt;
  ropt.journal = &journal;
  ropt.retry.seed = seed;
  controller::RecoveryRun recovery(sim, channel, dep.switches,
                                   std::move(rplanR).value(), ropt);
  recovery.start();
  sim.runUntil(sim.now() + msToNs(100.0));
  const controller::RecoveryReport& r = recovery.report();
  out.converged = r.converged && r.pureStateVerified;
  out.flowMods = r.flowMods;
  out.fullRedeployMods = r.fullRedeployFlowMods;
  out.statsRounds = r.statsRounds;
  out.retries = r.retriesTotal;
  out.switchesDrifted = r.switchesDrifted;
  out.switchesRebooted = r.switchesRebooted;
  out.convergence = r.convergenceTime();
  return out;
}

const char* decisionLabel(int d) {
  return controller::recoveryDecisionName(
      static_cast<controller::RecoveryDecision>(d));
}

}  // namespace

int main() {
  std::printf("== Crash recovery: cold-start reconciliation cost ==\n");
  bench::JsonReport report("crash_recovery");

  const controller::CrashPoint points[] = {
      controller::CrashPoint::kPrepare, controller::CrashPoint::kMidInstall,
      controller::CrashPoint::kPreFlip, controller::CrashPoint::kPostFlip,
      controller::CrashPoint::kMidGc};

  // Sweep the crash point on a clean channel, with and without a switch
  // power-cycle during the outage.
  for (const bool reboot : {false, true}) {
    std::printf("\n-- crash-point sweep (%s) --\n",
                reboot ? "one switch power-cycled" : "switches intact");
    std::printf("%12s %14s %8s %10s %8s %10s %12s\n", "crash at", "decision",
                "mods", "full mods", "rounds", "drifted", "converge(us)");
    bench::printRule(80);
    for (const controller::CrashPoint p : points) {
      const RecoveryOutcome out = runCrashRecover(2023, p, {}, reboot);
      if (!out.converged) {
        std::printf("  WARN: %s did not converge\n", controller::crashPointName(p));
        continue;
      }
      const double convergeUs = static_cast<double>(out.convergence) / 1e3;
      std::printf("%12s %14s %8d %10d %8d %10d %12.1f\n",
                  controller::crashPointName(p), decisionLabel(out.decision),
                  out.flowMods, out.fullRedeployMods, out.statsRounds,
                  out.switchesDrifted + out.switchesRebooted, convergeUs);
      report.row(reboot ? "crash_sweep_rebooted" : "crash_sweep",
                 {{"crash_at", controller::crashPointName(p)},
                  {"decision", decisionLabel(out.decision)},
                  {"flow_mods", out.flowMods},
                  {"full_redeploy_flow_mods", out.fullRedeployMods},
                  {"stats_rounds", out.statsRounds},
                  {"switches_drifted", out.switchesDrifted},
                  {"switches_rebooted", out.switchesRebooted},
                  {"convergence_us", convergeUs}});
      if (!reboot && p == controller::CrashPoint::kPostFlip) {
        report.set("post_flip_flow_mods", out.flowMods);
        report.set("post_flip_full_redeploy_flow_mods", out.fullRedeployMods);
        report.set("post_flip_incremental_fraction",
                   out.fullRedeployMods > 0
                       ? static_cast<double>(out.flowMods) /
                             static_cast<double>(out.fullRedeployMods)
                       : 0.0);
        report.set("post_flip_convergence_us", convergeUs);
      }
    }
  }

  // Channel-hostility sweep at the nastiest crash point (post-flip): how
  // much do readback retries and extra verify rounds cost?
  std::printf("\n-- channel sweep at post-flip crash --\n");
  std::printf("%8s %8s %8s %9s %12s\n", "drop", "mods", "rounds", "retries",
              "converge(us)");
  bench::printRule(52);
  for (const double drop : {0.0, 0.1, 0.2, 0.3}) {
    sim::ControlChannelConfig cfg;
    cfg.dropProb = drop;
    cfg.dupProb = drop / 2;
    cfg.reorderProb = drop / 2;
    const RecoveryOutcome out =
        runCrashRecover(2023, controller::CrashPoint::kPostFlip, cfg, true);
    if (!out.converged) {
      std::printf("  WARN: drop=%.1f did not converge\n", drop);
      continue;
    }
    const double convergeUs = static_cast<double>(out.convergence) / 1e3;
    std::printf("%8.1f %8d %8d %9d %12.1f\n", drop, out.flowMods, out.statsRounds,
                out.retries, convergeUs);
    report.row("channel_sweep", {{"drop_prob", drop},
                                 {"flow_mods", out.flowMods},
                                 {"stats_rounds", out.statsRounds},
                                 {"retries", out.retries},
                                 {"convergence_us", convergeUs}});
  }

  report.write();
  return 0;
}
