// Transactional reconfiguration benchmark: the cost of a live two-phase
// topology update (versioned rules + barrier + flip + GC) under increasingly
// hostile control channels, plus the rollback latency when a switch is
// unreachable past the retry budget.
//
// Table II bounds SDT reconfiguration at 100 ms ~ 1 s for a *cold* update;
// this bench measures the live protocol: how many flow-mods the incremental
// diff installs (vs the teardown+redeploy it replaced), how many barrier
// round-trips the transaction needs, how long the update window stays open
// (install-start to epoch flip), and how quickly an aborted update restores
// the pure old-epoch state. Emits BENCH_reconfig.json.
#include <cstdio>

#include "bench_util.hpp"
#include "controller/controller.hpp"
#include "controller/transaction.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/consistency.hpp"
#include "sim/control_channel.hpp"
#include "sim/transport.hpp"

using namespace sdt;

namespace {

struct UpdateOutcome {
  bool committed = false;
  bool rolledBack = false;
  bool pure = false;
  int flowModsInstalled = 0;
  int flowModsRolledBack = 0;
  int teardownRedeployMods = 0;  ///< what the pre-diff path would have sent
  int barrierRoundTrips = 0;
  int retriesTotal = 0;
  TimeNs updateWindow = 0;
  TimeNs rollbackLatency = 0;
  std::size_t violations = 0;
  std::size_t stamped = 0;
};

/// One live line(6) -> ring(6) update on a 2-switch plant carrying a TCP
/// permutation, under the given channel impairments. (Both topologies pin
/// host i to logical switch i, so host ports stay put and the update is
/// plannable live.) `disconnectSwitch0Ns` > 0 severs switch 0's management
/// link from t=0 for that long (forcing a rollback when it outlasts the
/// install retry budget).
UpdateOutcome runLiveUpdate(std::uint64_t seed, const sim::ControlChannelConfig& cfg,
                            TimeNs disconnectSwitch0Ns = 0,
                            obs::Registry* metrics = nullptr) {
  UpdateOutcome out;
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  const routing::ShortestPathRouting rFrom(from);
  const routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  if (!plantR) std::abort();
  const projection::Plant& plant = plantR.value();
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(from, rFrom);
  if (!depR) std::abort();
  controller::Deployment dep = std::move(depR).value();
  const int oldTotal = dep.totalFlowEntries;

  sim::Simulator sim;
  sim::EpochConsistencyChecker checker;
  sim::BuiltNetwork built = sim::buildProjectedNetwork(
      sim, from, dep.projection, plant, dep.switches, {}, {2.0, 1.0}, &checker);
  sim::TransportManager tm(sim, *built.net, {});

  sim::ControlChannel channel(sim, seed, cfg);
  if (disconnectSwitch0Ns > 0) channel.disconnect(0, 0, disconnectSwitch0Ns);

  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;  // ring + shortest path: cyclic CDG
  auto planR = ctl.planUpdate(dep, to, rTo, dopt);
  if (!planR) std::abort();
  const int newTotal = planR.value().totalEntries;

  controller::ReconfigOptions topt;
  topt.metrics = metrics;
  controller::ReconfigTransaction tx(sim, channel, dep, std::move(planR).value(),
                                     topt);
  const int hosts = from.numHosts();
  for (int h = 0; h < hosts; ++h) {
    tm.startTcpFlow(h, (h + hosts / 2) % hosts, 128 * kKiB, nullptr);
  }
  sim.schedule(usToNs(100.0), [&]() { tx.start(); });
  sim.runUntil(msToNs(100.0));
  if (!tx.finished()) std::abort();

  const controller::ReconfigReport& r = tx.report();
  out.committed = r.committed;
  out.rolledBack = r.rolledBack;
  out.pure = r.pureStateVerified;
  out.flowModsInstalled = r.flowModsInstalled;
  out.flowModsRolledBack = r.flowModsRolledBack;
  out.teardownRedeployMods = oldTotal + newTotal;  // delete-all + install-all
  out.barrierRoundTrips = r.barrierRoundTrips;
  out.retriesTotal = r.retriesTotal;
  out.updateWindow = r.updateWindow();
  out.rollbackLatency = r.rollbackLatency;
  out.violations = checker.violations().size();
  out.stamped = checker.stampedPackets();
  if (metrics != nullptr) {
    // One-shot push of the channel totals (the pull-collector variant would
    // capture a channel that dies with this scope). inc() accumulates across
    // the sweep's runs.
    const sim::ControlChannelStats& cs = channel.stats();
    const char* help = "Control-channel messages by outcome";
    metrics->counter("sdt_ctrl_msgs_total", {{"result", "sent"}}, help).inc(cs.sent);
    metrics->counter("sdt_ctrl_msgs_total", {{"result", "delivered"}}, help)
        .inc(cs.delivered);
    metrics->counter("sdt_ctrl_msgs_total", {{"result", "dropped"}}, help)
        .inc(cs.dropped);
    metrics->counter("sdt_ctrl_msgs_total", {{"result", "duplicated"}}, help)
        .inc(cs.duplicated);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== Live reconfiguration: two-phase update cost vs channel loss ==\n");
  bench::JsonReport report("reconfig");

  // Sweep control-channel drop probability; dup/reorder ride along at half
  // the drop rate to keep the mix realistic.
  std::printf("\n%8s %10s %10s %9s %9s %12s %10s %6s\n", "drop", "mods",
              "t+r mods", "barriers", "retries", "window(us)", "stamped", "pure");
  bench::printRule(82);
  double cleanWindowUs = 0.0;
  for (const double drop : {0.0, 0.1, 0.2, 0.3}) {
    sim::ControlChannelConfig cfg;
    cfg.dropProb = drop;
    cfg.dupProb = drop / 2;
    cfg.reorderProb = drop / 2;
    const UpdateOutcome out = runLiveUpdate(2023, cfg, 0, &report.metrics());
    if (!out.committed || !out.pure || out.violations != 0) {
      std::printf("  WARN: drop=%.1f did not commit pure (violations=%zu)\n", drop,
                  out.violations);
    }
    const double windowUs = static_cast<double>(out.updateWindow) / 1e3;
    if (drop == 0.0) cleanWindowUs = windowUs;
    std::printf("%8.1f %10d %10d %9d %9d %12.1f %10zu %6s\n", drop,
                out.flowModsInstalled, out.teardownRedeployMods,
                out.barrierRoundTrips, out.retriesTotal, windowUs, out.stamped,
                out.pure ? "yes" : "NO");
    report.row("drop_sweep", {{"drop_prob", drop},
                              {"flow_mods", out.flowModsInstalled},
                              {"teardown_redeploy_flow_mods", out.teardownRedeployMods},
                              {"barrier_round_trips", out.barrierRoundTrips},
                              {"retries", out.retriesTotal},
                              {"update_window_us", windowUs},
                              {"stamped_packets", static_cast<std::int64_t>(out.stamped)},
                              {"pure", out.pure},
                              {"violations", static_cast<std::int64_t>(out.violations)}});
    if (drop == 0.0) {
      report.set("flow_mods", out.flowModsInstalled);
      report.set("teardown_redeploy_flow_mods", out.teardownRedeployMods);
      report.set("flow_mod_fraction",
                 static_cast<double>(out.flowModsInstalled) /
                     static_cast<double>(out.teardownRedeployMods));
      report.set("barrier_round_trips", out.barrierRoundTrips);
      report.set("update_window_us", windowUs);
    }
  }
  bench::printRule(82);
  std::printf("clean-channel update window: %.1f us\n", cleanWindowUs);

  // Rollback latency: switch 0 unreachable past the whole install budget.
  {
    sim::ControlChannelConfig cfg;
    const UpdateOutcome out = runLiveUpdate(2023, cfg, msToNs(3.0), &report.metrics());
    if (!out.rolledBack || !out.pure) {
      std::printf("WARN: disconnect scenario did not roll back pure\n");
    }
    const double rollbackMs = static_cast<double>(out.rollbackLatency) / 1e6;
    std::printf("\nrollback: abort after %d retries, pure old epoch restored in "
                "%.2f ms (%d adds undone)\n",
                out.retriesTotal, rollbackMs, out.flowModsRolledBack);
    report.set("rollback_latency_ms", rollbackMs);
    report.set("rollback_flow_mods_undone", out.flowModsRolledBack);
    report.set("rollback_pure", out.pure);
  }

  report.write();
  return 0;
}
