// Table III reproduction: routing strategies and deadlock-avoidance schemes
// per topology, each verified algorithmically:
//  - all-pairs reachability and average path length under the strategy,
//  - channel-dependency-graph acyclicity (the deadlock-avoidance claim).
#include <cstdio>

#include "bench_util.hpp"
#include "routing/deadlock.hpp"

using namespace sdt;

int main() {
  std::printf("== Table III: routing strategy + deadlock avoidance per topology ==\n\n");
  struct Row {
    const char* label;
    topo::Topology topo;
    const char* avoidance;
  };
  std::vector<Row> rows;
  rows.push_back({"Fat-Tree k=4", topo::makeFatTree(4), "no VCs needed (up/down)"});
  rows.push_back({"Dragonfly 4/9/2", topo::makeDragonfly(4, 9, 2), "changing VC"});
  rows.push_back({"2D-Mesh 4x4", topo::makeMesh2D(4, 4), "by routing (XY)"});
  rows.push_back({"3D-Mesh 3x3x3", topo::makeMesh3D(3, 3, 3), "by routing (XYZ)"});
  rows.push_back({"2D-Torus 5x5", topo::makeTorus2D(5, 5), "routing + dateline VC"});
  rows.push_back({"3D-Torus 4x4x4", topo::makeTorus3D(4, 4, 4), "routing + dateline VC"});

  std::printf("%-16s %-18s %4s %10s %14s  %s\n", "topology", "strategy", "VCs",
              "avg hops", "deadlock-free", "scheme");
  bench::printRule(96);
  bench::JsonReport report("table3_routing");
  bool allOk = true;
  for (const Row& row : rows) {
    auto algo = routing::makeRouting(bench::strategyFor(row.topo), row.topo);
    if (!algo) {
      std::printf("%-16s FAILED: %s\n", row.label, algo.error().message.c_str());
      allOk = false;
      continue;
    }
    // Average switch-hop count over all host pairs.
    double hops = 0.0;
    int pairs = 0;
    bool routable = true;
    for (topo::HostId s = 0; s < row.topo.numHosts(); ++s) {
      for (topo::HostId d = 0; d < row.topo.numHosts(); ++d) {
        if (row.topo.hostSwitch(s) == row.topo.hostSwitch(d)) continue;
        auto path = algo.value()->tracePath(s, d);
        if (!path) {
          routable = false;
          continue;
        }
        hops += static_cast<double>(path.value().size() - 1);
        ++pairs;
      }
    }
    const routing::DeadlockReport dl = routing::analyzeDeadlock(row.topo, *algo.value());
    const bool ok = routable && dl.deadlockFree && dl.error.empty();
    allOk = allOk && ok;
    std::printf("%-16s %-18s %4d %10.2f %14s  %s\n", row.label,
                algo.value()->name().c_str(), algo.value()->numVcs(),
                hops / pairs, ok ? "YES" : "NO", row.avoidance);
    report.row("rows", {{"topology", row.label},
                        {"strategy", algo.value()->name()},
                        {"vcs", algo.value()->numVcs()},
                        {"avg_hops", hops / pairs},
                        {"deadlock_free", ok}});
  }
  bench::printRule(96);
  std::printf("paper: DFS/Fat-Tree (no need), minimal/Dragonfly (changing VC),\n"
              "X-Y / X-Y-Z mesh (by routing), Clue/torus (routing + changing VC)\n");
  report.set("all_ok", allOk);
  report.write();
  return allOk ? 0 : 1;
}
