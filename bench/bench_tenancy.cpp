// Tenancy robustness: victim SLO-goodput retention and cross-tenant blast
// radius under a rogue-tenant storm, with slice scoping on vs off.
//
// Two tenants share one 2-switch SDT plant. The victim runs a modest serving
// mix (gold partition-aggregate, silver incast, bronze background); the
// rogue runs incast groups that a kOverloadStorm fault multiplies by 48x
// mid-run. Two arms:
//   - scoped: TenantManager carves disjoint cable slices and each tenant's
//     AdmissionController watches only its own slice's queues
//     (restrictToPorts) — the storm can only fill cables and credits the
//     rogue owns.
//   - unscoped: both tenants deploy as ONE flat slice over shared cables
//     with ONE shared admission controller — the storm fills the common
//     fabric queues and the shared pressure signal throttles and sheds the
//     victim's traffic along with the rogue's.
// Each arm is normalized against its own calm run (rogue at nominal rate,
// no storm): retention = victim SLO-goodput under storm / calm. Emits
// BENCH_tenancy.json with both retentions and the blast-radius rows the
// README cites (acceptance: scoped >= 95%, unscoped <= 60%).
#include <algorithm>
#include <array>
#include <cstdio>

#include "admission/admission.hpp"
#include "bench_util.hpp"
#include "projection/plant.hpp"
#include "routing/shortest_path.hpp"
#include "sim/faults.hpp"
#include "sim/transport.hpp"
#include "tenant/tenant.hpp"
#include "topo/generators.hpp"
#include "workloads/datacenter.hpp"

using namespace sdt;

namespace {

constexpr TimeNs kDuration = msToNs(8.0);
constexpr TimeNs kStormStart = msToNs(0.3);
constexpr TimeNs kStormLen = msToNs(7.5);
constexpr double kStormIntensity = 48.0;

struct Score {
  double sloGoodputGbps = 0.0;
  double goodputGbps = 0.0;
  double completionRate = 0.0;
  double goldSloHitRate = 1.0;
  double silverSloHitRate = 1.0;
  double shedFraction = 0.0;
  double victimPeakPressure = 0.0;  ///< pressure at the victim's controller
  std::uint64_t fabricDrops = 0;
};

double sloHitRate(const workloads::ServingRuntime& rt, admission::Priority cls) {
  const auto s = rt.classStats(cls);
  const std::uint64_t scored = s.sloHit + s.sloMiss;
  return scored == 0 ? 1.0
                     : static_cast<double>(s.sloHit) / static_cast<double>(scored);
}

projection::Plant makePlant() {
  projection::PlantConfig cfg;
  cfg.numSwitches = 2;
  cfg.spec = projection::openflow64x100G();
  cfg.hostPortsPerSwitch = 6;
  cfg.interLinksPerPair = 8;
  auto plant = projection::buildPlant(cfg);
  if (!plant.ok()) {
    std::fprintf(stderr, "plant: %s\n", plant.error().message.c_str());
    std::abort();
  }
  return plant.value();
}

void addVictimMix(workloads::ServingRuntime& rt, const std::array<int, 4>& v) {
  // Gold: partition-aggregate queries rooted at the first victim host.
  workloads::PartitionAggregateSpec pa;
  pa.root = v[0];
  pa.workers = {v[1], v[2], v[3]};
  pa.meanQueryInterval = usToNs(300.0);
  rt.addPartitionAggregate(pa);
  // Silver: 3-to-1 incast answering the same front host — every response
  // crosses the fabric cables the rogue storms in the unscoped arm.
  workloads::IncastSpec incast;
  incast.aggregator = v[0];
  incast.senders = {v[1], v[2], v[3]};
  incast.bytesPerFlow = 8 * kKiB;
  incast.meanRoundInterval = usToNs(100.0);
  rt.addIncast(incast);
  // Bronze: light background between all victim hosts.
  workloads::BurstyMixSpec mix;
  mix.hosts = {v[0], v[1], v[2], v[3]};
  mix.meanFlowInterval = usToNs(200.0);
  rt.addBurstyMix(mix);
}

void addRogueMix(workloads::ServingRuntime& rt, const std::array<int, 4>& r) {
  // Two 3-to-1 incast groups pulling in opposite directions along the line;
  // generator ownership sits at the aggregators, which is where the
  // kOverloadStorm rogue-tenant multiplier attaches.
  for (const auto& [agg, s0, s1, s2] :
       {std::array{r[0], r[1], r[2], r[3]}, std::array{r[3], r[0], r[1], r[2]}}) {
    workloads::IncastSpec incast;
    incast.aggregator = agg;
    incast.senders = {s0, s1, s2};
    incast.bytesPerFlow = 32 * kKiB;
    incast.meanRoundInterval = usToNs(200.0);
    rt.addIncast(incast);
  }
}

/// One simulated run. `scoped` selects slice carving + per-tenant admission
/// vs one flat deployment + one shared controller; `storm` arms the rogue
/// overload faults. Returns the VICTIM's scores only.
Score runArm(bool scoped, bool storm) {
  sim::Simulator sim;
  tenant::TenantManager mgr(makePlant());

  const topo::Topology victimTopo = topo::makeLine(4);
  const topo::Topology rogueTopo = topo::makeLine(4);
  const topo::Topology sharedTopo = topo::makeLine(4, {.hostsPerSwitch = 2});
  const routing::ShortestPathRouting victimRouting(victimTopo);
  const routing::ShortestPathRouting rogueRouting(rogueTopo);
  const routing::ShortestPathRouting sharedRouting(sharedTopo);

  std::array<int, 4> v{};  // victim hosts, one per line position
  std::array<int, 4> r{};  // rogue hosts, one per line position
  if (scoped) {
    tenant::TenantSpec victim;
    victim.name = "victim";
    victim.topology = &victimTopo;
    victim.routing = &victimRouting;
    victim.deploy.requireDeadlockFree = false;
    if (!mgr.admit(victim).ok()) std::abort();
    tenant::TenantSpec rogue = victim;
    rogue.name = "rogue";
    rogue.topology = &rogueTopo;
    rogue.routing = &rogueRouting;
    if (!mgr.admit(rogue).ok()) std::abort();
    v = {0, 1, 2, 3};  // tenant 1, hostBase 0
    r = {4, 5, 6, 7};  // tenant 2, hostBase 4
  } else {
    // Scoping disabled: everyone in one flat slice. Hosts attach per switch
    // in pairs (sw0: 0,1; sw1: 2,3; ...) — give the victim the first host
    // of each switch so its geometry matches the scoped arm.
    tenant::TenantSpec flat;
    flat.name = "shared";
    flat.topology = &sharedTopo;
    flat.routing = &sharedRouting;
    flat.deploy.requireDeadlockFree = false;
    if (!mgr.admit(flat).ok()) std::abort();
    v = {0, 2, 4, 6};
    r = {1, 3, 5, 7};
  }

  sim::NetworkConfig ncfg;
  ncfg.pfcEnabled = false;  // lossy fabric: a storm drops, it does not pause
  auto built = mgr.buildNetwork(sim, ncfg, {2.0, 1.0});
  sim::TransportManager transport(sim, *built.net, {});

  admission::Policy policy;
  admission::AdmissionController victimAdm(sim, *built.net, policy);
  admission::AdmissionController rogueAdm(sim, *built.net, policy);
  if (scoped) {
    victimAdm.restrictToPorts(mgr.slice(1)->watchPorts);
    rogueAdm.restrictToPorts(mgr.slice(2)->watchPorts);
  }
  // Unscoped: victimAdm samples every queue and gates BOTH tenants — the
  // rogue's storm pressure drains the victim's credits too.
  admission::AdmissionController& sharedAdm = victimAdm;

  workloads::ServingConfig vcfg;
  vcfg.duration = kDuration;
  vcfg.seed = 0x5D7C0FFEEULL;
  workloads::ServingRuntime victimRt(sim, *built.net, transport, vcfg);
  victimRt.setAdmission(scoped ? &victimAdm : &sharedAdm);
  addVictimMix(victimRt, v);

  workloads::ServingConfig rcfg;
  rcfg.duration = kDuration;
  rcfg.seed = 0xB10CB10CULL;
  workloads::ServingRuntime rogueRt(sim, *built.net, transport, rcfg);
  rogueRt.setAdmission(scoped ? &rogueAdm : &sharedAdm);
  addRogueMix(rogueRt, r);

  sim::FaultInjector injector(sim, *built.net, 42);
  rogueRt.attachOverload(injector);
  if (storm) {
    injector.rogueTenant(kStormStart, kStormLen, r[0], kStormIntensity);
    injector.rogueTenant(kStormStart, kStormLen, r[3], kStormIntensity);
  }
  injector.arm();

  victimAdm.start(kDuration);
  if (scoped) rogueAdm.start(kDuration);
  victimRt.start();
  rogueRt.start();
  sim.run();

  const auto total = victimRt.totalStats();
  Score s;
  // Rate over the FIXED generation window, not the drain tail: the rogue's
  // storm backlog can take several windows to drain, and dividing the
  // victim's on-time bytes by that tail would charge the victim for sim
  // time it never used. Late victim work is already discounted by the SLO
  // scoring (it lands in completedBytes but not sloGoodBytes).
  const double seconds = static_cast<double>(kDuration) * 1e-9;
  s.goodputGbps =
      static_cast<double>(total.completedBytes) * 8.0 / seconds * 1e-9;
  s.sloGoodputGbps =
      static_cast<double>(total.sloGoodBytes) * 8.0 / seconds * 1e-9;
  s.completionRate = total.offered == 0
                         ? 0.0
                         : static_cast<double>(total.completed) /
                               static_cast<double>(total.offered);
  s.goldSloHitRate = sloHitRate(victimRt, admission::Priority::kGold);
  s.silverSloHitRate = sloHitRate(victimRt, admission::Priority::kSilver);
  s.shedFraction = total.offered == 0
                       ? 0.0
                       : static_cast<double>(total.shed) /
                             static_cast<double>(total.offered);
  s.victimPeakPressure = victimAdm.peakPressure();
  for (int sw = 0; sw < built.net->numSwitches(); ++sw) {
    for (int port = 0; port < built.net->switchPortCount(sw); ++port) {
      s.fabricDrops += built.net->switchPortCounters(sw, port).drops;
    }
  }
  return s;
}

void reportArm(bench::JsonReport& report, const char* arm, const char* phase,
               const Score& s) {
  std::printf("%-9s %-6s %13.3f %12.3f %9.1f%% %8.1f%% %10.1f%% %6.1f%% %8.3f %8llu\n",
              arm, phase, s.sloGoodputGbps, s.goodputGbps,
              s.completionRate * 100.0, s.goldSloHitRate * 100.0,
              s.silverSloHitRate * 100.0, s.shedFraction * 100.0,
              s.victimPeakPressure,
              static_cast<unsigned long long>(s.fabricDrops));
  report.row(arm, {{"phase", phase},
                   {"victim_slo_goodput_gbps", s.sloGoodputGbps},
                   {"victim_goodput_gbps", s.goodputGbps},
                   {"victim_completion_rate", s.completionRate},
                   {"victim_gold_slo_hit_rate", s.goldSloHitRate},
                   {"victim_silver_slo_hit_rate", s.silverSloHitRate},
                   {"victim_shed_fraction", s.shedFraction},
                   {"victim_peak_pressure", s.victimPeakPressure},
                   {"fabric_drops", static_cast<std::int64_t>(s.fabricDrops)}});
}

}  // namespace

int main() {
  bench::JsonReport report("tenancy");
  std::printf("# tenancy blast radius: 2-switch plant, victim serving mix vs 48x rogue storm\n");
  std::printf("%-9s %-6s %13s %12s %10s %9s %11s %7s %8s %8s\n", "arm",
              "phase", "slo-gput Gb/s", "goodput Gb/s", "complete%",
              "gold-slo", "silver-slo", "shed%", "pressure", "drops");

  const Score scopedCalm = runArm(/*scoped=*/true, /*storm=*/false);
  const Score scopedStorm = runArm(/*scoped=*/true, /*storm=*/true);
  const Score flatCalm = runArm(/*scoped=*/false, /*storm=*/false);
  const Score flatStorm = runArm(/*scoped=*/false, /*storm=*/true);
  reportArm(report, "scoped", "calm", scopedCalm);
  reportArm(report, "scoped", "storm", scopedStorm);
  reportArm(report, "unscoped", "calm", flatCalm);
  reportArm(report, "unscoped", "storm", flatStorm);

  const auto retention = [](const Score& storm, const Score& calm) {
    return calm.sloGoodputGbps > 0.0
               ? storm.sloGoodputGbps / calm.sloGoodputGbps
               : 0.0;
  };
  const double scopedRetention = retention(scopedStorm, scopedCalm);
  const double flatRetention = retention(flatStorm, flatCalm);
  std::printf("# victim SLO-goodput retention: scoped %.1f%%, unscoped %.1f%%\n",
              scopedRetention * 100.0, flatRetention * 100.0);
  std::printf("# cross-tenant blast radius (1 - retention): scoped %.1f%%, unscoped %.1f%%\n",
              (1.0 - scopedRetention) * 100.0, (1.0 - flatRetention) * 100.0);
  report.set("victim_slo_retention_scoped", scopedRetention);
  report.set("victim_slo_retention_unscoped", flatRetention);
  report.set("blast_radius_scoped", 1.0 - scopedRetention);
  report.set("blast_radius_unscoped", 1.0 - flatRetention);
  report.set("storm_intensity", kStormIntensity);
  report.write();
  return 0;
}
