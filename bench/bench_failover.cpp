// Controller-HA failover benchmark: kill the leader at every CrashPoint of a
// live line(6) -> ring(6) reconfiguration and measure what the replication
// stream buys over a cold start.
//
// Three headline numbers per crash point:
//   - takeover window: lease expiry -> a standby claims the fabric;
//   - outage: lease expiry -> converged tables under the new term;
//   - flow-mods: what the journal-driven failover recovery sent, against the
//     trust-nothing cold-start alternative (wipe + reinstall the intent) —
//     the stream must make failover strictly cheaper.
// A lease-interval sweep shows the takeover window tracking the lease (the
// availability/false-failover knob). Emits BENCH_failover.json.
#include <cstdio>

#include "bench_util.hpp"
#include "controller/controller.hpp"
#include "controller/ha.hpp"
#include "controller/journal.hpp"
#include "controller/recovery.hpp"
#include "controller/transaction.hpp"
#include "routing/shortest_path.hpp"
#include "sim/control_channel.hpp"

using namespace sdt;

namespace {

struct FailoverOutcome {
  bool converged = false;
  int decision = 0;
  int flowMods = 0;
  int coldStartMods = 0;  ///< full-redeploy cost of the same recovery
  std::uint64_t framesStreamed = 0;
  std::uint64_t fencedWrites = 0;
  TimeNs takeoverWindow = 0;  ///< lease expiry -> claim
  TimeNs outage = 0;          ///< lease expiry -> converged tables
};

/// One leader kill on the line(6) -> ring(6) rig: the transaction crashes the
/// leader at `crashAt`; replica 1 must notice the silence, claim, fence, and
/// converge from its streamed journal replica.
FailoverOutcome runFailover(std::uint64_t seed, controller::CrashPoint crashAt,
                            TimeNs leaseInterval, double fabricDrop) {
  FailoverOutcome out;
  const topo::Topology from = topo::makeLine(6);
  const topo::Topology to = topo::makeRing(6);
  const routing::ShortestPathRouting rFrom(from);
  const routing::ShortestPathRouting rTo(to);
  auto plantR = projection::planPlant({&from, &to}, {.numSwitches = 2});
  if (!plantR) std::abort();
  controller::SdtController ctl(plantR.value());
  auto depR = ctl.deploy(from, rFrom);
  if (!depR) std::abort();

  sim::Simulator sim;
  sim::ControlChannelConfig fcfg;
  fcfg.dropProb = fabricDrop;
  fcfg.dupProb = fabricDrop / 2;
  fcfg.reorderProb = fabricDrop / 2;
  sim::ControlChannel fabric(sim, seed, fcfg);
  sim::ControlChannelConfig rcfg;
  rcfg.baseDelay = 1'000;
  rcfg.jitter = 500;
  sim::ControlChannel repl(sim, seed + 101, rcfg);

  controller::HaConfig hcfg;
  hcfg.deploy.requireDeadlockFree = false;
  hcfg.retry.seed = seed;
  if (leaseInterval > 0) hcfg.leaseInterval = leaseInterval;
  controller::ReplicatedController ha(sim, ctl, fabric, repl, 3, hcfg);
  controller::IntentCatalog catalog;
  catalog[from.name()] = {&from, &rFrom};
  catalog[to.name()] = {&to, &rTo};
  ha.setCatalog(catalog);
  if (!ha.adoptDeployment(std::move(depR).value())) std::abort();
  ha.start();

  controller::DeployOptions dopt;
  dopt.requireDeadlockFree = false;
  auto planR = ctl.planUpdate(ha.deployment(), to, rTo, dopt);
  if (!planR) std::abort();
  controller::ReconfigOptions topt;
  topt.journal = &ha.leaderJournal();
  topt.term = ha.termOf(ha.leaderId());
  topt.leaderId = ha.leaderId();
  topt.crashAt = crashAt;
  topt.onCrash = [&ha]() { ha.kill(ha.leaderId()); };
  controller::ReconfigTransaction tx(sim, fabric, ha.deployment(),
                                     std::move(planR).value(), topt);
  sim.schedule(usToNs(100.0), [&tx]() { tx.start(); });
  sim.runUntil(msToNs(120.0));

  if (ha.failovers().empty()) return out;
  const controller::FailoverReport& report = ha.failovers().front();
  out.converged = report.converged && report.recovery.pureStateVerified;
  out.decision = static_cast<int>(report.recovery.decision);
  out.flowMods = report.recovery.flowMods;
  out.coldStartMods = report.recovery.fullRedeployFlowMods;
  out.framesStreamed = ha.status(report.newLeader).framesReceived;
  out.fencedWrites = ha.fencedWritesTotal();
  out.takeoverWindow = report.takeoverStartedAt - report.leaseExpiredAt;
  out.outage = report.takeoverWindow();
  return out;
}

}  // namespace

int main() {
  std::printf("== Controller HA: leader-kill failover cost ==\n");
  bench::JsonReport report("failover");

  const controller::CrashPoint points[] = {
      controller::CrashPoint::kPrepare, controller::CrashPoint::kMidInstall,
      controller::CrashPoint::kPreFlip, controller::CrashPoint::kPostFlip,
      controller::CrashPoint::kMidGc};

  // Crash-point sweep on clean and lossy fabrics. The replication channel is
  // kept intact — it models the controllers' management network, not the
  // fabric under reconfiguration.
  bool allCheaper = true;
  for (const double drop : {0.0, 0.15}) {
    std::printf("\n-- leader killed at each crash point (fabric drop %.2f) --\n",
                drop);
    std::printf("%12s %14s %12s %10s %8s %10s %8s\n", "crash at", "decision",
                "takeover(us)", "outage(us)", "mods", "cold mods", "frames");
    bench::printRule(84);
    for (const controller::CrashPoint p : points) {
      const FailoverOutcome out = runFailover(2023, p, 0, drop);
      if (!out.converged) {
        std::printf("  WARN: %s did not converge\n", controller::crashPointName(p));
        allCheaper = false;
        continue;
      }
      const double takeoverUs = static_cast<double>(out.takeoverWindow) / 1e3;
      const double outageUs = static_cast<double>(out.outage) / 1e3;
      std::printf("%12s %14s %12.1f %10.1f %8d %10d %8llu\n",
                  controller::crashPointName(p),
                  controller::recoveryDecisionName(
                      static_cast<controller::RecoveryDecision>(out.decision)),
                  takeoverUs, outageUs, out.flowMods, out.coldStartMods,
                  static_cast<unsigned long long>(out.framesStreamed));
      allCheaper = allCheaper && out.flowMods < out.coldStartMods;
      report.row(drop > 0 ? "crash_sweep_lossy" : "crash_sweep",
                 {{"crash_at", controller::crashPointName(p)},
                  {"decision",
                   controller::recoveryDecisionName(
                       static_cast<controller::RecoveryDecision>(out.decision))},
                  {"takeover_window_us", takeoverUs},
                  {"outage_us", outageUs},
                  {"flow_mods", out.flowMods},
                  {"cold_start_flow_mods", out.coldStartMods},
                  {"frames_streamed", static_cast<std::int64_t>(out.framesStreamed)},
                  {"fenced_writes", static_cast<std::int64_t>(out.fencedWrites)}});
      if (drop == 0.0 && p == controller::CrashPoint::kPostFlip) {
        report.set("post_flip_takeover_window_us", takeoverUs);
        report.set("post_flip_outage_us", outageUs);
        report.set("post_flip_flow_mods", out.flowMods);
        report.set("post_flip_cold_start_flow_mods", out.coldStartMods);
        report.set("post_flip_savings_fraction",
                   out.coldStartMods > 0
                       ? 1.0 - static_cast<double>(out.flowMods) /
                                   static_cast<double>(out.coldStartMods)
                       : 0.0);
      }
    }
  }
  report.set("all_cheaper_than_cold_start", allCheaper);

  // Lease sweep: the takeover window is bounded by the lease the operator
  // picks — shorter lease, faster failover, touchier to heartbeat loss.
  std::printf("\n-- lease-interval sweep at post-flip crash --\n");
  std::printf("%10s %14s %12s\n", "lease(us)", "takeover(us)", "outage(us)");
  bench::printRule(40);
  for (const double leaseUs : {1'000.0, 2'000.0, 5'000.0}) {
    const FailoverOutcome out = runFailover(
        2023, controller::CrashPoint::kPostFlip, usToNs(leaseUs), 0.0);
    if (!out.converged) {
      std::printf("  WARN: lease=%.0fus did not converge\n", leaseUs);
      continue;
    }
    const double takeoverUs = static_cast<double>(out.takeoverWindow) / 1e3;
    const double outageUs = static_cast<double>(out.outage) / 1e3;
    std::printf("%10.0f %14.1f %12.1f\n", leaseUs, takeoverUs, outageUs);
    report.row("lease_sweep", {{"lease_us", leaseUs},
                               {"takeover_window_us", takeoverUs},
                               {"outage_us", outageUs}});
  }

  report.write();
  return 0;
}
