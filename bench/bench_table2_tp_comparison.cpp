// Table II reproduction: comparison between SDT and the other TP methods
// (SP, SP-OS, TurboNet) on reconfiguration time, hardware requirement,
// hardware cost, projectable link speed for the DC topologies, and the
// number of projectable Internet Topology Zoo WANs.
//
// Budget model (see DESIGN.md / EXPERIMENTS.md): three switches of the
// column's spec, QSFP28 breakout 100G -> 2x50G -> 4x25G, 25G speed floor for
// the DC rows; TurboNet loses half its ports to loopback pairs and half the
// bandwidth to recirculation.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "projection/feasibility.hpp"
#include "testbed/sweep.hpp"
#include "topo/zoo.hpp"

using namespace sdt;
using projection::HardwareBudget;
using projection::TpMethod;

namespace {

struct Column {
  TpMethod method;
  HardwareBudget budget;
  const char* label;
};

std::string speedCell(const projection::SpeedClass& s) {
  if (!s.feasible) return "x";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "<=%.0fG", s.linkSpeed.value);
  return buf;
}

}  // namespace

int main() {
  std::printf("== Table II: SDT vs other TP methods ==\n\n");
  bench::JsonReport report("table2_tp_comparison");

  const std::vector<Column> columns = {
      {TpMethod::kSP, {projection::openflow128x100G(), 3}, "SP 128x100G"},
      {TpMethod::kSPOS, {projection::openflow128x100G(), 3}, "SP-OS 128x100G"},
      {TpMethod::kTurboNet, {projection::p4Switch64x100G(), 3}, "Turbo 64x100G"},
      {TpMethod::kTurboNet, {projection::p4Switch128x100G(), 3}, "Turbo 128x100G"},
      {TpMethod::kSDT, {projection::openflow64x100G(), 3}, "SDT 64x100G"},
      {TpMethod::kSDT, {projection::openflow128x100G(), 3}, "SDT 128x100G"},
  };

  // Header.
  std::printf("%-22s", "row");
  for (const Column& c : columns) std::printf("%16s", c.label);
  std::printf("\n");
  bench::printRule(22 + 16 * static_cast<int>(columns.size()));

  // Reconfiguration time (typical range label + modeled value for a
  // mid-size topology: ~120 cables / ~3000 flow entries).
  std::printf("%-22s", "reconfig (typical)");
  for (const Column& c : columns) std::printf("%16s", reconfigRangeLabel(c.method).c_str());
  std::printf("\n");
  std::printf("%-22s", "reconfig (modeled)");
  for (const Column& c : columns) {
    const int work = c.method == TpMethod::kSDT ? 3000 : 120;
    std::printf("%16s", humanTime(projection::reconfigTime(c.method, work)).c_str());
  }
  std::printf("\n");

  // Hardware requirement + cost.
  std::printf("%-22s", "hardware");
  for (const Column& c : columns) {
    std::printf("%16s", projection::hardwareCost(c.method, c.budget).requirement
                            .substr(0, 15).c_str());
  }
  std::printf("\n%-22s", "hardware cost");
  for (const Column& c : columns) {
    std::printf("         >$%4.0fk",
                projection::hardwareCost(c.method, c.budget).hardwareUsd / 1000.0);
  }
  std::printf("\n");

  // DC topology speed grid.
  struct Row {
    const char* label;
    topo::Topology topo;
  };
  std::vector<Row> rows;
  rows.push_back({"FatTree k=4", topo::makeFatTree(4)});
  rows.push_back({"FatTree k=6", topo::makeFatTree(6)});
  rows.push_back({"FatTree k=8", topo::makeFatTree(8)});
  rows.push_back({"Dragonfly 4/9/2", topo::makeDragonfly(4, 9, 2)});
  rows.push_back({"Torus 4x4x4", topo::makeTorus3D(4, 4, 4)});
  rows.push_back({"Torus 5x5x5", topo::makeTorus3D(5, 5, 5)});
  rows.push_back({"Torus 6x6x6", topo::makeTorus3D(6, 6, 6)});
  for (const Row& row : rows) {
    std::printf("%-22s", row.label);
    for (const Column& c : columns) {
      const auto speed = projection::maxProjectableSpeed(c.method, row.topo, c.budget);
      std::printf("%16s", speedCell(speed).c_str());
      report.row("speed_grid", {{"topology", row.label},
                                {"column", c.label},
                                {"feasible", speed.feasible},
                                {"link_speed_gbps", speed.linkSpeed.value}});
    }
    std::printf("\n");
  }

  // WAN row: 261 synthetic Topology Zoo networks. Feasibility of each WAN is
  // independent of every other, so one SweepRunner pass checks all columns
  // per WAN concurrently (replacing six serial 261-topology scans).
  const testbed::SweepRunner sweep;
  const auto wanFeasible = sweep.run(
      static_cast<std::size_t>(topo::zooSize()), [&](std::size_t i) {
        const topo::Topology wan = topo::makeZooTopology(static_cast<int>(i));
        std::vector<bool> feasible(columns.size());
        for (std::size_t c = 0; c < columns.size(); ++c) {
          feasible[c] = projection::maxProjectableSpeed(columns[c].method, wan,
                                                        columns[c].budget, Gbps{0.0})
                            .feasible;
        }
        return feasible;
      });
  std::vector<int> wanCounts(columns.size(), 0);
  for (const auto& feasible : wanFeasible) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      wanCounts[c] += feasible[c] ? 1 : 0;
    }
  }
  std::printf("%-22s", "261 Internet WANs");
  for (std::size_t c = 0; c < columns.size(); ++c) {
    std::printf("%16d", wanCounts[c]);
    report.row("projectable_wans", {{"column", columns[c].label},
                                    {"count", wanCounts[c]},
                                    {"total", topo::zooSize()}});
  }
  std::printf("\n");
  bench::printRule(22 + 16 * static_cast<int>(columns.size()));
  report.set("sweep_threads", sweep.threads());
  report.write();
  std::printf(
      "paper row (WANs): SP/SP-OS/SDT@128 -> 260, SDT@64 & Turbo@128 -> 249, "
      "Turbo@64 -> 248\n"
      "paper shape: SDT >= SP = SP-OS >> TurboNet in scalability; SDT cheapest;\n"
      "SP reconfig hours, TurboNet 10s+ (P4 recompile), SP-OS/SDT sub-second.\n");
  return 0;
}
