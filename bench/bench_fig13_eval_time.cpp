// Fig. 13 reproduction: evaluation times of full testbed, simulator, and SDT
// for IMB Alltoall on Dragonfly(4,9,2) with 1..32 randomly selected nodes.
//
// SDT's time includes the topology deployment time (the paper's point: at
// small node counts deployment dominates SDT's evaluation time, yet SDT
// stays far below the simulator).
//
// The node-count points are independent experiments, so they run through
// testbed::SweepRunner; every point owns its simulators and the comparison
// is computed from simulated quantities only, so the table is bit-identical
// to a serial sweep.
#include <cstdio>
#include <stdexcept>

#include "bench_util.hpp"
#include "testbed/sweep.hpp"
#include "workloads/apps.hpp"

using namespace sdt;

namespace {

struct Point {
  int nodes = 0;
  testbed::Comparison c;
  double deploySec = 0.0;
};

}  // namespace

int main() {
  std::printf("== Fig. 13: evaluation time vs node count (IMB Alltoall, Dragonfly) ==\n\n");
  const topo::Topology topo = topo::makeDragonfly(4, 9, 2);
  auto algo = routing::makeRouting("dragonfly-minimal", topo);
  if (!algo) return 1;
  const projection::Plant plant = bench::autoPlant(topo);
  const testbed::SimulatorCostModel model;

  const std::vector<int> nodeCounts{1, 2, 4, 8, 16, 32};
  const testbed::SweepRunner sweep;
  std::printf("# sweep: %zu points on %d threads\n\n", nodeCounts.size(),
              sweep.threads());
  const std::vector<Point> points =
      sweep.run(nodeCounts.size(), [&](std::size_t i) {
        const int nodes = nodeCounts[i];
        // Alltoall needs >= 2 ranks; a single node runs a trivial local loop.
        const workloads::Workload w =
            nodes >= 2 ? workloads::imbAlltoall(nodes, 32 * 1024, 2)
                       : workloads::Workload{"single-node",
                                             {workloads::Program{workloads::Op::compute(
                                                 usToNs(50.0))}}};
        const std::vector<int> rankMap = bench::selectHosts(topo.numHosts(), nodes);

        const testbed::InstanceOptions opt;
        auto full = testbed::makeFullTestbed(topo, *algo.value(), opt);
        const testbed::RunResult fr = testbed::runWorkload(full, w, rankMap);
        auto sdt = testbed::makeSdt(topo, *algo.value(), plant, opt);
        if (!sdt) throw std::runtime_error(sdt.error().message);
        const testbed::RunResult sr = testbed::runWorkload(sdt.value(), w, rankMap);

        Point p;
        p.nodes = nodes;
        p.c = testbed::compare(sr, sdt.value().deployTime, fr, topo.numSwitches(), 1.0,
                               model);
        p.deploySec = nsToSec(sdt.value().deployTime);
        return p;
      });

  bench::JsonReport report("fig13_eval_time");
  std::printf("%6s %16s %16s %16s %12s\n", "nodes", "full testbed (s)",
              "simulator (s)", "SDT (s)", "SDT deploy");
  bench::printRule(72);
  double lastSim = 0.0;
  bool simGrows = true;
  bool ordering = true;
  for (const Point& p : points) {
    std::printf("%6d %16.6f %16.4f %16.4f %11.3fs\n", p.nodes,
                p.c.fullTestbedEvalSeconds, p.c.simulatorEvalSeconds, p.c.sdtEvalSeconds,
                p.deploySec);
    report.row("points", {{"nodes", p.nodes},
                          {"full_testbed_s", p.c.fullTestbedEvalSeconds},
                          {"simulator_s", p.c.simulatorEvalSeconds},
                          {"sdt_s", p.c.sdtEvalSeconds},
                          {"sdt_deploy_s", p.deploySec}});
    if (p.nodes >= 2) {
      simGrows = simGrows && p.c.simulatorEvalSeconds > lastSim;
      lastSim = p.c.simulatorEvalSeconds;
      ordering = ordering && p.c.fullTestbedEvalSeconds < p.c.sdtEvalSeconds;
      // SDT must beat the simulator once the run is non-trivial; at tiny
      // ACTs the one-time deploy dominates (the paper's own caveat).
      if (p.nodes >= 16) ordering = ordering && p.c.sdtEvalSeconds < p.c.simulatorEvalSeconds;
    }
  }
  bench::printRule(72);
  std::printf("shape: simulator time grows with nodes: %s;\n"
              "       full < SDT always, SDT < simulator at scale: %s\n",
              simGrows ? "YES" : "NO", ordering ? "YES" : "NO");
  std::printf("paper: SDT deploy time shows at small ACT but SDT stays far below\n"
              "the simulator; simulator time grows steeply with node count.\n");
  report.set("sim_grows_with_nodes", simGrows);
  report.set("ordering_ok", ordering);
  report.set("sweep_threads", sweep.threads());
  report.write();
  return 0;
}
