// Fig. 13 reproduction: evaluation times of full testbed, simulator, and SDT
// for IMB Alltoall on Dragonfly(4,9,2) with 1..32 randomly selected nodes.
//
// SDT's time includes the topology deployment time (the paper's point: at
// small node counts deployment dominates SDT's evaluation time, yet SDT
// stays far below the simulator).
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/apps.hpp"

using namespace sdt;

int main() {
  std::printf("== Fig. 13: evaluation time vs node count (IMB Alltoall, Dragonfly) ==\n\n");
  const topo::Topology topo = topo::makeDragonfly(4, 9, 2);
  auto algo = routing::makeRouting("dragonfly-minimal", topo);
  if (!algo) return 1;
  const projection::Plant plant = bench::autoPlant(topo);
  const testbed::SimulatorCostModel model;

  std::printf("%6s %16s %16s %16s %12s\n", "nodes", "full testbed (s)",
              "simulator (s)", "SDT (s)", "SDT deploy");
  bench::printRule(72);
  double lastSim = 0.0;
  bool simGrows = true;
  bool ordering = true;
  for (const int nodes : {1, 2, 4, 8, 16, 32}) {
    // Alltoall needs >= 2 ranks; a single node runs a trivial local loop.
    workloads::Workload w =
        nodes >= 2 ? workloads::imbAlltoall(nodes, 32 * 1024, 2)
                   : workloads::Workload{"single-node",
                                         {workloads::Program{workloads::Op::compute(
                                             usToNs(50.0))}}};
    const std::vector<int> rankMap = bench::selectHosts(topo.numHosts(), nodes);

    testbed::InstanceOptions opt;
    auto full = testbed::makeFullTestbed(topo, *algo.value(), opt);
    const testbed::RunResult fr = testbed::runWorkload(full, w, rankMap);
    auto sdt = testbed::makeSdt(topo, *algo.value(), plant, opt);
    if (!sdt) {
      std::fprintf(stderr, "%s\n", sdt.error().message.c_str());
      return 1;
    }
    const testbed::RunResult sr = testbed::runWorkload(sdt.value(), w, rankMap);

    const testbed::Comparison c =
        testbed::compare(sr, sdt.value().deployTime, fr, topo.numSwitches(), 1.0, model);
    std::printf("%6d %16.6f %16.4f %16.4f %11.3fs\n", nodes, c.fullTestbedEvalSeconds,
                c.simulatorEvalSeconds, c.sdtEvalSeconds,
                nsToSec(sdt.value().deployTime));
    if (nodes >= 2) {
      simGrows = simGrows && c.simulatorEvalSeconds > lastSim;
      lastSim = c.simulatorEvalSeconds;
      ordering = ordering && c.fullTestbedEvalSeconds < c.sdtEvalSeconds;
      // SDT must beat the simulator once the run is non-trivial; at tiny
      // ACTs the one-time deploy dominates (the paper's own caveat).
      if (nodes >= 16) ordering = ordering && c.sdtEvalSeconds < c.simulatorEvalSeconds;
    }
  }
  bench::printRule(72);
  std::printf("shape: simulator time grows with nodes: %s;\n"
              "       full < SDT always, SDT < simulator at scale: %s\n",
              simGrows ? "YES" : "NO", ordering ? "YES" : "NO");
  std::printf("paper: SDT deploy time shows at small ACT but SDT stays far below\n"
              "the simulator; simulator time grows steeply with node count.\n");
  return 0;
}
