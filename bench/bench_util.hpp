// Shared helpers for the experiment-reproduction benches.
//
// Each bench binary reproduces one table or figure from the paper's §VI and
// prints the same rows/series the paper reports (see EXPERIMENTS.md for the
// paper-vs-measured record). Binaries run standalone:
//   for b in build/bench/*; do $b; done
#pragma once

#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "projection/plant.hpp"
#include "routing/routing.hpp"
#include "testbed/evaluator.hpp"
#include "topo/generators.hpp"

namespace sdt::bench {

/// Machine-readable bench output: every bench binary records its headline
/// numbers in BENCH_<name>.json (cwd) so the perf trajectory is comparable
/// across PRs without scraping stdout. Typical use:
///
///   bench::JsonReport report("fig11_latency_overhead");
///   report.set("max_overhead", maxOverhead);
///   report.row("points", {{"msglen", 64}, {"overhead", 0.012}});
///   report.write();
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {
    root_["bench"] = name_;
  }

  /// Top-level scalar metric.
  void set(const std::string& key, json::Value value) { root_[key] = std::move(value); }

  /// Append one row to the named array of per-point objects.
  void row(const std::string& arrayKey, json::Object fields) {
    auto it = root_.find(arrayKey);
    if (it == root_.end()) it = root_.emplace(arrayKey, json::Array{}).first;
    it->second.asArray().emplace_back(std::move(fields));
  }

  /// Obs registry embedded in the report: hand it to collectors
  /// (obs/collectors.hpp) or NetworkMonitor::attachMetrics and write() adds
  /// a "metrics" section with everything it collected.
  [[nodiscard]] obs::Registry& metrics() { return metrics_; }

  /// Write BENCH_<name>.json; returns false (and warns) on I/O failure.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    json::Object root = root_;
    // Engine geometry + hardware context: every report records the shard
    // count the run used (SDT_SHARDS) and the machine's thread budget, so
    // numbers from different PRs/machines are comparable at a glance.
    root["shards"] = static_cast<std::int64_t>(sim::Simulator::envShards());
    root["sim_workers"] = static_cast<std::int64_t>(sim::Simulator::envWorkers());
    root["hw_threads"] =
        static_cast<std::int64_t>(std::thread::hardware_concurrency());
    root["metrics"] = obs::metricsToJson(metrics_);  // {} when nothing attached
    const std::string text = json::Value(std::move(root)).dump(2);
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "WARN: cannot write %s\n", path.c_str());
      return false;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("# wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  json::Object root_;
  obs::Registry metrics_;
};

/// Auto-size a plant for `topo`, growing the switch count until it fits.
inline projection::Plant autoPlant(const topo::Topology& topo,
                                   projection::PhysicalSwitchSpec spec =
                                       projection::openflow128x100G(),
                                   int startSwitches = 2, int maxSwitches = 8) {
  for (int n = startSwitches; n <= maxSwitches; ++n) {
    auto p = projection::planPlant({&topo}, {.numSwitches = n, .spec = spec});
    if (p.ok()) {
      std::printf("# plant: %d x %s for '%s'\n", n, spec.model.c_str(),
                  topo.name().c_str());
      return std::move(p).value();
    }
  }
  std::fprintf(stderr, "FATAL: no plant fits '%s'\n", topo.name().c_str());
  std::abort();
}

/// Table III routing strategy for a generated topology family.
inline std::string strategyFor(const topo::Topology& topo) {
  const std::string& n = topo.name();
  if (n.rfind("fattree", 0) == 0) return "fattree-dfs";
  if (n.rfind("dragonfly", 0) == 0) return "dragonfly-minimal";
  if (n.rfind("mesh2d", 0) == 0) return "mesh-xy";
  if (n.rfind("mesh3d", 0) == 0) return "mesh-xyz";
  if (n.rfind("torus", 0) == 0) return "torus-clue";
  return "shortest";
}

/// "Randomly selected nodes but kept the same among all evaluations"
/// (§VI-D): deterministic shuffled prefix of the host set.
inline std::vector<int> selectHosts(int totalHosts, int ranks, std::uint64_t seed = 2023) {
  std::vector<int> hosts(static_cast<std::size_t>(totalHosts));
  for (int i = 0; i < totalHosts; ++i) hosts[i] = i;
  Rng rng(seed);
  rng.shuffle(hosts);
  hosts.resize(static_cast<std::size_t>(ranks));
  return hosts;
}

inline void printRule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace sdt::bench
