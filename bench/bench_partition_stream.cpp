// Shootout: streaming partitioning heuristics vs the multilevel scheme
// (ROADMAP item 2) across plant sizes, from the paper's testbed scale up to
// warehouse-scale logical topologies (10^5+ switches) that only the
// streaming path can partition without materializing adjacency.
//
// Axes per (topology, parts) cell: cut weight, imbalance, replication
// factor (edge streamers), edges/sec, and peak resident working state.
// Flags:
//   --small   reduced grid (CI-sized: reference topologies + one large
//             streaming-only case)
//   --check   gate for CI: on every reference topology the best streaming
//             heuristic must reach cut <= 1.5x multilevel without exceeding
//             the same imbalance cap; exit 1 otherwise.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>

#include "bench_util.hpp"
#include "partition/partitioner.hpp"
#include "partition/streaming.hpp"
#include "topo/stream.hpp"
#include "topo/zoo.hpp"

using namespace sdt;

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct Cell {
  std::string method;
  std::int64_t cut = 0;
  double imbalance = 0.0;
  bool violated = false;
  double replication = 1.0;
  double edgesPerSec = 0.0;
  std::int64_t stateBytes = 0;
  double seconds = 0.0;
};

struct CaseSpec {
  std::unique_ptr<topo::EdgeStream> stream;
  int parts = 8;
  /// Reference cases also run multilevel (and feed the --check gate); the
  /// warehouse-scale ones are streaming-only by design.
  bool reference = false;
};

constexpr partition::PartitionMethod kStreamingMethods[] = {
    partition::PartitionMethod::kLDG, partition::PartitionMethod::kFennel,
    partition::PartitionMethod::kHDRF, partition::PartitionMethod::kDBH};

/// Materialize the stream as a Graph — only ever called for reference-sized
/// cases, exactly the thing the streaming path avoids at scale.
topo::Graph materialize(const topo::EdgeStream& stream) {
  topo::Graph g(stream.numVertices());
  stream.forEachEdge([&](int u, int v, std::int64_t w) { g.addEdge(u, v, w); });
  return g;
}

Cell runMultilevel(const topo::Graph& graph, int parts) {
  Cell cell{.method = "multilevel"};
  const auto start = std::chrono::steady_clock::now();
  auto r = partition::partitionGraph(graph, {.parts = parts});
  cell.seconds = secondsSince(start);
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL: multilevel failed: %s\n",
                 r.error().message.c_str());
    std::abort();
  }
  cell.cut = r.value().cutWeight;
  cell.imbalance = r.value().imbalance();
  cell.violated = r.value().imbalanceViolated;
  cell.edgesPerSec = cell.seconds > 0 ? graph.numEdges() / cell.seconds : 0.0;
  // Multilevel's resident state: the graph's CSR-ish adjacency plus the
  // coarsening hierarchy (~2x by the geometric level sum). Approximate, but
  // on the right axis for the memory comparison.
  cell.stateBytes = 2 * (graph.numEdges() * 24 + graph.numVertices() * 16);
  return cell;
}

Cell runStreaming(const topo::EdgeStream& stream, partition::PartitionMethod m,
                  int parts) {
  Cell cell{.method = partition::partitionMethodName(m)};
  const auto start = std::chrono::steady_clock::now();
  auto r = partition::partitionStream(stream,
                                      {.method = m, .parts = parts, .seed = 1});
  cell.seconds = secondsSince(start);
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL: %s failed: %s\n", cell.method.c_str(),
                 r.error().message.c_str());
    std::abort();
  }
  const partition::StreamingResult& res = r.value();
  cell.cut = res.partition.cutWeight;
  cell.imbalance = res.partition.imbalance();
  cell.violated = res.partition.imbalanceViolated;
  cell.replication = res.replicationFactor;
  cell.edgesPerSec = cell.seconds > 0 ? res.edgesStreamed / cell.seconds : 0.0;
  cell.stateBytes = res.peakStateBytes;
  return cell;
}

void printCell(const char* topoName, int parts, const Cell& c) {
  std::printf("%-18s %5d %-10s | %9lld %7.1f%%%s %6.2f | %10.0f %10lld %8.3fs\n",
              topoName, parts, c.method.c_str(), static_cast<long long>(c.cut),
              c.imbalance * 100.0, c.violated ? "!" : " ", c.replication,
              c.edgesPerSec, static_cast<long long>(c.stateBytes), c.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false, check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  std::printf("== Streaming partitioner shootout (%s grid) ==\n\n",
              small ? "small" : "full");

  std::vector<CaseSpec> cases;
  // Reference topologies: small enough for multilevel, anchor the quality
  // gate. Zoo #12 tiled x4 adds a real WAN shape.
  cases.push_back({std::make_unique<topo::FatTreeStream>(8), 8, true});
  cases.push_back({std::make_unique<topo::Torus3DStream>(8, 8, 8), 16, true});
  cases.push_back({std::make_unique<topo::ScaledZooStream>(12, 4), 8, true});
  if (small) {
    // One mid-size streaming-only case keeps the scaling axis in CI.
    cases.push_back({std::make_unique<topo::Torus3DStream>(24, 24, 24), 64, false});
  } else {
    cases.push_back({std::make_unique<topo::FatTreeStream>(32), 32, true});
    cases.push_back({std::make_unique<topo::Torus3DStream>(24, 24, 24), 64, true});
    cases.push_back({std::make_unique<topo::FatTreeStream>(48), 64, false});
    // Warehouse scale, the acceptance bar: 10^5+ logical switches onto 128
    // physical switches, streaming only.
    cases.push_back({std::make_unique<topo::Torus3DStream>(48, 48, 48), 128, false});
    {
      // Scale one zoo WAN past 10^5 vertices by ring-tiling replicas.
      const int baseN = topo::makeZooTopology(12).switchGraph().numVertices();
      const int copies = (100'000 + baseN - 1) / baseN;
      cases.push_back({std::make_unique<topo::ScaledZooStream>(12, copies), 128, false});
    }
  }

  std::printf("%-18s %5s %-10s | %9s %8s %6s | %10s %10s %8s\n", "topology",
              "parts", "method", "cut", "imbal", "repl", "edges/s", "state(B)",
              "time");
  bench::printRule(104);

  bench::JsonReport report("partition_stream");
  report.set("grid", small ? "small" : "full");
  bool gateOk = true;
  for (const CaseSpec& spec : cases) {
    const std::string topoName = spec.stream->name();
    std::optional<Cell> multi;
    if (spec.reference) {
      const topo::Graph graph = materialize(*spec.stream);
      multi = runMultilevel(graph, spec.parts);
      printCell(topoName.c_str(), spec.parts, *multi);
    }
    std::optional<Cell> bestStream;
    for (const partition::PartitionMethod m : kStreamingMethods) {
      const Cell cell = runStreaming(*spec.stream, m, spec.parts);
      printCell(topoName.c_str(), spec.parts, cell);
      report.row("cells", {{"topology", topoName},
                           {"vertices", spec.stream->numVertices()},
                           {"edges", spec.stream->numEdges()},
                           {"parts", spec.parts},
                           {"method", cell.method},
                           {"cut", cell.cut},
                           {"imbalance", cell.imbalance},
                           {"imbalance_violated", cell.violated},
                           {"replication_factor", cell.replication},
                           {"edges_per_sec", cell.edgesPerSec},
                           {"peak_state_bytes", cell.stateBytes},
                           {"seconds", cell.seconds}});
      // Gate candidates: within the same imbalance regime as multilevel (no
      // new violation beyond what multilevel itself has).
      if (spec.reference && (!cell.violated || (multi && multi->violated))) {
        if (!bestStream || cell.cut < bestStream->cut) bestStream = cell;
      }
    }
    if (multi) {
      report.row("cells", {{"topology", topoName},
                           {"vertices", spec.stream->numVertices()},
                           {"edges", spec.stream->numEdges()},
                           {"parts", spec.parts},
                           {"method", multi->method},
                           {"cut", multi->cut},
                           {"imbalance", multi->imbalance},
                           {"imbalance_violated", multi->violated},
                           {"replication_factor", 1.0},
                           {"edges_per_sec", multi->edgesPerSec},
                           {"peak_state_bytes", multi->stateBytes},
                           {"seconds", multi->seconds}});
      // CI quality gate: the best in-cap streaming heuristic stays within
      // 1.5x of multilevel's cut on the reference topologies. The +8
      // additive slack absorbs integer effects on the small-cut WAN
      // references, where multilevel's FM refinement finds single-digit
      // cuts and one extra gateway link would otherwise read as a large
      // ratio regression.
      const double bound = 1.5 * static_cast<double>(multi->cut) + 8.0;
      if (!bestStream || static_cast<double>(bestStream->cut) > bound) {
        gateOk = false;
        std::printf("GATE FAIL: %s parts=%d best streaming cut %lld > 1.5x "
                    "multilevel %lld + 8\n",
                    topoName.c_str(), spec.parts,
                    bestStream ? static_cast<long long>(bestStream->cut) : -1LL,
                    static_cast<long long>(multi->cut));
      }
    }
    bench::printRule(104);
  }

  report.set("gate_ok", gateOk);
  report.write();
  std::printf("\nStreaming keeps O(parts)+per-vertex state (no adjacency); the\n"
              "multilevel column holds the whole hierarchy. '!' marks an\n"
              "imbalance-cap violation surfaced via imbalanceViolated.\n");
  if (check && !gateOk) {
    std::fprintf(stderr, "CHECK FAILED: streaming cut gate violated\n");
    return 1;
  }
  return 0;
}
