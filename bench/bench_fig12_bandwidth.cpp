// Fig. 12 reproduction: incast bandwidth test, PFC on / off, SDT vs full
// testbed.
//
// Paper setup (§VI-B2, Fig. 10 topology): all other nodes send 10 Gbps TCP
// (iperf3) traffic to node 4; per-node bandwidth compared between SDT and
// the full testbed, with PFC enabled and disabled.
// Expected shape: with PFC on, allocation clusters by (hops, congestion
// points) and SDT matches the full testbed; with PFC off the trend matches
// with small RTT-induced differences.
#include <cstdio>

#include "bench_util.hpp"
#include "routing/shortest_path.hpp"
#include "sim/transport.hpp"

using namespace sdt;

namespace {

struct IncastResult {
  std::vector<double> gbps;  // per sender host
  std::uint64_t drops = 0;
};

IncastResult runIncast(bool pfc, bool onSdt, const topo::Topology& topo,
                       const routing::RoutingAlgorithm& routing,
                       const projection::Plant& plant, int targetHost,
                       TimeNs duration) {
  testbed::InstanceOptions opt;
  opt.network.pfcEnabled = pfc;
  opt.network.ecnEnabled = false;  // plain TCP incast, no DCQCN
  testbed::Instance inst;
  if (onSdt) {
    auto r = testbed::makeSdt(topo, routing, plant, opt);
    if (!r) {
      std::fprintf(stderr, "sdt: %s\n", r.error().message.c_str());
      std::abort();
    }
    inst = std::move(r).value();
  } else {
    inst = testbed::makeFullTestbed(topo, routing, opt);
  }
  std::vector<std::uint64_t> flows;
  for (int h = 0; h < topo.numHosts(); ++h) {
    if (h == targetHost) continue;
    flows.push_back(inst.transport->startTcpFlow(h, targetHost, -1));
  }
  inst.sim->runUntil(duration);
  IncastResult result;
  std::size_t fi = 0;
  for (int h = 0; h < topo.numHosts(); ++h) {
    if (h == targetHost) {
      result.gbps.push_back(0.0);
      continue;
    }
    const std::int64_t bytes = inst.transport->tcpDeliveredBytes(flows[fi++]);
    result.gbps.push_back(static_cast<double>(bytes) * 8.0 /
                          static_cast<double>(duration));
  }
  result.drops = inst.net().totalDrops();
  return result;
}

}  // namespace

int main() {
  std::printf("== Fig. 12: incast bandwidth to node 4, PFC off/on, SDT vs full ==\n");
  const topo::Topology topo = topo::makeLine(8);
  routing::ShortestPathRouting routing(topo);
  const int target = 3;  // paper's "node 4", 0-indexed
  const TimeNs duration = msToNs(30.0);

  projection::PlantConfig pc;
  pc.numSwitches = 2;
  pc.spec = projection::openflow64x100G();
  pc.hostPortsPerSwitch = 8;
  pc.interLinksPerPair = 8;
  auto plant = projection::buildPlant(pc);
  if (!plant) return 1;

  const auto hopsOf = [&](int h) { return std::abs(h - target); };

  bench::JsonReport report("fig12_bandwidth");
  for (const bool pfc : {false, true}) {
    std::printf("\n-- PFC %s --\n", pfc ? "ON (lossless)" : "OFF (lossy)");
    const IncastResult full = runIncast(pfc, false, topo, routing, plant.value(),
                                        target, duration);
    const IncastResult sdt = runIncast(pfc, true, topo, routing, plant.value(),
                                       target, duration);
    std::printf("%6s %6s %6s %12s %12s %8s\n", "node", "hops", "cp", "full(Gbps)",
                "SDT(Gbps)", "delta");
    bench::printRule(56);
    double sumAbsDelta = 0.0;
    int senders = 0;
    for (int h = 0; h < topo.numHosts(); ++h) {
      if (h == target) continue;
      // Congestion points: switches on the path whose egress toward the
      // target also carries traffic merging from farther senders.
      const int cp = std::max(0, hopsOf(h) - 1);
      const double delta = sdt.gbps[h] - full.gbps[h];
      sumAbsDelta += std::abs(delta);
      ++senders;
      std::printf("%6d %6d %6d %12.3f %12.3f %+7.3f\n", h + 1, hopsOf(h), cp,
                  full.gbps[h], sdt.gbps[h], delta);
      report.row("points", {{"pfc", pfc},
                            {"node", h + 1},
                            {"hops", hopsOf(h)},
                            {"full_gbps", full.gbps[h]},
                            {"sdt_gbps", sdt.gbps[h]}});
    }
    bench::printRule(56);
    std::printf("drops: full=%llu sdt=%llu | mean |SDT-full| = %.3f Gbps\n",
                static_cast<unsigned long long>(full.drops),
                static_cast<unsigned long long>(sdt.drops),
                sumAbsDelta / senders);
    report.set(pfc ? "mean_abs_delta_gbps_pfc_on" : "mean_abs_delta_gbps_pfc_off",
               sumAbsDelta / senders);
    if (pfc) {
      std::printf("shape: lossless (0 drops expected): %s\n",
                  (full.drops == 0 && sdt.drops == 0) ? "YES" : "NO");
      report.set("lossless_ok", full.drops == 0 && sdt.drops == 0);
    }
  }
  std::printf("\npaper: PFC-on allocation matches the full testbed and clusters by\n"
              "(hops, congestion points); PFC-off trends nearly identical.\n");
  report.write();
  return 0;
}
