// Ablation: the paper's partitioning objective (Fig. 8 / §IV-C) — pure
// min-cut vs the balanced objective alpha*cut + beta*sum(1/|E_i|). Shows the
// cut/balance trade across the evaluation topologies.
#include <cstdio>

#include "bench_util.hpp"
#include "partition/partitioner.hpp"
#include "topo/zoo.hpp"

using namespace sdt;

int main() {
  std::printf("== Ablation: min-cut-only vs balanced partitioning (Fig. 8) ==\n\n");
  struct Row {
    const char* label;
    topo::Topology topo;
  };
  std::vector<Row> rows;
  rows.push_back({"Fat-Tree k=4", topo::makeFatTree(4)});
  rows.push_back({"Dragonfly 4/9/2", topo::makeDragonfly(4, 9, 2)});
  rows.push_back({"Torus 4x4x4", topo::makeTorus3D(4, 4, 4)});
  rows.push_back({"Star-16", topo::makeStar(16)});
  rows.push_back({"Zoo WAN #12", topo::makeZooTopology(12)});

  std::printf("%-16s %5s | %10s %10s | %10s %10s\n", "topology", "parts",
              "cut(min)", "imbal(min)", "cut(bal)", "imbal(bal)");
  bench::printRule(74);
  bench::JsonReport report("ablation_partition");
  for (const Row& row : rows) {
    for (const int parts : {2, 3}) {
      partition::PartitionOptions minCut;
      minCut.parts = parts;
      minCut.beta = 0.0;           // cut only
      minCut.maxImbalance = 10.0;  // effectively unconstrained
      partition::PartitionOptions balanced;
      balanced.parts = parts;      // paper defaults: alpha=1, beta=4
      auto a = partition::partitionGraph(row.topo.switchGraph(), minCut);
      auto b = partition::partitionGraph(row.topo.switchGraph(), balanced);
      if (!a || !b) {
        std::printf("%-16s %5d | partition failed\n", row.label, parts);
        continue;
      }
      std::printf("%-16s %5d | %10lld %9.1f%% | %10lld %9.1f%%\n", row.label, parts,
                  static_cast<long long>(a.value().cutWeight),
                  a.value().imbalance() * 100.0,
                  static_cast<long long>(b.value().cutWeight),
                  b.value().imbalance() * 100.0);
      report.row("rows", {{"topology", row.label},
                          {"parts", parts},
                          {"cut_min", a.value().cutWeight},
                          {"imbalance_min", a.value().imbalance()},
                          {"cut_balanced", b.value().cutWeight},
                          {"imbalance_balanced", b.value().imbalance()}});
    }
  }
  bench::printRule(74);
  std::printf("Fig. 8's point: pure min-cut can slice off tiny fragments (huge\n"
              "imbalance); the balanced objective keeps per-switch port loads even\n"
              "at a modest cut increase.\n");
  report.write();
  return 0;
}
