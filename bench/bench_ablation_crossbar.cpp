// Ablation (beyond-paper): sweep the crossbar-sharing overhead model and
// show where the Fig. 11 overhead band comes from. The paper speculates the
// 0.03-2% latency deltas stem from TP loading the switch crossbar (§VI-B);
// this knob is our explicit model of that effect.
#include <cstdio>

#include "bench_util.hpp"
#include "routing/shortest_path.hpp"
#include "workloads/apps.hpp"

using namespace sdt;

int main() {
  std::printf("== Ablation: crossbar-sharing overhead model vs Fig. 11 band ==\n\n");
  const topo::Topology topo = topo::makeLine(8);
  routing::ShortestPathRouting routing(topo);
  const std::vector<int> rankMap{0, 7, 1, 2, 3, 4, 5, 6};

  projection::PlantConfig pc;
  pc.numSwitches = 2;
  pc.spec = projection::openflow64x100G();
  pc.hostPortsPerSwitch = 8;
  pc.interLinksPerPair = 8;
  auto plant = projection::buildPlant(pc);
  if (!plant) return 1;

  std::printf("%22s %16s %16s %14s\n", "crossbar (base,slope)", "ovh @256B",
              "ovh @64KiB", "in paper band");
  bench::printRule(72);
  bench::JsonReport report("ablation_crossbar");
  for (const auto& [base, slope] : {std::pair{0.0, 0.0}, {1.0, 0.5}, {2.0, 1.0},
                                    {4.0, 2.0}, {8.0, 4.0}, {16.0, 8.0}}) {
    double overheads[2] = {0, 0};
    int idx = 0;
    for (const std::int64_t bytes : {256LL, 65536LL}) {
      const workloads::Workload w = workloads::imbPingpong(8, bytes, 20);
      testbed::InstanceOptions opt;
      opt.crossbar = sim::CrossbarModel{base, slope};
      auto full = testbed::makeFullTestbed(topo, routing, opt);
      const testbed::RunResult fr = testbed::runWorkload(full, w, rankMap);
      auto sdt = testbed::makeSdt(topo, routing, plant.value(), opt);
      if (!sdt) return 1;
      const testbed::RunResult sr = testbed::runWorkload(sdt.value(), w, rankMap);
      overheads[idx++] = static_cast<double>(sr.act - fr.act) /
                         static_cast<double>(fr.act);
    }
    const bool inBand = overheads[0] >= 0.0003 && overheads[0] <= 0.02;
    std::printf("        (%5.1f,%5.1f) %15.3f%% %15.4f%% %14s\n", base, slope,
                overheads[0] * 100.0, overheads[1] * 100.0, inBand ? "YES" : "no");
    report.row("models", {{"base", base},
                          {"slope", slope},
                          {"overhead_256B", overheads[0]},
                          {"overhead_64KiB", overheads[1]},
                          {"in_paper_band", inBand}});
  }
  bench::printRule(72);
  std::printf("default model (2.0, 1.0) keeps small-message overhead inside the\n"
              "paper's 0.03-2%% band while large messages amortize it (Fig. 11).\n");
  report.write();
  return 0;
}
