// Recovery benchmark: failure-detection latency and the cost of
// SdtController::repair()'s incremental flow-table diff vs. tearing the
// whole deployment down and redeploying from scratch.
//
// Table II argues SDT reconfigures in 100 ms ~ 1 s because a topology change
// is pure flow-table work; this bench extends the claim to *failures*: a cut
// loopback cable is healed by re-projecting the affected logical links onto
// spare cabling and installing only the table diff, while traffic rides
// through on TCP retransmission. Emits BENCH_recovery.json.
#include <cstdio>

#include "bench_util.hpp"
#include "controller/monitor.hpp"
#include "routing/shortest_path.hpp"
#include "sim/builder.hpp"
#include "sim/faults.hpp"
#include "sim/transport.hpp"

using namespace sdt;

namespace {

struct CutOutcome {
  TimeNs detectionLatency = 0;
  controller::RepairReport report;
  int flows = 0;
  int completed = 0;
};

/// One end-to-end self-healing run: cut the `scenario`-th realized self-link
/// at t=200us under a full TCP permutation, let the Network Monitor detect
/// it, repair, and run the traffic to completion.
CutOutcome runCutScenario(int scenario, std::uint64_t seed) {
  CutOutcome out;
  const topo::Topology topo = topo::makeFatTree(4);
  const routing::ShortestPathRouting routing(topo);
  auto plantR = projection::planPlant({&topo}, {.numSwitches = 3});
  if (!plantR) std::abort();
  const projection::Plant& plant = plantR.value();
  controller::SdtController ctl(plant);
  auto depR = ctl.deploy(topo, routing);
  if (!depR) std::abort();
  controller::Deployment dep = std::move(depR).value();

  sim::Simulator sim;
  sim::BuiltNetwork built = sim::buildProjectedNetwork(
      sim, topo, dep.projection, plant, dep.switches, {}, {2.0, 1.0});
  sim::Network& net = *built.net;
  sim::TransportManager tm(sim, net, {});

  controller::NetworkMonitor monitor(sim, net, topo, dep.projection);
  monitor.enableFailureDetection(usToNs(60.0));
  monitor.start(usToNs(5.0));

  sim::FaultInjector inj(sim, net, seed);
  inj.attachSwitches(built.ofSwitches);
  int target = -1;
  int nthSelf = 0;
  const auto& rls = dep.projection.realizedLinks();
  for (std::size_t i = 0; i < rls.size(); ++i) {
    if (rls[i].optical || rls[i].interSwitch) continue;
    if (nthSelf++ == scenario) {
      target = static_cast<int>(i);
      break;
    }
  }
  if (target < 0) std::abort();
  const projection::PhysLink cut = plant.selfLinks[rls[target].physLink];
  const TimeNs cutAt = usToNs(200.0);
  inj.cutCable(cutAt, cut.a.sw, cut.a.port);
  inj.arm();

  bool repairScheduled = false;
  monitor.onPortFailure([&](const controller::PortFailure& f) {
    const bool isCut = (f.sw == cut.a.sw && f.port == cut.a.port) ||
                       (f.sw == cut.b.sw && f.port == cut.b.port);
    if (!isCut || repairScheduled) return;
    repairScheduled = true;
    out.detectionLatency = f.detectedAt - cutAt;
    sim.schedule(usToNs(1.0), [&]() {
      controller::FailureSet failures;
      failures.ports = monitor.failedPorts();
      auto repR = ctl.repair(dep, topo, routing, failures);
      if (!repR) std::abort();
      out.report = repR.value();
    });
  });

  const int hosts = topo.numHosts();
  for (int h = 0; h < hosts; ++h) {
    tm.startTcpFlow(h, (h + hosts / 2) % hosts, 512 * kKiB,
                    [&out](sim::Time) { ++out.completed; });
    ++out.flows;
  }
  sim.runUntil(msToNs(50.0));
  return out;
}

}  // namespace

int main() {
  std::printf("== Recovery: detection latency + incremental repair vs full redeploy ==\n");
  bench::JsonReport report("recovery");

  std::printf("\n%9s %14s %12s %11s %11s %12s %8s\n", "scenario", "detect(us)",
              "repair(ms)", "mods", "full mods", "redeploy(ms)", "speedup");
  bench::printRule(84);
  double sumDetectUs = 0.0;
  double sumRepairMs = 0.0;
  double sumSpeedup = 0.0;
  double sumModsRatio = 0.0;
  int scenarios = 0;
  for (int scenario = 0; scenario < 3; ++scenario) {
    const CutOutcome out = runCutScenario(scenario, 1 + scenario);
    const TimeNs fullRedeploy =
        projection::reconfigTime(projection::TpMethod::kSDT, out.report.fullRedeployFlowMods);
    const double detectUs = static_cast<double>(out.detectionLatency) / 1e3;
    const double repairMs = static_cast<double>(out.report.repairTime) / 1e6;
    const double redeployMs = static_cast<double>(fullRedeploy) / 1e6;
    const double speedup = redeployMs / repairMs;
    std::printf("%9d %14.1f %12.2f %11d %11d %12.2f %7.1fx\n", scenario, detectUs,
                repairMs, out.report.flowMods(), out.report.fullRedeployFlowMods,
                redeployMs, speedup);
    if (out.completed != out.flows) {
      std::printf("  WARN: only %d/%d flows completed\n", out.completed, out.flows);
    }
    report.row("cut_scenarios",
               {{"scenario", scenario},
                {"detection_latency_us", detectUs},
                {"repair_ms", repairMs},
                {"flow_mods", out.report.flowMods()},
                {"full_redeploy_flow_mods", out.report.fullRedeployFlowMods},
                {"full_redeploy_ms", redeployMs},
                {"remapped_links", out.report.remappedLinks},
                {"flows_completed", out.completed == out.flows}});
    sumDetectUs += detectUs;
    sumRepairMs += repairMs;
    sumSpeedup += speedup;
    sumModsRatio += static_cast<double>(out.report.flowMods()) /
                    static_cast<double>(out.report.fullRedeployFlowMods);
    ++scenarios;
  }
  bench::printRule(84);

  report.set("detection_latency_us_mean", sumDetectUs / scenarios);
  report.set("repair_ms_mean", sumRepairMs / scenarios);
  report.set("repair_speedup_vs_redeploy_mean", sumSpeedup / scenarios);
  report.set("flow_mod_fraction_mean", sumModsRatio / scenarios);
  std::printf("mean: detect %.1f us | repair %.2f ms | %.1fx faster than redeploy "
              "(%.1f%% of the flow-mods)\n",
              sumDetectUs / scenarios, sumRepairMs / scenarios, sumSpeedup / scenarios,
              100.0 * sumModsRatio / scenarios);

  // Switch-crash repair (controller-level): the wiped table is exactly the
  // diff, so repair reinstalls one switch instead of all three.
  {
    const topo::Topology topo = topo::makeFatTree(4);
    const routing::ShortestPathRouting routing(topo);
    auto plantR = projection::planPlant({&topo}, {.numSwitches = 3});
    if (!plantR) return 1;
    controller::SdtController ctl(plantR.value());
    auto depR = ctl.deploy(topo, routing);
    if (!depR) return 1;
    controller::Deployment dep = std::move(depR).value();
    dep.switches[1]->table().clear();
    controller::FailureSet failures;
    failures.crashedSwitches = {1};
    auto repR = ctl.repair(dep, topo, routing, failures);
    if (!repR) return 1;
    const double repairMs = static_cast<double>(repR.value().repairTime) / 1e6;
    const TimeNs fullRedeploy = projection::reconfigTime(
        projection::TpMethod::kSDT, repR.value().fullRedeployFlowMods);
    std::printf("\nswitch crash: reinstalled %d entries in %.2f ms (full redeploy: "
                "%.2f ms)\n",
                repR.value().flowModsAdded, repairMs,
                static_cast<double>(fullRedeploy) / 1e6);
    report.set("crash_repair_ms", repairMs);
    report.set("crash_repair_flow_mods", repR.value().flowModsAdded);
    report.set("crash_full_redeploy_ms", static_cast<double>(fullRedeploy) / 1e6);
  }

  report.write();
  return 0;
}
