#include "testbed/evaluator.hpp"

#include <cassert>
#include <chrono>
#include <numeric>

namespace sdt::testbed {

Instance makeFullTestbed(const topo::Topology& topo,
                         const routing::RoutingAlgorithm& routing,
                         const InstanceOptions& options) {
  Instance inst;
  inst.sim = std::make_unique<sim::Simulator>();
  inst.built = sim::buildLogicalNetwork(*inst.sim, topo, routing, options.network);
  inst.transport =
      std::make_unique<sim::TransportManager>(*inst.sim, *inst.built.net, options.transport);
  return inst;
}

Result<Instance> makeSdt(const topo::Topology& topo,
                         const routing::RoutingAlgorithm& routing,
                         const projection::Plant& plant,
                         const InstanceOptions& options) {
  controller::SdtController ctl(plant);
  auto deployment = ctl.deploy(topo, routing, options.deploy);
  if (!deployment) return deployment.error();

  Instance inst;
  inst.sim = std::make_unique<sim::Simulator>();
  inst.built = sim::buildProjectedNetwork(*inst.sim, topo, deployment.value().projection,
                                          plant, deployment.value().switches,
                                          options.network, options.crossbar);
  inst.transport =
      std::make_unique<sim::TransportManager>(*inst.sim, *inst.built.net, options.transport);
  inst.deployTime = deployment.value().reconfigTime;
  inst.deployment = std::move(deployment).value();
  return inst;
}

RunResult runWorkload(Instance& instance, const workloads::Workload& workload,
                      std::vector<int> rankToHost) {
  if (rankToHost.empty()) {
    rankToHost.resize(static_cast<std::size_t>(workload.numRanks()));
    std::iota(rankToHost.begin(), rankToHost.end(), 0);
  }
  workloads::MpiRuntime runtime(*instance.sim, *instance.transport,
                                std::move(rankToHost));
  const std::uint64_t eventsBefore = instance.sim->eventsProcessed();
  runtime.run(workload);

  const auto wallStart = std::chrono::steady_clock::now();
  instance.sim->run();
  const auto wallEnd = std::chrono::steady_clock::now();
  assert(runtime.finished() && "workload did not complete (network deadlock or bug)");

  RunResult result;
  result.act = runtime.completionTime();
  result.wallSeconds = std::chrono::duration<double>(wallEnd - wallStart).count();
  result.events = instance.sim->eventsProcessed() - eventsBefore;
  result.drops = instance.net().totalDrops();
  result.injectedBytes = workload.totalSendBytes();
  result.avgComputePerRank =
      workload.totalComputeNs() / std::max(1, workload.numRanks());
  for (int sw = 0; sw < instance.net().numSwitches(); ++sw) {
    for (int p = 0; p < instance.net().switchPortCount(sw); ++p) {
      result.fabricTxBytes += static_cast<std::int64_t>(
          instance.net().switchPortCounters(sw, p).txBytes);
    }
  }
  return result;
}

double SimulatorCostModel::wallNs(const RunResult& run, int numLogicalSwitches) const {
  const double flits =
      static_cast<double>(run.fabricTxBytes) / static_cast<double>(flitBytes);
  const double activeNs = std::max<double>(
      0.0, static_cast<double>(run.act - run.avgComputePerRank));
  return flits * pipelineStages * perFlitHopNs +
         activeNs * perSwitchActiveFactor * numLogicalSwitches;
}

Comparison compare(const RunResult& sdtRun, TimeNs sdtDeployTime,
                   const RunResult& fullRun, int numLogicalSwitches, double scaleK,
                   const SimulatorCostModel& model) {
  Comparison c;
  c.sdtEvalSeconds = nsToSec(sdtDeployTime) + scaleK * nsToSec(sdtRun.act);
  c.simulatorEvalSeconds =
      scaleK * model.wallNs(fullRun, numLogicalSwitches) / 1e9;
  c.fullTestbedEvalSeconds = scaleK * nsToSec(fullRun.act);
  c.speedupVsSimulator =
      c.sdtEvalSeconds > 0 ? c.simulatorEvalSeconds / c.sdtEvalSeconds : 0.0;
  c.actDeviation = fullRun.act > 0
                       ? static_cast<double>(sdtRun.act - fullRun.act) /
                             static_cast<double>(fullRun.act)
                       : 0.0;
  return c;
}

}  // namespace sdt::testbed
