#include "testbed/sweep.hpp"

namespace sdt::testbed {

std::uint64_t SweepRunner::pointSeed(std::uint64_t base, std::size_t index) {
  // splitmix64 over (base ^ golden-ratio-spread index): cheap, stateless,
  // and decorrelates neighboring points even for base seeds 0 and 1.
  std::uint64_t z = base ^ (static_cast<std::uint64_t>(index) + 1) * 0x9E3779B97F4A7C15ULL;
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace sdt::testbed
