// Evaluation harness: the three "ways to run an experiment" the paper
// compares (§VI-D, Table IV, Fig. 13):
//
//  - Full testbed  : the logical topology wired 1:1 (every logical switch a
//                    real switch). Evaluation time = ACT.
//  - SDT           : the topology projected onto a small plant, forwarding
//                    through generated flow tables, crossbar-sharing
//                    overhead applied. Evaluation time = deploy + ACT.
//  - Simulator     : a BookSim/SST-Macro-class flit-level simulator. We do
//                    not possess the authors' simulator, so per the
//                    substitution rule its *evaluation time* is modeled from
//                    measured run quantities (flits forwarded, network-active
//                    time, switch count) with a calibrated cost model; its
//                    *ACT* is our packet sim's ACT (which is also the ground
//                    truth both other modes share).
//
// Both SDT and full-testbed modes execute on the same packet-level engine,
// so ACT differences between them are exactly the projection-induced
// effects (crossbar sharing), mirroring how the paper isolates overhead.
#pragma once

#include <optional>

#include "controller/controller.hpp"
#include "sim/builder.hpp"
#include "sim/transport.hpp"
#include "workloads/mpi.hpp"

namespace sdt::testbed {

/// One runnable network instance (simulator + network + transports).
struct Instance {
  std::unique_ptr<sim::Simulator> sim;
  sim::BuiltNetwork built;
  std::unique_ptr<sim::TransportManager> transport;
  TimeNs deployTime = 0;                       ///< SDT: modeled reconfig time
  std::optional<controller::Deployment> deployment;  ///< SDT only

  [[nodiscard]] sim::Network& net() { return *built.net; }
};

struct InstanceOptions {
  sim::NetworkConfig network;
  sim::TransportConfig transport;
  /// Crossbar-sharing overhead (SDT only). Defaults calibrated so the Fig.11
  /// 8-hop overhead lands in the paper's 0.03-2% band.
  sim::CrossbarModel crossbar{2.0, 1.0};
  controller::DeployOptions deploy;
};

/// Full-testbed instance: logical switches 1:1. `routing` must outlive it.
Instance makeFullTestbed(const topo::Topology& topo,
                         const routing::RoutingAlgorithm& routing,
                         const InstanceOptions& options = {});

/// SDT instance on `plant`. `routing` must outlive it only through this
/// call (tables are compiled); the projection stays inside the instance.
Result<Instance> makeSdt(const topo::Topology& topo,
                         const routing::RoutingAlgorithm& routing,
                         const projection::Plant& plant,
                         const InstanceOptions& options = {});

struct RunResult {
  TimeNs act = 0;                   ///< simulated application completion time
  double wallSeconds = 0.0;         ///< measured wall time of our engine
  std::uint64_t events = 0;
  std::int64_t fabricTxBytes = 0;   ///< bytes forwarded across all switch ports
  std::uint64_t drops = 0;
  std::int64_t injectedBytes = 0;   ///< application payload injected
  TimeNs avgComputePerRank = 0;     ///< workload compute time per rank
};

/// Run an MPI workload on the instance; ranks map to hosts via `rankToHost`
/// (defaults to hosts 0..n-1). Asserts the workload finishes (no deadlock).
RunResult runWorkload(Instance& instance, const workloads::Workload& workload,
                      std::vector<int> rankToHost = {});

/// Cost model for the paper's flit-level cycle-accurate simulator baseline.
/// wall = perFlitHop * (fabricBytes/flitBytes) * pipelineStages
///      + perSwitchActive * networkActiveTime * numSwitches
/// where networkActiveTime = ACT - avg per-rank compute (idle compute gaps
/// are fast-forwarded by an event-driven simulator; congested network time
/// is simulated cycle by cycle).
struct SimulatorCostModel {
  double perFlitHopNs = 250.0;
  int flitBytes = 64;
  int pipelineStages = 4;
  double perSwitchActiveFactor = 30.0;  ///< wall ns per sim ns per switch

  [[nodiscard]] double wallNs(const RunResult& run, int numLogicalSwitches) const;
};

/// Table IV / Fig. 13 arithmetic for one cell: evaluation times of the three
/// modes plus the speedup and deviation, with an optional linear scale-up
/// factor K (replicating the workload's iterations K times: ACT and traffic
/// scale linearly, deploy time does not). K=1 reports the measured run.
struct Comparison {
  double sdtEvalSeconds = 0.0;        ///< deploy + K * ACT_sdt
  double simulatorEvalSeconds = 0.0;  ///< K * modeled simulator wall
  double fullTestbedEvalSeconds = 0.0;///< K * ACT_full
  double speedupVsSimulator = 0.0;    ///< simulatorEval / sdtEval
  double actDeviation = 0.0;          ///< (ACT_sdt - ACT_full) / ACT_full
};

Comparison compare(const RunResult& sdtRun, TimeNs sdtDeployTime,
                   const RunResult& fullRun, int numLogicalSwitches,
                   double scaleK = 1.0, const SimulatorCostModel& model = {});

}  // namespace sdt::testbed
