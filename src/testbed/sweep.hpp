// Parallel experiment-sweep runner.
//
// The engine itself is single-threaded by design (determinism per
// experiment), but a reproduction sweep — 261 zoo WANs, a message-size
// ladder, a node-count ladder — is embarrassingly parallel: every point
// builds its own value-owned sim::Simulator/Network/transport stack and
// shares nothing mutable with its neighbors. SweepRunner fans those points
// out over a thread pool while keeping results bit-identical to a serial
// run: points are claimed from an atomic cursor, each derives all of its
// randomness from pointSeed(base, index), and results land in an
// index-ordered vector, so neither thread count nor scheduling order can
// change what the sweep reports (tests/test_determinism.cpp holds us to
// that).
//
// Workers must not touch process-global state (in this codebase that is
// only the log level, which sweeps leave alone).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sdt::testbed {

class SweepRunner {
 public:
  /// threads <= 0 selects std::thread::hardware_concurrency (min 1).
  explicit SweepRunner(int threads = 0)
      : threads_(threads > 0 ? threads
                             : std::max(1, static_cast<int>(
                                               std::thread::hardware_concurrency()))) {}

  [[nodiscard]] int threads() const { return threads_; }

  /// Deterministic per-point seed: splitmix64 mix of base seed and index,
  /// so point i's randomness is independent of every other point's and of
  /// how points are scheduled onto threads.
  [[nodiscard]] static std::uint64_t pointSeed(std::uint64_t base, std::size_t index);

  /// Run fn(0..points-1), concurrently when the pool has >1 thread, and
  /// return the results ordered by point index. T must be movable and
  /// default-constructible. The first exception thrown by any point is
  /// rethrown here after all workers have drained.
  template <typename Fn,
            typename T = std::invoke_result_t<Fn&, std::size_t>>
  std::vector<T> run(std::size_t points, Fn&& fn) const {
    std::vector<T> results(points);
    if (points == 0) return results;
    const int workers = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(threads_), points));
    if (workers <= 1) {
      for (std::size_t i = 0; i < points; ++i) results[i] = fn(i);
      return results;
    }

    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    std::mutex errorMutex;
    auto worker = [&]() {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= points) return;
        try {
          results[i] = fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(errorMutex);
          if (!firstError) firstError = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (firstError) std::rethrow_exception(firstError);
    return results;
  }

 private:
  int threads_;
};

}  // namespace sdt::testbed
