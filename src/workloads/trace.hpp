// Trace serialization: store and replay per-rank Op programs.
//
// The paper's simulator "uses the traces collected from running an HPC
// application on real computing nodes" (§VI-A2). Our Workload objects *are*
// such traces; this module round-trips them through a line-oriented text
// format so experiments can be archived and replayed:
//   # workload <name> ranks <n>
//   rank <r>
//   c <ns>            compute
//   s <dst> <bytes> <tag>
//   r <src> <tag>     (-1 src = wildcard)
//   b                 barrier
#pragma once

#include <iosfwd>
#include <string>

#include "common/result.hpp"
#include "workloads/mpi.hpp"

namespace sdt::workloads {

void writeTrace(std::ostream& out, const Workload& workload);
Result<Workload> readTrace(std::istream& in);

Status<Error> writeTraceFile(const std::string& path, const Workload& workload);
Result<Workload> readTraceFile(const std::string& path);

}  // namespace sdt::workloads
