#include "workloads/datacenter.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>
#include <utility>

namespace sdt::workloads {

namespace {

/// Decorrelate source RNG streams from one config seed.
std::uint64_t sourceSeed(std::uint64_t base, std::size_t idx) {
  std::uint64_t mix = base ^ ((idx + 1) * 0x9E3779B97F4A7C15ULL);
  return detail::splitmix64(mix);
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnvMix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
}

}  // namespace

ServingRuntime::ServingRuntime(sim::Simulator& sim, sim::Network& net,
                               sim::TransportManager& transport,
                               ServingConfig config)
    : sim_(&sim), net_(&net), transport_(&transport), config_(config) {
  assert(config_.duration > 0);
  shardStats_.resize(static_cast<std::size_t>(sim.numShards()));
  hostScale_.assign(static_cast<std::size_t>(net.numHosts()), 1.0);
}

void ServingRuntime::addIncast(IncastSpec spec) {
  assert(spec.aggregator >= 0 && !spec.senders.empty());
  Source src;
  src.kind = SourceKind::kIncast;
  src.owner = spec.aggregator;
  src.incast = std::move(spec);
  src.rng = Rng(sourceSeed(config_.seed, sources_.size()));
  sources_.push_back(std::move(src));
}

void ServingRuntime::addPartitionAggregate(PartitionAggregateSpec spec) {
  assert(spec.root >= 0 && !spec.workers.empty());
  Source src;
  src.kind = SourceKind::kPartAgg;
  src.owner = spec.root;
  src.partAgg = std::move(spec);
  src.rng = Rng(sourceSeed(config_.seed, sources_.size()));
  sources_.push_back(std::move(src));
}

void ServingRuntime::addReplication(ReplicationSpec spec) {
  assert(spec.client >= 0 && spec.primary >= 0 && spec.client != spec.primary);
  Source src;
  src.kind = SourceKind::kReplication;
  src.owner = spec.client;
  src.repl = std::move(spec);
  src.rng = Rng(sourceSeed(config_.seed, sources_.size()));
  sources_.push_back(std::move(src));
}

void ServingRuntime::addBurstyMix(BurstyMixSpec spec) {
  assert(spec.hosts.size() >= 2);
  Source src;
  src.kind = SourceKind::kBursty;
  src.owner = -1;
  src.bursty = std::move(spec);
  src.rng = Rng(sourceSeed(config_.seed, sources_.size()));
  sources_.push_back(std::move(src));
}

void ServingRuntime::attachOverload(sim::FaultInjector& injector) {
  injector.setOverloadSink([this](const sim::FaultSpec& spec) {
    // Runs on shard 0 (switch-less faults fire there), same as the
    // generators that read these scales.
    const bool storm = spec.kind == sim::FaultKind::kOverloadStorm;
    const double scale = storm ? spec.intensity : 1.0;
    if (spec.srcHost < 0) {
      globalScale_ = scale;
    } else {
      setHostRateScale(spec.srcHost, scale);
    }
  });
}

void ServingRuntime::setHostRateScale(int host, double scale) {
  assert(host >= 0 && host < static_cast<int>(hostScale_.size()));
  hostScale_[static_cast<std::size_t>(host)] = scale;
}

void ServingRuntime::attachMetrics(obs::Registry& registry) {
  for (std::size_t s = 0; s < shardStats_.size(); ++s) {
    ShardStats& stats = shardStats_[s];
    for (int c = 0; c < admission::kNumPriorities; ++c) {
      const char* cls = admission::priorityName(static_cast<Priority>(c));
      const obs::Labels base = {{"shard", std::to_string(s)}, {"class", cls}};
      obs::Labels hit = base;
      hit.emplace_back("result", "hit");
      obs::Labels miss = base;
      miss.emplace_back("result", "miss");
      const auto ci = static_cast<std::size_t>(c);
      stats.sloHitCtr[ci] = &registry.counter(
          "sdt_dc_slo_total", hit, "serving completions scored against the class SLO");
      stats.sloMissCtr[ci] = &registry.counter("sdt_dc_slo_total", miss,
                                               "serving completions scored against the class SLO");
      stats.latencyHist[ci] =
          &registry.histogram("sdt_dc_flow_latency_ns", obs::latencyBucketsNs(), base,
                              "serving unit completion latency (ns)");
    }
  }
}

double ServingRuntime::scaleFor(const Source& src) const {
  double scale = globalScale_;
  if (src.owner >= 0) scale *= hostScale_[static_cast<std::size_t>(src.owner)];
  return scale > 0.0 ? scale : 1e-9;
}

int ServingRuntime::maxDefers() const {
  return admission_ != nullptr ? admission_->policy().maxDefers : 0;
}

TimeNs ServingRuntime::sloFor(Priority cls) const {
  const admission::Policy& p = admission_ != nullptr ? admission_->policy() : sloPolicy_;
  return p.classes[static_cast<std::size_t>(priorityIndex(cls))].sloNs;
}

ServingRuntime::ClassStats& ServingRuntime::statsHere(Priority cls) {
  return shardStats_[static_cast<std::size_t>(sim_->currentShard())]
      .perClass[static_cast<std::size_t>(priorityIndex(cls))];
}

void ServingRuntime::start() {
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    Source& src = sources_[i];
    // Stagger first arrivals with each source's own stream so sources do
    // not fire in lockstep at t = start.
    const TimeNs mean = src.kind == SourceKind::kIncast ? src.incast.meanRoundInterval
                        : src.kind == SourceKind::kPartAgg
                            ? src.partAgg.meanQueryInterval
                        : src.kind == SourceKind::kReplication
                            ? src.repl.meanWriteInterval
                            : src.bursty.meanFlowInterval;
    const auto first = std::max<TimeNs>(
        1, static_cast<TimeNs>(src.rng.exponential(static_cast<double>(mean))));
    sim_->scheduleOn(0, config_.start + first, [this, i]() { sourceTick(i); });
  }
}

void ServingRuntime::sourceTick(std::size_t idx) {
  if (sim_->now() >= deadline()) return;
  Source& src = sources_[idx];
  const double scale = scaleFor(src);
  TimeNs next = 0;
  switch (src.kind) {
    case SourceKind::kIncast:
      fireIncast(src);
      next = static_cast<TimeNs>(src.rng.exponential(
          static_cast<double>(src.incast.meanRoundInterval) / scale));
      break;
    case SourceKind::kPartAgg:
      firePartAgg(src);
      next = static_cast<TimeNs>(src.rng.exponential(
          static_cast<double>(src.partAgg.meanQueryInterval) / scale));
      break;
    case SourceKind::kReplication:
      fireReplication(src);
      next = static_cast<TimeNs>(src.rng.exponential(
          static_cast<double>(src.repl.meanWriteInterval) / scale));
      break;
    case SourceKind::kBursty: {
      if (!src.inBurst) {
        src.inBurst = true;
        src.burstEndsAt =
            sim_->now() + std::max<TimeNs>(1, static_cast<TimeNs>(src.rng.exponential(
                              static_cast<double>(src.bursty.meanBurstLen))));
      }
      if (sim_->now() < src.burstEndsAt) {
        fireBurstyFlow(src);
        next = static_cast<TimeNs>(src.rng.exponential(
            static_cast<double>(src.bursty.meanFlowInterval) / scale));
      } else {
        src.inBurst = false;
        next = static_cast<TimeNs>(
            src.rng.exponential(static_cast<double>(src.bursty.meanOffLen)));
      }
      break;
    }
  }
  next = std::max<TimeNs>(1, next);
  sim_->scheduleOn(0, next, [this, idx]() { sourceTick(idx); });
}

void ServingRuntime::fireIncast(Source& src) {
  const IncastSpec& spec = src.incast;
  for (const int sender : spec.senders) {
    const int dst = spec.aggregator;
    const std::int64_t bytes = spec.bytesPerFlow;
    const Priority cls = spec.priority;
    launchUnit(sender, cls, bytes, [this, sender, dst, bytes, cls](TimeNs bornAt) {
      transport_->sendMessage(sender, dst, bytes, 0,
                              [this, cls, bornAt, bytes](std::uint64_t, sim::Time at) {
                                recordCompletion(cls, bornAt, at, bytes);
                              });
    });
  }
}

void ServingRuntime::firePartAgg(Source& src) {
  // One query = root requests every worker, every worker responds; the
  // whole fan is admitted (and charged) as a single unit at the root.
  const PartitionAggregateSpec spec = src.partAgg;
  const auto workers = static_cast<std::int64_t>(spec.workers.size());
  const std::int64_t unitBytes = workers * (spec.requestBytes + spec.responseBytes);
  const Priority cls = spec.priority;
  launchUnit(spec.root, cls, unitBytes, [this, spec, unitBytes, cls](TimeNs bornAt) {
    auto remaining = std::make_shared<int>(static_cast<int>(spec.workers.size()));
    for (const int worker : spec.workers) {
      sendUngated(spec.root, worker, spec.requestBytes,
                  [this, spec, worker, remaining, bornAt, unitBytes, cls](TimeNs) {
                    // Worker shard: answer the root.
                    sendUngated(worker, spec.root, spec.responseBytes,
                                [this, remaining, bornAt, unitBytes, cls](TimeNs at) {
                                  // Root shard: last response closes the query.
                                  if (--*remaining == 0) {
                                    recordCompletion(cls, bornAt, at, unitBytes);
                                  }
                                });
                  });
    }
  });
}

void ServingRuntime::fireReplication(Source& src) {
  const ReplicationSpec spec = src.repl;
  const auto replicas = static_cast<std::int64_t>(spec.replicas.size());
  const std::int64_t unitBytes = spec.writeBytes * (1 + replicas);
  const Priority cls = spec.priority;
  launchUnit(spec.client, cls, unitBytes, [this, spec, unitBytes, cls](TimeNs bornAt) {
    sendUngated(spec.client, spec.primary, spec.writeBytes,
                [this, spec, unitBytes, cls, bornAt](TimeNs at) {
                  // Primary shard: replicate, gather acks, then commit.
                  auto commit = [this, spec, unitBytes, cls, bornAt]() {
                    sendUngated(spec.primary, spec.client, kCtrlBytes,
                                [this, unitBytes, cls, bornAt](TimeNs doneAt) {
                                  recordCompletion(cls, bornAt, doneAt, unitBytes);
                                });
                  };
                  if (spec.replicas.empty()) {
                    (void)at;
                    commit();
                    return;
                  }
                  auto acks = std::make_shared<int>(static_cast<int>(spec.replicas.size()));
                  for (const int replica : spec.replicas) {
                    sendUngated(spec.primary, replica, spec.writeBytes,
                                [this, spec, replica, acks, commit](TimeNs) {
                                  // Replica shard: ack the primary.
                                  sendUngated(replica, spec.primary, kCtrlBytes,
                                              [acks, commit](TimeNs) {
                                                if (--*acks == 0) commit();
                                              });
                                });
                  }
                });
  });
}

void ServingRuntime::fireBurstyFlow(Source& src) {
  const BurstyMixSpec& spec = src.bursty;
  const auto n = spec.hosts.size();
  const auto si = static_cast<std::size_t>(src.rng.below(n));
  auto di = static_cast<std::size_t>(src.rng.below(n - 1));
  if (di >= si) ++di;  // uniform over the n-1 hosts != src
  const int sender = spec.hosts[si];
  const int dst = spec.hosts[di];
  const std::int64_t bytes = spec.bytesPerFlow;
  const Priority cls = spec.priority;
  launchUnit(sender, cls, bytes, [this, sender, dst, bytes, cls](TimeNs bornAt) {
    transport_->sendMessage(sender, dst, bytes, 0,
                            [this, cls, bornAt, bytes](std::uint64_t, sim::Time at) {
                              recordCompletion(cls, bornAt, at, bytes);
                            });
  });
}

void ServingRuntime::launchUnit(int srcHost, Priority cls, std::int64_t chargeBytes,
                                std::function<void(TimeNs)> admitAction) {
  const int shard = net_->hostShard(srcHost);
  sim_->scheduleOn(shard, sim_->crossDelay(shard, 0),
                   [this, srcHost, cls, chargeBytes,
                    admitAction = std::move(admitAction)]() mutable {
                     ++statsHere(cls).offered;
                     tryStart(srcHost, cls, chargeBytes, maxDefers(), sim_->now(),
                              std::move(admitAction));
                   });
}

void ServingRuntime::tryStart(int srcHost, Priority cls, std::int64_t chargeBytes,
                              int defersLeft, TimeNs bornAt,
                              std::function<void(TimeNs)> admitAction) {
  if (admission_ != nullptr) {
    switch (admission_->request(srcHost, cls, chargeBytes)) {
      case admission::Decision::kShed:
        ++statsHere(cls).shed;
        return;
      case admission::Decision::kDefer:
        if (defersLeft > 0) {
          ++statsHere(cls).deferRetries;
          sim_->schedule(admission_->policy().deferDelay,
                         [this, srcHost, cls, chargeBytes, defersLeft, bornAt,
                          admitAction = std::move(admitAction)]() mutable {
                           tryStart(srcHost, cls, chargeBytes, defersLeft - 1, bornAt,
                                    std::move(admitAction));
                         });
        } else {
          ++statsHere(cls).shed;
        }
        return;
      case admission::Decision::kAdmit:
        break;
    }
  }
  ++statsHere(cls).admitted;
  admitAction(bornAt);
}

void ServingRuntime::sendUngated(int srcHost, int dstHost, std::int64_t bytes,
                                 std::function<void(TimeNs)> onDone) {
  transport_->sendMessage(srcHost, dstHost, bytes, 0,
                          [onDone = std::move(onDone)](std::uint64_t, sim::Time at) {
                            onDone(at);
                          });
}

void ServingRuntime::recordCompletion(Priority cls, TimeNs bornAt, TimeNs completedAt,
                                      std::int64_t bytes) {
  ClassStats& stats = statsHere(cls);
  const TimeNs latency = completedAt - bornAt;
  ++stats.completed;
  stats.completedBytes += bytes;
  stats.latencySumNs += static_cast<std::uint64_t>(latency);
  stats.maxLatencyNs = std::max(stats.maxLatencyNs, latency);
  const bool hit = latency <= sloFor(cls);
  if (hit) {
    ++stats.sloHit;
    stats.sloGoodBytes += bytes;
  } else {
    ++stats.sloMiss;
  }
  ShardStats& shard = shardStats_[static_cast<std::size_t>(sim_->currentShard())];
  const auto ci = static_cast<std::size_t>(priorityIndex(cls));
  if (shard.latencyHist[ci] != nullptr) {
    shard.latencyHist[ci]->observe(static_cast<double>(latency));
    (hit ? shard.sloHitCtr[ci] : shard.sloMissCtr[ci])->inc();
  }
}

ServingRuntime::ClassStats ServingRuntime::classStats(Priority cls) const {
  const auto ci = static_cast<std::size_t>(priorityIndex(cls));
  ClassStats out;
  for (const ShardStats& shard : shardStats_) {
    const ClassStats& s = shard.perClass[ci];
    out.offered += s.offered;
    out.admitted += s.admitted;
    out.deferRetries += s.deferRetries;
    out.shed += s.shed;
    out.completed += s.completed;
    out.sloHit += s.sloHit;
    out.sloMiss += s.sloMiss;
    out.completedBytes += s.completedBytes;
    out.sloGoodBytes += s.sloGoodBytes;
    out.latencySumNs += s.latencySumNs;
    out.maxLatencyNs = std::max(out.maxLatencyNs, s.maxLatencyNs);
  }
  return out;
}

ServingRuntime::ClassStats ServingRuntime::totalStats() const {
  ClassStats out;
  for (int c = 0; c < admission::kNumPriorities; ++c) {
    const ClassStats s = classStats(static_cast<Priority>(c));
    out.offered += s.offered;
    out.admitted += s.admitted;
    out.deferRetries += s.deferRetries;
    out.shed += s.shed;
    out.completed += s.completed;
    out.sloHit += s.sloHit;
    out.sloMiss += s.sloMiss;
    out.completedBytes += s.completedBytes;
    out.sloGoodBytes += s.sloGoodBytes;
    out.latencySumNs += s.latencySumNs;
    out.maxLatencyNs = std::max(out.maxLatencyNs, s.maxLatencyNs);
  }
  return out;
}

std::uint64_t ServingRuntime::statsDigest() const {
  std::uint64_t h = kFnvOffset;
  for (int c = 0; c < admission::kNumPriorities; ++c) {
    const ClassStats s = classStats(static_cast<Priority>(c));
    fnvMix(h, s.offered);
    fnvMix(h, s.admitted);
    fnvMix(h, s.deferRetries);
    fnvMix(h, s.shed);
    fnvMix(h, s.completed);
    fnvMix(h, s.sloHit);
    fnvMix(h, s.sloMiss);
    fnvMix(h, static_cast<std::uint64_t>(s.completedBytes));
    fnvMix(h, static_cast<std::uint64_t>(s.sloGoodBytes));
    fnvMix(h, s.latencySumNs);
    fnvMix(h, static_cast<std::uint64_t>(s.maxLatencyNs));
  }
  return h;
}

// ---- MPI-style closed-loop equivalents ------------------------------------

Workload incast(int ranks, std::int64_t bytesPerFlow, int rounds) {
  assert(ranks >= 2);
  Workload w;
  w.name = "incast";
  w.perRank.resize(static_cast<std::size_t>(ranks));
  int tag = 1;
  for (int round = 0; round < rounds; ++round) {
    for (int r = 1; r < ranks; ++r) {
      w.perRank[static_cast<std::size_t>(r)].push_back(
          Op::send(0, bytesPerFlow, tag));
      w.perRank[0].push_back(Op::recv(r, tag));
    }
    ++tag;
    for (auto& program : w.perRank) program.push_back(Op::barrier());
  }
  return w;
}

Workload partitionAggregate(int ranks, std::int64_t requestBytes,
                            std::int64_t responseBytes, int queries) {
  assert(ranks >= 2);
  Workload w;
  w.name = "partagg";
  w.perRank.resize(static_cast<std::size_t>(ranks));
  int tag = 1;
  for (int q = 0; q < queries; ++q) {
    for (int r = 1; r < ranks; ++r) {
      w.perRank[0].push_back(Op::send(r, requestBytes, tag));
      w.perRank[static_cast<std::size_t>(r)].push_back(Op::recv(0, tag));
      w.perRank[static_cast<std::size_t>(r)].push_back(
          Op::send(0, responseBytes, tag + 1));
    }
    for (int r = 1; r < ranks; ++r) {
      w.perRank[0].push_back(Op::recv(r, tag + 1));
    }
    tag += 2;
    for (auto& program : w.perRank) program.push_back(Op::barrier());
  }
  return w;
}

}  // namespace sdt::workloads
