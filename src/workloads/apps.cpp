#include "workloads/apps.hpp"

#include <cassert>
#include <cmath>

#include "common/strings.hpp"

namespace sdt::workloads {

namespace {
std::vector<Program> emptyPrograms(int ranks) {
  return std::vector<Program>(static_cast<std::size_t>(ranks));
}
}  // namespace

void addAlltoall(std::vector<Program>& programs, std::int64_t msgBytes, int& tag) {
  const int n = static_cast<int>(programs.size());
  const int base = tag;
  for (int r = 0; r < n; ++r) {
    // Post all sends eagerly, then drain the receives: classic pairwise
    // exchange without per-phase synchronization.
    for (int p = 1; p < n; ++p) {
      programs[r].push_back(Op::send((r + p) % n, msgBytes, base + p));
    }
    for (int p = 1; p < n; ++p) {
      programs[r].push_back(Op::recv((r - p + n) % n, base + p));
    }
  }
  tag += n;
}

void addRingAllreduce(std::vector<Program>& programs, std::int64_t totalBytes, int& tag) {
  const int n = static_cast<int>(programs.size());
  if (n < 2) return;
  const std::int64_t chunk = std::max<std::int64_t>(1, totalBytes / n);
  // reduce-scatter then allgather: 2(n-1) steps, each rank sends a chunk to
  // its right neighbor and receives from its left.
  for (int step = 0; step < 2 * (n - 1); ++step) {
    for (int r = 0; r < n; ++r) {
      programs[r].push_back(Op::send((r + 1) % n, chunk, tag + step));
      programs[r].push_back(Op::recv((r - 1 + n) % n, tag + step));
    }
  }
  tag += 2 * (n - 1);
}

void addSmallAllreduce(std::vector<Program>& programs, std::int64_t bytes, int& tag) {
  const int n = static_cast<int>(programs.size());
  if (n < 2) return;
  if ((n & (n - 1)) != 0) {
    addRingAllreduce(programs, bytes, tag);
    return;
  }
  for (int bit = 1; bit < n; bit <<= 1) {
    for (int r = 0; r < n; ++r) {
      const int peer = r ^ bit;
      programs[r].push_back(Op::send(peer, bytes, tag));
      programs[r].push_back(Op::recv(peer, tag));
    }
    ++tag;
  }
}

void addBinomialBcast(std::vector<Program>& programs, int root, std::int64_t bytes,
                      int& tag) {
  const int n = static_cast<int>(programs.size());
  // Relative rank rr = (rank - root) mod n; in round k, ranks rr < 2^k with
  // rr + 2^k < n send to rr + 2^k.
  for (int bit = 1; bit < n; bit <<= 1) {
    for (int rr = 0; rr < bit && rr + bit < n; ++rr) {
      const int sender = (root + rr) % n;
      const int receiver = (root + rr + bit) % n;
      programs[sender].push_back(Op::send(receiver, bytes, tag));
      programs[receiver].push_back(Op::recv(sender, tag));
    }
    ++tag;
  }
}

void processGrid3D(int ranks, int& px, int& py, int& pz) {
  px = py = pz = 1;
  int rest = ranks;
  // Peel the largest factor <= cube root repeatedly.
  const auto largestFactorLe = [](int v, int cap) {
    for (int f = cap; f >= 1; --f) {
      if (v % f == 0) return f;
    }
    return 1;
  };
  pz = largestFactorLe(rest, static_cast<int>(std::cbrt(static_cast<double>(rest))));
  rest /= pz;
  py = largestFactorLe(rest, static_cast<int>(std::sqrt(static_cast<double>(rest))));
  px = rest / py;
  if (px < py) std::swap(px, py);
  if (py < pz) std::swap(py, pz);
  if (px < py) std::swap(px, py);
  assert(px * py * pz == ranks);
}

void addHaloExchange3D(std::vector<Program>& programs, int px, int py, int pz,
                       std::int64_t faceBytes, int& tag) {
  const int n = px * py * pz;
  assert(static_cast<int>(programs.size()) == n);
  const auto id = [&](int x, int y, int z) { return (z * py + y) * px + x; };
  const int base = tag;
  for (int z = 0; z < pz; ++z) {
    for (int y = 0; y < py; ++y) {
      for (int x = 0; x < px; ++x) {
        const int me = id(x, y, z);
        // (neighbor, direction-tag) pairs; tags distinguish the 6 faces.
        std::vector<std::pair<int, int>> sends;
        std::vector<std::pair<int, int>> recvs;
        const auto face = [&](int nx, int ny, int nz, int sendDir, int recvDir) {
          if (nx < 0 || nx >= px || ny < 0 || ny >= py || nz < 0 || nz >= pz) return;
          const int peer = id(nx, ny, nz);
          sends.emplace_back(peer, base + sendDir);
          recvs.emplace_back(peer, base + recvDir);
        };
        face(x - 1, y, z, 0, 1);  // send -x face; receive peer's +x face
        face(x + 1, y, z, 1, 0);
        face(x, y - 1, z, 2, 3);
        face(x, y + 1, z, 3, 2);
        face(x, y, z - 1, 4, 5);
        face(x, y, z + 1, 5, 4);
        for (const auto& [peer, t] : sends) programs[me].push_back(Op::send(peer, faceBytes, t));
        for (const auto& [peer, t] : recvs) programs[me].push_back(Op::recv(peer, t));
      }
    }
  }
  tag += 6;
}

void addBarrier(std::vector<Program>& programs) {
  for (Program& p : programs) p.push_back(Op::barrier());
}

void addCompute(std::vector<Program>& programs, TimeNs ns) {
  for (Program& p : programs) p.push_back(Op::compute(ns));
}

Workload imbPingpong(int ranks, std::int64_t msgBytes, int iterations) {
  assert(ranks >= 2);
  Workload w;
  w.name = strFormat("imb-pingpong-%lldB-x%d", static_cast<long long>(msgBytes),
                     iterations);
  w.perRank = emptyPrograms(ranks);
  for (int i = 0; i < iterations; ++i) {
    w.perRank[0].push_back(Op::send(1, msgBytes, i));
    w.perRank[1].push_back(Op::recv(0, i));
    w.perRank[1].push_back(Op::send(0, msgBytes, i));
    w.perRank[0].push_back(Op::recv(1, i));
  }
  return w;
}

Workload imbAlltoall(int ranks, std::int64_t msgBytes, int iterations) {
  Workload w;
  w.name = strFormat("imb-alltoall-%dr-%lldB-x%d", ranks,
                     static_cast<long long>(msgBytes), iterations);
  w.perRank = emptyPrograms(ranks);
  int tag = 0;
  for (int i = 0; i < iterations; ++i) {
    addAlltoall(w.perRank, msgBytes, tag);
    addBarrier(w.perRank);
  }
  return w;
}

Workload hpcg(int ranks, const HpcgParams& params) {
  Workload w;
  w.name = strFormat("hpcg-%dr", ranks);
  w.perRank = emptyPrograms(ranks);
  int px, py, pz;
  processGrid3D(ranks, px, py, pz);
  int tag = 0;
  for (int it = 0; it < params.iterations; ++it) {
    addCompute(w.perRank, params.computePerIteration);
    addHaloExchange3D(w.perRank, px, py, pz, params.faceBytes, tag);
    // Two dot-product allreduces per CG-flavored iteration (8-byte scalars,
    // ring algorithm degenerates to tiny messages).
    addSmallAllreduce(w.perRank, 8 * ranks, tag);
    addSmallAllreduce(w.perRank, 8 * ranks, tag);
  }
  return w;
}

Workload hpl(int ranks, const HplParams& params) {
  Workload w;
  w.name = strFormat("hpl-%dr", ranks);
  w.perRank = emptyPrograms(ranks);
  int tag = 0;
  for (int panel = 0; panel < params.panels; ++panel) {
    // Panel factorization + broadcast, then the big trailing update. The
    // panel shrinks as the factorization proceeds.
    const double shrink =
        1.0 - static_cast<double>(panel) / (2.0 * static_cast<double>(params.panels));
    const auto bytes = static_cast<std::int64_t>(
        static_cast<double>(params.panelBytes) * shrink);
    addBinomialBcast(w.perRank, panel % ranks, std::max<std::int64_t>(bytes, 1024), tag);
    addCompute(w.perRank,
               static_cast<TimeNs>(static_cast<double>(params.computePerPanel) * shrink *
                                   shrink));
  }
  return w;
}

Workload miniGhost(int ranks, const MiniGhostParams& params) {
  Workload w;
  w.name = strFormat("minighost-%dr", ranks);
  w.perRank = emptyPrograms(ranks);
  int px, py, pz;
  processGrid3D(ranks, px, py, pz);
  int tag = 0;
  for (int it = 0; it < params.iterations; ++it) {
    addCompute(w.perRank, params.computePerIteration);
    addHaloExchange3D(w.perRank, px, py, pz, params.faceBytes, tag);
    // BSPMA flavor: one global reduction per step (grid checksum).
    addSmallAllreduce(w.perRank, 8 * ranks, tag);
  }
  return w;
}

Workload miniFe(int ranks, const MiniFeParams& params) {
  Workload w;
  w.name = strFormat("minife-%dr", ranks);
  w.perRank = emptyPrograms(ranks);
  int px, py, pz;
  processGrid3D(ranks, px, py, pz);
  int tag = 0;
  for (int it = 0; it < params.cgIterations; ++it) {
    addCompute(w.perRank, params.computePerIteration);
    addHaloExchange3D(w.perRank, px, py, pz, params.haloBytes, tag);
    addSmallAllreduce(w.perRank, 8 * ranks, tag);
    addSmallAllreduce(w.perRank, 8 * ranks, tag);
  }
  return w;
}

}  // namespace sdt::workloads
