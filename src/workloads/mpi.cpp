#include "workloads/mpi.hpp"

#include <cassert>

namespace sdt::workloads {

std::int64_t Workload::totalSendBytes() const {
  std::int64_t sum = 0;
  for (const Program& p : perRank) {
    for (const Op& op : p) {
      if (op.kind == Op::Kind::kSend) sum += op.bytesOrNs;
    }
  }
  return sum;
}

std::int64_t Workload::totalComputeNs() const {
  std::int64_t sum = 0;
  for (const Program& p : perRank) {
    for (const Op& op : p) {
      if (op.kind == Op::Kind::kCompute) sum += op.bytesOrNs;
    }
  }
  return sum;
}

MpiRuntime::MpiRuntime(sim::Simulator& sim, sim::TransportManager& transport,
                       std::vector<int> rankToHost, int vc)
    : sim_(&sim), transport_(&transport), rankToHost_(std::move(rankToHost)), vc_(vc) {}

void MpiRuntime::run(Workload workload) {
  workload_ = std::move(workload);
  assert(workload_.numRanks() == numRanks());
  states_.assign(static_cast<std::size_t>(numRanks()), RankState{});
  finishedRanks_ = 0;
  barrierWaiting_ = 0;
  for (int r = 0; r < numRanks(); ++r) {
    // Each rank's program executes entirely on its host's shard.
    sim_->scheduleOn(rankShard(r), 0, [this, r]() { advance(r); });
  }
}

int MpiRuntime::rankShard(int rank) const {
  return transport_->network().hostShard(rankToHost_[rank]);
}

void MpiRuntime::noteFinished(TimeNs rankFinishTime) {
  ++finishedRanks_;
  completionTime_ = std::max(completionTime_, rankFinishTime);
  if (finishedRanks_ == numRanks() && onFinished_) onFinished_();
}

void MpiRuntime::noteBarrier() {
  ++barrierWaiting_;
  if (barrierWaiting_ == numRanks()) releaseBarrier();
}

void MpiRuntime::advance(int rank) {
  RankState& st = states_[rank];
  const Program& program = workload_.perRank[rank];
  while (!st.done) {
    if (st.pc >= program.size()) {
      st.done = true;
      const TimeNs t = sim_->now();
      if (sim_->numShards() == 1 || sim_->currentShard() == 0) {
        noteFinished(t);
      } else {
        sim_->scheduleOn(0, sim_->crossDelay(0, 0), [this, t]() { noteFinished(t); });
      }
      return;
    }
    const Op& op = program[st.pc];
    switch (op.kind) {
      case Op::Kind::kCompute: {
        ++st.pc;
        if (op.bytesOrNs > 0) {
          sim_->schedule(op.bytesOrNs, [this, rank]() { advance(rank); });
          return;
        }
        break;  // zero-cost compute: fall through to next op
      }
      case Op::Kind::kSend: {
        ++st.pc;
        const int dst = op.peer;
        const int tag = op.tag;
        assert(dst >= 0 && dst < numRanks() && dst != rank);
        messagesSent_.fetch_add(1, std::memory_order_relaxed);
        transport_->sendMessage(
            rankToHost_[rank], rankToHost_[dst], op.bytesOrNs, vc_,
            [this, dst, rank, tag](std::uint64_t, TimeNs) {
              onMessageArrived(dst, rank, tag);
            });
        break;  // eager send: keep executing
      }
      case Op::Kind::kRecv: {
        // Match against the mailbox (exact src or wildcard).
        auto& mailbox = st.mailbox;
        auto matchIt = mailbox.end();
        if (op.peer >= 0) {
          matchIt = mailbox.find({op.peer, op.tag});
          if (matchIt != mailbox.end() && matchIt->second == 0) matchIt = mailbox.end();
        } else {
          for (auto it = mailbox.begin(); it != mailbox.end(); ++it) {
            if (it->first.second == op.tag && it->second > 0) {
              matchIt = it;
              break;
            }
          }
        }
        if (matchIt != mailbox.end()) {
          --matchIt->second;
          ++st.pc;
          break;
        }
        st.blockedOnRecv = true;
        st.wantSrc = op.peer;
        st.wantTag = op.tag;
        return;
      }
      case Op::Kind::kBarrier: {
        st.inBarrier = true;
        if (sim_->numShards() == 1 || sim_->currentShard() == 0) {
          noteBarrier();
        } else {
          sim_->scheduleOn(0, sim_->crossDelay(0, 0), [this]() { noteBarrier(); });
        }
        return;
      }
    }
  }
}

void MpiRuntime::onMessageArrived(int dstRank, int srcRank, int tag) {
  RankState& st = states_[dstRank];
  if (st.blockedOnRecv && (st.wantSrc < 0 || st.wantSrc == srcRank) && st.wantTag == tag) {
    st.blockedOnRecv = false;
    ++st.pc;
    advance(dstRank);
    return;
  }
  ++st.mailbox[{srcRank, tag}];
}

void MpiRuntime::releaseBarrier() {
  barrierWaiting_ = 0;
  if (sim_->numShards() == 1) {
    // Legacy schedule: one release event advancing every rank in order.
    sim_->schedule(barrierLatency_, [this]() {
      for (int r = 0; r < numRanks(); ++r) {
        RankState& st = states_[r];
        if (st.inBarrier) {
          st.inBarrier = false;
          ++st.pc;
          advance(r);
        }
      }
    });
    return;
  }
  // Sharded: fan one release event out to each rank's own shard. Every rank
  // is quiescent inside the barrier (its notification to shard 0 happened
  // before this), so touching its state from the release event is safe.
  for (int r = 0; r < numRanks(); ++r) {
    const int shard = rankShard(r);
    sim_->scheduleOn(shard, sim_->crossDelay(shard, barrierLatency_), [this, r]() {
      RankState& st = states_[r];
      if (st.inBarrier) {
        st.inBarrier = false;
        ++st.pc;
        advance(r);
      }
    });
  }
}

}  // namespace sdt::workloads
