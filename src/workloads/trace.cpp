#include "workloads/trace.hpp"

#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace sdt::workloads {

void writeTrace(std::ostream& out, const Workload& workload) {
  out << "# workload " << workload.name << " ranks " << workload.numRanks() << "\n";
  for (int r = 0; r < workload.numRanks(); ++r) {
    out << "rank " << r << "\n";
    for (const Op& op : workload.perRank[r]) {
      switch (op.kind) {
        case Op::Kind::kCompute:
          out << "c " << op.bytesOrNs << "\n";
          break;
        case Op::Kind::kSend:
          out << "s " << op.peer << " " << op.bytesOrNs << " " << op.tag << "\n";
          break;
        case Op::Kind::kRecv:
          out << "r " << op.peer << " " << op.tag << "\n";
          break;
        case Op::Kind::kBarrier:
          out << "b\n";
          break;
      }
    }
  }
}

Result<Workload> readTrace(std::istream& in) {
  Workload w;
  std::string line;
  int currentRank = -1;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    std::istringstream ls{std::string(trimmed)};
    const auto fail = [&](const char* why) {
      return makeError(strFormat("trace line %d: %s", lineNo, why));
    };
    if (trimmed[0] == '#') {
      // "# workload <name> ranks <n>"
      std::string hash, kw, name, ranksKw;
      int ranks = 0;
      if (ls >> hash >> kw >> name >> ranksKw >> ranks && kw == "workload" && ranks > 0) {
        w.name = name;
        w.perRank.assign(static_cast<std::size_t>(ranks), Program{});
      }
      continue;
    }
    std::string cmd;
    ls >> cmd;
    if (cmd == "rank") {
      if (!(ls >> currentRank) || currentRank < 0 ||
          currentRank >= static_cast<int>(w.perRank.size())) {
        return fail("bad rank header");
      }
      continue;
    }
    if (currentRank < 0) return fail("op before any 'rank' header");
    Program& program = w.perRank[currentRank];
    if (cmd == "c") {
      std::int64_t ns = 0;
      if (!(ls >> ns) || ns < 0) return fail("bad compute");
      program.push_back(Op::compute(ns));
    } else if (cmd == "s") {
      std::int64_t bytes = 0;
      int dst = 0, tag = 0;
      if (!(ls >> dst >> bytes >> tag) || bytes <= 0 || dst < 0 ||
          dst >= static_cast<int>(w.perRank.size())) {
        return fail("bad send");
      }
      program.push_back(Op::send(dst, bytes, tag));
    } else if (cmd == "r") {
      int src = 0, tag = 0;
      if (!(ls >> src >> tag) || src < -1 ||
          src >= static_cast<int>(w.perRank.size())) {
        return fail("bad recv");
      }
      program.push_back(Op::recv(src, tag));
    } else if (cmd == "b") {
      program.push_back(Op::barrier());
    } else {
      return fail("unknown op");
    }
  }
  if (w.perRank.empty()) return makeError("trace has no workload header");
  return w;
}

Status<Error> writeTraceFile(const std::string& path, const Workload& workload) {
  std::ofstream out(path);
  if (!out) return makeError("cannot open for writing: " + path);
  writeTrace(out, workload);
  return {};
}

Result<Workload> readTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return makeError("cannot open: " + path);
  return readTrace(in);
}

}  // namespace sdt::workloads
