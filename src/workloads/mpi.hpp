// MPI-like rank runtime over the simulated fabric.
//
// The paper drives its testbed with real MPI applications (HPCG, HPL,
// miniGhost, miniFE, IMB) and feeds its simulator with traces collected from
// them (§VI-A2). We model an application as one Program per rank — a list of
// compute / send / recv / barrier ops — and interpret the programs
// event-driven on top of the RoCE transport. The same Program doubles as the
// trace format (workloads/trace.hpp), so "collect a trace and replay it in
// the simulator" is the identity operation here by construction.
//
// Semantics (deliberately simple but sufficient for collective patterns):
//  - kSend is non-blocking (eager); message completion is receiver-side.
//  - kRecv blocks until a matching message (srcRank, tag) has arrived.
//  - kBarrier blocks until every rank reaches it (small fixed sync cost).
//  - kCompute advances the rank's clock without touching the network.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/transport.hpp"

namespace sdt::workloads {

struct Op {
  enum class Kind : std::uint8_t { kCompute, kSend, kRecv, kBarrier };
  Kind kind = Kind::kCompute;
  std::int64_t bytesOrNs = 0;  ///< kCompute: ns; kSend: bytes
  int peer = -1;               ///< kSend: dst rank; kRecv: src rank (-1 = any)
  int tag = 0;

  static Op compute(std::int64_t ns) { return {Kind::kCompute, ns, -1, 0}; }
  static Op send(int dst, std::int64_t bytes, int tag = 0) {
    return {Kind::kSend, bytes, dst, tag};
  }
  static Op recv(int src, int tag = 0) { return {Kind::kRecv, 0, src, tag}; }
  static Op barrier() { return {Kind::kBarrier, 0, -1, 0}; }
};

using Program = std::vector<Op>;

struct Workload {
  std::string name;
  std::vector<Program> perRank;

  [[nodiscard]] int numRanks() const { return static_cast<int>(perRank.size()); }
  /// Total bytes the workload will inject (all sends).
  [[nodiscard]] std::int64_t totalSendBytes() const;
  [[nodiscard]] std::int64_t totalComputeNs() const;
};

class MpiRuntime {
 public:
  /// `rankToHost[r]` is the sim host running rank r (hosts must be distinct).
  MpiRuntime(sim::Simulator& sim, sim::TransportManager& transport,
             std::vector<int> rankToHost, int vc = 0);

  /// Schedule the workload (call once, then Simulator::run()). The runtime
  /// keeps its own copy, so temporaries are fine.
  void run(Workload workload);

  [[nodiscard]] bool finished() const { return finishedRanks_ == numRanks(); }
  /// Simulated completion time (max over ranks); valid once finished().
  [[nodiscard]] TimeNs completionTime() const { return completionTime_; }
  [[nodiscard]] int numRanks() const { return static_cast<int>(rankToHost_.size()); }
  [[nodiscard]] std::int64_t messagesSent() const {
    return messagesSent_.load(std::memory_order_relaxed);
  }

  /// Fixed cost of a barrier release (models the tree sync latency).
  void setBarrierLatency(TimeNs ns) { barrierLatency_ = ns; }

  /// Invoked once when the last rank finishes — e.g. to stop a periodic
  /// NetworkMonitor so Simulator::run() can drain.
  void setOnFinished(std::function<void()> fn) { onFinished_ = std::move(fn); }

 private:
  struct RankState {
    std::size_t pc = 0;
    bool blockedOnRecv = false;
    int wantSrc = -1;
    int wantTag = 0;
    bool inBarrier = false;
    bool done = false;
    /// Arrived-but-unmatched messages: (srcRank, tag) -> count.
    std::map<std::pair<int, int>, int> mailbox;
  };

  void advance(int rank);
  void onMessageArrived(int dstRank, int srcRank, int tag);
  void releaseBarrier();
  // Sharded runs home all cross-rank coordination (finish counting, barrier
  // counting) on shard 0: rank shards send notification events there instead
  // of mutating shared counters. With one shard the notifications collapse to
  // direct calls, preserving the legacy event schedule exactly.
  void noteFinished(TimeNs rankFinishTime);
  void noteBarrier();
  [[nodiscard]] int rankShard(int rank) const;

  sim::Simulator* sim_;
  sim::TransportManager* transport_;
  std::vector<int> rankToHost_;
  int vc_;
  Workload workload_;
  std::vector<RankState> states_;
  int finishedRanks_ = 0;
  int barrierWaiting_ = 0;
  TimeNs barrierLatency_ = usToNs(1.0);
  TimeNs completionTime_ = 0;
  std::atomic<std::int64_t> messagesSent_{0};
  std::function<void()> onFinished_;
};

}  // namespace sdt::workloads
