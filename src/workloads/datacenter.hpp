// Datacenter overload workloads: open-loop serving traffic with per-flow
// latency SLOs.
//
// The HPC workloads (apps.hpp) are closed loops — every rank waits for its
// collective, so offered load self-limits at fabric capacity. Overload needs
// the opposite: open-loop sources that keep injecting regardless of fabric
// state, the regime where goodput collapses without an admission layer. This
// module models the classic datacenter mixes:
//   - incast: N senders answer one aggregator in synchronized rounds (the
//     TCP-incast / partition-aggregate leaf pattern);
//   - partition-aggregate: a root fans a query to workers and waits for all
//     responses — completion is the *query*, the canonical tail-latency SLO;
//   - storage replication: client write -> primary -> R replicas -> acks ->
//     commit, write-latency SLO over the full chain;
//   - bursty uniform mix: on/off background traffic between random pairs.
//
// Every source is an event-driven generator homed on shard 0 drawing from
// its own seeded RNG; flow starts are dispatched to the source host's shard
// (lookahead-padded), where the optional AdmissionController is consulted —
// admit sends on the RoCE transport, defer retries after Policy::deferDelay
// up to Policy::maxDefers, then the flow is shed. Completions are scored
// against the priority class SLO where they land (receiver shard), into
// per-shard stats merged at read time — the whole pipeline stays
// bit-identical serial vs K-shard parallel at fixed K.
//
// The kOverload fault family drives rate scaling through attachOverload():
// storms multiply arrival rates fabric-wide or for one rogue source owner.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "admission/admission.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/faults.hpp"
#include "sim/transport.hpp"
#include "workloads/mpi.hpp"

namespace sdt::workloads {

using admission::Priority;

/// N senders -> one aggregator, all firing each round (synchronized incast).
struct IncastSpec {
  std::vector<int> senders;  ///< source hosts (must exclude `aggregator`)
  int aggregator = -1;
  std::int64_t bytesPerFlow = 32 * kKiB;
  TimeNs meanRoundInterval = usToNs(200.0);  ///< exponential round spacing
  Priority priority = Priority::kSilver;
};

/// Root fans `requestBytes` to each worker; each worker answers with
/// `responseBytes`; the query completes when the last response lands.
struct PartitionAggregateSpec {
  int root = -1;
  std::vector<int> workers;  ///< must exclude `root`
  std::int64_t requestBytes = 2 * kKiB;
  std::int64_t responseBytes = 16 * kKiB;
  TimeNs meanQueryInterval = usToNs(300.0);
  Priority priority = Priority::kGold;
};

/// Client write replicated primary -> replicas; commit ack closes the chain.
struct ReplicationSpec {
  int client = -1;
  int primary = -1;
  std::vector<int> replicas;  ///< must exclude `client` and `primary`
  std::int64_t writeBytes = 64 * kKiB;
  TimeNs meanWriteInterval = usToNs(500.0);
  Priority priority = Priority::kSilver;
};

/// On/off background mix between random distinct pairs of `hosts`.
struct BurstyMixSpec {
  std::vector<int> hosts;  ///< at least 2
  std::int64_t bytesPerFlow = 16 * kKiB;
  TimeNs meanFlowInterval = usToNs(50.0);  ///< during a burst
  TimeNs meanBurstLen = msToNs(1.0);
  TimeNs meanOffLen = msToNs(1.0);
  Priority priority = Priority::kBronze;
};

struct ServingConfig {
  TimeNs start = 0;
  TimeNs duration = msToNs(20.0);  ///< generation horizon (open loop stops)
  std::uint64_t seed = 0xD47AC347ULL;
};

class ServingRuntime {
 public:
  ServingRuntime(sim::Simulator& sim, sim::Network& net,
                 sim::TransportManager& transport, ServingConfig config);

  /// Gate every flow start through `adm` (nullptr = open loop, no brake).
  /// The admission policy's class table also provides the SLO targets.
  void setAdmission(admission::AdmissionController* adm) { admission_ = adm; }

  /// Per-class SLO targets used for scoring when no admission controller is
  /// attached (defaults to admission::Policy{} classes).
  void setSloPolicy(const admission::Policy& policy) { sloPolicy_ = policy; }

  void addIncast(IncastSpec spec);
  void addPartitionAggregate(PartitionAggregateSpec spec);
  void addReplication(ReplicationSpec spec);
  void addBurstyMix(BurstyMixSpec spec);

  /// Route kOverload* faults into the rate scaler (sink runs on shard 0,
  /// where the generators live).
  void attachOverload(sim::FaultInjector& injector);

  /// Per-shard SLO counters and latency histograms. Call before start().
  void attachMetrics(obs::Registry& registry);

  /// Global offered-load multiplier (call pre-run or from shard 0).
  void setRateScale(double scale) { globalScale_ = scale; }
  /// Multiplier for sources owned by `host` (rogue tenant).
  void setHostRateScale(int host, double scale);

  /// Arm the generators (call once, before Simulator::run()).
  void start();

  // -- Merged statistics (read post-run or from a serial context) -----------
  struct ClassStats {
    std::uint64_t offered = 0;        ///< flow/query starts attempted
    std::uint64_t admitted = 0;       ///< entered the fabric
    std::uint64_t deferRetries = 0;   ///< defer decisions absorbed
    std::uint64_t shed = 0;           ///< rejected outright or after defers
    std::uint64_t completed = 0;
    std::uint64_t sloHit = 0;
    std::uint64_t sloMiss = 0;
    std::int64_t completedBytes = 0;  ///< application bytes of completed units
    std::int64_t sloGoodBytes = 0;    ///< completed bytes that met the class SLO
    std::uint64_t latencySumNs = 0;
    TimeNs maxLatencyNs = 0;
  };
  [[nodiscard]] ClassStats classStats(Priority cls) const;
  [[nodiscard]] ClassStats totalStats() const;
  /// FNV-1a digest over every per-class merged counter — the fingerprint the
  /// determinism suite compares across serial/parallel runs.
  [[nodiscard]] std::uint64_t statsDigest() const;

 private:
  enum class SourceKind : std::uint8_t { kIncast, kPartAgg, kReplication, kBursty };

  struct Source {
    SourceKind kind;
    int owner = -1;  ///< rate-scale key: aggregator/root/client (-1 = none)
    IncastSpec incast;
    PartitionAggregateSpec partAgg;
    ReplicationSpec repl;
    BurstyMixSpec bursty;
    Rng rng{0};
    bool inBurst = false;   ///< bursty only
    TimeNs burstEndsAt = 0; ///< bursty only
  };

  struct alignas(64) ShardStats {
    std::array<ClassStats, admission::kNumPriorities> perClass{};
    // Obs cells (null when metrics not attached).
    std::array<obs::Counter*, admission::kNumPriorities> sloHitCtr{};
    std::array<obs::Counter*, admission::kNumPriorities> sloMissCtr{};
    std::array<obs::Histogram*, admission::kNumPriorities> latencyHist{};
  };

  [[nodiscard]] double scaleFor(const Source& src) const;  ///< shard 0 only
  [[nodiscard]] TimeNs deadline() const { return config_.start + config_.duration; }
  [[nodiscard]] int maxDefers() const;
  void sourceTick(std::size_t idx);       ///< shard 0
  void fireIncast(Source& src);
  void firePartAgg(Source& src);
  void fireReplication(Source& src);
  void fireBurstyFlow(Source& src);
  /// Dispatch one admission *unit* (flow, query, or replicated write) onto
  /// `srcHost`'s shard: count it offered, gate it through admission
  /// (charging `chargeBytes`), and on admit run `admitAction(bornAt)` in
  /// that shard's context. Defers retry in place; exhausted defers shed.
  void launchUnit(int srcHost, Priority cls, std::int64_t chargeBytes,
                  std::function<void(TimeNs)> admitAction);
  void tryStart(int srcHost, Priority cls, std::int64_t chargeBytes,
                int defersLeft, TimeNs bornAt,
                std::function<void(TimeNs)> admitAction);
  /// Raw transport send, no admission gate (sub-flows of an admitted unit).
  /// Must run on `srcHost`'s shard; `onDone(at)` fires on `dstHost`'s shard.
  void sendUngated(int srcHost, int dstHost, std::int64_t bytes,
                   std::function<void(TimeNs)> onDone);
  void recordCompletion(Priority cls, TimeNs bornAt, TimeNs completedAt,
                        std::int64_t bytes);
  [[nodiscard]] ClassStats& statsHere(Priority cls);
  [[nodiscard]] TimeNs sloFor(Priority cls) const;

  sim::Simulator* sim_;
  sim::Network* net_;
  sim::TransportManager* transport_;
  ServingConfig config_;
  admission::AdmissionController* admission_ = nullptr;
  admission::Policy sloPolicy_;  ///< SLO fallback when admission_ == nullptr
  std::vector<Source> sources_;
  std::vector<ShardStats> shardStats_;  ///< one per shard
  // Rate scaling; shard-0-owned (generators and overload sink live there).
  double globalScale_ = 1.0;
  std::vector<double> hostScale_;
  /// Small control payload for replication acks/commits.
  static constexpr std::int64_t kCtrlBytes = 256;
};

// ---- MPI-style closed-loop equivalents (sdtctl demo configs) --------------

/// Rank 0 aggregates: each round, every other rank sends `bytesPerFlow` to
/// rank 0, barrier between rounds. The closed-loop cousin of IncastSpec.
Workload incast(int ranks, std::int64_t bytesPerFlow, int rounds);

/// Rank 0 is the root: per query it requests every worker and collects all
/// responses, barrier between queries.
Workload partitionAggregate(int ranks, std::int64_t requestBytes,
                            std::int64_t responseBytes, int queries);

}  // namespace sdt::workloads
