// Application models: the communication skeletons of the paper's workloads
// (HPCG, HPL, miniGhost, miniFE, IMB Pingpong / Alltoall, §VI-D) expressed
// as per-rank Op programs.
//
// The paper runs the real binaries on its testbed and replays collected
// traces in its simulator; we generate the traces synthetically from each
// application's published communication pattern, with compute gaps sized to
// match the app's characteristic compute/communication ratio (that ratio is
// what drives the Table IV speedup ordering: HPL most compute-bound, IMB
// pure communication). Compute-gap constants are tunable per call.
#pragma once

#include "workloads/mpi.hpp"

namespace sdt::workloads {

// ---- Collective building blocks (appended to existing programs) ----------

/// Pairwise-exchange all-to-all: n-1 phases, rank r sends to (r+p)%n and
/// receives from (r-p+n)%n.
void addAlltoall(std::vector<Program>& programs, std::int64_t msgBytes, int& tag);

/// Ring allreduce: 2(n-1) chunked phases (reduce-scatter + allgather).
/// Right algorithm for large payloads.
void addRingAllreduce(std::vector<Program>& programs, std::int64_t totalBytes, int& tag);

/// Recursive-doubling allreduce: log2(n) pairwise exchange rounds; the
/// latency-optimal choice for small payloads (dot products). Falls back to
/// the ring algorithm when n is not a power of two.
void addSmallAllreduce(std::vector<Program>& programs, std::int64_t bytes, int& tag);

/// Binomial-tree broadcast from `root`.
void addBinomialBcast(std::vector<Program>& programs, int root, std::int64_t bytes,
                      int& tag);

/// 3D halo exchange over a process grid (px*py*pz == ranks): each rank
/// exchanges a face with up to 6 neighbors.
void addHaloExchange3D(std::vector<Program>& programs, int px, int py, int pz,
                       std::int64_t faceBytes, int& tag);

void addBarrier(std::vector<Program>& programs);
void addCompute(std::vector<Program>& programs, TimeNs ns);

// ---- IMB benchmarks -------------------------------------------------------

/// IMB Pingpong between ranks 0 and 1 (other ranks idle): `iterations`
/// round trips of `msgBytes` each. ACT/iteration is the RTT the Fig. 11
/// latency experiment measures.
Workload imbPingpong(int ranks, std::int64_t msgBytes, int iterations);

/// IMB Alltoall: pure traffic, `iterations` rounds with a barrier between.
Workload imbAlltoall(int ranks, std::int64_t msgBytes, int iterations);

// ---- HPC applications -----------------------------------------------------

struct HpcgParams {
  int iterations = 12;
  std::int64_t faceBytes = 64 * 64 * 8;  ///< 64^3 local grid, 8-byte faces
  TimeNs computePerIteration = msToNs(6.0);  ///< SpMV+MG dominate
};
Workload hpcg(int ranks, const HpcgParams& params = {});

struct HplParams {
  int panels = 16;
  std::int64_t panelBytes = 256 * 1024;        ///< broadcast panel
  TimeNs computePerPanel = msToNs(42.0);       ///< trailing-matrix update
};
Workload hpl(int ranks, const HplParams& params = {});

struct MiniGhostParams {
  int iterations = 24;
  std::int64_t faceBytes = 96 * 96 * 8;        ///< BSPMA halo, larger faces
  TimeNs computePerIteration = msToNs(1.2);  ///< light stencil
};
Workload miniGhost(int ranks, const MiniGhostParams& params = {});

struct MiniFeParams {
  int cgIterations = 60;
  std::int64_t haloBytes = 24 * 1024;
  TimeNs computePerIteration = usToNs(40.0);   ///< sparse matvec
};
Workload miniFe(int ranks, const MiniFeParams& params = {});

/// Factor `ranks` into the most cubic process grid px >= py >= pz.
void processGrid3D(int ranks, int& px, int& py, int& pz);

}  // namespace sdt::workloads
