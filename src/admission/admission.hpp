// Overload-robust admission control: per-host credits fed by switch queue
// depths, utility-weighted priority classes, and SLO-aware load shedding.
//
// The SDT plant faithfully reproduces a fabric's behavior *below* saturation;
// past it, an open-loop workload (incast, flash crowd) simply piles bytes
// into lossy queues until goodput collapses — DCQCN alone cannot save an
// open-loop source that keeps injecting new flows. This layer is the missing
// edge brake (ROADMAP item 4): a backpressure signal derived from switch
// egress occupancy throttles each host's *injection* of new flows, so that
// offered load beyond capacity is absorbed as deferred/shed flows at the
// edge instead of as queue collapse in the core.
//
// Mechanism, end to end:
//   1. Per-shard samplers read the egress occupancy of the switches their
//      shard owns every `sampleInterval` and reduce it to a fill fraction
//      (max queue bytes / queueHighWatermarkBytes).
//   2. Samples flow to a broker homed on shard 0, which folds them into one
//      global *pressure* value (max over shards) and broadcasts it back —
//      both legs travel as lookahead-padded events, so the signal path is
//      exactly as deterministic as the data plane.
//   3. Each host owns a credit bucket refilled at
//      lineRate x rateFraction(pressure): full rate while the fabric is
//      calm, throttled linearly toward `creditRateFractionFloor` as
//      pressure approaches 1.0. A flow of B bytes at priority class c
//      charges B / utilityWeight(c) credits — higher-utility classes buy
//      more bytes per credit (utility-based admission, Kreutz et al. §V).
//   4. Above a per-class pressure threshold the class is shed outright
//      (SLO-aware: bronze gives up long before gold), and a flow that
//      cannot afford its charge is deferred for the caller to retry.
//
// Shard-safety/determinism contract: request() must be called from the
// source host's owning shard (workload drivers already run flow starts
// there); every piece of mutable state — buckets, per-shard pressure copy,
// decision counters — is touched only from its owning shard's event
// context, so serial and K-worker parallel runs of the same K are
// bit-identical. Merged statistics are computed at read time.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace sdt::admission {

/// Priority classes, highest utility first. Values index Policy::classes.
enum class Priority : std::uint8_t { kGold = 0, kSilver = 1, kBronze = 2 };
inline constexpr int kNumPriorities = 3;

const char* priorityName(Priority cls);

[[nodiscard]] constexpr int priorityIndex(Priority cls) {
  return static_cast<int>(cls);
}

/// Per-class admission knobs.
struct ClassPolicy {
  /// Credits charged for a flow = bytes / utilityWeight: a weight-4 class
  /// buys 4x the bytes per credit of a weight-1 class.
  double utilityWeight = 1.0;
  /// Completion-latency SLO for the class (workload drivers score against
  /// it; admission sheds to protect it).
  TimeNs sloNs = msToNs(10.0);
  /// Shed (reject outright) flows of this class once global pressure
  /// reaches this level. > 1.0 effectively disables shedding for the class.
  double shedAtPressure = 1.0;
};

struct Policy {
  /// Defaults: gold = latency-critical RPC (never shed until far past
  /// saturation), silver = normal serving traffic, bronze = batch/background
  /// (first against the wall).
  std::array<ClassPolicy, kNumPriorities> classes{
      ClassPolicy{4.0, msToNs(2.0), 1.5},
      ClassPolicy{2.0, msToNs(10.0), 0.9},
      ClassPolicy{1.0, msToNs(50.0), 0.6},
  };
  /// Queue-depth sampling period per shard.
  TimeNs sampleInterval = usToNs(100.0);
  /// Egress occupancy that counts as pressure 1.0. Sits below the lossy
  /// drop cap so admission reacts before the fabric starts dropping.
  std::int64_t queueHighWatermarkBytes = 128 * kKiB;
  /// Pressure below which hosts refill at full line rate.
  double pressureLowWater = 0.25;
  /// EWMA weight the broker gives each new global sample: the broadcast
  /// pressure is smoothed = alpha * sample + (1 - alpha) * smoothed. A
  /// synchronized incast round fills a queue for a few microseconds and
  /// drains; without smoothing one unlucky sample reads as sustained
  /// overload and sheds traffic a healthy fabric could carry. 1.0 disables
  /// smoothing (raw samples).
  double pressureSmoothing = 0.35;
  /// Refill-rate fraction reached at pressure 1.0 (never throttle to zero:
  /// a trickle keeps gold traffic moving and the signal loop alive).
  double creditRateFractionFloor = 0.05;
  /// Bucket capacity (burst allowance) in credit units (~bytes at weight 1).
  std::int64_t creditBurstBytes = 64 * kKiB;
  /// Modeled propagation of a pressure signal leg (sampler->broker and
  /// broker->shard). Padded up to the engine lookahead when crossing shards.
  TimeNs signalDelay = usToNs(1.0);
  /// Suggested retry spacing for deferred flows (drivers own the retry loop).
  TimeNs deferDelay = usToNs(50.0);
  /// Defers before a driver should give up and count the flow shed.
  int maxDefers = 4;
  /// Master switch: disabled => every request admits (the baseline arm of
  /// bench_overload).
  bool enabled = true;

  [[nodiscard]] StatusOr validate() const;
};

enum class Decision : std::uint8_t { kAdmit = 0, kDefer = 1, kShed = 2 };

const char* decisionName(Decision d);

class AdmissionController {
 public:
  /// The network must already be wired and partitioned (builder does both).
  AdmissionController(sim::Simulator& sim, sim::Network& net, Policy policy = {});

  /// Replace the policy. Call before start() / outside a run (the
  /// controller distributes policies between runs, not mid-window).
  void setPolicy(const Policy& policy) { policy_ = policy; }
  [[nodiscard]] const Policy& policy() const { return policy_; }

  /// Wire decision counters, pressure gauges, and queue-fill histograms
  /// into `registry` (per-shard labels: every cell is written by exactly
  /// one shard, keeping parallel exports bit-identical). Call before
  /// start().
  void attachMetrics(obs::Registry& registry);

  /// Restrict the pressure samplers to these (switch, egress port) pairs
  /// (multi-tenant scoping: a per-tenant controller watches only the queues
  /// its slice's traffic can fill, so one tenant's storm cannot throttle a
  /// neighbor's credits). Empty (the default) samples every port of every
  /// switch. Call before start().
  void restrictToPorts(std::vector<std::pair<int, int>> ports) {
    watchPorts_ = std::move(ports);
  }

  /// Arm the per-shard pressure samplers; they self-stop once the next
  /// sample would land past `until`. Call before Simulator::run().
  void start(TimeNs until);

  /// Ask to inject a flow of `bytes` at priority `cls` from `srcHost`.
  /// Must run in the source host's shard context (assert-checked).
  Decision request(int srcHost, Priority cls, std::int64_t bytes);

  /// Pressure as seen by the current shard (workloads/tests introspection).
  [[nodiscard]] double pressure() const;

  // -- Merged statistics (read post-run or from a serial context) -----------
  struct ClassCounters {
    std::uint64_t requested = 0;
    std::uint64_t admitted = 0;
    std::uint64_t deferred = 0;
    std::uint64_t shed = 0;
    std::int64_t admittedBytes = 0;
    std::int64_t shedBytes = 0;
  };
  [[nodiscard]] ClassCounters classCounters(Priority cls) const;
  /// Queue samples taken across all shards.
  [[nodiscard]] std::uint64_t samplesTaken() const;
  /// Highest global pressure the broker ever computed.
  [[nodiscard]] double peakPressure() const { return peakPressure_; }

 private:
  /// Mutable state owned by one shard; alignment keeps parallel shard
  /// threads off each other's cache lines.
  struct alignas(64) ShardLane {
    double pressure = 0.0;  ///< latest broadcast global pressure
    std::array<ClassCounters, kNumPriorities> counters{};
    std::uint64_t samples = 0;
    // Obs cells (pre-created in attachMetrics; null when not attached).
    obs::Gauge* pressureGauge = nullptr;
    obs::Histogram* fillHist = nullptr;
    std::array<std::array<obs::Counter*, 3>, kNumPriorities> decisionCtr{};
  };

  struct HostBucket {
    double credits = 0.0;
    TimeNs settledAt = 0;
  };

  [[nodiscard]] double rateFraction(double pressure) const;
  void settle(HostBucket& bucket, double pressure, int host);
  void sampleShard(int shard, TimeNs until);
  void brokerUpdate(int shard, double fill);  ///< runs on shard 0

  sim::Simulator* sim_;
  sim::Network* net_;
  Policy policy_;
  /// Non-empty: the only (switch, port) queues the samplers read.
  std::vector<std::pair<int, int>> watchPorts_;
  std::vector<ShardLane> lanes_;          ///< one per shard
  std::vector<HostBucket> buckets_;       ///< one per host (owner-shard access)
  std::vector<double> brokerShardFill_;   ///< broker state: shard 0 only
  double smoothedPressure_ = 0.0;         ///< broker state: shard 0 only
  double peakPressure_ = 0.0;             ///< broker state: shard 0 only
};

}  // namespace sdt::admission
