#include "admission/admission.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace sdt::admission {

const char* priorityName(Priority cls) {
  switch (cls) {
    case Priority::kGold: return "gold";
    case Priority::kSilver: return "silver";
    case Priority::kBronze: return "bronze";
  }
  return "?";
}

const char* decisionName(Decision d) {
  switch (d) {
    case Decision::kAdmit: return "admit";
    case Decision::kDefer: return "defer";
    case Decision::kShed: return "shed";
  }
  return "?";
}

StatusOr Policy::validate() const {
  if (sampleInterval <= 0) return makeError("admission: sampleInterval must be > 0");
  if (queueHighWatermarkBytes <= 0) {
    return makeError("admission: queueHighWatermarkBytes must be > 0");
  }
  if (pressureLowWater < 0.0 || pressureLowWater >= 1.0) {
    return makeError("admission: pressureLowWater must be in [0, 1)");
  }
  if (pressureSmoothing <= 0.0 || pressureSmoothing > 1.0) {
    return makeError("admission: pressureSmoothing must be in (0, 1]");
  }
  if (creditRateFractionFloor <= 0.0 || creditRateFractionFloor > 1.0) {
    return makeError("admission: creditRateFractionFloor must be in (0, 1]");
  }
  if (creditBurstBytes <= 0) return makeError("admission: creditBurstBytes must be > 0");
  if (signalDelay < 0) return makeError("admission: signalDelay must be >= 0");
  if (deferDelay <= 0) return makeError("admission: deferDelay must be > 0");
  if (maxDefers < 0) return makeError("admission: maxDefers must be >= 0");
  for (int c = 0; c < kNumPriorities; ++c) {
    const ClassPolicy& cp = classes[static_cast<std::size_t>(c)];
    if (cp.utilityWeight <= 0.0) {
      return makeError(std::string("admission: class ") +
                       priorityName(static_cast<Priority>(c)) +
                       " utilityWeight must be > 0");
    }
    if (cp.sloNs <= 0) {
      return makeError(std::string("admission: class ") +
                       priorityName(static_cast<Priority>(c)) + " sloNs must be > 0");
    }
    if (cp.shedAtPressure <= 0.0) {
      return makeError(std::string("admission: class ") +
                       priorityName(static_cast<Priority>(c)) +
                       " shedAtPressure must be > 0");
    }
  }
  return StatusOr::okStatus();
}

AdmissionController::AdmissionController(sim::Simulator& sim, sim::Network& net,
                                         Policy policy)
    : sim_(&sim), net_(&net), policy_(policy) {
  lanes_.resize(static_cast<std::size_t>(sim.numShards()));
  brokerShardFill_.assign(static_cast<std::size_t>(sim.numShards()), 0.0);
  buckets_.resize(static_cast<std::size_t>(net.numHosts()));
  for (HostBucket& b : buckets_) {
    b.credits = static_cast<double>(policy_.creditBurstBytes);
  }
}

void AdmissionController::attachMetrics(obs::Registry& registry) {
  // Queue-fill buckets in fractions of the high watermark (the 4.0 bucket
  // catches a fabric far past collapse).
  const std::vector<double> fillBounds = {0.05, 0.1, 0.25, 0.5, 0.75,
                                          1.0,  1.5, 2.0,  4.0};
  for (std::size_t s = 0; s < lanes_.size(); ++s) {
    const obs::Labels shardLabel = {{"shard", std::to_string(s)}};
    ShardLane& lane = lanes_[s];
    lane.pressureGauge =
        &registry.gauge("sdt_adm_pressure", shardLabel,
                        "global overload pressure as seen by one shard");
    lane.fillHist = &registry.histogram(
        "sdt_adm_queue_fill", fillBounds, shardLabel,
        "sampled max egress occupancy / high watermark, per shard");
    for (int c = 0; c < kNumPriorities; ++c) {
      for (int d = 0; d < 3; ++d) {
        obs::Labels labels = shardLabel;
        labels.emplace_back("class", priorityName(static_cast<Priority>(c)));
        labels.emplace_back("decision", decisionName(static_cast<Decision>(d)));
        lane.decisionCtr[static_cast<std::size_t>(c)][static_cast<std::size_t>(d)] =
            &registry.counter("sdt_adm_decisions_total", labels,
                              "admission decisions by class and outcome");
      }
    }
  }
}

void AdmissionController::start(TimeNs until) {
  assert(policy_.validate().ok() && "invalid admission policy");
  const TimeNs first = std::min<TimeNs>(policy_.sampleInterval, until);
  for (int s = 0; s < sim_->numShards(); ++s) {
    // Top-level scheduleOn adopts the destination shard as sender, so the
    // arm itself is shard-local and needs no lookahead padding.
    sim_->scheduleOn(s, first, [this, s, until]() { sampleShard(s, until); });
  }
}

double AdmissionController::pressure() const {
  return lanes_[static_cast<std::size_t>(sim_->currentShard())].pressure;
}

double AdmissionController::rateFraction(double pressure) const {
  if (pressure <= policy_.pressureLowWater) return 1.0;
  if (pressure >= 1.0) return policy_.creditRateFractionFloor;
  const double span = 1.0 - policy_.pressureLowWater;
  const double t = (pressure - policy_.pressureLowWater) / span;
  return 1.0 - t * (1.0 - policy_.creditRateFractionFloor);
}

void AdmissionController::settle(HostBucket& bucket, double pressure, int host) {
  const TimeNs now = sim_->now();
  if (now > bucket.settledAt) {
    const double refill =
        net_->hostLinkSpeed(host).bytesIn(now - bucket.settledAt) *
        rateFraction(pressure);
    bucket.credits = std::min(bucket.credits + refill,
                              static_cast<double>(policy_.creditBurstBytes));
  }
  bucket.settledAt = now;
}

Decision AdmissionController::request(int srcHost, Priority cls, std::int64_t bytes) {
  assert(srcHost >= 0 && srcHost < net_->numHosts());
  assert(bytes > 0);
  const int shard = net_->hostShard(srcHost);
  assert(sim_->currentShard() == shard &&
         "admission request must run on the source host's shard");
  ShardLane& lane = lanes_[static_cast<std::size_t>(shard)];
  const auto ci = static_cast<std::size_t>(priorityIndex(cls));
  ClassCounters& cc = lane.counters[ci];
  ++cc.requested;

  Decision decision = Decision::kAdmit;
  if (policy_.enabled) {
    const ClassPolicy& cp = policy_.classes[ci];
    if (lane.pressure >= cp.shedAtPressure) {
      decision = Decision::kShed;
    } else {
      HostBucket& bucket = buckets_[static_cast<std::size_t>(srcHost)];
      settle(bucket, lane.pressure, srcHost);
      const double charge = static_cast<double>(bytes) / cp.utilityWeight;
      if (bucket.credits >= charge) {
        bucket.credits -= charge;
      } else {
        decision = Decision::kDefer;
      }
    }
  }

  switch (decision) {
    case Decision::kAdmit:
      ++cc.admitted;
      cc.admittedBytes += bytes;
      break;
    case Decision::kDefer:
      ++cc.deferred;
      break;
    case Decision::kShed:
      ++cc.shed;
      cc.shedBytes += bytes;
      break;
  }
  if (obs::Counter* ctr = lane.decisionCtr[ci][static_cast<std::size_t>(decision)]) {
    ctr->inc();
  }
  return decision;
}

void AdmissionController::sampleShard(int shard, TimeNs until) {
  ShardLane& lane = lanes_[static_cast<std::size_t>(shard)];
  ++lane.samples;
  std::int64_t maxBytes = 0;
  if (!watchPorts_.empty()) {
    // Tenant-scoped sampling: only the slice's own queues feed pressure, so
    // a co-tenant's congestion never throttles this controller's hosts.
    for (const auto& [sw, p] : watchPorts_) {
      if (net_->switchShard(sw) != shard) continue;
      maxBytes = std::max(maxBytes, net_->switchEgressBytes(sw, p));
    }
  } else {
    for (int sw = 0; sw < net_->numSwitches(); ++sw) {
      if (net_->switchShard(sw) != shard) continue;
      const int ports = net_->switchPortCount(sw);
      for (int p = 0; p < ports; ++p) {
        maxBytes = std::max(maxBytes, net_->switchEgressBytes(sw, p));
      }
    }
  }
  const double fill = static_cast<double>(maxBytes) /
                      static_cast<double>(policy_.queueHighWatermarkBytes);
  if (lane.fillHist != nullptr) lane.fillHist->observe(fill);
  sim_->scheduleOn(0, sim_->crossDelay(0, policy_.signalDelay),
                   [this, shard, fill]() { brokerUpdate(shard, fill); });
  if (sim_->now() + policy_.sampleInterval <= until) {
    sim_->scheduleOn(shard, policy_.sampleInterval,
                     [this, shard, until]() { sampleShard(shard, until); });
  }
}

void AdmissionController::brokerUpdate(int shard, double fill) {
  assert(sim_->currentShard() == 0);
  brokerShardFill_[static_cast<std::size_t>(shard)] = fill;
  const double raw =
      *std::max_element(brokerShardFill_.begin(), brokerShardFill_.end());
  smoothedPressure_ = policy_.pressureSmoothing * raw +
                      (1.0 - policy_.pressureSmoothing) * smoothedPressure_;
  const double global = smoothedPressure_;
  peakPressure_ = std::max(peakPressure_, global);
  for (int d = 0; d < sim_->numShards(); ++d) {
    sim_->scheduleOn(d, sim_->crossDelay(d, policy_.signalDelay), [this, d, global]() {
      ShardLane& lane = lanes_[static_cast<std::size_t>(d)];
      lane.pressure = global;
      if (lane.pressureGauge != nullptr) lane.pressureGauge->set(global);
    });
  }
}

AdmissionController::ClassCounters AdmissionController::classCounters(
    Priority cls) const {
  const auto ci = static_cast<std::size_t>(priorityIndex(cls));
  ClassCounters out;
  for (const ShardLane& lane : lanes_) {
    const ClassCounters& cc = lane.counters[ci];
    out.requested += cc.requested;
    out.admitted += cc.admitted;
    out.deferred += cc.deferred;
    out.shed += cc.shed;
    out.admittedBytes += cc.admittedBytes;
    out.shedBytes += cc.shedBytes;
  }
  return out;
}

std::uint64_t AdmissionController::samplesTaken() const {
  std::uint64_t n = 0;
  for (const ShardLane& lane : lanes_) n += lane.samples;
  return n;
}

}  // namespace sdt::admission
