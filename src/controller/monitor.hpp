// Network Monitor module (paper §V-3): periodic telemetry off the switches.
//
// The controller "periodically collects statistics data in each port of
// OpenFlow switches through provided API"; the collected load feeds adaptive
// routing (§VI-E). Here the monitor samples the simulator's egress queues
// (equivalent to reading port tx counters + queue depth via OpenFlow stats)
// on a fixed period and keeps an EWMA per (logical switch, logical port).
//
// The monitor is projection-aware: in SDT mode it translates logical ports
// to the physical ports it actually polls; in full-testbed mode the mapping
// is the identity.
#pragma once

#include <vector>

#include "projection/projection.hpp"
#include "routing/adaptive.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace sdt::controller {

class NetworkMonitor {
 public:
  /// Full-testbed mode: logical switch/port == sim switch/port.
  NetworkMonitor(sim::Simulator& sim, sim::Network& net, const topo::Topology& topo);
  /// SDT mode: poll through the projection's port map.
  NetworkMonitor(sim::Simulator& sim, sim::Network& net, const topo::Topology& topo,
                 const projection::Projection& projection);

  /// Start periodic sampling (call before Simulator::run()).
  void start(TimeNs period = usToNs(20.0), double ewmaGain = 0.3);

  /// Stop sampling (lets Simulator::run() drain its queue and finish).
  void stop() { running_ = false; }

  /// EWMA of queued bytes at logical (switch, port).
  [[nodiscard]] double load(topo::SwitchId sw, topo::PortId port) const;

  /// Congestion oracle for routing::AdaptiveDragonflyRouting.
  [[nodiscard]] routing::CongestionOracle oracle() const;

  [[nodiscard]] std::uint64_t samplesTaken() const { return samples_; }

 private:
  void sample();
  void poll(topo::SwitchId sw, topo::PortId port, double gain);

  sim::Simulator* sim_;
  sim::Network* net_;
  const topo::Topology* topo_;
  const projection::Projection* projection_;  ///< nullptr in full-testbed mode
  TimeNs period_ = 0;
  double gain_ = 0.3;
  std::vector<std::vector<double>> ewma_;  ///< [sw][port]
  std::uint64_t samples_ = 0;
  bool running_ = false;
};

}  // namespace sdt::controller
