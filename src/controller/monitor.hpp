// Network Monitor module (paper §V-3): periodic telemetry off the switches.
//
// The controller "periodically collects statistics data in each port of
// OpenFlow switches through provided API"; the collected load feeds adaptive
// routing (§VI-E). Here the monitor samples the simulator's egress queues
// (equivalent to reading port tx counters + queue depth via OpenFlow stats)
// on a fixed period and keeps an EWMA per (logical switch, logical port).
//
// The monitor is projection-aware: in SDT mode it translates logical ports
// to the physical ports it actually polls; in full-testbed mode the mapping
// is the identity.
//
// Failure detection (the second control-plane duty, enableFailureDetection):
// each sample also checks every polled fabric port for two failure
// signatures —
//   1. the port reports down (loss-of-signal after a cable cut), or
//   2. its tx counters froze while backlog sits in the egress queue (a
//      silently wedged transceiver).
// A port showing either signature becomes *suspect*; if the signature
// persists for `detectionTimeout` of simulated time it is *detected* and a
// PortFailure record (with both timestamps) is emitted. The timeout
// debounces transients: a long PFC pause also freezes tx over backlog, so
// detection must outlast the longest legitimate pause. Detected ports feed
// SdtController::repair() via failedPorts().
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "projection/projection.hpp"
#include "routing/adaptive.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace sdt::controller {

/// One detected port failure, in the plane the monitor polls (physical for
/// SDT mode, logical for full-testbed mode).
struct PortFailure {
  int sw = -1;
  int port = -1;
  bool reportedDown = false;  ///< signature 1 (vs. counter stall, signature 2)
  TimeNs suspectedAt = 0;     ///< first sample showing the signature
  TimeNs detectedAt = 0;      ///< sample that outlasted the detection timeout
  /// Deployment epoch in force at *detection* time (0 when no provider is
  /// set). Consumers that react asynchronously — a repair scheduled behind a
  /// reconfiguration — must compare this against the current epoch and drop
  /// stale reports: the failure was diagnosed against a configuration that
  /// no longer exists, and its port may not even carry a link anymore.
  std::uint32_t epoch = 0;
  /// SDT mode: the logical switch port mapped onto the failed physical port.
  std::optional<topo::SwitchPort> logicalPort;
};

class NetworkMonitor {
 public:
  /// Full-testbed mode: logical switch/port == sim switch/port.
  NetworkMonitor(sim::Simulator& sim, sim::Network& net, const topo::Topology& topo);
  /// SDT mode: poll through the projection's port map.
  NetworkMonitor(sim::Simulator& sim, sim::Network& net, const topo::Topology& topo,
                 const projection::Projection& projection);

  /// Start periodic sampling (call before Simulator::run()).
  void start(TimeNs period = usToNs(20.0), double ewmaGain = 0.3);

  /// Stop sampling. Already-queued sample events no-op (epoch-guarded), so a
  /// stopped monitor takes zero further samples and a later start() cannot
  /// double-chain.
  void stop() {
    running_ = false;
    ++epoch_;
  }

  /// Arm failure detection (before or after start()). `detectionTimeout` is
  /// how long a failure signature must persist before the port is declared
  /// failed; worst-case detection latency is timeout + 2 sample periods.
  void enableFailureDetection(TimeNs detectionTimeout);

  /// Failures detected so far, in detection order.
  [[nodiscard]] const std::vector<PortFailure>& portFailures() const { return failures_; }
  /// The failed ports as the projection plane's PhysPort set (repair input).
  [[nodiscard]] std::vector<projection::PhysPort> failedPorts() const;
  /// Notification hook, fired once per port at detection time.
  void onPortFailure(std::function<void(const PortFailure&)> callback) {
    failureCallback_ = std::move(callback);
  }
  /// Source of the deployment epoch stamped into each PortFailure. Reading
  /// it at detection time (not at callback-consumption time) closes the
  /// guard-window race: a failure detected under epoch N but acted on after
  /// a flip to N+1 carries N, so the consumer can tell the report is stale.
  void setEpochProvider(std::function<std::uint32_t()> provider) {
    epochProvider_ = std::move(provider);
  }
  /// Forget detected/suspect state (after repair) so ports are watched anew.
  void clearFailures();

  /// Suppress failure detection for every watched port of polled-plane
  /// switch `sw` while a reconfiguration transaction is open on it: bulk
  /// flow-mods and ingress-epoch flips make tx counters stall over backlog
  /// in exactly the pattern the wedged-transceiver detector looks for.
  /// Guarded ports are skipped *and* their suspicion state is reset, so a
  /// signature that started before the guard cannot fire right after it
  /// lifts (unguard also reseeds the tx baseline from the live counters).
  /// Guards nest (one per open transaction touching the switch).
  void guardSwitch(int sw);
  void unguardSwitch(int sw);
  [[nodiscard]] bool guarded(int sw) const {
    const auto it = guards_.find(sw);
    return it != guards_.end() && it->second > 0;
  }

  /// EWMA of queued bytes at logical (switch, port). An out-of-range
  /// (sw, port) returns 0.0 — a defensible answer for a congestion oracle —
  /// but is *diagnosed*: counted in oobQueries() (and the attached
  /// registry's sdt_monitor_oob_queries_total) and warned on first
  /// occurrence, instead of being silently indistinguishable from an idle
  /// port.
  [[nodiscard]] double load(topo::SwitchId sw, topo::PortId port) const;

  /// Congestion oracle for routing::AdaptiveDragonflyRouting.
  [[nodiscard]] routing::CongestionOracle oracle() const;

  [[nodiscard]] std::uint64_t samplesTaken() const { return samples_; }

  /// Out-of-range load()/oracle() queries observed (each one is a caller
  /// bug: a stale switch id or a port beyond the radix).
  [[nodiscard]] std::uint64_t oobQueries() const { return oobQueries_; }

  /// Feed an obs registry: per-port queue-depth EWMA ring series
  /// (sdt_monitor_queue_depth_bytes{sw,port}, one sample per poll, capacity
  /// bounded at `seriesCapacity`), plus sdt_monitor_samples_total and
  /// sdt_monitor_oob_queries_total synced at collect() time. The registry
  /// must outlive the monitor's sampling (both normally live in the same
  /// experiment scope).
  void attachMetrics(obs::Registry& registry, std::size_t seriesCapacity = 256);

 private:
  /// Per-watched-port failure bookkeeping (keyed by polled-plane (sw,port)).
  struct Watch {
    std::uint64_t lastTxPackets = 0;
    TimeNs suspectedAt = -1;   ///< -1: healthy
    bool suspectedDown = false;
    bool reported = false;
  };

  void sample(std::uint64_t epoch);
  void poll(topo::SwitchId sw, topo::PortId port, double gain);
  void checkFailures();

  sim::Simulator* sim_;
  sim::Network* net_;
  const topo::Topology* topo_;
  const projection::Projection* projection_;  ///< nullptr in full-testbed mode
  TimeNs period_ = 0;
  double gain_ = 0.3;
  std::vector<std::vector<double>> ewma_;  ///< [sw][port]
  /// Mirrors ewma_ when metrics are attached (nullptr per cell otherwise):
  /// resolved once at attach time so poll() never pays a registry lookup.
  std::vector<std::vector<obs::RingSeries*>> series_;
  std::uint64_t samples_ = 0;
  mutable std::uint64_t oobQueries_ = 0;
  mutable bool oobWarned_ = false;
  bool running_ = false;
  std::uint64_t epoch_ = 0;  ///< bumped by start()/stop(); stale events no-op

  bool detectFailures_ = false;
  TimeNs detectionTimeout_ = 0;
  std::map<int, int> guards_;  ///< polled-plane sw -> open-transaction count
  std::map<std::pair<int, int>, Watch> watches_;  ///< polled-plane (sw, port)
  std::vector<PortFailure> failures_;
  std::function<void(const PortFailure&)> failureCallback_;
  std::function<std::uint32_t()> epochProvider_;
};

}  // namespace sdt::controller
