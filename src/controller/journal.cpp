#include "controller/journal.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/strings.hpp"

namespace sdt::controller {
namespace {

constexpr std::uint32_t kMagic = 0x4A544453;  // "SDTJ" little-endian
constexpr std::size_t kHeaderBytes = 12;      // magic + length + checksum

std::uint32_t fnv1a32(std::string_view bytes) {
  std::uint32_t h = 2166136261u;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h;
}

void putU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t getU32(std::string_view bytes, std::size_t pos) {
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos + i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

// 64-bit fields round-trip as hex strings: json::Value stores numbers as
// double, which is exact only below 2^53 — not enough for an arbitrary salt.
std::string hexU64(std::uint64_t v) { return strFormat("%" PRIx64, v); }

/// One record, framed and checksummed, ready for storage.
std::string frameRecord(const JournalRecord& record) {
  const std::string payload = record.toJson().dump();
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  putU32(frame, kMagic);
  putU32(frame, static_cast<std::uint32_t>(payload.size()));
  putU32(frame, fnv1a32(payload));
  frame += payload;
  return frame;
}

Result<std::uint64_t> parseHexU64(const std::string& s) {
  if (s.empty()) return makeError("empty u64 hex field");
  std::uint64_t v = 0;
  for (const char c : s) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F') digit = static_cast<std::uint64_t>(c - 'A') + 10;
    else return makeError(strFormat("bad u64 hex field '%s'", s.c_str()));
    v = (v << 4) | digit;
  }
  return v;
}

Result<JournalRecordKind> kindFromName(const std::string& name) {
  for (const JournalRecordKind k :
       {JournalRecordKind::kDeploy, JournalRecordKind::kTxPrepare,
        JournalRecordKind::kTxFlip, JournalRecordKind::kTxGc,
        JournalRecordKind::kTxCommit, JournalRecordKind::kTxAbort,
        JournalRecordKind::kRecovery, JournalRecordKind::kCheckpoint}) {
    if (name == journalRecordKindName(k)) return k;
  }
  return makeError(strFormat("unknown journal record kind '%s'", name.c_str()));
}

}  // namespace

const char* journalRecordKindName(JournalRecordKind kind) {
  switch (kind) {
    case JournalRecordKind::kDeploy: return "deploy";
    case JournalRecordKind::kTxPrepare: return "tx-prepare";
    case JournalRecordKind::kTxFlip: return "tx-flip";
    case JournalRecordKind::kTxGc: return "tx-gc";
    case JournalRecordKind::kTxCommit: return "tx-commit";
    case JournalRecordKind::kTxAbort: return "tx-abort";
    case JournalRecordKind::kRecovery: return "recovery";
    case JournalRecordKind::kCheckpoint: return "checkpoint";
  }
  return "?";
}

json::Value JournalRecord::toJson() const {
  json::Object obj;
  obj["kind"] = journalRecordKindName(kind);
  obj["seq"] = static_cast<std::int64_t>(seq);
  obj["at"] = static_cast<std::int64_t>(at);
  obj["epoch"] = static_cast<std::int64_t>(epoch);
  obj["fromEpoch"] = static_cast<std::int64_t>(fromEpoch);
  obj["toEpoch"] = static_cast<std::int64_t>(toEpoch);
  obj["topology"] = topology;
  obj["routing"] = routing;
  obj["ecmpSalt"] = hexU64(ecmpSalt);
  return obj;
}

Result<JournalRecord> JournalRecord::fromJson(const json::Value& doc) {
  if (!doc.isObject()) return makeError("journal record is not a JSON object");
  JournalRecord rec;
  auto kind = kindFromName(doc.getString("kind", ""));
  if (!kind) return kind.error();
  rec.kind = kind.value();
  rec.seq = static_cast<std::uint64_t>(doc.getInt("seq", 0));
  rec.at = doc.getInt("at", 0);
  rec.epoch = static_cast<std::uint32_t>(doc.getInt("epoch", 0));
  rec.fromEpoch = static_cast<std::uint32_t>(doc.getInt("fromEpoch", 0));
  rec.toEpoch = static_cast<std::uint32_t>(doc.getInt("toEpoch", 0));
  rec.topology = doc.getString("topology", "");
  rec.routing = doc.getString("routing", "");
  auto salt = parseHexU64(doc.getString("ecmpSalt", "0"));
  if (!salt) return salt.error();
  rec.ecmpSalt = salt.value();
  return rec;
}

json::Value JournalState::toJson() const {
  json::Object obj;
  obj["valid"] = valid;
  obj["topology"] = topology;
  obj["routing"] = routing;
  obj["epoch"] = static_cast<std::int64_t>(epoch);
  obj["ecmpSalt"] = hexU64(ecmpSalt);
  obj["txOpen"] = txOpen;
  if (txOpen) {
    obj["txFlipped"] = txFlipped;
    obj["txGcStarted"] = txGcStarted;
    obj["txTopology"] = txTopology;
    obj["txRouting"] = txRouting;
    obj["txFromEpoch"] = static_cast<std::int64_t>(txFromEpoch);
    obj["txToEpoch"] = static_cast<std::int64_t>(txToEpoch);
    obj["txEcmpSalt"] = hexU64(txEcmpSalt);
  }
  return obj;
}

JournalState foldJournal(const std::vector<JournalRecord>& records) {
  JournalState st;
  const auto closeTx = [&st]() {
    st.txOpen = st.txFlipped = st.txGcStarted = false;
    st.txTopology.clear();
    st.txRouting.clear();
    st.txFromEpoch = st.txToEpoch = 0;
    st.txEcmpSalt = 0;
  };
  for (const JournalRecord& rec : records) {
    switch (rec.kind) {
      case JournalRecordKind::kDeploy:
      case JournalRecordKind::kRecovery:
      case JournalRecordKind::kCheckpoint:
        // A fresh deploy supersedes everything, including a transaction the
        // old controller never resolved; a recovery record is the resolution.
        st.valid = true;
        st.topology = rec.topology;
        st.routing = rec.routing;
        st.epoch = rec.epoch;
        st.ecmpSalt = rec.ecmpSalt;
        closeTx();
        break;
      case JournalRecordKind::kTxPrepare:
        st.txOpen = true;
        st.txFlipped = st.txGcStarted = false;
        st.txTopology = rec.topology;
        st.txRouting = rec.routing;
        st.txFromEpoch = rec.fromEpoch;
        st.txToEpoch = rec.toEpoch;
        st.txEcmpSalt = rec.ecmpSalt;
        break;
      case JournalRecordKind::kTxFlip:
        if (st.txOpen) st.txFlipped = true;
        break;
      case JournalRecordKind::kTxGc:
        if (st.txOpen) st.txGcStarted = true;
        break;
      case JournalRecordKind::kTxCommit:
        if (st.txOpen) {
          st.valid = true;
          st.topology = st.txTopology;
          st.routing = st.txRouting;
          st.epoch = st.txToEpoch;
          st.ecmpSalt = st.txEcmpSalt;
        }
        closeTx();
        break;
      case JournalRecordKind::kTxAbort:
        closeTx();
        break;
    }
  }
  return st;
}

FileJournalStorage::~FileJournalStorage() {
  if (file_ != nullptr) std::fclose(file_);
}

Status<Error> FileJournalStorage::append(std::string_view bytes) {
  if (file_ == nullptr) {
    file_ = std::fopen(path_.c_str(), "ab");
    if (file_ == nullptr) {
      return makeError(strFormat("cannot open journal '%s' for append", path_.c_str()));
    }
  }
  const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), file_);
  if (wrote != bytes.size() || std::fflush(file_) != 0) {
    return makeError(strFormat("short write to journal '%s'", path_.c_str()));
  }
  return {};
}

Status<Error> FileJournalStorage::replaceAll(std::string_view bytes) {
  // Close the lazy append handle: after the rename it would point at the
  // replaced (unlinked) inode, and every "durable" append would vanish.
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return makeError(strFormat("cannot open '%s' for compaction", tmp.c_str()));
  }
  const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (wrote != bytes.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return makeError(strFormat("short write compacting journal '%s'", path_.c_str()));
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return makeError(strFormat("cannot swap compacted journal into '%s'", path_.c_str()));
  }
  return {};
}

Result<std::string> FileJournalStorage::read() const {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return std::string{};  // no file yet == empty journal
  std::string out;
  char buf[4096];
  for (;;) {
    const std::size_t got = std::fread(buf, 1, sizeof(buf), f);
    out.append(buf, got);
    if (got < sizeof(buf)) break;
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return makeError(strFormat("read error on journal '%s'", path_.c_str()));
  return out;
}

Journal::Journal(JournalStorage& storage) : storage_(&storage) { rescan(); }

void Journal::rescan() {
  nextSeq_ = 1;
  if (const auto replayed = replay()) {
    for (const JournalRecord& rec : replayed.value().records) {
      nextSeq_ = std::max(nextSeq_, rec.seq + 1);
    }
  }
}

Status<Error> Journal::append(JournalRecord record) {
  record.seq = nextSeq_;
  if (auto st = storage_->append(frameRecord(record)); !st) return st;
  ++nextSeq_;  // only after the durable append succeeded
  if (observer_) observer_(record);
  return {};
}

Status<Error> Journal::appendReplica(const JournalRecord& record) {
  if (auto st = storage_->append(frameRecord(record)); !st) return st;
  if (record.seq >= nextSeq_) nextSeq_ = record.seq + 1;
  return {};
}

Result<std::size_t> Journal::compact() {
  auto replayed = replay();
  if (!replayed) return replayed.error();
  const std::vector<JournalRecord>& records = replayed.value().records;
  const JournalState& st = replayed.value().state;

  // The checkpoint records carry the last folded record's simulated time:
  // compaction invents no history, it only summarizes, so it must not
  // invent timestamps either.
  const TimeNs at = records.empty() ? 0 : records.back().at;

  std::vector<JournalRecord> checkpoint;
  if (st.valid) {
    JournalRecord live;
    live.kind = JournalRecordKind::kCheckpoint;
    live.at = at;
    live.epoch = st.epoch;
    live.topology = st.topology;
    live.routing = st.routing;
    live.ecmpSalt = st.ecmpSalt;
    checkpoint.push_back(std::move(live));
  }
  if (st.txOpen) {
    // An open transaction survives compaction verbatim as its marker
    // sequence — recovery's roll-forward/roll-back decision depends on
    // exactly which markers made it to disk.
    JournalRecord prep;
    prep.kind = JournalRecordKind::kTxPrepare;
    prep.at = at;
    prep.epoch = st.txFromEpoch;
    prep.fromEpoch = st.txFromEpoch;
    prep.toEpoch = st.txToEpoch;
    prep.topology = st.txTopology;
    prep.routing = st.txRouting;
    prep.ecmpSalt = st.txEcmpSalt;
    checkpoint.push_back(prep);
    for (const JournalRecordKind kind :
         {JournalRecordKind::kTxFlip, JournalRecordKind::kTxGc}) {
      if (kind == JournalRecordKind::kTxFlip && !st.txFlipped) continue;
      if (kind == JournalRecordKind::kTxGc && !st.txGcStarted) continue;
      JournalRecord marker = prep;
      marker.kind = kind;
      checkpoint.push_back(std::move(marker));
    }
  }

  std::string blob;
  std::uint64_t seq = nextSeq_;
  for (JournalRecord& rec : checkpoint) {
    rec.seq = seq++;
    blob += frameRecord(rec);
  }
  if (auto swapped = storage_->replaceAll(blob); !swapped) return swapped.error();
  nextSeq_ = seq;  // only after the swap: a failed compaction changes nothing
  return records.size() > checkpoint.size() ? records.size() - checkpoint.size()
                                            : std::size_t{0};
}

Result<JournalReplay> Journal::replay() const {
  auto bytes = storage_->read();
  if (!bytes) return bytes.error();
  const std::string& data = bytes.value();

  JournalReplay out;
  std::size_t pos = 0;
  while (pos < data.size()) {
    // Any framing violation ends the replay: with no resync marker inside
    // payloads, bytes past the first bad frame cannot be trusted.
    if (data.size() - pos < kHeaderBytes) break;
    if (getU32(data, pos) != kMagic) break;
    const std::size_t len = getU32(data, pos + 4);
    const std::uint32_t checksum = getU32(data, pos + 8);
    if (data.size() - pos - kHeaderBytes < len) break;  // torn tail
    const std::string_view payload(data.data() + pos + kHeaderBytes, len);
    if (fnv1a32(payload) != checksum) break;
    auto doc = json::parse(payload);
    if (!doc) break;
    auto rec = JournalRecord::fromJson(doc.value());
    if (!rec) break;
    out.records.push_back(std::move(rec).value());
    pos += kHeaderBytes + len;
  }
  out.droppedBytes = data.size() - pos;
  out.state = foldJournal(out.records);
  return out;
}

}  // namespace sdt::controller
