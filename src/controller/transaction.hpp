// Transactional (two-phase, Reitblatt-style) live reconfiguration over an
// unreliable control channel.
//
// The offline reconfigure() path swaps tables while no traffic flows; this
// module changes the topology *under live traffic* while preserving
// per-packet consistency: every packet is forwarded end-to-end by exactly
// one configuration epoch's rules. The protocol, driven entirely by
// simulator events so it interleaves with data-plane traffic:
//
//   prepare   SdtController::planUpdate() compiled epoch-N+1 tables and ran
//             every cleanly-abortable check (capacity for both versions,
//             host-port stability, deadlock freedom). Nothing installed yet.
//   install   Each switch receives its epoch-N+1 bundle over the control
//             channel. The new rules sit alongside the live epoch-N set but
//             are unreachable: ingress still stamps N, and the flow-table
//             epoch gate hides N+1 rules from N-stamped packets.
//   barrier   An OpenFlow barrier request/ack round per switch confirms the
//             bundle is processed. Install and barrier rounds retry with
//             bounded backoff; exhausting the budget on any switch aborts
//             the transaction and rolls back (bulk-delete of epoch N+1 on
//             every switch) — safe at any moment before the first flip,
//             because no packet has ever been stamped N+1.
//   flip      The commit point. Each switch atomically starts stamping
//             ingress packets with N+1. Flips retry (effectively) unbounded:
//             past this point rollback would strand in-flight N+1 packets,
//             so the protocol only moves forward. Mixed flip states are
//             safe — both rule sets are installed everywhere.
//   drain     A grace period for in-flight epoch-N packets to leave the
//             fabric (the consistency checker flags a too-short drain as
//             kMidPathMiss).
//   gc        Bulk-delete epoch N on every switch (one flow-mod each).
//             Forward-only like flip: there is no rollback from a committed
//             state, so gc retries to the commitAttempts backstop. Only if
//             that backstop trips does the transaction finish committed with
//             gcIncomplete set for the garbage-bearing switch.
//
// Message semantics: requests and acks both traverse the ControlChannel, so
// either can be dropped, duplicated, reordered, or delayed. Switch-side
// application is idempotent (per-(switch, phase) applied flags, modeling
// OpenFlow xid dedup), so duplicates and retries of already-applied requests
// are harmless.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "controller/controller.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/control_channel.hpp"
#include "sim/simulator.hpp"

namespace sdt::controller {

class NetworkMonitor;
class Journal;
enum class JournalRecordKind : std::uint8_t;

enum class ReconfigPhase : std::uint8_t {
  kPrepare,
  kInstall,
  kBarrier,
  kFlip,
  kDrain,
  kGc,
  kDone,
};

const char* reconfigPhaseName(ReconfigPhase phase);

/// Controller crash injection (crash recovery tests, controller/recovery.hpp).
/// The transaction dies the instant it reaches the chosen point: no further
/// sends, no acks processed, no monitor unguard, no done callback — exactly
/// what a SIGKILL'd controller process leaves behind. In-flight control
/// messages keep traveling (the switches are alive; only the controller's
/// side of every TCP session is gone) but land on the fence and are ignored.
enum class CrashPoint : std::uint8_t {
  kNone,        ///< never crash
  kPrepare,     ///< after journaling the prepare record, before any install
  kMidInstall,  ///< after the first install ack (some switches have N+1 rules)
  kPreFlip,     ///< barrier done, before the flip marker is journaled or sent
  kPostFlip,    ///< after the first flip ack (commit point crossed, mixed stamps)
  kMidGc,       ///< after the first gc ack (some switches still carry epoch N)
};

const char* crashPointName(CrashPoint point);

struct ReconfigOptions {
  /// Retry budget and backoff shape for the bounded phases (install,
  /// barrier, gc). attemptTimeout doubles as the controller's ack wait.
  retry::RetryPolicy retry;
  /// Grace period between the last flip ack and garbage collection, for
  /// in-flight old-epoch packets to drain out of the fabric.
  TimeNs drainDelay = msToNs(1.0);
  /// Per-switch attempt cap for flip and rollback rounds. These phases must
  /// not give up (flip: past the commit point; rollback: purity depends on
  /// it), so the cap is only a termination backstop for simulations whose
  /// channel never delivers; reaching it is reported as unverified state.
  int commitAttempts = 1000;
  /// When set, the monitor suppresses failure detection for every switch
  /// for the duration of the transaction (reconfiguration makes counters
  /// stall and queues wobble in ways that mimic the failure signatures).
  NetworkMonitor* monitor = nullptr;
  /// Write-ahead intent journal. When set, the transaction appends phase
  /// markers (prepare / flip / gc / commit / abort) *before* the action they
  /// announce, so a crashed controller's successor can decide roll-forward
  /// vs. roll-back from durable state alone. Append failures are non-fatal:
  /// a full journal disk must not wedge the live fabric.
  Journal* journal = nullptr;
  /// Replicated-controller HA (controller/ha.hpp): the issuing leader's
  /// term. Every mutating bundle (install/barrier/flip/gc/rollback) is
  /// fenced by openflow::Switch::admitTerm — a switch that has admitted a
  /// newer-term leader drops the bundle without applying or acking, so a
  /// deposed leader's round stalls instead of corrupting state. 0 = legacy
  /// single-controller mode (never fenced, never raises the fence).
  std::uint64_t term = 0;
  /// The issuing replica's id, the fence's tie-breaker: two leaders that
  /// claim the same term (both missed the other's claim heartbeat) resolve
  /// toward the lower id on every switch. -1 = no identity (term-only).
  int leaderId = -1;
  /// Crash injection: die at this point (see CrashPoint). kNone in production.
  CrashPoint crashAt = CrashPoint::kNone;
  /// Called at the instant of an injected crash (after the fence is up),
  /// e.g. for a test to record the crash time or stop traffic.
  std::function<void()> onCrash;
  /// Observability (both optional, both must outlive the transaction): the
  /// tracer gets a "reconfigure" root span with one child span per phase
  /// actually entered (install/barrier/flip/drain/gc — or rollback), all in
  /// simulated time; the registry gets per-phase
  /// sdt_controller_retry_attempts_total counters.
  obs::Tracer* tracer = nullptr;
  obs::Registry* metrics = nullptr;
};

/// Per-switch protocol outcome (index == physical switch id).
struct SwitchTxState {
  bool installAcked = false;
  bool barrierAcked = false;
  bool flipAcked = false;
  bool gcAcked = false;        ///< epoch-N delete (commit) acked
  bool rollbackAcked = false;  ///< epoch-N+1 delete (abort) acked
  int retries = 0;             ///< send attempts beyond the first, all phases
};

struct ReconfigReport {
  bool committed = false;
  bool rolledBack = false;
  /// Farthest phase the transaction entered (kDone only when committed and
  /// garbage collection finished everywhere).
  ReconfigPhase phaseReached = ReconfigPhase::kPrepare;
  std::uint32_t fromEpoch = 0;
  std::uint32_t toEpoch = 0;

  // Flow-mod accounting (switch-side effects, deduplicated).
  int flowModsInstalled = 0;         ///< epoch-N+1 adds applied
  int flowModsRolledBack = 0;        ///< entries removed by abort bulk-deletes
  int flowModsGarbageCollected = 0;  ///< epoch-N entries removed after commit
  int barrierRoundTrips = 0;         ///< barrier request->ack rounds completed
  int retriesTotal = 0;              ///< resends beyond first attempts, all rounds

  TimeNs startedAt = 0;
  TimeNs updateWindowEnd = 0;  ///< all flips acked (committed transactions)
  TimeNs finishedAt = 0;
  /// Install start -> last flip ack: how long both rule versions coexisted
  /// before the new configuration owned all ingress stamping.
  [[nodiscard]] TimeNs updateWindow() const { return updateWindowEnd - startedAt; }
  /// Abort decision -> rollback done (aborted transactions only).
  TimeNs rollbackLatency = 0;

  /// Post-transaction audit: every switch holds rules of exactly one epoch
  /// (the new one when committed, the old one when rolled back) and stamps
  /// that epoch at ingress. False means an unreachable switch kept garbage.
  bool pureStateVerified = false;
  bool gcIncomplete = false;  ///< committed, but some epoch-N rules survive

  std::vector<SwitchTxState> switches;
  std::string failure;  ///< abort cause (empty when committed)

  [[nodiscard]] json::Value toJson() const;
};

/// One in-flight transactional reconfiguration. The deployment, channel,
/// and simulator must outlive the transaction; the transaction must outlive
/// the simulation run it is started into (it owns per-switch protocol state
/// that in-flight control messages reference).
class ReconfigTransaction {
 public:
  using DoneFn = std::function<void(const ReconfigReport&)>;

  /// `deployment` is mutated on commit (projection, epoch, entry totals) and
  /// left untouched on rollback. `plan` must come from planUpdate() against
  /// this same deployment.
  ReconfigTransaction(sim::Simulator& sim, sim::ControlChannel& channel,
                      Deployment& deployment, UpdatePlan plan,
                      ReconfigOptions options = {}, DoneFn done = nullptr);

  /// Kick off the install phase (schedules simulator events; the protocol
  /// then runs concurrently with whatever traffic the simulation carries).
  void start();

  [[nodiscard]] bool finished() const { return finished_; }
  /// True when an injected CrashPoint fired: the transaction is dead but
  /// *unresolved* — finished() is also true (nothing will run again), yet
  /// neither committed nor rolledBack is set and done was never called.
  /// The fabric is in whatever mixed state the crash left; recovery's job.
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] ReconfigPhase phase() const { return phase_; }
  [[nodiscard]] const ReconfigReport& report() const { return report_; }

 private:
  enum class Round : std::uint8_t { kInstall, kBarrier, kFlip, kGc, kRollback };

  [[nodiscard]] int numSwitches() const {
    return static_cast<int>(deployment_->switches.size());
  }
  /// Switches this transaction touches (resolved from plan_.scope). Every
  /// phase barrier counts acks against this set only.
  [[nodiscard]] int scopeSize() const { return static_cast<int>(scope_.size()); }
  void startRound(int sw, Round round, int attempt);
  /// Returns false when the switch's term fence rejected the bundle (the
  /// delivered request is dropped on the floor: no apply, no ack).
  bool applyAtSwitch(int sw, Round round);
  void onAck(int sw, Round round);
  void onRoundTimeout(int sw, Round round, int attempt, std::uint64_t gen);
  [[nodiscard]] TimeNs backoffDelay(int sw, int attempt);
  void advancePhase();
  void abort(ReconfigPhase at, const std::string& why);
  void beginGc();
  void finish();
  /// Append a phase marker to options_.journal (no-op without one).
  void journalMark(JournalRecordKind kind);
  /// Fire the injected crash if `point` is the configured one. Returns true
  /// when the controller just died (caller must stop immediately).
  bool maybeCrash(CrashPoint point);
  [[nodiscard]] bool* ackedFlag(int sw, Round round);
  [[nodiscard]] bool* appliedFlag(int sw, Round round);
  [[nodiscard]] static const char* roundName(Round round);
  /// Close the current phase span and open `name` under the root (no-op
  /// without a tracer).
  void tracePhase(const char* name);
  /// Close both spans and stamp the root with the outcome.
  void traceFinish(const char* outcome);

  sim::Simulator* sim_;
  sim::ControlChannel* channel_;
  Deployment* deployment_;
  UpdatePlan plan_;
  ReconfigOptions options_;
  DoneFn done_;

  ReconfigPhase phase_ = ReconfigPhase::kPrepare;
  Round currentRound_ = Round::kInstall;
  bool aborting_ = false;
  bool finished_ = false;
  bool crashed_ = false;  ///< injected crash fence (see crashed())
  bool stuck_ = false;  ///< some forward-only round exhausted its backstop
  std::uint64_t gen_ = 0;  ///< bumped on phase change; stale timeouts no-op
  TimeNs abortAt_ = 0;
  ReconfigReport report_;
  std::vector<SwitchTxState> acked_;    ///< controller-side ack bookkeeping
  std::vector<SwitchTxState> applied_;  ///< switch-side idempotency flags
  /// Resolved scope: plan_.scope when non-empty (a tenant slice's share of
  /// the plant), otherwise every deployment switch. Out-of-scope switches
  /// are never sent a message, guarded, or audited.
  std::vector<int> scope_;
  /// Per-physical-switch flip ports from plan_.flipPorts. Only consulted
  /// for scoped plans (legacy unscoped plans flip the whole switch); an
  /// empty inner vector there means a mid-path switch with nothing to flip.
  std::vector<std::vector<int>> flipPortsBySwitch_;
  std::vector<char> roundComplete_;     ///< per-switch, reset each phase
  std::vector<Rng> backoffRng_;         ///< deterministic jitter per switch
  int roundAcks_ = 0;  ///< switches done with the current global phase
  obs::SpanId spanTx_ = obs::kNoSpan;     ///< root span (tracer only)
  obs::SpanId spanPhase_ = obs::kNoSpan;  ///< currently open phase child
};

}  // namespace sdt::controller
