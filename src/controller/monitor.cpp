#include "controller/monitor.hpp"

#include <algorithm>
#include <string>

#include "common/log.hpp"

namespace sdt::controller {

NetworkMonitor::NetworkMonitor(sim::Simulator& sim, sim::Network& net,
                               const topo::Topology& topo)
    : sim_(&sim), net_(&net), topo_(&topo), projection_(nullptr) {
  ewma_.resize(static_cast<std::size_t>(topo.numSwitches()));
  for (topo::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    ewma_[sw].assign(static_cast<std::size_t>(topo.radix(sw)), 0.0);
  }
}

NetworkMonitor::NetworkMonitor(sim::Simulator& sim, sim::Network& net,
                               const topo::Topology& topo,
                               const projection::Projection& projection)
    : NetworkMonitor(sim, net, topo) {
  projection_ = &projection;
}

void NetworkMonitor::start(TimeNs period, double ewmaGain) {
  period_ = period;
  gain_ = ewmaGain;
  running_ = true;
  ++epoch_;
  sim_->schedule(period_, [this, e = epoch_]() { sample(e); });
}

void NetworkMonitor::enableFailureDetection(TimeNs detectionTimeout) {
  detectFailures_ = true;
  detectionTimeout_ = detectionTimeout;
  // Build the watch set over the polled plane: the physical fabric ports
  // carrying projected links in SDT mode, every logical fabric port in
  // full-testbed mode. Watch construction seeds lastTxPackets from the live
  // counters so pre-existing traffic is not mistaken for progress.
  for (topo::SwitchId sw = 0; sw < topo_->numSwitches(); ++sw) {
    for (topo::PortId p = 0; p < static_cast<int>(ewma_[sw].size()); ++p) {
      int physSw = sw;
      int physPort = p;
      if (projection_ != nullptr) {
        const projection::PhysPort pp = projection_->physOf(topo::SwitchPort{sw, p});
        if (!pp.valid()) continue;  // host-facing logical port
        physSw = pp.sw;
        physPort = pp.port;
      }
      Watch& w = watches_[{physSw, physPort}];  // dedupe: one watch per phys port
      w.lastTxPackets = net_->switchPortCounters(physSw, physPort).txPackets;
    }
  }
}

void NetworkMonitor::poll(topo::SwitchId sw, topo::PortId port, double gain) {
  std::int64_t bytes;
  if (projection_ != nullptr) {
    const projection::PhysPort pp = projection_->physOf(topo::SwitchPort{sw, port});
    if (!pp.valid()) return;  // host-facing logical port: not a fabric queue
    bytes = net_->switchEgressBytes(pp.sw, pp.port);
  } else {
    bytes = net_->switchEgressBytes(sw, port);
  }
  ewma_[sw][port] = (1.0 - gain) * ewma_[sw][port] + gain * static_cast<double>(bytes);
  if (!series_.empty() && series_[sw][port] != nullptr) {
    series_[sw][port]->record(sim_->now(), ewma_[sw][port]);
  }
}

void NetworkMonitor::attachMetrics(obs::Registry& registry,
                                   std::size_t seriesCapacity) {
  series_.resize(ewma_.size());
  for (std::size_t sw = 0; sw < ewma_.size(); ++sw) {
    series_[sw].assign(ewma_[sw].size(), nullptr);
    for (std::size_t p = 0; p < ewma_[sw].size(); ++p) {
      series_[sw][p] = &registry.series(
          "sdt_monitor_queue_depth_bytes", seriesCapacity,
          {{"sw", std::to_string(sw)}, {"port", std::to_string(p)}},
          "Per-port egress queue depth EWMA sampled by the Network Monitor");
    }
  }
  registry.addCollector([this, &registry]() {
    registry
        .counter("sdt_monitor_samples_total", {},
                 "Telemetry sampling rounds completed")
        .syncTo(samples_);
    registry
        .counter("sdt_monitor_oob_queries_total", {},
                 "Out-of-range load()/oracle() queries (caller bugs)")
        .syncTo(oobQueries_);
  });
}

void NetworkMonitor::checkFailures() {
  const TimeNs now = sim_->now();
  for (auto& [key, w] : watches_) {
    if (w.reported) continue;
    const auto [sw, port] = key;
    if (guarded(sw)) {
      // Open reconfiguration transaction: whatever this port looks like
      // right now is the transaction's doing, not a fault. Reset suspicion
      // so the guard window never counts toward the detection timeout.
      w.suspectedAt = -1;
      w.lastTxPackets = net_->switchPortCounters(sw, port).txPackets;
      continue;
    }
    const std::uint64_t tx = net_->switchPortCounters(sw, port).txPackets;
    const bool down = !net_->isPortUp(sw, port);
    // Counter stall: tx frozen across the sample while backlog waits. A PFC
    // pause shows the same signature, which is what the timeout debounces.
    const bool stalled = !down && tx == w.lastTxPackets &&
                         net_->switchEgressBytes(sw, port) > 0;
    w.lastTxPackets = tx;
    if (!down && !stalled) {
      w.suspectedAt = -1;  // signature cleared (pause lifted, port recovered)
      continue;
    }
    if (w.suspectedAt < 0) {
      w.suspectedAt = now;
      w.suspectedDown = down;
      if (detectionTimeout_ > 0) continue;  // zero timeout: detect immediately
    }
    if (now - w.suspectedAt < detectionTimeout_) continue;

    PortFailure failure;
    failure.sw = sw;
    failure.port = port;
    failure.reportedDown = w.suspectedDown || down;
    failure.suspectedAt = w.suspectedAt;
    failure.detectedAt = now;
    if (epochProvider_) failure.epoch = epochProvider_();
    if (projection_ != nullptr) {
      failure.logicalPort = projection_->logicalAt(projection::PhysPort{sw, port});
    }
    w.reported = true;
    failures_.push_back(failure);
    if (failureCallback_) failureCallback_(failures_.back());
  }
}

void NetworkMonitor::sample(std::uint64_t epoch) {
  if (!running_ || epoch != epoch_) return;  // stopped or superseded by restart
  ++samples_;
  for (topo::SwitchId sw = 0; sw < topo_->numSwitches(); ++sw) {
    for (topo::PortId p = 0; p < static_cast<int>(ewma_[sw].size()); ++p) {
      poll(sw, p, gain_);
    }
  }
  if (detectFailures_) checkFailures();
  sim_->schedule(period_, [this, e = epoch_]() { sample(e); });
}

std::vector<projection::PhysPort> NetworkMonitor::failedPorts() const {
  std::vector<projection::PhysPort> ports;
  ports.reserve(failures_.size());
  for (const PortFailure& f : failures_) {
    ports.push_back(projection::PhysPort{f.sw, f.port});
  }
  return ports;
}

void NetworkMonitor::clearFailures() {
  failures_.clear();
  for (auto& [key, w] : watches_) {
    w.suspectedAt = -1;
    w.suspectedDown = false;
    w.reported = false;
    w.lastTxPackets = net_->switchPortCounters(key.first, key.second).txPackets;
  }
}

void NetworkMonitor::guardSwitch(int sw) { ++guards_[sw]; }

void NetworkMonitor::unguardSwitch(int sw) {
  const auto it = guards_.find(sw);
  if (it == guards_.end() || it->second == 0) return;
  if (--it->second > 0) return;
  // Last guard lifted: reseed the tx baseline so counter movement during
  // the transaction is not misread as a fresh stall signature.
  for (auto& [key, w] : watches_) {
    if (key.first != sw) continue;
    w.suspectedAt = -1;
    w.lastTxPackets = net_->switchPortCounters(key.first, key.second).txPackets;
  }
}

double NetworkMonitor::load(topo::SwitchId sw, topo::PortId port) const {
  // Full bounds check: the old port-only check made load(99, 0) on a
  // 6-switch fabric undefined behavior (ewma_[99]), and load(0, 99) an
  // indistinguishable silent 0.0.
  if (sw < 0 || sw >= static_cast<int>(ewma_.size()) || port < 0 ||
      port >= static_cast<int>(ewma_[sw].size())) {
    ++oobQueries_;
    if (!oobWarned_) {
      oobWarned_ = true;
      SDT_WARN << "monitor: out-of-range load query (sw=" << sw << " port="
               << port << "); returning 0 and counting further ones in "
                  "sdt_monitor_oob_queries_total";
    }
    return 0.0;
  }
  return ewma_[sw][port];
}

routing::CongestionOracle NetworkMonitor::oracle() const {
  return [this](topo::SwitchId sw, topo::PortId port) { return load(sw, port); };
}

}  // namespace sdt::controller
