#include "controller/monitor.hpp"

namespace sdt::controller {

NetworkMonitor::NetworkMonitor(sim::Simulator& sim, sim::Network& net,
                               const topo::Topology& topo)
    : sim_(&sim), net_(&net), topo_(&topo), projection_(nullptr) {
  ewma_.resize(static_cast<std::size_t>(topo.numSwitches()));
  for (topo::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    ewma_[sw].assign(static_cast<std::size_t>(topo.radix(sw)), 0.0);
  }
}

NetworkMonitor::NetworkMonitor(sim::Simulator& sim, sim::Network& net,
                               const topo::Topology& topo,
                               const projection::Projection& projection)
    : NetworkMonitor(sim, net, topo) {
  projection_ = &projection;
}

void NetworkMonitor::start(TimeNs period, double ewmaGain) {
  period_ = period;
  gain_ = ewmaGain;
  running_ = true;
  sim_->schedule(period_, [this]() { sample(); });
}

void NetworkMonitor::poll(topo::SwitchId sw, topo::PortId port, double gain) {
  std::int64_t bytes;
  if (projection_ != nullptr) {
    const projection::PhysPort pp = projection_->physOf(topo::SwitchPort{sw, port});
    if (!pp.valid()) return;  // host-facing logical port: not a fabric queue
    bytes = net_->switchEgressBytes(pp.sw, pp.port);
  } else {
    bytes = net_->switchEgressBytes(sw, port);
  }
  ewma_[sw][port] = (1.0 - gain) * ewma_[sw][port] + gain * static_cast<double>(bytes);
}

void NetworkMonitor::sample() {
  if (!running_) return;
  ++samples_;
  for (topo::SwitchId sw = 0; sw < topo_->numSwitches(); ++sw) {
    for (topo::PortId p = 0; p < static_cast<int>(ewma_[sw].size()); ++p) {
      poll(sw, p, gain_);
    }
  }
  sim_->schedule(period_, [this]() { sample(); });
}

double NetworkMonitor::load(topo::SwitchId sw, topo::PortId port) const {
  if (port < 0 || port >= static_cast<int>(ewma_[sw].size())) return 0.0;
  return ewma_[sw][port];
}

routing::CongestionOracle NetworkMonitor::oracle() const {
  return [this](topo::SwitchId sw, topo::PortId port) { return load(sw, port); };
}

}  // namespace sdt::controller
