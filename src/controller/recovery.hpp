// Controller crash recovery: journal replay, switch table readback, and
// anti-entropy reconciliation.
//
// A restarted controller owns nothing but the write-ahead journal
// (controller/journal.hpp): no Deployment, no transaction object, no idea
// whether the fabric matches any intent. Recovery rebuilds trust in three
// steps:
//
//   plan     planRecovery() replays the journal, decides the *target* intent
//            — an open transaction that journaled its flip marker rolls
//            FORWARD (some ingress may already stamp the new epoch; rolling
//            back would strand those packets' rules), an un-flipped one
//            rolls BACK (provably no packet ever carried the new epoch),
//            and a quiescent journal just re-asserts the live intent — and
//            recompiles that intent's flow tables from the journaled
//            topology/routing names and ECMP salt (recovery::IntentCatalog).
//   readback The controller trusts switches, not memory: a flow-stats
//            request per switch over the lossy ControlChannel (with
//            retry/backoff) returns each table + ingress epoch verbatim.
//            A rebooted switch shows up as an empty table stamping epoch 0.
//   converge Per switch, the epoch-insensitive multiset diff
//            (controller/table_diff.hpp) between the snapshot and the target
//            yields a minimal flow-mod bundle: strict-deletes, adds, one
//            cookie-restamp sweep for rules that only changed epoch, and the
//            ingress-epoch flip. Bundles are xid-stamped and applied
//            atomically at the switch. Because the channel can drop or
//            duplicate anything, recovery is ANTI-ENTROPY: after converging
//            it reads back again and re-diffs, iterating until a verify
//            round shows zero drift everywhere (or the round cap trips).
//
// The run ends with a direct purity audit (every rule and every ingress
// stamp carries exactly the target epoch), a kRecovery journal record so the
// *next* crash sees a clean slate, and a Deployment the caller adopts as the
// new live state.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "controller/controller.hpp"
#include "controller/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/control_channel.hpp"
#include "sim/simulator.hpp"

namespace sdt::controller {

class NetworkMonitor;

enum class RecoveryDecision : std::uint8_t {
  kNone,         ///< planning failed; nothing decided
  kRollForward,  ///< open transaction past its flip marker: finish it
  kRollBack,     ///< open transaction, flip never journaled: undo it
  kReinstall,    ///< no open transaction: re-assert the live intent as-is
};

const char* recoveryDecisionName(RecoveryDecision decision);

/// How a restarted controller turns journaled intent *names* back into
/// objects: the journal stores "fat-tree-k4"/"ecmp", the catalog maps those
/// names to the topology and routing instances the new process constructed.
struct IntentCatalogEntry {
  const topo::Topology* topology = nullptr;
  const routing::RoutingAlgorithm* routing = nullptr;
};
using IntentCatalog = std::map<std::string, IntentCatalogEntry>;

/// Everything decided before any switch is contacted: the chosen direction,
/// the recompiled target tables, and the journal facts that led there.
struct RecoveryPlan {
  RecoveryDecision decision = RecoveryDecision::kNone;
  std::string topology;          ///< target intent identity
  std::string routing;
  std::uint64_t ecmpSalt = 0;
  std::uint32_t targetEpoch = 0;
  std::uint32_t staleEpoch = 0;  ///< the losing transaction epoch (0 = none)
  bool txWasOpen = false;
  bool txFlipped = false;
  std::uint32_t fromEpoch = 0;   ///< open transaction's epochs (0 = none)
  std::uint32_t toEpoch = 0;
  projection::Projection projection;
  /// Per-physical-switch target entries, cookies stamped targetEpoch.
  std::vector<std::vector<openflow::FlowEntry>> tables;
  int totalEntries = 0;
  /// Per-physical-switch ingress ports whose epoch stamp this recovery owns
  /// (empty outer or inner vector = the whole switch, the single-tenant
  /// default). A tenant slice's recovery lists only the slice's host-facing
  /// ports, so converging one tenant can never flip a co-tenant's stamping.
  /// planRecovery() leaves this empty; the slice layer fills it in.
  std::vector<std::vector<int>> flipPorts;
};

/// Replay the journal and compile the recovery target. Pure planning: no
/// switch is contacted, no state mutated. `options` supplies the projector
/// knobs; the deadlock check is intentionally skipped (the intent passed it
/// when first deployed, and a recovering controller must not refuse to
/// restore the only consistent state it can prove).
Result<RecoveryPlan> planRecovery(const SdtController& controller,
                                  const Journal& journal,
                                  const IntentCatalog& catalog,
                                  const DeployOptions& options = {});

struct RecoveryOptions {
  /// Retry budget and backoff shape per readback / converge attempt.
  retry::RetryPolicy retry;
  /// Per-switch attempt backstop for a single round (like
  /// ReconfigOptions::commitAttempts): recovery never gives up early, but a
  /// channel that never delivers must not hang the simulation.
  int convergeAttempts = 1000;
  /// Anti-entropy iteration cap: readback -> converge -> readback ... until
  /// a verify round is clean everywhere or this many rounds have run.
  int maxRounds = 8;
  /// Replicated-controller HA: the recovering leader's term. Modeled on the
  /// OpenFlow role-request generation_id — the very first readback raises
  /// the fence on every switch (so a freshly elected leader fences its
  /// predecessor everywhere, even switches needing zero converge mods), and
  /// every converge bundle re-asserts it. 0 = legacy single-controller mode.
  std::uint64_t term = 0;
  /// The recovering replica's id (see ReconfigOptions::leaderId): breaks
  /// same-term ties at the switch fence toward the lower id. -1 = none.
  int leaderId = -1;
  /// Guarded for the duration of the run (converge makes counters wobble
  /// exactly like the failure signatures); unguarding at the end reseeds the
  /// monitor's counter baselines. This should be the *new* controller's
  /// monitor — the crashed controller's monitor died with it.
  NetworkMonitor* monitor = nullptr;
  /// When set, a kRecovery record is appended after convergence so the next
  /// cold start sees the converged intent as live and no open transaction.
  Journal* journal = nullptr;
  /// Observability (both optional, both must outlive the run): the tracer
  /// gets a "recover" root span with one child per anti-entropy phase
  /// (readback/converge/verify, repeating as rounds iterate), in simulated
  /// time; the registry gets per-phase sdt_controller_retry_attempts_total.
  obs::Tracer* tracer = nullptr;
  obs::Registry* metrics = nullptr;
};

/// Per-switch recovery outcome (index == physical switch id).
struct SwitchRecoveryState {
  bool snapshotAcked = false;   ///< at least one readback round-trip done
  bool convergeAcked = false;   ///< last converge bundle acked (or none needed)
  bool rebooted = false;        ///< first snapshot: empty table, epoch 0
  bool drifted = false;         ///< first snapshot disagreed with the target
  int rulesMissing = 0;         ///< target rules absent from the first snapshot
  int rulesExtra = 0;           ///< snapshot rules not in the target
  int rulesRestamped = 0;       ///< right rule, wrong epoch stamp (cookie sweep)
  int convergeRounds = 0;       ///< bundles this switch actually needed
  int retries = 0;              ///< sends beyond the first, all rounds
};

struct RecoveryReport {
  bool converged = false;
  RecoveryDecision decision = RecoveryDecision::kNone;
  std::string topology;
  std::string routing;
  std::uint32_t targetEpoch = 0;
  bool txWasOpen = false;
  bool txFlipped = false;
  std::uint32_t fromEpoch = 0;
  std::uint32_t toEpoch = 0;

  int switchesDrifted = 0;    ///< first readback: switches needing any mod
  int switchesRebooted = 0;   ///< empty-table, epoch-0 switches repopulated
  int rulesMissing = 0;       ///< summed over first readback
  int rulesExtra = 0;
  int rulesRestamped = 0;
  int flowMods = 0;           ///< deletes + adds + restamp/flip ops applied
  /// What a trust-nothing full redeploy would have cost instead:
  /// clear every live entry + install every target entry.
  int fullRedeployFlowMods = 0;
  int statsRounds = 0;        ///< readback rounds completed
  int retriesTotal = 0;

  TimeNs startedAt = 0;
  TimeNs finishedAt = 0;
  [[nodiscard]] TimeNs convergenceTime() const { return finishedAt - startedAt; }

  /// Direct post-run audit: every switch holds only targetEpoch rules and
  /// stamps targetEpoch at ingress. False (with converged) cannot happen —
  /// a failed audit fails the run.
  bool pureStateVerified = false;

  std::vector<SwitchRecoveryState> switches;
  std::string failure;  ///< empty when converged

  [[nodiscard]] json::Value toJson() const;
};

/// One in-flight recovery. Same lifetime rules as ReconfigTransaction: the
/// simulator, channel, and switch objects must outlive the run, and the run
/// must outlive the simulation window it executes in.
class RecoveryRun {
 public:
  using DoneFn = std::function<void(const RecoveryReport&)>;

  /// `switches` are the live switch models the crashed controller programmed
  /// (in a real deployment: the re-established OpenFlow sessions). The run
  /// never trusts their tables — that is what readback is for.
  RecoveryRun(sim::Simulator& sim, sim::ControlChannel& channel,
              std::vector<std::shared_ptr<openflow::Switch>> switches,
              RecoveryPlan plan, RecoveryOptions options = {},
              DoneFn done = nullptr);

  /// Kick off the first readback round (schedules simulator events).
  void start();

  /// Abandon the run: a SIGKILL'd leader takes its recovery with it.
  /// Messages already on the control channel still deliver (they left the
  /// process before it died), but no new round starts, no timer re-arms,
  /// and the done callback never fires. Guarded switches are unguarded so
  /// the monitor does not stay suppressed forever. Idempotent; a no-op on
  /// a finished run.
  void cancel();
  [[nodiscard]] bool cancelled() const { return cancelled_; }

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const RecoveryReport& report() const { return report_; }

  /// The deployment the converged fabric now implements (valid only after a
  /// successful run): adopt this as the new live state.
  [[nodiscard]] const Deployment& deployment() const { return deployment_; }
  [[nodiscard]] Deployment takeDeployment() { return std::move(deployment_); }

 private:
  enum class Round : std::uint8_t { kReadback, kConverge };

  /// One switch's pending converge bundle (computed from its last snapshot).
  struct ConvergeOps {
    std::vector<openflow::FlowEntry> removes;  ///< strict-delete these
    std::vector<openflow::FlowEntry> adds;     ///< install these (fresh copies)
    bool restamp = false;    ///< cookie-epoch sweep needed
    int restampCount = 0;    ///< entries the sweep would touch (drift metric)
    bool flipEpoch = false;  ///< ingress stamp != targetEpoch
    [[nodiscard]] bool empty() const {
      return removes.empty() && adds.empty() && !restamp && !flipEpoch;
    }
    [[nodiscard]] int mods() const {
      return static_cast<int>(removes.size() + adds.size()) + (restamp ? 1 : 0) +
             (flipEpoch ? 1 : 0);
    }
  };

  [[nodiscard]] int numSwitches() const {
    return static_cast<int>(switches_.size());
  }
  /// Ports whose ingress stamp this recovery owns on `sw`, or nullptr for
  /// the whole switch (plan_.flipPorts empty or its inner list empty).
  [[nodiscard]] const std::vector<int>* flipPortsFor(int sw) const;
  void startRound(int sw, Round round, int attempt);
  void onSnapshot(int sw, const openflow::TableSnapshot& snap);
  void onConvergeAck(int sw);
  void onRoundTimeout(int sw, Round round, int attempt, std::uint64_t gen);
  [[nodiscard]] TimeNs backoffDelay(int sw, int attempt);
  void completeSwitch(int sw);
  void beginConverge();
  void beginVerify();
  void recordFirstReadback(int sw, const ConvergeOps& ops,
                           const openflow::TableSnapshot& snap);
  void finishSuccess();
  void finishFailure(const std::string& why);
  void finish();
  /// Close the current phase span and open `name` under the root (no-op
  /// without a tracer).
  void tracePhase(const char* name);
  /// Close both spans and stamp the root with the outcome.
  void traceFinish(const char* outcome);

  sim::Simulator* sim_;
  sim::ControlChannel* channel_;
  std::vector<std::shared_ptr<openflow::Switch>> switches_;
  RecoveryPlan plan_;
  RecoveryOptions options_;
  DoneFn done_;

  Round currentRound_ = Round::kReadback;
  int roundIndex_ = 0;       ///< anti-entropy iteration counter (xid salt)
  bool finished_ = false;
  bool cancelled_ = false;
  std::uint64_t gen_ = 0;    ///< bumped on round change; stale timers no-op
  RecoveryReport report_;
  Deployment deployment_;
  std::vector<ConvergeOps> pending_;      ///< per switch, refreshed per readback
  std::vector<openflow::TableSnapshot> lastSnap_;
  std::vector<char> roundComplete_;
  std::vector<Rng> backoffRng_;
  int roundAcks_ = 0;
  bool firstReadback_ = true;  ///< drift accounting happens once
  /// epochTenant(plan_.targetEpoch): non-zero scopes every diff, restamp,
  /// purity check, and deployment total to this tenant's own rules.
  std::uint16_t tenant_ = 0;
  obs::SpanId spanRun_ = obs::kNoSpan;    ///< root span (tracer only)
  obs::SpanId spanPhase_ = obs::kNoSpan;  ///< currently open phase child
};

/// Append the kDeploy intent record for a fresh deployment. deploy() itself
/// stays journal-free (it is a pure compile); the caller that *adopts* the
/// deployment as live state journals it, exactly once, via this helper.
Status<Error> journalDeploy(Journal& journal, const Deployment& deployment,
                            TimeNs at);

}  // namespace sdt::controller
