#include "controller/recovery.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "controller/monitor.hpp"
#include "controller/table_diff.hpp"

namespace sdt::controller {
namespace {

/// Transfer id for one converge bundle. High tag 0x4EC0 ("reco") keeps
/// recovery's xid space disjoint from the transaction layer's 0xF10D, so a
/// late duplicate from the crashed transaction can never mask a recovery
/// bundle (or vice versa). The anti-entropy round index makes each
/// iteration's bundle a fresh xid — only *retries within* a round dedup —
/// and the tenant salt keeps two tenants' concurrent recoveries over the
/// same shared switch from colliding in its xid cache.
std::uint64_t recoveryXid(std::uint16_t tenant, int round, int sw) {
  return (0x4EC0ULL << 48) | (static_cast<std::uint64_t>(tenant) << 32) |
         (static_cast<std::uint64_t>(round) << 16) |
         static_cast<std::uint64_t>(sw);
}

}  // namespace

const char* recoveryDecisionName(RecoveryDecision decision) {
  switch (decision) {
    case RecoveryDecision::kNone: return "none";
    case RecoveryDecision::kRollForward: return "roll-forward";
    case RecoveryDecision::kRollBack: return "roll-back";
    case RecoveryDecision::kReinstall: return "reinstall";
  }
  return "?";
}

json::Value RecoveryReport::toJson() const {
  json::Object obj;
  obj["converged"] = converged;
  obj["decision"] = recoveryDecisionName(decision);
  obj["topology"] = topology;
  obj["routing"] = routing;
  obj["targetEpoch"] = static_cast<std::int64_t>(targetEpoch);
  obj["txWasOpen"] = txWasOpen;
  obj["txFlipped"] = txFlipped;
  obj["fromEpoch"] = static_cast<std::int64_t>(fromEpoch);
  obj["toEpoch"] = static_cast<std::int64_t>(toEpoch);
  obj["switchesDrifted"] = switchesDrifted;
  obj["switchesRebooted"] = switchesRebooted;
  obj["rulesMissing"] = rulesMissing;
  obj["rulesExtra"] = rulesExtra;
  obj["rulesRestamped"] = rulesRestamped;
  obj["flowMods"] = flowMods;
  obj["fullRedeployFlowMods"] = fullRedeployFlowMods;
  obj["statsRounds"] = statsRounds;
  obj["retriesTotal"] = retriesTotal;
  obj["startedAtNs"] = static_cast<std::int64_t>(startedAt);
  obj["finishedAtNs"] = static_cast<std::int64_t>(finishedAt);
  obj["convergenceTimeNs"] = static_cast<std::int64_t>(convergenceTime());
  obj["pureStateVerified"] = pureStateVerified;
  if (!failure.empty()) obj["failure"] = failure;
  json::Array sws;
  for (const SwitchRecoveryState& s : switches) {
    json::Object sw;
    sw["snapshotAcked"] = s.snapshotAcked;
    sw["convergeAcked"] = s.convergeAcked;
    sw["rebooted"] = s.rebooted;
    sw["drifted"] = s.drifted;
    sw["rulesMissing"] = s.rulesMissing;
    sw["rulesExtra"] = s.rulesExtra;
    sw["rulesRestamped"] = s.rulesRestamped;
    sw["convergeRounds"] = s.convergeRounds;
    sw["retries"] = s.retries;
    sws.push_back(std::move(sw));
  }
  obj["switches"] = std::move(sws);
  return obj;
}

Result<RecoveryPlan> planRecovery(const SdtController& controller,
                                  const Journal& journal,
                                  const IntentCatalog& catalog,
                                  const DeployOptions& options) {
  auto replayed = journal.replay();
  if (!replayed) return replayed.error();
  const JournalState& st = replayed.value().state;

  RecoveryPlan plan;
  plan.txWasOpen = st.txOpen;
  plan.txFlipped = st.txFlipped;
  plan.fromEpoch = st.txFromEpoch;
  plan.toEpoch = st.txToEpoch;
  if (st.txOpen && st.txFlipped) {
    // The flip marker proves the dead controller may have sent flips: some
    // ingress could already stamp the new epoch. Forward is the only safe
    // direction (Reitblatt: past the commit point, complete the update).
    plan.decision = RecoveryDecision::kRollForward;
    plan.topology = st.txTopology;
    plan.routing = st.txRouting;
    plan.ecmpSalt = st.txEcmpSalt;
    plan.targetEpoch = st.txToEpoch;
    plan.staleEpoch = st.txFromEpoch;
  } else if (st.txOpen) {
    // No flip marker: the marker is journaled before the first flip send,
    // so no packet was ever stamped with the new epoch. Rolling back to the
    // (still fully installed) old intent is safe and cheapest.
    if (!st.valid) {
      return makeError(
          "journal has an open un-flipped transaction but no prior deployed "
          "intent to roll back to");
    }
    plan.decision = RecoveryDecision::kRollBack;
    plan.topology = st.topology;
    plan.routing = st.routing;
    plan.ecmpSalt = st.ecmpSalt;
    plan.targetEpoch = st.epoch;
    plan.staleEpoch = st.txToEpoch;
  } else {
    if (!st.valid) return makeError("journal holds no deployable intent");
    plan.decision = RecoveryDecision::kReinstall;
    plan.topology = st.topology;
    plan.routing = st.routing;
    plan.ecmpSalt = st.ecmpSalt;
    plan.targetEpoch = st.epoch;
    plan.staleEpoch = 0;
  }

  const auto entry = catalog.find(plan.topology);
  if (entry == catalog.end() || entry->second.topology == nullptr ||
      entry->second.routing == nullptr) {
    return makeError(strFormat(
        "journaled intent '%s' is not in the recovery catalog", plan.topology.c_str()));
  }
  if (entry->second.routing->name() != plan.routing) {
    return makeError(strFormat(
        "catalog routing '%s' does not match journaled routing '%s' for '%s'",
        entry->second.routing->name().c_str(), plan.routing.c_str(),
        plan.topology.c_str()));
  }

  auto proj = projection::LinkProjector::project(*entry->second.topology,
                                                 controller.plant(), options.projector);
  if (!proj) return proj.error();
  // Recompile with the *journaled* salt: the tables must be byte-identical
  // to what the dead controller installed, or the diff would churn every
  // ECMP choice. No deadlock re-check — the intent passed it at deploy time,
  // and refusing here would leave the fabric in its crashed mixed state.
  DeployOptions compileOptions = options;
  compileOptions.ecmpSalt = plan.ecmpSalt;
  auto tables = detail::compileFlowTables(*entry->second.topology, proj.value(),
                                          controller.plant(), *entry->second.routing,
                                          compileOptions, plan.targetEpoch);
  if (!tables) return tables.error();
  for (const auto& t : tables.value()) plan.totalEntries += static_cast<int>(t.size());
  plan.projection = std::move(proj).value();
  plan.tables = std::move(tables).value();
  return plan;
}

RecoveryRun::RecoveryRun(sim::Simulator& sim, sim::ControlChannel& channel,
                         std::vector<std::shared_ptr<openflow::Switch>> switches,
                         RecoveryPlan plan, RecoveryOptions options, DoneFn done)
    : sim_(&sim),
      channel_(&channel),
      switches_(std::move(switches)),
      plan_(std::move(plan)),
      options_(std::move(options)),
      done_(std::move(done)) {
  const auto n = static_cast<std::size_t>(numSwitches());
  pending_.resize(n);
  lastSnap_.resize(n);
  roundComplete_.assign(n, 0);
  backoffRng_.reserve(n);
  for (std::size_t sw = 0; sw < n; ++sw) {
    std::uint64_t mix = options_.retry.seed ^ (0x4EC0BEA7ULL + sw);
    backoffRng_.emplace_back(sdt::detail::splitmix64(mix));
  }
  report_.decision = plan_.decision;
  report_.topology = plan_.topology;
  report_.routing = plan_.routing;
  report_.targetEpoch = plan_.targetEpoch;
  report_.txWasOpen = plan_.txWasOpen;
  report_.txFlipped = plan_.txFlipped;
  report_.fromEpoch = plan_.fromEpoch;
  report_.toEpoch = plan_.toEpoch;
  report_.switches.resize(n);
  tenant_ = openflow::epochTenant(plan_.targetEpoch);
}

const std::vector<int>* RecoveryRun::flipPortsFor(int sw) const {
  if (static_cast<std::size_t>(sw) >= plan_.flipPorts.size()) return nullptr;
  const std::vector<int>& ports = plan_.flipPorts[static_cast<std::size_t>(sw)];
  return ports.empty() ? nullptr : &ports;
}

void RecoveryRun::tracePhase(const char* name) {
  if (options_.tracer == nullptr) return;
  const TimeNs now = sim_->now();
  if (spanPhase_ != obs::kNoSpan) options_.tracer->end(spanPhase_, now);
  spanPhase_ = options_.tracer->begin(std::string("recover.") + name, now, spanRun_);
}

void RecoveryRun::traceFinish(const char* outcome) {
  if (options_.tracer == nullptr) return;
  const TimeNs now = sim_->now();
  if (spanPhase_ != obs::kNoSpan) {
    options_.tracer->end(spanPhase_, now);
    spanPhase_ = obs::kNoSpan;
  }
  if (spanRun_ == obs::kNoSpan) return;
  options_.tracer->annotate(spanRun_, "outcome", outcome);
  options_.tracer->annotate(spanRun_, "stats_rounds",
                            std::to_string(report_.statsRounds));
  options_.tracer->annotate(spanRun_, "flow_mods", std::to_string(report_.flowMods));
  options_.tracer->annotate(spanRun_, "retries",
                            std::to_string(report_.retriesTotal));
  if (!report_.failure.empty()) {
    options_.tracer->annotate(spanRun_, "failure", report_.failure);
  }
  options_.tracer->end(spanRun_, now);
  spanRun_ = obs::kNoSpan;
}

void RecoveryRun::start() {
  report_.startedAt = sim_->now();
  if (options_.tracer != nullptr) {
    spanRun_ = options_.tracer->begin("recover", report_.startedAt);
    options_.tracer->annotate(spanRun_, "decision",
                              recoveryDecisionName(plan_.decision));
    options_.tracer->annotate(spanRun_, "topology", plan_.topology);
    options_.tracer->annotate(spanRun_, "target_epoch",
                              std::to_string(plan_.targetEpoch));
    options_.tracer->annotate(spanRun_, "rules", std::to_string(plan_.totalEntries));
  }
  if (options_.monitor != nullptr) {
    for (int sw = 0; sw < numSwitches(); ++sw) options_.monitor->guardSwitch(sw);
  }
  currentRound_ = Round::kReadback;
  tracePhase("readback");
  for (int sw = 0; sw < numSwitches(); ++sw) startRound(sw, Round::kReadback, 1);
}

TimeNs RecoveryRun::backoffDelay(int sw, int attempt) {
  // Same capped exponential as ReconfigTransaction::backoffDelay; the cap
  // must be applied in double, before the cast (see the comment there).
  double wait = static_cast<double>(options_.retry.baseBackoff);
  for (int i = 1; i < attempt; ++i) wait *= options_.retry.backoffMultiplier;
  if (options_.retry.jitter > 0.0) {
    wait *= 1.0 - options_.retry.jitter *
                      backoffRng_[static_cast<std::size_t>(sw)].uniform();
  }
  const double maxBackoff = static_cast<double>(options_.retry.maxBackoff);
  if (!(wait < maxBackoff)) wait = maxBackoff;
  return static_cast<TimeNs>(wait);
}

void RecoveryRun::startRound(int sw, Round round, int attempt) {
  if (finished_ || roundComplete_[static_cast<std::size_t>(sw)] != 0) return;
  if (attempt > 1) {
    ++report_.retriesTotal;
    ++report_.switches[static_cast<std::size_t>(sw)].retries;
    if (options_.metrics != nullptr) {
      options_.metrics
          ->counter("sdt_controller_retry_attempts_total",
                    {{"op", "recover"},
                     {"phase", round == Round::kReadback ? "readback" : "converge"}},
                    "Control-channel resends beyond the first attempt")
          .inc();
    }
  }
  const std::uint64_t gen = gen_;
  if (round == Round::kReadback) {
    // Flow-stats request: the switch snapshots its table at *delivery* time
    // (not send time) and ships the copy back; both legs are lossy. The
    // request carries the leader's generation (term) like an OpenFlow
    // role-request: delivery raises the fence, and a request from an
    // already-deposed leader gets no reply at all.
    channel_->send(sw, [this, sw, gen]() {
      if (!switches_[static_cast<std::size_t>(sw)]->admitTerm(options_.term,
                                                             options_.leaderId)) {
        return;
      }
      const openflow::TableSnapshot snap =
          switches_[static_cast<std::size_t>(sw)]->snapshot();
      channel_->send(sw, [this, sw, gen, snap]() {
        if (finished_ || gen != gen_) return;
        onSnapshot(sw, snap);
      });
    });
  } else {
    // Converge bundle: captured by value so a duplicate delivered after the
    // round advanced still re-acks the *same* bundle it acked before. The
    // xid (bound to this anti-entropy round) makes re-application a no-op.
    const ConvergeOps ops = pending_[static_cast<std::size_t>(sw)];
    const std::uint64_t xid = recoveryXid(tenant_, roundIndex_, sw);
    channel_->send(sw, [this, sw, gen, xid, ops]() {
      openflow::Switch& ofs = *switches_[static_cast<std::size_t>(sw)];
      // Fenced: no apply, no ack.
      if (!ofs.admitTerm(options_.term, options_.leaderId)) return;
      if (ofs.acceptXid(xid)) {
        // Applied atomically (one OpenFlow bundle-commit): removes first so
        // the table never holds both an entry and its replacement.
        for (const openflow::FlowEntry& e : ops.removes) ofs.table().removeExact(e);
        for (const openflow::FlowEntry& e : ops.adds) {
          openflow::FlowEntry fresh = e;
          fresh.packetCount = 0;
          fresh.byteCount = 0;
          // A full table here means the fabric still carries two epochs'
          // rules beyond what the removes cover; the verify round will see
          // the shortfall and the next iteration finishes the job.
          (void)ofs.table().add(std::move(fresh));
        }
        if (ops.restamp) {
          // The tenant-scoped sweep leaves co-tenant cookies alone; the
          // whole-table sweep is the legacy single-tenant behaviour.
          if (tenant_ != 0) ofs.table().restampTenantEpoch(plan_.targetEpoch);
          else ofs.table().restampEpoch(plan_.targetEpoch);
        }
        if (ops.flipEpoch) {
          if (const std::vector<int>* ports = flipPortsFor(sw)) {
            for (const int p : *ports) ofs.setPortIngressEpoch(p, plan_.targetEpoch);
          } else if (tenant_ == 0) {
            // A tenant-scoped recovery with no listed ports owns no ingress
            // stamping on this switch; a whole-switch flip would hijack
            // co-tenant traffic.
            ofs.setIngressEpoch(plan_.targetEpoch);
          }
        }
        report_.flowMods += ops.mods();
      }
      channel_->send(sw, [this, sw, gen]() {
        if (finished_ || gen != gen_) return;
        onConvergeAck(sw);
      });
    });
  }
  sim_->schedule(options_.retry.attemptTimeout, [this, sw, round, attempt, gen]() {
    onRoundTimeout(sw, round, attempt, gen);
  });
}

void RecoveryRun::onRoundTimeout(int sw, Round round, int attempt,
                                 std::uint64_t gen) {
  if (finished_ || gen != gen_ || roundComplete_[static_cast<std::size_t>(sw)] != 0) {
    return;
  }
  if (attempt >= options_.convergeAttempts) {
    finishFailure(strFormat(
        "switch %d unreachable during recovery %s round after %d attempts", sw,
        round == Round::kReadback ? "readback" : "converge", attempt));
    return;
  }
  const TimeNs backoff = backoffDelay(sw, attempt);
  sim_->schedule(backoff, [this, sw, round, attempt, gen]() {
    if (finished_ || gen != gen_ ||
        roundComplete_[static_cast<std::size_t>(sw)] != 0) {
      return;
    }
    startRound(sw, round, attempt + 1);
  });
}

void RecoveryRun::onSnapshot(int sw, const openflow::TableSnapshot& snap) {
  if (roundComplete_[static_cast<std::size_t>(sw)] != 0) return;
  report_.switches[static_cast<std::size_t>(sw)].snapshotAcked = true;
  lastSnap_[static_cast<std::size_t>(sw)] = snap;
  completeSwitch(sw);
}

void RecoveryRun::onConvergeAck(int sw) {
  if (roundComplete_[static_cast<std::size_t>(sw)] != 0) return;
  report_.switches[static_cast<std::size_t>(sw)].convergeAcked = true;
  completeSwitch(sw);
}

void RecoveryRun::completeSwitch(int sw) {
  roundComplete_[static_cast<std::size_t>(sw)] = 1;
  ++roundAcks_;
  if (roundAcks_ < numSwitches()) return;

  if (currentRound_ == Round::kReadback) {
    ++report_.statsRounds;
    // Diff every snapshot against the target: the journaled intent is the
    // truth, the snapshot is the fabric, the diff is the repair.
    bool anyDrift = false;
    for (int s = 0; s < numSwitches(); ++s) {
      const openflow::TableSnapshot& snap = lastSnap_[static_cast<std::size_t>(s)];
      ConvergeOps ops;
      // A tenant-scoped recovery diffs only the slice's own entries: rules a
      // co-tenant installed on the same shared switch are invisible here, so
      // they can be neither deleted, restamped, nor counted as drift.
      std::vector<openflow::FlowEntry> owned;
      const std::vector<openflow::FlowEntry>* live = &snap.entries;
      if (tenant_ != 0) {
        owned.reserve(snap.entries.size());
        for (const openflow::FlowEntry& e : snap.entries) {
          if (openflow::cookieTenant(e.cookie) == tenant_) owned.push_back(e);
        }
        live = &owned;
      }
      detail::TableDiff diff =
          detail::diffEntries(*live, plan_.tables[static_cast<std::size_t>(s)]);
      ops.removes = std::move(diff.toRemove);
      ops.adds.reserve(diff.toAdd.size());
      for (const openflow::FlowEntry* e : diff.toAdd) ops.adds.push_back(*e);
      // Rules that survive the diff but carry the losing epoch's stamp only
      // need the cookie sweep, not a delete+add round-trip.
      std::size_t wrongEpoch = 0;
      for (const openflow::FlowEntry& e : *live) {
        if (openflow::cookieEpoch(e.cookie) != plan_.targetEpoch) ++wrongEpoch;
      }
      std::size_t wrongInRemoves = 0;
      for (const openflow::FlowEntry& e : ops.removes) {
        if (openflow::cookieEpoch(e.cookie) != plan_.targetEpoch) ++wrongInRemoves;
      }
      ops.restampCount = static_cast<int>(wrongEpoch - wrongInRemoves);
      ops.restamp = ops.restampCount > 0;
      if (const std::vector<int>* ports = flipPortsFor(s)) {
        ops.flipEpoch = false;
        for (const int p : *ports) {
          std::uint32_t effective = snap.ingressEpoch;
          for (const auto& [port, epoch] : snap.portEpochs) {
            if (port == p) {
              effective = epoch;
              break;
            }
          }
          if (effective != plan_.targetEpoch) ops.flipEpoch = true;
        }
      } else {
        // No listed ports: whole-switch semantics for the legacy namespace,
        // nothing to flip for a tenant (mid-path hops don't stamp its
        // packets, and the switch-wide epoch belongs to no one tenant).
        ops.flipEpoch = tenant_ == 0 && snap.ingressEpoch != plan_.targetEpoch;
      }
      if (firstReadback_) recordFirstReadback(s, ops, snap);
      anyDrift = anyDrift || !ops.empty();
      pending_[static_cast<std::size_t>(s)] = std::move(ops);
    }
    firstReadback_ = false;
    if (!anyDrift) {
      finishSuccess();
      return;
    }
    if (report_.statsRounds >= options_.maxRounds) {
      finishFailure(strFormat(
          "anti-entropy failed to converge after %d readback rounds",
          report_.statsRounds));
      return;
    }
    beginConverge();
  } else {
    beginVerify();
  }
}

void RecoveryRun::recordFirstReadback(int sw, const ConvergeOps& ops,
                                      const openflow::TableSnapshot& snap) {
  SwitchRecoveryState& st = report_.switches[static_cast<std::size_t>(sw)];
  st.rulesMissing = static_cast<int>(ops.adds.size());
  st.rulesExtra = static_cast<int>(ops.removes.size());
  st.rulesRestamped = ops.restampCount;
  st.rebooted = snap.entries.empty() && snap.ingressEpoch == 0;
  st.drifted = !ops.empty();
  report_.rulesMissing += st.rulesMissing;
  report_.rulesExtra += st.rulesExtra;
  report_.rulesRestamped += st.rulesRestamped;
  if (st.rebooted) ++report_.switchesRebooted;
  if (st.drifted) ++report_.switchesDrifted;
  // The trust-nothing alternative: wipe what the snapshot shows, reinstall
  // the whole target. Recovery's flowMods is the incremental counterpoint.
  report_.fullRedeployFlowMods +=
      static_cast<int>(snap.entries.size()) +
      static_cast<int>(plan_.tables[static_cast<std::size_t>(sw)].size());
}

void RecoveryRun::beginConverge() {
  ++gen_;
  ++roundIndex_;
  currentRound_ = Round::kConverge;
  tracePhase("converge");
  std::fill(roundComplete_.begin(), roundComplete_.end(), 0);
  roundAcks_ = 0;
  // Clean switches sit the round out (no message at all); completeSwitch is
  // not called for them to keep the all-acked barrier arithmetic simple.
  int sent = 0;
  for (int sw = 0; sw < numSwitches(); ++sw) {
    if (pending_[static_cast<std::size_t>(sw)].empty()) {
      roundComplete_[static_cast<std::size_t>(sw)] = 1;
      ++roundAcks_;
      continue;
    }
    ++report_.switches[static_cast<std::size_t>(sw)].convergeRounds;
    startRound(sw, Round::kConverge, 1);
    ++sent;
  }
  // beginConverge only runs when some switch drifted, so the barrier cannot
  // already be full here; the acks arrive as simulator events.
  (void)sent;
}

void RecoveryRun::beginVerify() {
  ++gen_;
  ++roundIndex_;
  currentRound_ = Round::kReadback;
  tracePhase("verify");
  std::fill(roundComplete_.begin(), roundComplete_.end(), 0);
  roundAcks_ = 0;
  for (int sw = 0; sw < numSwitches(); ++sw) startRound(sw, Round::kReadback, 1);
}

void RecoveryRun::finishSuccess() {
  // Direct audit, bypassing the channel: the verify round already proved
  // convergence through lossy snapshots, this re-proves it on the objects.
  bool pure = true;
  for (int sw = 0; sw < numSwitches(); ++sw) {
    const openflow::Switch& ofs = *switches_[static_cast<std::size_t>(sw)];
    if (const std::vector<int>* ports = flipPortsFor(sw)) {
      for (const int p : *ports) {
        if (ofs.portIngressEpoch(p) != plan_.targetEpoch) pure = false;
      }
    } else if (tenant_ == 0 && ofs.ingressEpoch() != plan_.targetEpoch) {
      pure = false;
    }
    for (const openflow::FlowEntry& e : ofs.table().entries()) {
      if (tenant_ != 0 && openflow::cookieTenant(e.cookie) != tenant_) continue;
      if (openflow::cookieEpoch(e.cookie) != plan_.targetEpoch) pure = false;
    }
  }
  if (!pure) {
    finishFailure("post-convergence purity audit failed");
    return;
  }
  report_.pureStateVerified = true;
  report_.converged = true;

  deployment_.projection = plan_.projection;
  deployment_.switches = switches_;
  deployment_.epoch = plan_.targetEpoch;
  deployment_.topology = plan_.topology;
  deployment_.routing = plan_.routing;
  deployment_.ecmpSalt = plan_.ecmpSalt;
  deployment_.totalFlowEntries = 0;
  deployment_.maxEntriesPerSwitch = 0;
  for (const auto& ofs : deployment_.switches) {
    const int n = static_cast<int>(tenant_ != 0 ? ofs->table().countTenant(tenant_)
                                                : ofs->table().size());
    deployment_.totalFlowEntries += n;
    deployment_.maxEntriesPerSwitch = std::max(deployment_.maxEntriesPerSwitch, n);
  }
  deployment_.reconfigTime =
      projection::reconfigTime(projection::TpMethod::kSDT, report_.flowMods);

  if (options_.journal != nullptr) {
    JournalRecord rec;
    rec.kind = JournalRecordKind::kRecovery;
    rec.at = sim_->now();
    rec.epoch = plan_.targetEpoch;
    rec.topology = plan_.topology;
    rec.routing = plan_.routing;
    rec.ecmpSalt = plan_.ecmpSalt;
    (void)options_.journal->append(std::move(rec));
  }
  finish();
}

void RecoveryRun::finishFailure(const std::string& why) {
  report_.converged = false;
  report_.failure = why;
  finish();
}

void RecoveryRun::cancel() {
  if (finished_) return;
  finished_ = true;
  cancelled_ = true;
  ++gen_;  // cancels every outstanding timer and in-flight handler
  report_.converged = false;
  report_.failure = "cancelled";
  report_.finishedAt = sim_->now();
  traceFinish("cancelled");
  if (options_.monitor != nullptr) {
    for (int sw = 0; sw < numSwitches(); ++sw) options_.monitor->unguardSwitch(sw);
  }
  // done_ deliberately NOT invoked: the process that would have received the
  // completion is dead.
}

void RecoveryRun::finish() {
  finished_ = true;
  ++gen_;  // cancels every outstanding timer and in-flight handler
  report_.finishedAt = sim_->now();
  traceFinish(report_.converged ? "converged" : "failed");
  if (options_.monitor != nullptr) {
    // Unguard reseeds the tx-counter baselines, so the converge burst's
    // stalled counters cannot read as a wedged transceiver afterwards.
    for (int sw = 0; sw < numSwitches(); ++sw) options_.monitor->unguardSwitch(sw);
  }
  if (done_) done_(report_);
}

Status<Error> journalDeploy(Journal& journal, const Deployment& deployment,
                            TimeNs at) {
  JournalRecord rec;
  rec.kind = JournalRecordKind::kDeploy;
  rec.at = at;
  rec.epoch = deployment.epoch;
  rec.topology = deployment.topology;
  rec.routing = deployment.routing;
  rec.ecmpSalt = deployment.ecmpSalt;
  return journal.append(std::move(rec));
}

}  // namespace sdt::controller
