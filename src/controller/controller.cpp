#include "controller/controller.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "common/strings.hpp"
#include "controller/table_diff.hpp"
#include "partition/partitioner.hpp"
#include "routing/degraded.hpp"

namespace sdt::controller {

// Shared with crash recovery via controller/table_diff.hpp; doc comments
// live on the declarations there.
namespace detail {

Result<std::vector<std::vector<openflow::FlowEntry>>> compileFlowTables(
    const topo::Topology& topo, const projection::Projection& projection,
    const projection::Plant& plant, const routing::RoutingAlgorithm& routing,
    const DeployOptions& options, std::uint32_t epoch,
    const std::vector<char>* severedMask) {
  std::vector<std::vector<openflow::FlowEntry>> tables(
      static_cast<std::size_t>(plant.numSwitches()));
  const int vcs = routing.numVcs();

  // Connected-component labels: a deployment may hold several mutually
  // isolated topologies at once (§VI-B); no rule is emitted across islands,
  // so cross-island packets die on table miss — isolation by construction.
  // A degraded topology may also have split: components follow the
  // *surviving* links.
  std::vector<int> component(static_cast<std::size_t>(topo.numSwitches()), -1);
  if (severedMask == nullptr) {
    const topo::Graph g = topo.switchGraph();
    int label = 0;
    for (int start = 0; start < g.numVertices(); ++start) {
      if (component[start] != -1) continue;
      const auto dist = g.bfsDistances(start);
      for (int v = 0; v < g.numVertices(); ++v) {
        if (dist[v] >= 0) component[v] = label;
      }
      ++label;
    }
  } else {
    int label = 0;
    for (int start = 0; start < topo.numSwitches(); ++start) {
      if (component[start] != -1) continue;
      std::vector<int> frontier{start};
      component[start] = label;
      while (!frontier.empty()) {
        const int sw = frontier.back();
        frontier.pop_back();
        for (const int li : topo.linksOf(sw)) {
          if ((*severedMask)[li]) continue;
          const int peer = topo.link(li).peerOf(sw).sw;
          if (component[peer] == -1) {
            component[peer] = label;
            frontier.push_back(peer);
          }
        }
      }
      ++label;
    }
  }

  // Physical host port per host, for delivery rules.
  const auto hostPhys = [&](topo::HostId h) { return projection.hostPortOf(h); };

  // Every packet is matched by (ingress port, destination [, VC]); the
  // ingress port pins the packet to its sub-switch, which is what keeps two
  // co-resident topologies/sub-switches isolated (§VI-B).
  for (topo::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    const int physSw = projection.physSwitchOf(sw);
    // Ingress ports of this sub-switch: all mapped fabric ports + the host
    // ports of hosts attached to this logical switch.
    std::vector<std::pair<int, bool>> ingress;  // (physical port, isHostPort)
    for (topo::PortId lp = 0; lp < topo.radix(sw); ++lp) {
      const projection::PhysPort pp = projection.physOf(topo::SwitchPort{sw, lp});
      if (pp.valid()) ingress.emplace_back(pp.port, false);
    }
    for (const topo::HostId h : topo.hostsOf(sw)) {
      ingress.emplace_back(hostPhys(h).port, true);
    }

    for (topo::HostId dst = 0; dst < topo.numHosts(); ++dst) {
      if (component[topo.hostSwitch(dst)] != component[sw]) continue;
      const bool local = topo.hostSwitch(dst) == sw;
      for (int vc = 0; vc < vcs; ++vc) {
        routing::Hop hop{};
        int outPhysPort;
        if (local) {
          outPhysPort = hostPhys(dst).port;
          hop.vc = vc;
        } else {
          auto r = routing.nextHop(sw, dst, vc,
                                   static_cast<std::uint64_t>(dst) + options.ecmpSalt);
          if (!r) return r.error();
          hop = r.value();
          const projection::PhysPort pp =
              projection.physOf(topo::SwitchPort{sw, hop.outPort});
          if (!pp.valid()) {
            return makeError(strFormat("switch %d port %d not projected", sw, hop.outPort));
          }
          outPhysPort = pp.port;
        }
        for (const auto& [inPort, isHostPort] : ingress) {
          if (!local && inPort == outPhysPort) continue;  // never hairpin a fabric port
          if (local && inPort == outPhysPort) continue;   // host's own delivery port
          openflow::FlowEntry entry;
          entry.priority = 100;
          entry.match.inPort = inPort;
          entry.match.dstAddr = options.hostAddrBase + static_cast<std::uint32_t>(dst);
          // Host-injected packets always carry VC0, so the VC match is only
          // meaningful on fabric ingress; host ports get the vc==0 rule.
          if (vcs > 1) {
            if (isHostPort && vc != 0) continue;
            if (!isHostPort) entry.match.trafficClass = static_cast<std::uint8_t>(vc);
          }
          entry.cookie =
              openflow::makeCookie(epoch, static_cast<std::uint32_t>(sw) + 1);
          if (!local && hop.vc != vc) {
            entry.actions.push_back(openflow::Action::setVc(hop.vc));
          }
          entry.actions.push_back(openflow::Action::output(outPhysPort));
          tables[physSw].push_back(std::move(entry));
        }
      }
    }
  }
  return tables;
}

std::string ruleKey(const openflow::FlowEntry& e) {
  std::string key = strFormat("p%d c%u m", e.priority, openflow::cookieTag(e.cookie));
  key += e.match.describe();
  for (const openflow::Action& a : e.actions) {
    key += strFormat(" a%d:%d", static_cast<int>(a.type), a.arg);
  }
  return key;
}

TableDiff diffEntries(const std::vector<openflow::FlowEntry>& live,
                      const std::vector<openflow::FlowEntry>& desired) {
  TableDiff diff;
  std::map<std::string, int> want;
  for (const openflow::FlowEntry& e : desired) ++want[ruleKey(e)];
  for (const openflow::FlowEntry& e : live) {
    const auto it = want.find(ruleKey(e));
    if (it == want.end() || it->second == 0) {
      diff.toRemove.push_back(e);
    } else {
      --it->second;
    }
  }
  std::map<std::string, int> have;
  for (const openflow::FlowEntry& e : live) ++have[ruleKey(e)];
  for (const openflow::FlowEntry& e : desired) {
    const auto it = have.find(ruleKey(e));
    if (it != have.end() && it->second > 0) {
      --it->second;
    } else {
      diff.toAdd.push_back(&e);
    }
  }
  return diff;
}

}  // namespace detail

using detail::TableDiff;
using detail::compileFlowTables;
using detail::diffEntries;

namespace {

/// RAII root span for one controller operation. The controller's work is
/// instantaneous in simulated time, so the span starts at the obs clock's
/// reading and its phases advance only through the *modeled* durations the
/// op computes (reconfigTime, retry backoff); a destructor-time finish
/// stamps early error returns with outcome=error.
class ScopedOpSpan {
 public:
  ScopedOpSpan(const SdtController::ObsContext& obs, const char* name)
      : tracer_(obs.tracer), now_(obs.clock ? obs.clock() : 0) {
    if (tracer_ != nullptr) root_ = tracer_->begin(name, now_);
  }
  ScopedOpSpan(const ScopedOpSpan&) = delete;
  ScopedOpSpan& operator=(const ScopedOpSpan&) = delete;
  ~ScopedOpSpan() { finish("error"); }

  /// Close the current phase child and open `name`.
  void phase(const char* name) {
    if (tracer_ == nullptr) return;
    if (phase_ != obs::kNoSpan) tracer_->end(phase_, now_);
    phase_ = tracer_->begin(name, now_, root_);
  }
  /// Account modeled time to the currently open phase.
  void advance(TimeNs d) { now_ += d; }
  void annotate(const char* key, const std::string& value) {
    if (tracer_ != nullptr && root_ != obs::kNoSpan) {
      tracer_->annotate(root_, key, value);
    }
  }
  void finish(const char* outcome) {
    if (tracer_ == nullptr || root_ == obs::kNoSpan) return;
    if (phase_ != obs::kNoSpan) {
      tracer_->end(phase_, now_);
      phase_ = obs::kNoSpan;
    }
    tracer_->annotate(root_, "outcome", outcome);
    tracer_->end(root_, now_);
    root_ = obs::kNoSpan;
  }

 private:
  obs::Tracer* tracer_;
  TimeNs now_;
  obs::SpanId root_ = obs::kNoSpan;
  obs::SpanId phase_ = obs::kNoSpan;
};

}  // namespace

CheckReport SdtController::check(const std::vector<const topo::Topology*>& topologies,
                                 const DeployOptions& options) const {
  CheckReport report;
  report.ok = true;

  // Plant supply: the scarcest switch (or pair) bounds any projection.
  int minSelfSupply = plant_.numSwitches() > 0 ? plant_.switches[0].numPorts : 0;
  int minHostSupply = minSelfSupply;
  for (int sw = 0; sw < plant_.numSwitches(); ++sw) {
    minSelfSupply = std::min(minSelfSupply, static_cast<int>(plant_.selfLinksOf(sw).size()));
    minHostSupply = std::min(minHostSupply, static_cast<int>(plant_.hostPortsOf(sw).size()));
  }

  for (const topo::Topology* t : topologies) {
    auto proj = projection::LinkProjector::project(*t, plant_, options.projector);
    if (!proj) {
      report.ok = false;
      // Quantify the shortfall (§V-1: "inform the user of the necessary
      // link modification"): partition the topology the way planPlant does
      // and compare demand against the plant's reserves, naming the
      // offending topology. Falls back to the projector's error when the
      // demand analysis finds no concrete gap (e.g. partitioning failed).
      bool quantified = false;
      const int parts = std::min(plant_.numSwitches(), std::max(1, t->numSwitches()));
      std::vector<int> assignment(static_cast<std::size_t>(t->numSwitches()), 0);
      bool partitioned = true;
      if (parts > 1) {
        partition::PartitionOptions popt;
        popt.parts = parts;
        auto part = partition::partitionGraph(t->switchGraph(), popt);
        if (part) {
          assignment = std::move(part.value().assignment);
        } else {
          partitioned = false;
        }
      }
      if (partitioned) {
        std::vector<int> selfPer(static_cast<std::size_t>(parts), 0);
        std::map<std::pair<int, int>, int> interPer;
        for (const topo::Link& link : t->links()) {
          const int pa = assignment[link.a.sw];
          const int pb = assignment[link.b.sw];
          if (pa == pb) {
            ++selfPer[pa];
          } else {
            ++interPer[std::minmax(pa, pb)];
          }
        }
        std::vector<int> hostsPer(static_cast<std::size_t>(parts), 0);
        for (topo::HostId h = 0; h < t->numHosts(); ++h) {
          ++hostsPer[assignment[t->hostSwitch(h)]];
        }
        const int needSelf = *std::max_element(selfPer.begin(), selfPer.end());
        const int needHosts = *std::max_element(hostsPer.begin(), hostsPer.end());
        if (needSelf > minSelfSupply) {
          report.problems.push_back(
              strFormat("topo '%s': needs %d self-links/switch, plant has %d",
                        t->name().c_str(), needSelf, minSelfSupply));
          quantified = true;
        }
        for (const auto& [pair, count] : interPer) {
          const int supply =
              static_cast<int>(plant_.interLinksBetween(pair.first, pair.second).size());
          if (count > supply) {
            report.problems.push_back(strFormat(
                "topo '%s': needs %d inter-switch links between switches %d-%d, "
                "plant has %d",
                t->name().c_str(), count, pair.first, pair.second, supply));
            quantified = true;
          }
        }
        if (needHosts > minHostSupply) {
          report.problems.push_back(
              strFormat("topo '%s': needs %d host ports/switch, plant has %d",
                        t->name().c_str(), needHosts, minHostSupply));
          quantified = true;
        }
      }
      if (!quantified) {
        report.problems.push_back(
            strFormat("topo '%s': %s", t->name().c_str(), proj.error().message.c_str()));
      }
      continue;
    }
    const projection::Projection& p = proj.value();
    // Demand accounting for the report (max over topologies, §IV-B: reserve
    // the maximum inter-switch links among all topologies).
    std::map<std::pair<int, int>, int> interPerPair;
    std::vector<int> selfPerSwitch(static_cast<std::size_t>(plant_.numSwitches()), 0);
    for (const projection::RealizedLink& rl : p.realizedLinks()) {
      const projection::PhysLink& l =
          rl.optical ? p.opticalCircuits()[rl.physLink]
                     : (rl.interSwitch ? plant_.interLinks[rl.physLink]
                                       : plant_.selfLinks[rl.physLink]);
      if (rl.interSwitch) {
        const auto key = std::minmax(l.a.sw, l.b.sw);
        ++interPerPair[{key.first, key.second}];
      } else {
        ++selfPerSwitch[l.a.sw];
      }
    }
    std::vector<int> hostsPerSwitch(static_cast<std::size_t>(plant_.numSwitches()), 0);
    for (topo::HostId h = 0; h < t->numHosts(); ++h) {
      ++hostsPerSwitch[p.hostPortOf(h).sw];
    }
    for (const auto& [pair, count] : interPerPair) {
      (void)pair;
      report.maxInterLinksPerPair = std::max(report.maxInterLinksPerPair, count);
    }
    for (const int c : selfPerSwitch) {
      report.maxSelfLinksPerSwitch = std::max(report.maxSelfLinksPerSwitch, c);
    }
    for (const int c : hostsPerSwitch) {
      report.maxHostPortsPerSwitch = std::max(report.maxHostPortsPerSwitch, c);
    }
    // Flow-table demand (§VII-C). Matches compileFlowTables exactly at one
    // VC — (ingress ports - 1) entries per reachable destination — and is a
    // lower bound for multi-VC strategies.
    std::vector<int> component(static_cast<std::size_t>(t->numSwitches()), -1);
    {
      const topo::Graph g = t->switchGraph();
      int label = 0;
      for (int start = 0; start < g.numVertices(); ++start) {
        if (component[start] != -1) continue;
        const auto dist = g.bfsDistances(start);
        for (int v = 0; v < g.numVertices(); ++v) {
          if (dist[v] >= 0) component[v] = label;
        }
        ++label;
      }
    }
    std::map<int, int> hostsInComponent;
    for (topo::HostId h = 0; h < t->numHosts(); ++h) {
      ++hostsInComponent[component[t->hostSwitch(h)]];
    }
    std::vector<int> entriesPerPhys(static_cast<std::size_t>(plant_.numSwitches()), 0);
    for (topo::SwitchId sw = 0; sw < t->numSwitches(); ++sw) {
      int ingress = static_cast<int>(t->hostsOf(sw).size());
      for (topo::PortId lp = 0; lp < t->radix(sw); ++lp) {
        if (p.physOf(topo::SwitchPort{sw, lp}).valid()) ++ingress;
      }
      const int dsts = hostsInComponent[component[sw]];
      if (ingress > 1 && dsts > 0) {
        entriesPerPhys[p.physSwitchOf(sw)] += (ingress - 1) * dsts;
      }
    }
    for (int psw = 0; psw < plant_.numSwitches(); ++psw) {
      report.maxFlowEntriesPerSwitch =
          std::max(report.maxFlowEntriesPerSwitch, entriesPerPhys[psw]);
      const auto capacity = plant_.switches[psw].flowTableCapacity;
      if (static_cast<std::size_t>(entriesPerPhys[psw]) > capacity) {
        report.ok = false;
        report.problems.push_back(strFormat(
            "topo '%s': needs >=%d flow entries on physical switch %d, '%s' holds %zu",
            t->name().c_str(), entriesPerPhys[psw], psw,
            plant_.switches[psw].model.c_str(), capacity));
      }
    }
  }
  return report;
}

Result<Deployment> SdtController::deploy(const topo::Topology& topo,
                                         const routing::RoutingAlgorithm& routing,
                                         const DeployOptions& options) const {
  ScopedOpSpan span(obs_, "deploy");
  span.annotate("topology", topo.name());
  span.annotate("routing", routing.name());
  if (options.requireDeadlockFree) {
    span.phase("deploy.deadlock_check");
    const routing::DeadlockReport dl = routing::analyzeDeadlock(topo, routing);
    if (!dl.error.empty()) {
      return makeError("deadlock analysis failed: " + dl.error);
    }
    if (!dl.deadlockFree) {
      return makeError(strFormat(
          "routing '%s' on '%s' has a channel-dependency cycle (%zu channels); "
          "refusing to deploy on a lossless fabric",
          routing.name().c_str(), topo.name().c_str(), dl.cycle.size()));
    }
  }
  span.phase("deploy.project");
  auto proj = projection::LinkProjector::project(topo, plant_, options.projector);
  if (!proj) return proj.error();

  Deployment deployment;  // epoch defaults to 1: the first configuration
  // Tenant slices start at scoped epoch (tenant, 1); tenant 0 decodes to the
  // legacy epoch 1, so single-tenant deployments are unchanged.
  deployment.epoch = openflow::makeScopedEpoch(options.tenant, 1);
  span.phase("deploy.compile");
  auto tables =
      compileFlowTables(topo, proj.value(), plant_, routing, options, deployment.epoch);
  if (!tables) return tables.error();

  span.phase("deploy.install");
  deployment.projection = std::move(proj).value();
  for (int psw = 0; psw < plant_.numSwitches(); ++psw) {
    const projection::PhysicalSwitchSpec& spec = plant_.switches[psw];
    const auto& entries = tables.value()[psw];
    if (entries.size() > spec.flowTableCapacity) {
      return makeError(strFormat(
          "physical switch %d needs %zu flow entries but '%s' holds %zu "
          "(split the topology over more switches or merge entries, §VII-C)",
          psw, entries.size(), spec.model.c_str(), spec.flowTableCapacity));
    }
    auto ofs = std::make_shared<openflow::Switch>(psw, spec.numPorts,
                                                  spec.flowTableCapacity);
    for (const openflow::FlowEntry& e : entries) {
      if (auto s = ofs->table().add(e); !s) return s.error();
    }
    ofs->setIngressEpoch(deployment.epoch);
    deployment.totalFlowEntries += static_cast<int>(entries.size());
    deployment.maxEntriesPerSwitch =
        std::max(deployment.maxEntriesPerSwitch, static_cast<int>(entries.size()));
    deployment.switches.push_back(std::move(ofs));
  }
  deployment.reconfigTime =
      projection::reconfigTime(projection::TpMethod::kSDT, deployment.totalFlowEntries);
  deployment.topology = topo.name();
  deployment.routing = routing.name();
  deployment.ecmpSalt = options.ecmpSalt;
  span.advance(deployment.reconfigTime);  // install covers the modeled time
  span.annotate("rules", std::to_string(deployment.totalFlowEntries));
  span.finish("ok");
  return deployment;
}

Result<Deployment> SdtController::reconfigure(const Deployment& previous,
                                              const topo::Topology& next,
                                              const routing::RoutingAlgorithm& routing,
                                              const DeployOptions& options) const {
  ScopedOpSpan span(obs_, "reconfigure_offline");
  span.annotate("topology", next.name());
  span.phase("reconfigure_offline.compile");
  auto deployment = deploy(next, routing, options);
  if (!deployment) return deployment;
  // Incremental install: per switch, only the multiset difference between
  // the previous live table and the recompiled one costs flow-mods. The
  // per-entry flow-mod cost stays the dominant reconfiguration term (Table
  // II), so shrinking the mod count is exactly what shrinks the downtime.
  span.phase("reconfigure_offline.diff");
  int mods = 0;
  for (int psw = 0; psw < plant_.numSwitches(); ++psw) {
    const TableDiff diff =
        diffEntries(previous.switches[psw]->table().entries(),
                    deployment.value().switches[psw]->table().entries());
    mods += static_cast<int>(diff.toRemove.size() + diff.toAdd.size());
  }
  deployment.value().reconfigFlowMods = mods;
  deployment.value().reconfigTime =
      projection::reconfigTime(projection::TpMethod::kSDT, mods);
  span.phase("reconfigure_offline.install");
  span.advance(deployment.value().reconfigTime);
  span.annotate("flow_mods", std::to_string(mods));
  span.finish("ok");
  return deployment;
}

Result<UpdatePlan> SdtController::planUpdate(const Deployment& current,
                                             const topo::Topology& next,
                                             const routing::RoutingAlgorithm& routing,
                                             const DeployOptions& options) const {
  ScopedOpSpan span(obs_, "plan_update");
  span.annotate("topology", next.name());
  if (options.requireDeadlockFree) {
    span.phase("plan_update.deadlock_check");
    const routing::DeadlockReport dl = routing::analyzeDeadlock(next, routing);
    if (!dl.error.empty()) {
      return makeError("deadlock analysis failed: " + dl.error);
    }
    if (!dl.deadlockFree) {
      return makeError(strFormat(
          "routing '%s' on '%s' has a channel-dependency cycle; refusing a "
          "live update on a lossless fabric",
          routing.name().c_str(), next.name().c_str()));
    }
  }
  span.phase("plan_update.project");
  auto proj = projection::LinkProjector::project(next, plant_, options.projector);
  if (!proj) return proj.error();

  // Host-port stability: fabric links can move between fixed cables because
  // the spares are already wired, but a host NIC sits on one physical port —
  // a plan that moves it would need a human with a cable mid-update.
  for (topo::HostId h = 0; h < next.numHosts(); ++h) {
    const projection::PhysPort was = current.projection.hostPortOf(h);
    const projection::PhysPort now = proj.value().hostPortOf(h);
    if (!(was == now)) {
      return makeError(strFormat(
          "live update would move host %d from physical port %d/%d to %d/%d; "
          "host NICs cannot be recabled mid-run",
          h, was.sw, was.port, now.sw, now.port));
    }
  }

  // Scoped epochs advance within the tenant's 16-bit local space; rolling
  // over into the next tenant's namespace would be catastrophic, so refuse.
  if (openflow::epochLocal(current.epoch) == 0xFFFF) {
    return makeError(strFormat(
        "tenant %u exhausted its local epoch space (65535 reconfigurations)",
        openflow::epochTenant(current.epoch)));
  }
  UpdatePlan plan;
  plan.fromEpoch = current.epoch;
  plan.toEpoch = current.epoch + 1;
  span.phase("plan_update.compile");
  auto tables =
      compileFlowTables(next, proj.value(), plant_, routing, options, plan.toEpoch);
  if (!tables) return tables.error();
  span.phase("plan_update.capacity_check");

  // Two-version capacity: during the update window each switch holds its
  // full live table *plus* the full next-epoch set (§VII-C is the binding
  // constraint doubled). Checked here so capacity can never abort an
  // in-flight transaction.
  for (int psw = 0; psw < plant_.numSwitches(); ++psw) {
    const std::size_t live = current.switches[psw]->table().size();
    const std::size_t add = tables.value()[psw].size();
    const std::size_t capacity = plant_.switches[psw].flowTableCapacity;
    if (live + add > capacity) {
      return makeError(strFormat(
          "two-phase update needs %zu + %zu flow entries on physical switch "
          "%d during the window, '%s' holds %zu",
          live, add, psw, plant_.switches[psw].model.c_str(), capacity));
    }
    plan.totalEntries += static_cast<int>(add);
  }
  plan.projection = std::move(proj).value();
  plan.tables = std::move(tables).value();
  plan.topology = next.name();
  plan.routing = routing.name();
  plan.ecmpSalt = options.ecmpSalt;
  span.annotate("rules", std::to_string(plan.totalEntries));
  span.annotate("to_epoch", std::to_string(plan.toEpoch));
  span.finish("ok");
  return plan;
}

Result<RepairReport> SdtController::repair(Deployment& deployment,
                                           const topo::Topology& topo,
                                           const routing::RoutingAlgorithm& routing,
                                           const FailureSet& failures,
                                           const RepairOptions& options) const {
  ScopedOpSpan span(obs_, "repair");
  span.annotate("failed_ports", std::to_string(failures.ports.size()));
  span.annotate("crashed_switches", std::to_string(failures.crashedSwitches.size()));
  span.phase("repair.reproject");
  RepairReport report;
  projection::Projection& proj = deployment.projection;
  const int oldTotal = deployment.totalFlowEntries;
  const std::set<projection::PhysPort> failed(failures.ports.begin(), failures.ports.end());
  const auto healthy = [&](const projection::PhysLink& l) {
    return failed.count(l.a) == 0 && failed.count(l.b) == 0;
  };

  // Fixed physical links already carrying a logical link are not spares.
  std::vector<char> selfUsed(plant_.selfLinks.size(), 0);
  std::vector<char> interUsed(plant_.interLinks.size(), 0);
  for (const projection::RealizedLink& rl : proj.realizedLinks()) {
    if (rl.optical) continue;
    (rl.interSwitch ? interUsed : selfUsed)[static_cast<std::size_t>(rl.physLink)] = 1;
  }

  // Phase 1 — re-projection. For every logical link riding a failed port,
  // find a spare healthy physical link of the same kind joining the same
  // physical switch (pair) and move the logical endpoints onto it. The spare
  // cable is already installed and already wired into the data plane; only
  // flow entries change (the SDT claim, applied to failure recovery).
  std::vector<int> severedIds;
  const auto& realized = proj.realizedLinks();
  for (int i = 0; i < static_cast<int>(realized.size()); ++i) {
    const projection::RealizedLink rl = realized[i];
    const projection::PhysLink phys =
        rl.optical ? proj.opticalCircuits()[rl.physLink]
                   : (rl.interSwitch ? plant_.interLinks[rl.physLink]
                                     : plant_.selfLinks[rl.physLink]);
    if (healthy(phys)) continue;
    const topo::Link& logical = topo.link(rl.logicalLink);
    int spare = -1;
    // Optical circuits are torn down with their failure (re-pairing flex
    // ports mid-run would need an OCS reconfiguration pass; out of scope),
    // so they only heal by severing + rerouting.
    if (!rl.optical) {
      const auto candidates = rl.interSwitch
                                  ? plant_.interLinksBetween(phys.a.sw, phys.b.sw)
                                  : plant_.selfLinksOf(phys.a.sw);
      auto& used = rl.interSwitch ? interUsed : selfUsed;
      for (const int c : candidates) {
        const projection::PhysLink& cand =
            rl.interSwitch ? plant_.interLinks[c] : plant_.selfLinks[c];
        if (!used[static_cast<std::size_t>(c)] && healthy(cand)) {
          spare = c;
          break;
        }
      }
    }
    if (spare < 0) {
      severedIds.push_back(rl.logicalLink);
      report.severedLinks.push_back(SeveredLink{rl.logicalLink, logical.a, logical.b});
      continue;
    }
    const projection::PhysLink& sp =
        rl.interSwitch ? plant_.interLinks[spare] : plant_.selfLinks[spare];
    projection::PhysPort na = sp.a;
    projection::PhysPort nb = sp.b;
    // Inter-switch: keep each logical endpoint on its own physical switch.
    if (rl.interSwitch && proj.physSwitchOf(logical.a.sw) != sp.a.sw) std::swap(na, nb);
    proj.mapPort(logical.a, na);
    proj.mapPort(logical.b, nb);
    proj.rerealizeLink(i, spare);
    (rl.interSwitch ? interUsed : selfUsed)[static_cast<std::size_t>(spare)] = 1;
    ++report.remappedLinks;
  }
  report.degraded = !severedIds.empty();

  span.phase("repair.reroute");
  // Phase 2 — routing on what survives. With every link re-projected the
  // original routing still holds (the logical topology is intact); severed
  // links force a detour-routing recompute and may split the fabric.
  std::unique_ptr<routing::DegradedRouting> degradedRouting;
  const routing::RoutingAlgorithm* effective = &routing;
  std::vector<char> severedMask;
  if (report.degraded) {
    degradedRouting = std::make_unique<routing::DegradedRouting>(topo, severedIds,
                                                                 routing.numVcs());
    effective = degradedRouting.get();
    severedMask.assign(topo.links().size(), 0);
    for (const int li : severedIds) severedMask[static_cast<std::size_t>(li)] = 1;
    for (topo::HostId src = 0; src < topo.numHosts(); ++src) {
      for (topo::HostId dst = src + 1; dst < topo.numHosts(); ++dst) {
        if (topo.hostSwitch(src) == topo.hostSwitch(dst)) continue;
        if (!degradedRouting->reachable(topo.hostSwitch(src), dst)) {
          report.unreachablePairs.emplace_back(src, dst);
        }
      }
    }
  }

  auto tables = compileFlowTables(topo, proj, plant_, *effective, options.deploy,
                                  deployment.epoch,
                                  report.degraded ? &severedMask : nullptr);
  if (!tables) return tables.error();

  // Phase 3 — incremental install: per switch, a multiset diff of the live
  // table against the recompiled one, applied as strict-delete + add
  // flow-mods over the (possibly flaky) control channel. A crashed switch's
  // live table is empty, so the diff reinstalls its exact fresh set.
  span.phase("repair.install");
  // Tenant containment: a scoped deployment (epoch carries a tenant id) may
  // only ever touch its own rules on the shared switches — crash cleanup and
  // the live-side of the diff are filtered to the tenant's cookie namespace.
  const std::uint16_t tenant = openflow::epochTenant(deployment.epoch);
  for (const int psw : failures.crashedSwitches) {
    if (tenant != 0) {
      deployment.switches[psw]->table().removeByTenant(tenant);
    } else {
      deployment.switches[psw]->table().clear();
    }
  }
  int newTotal = 0;
  std::uint64_t stream = 0;
  retry::RetryCounters retryCounters;
  for (int psw = 0; psw < plant_.numSwitches(); ++psw) {
    openflow::FlowTable& live = deployment.switches[psw]->table();
    const std::vector<openflow::FlowEntry>& desired = tables.value()[psw];
    newTotal += static_cast<int>(desired.size());

    std::vector<openflow::FlowEntry> ownedLive;
    if (tenant != 0) {
      for (const openflow::FlowEntry& e : live.entries()) {
        if (openflow::cookieTenant(e.cookie) == tenant) ownedLive.push_back(e);
      }
    }
    const TableDiff diff =
        diffEntries(tenant != 0 ? ownedLive : live.entries(), desired);

    const auto install = [&](const char* what) -> Status<Error> {
      const auto attempt = [&](int n) {
        return options.controlChannel ? options.controlChannel(n) : true;
      };
      const retry::RetryResult rr =
          retry::retryWithBackoff(options.retry, stream++, attempt, &retryCounters);
      report.installRetries += rr.attempts - 1;
      report.retryBackoffTime += rr.elapsed;
      if (!rr.succeeded) {
        return makeError(strFormat(
            "repair: switch %d unreachable over control channel (%s flow-mod "
            "failed after %d attempts)",
            psw, what, rr.attempts));
      }
      return {};
    };
    for (const openflow::FlowEntry& e : diff.toRemove) {
      if (auto s = install("strict-delete"); !s) return s.error();
      live.removeExact(e);
    }
    for (const openflow::FlowEntry* e : diff.toAdd) {
      if (auto s = install("add"); !s) return s.error();
      openflow::FlowEntry fresh = *e;
      fresh.packetCount = 0;
      fresh.byteCount = 0;
      if (auto s = live.add(std::move(fresh)); !s) return s.error();
    }
    report.flowModsRemoved += static_cast<int>(diff.toRemove.size());
    report.flowModsAdded += static_cast<int>(diff.toAdd.size());
  }

  deployment.totalFlowEntries = 0;
  deployment.maxEntriesPerSwitch = 0;
  for (const auto& ofs : deployment.switches) {
    const int n = static_cast<int>(tenant != 0 ? ofs->table().countTenant(tenant)
                                               : ofs->table().size());
    deployment.totalFlowEntries += n;
    deployment.maxEntriesPerSwitch = std::max(deployment.maxEntriesPerSwitch, n);
  }
  report.fullRedeployFlowMods = oldTotal + newTotal;
  report.repairTime =
      projection::reconfigTime(projection::TpMethod::kSDT, report.flowMods()) +
      report.retryBackoffTime;
  if (obs_.metrics != nullptr && retryCounters.retries > 0) {
    obs_.metrics
        ->counter("sdt_controller_retry_attempts_total",
                  {{"op", "repair"}, {"phase", "install"}},
                  "Control-channel resends beyond the first attempt")
        .inc(retryCounters.retries);
  }
  span.advance(report.repairTime);  // install covers the modeled repair time

  // Phase 4 — deadlock re-check on the degraded topology. Advisory: a
  // detour-induced CDG cycle is reported, not fatal (see RepairReport).
  if (report.degraded && options.deploy.requireDeadlockFree) {
    span.phase("repair.deadlock_check");
    report.deadlockChecked = true;
    const routing::DeadlockReport dl = routing::analyzeDeadlock(topo, *degradedRouting);
    report.deadlockFree = dl.error.empty() && dl.deadlockFree;
  }
  span.annotate("remapped_links", std::to_string(report.remappedLinks));
  span.annotate("severed_links", std::to_string(report.severedLinks.size()));
  span.annotate("flow_mods", std::to_string(report.flowMods()));
  span.finish(report.degraded ? "degraded" : "ok");
  return report;
}

StatusOr SdtController::distributeAdmissionPolicy(
    admission::AdmissionController& target, const admission::Policy& policy) const {
  ScopedOpSpan span(obs_, "distribute_admission_policy");
  span.phase("admission.validate");
  if (const StatusOr valid = policy.validate(); !valid.ok()) {
    span.finish("invalid");
    return valid;
  }
  span.phase("admission.install");
  target.setPolicy(policy);
  if (obs_.metrics != nullptr) {
    obs_.metrics
        ->counter("sdt_controller_admission_policy_total", {{"op", "distribute"}},
                  "Admission policies validated and pushed to the fabric edge")
        .inc();
  }
  span.annotate("enabled", policy.enabled ? "true" : "false");
  span.finish("ok");
  return StatusOr::okStatus();
}

}  // namespace sdt::controller
