#include "controller/controller.hpp"

#include <algorithm>
#include <map>

#include "common/strings.hpp"
#include "partition/partitioner.hpp"

namespace sdt::controller {

namespace {

/// Compile the routing strategy for one deployment into flow entries.
/// Returns the per-physical-switch entry lists, or an error when the
/// strategy fails on some (switch, destination, vc) state.
Result<std::vector<std::vector<openflow::FlowEntry>>> compileFlowTables(
    const topo::Topology& topo, const projection::Projection& projection,
    const projection::Plant& plant, const routing::RoutingAlgorithm& routing,
    const DeployOptions& options) {
  std::vector<std::vector<openflow::FlowEntry>> tables(
      static_cast<std::size_t>(plant.numSwitches()));
  const int vcs = routing.numVcs();

  // Connected-component labels: a deployment may hold several mutually
  // isolated topologies at once (§VI-B); no rule is emitted across islands,
  // so cross-island packets die on table miss — isolation by construction.
  std::vector<int> component(static_cast<std::size_t>(topo.numSwitches()), -1);
  {
    const topo::Graph g = topo.switchGraph();
    int label = 0;
    for (int start = 0; start < g.numVertices(); ++start) {
      if (component[start] != -1) continue;
      const auto dist = g.bfsDistances(start);
      for (int v = 0; v < g.numVertices(); ++v) {
        if (dist[v] >= 0) component[v] = label;
      }
      ++label;
    }
  }

  // Physical host port per host, for delivery rules.
  const auto hostPhys = [&](topo::HostId h) { return projection.hostPortOf(h); };

  // Every packet is matched by (ingress port, destination [, VC]); the
  // ingress port pins the packet to its sub-switch, which is what keeps two
  // co-resident topologies/sub-switches isolated (§VI-B).
  for (topo::SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    const int physSw = projection.physSwitchOf(sw);
    // Ingress ports of this sub-switch: all mapped fabric ports + the host
    // ports of hosts attached to this logical switch.
    std::vector<std::pair<int, bool>> ingress;  // (physical port, isHostPort)
    for (topo::PortId lp = 0; lp < topo.radix(sw); ++lp) {
      const projection::PhysPort pp = projection.physOf(topo::SwitchPort{sw, lp});
      if (pp.valid()) ingress.emplace_back(pp.port, false);
    }
    for (const topo::HostId h : topo.hostsOf(sw)) {
      ingress.emplace_back(hostPhys(h).port, true);
    }

    for (topo::HostId dst = 0; dst < topo.numHosts(); ++dst) {
      if (component[topo.hostSwitch(dst)] != component[sw]) continue;
      const bool local = topo.hostSwitch(dst) == sw;
      for (int vc = 0; vc < vcs; ++vc) {
        routing::Hop hop{};
        int outPhysPort;
        if (local) {
          outPhysPort = hostPhys(dst).port;
          hop.vc = vc;
        } else {
          auto r = routing.nextHop(sw, dst, vc,
                                   static_cast<std::uint64_t>(dst) + options.ecmpSalt);
          if (!r) return r.error();
          hop = r.value();
          const projection::PhysPort pp =
              projection.physOf(topo::SwitchPort{sw, hop.outPort});
          if (!pp.valid()) {
            return makeError(strFormat("switch %d port %d not projected", sw, hop.outPort));
          }
          outPhysPort = pp.port;
        }
        for (const auto& [inPort, isHostPort] : ingress) {
          if (!local && inPort == outPhysPort) continue;  // never hairpin a fabric port
          if (local && inPort == outPhysPort) continue;   // host's own delivery port
          openflow::FlowEntry entry;
          entry.priority = 100;
          entry.match.inPort = inPort;
          entry.match.dstAddr = static_cast<std::uint32_t>(dst);
          // Host-injected packets always carry VC0, so the VC match is only
          // meaningful on fabric ingress; host ports get the vc==0 rule.
          if (vcs > 1) {
            if (isHostPort && vc != 0) continue;
            if (!isHostPort) entry.match.trafficClass = static_cast<std::uint8_t>(vc);
          }
          entry.cookie = static_cast<std::uint64_t>(sw) + 1;
          if (!local && hop.vc != vc) {
            entry.actions.push_back(openflow::Action::setVc(hop.vc));
          }
          entry.actions.push_back(openflow::Action::output(outPhysPort));
          tables[physSw].push_back(std::move(entry));
        }
      }
    }
  }
  return tables;
}

}  // namespace

CheckReport SdtController::check(const std::vector<const topo::Topology*>& topologies,
                                 const DeployOptions& options) const {
  CheckReport report;
  report.ok = true;
  for (const topo::Topology* t : topologies) {
    auto proj = projection::LinkProjector::project(*t, plant_, options.projector);
    if (!proj) {
      report.ok = false;
      report.problems.push_back(
          strFormat("'%s': %s", t->name().c_str(), proj.error().message.c_str()));
      continue;
    }
    const projection::Projection& p = proj.value();
    // Demand accounting for the report (max over topologies, §IV-B: reserve
    // the maximum inter-switch links among all topologies).
    std::map<std::pair<int, int>, int> interPerPair;
    std::vector<int> selfPerSwitch(static_cast<std::size_t>(plant_.numSwitches()), 0);
    for (const projection::RealizedLink& rl : p.realizedLinks()) {
      const projection::PhysLink& l =
          rl.optical ? p.opticalCircuits()[rl.physLink]
                     : (rl.interSwitch ? plant_.interLinks[rl.physLink]
                                       : plant_.selfLinks[rl.physLink]);
      if (rl.interSwitch) {
        const auto key = std::minmax(l.a.sw, l.b.sw);
        ++interPerPair[{key.first, key.second}];
      } else {
        ++selfPerSwitch[l.a.sw];
      }
    }
    std::vector<int> hostsPerSwitch(static_cast<std::size_t>(plant_.numSwitches()), 0);
    for (topo::HostId h = 0; h < t->numHosts(); ++h) {
      ++hostsPerSwitch[p.hostPortOf(h).sw];
    }
    for (const auto& [pair, count] : interPerPair) {
      (void)pair;
      report.maxInterLinksPerPair = std::max(report.maxInterLinksPerPair, count);
    }
    for (const int c : selfPerSwitch) {
      report.maxSelfLinksPerSwitch = std::max(report.maxSelfLinksPerSwitch, c);
    }
    for (const int c : hostsPerSwitch) {
      report.maxHostPortsPerSwitch = std::max(report.maxHostPortsPerSwitch, c);
    }
  }
  return report;
}

Result<Deployment> SdtController::deploy(const topo::Topology& topo,
                                         const routing::RoutingAlgorithm& routing,
                                         const DeployOptions& options) const {
  if (options.requireDeadlockFree) {
    const routing::DeadlockReport dl = routing::analyzeDeadlock(topo, routing);
    if (!dl.error.empty()) {
      return makeError("deadlock analysis failed: " + dl.error);
    }
    if (!dl.deadlockFree) {
      return makeError(strFormat(
          "routing '%s' on '%s' has a channel-dependency cycle (%zu channels); "
          "refusing to deploy on a lossless fabric",
          routing.name().c_str(), topo.name().c_str(), dl.cycle.size()));
    }
  }
  auto proj = projection::LinkProjector::project(topo, plant_, options.projector);
  if (!proj) return proj.error();

  auto tables = compileFlowTables(topo, proj.value(), plant_, routing, options);
  if (!tables) return tables.error();

  Deployment deployment;
  deployment.projection = std::move(proj).value();
  for (int psw = 0; psw < plant_.numSwitches(); ++psw) {
    const projection::PhysicalSwitchSpec& spec = plant_.switches[psw];
    const auto& entries = tables.value()[psw];
    if (entries.size() > spec.flowTableCapacity) {
      return makeError(strFormat(
          "physical switch %d needs %zu flow entries but '%s' holds %zu "
          "(split the topology over more switches or merge entries, §VII-C)",
          psw, entries.size(), spec.model.c_str(), spec.flowTableCapacity));
    }
    auto ofs = std::make_shared<openflow::Switch>(psw, spec.numPorts,
                                                  spec.flowTableCapacity);
    for (const openflow::FlowEntry& e : entries) {
      if (auto s = ofs->table().add(e); !s) return s.error();
    }
    deployment.totalFlowEntries += static_cast<int>(entries.size());
    deployment.maxEntriesPerSwitch =
        std::max(deployment.maxEntriesPerSwitch, static_cast<int>(entries.size()));
    deployment.switches.push_back(std::move(ofs));
  }
  deployment.reconfigTime =
      projection::reconfigTime(projection::TpMethod::kSDT, deployment.totalFlowEntries);
  return deployment;
}

Result<Deployment> SdtController::reconfigure(const Deployment& previous,
                                              const topo::Topology& next,
                                              const routing::RoutingAlgorithm& routing,
                                              const DeployOptions& options) const {
  auto deployment = deploy(next, routing, options);
  if (!deployment) return deployment;
  // Tear-down of the previous tables is batched with the install; the
  // dominant term stays per-entry flow-mod cost.
  deployment.value().reconfigTime = projection::reconfigTime(
      projection::TpMethod::kSDT,
      previous.totalFlowEntries + deployment.value().totalFlowEntries);
  return deployment;
}

}  // namespace sdt::controller
