#include "controller/ha.hpp"

#include <algorithm>
#include <utility>

#include "controller/monitor.hpp"

namespace sdt::controller {

ReplicatedController::ReplicatedController(sim::Simulator& sim,
                                           SdtController& ctl,
                                           sim::ControlChannel& fabric,
                                           sim::ControlChannel& replication,
                                           int numReplicas, HaConfig config)
    : sim_(&sim),
      ctl_(&ctl),
      fabric_(&fabric),
      repl_(&replication),
      config_(config) {
  if (numReplicas < 1) numReplicas = 1;
  // A non-positive ack window would make pumpStream's in-flight test always
  // true and silently disable streaming; the queue cap below the window
  // would drop every backlog before it could drain.
  if (config_.ackWindow < 1) config_.ackWindow = 1;
  if (config_.sendQueueCap < config_.ackWindow) {
    config_.sendQueueCap = config_.ackWindow;
  }
  replicas_.reserve(static_cast<std::size_t>(numReplicas));
  for (int id = 0; id < numReplicas; ++id) {
    auto r = std::make_unique<Replica>();
    r->id = id;
    r->journal = std::make_unique<Journal>(r->storage);
    // Every replica's journal streams when (and only when) that replica is
    // the leader: the observer is wired once and gates on the live role, so
    // leadership changes never re-point anything. A deposed-but-alive leader
    // that keeps journaling still streams — standbys drop its stale-term
    // frames, exactly like the switches fence its flow-mods.
    r->journal->setAppendObserver(
        [this, tok = alive_, id](const JournalRecord& rec) {
          if (!*tok) return;
          onLeaderAppend(id, rec);
        });
    replicas_.push_back(std::move(r));
  }
  rep(0).leader = true;
  rep(0).term = 1;
  term_ = 1;
  leaderId_ = 0;
}

ReplicatedController::~ReplicatedController() {
  *alive_ = false;  // scheduled callbacks drained after this point no-op
  stopped_ = true;
}

int ReplicatedController::rankOf(int id) const {
  int rank = 0;
  for (const auto& r : replicas_) {
    if (r->id == id) break;
    if (r->alive && !r->leader) ++rank;
  }
  return rank;
}

Journal& ReplicatedController::leaderJournal() { return *rep(leaderId_).journal; }

Journal& ReplicatedController::journalOf(int replica) {
  return *rep(replica).journal;
}

MemoryJournalStorage& ReplicatedController::storageOf(int replica) {
  return rep(replica).storage;
}

std::uint64_t ReplicatedController::termOf(int replica) const {
  return rep(replica).term;
}

bool ReplicatedController::isLeader(int replica) const {
  return rep(replica).leader && rep(replica).alive;
}

ReplicaStatus ReplicatedController::status(int replica) const {
  const Replica& r = rep(replica);
  ReplicaStatus st;
  st.id = r.id;
  st.alive = r.alive;
  st.isLeader = r.leader;
  st.term = r.term;
  st.lastAppliedSeq = r.journal->nextSeq() - 1;
  st.framesReceived = r.framesReceived;
  st.framesOutOfOrder = r.framesOutOfOrder;
  st.gapCatchups = r.gapCatchups;
  st.snapshotsInstalled = r.snapshotsInstalled;
  st.sendQueueDepth = r.sendQueue.size();
  st.queueOverflows = r.queueOverflows;
  return st;
}

std::uint64_t ReplicatedController::fencedWritesTotal() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) total += sw->fencedWrites();
  return total;
}

void ReplicatedController::setMonitor(NetworkMonitor* monitor) {
  monitor_ = monitor;
  if (monitor_ == nullptr) return;
  monitor_->onPortFailure(
      [this](const PortFailure& f) { routePortFailure(f); });
  monitor_->setEpochProvider([this]() { return deployment_.epoch; });
}

void ReplicatedController::routePortFailure(const PortFailure& failure) {
  // Exactly-once routing: the monitor fires once per port; the HA layer
  // either forwards immediately (steady state) or parks the event until the
  // new leader owns a converged fabric. The takeover window runs from the
  // moment the leader dies (nobody owns the event yet) until the successor's
  // recovery converges. Failures surfacing inside it are real — detection
  // ran against the old configuration — so they are never dropped, only
  // deferred, detection-time epoch intact.
  if (takeoverInProgress_ || !rep(leaderId_).alive) {
    pendingFailures_.push_back(failure);
    return;
  }
  if (failureHandler_) failureHandler_(failure);
}

int ReplicatedController::drainPendingFailures() {
  std::vector<PortFailure> parked;
  parked.swap(pendingFailures_);
  if (failureHandler_) {
    for (const PortFailure& f : parked) failureHandler_(f);
  }
  return static_cast<int>(parked.size());
}

void ReplicatedController::attachMetrics(obs::Registry& registry) {
  registry.addCollector([this, tok = alive_, &registry]() {
    if (!*tok) return;
    registry.gauge("sdt_ha_term", {}, "Highest controller term claimed")
        .set(static_cast<double>(term_));
    registry.gauge("sdt_ha_leader", {}, "Current leader replica id")
        .set(static_cast<double>(leaderId_));
    registry
        .counter("sdt_ha_failovers_total", {}, "Completed takeover attempts")
        .syncTo(failovers_.size());
    registry
        .counter("sdt_ha_fenced_writes_total", {},
                 "Stale-term bundles rejected by switch fences")
        .syncTo(fencedWritesTotal());
    registry
        .counter("sdt_ha_journal_frames_streamed_total", {},
                 "Journal records shipped leader -> standbys")
        .syncTo(framesStreamed_);
    registry
        .counter("sdt_ha_heartbeats_total", {}, "Lease heartbeats sent")
        .syncTo(heartbeatsSent_);
    registry
        .counter("sdt_ha_stale_recovery_completions_total", {},
                 "Recovery completions dropped for a mismatched (term, leader)")
        .syncTo(staleRecoveryCompletions_);
    std::uint64_t catchups = 0;
    std::uint64_t overflows = 0;
    for (const auto& r : replicas_) {
      catchups += r->gapCatchups;
      overflows += r->queueOverflows;
    }
    registry
        .counter("sdt_ha_gap_catchups_total", {},
                 "Standby snapshot catch-ups after stream gaps")
        .syncTo(catchups);
    registry
        .counter("sdt_ha_stream_queue_overflows_total", {},
                 "Per-standby stream backlogs dropped at sendQueueCap")
        .syncTo(overflows);
    if (!failovers_.empty()) {
      registry
          .gauge("sdt_ha_takeover_window_ns", {},
                 "Last failover: lease expiry -> converged fabric")
          .set(static_cast<double>(failovers_.back().takeoverWindow()));
    }
  });
}

Status<Error> ReplicatedController::adoptDeployment(Deployment deployment) {
  deployment_ = std::move(deployment);
  switches_ = deployment_.switches;
  return journalDeploy(leaderJournal(), deployment_, sim_->now());
}

void ReplicatedController::start() {
  if (started_) return;
  started_ = true;
  stopped_ = false;
  const TimeNs now = sim_->now();
  for (const auto& r : replicas_) {
    r->lastHeartbeatAt = now;  // grace: the lease starts full everywhere
    scheduleLeaseCheck(r->id);
  }
  Replica& leader = rep(leaderId_);
  heartbeatTick(leader.id, leader.leaderGen);
}

void ReplicatedController::stop() { stopped_ = true; }

void ReplicatedController::kill(int replica) {
  Replica& r = rep(replica);
  r.alive = false;
  r.candidate = false;
  ++r.electionGen;  // a dead candidate never claims
  ++r.leaderGen;    // a dead leader never heartbeats again
  if (takeover_ && takeover_->leader == replica) {
    // The dying process takes its in-flight recovery with it: stop the run
    // (frames already on the wire still land — they left the process) and
    // drop the attempt, so its completion can never adopt a deployment on
    // behalf of a corpse or clobber a successor's report.
    if (takeover_->run != nullptr) takeover_->run->cancel();
    takeover_.reset();
    // Port failures keep parking: routePortFailure checks leader liveness.
    takeoverInProgress_ = false;
  }
}

// -- Term / leader admission -------------------------------------------------

bool ReplicatedController::acceptLeader(int to, int from, std::uint64_t term) {
  Replica& s = rep(to);
  if (term < s.term) return false;
  if (term == s.term) {
    if (from > s.leaderSeen) return false;  // tie: the lower id already won
    if (from == s.leaderSeen) return true;  // the leader we already follow
  }
  // Either a strictly newer term, or a higher-priority (lower-id) rival
  // claiming the term we are on: adopt it. If this replica was leading, it
  // is deposed here — the fence already protects the switches; stepping
  // down stops the wasted heartbeats.
  const bool sameTermSwitch = term == s.term;
  if (s.leader) {
    s.leader = false;
    ++s.leaderGen;
  }
  s.term = term;
  s.leaderSeen = from;
  if (sameTermSwitch) {
    // Two leaders streamed concurrently at this term, so the journals may
    // have diverged at IDENTICAL sequence numbers — the count-based gap
    // check cannot see that. Resync from the winner via snapshot.
    requestCatchup(to, from);
  }
  return true;
}

// -- Heartbeats / lease ------------------------------------------------------

void ReplicatedController::scheduleHeartbeat(int id, std::uint64_t gen) {
  sim_->scheduleOn(0, config_.heartbeatPeriod, [this, tok = alive_, id, gen]() {
    if (!*tok) return;
    heartbeatTick(id, gen);
  });
}

void ReplicatedController::heartbeatTick(int id, std::uint64_t gen) {
  Replica& r = rep(id);
  if (stopped_ || !r.alive || !r.leader || gen != r.leaderGen) return;
  const std::uint64_t lastSeq = r.journal->nextSeq() - 1;
  for (const auto& target : replicas_) {
    if (target->id == id) continue;
    ++heartbeatsSent_;
    repl_->send(target->id,
                [this, tok = alive_, to = target->id, id, term = r.term,
                 lastSeq]() {
                  if (!*tok) return;
                  onHeartbeat(to, id, term, lastSeq);
                });
  }
  scheduleHeartbeat(id, gen);
}

void ReplicatedController::onHeartbeat(int to, int from, std::uint64_t term,
                                       std::uint64_t lastSeq) {
  Replica& s = rep(to);
  if (stopped_ || !s.alive) return;
  // Stale or tie-losing leader's heartbeat: ignore. (It will hear the
  // winner's heartbeat and step down; our silence just starves its acks.)
  if (!acceptLeader(to, from, term)) return;
  s.lastHeartbeatAt = sim_->now();
  if (s.candidate) {
    s.candidate = false;
    ++s.electionGen;  // cancel the staggered claim
  }
  // Stream-stall detection: the leader is ahead of us and no frame has
  // landed since the previous heartbeat — dropped frames (or a compaction
  // seq jump with no follow-up append) leave exactly this signature.
  const std::uint64_t expected = s.journal->nextSeq();
  if (lastSeq >= expected && expected == s.prevHbExpected &&
      !s.catchupInFlight) {
    requestCatchup(to, from);
  }
  s.prevHbExpected = expected;
  sendAck(from, to);
}

void ReplicatedController::sendAck(int leader, int standby) {
  Replica& s = rep(standby);
  repl_->send(leader, [this, tok = alive_, leader, standby,
                       applied = s.journal->nextSeq() - 1]() {
    if (!*tok) return;
    onStreamAck(leader, standby, applied);
  });
}

void ReplicatedController::scheduleLeaseCheck(int id) {
  sim_->scheduleOn(0, config_.leaseInterval / 2, [this, tok = alive_, id]() {
    if (!*tok) return;
    leaseCheck(id);
  });
}

void ReplicatedController::leaseCheck(int id) {
  Replica& s = rep(id);
  if (stopped_ || !s.alive) return;  // a dead replica's chain ends here
  scheduleLeaseCheck(id);
  if (s.leader || s.candidate) return;
  if (sim_->now() - s.lastHeartbeatAt <= config_.leaseInterval) return;
  // Lease expired: candidate. The stagger orders claims by priority rank so
  // the fastest-ranked live standby moves first and its claim heartbeat
  // (delivered well inside one stagger on a healthy channel) stands every
  // slower candidate down before their timers fire.
  s.candidate = true;
  const std::uint64_t gen = ++s.electionGen;
  const TimeNs expiredAt = s.lastHeartbeatAt + config_.leaseInterval;
  const TimeNs stagger =
      static_cast<TimeNs>(rankOf(id)) * config_.electionStagger;
  sim_->scheduleOn(0, stagger, [this, tok = alive_, id, gen, expiredAt]() {
    if (!*tok) return;
    Replica& c = rep(id);
    if (stopped_ || !c.alive || gen != c.electionGen || c.leader) return;
    if (sim_->now() - c.lastHeartbeatAt <= config_.leaseInterval) {
      c.candidate = false;
      return;
    }
    claimLeadership(id, expiredAt);
  });
}

void ReplicatedController::forceTakeover(int replica) {
  Replica& r = rep(replica);
  if (!r.alive) return;
  claimLeadership(replica, sim_->now());
}

void ReplicatedController::claimLeadership(int id, TimeNs leaseExpiredAt) {
  Replica& s = rep(id);
  s.candidate = false;
  ++s.electionGen;
  s.leader = true;
  ++s.leaderGen;
  s.term += 1;  // monotonically increasing: the new fencing token
  s.leaderSeen = id;
  term_ = std::max(term_, s.term);
  leaderId_ = id;
  takeoverInProgress_ = true;

  if (takeover_) {
    // A takeover was still in flight. If it was OURS (a forceTakeover
    // re-claim), one process never drives two recoveries: cancel the old
    // run. A rival's run keeps going — the switch fence and the
    // (term, leader) completion binding make it harmless — but either way
    // the old attempt is recorded as superseded so failovers() tells the
    // whole story and nothing silently vanishes.
    if (takeover_->leader == id && takeover_->run != nullptr) {
      takeover_->run->cancel();
    }
    FailoverReport superseded = std::move(takeover_->report);
    takeover_.reset();
    superseded.converged = false;
    superseded.failure = "superseded by term " + std::to_string(s.term);
    superseded.convergedAt = sim_->now();
    failovers_.push_back(std::move(superseded));
    if (failoverCallback_) failoverCallback_(failovers_.back());
  }

  takeover_ = std::make_unique<Takeover>();
  takeover_->term = s.term;
  takeover_->leader = id;
  FailoverReport& report = takeover_->report;
  report.newLeader = id;
  report.fromTerm = s.term - 1;
  report.toTerm = s.term;
  report.leaseExpiredAt = leaseExpiredAt;
  report.takeoverStartedAt = sim_->now();

  // Reset the leader-side stream cursors: assume everyone is current and let
  // cumulative acks / gap detection correct the picture. The window opens
  // immediately (flow control, not reliability — catch-up covers losses).
  const std::uint64_t last = s.journal->nextSeq() - 1;
  for (const auto& r : replicas_) {
    r->sendQueue.clear();
    r->streamedSeq = last;
    r->lastAckedSeq = last;
  }

  // The claim heartbeat: deposes the old leader (if it can hear us), stands
  // other candidates down, and starts the renewal chain.
  heartbeatTick(id, s.leaderGen);
  startFailoverRecovery(id);
}

void ReplicatedController::startFailoverRecovery(int id) {
  Replica& s = rep(id);
  Result<RecoveryPlan> plan =
      planner_ ? planner_(*s.journal)
               : planRecovery(*ctl_, *s.journal, catalog_, config_.deploy);
  if (!plan) {
    FailoverReport report = std::move(takeover_->report);
    takeover_.reset();
    report.converged = false;
    report.failure = plan.error().message;
    finishTakeover(std::move(report));
    return;
  }
  RecoveryOptions options;
  options.retry = config_.retry;
  options.maxRounds = config_.recoveryMaxRounds;
  options.term = s.term;
  options.leaderId = id;
  options.monitor = monitor_;
  options.journal = s.journal.get();
  // The completion is bound to the claiming (term, leader): onFailoverDone
  // drops it unless this exact takeover is still the live one.
  auto run = std::make_unique<RecoveryRun>(
      *sim_, *fabric_, switches_, std::move(plan).value(), options,
      [this, tok = alive_, id, term = s.term](const RecoveryReport& report) {
        if (!*tok) return;
        onFailoverDone(id, term, report);
      });
  takeover_->run = run.get();
  recoveries_.push_back(std::move(run));
  recoveries_.back()->start();
}

void ReplicatedController::onFailoverDone(int id, std::uint64_t term,
                                          const RecoveryReport& report) {
  if (!takeover_ || takeover_->term != term || takeover_->leader != id) {
    // A completion this takeover did not start: a cascading failover already
    // superseded the run, or a fenced rival limped to its round cap. Its
    // deployment does not describe the fabric; drop it, visibly.
    ++staleRecoveryCompletions_;
    return;
  }
  RecoveryRun* run = takeover_->run;
  FailoverReport out = std::move(takeover_->report);
  takeover_.reset();
  out.recovery = report;
  out.converged = report.converged;
  if (report.converged) {
    deployment_ = run->takeDeployment();
    // adoptDeployment pinned the switch set; recovery returns the same
    // objects, but a caller may start HA pre-adoption in tests.
    switches_ = deployment_.switches;
  } else {
    out.failure = report.failure;
  }
  finishTakeover(std::move(out));
}

void ReplicatedController::finishTakeover(FailoverReport report) {
  report.convergedAt = sim_->now();
  takeoverInProgress_ = false;
  // Deliver the failures that surfaced inside the takeover window — each
  // exactly once, detection-time epoch intact.
  report.pendingFailuresDelivered = drainPendingFailures();
  failovers_.push_back(std::move(report));
  if (failoverCallback_) failoverCallback_(failovers_.back());
}

// -- Journal streaming -------------------------------------------------------

void ReplicatedController::onLeaderAppend(int owner, const JournalRecord& record) {
  Replica& l = rep(owner);
  if (stopped_ || !l.alive || !l.leader) return;
  for (const auto& target : replicas_) {
    if (target->id == owner || !target->alive) continue;
    if (target->sendQueue.size() >=
        static_cast<std::size_t>(config_.sendQueueCap)) {
      // The ack window has been stalled long enough to fill the backlog (a
      // partitioned standby not yet declared dead): drop the whole queue —
      // the standby's gap detection snapshot-catches-up when it reappears,
      // which tolerates arbitrary loss — and keep the leader's memory flat.
      target->sendQueue.clear();
      ++target->queueOverflows;
      continue;
    }
    target->sendQueue.push_back(record);
    pumpStream(owner, target->id);
  }
}

void ReplicatedController::pumpStream(int from, int to) {
  Replica& l = rep(from);
  Replica& s = rep(to);
  while (!s.sendQueue.empty()) {
    const std::uint64_t inFlight =
        s.streamedSeq > s.lastAckedSeq ? s.streamedSeq - s.lastAckedSeq : 0;
    if (inFlight >= static_cast<std::uint64_t>(config_.ackWindow)) break;
    JournalRecord rec = std::move(s.sendQueue.front());
    s.sendQueue.pop_front();
    s.streamedSeq = std::max(s.streamedSeq, rec.seq);
    ++framesStreamed_;
    repl_->send(to, [this, tok = alive_, to, from, term = l.term,
                     rec = std::move(rec)]() {
      if (!*tok) return;
      onFrame(to, from, term, rec);
    });
  }
}

void ReplicatedController::onFrame(int to, int from, std::uint64_t term,
                                   const JournalRecord& record) {
  Replica& s = rep(to);
  if (stopped_ || !s.alive) return;
  // Stale or tie-losing leader still streaming: fenced.
  if (!acceptLeader(to, from, term)) return;
  ++s.framesReceived;
  const std::uint64_t expected = s.journal->nextSeq();
  if (record.seq < expected) {
    // Duplicate (channel dup, or a retransmit raced the catch-up): the
    // record is already durable here; just refresh the cumulative ack.
    sendAck(from, to);
    return;
  }
  if (record.seq > expected) {
    // Gap: a dropped frame, the seq jump Journal::compact() leaves when its
    // checkpoint records take fresh numbers, or a torn tail this replica
    // dropped on rescan. Either way the suffix alone is not a journal —
    // fetch the full image.
    ++s.framesOutOfOrder;
    requestCatchup(to, from);
    return;
  }
  if (auto st = s.journal->appendReplica(record); !st) return;
  sendAck(from, to);
}

void ReplicatedController::onStreamAck(int to, int from, std::uint64_t applied) {
  Replica& l = rep(to);
  if (stopped_ || !l.alive || !l.leader) return;
  Replica& s = rep(from);
  s.lastAckedSeq = std::max(s.lastAckedSeq, applied);
  pumpStream(to, from);
}

void ReplicatedController::requestCatchup(int id, int leaderHint) {
  Replica& s = rep(id);
  if (s.catchupInFlight) return;
  s.catchupInFlight = true;
  ++s.gapCatchups;
  const std::uint64_t gen = ++s.catchupGen;
  repl_->send(leaderHint, [this, tok = alive_, leaderHint, id]() {
    if (!*tok) return;
    onCatchupRequest(leaderHint, id);
  });
  // Backstop: a lost request or reply must not wedge the flag forever; the
  // next gap signal (frame or heartbeat) re-requests.
  sim_->scheduleOn(0, config_.leaseInterval, [this, tok = alive_, id, gen]() {
    if (!*tok) return;
    Replica& r = rep(id);
    if (stopped_ || !r.alive || gen != r.catchupGen) return;
    r.catchupInFlight = false;
  });
}

void ReplicatedController::onCatchupRequest(int to, int from) {
  Replica& l = rep(to);
  if (stopped_ || !l.alive || !l.leader) return;
  auto bytes = l.storage.read();
  if (!bytes) return;
  repl_->send(from, [this, tok = alive_, from, leader = l.id, term = l.term,
                     image = std::move(bytes).value()]() {
    if (!*tok) return;
    onSnapshotInstall(from, leader, term, image);
  });
}

void ReplicatedController::onSnapshotInstall(int to, int from,
                                             std::uint64_t term,
                                             const std::string& bytes) {
  Replica& s = rep(to);
  if (stopped_ || !s.alive) return;
  // Snapshot from a deposed or tie-losing leader: refuse the image.
  if (!acceptLeader(to, from, term)) return;
  if (auto st = s.storage.replaceAll(bytes); !st) return;
  s.journal->rescan();
  s.prevHbExpected = 0;  // fresh image: restart the stall detector
  s.catchupInFlight = false;
  ++s.catchupGen;  // cancel the backstop
  ++s.snapshotsInstalled;
}

}  // namespace sdt::controller
