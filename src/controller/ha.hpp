// Replicated controller HA: one leader, N standbys, fenced failover.
//
// Every robustness layer so far still funnels through one controller
// process; this module removes that single point of failure with three
// mechanisms, all running on *simulated* time over the same lossy
// sim::ControlChannel machinery the data-plane protocols already survive:
//
//   lease + term   The leader holds a sim-time lease renewed by periodic
//                  heartbeats to every standby. When a standby's view of the
//                  lease expires, it becomes a candidate and — after a
//                  priority stagger (rank x electionStagger, so the highest-
//                  priority live standby moves first and everyone else hears
//                  its claim heartbeat before their own timer fires) —
//                  claims leadership under term = (highest term seen) + 1.
//                  Terms only grow; they are the fencing tokens. Two
//                  candidates that both miss the other's claim heartbeat can
//                  claim the SAME term — that tie resolves deterministically
//                  toward the lower replica id, on both sides of the fence:
//                  a leader that hears an equal-term heartbeat from a lower
//                  id steps down, and every switch fences an equal-term
//                  bundle from a higher id (admitTerm tracks (term, leader)).
//
//   fencing        Every flow-mod/barrier bundle and every recovery readback
//                  carries the issuing leader's term (ReconfigOptions::term /
//                  RecoveryOptions::term, modeled on the OpenFlow role-request
//                  generation_id). openflow::Switch::admitTerm() tracks the
//                  highest admitted term and refuses anything older — no
//                  apply, no ack — so a deposed leader that has not yet heard
//                  of its successor (split brain: alive but partitioned from
//                  the standbys) sees its rounds stall while its writes are
//                  counted in Switch::fencedWrites(), never installed.
//
//   journal        The PR-4 write-ahead journal is the replication
//   streaming     substrate: the leader's Journal append-observer streams
//                  every durably-written record to each standby over the
//                  replication channel (ack-window flow control, cumulative
//                  acks piggy-backed on heartbeat replies). A standby that
//                  detects a sequence gap — a dropped frame, or the seq jump
//                  a leader-side Journal::compact() leaves behind — requests
//                  snapshot catch-up: the leader ships its whole storage
//                  image (checkpoint + suffix), the standby swaps it in via
//                  JournalStorage::replaceAll and resumes the stream.
//
// Failover is crash recovery with a bigger term: the new leader folds its
// *replica* journal with planRecovery (roll an in-flight transaction forward
// iff its flip marker replicated, roll back otherwise, reinstall when
// quiescent) and drives a RecoveryRun stamped with the new term, which both
// converges the fabric and raises the fence on every switch. Monitor
// callbacks re-arm to the new leader: a PortFailure that fires inside the
// takeover window is buffered and delivered exactly once after convergence,
// with its detection-time epoch intact.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/retry.hpp"
#include "controller/controller.hpp"
#include "controller/journal.hpp"
#include "controller/recovery.hpp"
#include "obs/metrics.hpp"
#include "sim/control_channel.hpp"
#include "sim/simulator.hpp"

namespace sdt::controller {

class NetworkMonitor;
struct PortFailure;

struct HaConfig {
  /// Leader lease: a standby whose last heartbeat is older than this starts
  /// an election. Takeover latency is bounded by ~1.5x this (expiry is
  /// noticed by a check running every leaseInterval/2) plus the stagger.
  TimeNs leaseInterval = msToNs(2.0);
  /// Heartbeat cadence; must be well under leaseInterval so a few dropped
  /// heartbeats do not read as a dead leader.
  TimeNs heartbeatPeriod = usToNs(400.0);
  /// Election priority stagger: candidate rank r waits r x this before
  /// claiming, so the highest-priority live standby wins uncontested unless
  /// the replication channel drops its claim heartbeats for a whole stagger.
  TimeNs electionStagger = usToNs(300.0);
  /// Journal streaming flow control: max frames past the last cumulative ack
  /// before the leader queues instead of sending. Clamped to >= 1 (a
  /// non-positive window would silently disable streaming).
  int ackWindow = 16;
  /// Leader-side bound on frames queued behind a stalled ack window (a
  /// standby that is partitioned but not declared dead). On overflow the
  /// whole backlog is dropped and the standby repairs the resulting gap via
  /// snapshot catch-up, which tolerates arbitrary loss. Clamped to
  /// >= ackWindow.
  int sendQueueCap = 1024;
  /// Retry/backoff shape for the failover RecoveryRun's rounds.
  retry::RetryPolicy retry;
  /// Anti-entropy round cap for the failover RecoveryRun.
  int recoveryMaxRounds = 8;
  /// Recompile knobs handed to planRecovery on takeover.
  DeployOptions deploy;
};

/// Introspection snapshot of one replica (sdtctl serve `status`, tests).
struct ReplicaStatus {
  int id = -1;
  bool alive = false;
  bool isLeader = false;
  std::uint64_t term = 0;            ///< highest term this replica has seen
  std::uint64_t lastAppliedSeq = 0;  ///< replica journal's stream position
  std::uint64_t framesReceived = 0;
  std::uint64_t framesOutOfOrder = 0;
  std::uint64_t gapCatchups = 0;     ///< snapshot catch-ups requested
  std::uint64_t snapshotsInstalled = 0;
  std::size_t sendQueueDepth = 0;    ///< leader-side frames queued toward us
  std::uint64_t queueOverflows = 0;  ///< backlogs dropped at sendQueueCap
};

/// One completed (or failed) takeover.
struct FailoverReport {
  bool converged = false;
  int newLeader = -1;
  std::uint64_t fromTerm = 0;
  std::uint64_t toTerm = 0;
  TimeNs leaseExpiredAt = 0;     ///< when the old leader's lease ran out
  TimeNs takeoverStartedAt = 0;  ///< when the standby claimed the term
  TimeNs convergedAt = 0;        ///< failover recovery finished
  /// Lease expiry -> fabric converged under the new term.
  [[nodiscard]] TimeNs takeoverWindow() const {
    return convergedAt - leaseExpiredAt;
  }
  int pendingFailuresDelivered = 0;  ///< monitor events buffered in the window
  RecoveryReport recovery;           ///< the folded-replica recovery's report
  std::string failure;               ///< planning error (converged == false)
};

class ReplicatedController {
 public:
  /// `ctl` supplies the plant for recovery recompiles; `fabric` is the
  /// leader<->switch OpenFlow channel; `replication` is the replica<->replica
  /// channel (endpoint id == replica id; disconnect windows model
  /// partitions). Replica 0 starts as leader at term 1; lower id = higher
  /// election priority. All pointees must outlive this object. Destroying
  /// the controller while HA timer/stream events are still queued on the
  /// simulator is safe (each scheduled callback holds a liveness token and
  /// no-ops after destruction) — but a failover RecoveryRun still in flight
  /// follows RecoveryRun's own rule: the controller, which owns it, must
  /// outlive the simulation window that run executes in.
  ReplicatedController(sim::Simulator& sim, SdtController& ctl,
                       sim::ControlChannel& fabric,
                       sim::ControlChannel& replication, int numReplicas,
                       HaConfig config = {});
  ~ReplicatedController();

  ReplicatedController(const ReplicatedController&) = delete;
  ReplicatedController& operator=(const ReplicatedController&) = delete;

  /// Intent-name -> object map for takeover recompiles (same contract as
  /// planRecovery's catalog).
  void setCatalog(IntentCatalog catalog) { catalog_ = std::move(catalog); }

  /// Override how a new leader turns its replica journal into a recovery
  /// plan. Default: planRecovery(ctl, journal, catalog, config.deploy). A
  /// tenant-aware caller substitutes a planner that recompiles against the
  /// owning slice and re-scopes the plan (TenantManager::scopeRecovery).
  using PlanFn = std::function<Result<RecoveryPlan>(const Journal&)>;
  void setPlanner(PlanFn planner) { planner_ = std::move(planner); }

  /// Attach the fabric monitor: the HA layer owns its onPortFailure slot and
  /// epoch provider from here on. Failures route to the handler below;
  /// during a takeover window they are buffered and delivered (exactly once
  /// each) right after the new leader converges.
  void setMonitor(NetworkMonitor* monitor);
  /// Where routed PortFailures land ("the current leader's" handler).
  void onPortFailure(std::function<void(const PortFailure&)> handler) {
    failureHandler_ = std::move(handler);
  }
  /// Fired after every takeover attempt (converged or not).
  void onFailover(std::function<void(const FailoverReport&)> callback) {
    failoverCallback_ = std::move(callback);
  }

  /// Export sdt_ha_* gauges/counters (term, leader, takeover latency, fenced
  /// writes, stream totals) through a pull collector on `registry`.
  void attachMetrics(obs::Registry& registry);

  /// Adopt `deployment` as the leader's live state: journals the kDeploy
  /// intent on the leader journal (replicated to every standby by the
  /// stream) and pins the switch set used by failover recovery.
  Status<Error> adoptDeployment(Deployment deployment);

  /// Start heartbeat + lease-watch timer chains (idempotent; call before
  /// Simulator::run). stop() quiesces the chains (e.g. before tearing the
  /// simulation down while events are still queued).
  void start();
  void stop();

  /// Kill a replica: its timers, stream handling, and (if leader) heartbeats
  /// all cease, exactly like a SIGKILL'd process — including an in-flight
  /// failover recovery it was driving, which is cancelled (frames already on
  /// the wire still land; nothing new is sent, and its completion is never
  /// delivered). No revival.
  void kill(int replica);

  /// Test/operator hook: make `replica` claim leadership *now* with
  /// term = (its highest seen) + 1, without waiting for lease expiry — the
  /// split-brain scenario when the old leader is alive but partitioned.
  void forceTakeover(int replica);

  // -- Leader-side handles ---------------------------------------------------
  /// The current leader's journal: transactions journal into (and therefore
  /// replicate through) this. Valid while the leader lives.
  [[nodiscard]] Journal& leaderJournal();
  [[nodiscard]] Journal& journalOf(int replica);
  /// Test/fault-injection access to a replica's raw journal bytes (torn
  /// writes are modeled by truncating here, same as MemoryJournalStorage).
  [[nodiscard]] MemoryJournalStorage& storageOf(int replica);
  [[nodiscard]] Deployment& deployment() { return deployment_; }
  [[nodiscard]] const Deployment& deployment() const { return deployment_; }
  /// Highest term any replica has claimed (stamp outgoing ReconfigOptions /
  /// RecoveryOptions with the *leader's* term via termOf(leaderId())).
  [[nodiscard]] std::uint64_t term() const { return term_; }
  [[nodiscard]] std::uint64_t termOf(int replica) const;
  [[nodiscard]] int leaderId() const { return leaderId_; }
  [[nodiscard]] bool isLeader(int replica) const;
  [[nodiscard]] int numReplicas() const { return static_cast<int>(replicas_.size()); }
  [[nodiscard]] bool takeoverInProgress() const { return takeoverInProgress_; }
  [[nodiscard]] ReplicaStatus status(int replica) const;
  [[nodiscard]] const std::vector<FailoverReport>& failovers() const {
    return failovers_;
  }
  /// Sum of Switch::fencedWrites over the adopted deployment's switches.
  [[nodiscard]] std::uint64_t fencedWritesTotal() const;
  /// RecoveryRun completions dropped because their (term, leader) no longer
  /// matched the live takeover — the observable footprint of a cascading
  /// failover or a fenced rival finishing late.
  [[nodiscard]] std::uint64_t staleRecoveryCompletions() const {
    return staleRecoveryCompletions_;
  }

 private:
  struct Replica {
    int id = -1;
    bool alive = true;
    bool leader = false;
    bool candidate = false;
    std::uint64_t term = 0;  ///< highest term seen (== own term when leader)
    /// Which replica this one believes leads at `term` (own id while
    /// leading). Ties at equal term resolve toward the lower id, so
    /// (term, -leaderSeen) is lexicographically monotonic — no oscillation.
    int leaderSeen = 0;
    MemoryJournalStorage storage;
    std::unique_ptr<Journal> journal;

    // Standby-side stream state. The next seq this replica wants is always
    // journal->nextSeq() — derived from durable state, never cached, so a
    // torn-truncate + rescan() automatically re-opens the gap and the next
    // frame (or heartbeat stall) triggers catch-up.
    TimeNs lastHeartbeatAt = -1;
    std::uint64_t prevHbExpected = 0;  ///< stall detector across heartbeats
    std::uint64_t framesReceived = 0;
    std::uint64_t framesOutOfOrder = 0;
    std::uint64_t gapCatchups = 0;
    std::uint64_t snapshotsInstalled = 0;
    bool catchupInFlight = false;
    std::uint64_t catchupGen = 0;

    // Leader-side stream cursor *toward* this replica (owned by whoever is
    // leader; reset on every leadership change).
    std::deque<JournalRecord> sendQueue;
    std::uint64_t streamedSeq = 0;   ///< highest seq shipped
    std::uint64_t lastAckedSeq = 0;  ///< cumulative ack received
    std::uint64_t queueOverflows = 0;  ///< sendQueue backlogs dropped at cap

    std::uint64_t electionGen = 0;  ///< cancels scheduled claim events
    std::uint64_t leaderGen = 0;    ///< cancels stale heartbeat chains
  };

  [[nodiscard]] Replica& rep(int id) { return *replicas_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const Replica& rep(int id) const {
    return *replicas_[static_cast<std::size_t>(id)];
  }
  /// Election priority rank of `id` among live non-leader replicas.
  [[nodiscard]] int rankOf(int id) const;

  void scheduleHeartbeat(int id, std::uint64_t gen);
  void heartbeatTick(int id, std::uint64_t gen);
  void onHeartbeat(int to, int from, std::uint64_t term, std::uint64_t lastSeq);
  void scheduleLeaseCheck(int id);
  void leaseCheck(int id);
  void claimLeadership(int id, TimeNs leaseExpiredAt);
  void startFailoverRecovery(int id);
  void onFailoverDone(int id, std::uint64_t term, const RecoveryReport& report);
  /// Finish the current takeover attempt (success, planning failure, or
  /// supersession) and publish its report.
  void finishTakeover(FailoverReport report);

  /// Term/leader admission gate for every replica->replica message landing
  /// at `to`. Rejects stale terms and equal-term messages from a
  /// higher-than-believed leader id; accepts (updating term/leaderSeen,
  /// deposing `to` if it was leading) otherwise. A leader switch at the
  /// SAME term means the streams may have diverged at identical seqs —
  /// count-based gap detection cannot see that, so the replica resyncs via
  /// snapshot catch-up from the winner.
  bool acceptLeader(int to, int from, std::uint64_t term);

  void onLeaderAppend(int owner, const JournalRecord& record);
  void pumpStream(int from, int to);
  void onFrame(int to, int from, std::uint64_t term, const JournalRecord& record);
  void onStreamAck(int to, int from, std::uint64_t applied);
  void requestCatchup(int id, int leaderHint);
  void onCatchupRequest(int to, int from);
  void onSnapshotInstall(int to, int from, std::uint64_t term,
                         const std::string& bytes);
  void sendAck(int from, int to);

  void routePortFailure(const PortFailure& failure);
  /// Deliver every parked PortFailure (exactly once each); returns how many.
  int drainPendingFailures();

  sim::Simulator* sim_;
  SdtController* ctl_;
  sim::ControlChannel* fabric_;
  sim::ControlChannel* repl_;
  HaConfig config_;
  IntentCatalog catalog_;
  PlanFn planner_;
  NetworkMonitor* monitor_ = nullptr;

  std::vector<std::unique_ptr<Replica>> replicas_;
  std::uint64_t term_ = 1;
  int leaderId_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  bool takeoverInProgress_ = false;

  Deployment deployment_;
  std::vector<std::shared_ptr<openflow::Switch>> switches_;

  /// Completed runs are kept: late duplicate control messages may still
  /// reference them (same lifetime rule as ReconfigTransaction).
  std::vector<std::unique_ptr<RecoveryRun>> recoveries_;
  /// The in-flight takeover attempt. A RecoveryRun completion counts only
  /// if it matches this takeover's (term, leader) — a cascading failover
  /// (or a deposed leader's fenced run finishing late) must not adopt the
  /// wrong run's deployment or clobber the live attempt's report.
  struct Takeover {
    std::uint64_t term = 0;
    int leader = -1;
    RecoveryRun* run = nullptr;  ///< owned by recoveries_
    FailoverReport report;
  };
  std::unique_ptr<Takeover> takeover_;
  std::vector<FailoverReport> failovers_;
  std::uint64_t staleRecoveryCompletions_ = 0;

  std::function<void(const PortFailure&)> failureHandler_;
  std::function<void(const FailoverReport&)> failoverCallback_;
  std::vector<PortFailure> pendingFailures_;

  std::uint64_t framesStreamed_ = 0;
  std::uint64_t heartbeatsSent_ = 0;

  /// Liveness token for callbacks scheduled on the simulator / channels:
  /// every lambda captures a copy and returns early once the destructor
  /// flips it, so events drained after this object dies touch nothing.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sdt::controller
