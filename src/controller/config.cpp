#include "controller/config.hpp"

#include "common/strings.hpp"
#include "topo/generators.hpp"
#include "topo/zoo.hpp"

namespace sdt::controller {

Result<topo::Topology> topologyFromJson(const json::Value& spec) {
  if (!spec.isObject()) return makeError("'topology' must be an object");
  const std::string type = spec.getString("type", "");
  topo::GenOptions opt;
  opt.hostsPerSwitch = static_cast<int>(spec.getInt("hosts_per_switch", 1));
  opt.linkSpeed = Gbps{spec.getDouble("link_gbps", 10.0)};

  if (type == "line") return topo::makeLine(static_cast<int>(spec.getInt("n", 8)), opt);
  if (type == "ring") return topo::makeRing(static_cast<int>(spec.getInt("n", 8)), opt);
  if (type == "star") return topo::makeStar(static_cast<int>(spec.getInt("n", 8)), opt);
  if (type == "fullmesh") {
    return topo::makeFullMesh(static_cast<int>(spec.getInt("n", 4)), opt);
  }
  if (type == "hypercube") {
    return topo::makeHypercube(static_cast<int>(spec.getInt("dims", 3)), opt);
  }
  if (type == "fattree") {
    const int k = static_cast<int>(spec.getInt("k", 4));
    if (k < 2 || k % 2 != 0) return makeError("fattree requires even k >= 2");
    return topo::makeFatTree(k, opt);
  }
  if (type == "dragonfly") {
    const int a = static_cast<int>(spec.getInt("a", 4));
    const int g = static_cast<int>(spec.getInt("g", 9));
    const int h = static_cast<int>(spec.getInt("h", 2));
    if (a < 2 || g < 2 || h < 1 || a * h < g - 1) {
      return makeError("dragonfly requires a>=2, g>=2, h>=1 and a*h >= g-1");
    }
    return topo::makeDragonfly(a, g, h, opt);
  }
  if (type == "mesh2d") {
    return topo::makeMesh2D(static_cast<int>(spec.getInt("x", 4)),
                            static_cast<int>(spec.getInt("y", 4)), opt);
  }
  if (type == "mesh3d") {
    return topo::makeMesh3D(static_cast<int>(spec.getInt("x", 3)),
                            static_cast<int>(spec.getInt("y", 3)),
                            static_cast<int>(spec.getInt("z", 3)), opt);
  }
  if (type == "torus2d") {
    return topo::makeTorus2D(static_cast<int>(spec.getInt("x", 5)),
                             static_cast<int>(spec.getInt("y", 5)), opt);
  }
  if (type == "torus3d") {
    return topo::makeTorus3D(static_cast<int>(spec.getInt("x", 4)),
                             static_cast<int>(spec.getInt("y", 4)),
                             static_cast<int>(spec.getInt("z", 4)), opt);
  }
  if (type == "zoo") {
    const int index = static_cast<int>(spec.getInt("index", 0));
    if (index < 0 || index >= topo::zooSize()) {
      return makeError(strFormat("zoo index must be in [0, %d)", topo::zooSize()));
    }
    return topo::makeZooTopology(index);
  }
  if (type == "custom") {
    const int switches = static_cast<int>(spec.getInt("switches", 0));
    if (switches <= 0) return makeError("custom topology needs 'switches' > 0");
    topo::Topology t(spec.getString("name", "custom"), switches);
    if (!spec.at("links").isArray()) return makeError("custom topology needs 'links'");
    for (const json::Value& l : spec.at("links").asArray()) {
      if (!l.isArray() || l.asArray().size() != 2) {
        return makeError("each link must be [a, b]");
      }
      const int a = static_cast<int>(l.asArray()[0].asInt());
      const int b = static_cast<int>(l.asArray()[1].asInt());
      if (a < 0 || a >= switches || b < 0 || b >= switches) {
        return makeError(strFormat("link [%d,%d] references unknown switch", a, b));
      }
      t.connect(a, b, opt.linkSpeed);
    }
    if (spec.at("hosts").isArray()) {
      for (const json::Value& h : spec.at("hosts").asArray()) {
        const int sw = static_cast<int>(h.asInt());
        if (sw < 0 || sw >= switches) {
          return makeError(strFormat("host references unknown switch %d", sw));
        }
        t.attachHost(sw, opt.linkSpeed);
      }
    }
    if (auto s = t.validate(/*requireConnected=*/false); !s) return s.error();
    return t;
  }
  return makeError("unknown topology type: '" + type + "'");
}

Result<ExperimentConfig> parseExperimentConfig(const json::Value& doc) {
  if (!doc.isObject()) return makeError("config must be a JSON object");
  auto topoResult = topologyFromJson(doc.at("topology"));
  if (!topoResult) return topoResult.error();
  ExperimentConfig config{std::move(topoResult).value()};
  config.routingStrategy = doc.getString("routing", "shortest");
  config.pfc = doc.getBool("pfc", true);
  config.dcqcn = doc.getBool("dcqcn", true);
  config.cutThrough = doc.getBool("cut_through", true);
  return config;
}

Result<ExperimentConfig> loadExperimentConfig(const std::string& path) {
  auto doc = json::parseFile(path);
  if (!doc) return doc.error();
  return parseExperimentConfig(doc.value());
}

void applyFabricKnobs(const ExperimentConfig& config, sim::NetworkConfig& netConfig) {
  netConfig.pfcEnabled = config.pfc;
  netConfig.ecnEnabled = config.dcqcn;
  netConfig.cutThrough = config.cutThrough;
}

}  // namespace sdt::controller
