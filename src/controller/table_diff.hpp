// Shared flow-table compilation and diff machinery (controller internals).
//
// deploy(), reconfigure(), repair(), and crash recovery all need the same two
// primitives: compile a routing strategy into per-physical-switch flow
// entries, and compute the multiset difference between a live table and a
// desired one. They were private to controller.cpp until crash recovery
// (controller/recovery.hpp) needed to recompile journaled intent and diff it
// against tables *read back* from the switches — state the controller no
// longer owns in memory. The `detail` namespace marks them as internals with
// stable semantics but no API promise to code outside src/controller.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "controller/controller.hpp"

namespace sdt::controller::detail {

/// Compile the routing strategy for one deployment into flow entries.
/// Returns the per-physical-switch entry lists, or an error when the
/// strategy fails on some (switch, destination, vc) state.
///
/// `severedMask` (repair path) marks logical links lost to failures: they
/// are excluded from the reachability computation, so pairs they disconnect
/// get no entries (table miss) instead of failing the compile.
/// `epoch` is stamped into every entry's cookie (consistent updates): rules
/// carry the configuration epoch they belong to, so packets stamped at
/// ingress only match their own configuration during a two-phase update.
Result<std::vector<std::vector<openflow::FlowEntry>>> compileFlowTables(
    const topo::Topology& topo, const projection::Projection& projection,
    const projection::Plant& plant, const routing::RoutingAlgorithm& routing,
    const DeployOptions& options, std::uint32_t epoch,
    const std::vector<char>* severedMask = nullptr);

/// Serialized rule identity for the incremental diffs' multiset keys.
/// Counters are excluded (like openflow::sameRule) and so is the cookie's
/// *epoch* half: a rule that survives a reconfiguration unchanged except for
/// its epoch stamp is the same rule — charging a delete+add for it would
/// make every diff as expensive as a full redeploy.
std::string ruleKey(const openflow::FlowEntry& e);

/// Per-switch multiset diff of a live entry list against the desired one:
/// what an incremental update must strict-delete and add. Shared by
/// repair(), the diff-based reconfigure(), and recovery convergence.
struct TableDiff {
  std::vector<openflow::FlowEntry> toRemove;        ///< copies of live entries
  std::vector<const openflow::FlowEntry*> toAdd;    ///< pointers into desired
};

TableDiff diffEntries(const std::vector<openflow::FlowEntry>& live,
                      const std::vector<openflow::FlowEntry>& desired);

}  // namespace sdt::controller::detail
