// Topology configuration files (paper Fig. 2: "reconfigure the testbed by
// simply running a different configuration file").
//
// A config is a JSON document:
// {
//   "topology": {"type": "fattree", "k": 4},          // or dragonfly/torus/...
//   "routing": "fattree-dfs",                          // Table III names
//   "link_gbps": 10,                                   // optional, default 10
//   "hosts_per_switch": 1,                             // where applicable
//   "pfc": true, "dcqcn": true, "cut_through": true    // fabric knobs
// }
// Custom topologies:
// {"topology": {"type": "custom", "switches": 3,
//               "links": [[0,1],[1,2]], "hosts": [0,2]}}
#pragma once

#include <string>

#include "common/json.hpp"
#include "common/result.hpp"
#include "sim/network.hpp"
#include "topo/topology.hpp"

namespace sdt::controller {

struct ExperimentConfig {
  topo::Topology topology;
  std::string routingStrategy = "shortest";
  bool pfc = true;
  bool dcqcn = true;
  bool cutThrough = true;
};

/// Build a topology from the "topology" object of a config document.
Result<topo::Topology> topologyFromJson(const json::Value& spec);

/// Parse a full experiment config document.
Result<ExperimentConfig> parseExperimentConfig(const json::Value& doc);

/// Convenience: load + parse a config file.
Result<ExperimentConfig> loadExperimentConfig(const std::string& path);

/// Apply the fabric knobs onto a simulator network config.
void applyFabricKnobs(const ExperimentConfig& config, sim::NetworkConfig& netConfig);

}  // namespace sdt::controller
