// The SDT controller (paper §V, Fig. 9).
//
// Four modules:
//  - Topology Customization: check() verifies that a set of user topologies
//    fits the plant (self-link / inter-switch-link / host-port budgets,
//    flow-table capacity §VII-C) and reports what is missing; deploy() runs
//    Link Projection and compiles the routing strategy into per-physical-
//    switch OpenFlow tables.
//  - Routing Strategy: pluggable routing::RoutingAlgorithm, compiled to
//    flow entries of the form
//      match(in_port, dst_host [, traffic_class=VC]) -> [set_vc] output(port)
//    One entry per (sub-switch in-port, destination, VC state): the in_port
//    match is what enforces sub-switch isolation (§VI-B) on the shared
//    physical switch.
//  - Deadlock Avoidance: refuses to deploy a strategy whose channel
//    dependency graph has a cycle on a lossless (PFC) fabric.
//  - Network Monitor: see controller/monitor.hpp.
//
// The paper's controller is Ryu/Python driving real H3C switches; here the
// "switches" are openflow::Switch models and the control channel is a
// modeled reconfiguration-time estimate (projection::reconfigTime).
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "admission/admission.hpp"
#include "common/result.hpp"
#include "common/retry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "openflow/of_switch.hpp"
#include "projection/feasibility.hpp"
#include "projection/link_projector.hpp"
#include "routing/deadlock.hpp"
#include "routing/routing.hpp"

namespace sdt::controller {

struct DeployOptions {
  /// Verify CDG acyclicity before installing tables (lossless fabrics).
  bool requireDeadlockFree = true;
  /// Per-flow ECMP spreading is approximated per-destination when compiling
  /// proactive tables (real SDT computes paths reactively per flow).
  std::uint64_t ecmpSalt = 0;
  /// Global host-address base (multi-tenant slicing): compiled entries match
  /// dstAddr = hostAddrBase + logical host id, so a slice whose hosts occupy
  /// ids [base, base + n) on the shared sim::Network gets addresses that can
  /// never alias another slice's. 0 = legacy single-tenant addressing.
  std::uint32_t hostAddrBase = 0;
  /// Owning tenant id (multi-tenant slicing): rules compile into the scoped
  /// epoch namespace (tenant, local-epoch) so bulk epoch operations — flip,
  /// drain, GC, restamp — can never select another tenant's rules. 0 is the
  /// legacy whole-plant namespace.
  std::uint16_t tenant = 0;
  projection::LinkProjectorOptions projector;
};

/// A deployed (projected + programmed) topology, ready for sim::buildProjectedNetwork.
struct Deployment {
  projection::Projection projection;
  std::vector<std::shared_ptr<openflow::Switch>> switches;  ///< programmed tables
  int totalFlowEntries = 0;
  int maxEntriesPerSwitch = 0;
  TimeNs reconfigTime = 0;  ///< modeled table-install time (Table II row)
  /// Configuration epoch the installed rules carry (and the switches stamp
  /// onto ingress packets). deploy() starts at 1; each committed
  /// transactional reconfiguration bumps it.
  std::uint32_t epoch = 1;
  /// reconfigure() only: flow-mods the incremental diff actually issued —
  /// strictly fewer than the previous.total + next.total a full
  /// teardown+redeploy would send whenever the tables overlap.
  int reconfigFlowMods = 0;
  /// Intent identity, journaled for crash recovery: the names are the keys a
  /// restarted controller uses to look up the topology and routing objects
  /// (recovery::IntentCatalog) and recompile exactly these tables, so the
  /// salt rides along too.
  std::string topology;
  std::string routing;
  std::uint64_t ecmpSalt = 0;
};

/// check() output: what the plant must provide for a set of topologies.
struct CheckReport {
  bool ok = false;
  std::vector<std::string> problems;           ///< empty when ok
  int maxSelfLinksPerSwitch = 0;               ///< worst-case demand
  int maxInterLinksPerPair = 0;
  int maxHostPortsPerSwitch = 0;
  int maxFlowEntriesPerSwitch = 0;
};

/// Input to repair(): what the Network Monitor (or an operator) observed.
struct FailureSet {
  /// Failed physical fabric ports (from NetworkMonitor::failedPorts()).
  /// A cut cable contributes both of its ends.
  std::vector<projection::PhysPort> ports;
  /// Physical switches whose flow tables were wiped (power cycle); their
  /// ports are assumed healthy — the cure is reinstalling entries.
  std::vector<int> crashedSwitches;

  [[nodiscard]] bool empty() const { return ports.empty() && crashedSwitches.empty(); }
};

struct RepairOptions {
  DeployOptions deploy;
  /// Backoff policy for modeled flow-mod installs over a flaky control
  /// channel (common/retry.hpp).
  retry::RetryPolicy retry;
  /// Per-attempt success oracle (sim::FaultInjector::controlChannel());
  /// null means the control channel never fails.
  std::function<bool(int)> controlChannel;
};

/// Compiled-but-not-installed next configuration: everything a transactional
/// two-phase reconfiguration (controller/transaction.hpp) needs before it
/// touches any switch. Produced by SdtController::planUpdate(), which runs
/// every check that can abort *cleanly* — deadlock freedom, projection
/// feasibility, host-port stability, and two-version table capacity — so a
/// transaction that starts can only fail on the control channel.
struct UpdatePlan {
  projection::Projection projection;  ///< the next topology's projection
  /// Per-physical-switch epoch-`toEpoch` entries to install alongside the
  /// live epoch-`fromEpoch` set.
  std::vector<std::vector<openflow::FlowEntry>> tables;
  std::uint32_t fromEpoch = 0;
  std::uint32_t toEpoch = 0;
  int totalEntries = 0;
  /// Intent identity of the *target* configuration (see Deployment).
  std::string topology;
  std::string routing;
  std::uint64_t ecmpSalt = 0;
  /// Physical switches the transaction may touch (ascending). Empty = every
  /// plant switch (the legacy whole-plant update). A tenant slice scopes its
  /// two-phase protocol — install, barrier, flip, GC, rollback, guards, and
  /// the purity audit — to exactly these switches.
  std::vector<int> scope;
  /// Parallel to `scope`: ingress ports to flip per scoped switch. An empty
  /// inner list flips the whole switch (setIngressEpoch); a non-empty list
  /// flips only those ports' per-port epochs, leaving co-tenants' ports
  /// stamped with their own epochs.
  std::vector<std::vector<int>> flipPorts;
};

/// A logical link repair() could not re-project (no spare physical link).
struct SeveredLink {
  int logicalLink = -1;  ///< index into Topology::links()
  topo::SwitchPort a;
  topo::SwitchPort b;
};

/// What repair() did, and what it could not do. `degraded` deployments keep
/// forwarding between every pair the surviving links can still connect;
/// `unreachablePairs` lists the rest (their packets die on table miss, they
/// do not black-hole into failed ports).
struct RepairReport {
  // Re-projection outcome.
  int remappedLinks = 0;  ///< logical links moved onto spare physical links
  std::vector<SeveredLink> severedLinks;  ///< no spare: routed around instead
  std::vector<std::pair<topo::HostId, topo::HostId>> unreachablePairs;
  bool degraded = false;  ///< some logical links stayed severed

  // Incremental flow-table delta (strict-delete + add flow-mods), vs. what a
  // full reconfigure() teardown+reinstall would have cost.
  int flowModsRemoved = 0;
  int flowModsAdded = 0;
  int fullRedeployFlowMods = 0;
  [[nodiscard]] int flowMods() const { return flowModsRemoved + flowModsAdded; }

  // Control-channel accounting (modeled time, folded into repairTime).
  int installRetries = 0;  ///< attempts beyond the first, summed over installs
  TimeNs retryBackoffTime = 0;
  TimeNs repairTime = 0;  ///< modeled reconfiguration time of the repair

  // Deadlock re-check on the degraded topology (runs when links were severed
  // and deploy.requireDeadlockFree is set). A cycle is reported, not fatal:
  // degraded connectivity with a PFC-storm risk still beats no connectivity.
  bool deadlockChecked = false;
  bool deadlockFree = true;
};

class SdtController {
 public:
  /// Optional observability sinks for the controller's operations. Pointees
  /// must outlive the controller (or be detached with setObservability({})).
  struct ObsContext {
    obs::Registry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
    /// Timestamp source for span start times — normally the simulator clock
    /// ([&sim] { return sim.now(); }). Null means spans start at t=0. The
    /// controller's compile work is instantaneous in simulated time, so each
    /// op span covers its *modeled* duration (reconfigTime / repairTime)
    /// starting from this clock's reading, with one child span per phase.
    std::function<TimeNs()> clock;
  };

  explicit SdtController(projection::Plant plant) : plant_(std::move(plant)) {}

  [[nodiscard]] const projection::Plant& plant() const { return plant_; }

  /// Attach (or detach, with a default-constructed context) metric/trace
  /// sinks. Every deploy/reconfigure/planUpdate/repair afterwards emits a
  /// root span named after the op with per-phase child spans, plus
  /// sdt_controller_retry_attempts_total counters where retries happen.
  void setObservability(ObsContext obs) { obs_ = std::move(obs); }
  [[nodiscard]] const ObsContext& observability() const { return obs_; }

  /// Topology Customization, checking function: can every topology in the
  /// set be projected on this plant (one at a time)? Reports the resource
  /// shortfalls otherwise (§V-1: "inform the user of the necessary link
  /// modification").
  [[nodiscard]] CheckReport check(const std::vector<const topo::Topology*>& topologies,
                                  const DeployOptions& options = {}) const;

  /// Topology Customization, deployment function: project + compile routing
  /// into flow tables. The routing algorithm must be built for `topo` and
  /// outlive nothing (tables are self-contained once compiled).
  [[nodiscard]] Result<Deployment> deploy(const topo::Topology& topo,
                                          const routing::RoutingAlgorithm& routing,
                                          const DeployOptions& options = {}) const;

  /// Offline reconfiguration from `previous` to `next` (no cable ever moves,
  /// the SDT claim). Instead of a full teardown+reinstall, the controller
  /// diffs the previous live tables against the recompiled ones per switch
  /// (the same multiset diff repair() uses) and only issues flow-mods for
  /// the difference: reconfigTime and reconfigFlowMods in the returned
  /// deployment cover exactly those mods — strictly fewer than
  /// previous.total + next.total whenever the configurations share rules.
  /// For a consistency-preserving *live* update, use planUpdate() plus
  /// controller/transaction.hpp instead.
  [[nodiscard]] Result<Deployment> reconfigure(const Deployment& previous,
                                               const topo::Topology& next,
                                               const routing::RoutingAlgorithm& routing,
                                               const DeployOptions& options = {}) const;

  /// Prepare phase of a transactional (two-phase, Reitblatt-style) live
  /// reconfiguration: compile `next` into epoch-(current.epoch + 1) flow
  /// entries and run every cleanly-abortable check —
  ///   - deadlock freedom of the next routing (when options require it);
  ///   - projection feasibility of `next` on the plant;
  ///   - host-port stability: every host must keep its physical port, since
  ///     hosts cannot be recabled mid-run (spare *fabric* cables are wired,
  ///     host NICs are not);
  ///   - two-version capacity: each switch must hold its live epoch-N rules
  ///     plus the full epoch-N+1 set side by side during the update window.
  /// Nothing is installed; a failure here leaves the deployment untouched.
  [[nodiscard]] Result<UpdatePlan> planUpdate(const Deployment& current,
                                              const topo::Topology& next,
                                              const routing::RoutingAlgorithm& routing,
                                              const DeployOptions& options = {}) const;

  /// Self-healing re-projection (no cable moves, no human): re-project the
  /// logical links riding on failed physical ports onto spare healthy
  /// physical links, recompile *only the affected flow entries* (incremental
  /// strict-delete/add diff against the live tables — crashed switches fall
  /// out naturally, their whole table is "missing"), and patch `deployment`
  /// in place. When no spare exists the logical link is severed: surviving
  /// traffic is re-routed around it (routing::DegradedRouting) and the
  /// report lists the severed links and newly unreachable host pairs.
  /// `routing` must be the algorithm the deployment was compiled with.
  [[nodiscard]] Result<RepairReport> repair(Deployment& deployment,
                                            const topo::Topology& topo,
                                            const routing::RoutingAlgorithm& routing,
                                            const FailureSet& failures,
                                            const RepairOptions& options = {}) const;

  /// Admission-policy distribution: validate `policy` and push it to the
  /// fabric-edge admission controller (the overload analogue of a table
  /// install — one policy object fans out to every host agent; here the
  /// AdmissionController models that whole edge tier). Rejects invalid
  /// policies without touching the live one. Call between runs: the edge
  /// applies the policy to decisions from the next start().
  [[nodiscard]] StatusOr distributeAdmissionPolicy(
      admission::AdmissionController& target,
      const admission::Policy& policy) const;

 private:
  projection::Plant plant_;
  ObsContext obs_;
};

}  // namespace sdt::controller
