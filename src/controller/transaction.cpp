#include "controller/transaction.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "controller/journal.hpp"
#include "controller/monitor.hpp"

namespace sdt::controller {

namespace {

/// OpenFlow transfer id for one transaction flow-mod bundle. The high tag
/// separates the transaction's xid space from recovery's (0x4ECOV…); epoch,
/// round, and switch make every distinct bundle distinct, while a *retry* of
/// the same bundle reuses the same xid — which is the whole point: the
/// switch applies the first delivered copy and only re-acks the rest.
std::uint64_t txXid(std::uint32_t toEpoch, int round, int sw) {
  return (0xF10DULL << 48) | (static_cast<std::uint64_t>(toEpoch) << 16) |
         (static_cast<std::uint64_t>(round) << 8) | static_cast<std::uint64_t>(sw);
}

}  // namespace

const char* reconfigPhaseName(ReconfigPhase phase) {
  switch (phase) {
    case ReconfigPhase::kPrepare: return "prepare";
    case ReconfigPhase::kInstall: return "install";
    case ReconfigPhase::kBarrier: return "barrier";
    case ReconfigPhase::kFlip: return "flip";
    case ReconfigPhase::kDrain: return "drain";
    case ReconfigPhase::kGc: return "gc";
    case ReconfigPhase::kDone: return "done";
  }
  return "?";
}

const char* crashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kNone: return "none";
    case CrashPoint::kPrepare: return "prepare";
    case CrashPoint::kMidInstall: return "mid-install";
    case CrashPoint::kPreFlip: return "pre-flip";
    case CrashPoint::kPostFlip: return "post-flip";
    case CrashPoint::kMidGc: return "mid-gc";
  }
  return "?";
}

json::Value ReconfigReport::toJson() const {
  json::Object obj;
  obj["committed"] = committed;
  obj["rolledBack"] = rolledBack;
  obj["phaseReached"] = reconfigPhaseName(phaseReached);
  obj["fromEpoch"] = static_cast<std::int64_t>(fromEpoch);
  obj["toEpoch"] = static_cast<std::int64_t>(toEpoch);
  obj["flowModsInstalled"] = flowModsInstalled;
  obj["flowModsRolledBack"] = flowModsRolledBack;
  obj["flowModsGarbageCollected"] = flowModsGarbageCollected;
  obj["barrierRoundTrips"] = barrierRoundTrips;
  obj["retriesTotal"] = retriesTotal;
  obj["startedAtNs"] = static_cast<std::int64_t>(startedAt);
  obj["updateWindowNs"] = static_cast<std::int64_t>(updateWindow());
  obj["finishedAtNs"] = static_cast<std::int64_t>(finishedAt);
  obj["rollbackLatencyNs"] = static_cast<std::int64_t>(rollbackLatency);
  obj["pureStateVerified"] = pureStateVerified;
  obj["gcIncomplete"] = gcIncomplete;
  if (!failure.empty()) obj["failure"] = failure;
  json::Array sws;
  for (const SwitchTxState& s : switches) {
    json::Object sw;
    sw["installAcked"] = s.installAcked;
    sw["barrierAcked"] = s.barrierAcked;
    sw["flipAcked"] = s.flipAcked;
    sw["gcAcked"] = s.gcAcked;
    sw["rollbackAcked"] = s.rollbackAcked;
    sw["retries"] = s.retries;
    sws.push_back(std::move(sw));
  }
  obj["switches"] = std::move(sws);
  return obj;
}

ReconfigTransaction::ReconfigTransaction(sim::Simulator& sim,
                                         sim::ControlChannel& channel,
                                         Deployment& deployment, UpdatePlan plan,
                                         ReconfigOptions options, DoneFn done)
    : sim_(&sim),
      channel_(&channel),
      deployment_(&deployment),
      plan_(std::move(plan)),
      options_(std::move(options)),
      done_(std::move(done)) {
  const auto n = static_cast<std::size_t>(numSwitches());
  acked_.resize(n);
  applied_.resize(n);
  roundComplete_.assign(n, 0);
  backoffRng_.reserve(n);
  for (std::size_t sw = 0; sw < n; ++sw) {
    std::uint64_t mix = options_.retry.seed ^ (0x7C0FF1E5ULL + sw);
    backoffRng_.emplace_back(sdt::detail::splitmix64(mix));
  }
  report_.fromEpoch = plan_.fromEpoch;
  report_.toEpoch = plan_.toEpoch;
  scope_ = plan_.scope;
  if (scope_.empty()) {
    scope_.reserve(n);
    for (int sw = 0; sw < numSwitches(); ++sw) scope_.push_back(sw);
  }
  flipPortsBySwitch_.resize(n);
  for (std::size_t i = 0; i < plan_.scope.size() && i < plan_.flipPorts.size(); ++i) {
    flipPortsBySwitch_[static_cast<std::size_t>(plan_.scope[i])] = plan_.flipPorts[i];
  }
}

bool* ReconfigTransaction::ackedFlag(int sw, Round round) {
  SwitchTxState& s = acked_[static_cast<std::size_t>(sw)];
  switch (round) {
    case Round::kInstall: return &s.installAcked;
    case Round::kBarrier: return &s.barrierAcked;
    case Round::kFlip: return &s.flipAcked;
    case Round::kGc: return &s.gcAcked;
    case Round::kRollback: return &s.rollbackAcked;
  }
  return nullptr;
}

bool* ReconfigTransaction::appliedFlag(int sw, Round round) {
  SwitchTxState& s = applied_[static_cast<std::size_t>(sw)];
  switch (round) {
    case Round::kInstall: return &s.installAcked;
    case Round::kBarrier: return &s.barrierAcked;
    case Round::kFlip: return &s.flipAcked;
    case Round::kGc: return &s.gcAcked;
    case Round::kRollback: return &s.rollbackAcked;
  }
  return nullptr;
}

const char* ReconfigTransaction::roundName(Round round) {
  switch (round) {
    case Round::kInstall: return "install";
    case Round::kBarrier: return "barrier";
    case Round::kFlip: return "flip";
    case Round::kGc: return "gc";
    case Round::kRollback: return "rollback";
  }
  return "?";
}

void ReconfigTransaction::tracePhase(const char* name) {
  if (options_.tracer == nullptr) return;
  const TimeNs now = sim_->now();
  if (spanPhase_ != obs::kNoSpan) options_.tracer->end(spanPhase_, now);
  spanPhase_ = options_.tracer->begin(std::string("reconfigure.") + name, now, spanTx_);
}

void ReconfigTransaction::traceFinish(const char* outcome) {
  if (options_.tracer == nullptr) return;
  const TimeNs now = sim_->now();
  if (spanPhase_ != obs::kNoSpan) {
    options_.tracer->end(spanPhase_, now);
    spanPhase_ = obs::kNoSpan;
  }
  if (spanTx_ == obs::kNoSpan) return;
  options_.tracer->annotate(spanTx_, "outcome", outcome);
  options_.tracer->annotate(spanTx_, "retries", std::to_string(report_.retriesTotal));
  if (!report_.failure.empty()) {
    options_.tracer->annotate(spanTx_, "failure", report_.failure);
  }
  options_.tracer->end(spanTx_, now);
  spanTx_ = obs::kNoSpan;
}

void ReconfigTransaction::start() {
  report_.startedAt = sim_->now();
  if (options_.tracer != nullptr) {
    spanTx_ = options_.tracer->begin("reconfigure", report_.startedAt);
    options_.tracer->annotate(spanTx_, "topology", plan_.topology);
    options_.tracer->annotate(spanTx_, "from_epoch", std::to_string(plan_.fromEpoch));
    options_.tracer->annotate(spanTx_, "to_epoch", std::to_string(plan_.toEpoch));
    options_.tracer->annotate(spanTx_, "rules", std::to_string(plan_.totalEntries));
  }
  tracePhase("prepare");
  // WAL discipline: the prepare record hits the journal before the first
  // install leaves the controller, so any later crash finds an open
  // transaction with its full target intent.
  journalMark(JournalRecordKind::kTxPrepare);
  if (maybeCrash(CrashPoint::kPrepare)) return;
  phase_ = ReconfigPhase::kInstall;
  report_.phaseReached = ReconfigPhase::kInstall;
  currentRound_ = Round::kInstall;
  tracePhase("install");
  if (options_.monitor != nullptr) {
    for (const int sw : scope_) options_.monitor->guardSwitch(sw);
  }
  for (const int sw : scope_) startRound(sw, Round::kInstall, 1);
}

TimeNs ReconfigTransaction::backoffDelay(int sw, int attempt) {
  // attempt is the one that just failed (1-based); mirror retryWithBackoff's
  // capped exponential with deterministic jitter, but event-driven. The cap
  // is applied in double, *before* the cast: commitAttempts is in the
  // hundreds, the uncapped exponential exceeds 2^63 within ~64 attempts
  // (eventually inf — well-defined for doubles), and casting such a value
  // to TimeNs is undefined behavior.
  double wait = static_cast<double>(options_.retry.baseBackoff);
  for (int i = 1; i < attempt; ++i) wait *= options_.retry.backoffMultiplier;
  if (options_.retry.jitter > 0.0) {
    wait *= 1.0 - options_.retry.jitter *
                      backoffRng_[static_cast<std::size_t>(sw)].uniform();
  }
  const double maxBackoff = static_cast<double>(options_.retry.maxBackoff);
  if (!(wait < maxBackoff)) wait = maxBackoff;
  return static_cast<TimeNs>(wait);
}

void ReconfigTransaction::startRound(int sw, Round round, int attempt) {
  if (finished_ || roundComplete_[static_cast<std::size_t>(sw)] != 0) return;
  if (attempt > 1) {
    ++report_.retriesTotal;
    ++acked_[static_cast<std::size_t>(sw)].retries;
    if (options_.metrics != nullptr) {
      options_.metrics
          ->counter("sdt_controller_retry_attempts_total",
                    {{"op", "reconfigure"}, {"phase", roundName(round)}},
                    "Control-channel resends beyond the first attempt")
          .inc();
    }
  }
  // Request travels to the switch; every delivered copy re-sends the ack
  // (the *apply* is idempotent, the ack is not — a lost ack must be
  // recoverable by retransmitting the request).
  channel_->send(sw, [this, sw, round]() {
    // A fenced bundle (stale leader term) is dropped without an ack — the
    // real agent would answer with an error the dead session never reads.
    if (!applyAtSwitch(sw, round)) return;
    channel_->send(sw, [this, sw, round]() { onAck(sw, round); });
  });
  const std::uint64_t gen = gen_;
  sim_->schedule(options_.retry.attemptTimeout,
                 [this, sw, round, attempt, gen]() {
                   onRoundTimeout(sw, round, attempt, gen);
                 });
}

void ReconfigTransaction::onRoundTimeout(int sw, Round round, int attempt,
                                         std::uint64_t gen) {
  if (finished_ || gen != gen_ || roundComplete_[static_cast<std::size_t>(sw)] != 0) {
    return;
  }
  const bool boundless = round == Round::kFlip || round == Round::kRollback ||
                         round == Round::kGc;
  const int cap = boundless ? options_.commitAttempts : options_.retry.maxAttempts;
  if (attempt >= cap) {
    // Budget exhausted. Bounded phases before the commit point abort the
    // whole transaction; the forward-only phases give up on this switch and
    // let finish() report the unverified state.
    if (round == Round::kInstall || round == Round::kBarrier) {
      abort(round == Round::kInstall ? ReconfigPhase::kInstall
                                     : ReconfigPhase::kBarrier,
            strFormat("switch %d unreachable in %s phase after %d attempts", sw,
                      round == Round::kInstall ? "install" : "barrier", attempt));
      return;
    }
    stuck_ = true;
    if (round == Round::kGc) report_.gcIncomplete = true;
    roundComplete_[static_cast<std::size_t>(sw)] = 1;
    ++roundAcks_;
    if (roundAcks_ == scopeSize()) advancePhase();
    return;
  }
  const TimeNs backoff = backoffDelay(sw, attempt);
  sim_->schedule(backoff, [this, sw, round, attempt, gen]() {
    if (finished_ || gen != gen_ ||
        roundComplete_[static_cast<std::size_t>(sw)] != 0) {
      return;
    }
    startRound(sw, round, attempt + 1);
  });
}

bool ReconfigTransaction::applyAtSwitch(int sw, Round round) {
  if (finished_) return true;
  openflow::Switch& ofs = *deployment_->switches[static_cast<std::size_t>(sw)];
  // Term fence first: a bundle from a deposed leader must not touch the
  // table, consume an xid, or even bump the barrier counter.
  if (!ofs.admitTerm(options_.term, options_.leaderId)) return false;
  SwitchTxState& done = applied_[static_cast<std::size_t>(sw)];
  // Mutating bundles carry an OpenFlow xid; the switch itself refuses
  // re-application (openflow::Switch::acceptXid), which is what makes the
  // at-least-once channel safe — see the dedup note on acceptXid(). The
  // applied_ flags stay as cross-round fences and report bookkeeping.
  const std::uint64_t xid = txXid(plan_.toEpoch, static_cast<int>(round), sw);
  switch (round) {
    case Round::kInstall: {
      // A request that limps in after this switch already processed the
      // abort must not resurrect the new epoch's rules.
      if (done.rollbackAcked) break;
      if (!ofs.acceptXid(xid)) break;
      for (const openflow::FlowEntry& e : plan_.tables[static_cast<std::size_t>(sw)]) {
        if (auto s = ofs.table().add(e); !s) {
          abort(ReconfigPhase::kInstall,
                strFormat("switch %d rejected a flow-mod: %s", sw,
                          s.error().message.c_str()));
          return true;
        }
        ++report_.flowModsInstalled;
      }
      done.installAcked = true;
      break;
    }
    case Round::kBarrier:
      // Barriers are naturally idempotent; every delivered request is
      // processed (and separately acked), like a real OpenFlow agent.
      ofs.barrier();
      break;
    case Round::kFlip: {
      // Also idempotent (a pure config write), so no xid is consumed: even
      // a flip retransmitted after a switch reboot must re-apply. A scoped
      // plan flips only the slice's own ingress ports — a scoped switch with
      // no listed ports (a mid-path hop; packets arrive already stamped)
      // gets NO flip, because a whole-switch flip on shared hardware would
      // move every co-tenant's unstamped traffic onto this tenant's epoch.
      if (plan_.scope.empty()) {
        ofs.setIngressEpoch(plan_.toEpoch);
      } else {
        for (const int p : flipPortsBySwitch_[static_cast<std::size_t>(sw)]) {
          ofs.setPortIngressEpoch(p, plan_.toEpoch);
        }
      }
      done.flipAcked = true;
      break;
    }
    case Round::kGc:
      if (!ofs.acceptXid(xid)) break;
      report_.flowModsGarbageCollected +=
          static_cast<int>(ofs.table().removeByEpoch(plan_.fromEpoch));
      done.gcAcked = true;
      break;
    case Round::kRollback:
      if (!ofs.acceptXid(xid)) break;
      report_.flowModsRolledBack +=
          static_cast<int>(ofs.table().removeByEpoch(plan_.toEpoch));
      done.rollbackAcked = true;
      break;
  }
  return true;
}

void ReconfigTransaction::onAck(int sw, Round round) {
  if (finished_) return;
  bool* flag = ackedFlag(sw, round);
  if (*flag) return;  // duplicate or retransmitted ack
  *flag = true;
  if (round == Round::kBarrier) ++report_.barrierRoundTrips;
  // Only acks for the round in progress advance the protocol; a stale ack
  // from an earlier phase (or one arriving after this switch's give-up was
  // recorded) just updates the bookkeeping above.
  if (round != currentRound_ || roundComplete_[static_cast<std::size_t>(sw)] != 0) {
    return;
  }
  roundComplete_[static_cast<std::size_t>(sw)] = 1;
  ++roundAcks_;
  // Mid-phase crash points fire on the *first* ack of their round: the
  // moment the fabric is most asymmetric (one switch has acted, the rest
  // have not), which is the hardest state recovery must untangle.
  if (roundAcks_ == 1) {
    if (round == Round::kInstall && maybeCrash(CrashPoint::kMidInstall)) return;
    if (round == Round::kFlip && maybeCrash(CrashPoint::kPostFlip)) return;
    if (round == Round::kGc && maybeCrash(CrashPoint::kMidGc)) return;
  }
  if (roundAcks_ == scopeSize()) advancePhase();
}

void ReconfigTransaction::advancePhase() {
  ++gen_;
  std::fill(roundComplete_.begin(), roundComplete_.end(), 0);
  roundAcks_ = 0;
  switch (currentRound_) {
    case Round::kInstall:
      phase_ = ReconfigPhase::kBarrier;
      report_.phaseReached = ReconfigPhase::kBarrier;
      currentRound_ = Round::kBarrier;
      tracePhase("barrier");
      for (const int sw : scope_) startRound(sw, Round::kBarrier, 1);
      break;
    case Round::kBarrier:
      // Commit point: the first flip message may stamp a packet with the new
      // epoch the moment it lands, after which rollback is off the table.
      // The crash point sits *before* the flip marker is journaled: a
      // controller that dies here provably sent no flip, so its successor
      // may (must) roll back.
      if (maybeCrash(CrashPoint::kPreFlip)) return;
      journalMark(JournalRecordKind::kTxFlip);
      phase_ = ReconfigPhase::kFlip;
      report_.phaseReached = ReconfigPhase::kFlip;
      currentRound_ = Round::kFlip;
      tracePhase("flip");
      for (const int sw : scope_) startRound(sw, Round::kFlip, 1);
      break;
    case Round::kFlip: {
      report_.updateWindowEnd = sim_->now();
      phase_ = ReconfigPhase::kDrain;
      report_.phaseReached = ReconfigPhase::kDrain;
      tracePhase("drain");
      const std::uint64_t gen = gen_;
      sim_->schedule(options_.drainDelay, [this, gen]() {
        if (!finished_ && gen == gen_) beginGc();
      });
      break;
    }
    case Round::kGc:
      report_.committed = true;
      report_.phaseReached = ReconfigPhase::kDone;
      finish();
      break;
    case Round::kRollback:
      report_.rolledBack = true;
      report_.rollbackLatency = sim_->now() - abortAt_;
      finish();
      break;
  }
}

void ReconfigTransaction::beginGc() {
  journalMark(JournalRecordKind::kTxGc);
  ++gen_;
  phase_ = ReconfigPhase::kGc;
  report_.phaseReached = ReconfigPhase::kGc;
  currentRound_ = Round::kGc;
  tracePhase("gc");
  std::fill(roundComplete_.begin(), roundComplete_.end(), 0);
  roundAcks_ = 0;
  for (const int sw : scope_) startRound(sw, Round::kGc, 1);
}

void ReconfigTransaction::abort(ReconfigPhase at, const std::string& why) {
  if (aborting_ || finished_) return;
  aborting_ = true;
  if (static_cast<int>(at) > static_cast<int>(report_.phaseReached)) {
    report_.phaseReached = at;
  }
  report_.failure = why;
  abortAt_ = sim_->now();
  ++gen_;  // cancels every outstanding install/barrier retry
  std::fill(roundComplete_.begin(), roundComplete_.end(), 0);
  roundAcks_ = 0;
  currentRound_ = Round::kRollback;
  tracePhase("rollback");
  for (const int sw : scope_) startRound(sw, Round::kRollback, 1);
}

void ReconfigTransaction::journalMark(JournalRecordKind kind) {
  if (options_.journal == nullptr) return;
  JournalRecord rec;
  rec.kind = kind;
  rec.at = sim_->now();
  rec.epoch = kind == JournalRecordKind::kTxCommit ? plan_.toEpoch : plan_.fromEpoch;
  rec.fromEpoch = plan_.fromEpoch;
  rec.toEpoch = plan_.toEpoch;
  rec.topology = plan_.topology;
  rec.routing = plan_.routing;
  rec.ecmpSalt = plan_.ecmpSalt;
  // Deliberately non-fatal: a journal that stops accepting writes must not
  // take the live fabric down with it. Recovery treats the journal as a
  // prefix of the truth anyway.
  (void)options_.journal->append(std::move(rec));
}

bool ReconfigTransaction::maybeCrash(CrashPoint point) {
  if (options_.crashAt != point || crashed_ || finished_) return false;
  crashed_ = true;
  finished_ = true;  // the fence: every callback checks this first
  ++gen_;            // cancels outstanding retry timers deterministically
  report_.finishedAt = sim_->now();
  report_.failure = strFormat("controller crashed at %s", crashPointName(point));
  report_.switches = acked_;
  // No journal record, no monitor unguard, no done callback: a killed
  // process runs no cleanup. The guards the transaction took stay in place
  // until recovery re-takes and releases them. The trace, though, is the
  // *observer's* record, not the dead controller's — it closes out.
  traceFinish("crashed");
  if (options_.onCrash) options_.onCrash();
  return true;
}

void ReconfigTransaction::finish() {
  finished_ = true;
  report_.finishedAt = sim_->now();
  journalMark(report_.committed ? JournalRecordKind::kTxCommit
                                : JournalRecordKind::kTxAbort);

  // Purity audit: after a committed transaction every switch must hold only
  // epoch-N+1 rules and stamp N+1; after a rollback, only epoch-N and stamp
  // N. (Epoch-0 wildcard rules — none in SDT-compiled tables — would pass
  // either way by construction.)
  const std::uint32_t keep = report_.committed ? plan_.toEpoch : plan_.fromEpoch;
  const std::uint32_t gone = report_.committed ? plan_.fromEpoch : plan_.toEpoch;
  bool pure = true;
  for (const int sw : scope_) {
    const openflow::Switch& ofs = *deployment_->switches[static_cast<std::size_t>(sw)];
    bool swPure = ofs.table().countEpoch(gone) == 0;
    if (plan_.scope.empty()) {
      swPure = swPure && ofs.ingressEpoch() == keep;
    } else {
      // Scoped: only the listed ports carry this tenant's stamp; the
      // switch-wide epoch (and other tenants' port stamps) are not ours.
      for (const int p : flipPortsBySwitch_[static_cast<std::size_t>(sw)]) {
        swPure = swPure && ofs.portIngressEpoch(p) == keep;
      }
    }
    if (!swPure) {
      pure = false;
      if (report_.committed) report_.gcIncomplete = true;
    }
  }
  report_.pureStateVerified = pure && !stuck_;

  if (report_.committed) {
    deployment_->projection = plan_.projection;
    deployment_->epoch = plan_.toEpoch;
    deployment_->totalFlowEntries = 0;
    deployment_->maxEntriesPerSwitch = 0;
    if (plan_.scope.empty()) {
      for (const auto& ofs : deployment_->switches) {
        const int n = static_cast<int>(ofs->table().size());
        deployment_->totalFlowEntries += n;
        deployment_->maxEntriesPerSwitch = std::max(deployment_->maxEntriesPerSwitch, n);
      }
    } else {
      // Scoped transaction over shared switches: count only the slice's own
      // epoch so co-tenant rules never inflate this deployment's totals.
      for (const int sw : scope_) {
        const openflow::Switch& ofs = *deployment_->switches[static_cast<std::size_t>(sw)];
        const int n = static_cast<int>(ofs.table().countEpoch(plan_.toEpoch));
        deployment_->totalFlowEntries += n;
        deployment_->maxEntriesPerSwitch = std::max(deployment_->maxEntriesPerSwitch, n);
      }
    }
  }
  if (options_.monitor != nullptr) {
    for (const int sw : scope_) options_.monitor->unguardSwitch(sw);
  }
  report_.switches = acked_;
  traceFinish(report_.committed ? "committed" : "rolled_back");
  if (done_) done_(report_);
}

}  // namespace sdt::controller
