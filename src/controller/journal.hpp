// Write-ahead intent journal: the controller's only state that survives a
// crash.
//
// The SDT controller is a single process (the paper runs one Ryu instance);
// everything it knows about the fabric — which topology is deployed, which
// epoch the rules carry, whether a two-phase reconfiguration is mid-flight —
// lives in that process. A crash between planUpdate() and GC would strand
// the fabric in a mixed two-epoch state forever. This journal fixes that by
// the classic WAL discipline: the controller appends an *intent* record
// before every externally-visible action (deploy, transaction prepare, the
// first flip send, the first GC send, commit/abort), so a restarted
// controller can always answer "what did I mean to do, and how far could I
// have gotten?" without trusting any in-memory state.
//
// Record framing is torn-write tolerant: every record is
//   [magic u32][payload length u32][FNV-1a-32 checksum u32][payload bytes]
// (all little-endian; payload is one compact JSON document). A crash mid-
// append leaves a truncated or checksum-failing tail, which replay() drops
// silently — the journal is exactly the durable prefix. Records carry
// *simulated* time only, never wall-clock, so journaled runs stay
// bit-identical across repeats and serial-vs-threaded sweeps.
//
// Storage is pluggable: MemoryJournalStorage for tests and simulations (and
// for torn-write fault injection — tests truncate the byte string directly),
// FileJournalStorage for sdtctl post-mortems.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace sdt::controller {

enum class JournalRecordKind : std::uint8_t {
  kDeploy,     ///< cold deploy: `topology`/`routing` live at `epoch`
  kTxPrepare,  ///< transaction planned: fromEpoch -> toEpoch, target intent
  kTxFlip,     ///< about to send the first flip (commit point may be crossed)
  kTxGc,       ///< drain done, about to send epoch-`fromEpoch` deletes
  kTxCommit,   ///< transaction finished committed (GC done or backstopped)
  kTxAbort,    ///< transaction aborted and rolled back to `fromEpoch`
  kRecovery,   ///< crash recovery converged the fabric onto `topology`@`epoch`
  kCheckpoint, ///< compaction: folds every earlier record (same fold as deploy)
};

const char* journalRecordKindName(JournalRecordKind kind);

struct JournalRecord {
  JournalRecordKind kind = JournalRecordKind::kDeploy;
  std::uint64_t seq = 0;        ///< assigned by Journal::append, monotonic
  TimeNs at = 0;                ///< simulated time (never wall-clock)
  std::uint32_t epoch = 0;      ///< epoch this record establishes / refers to
  std::uint32_t fromEpoch = 0;  ///< transaction records only
  std::uint32_t toEpoch = 0;
  std::string topology;         ///< intent identity: topo::Topology::name()
  std::string routing;          ///< routing::RoutingAlgorithm::name()
  std::uint64_t ecmpSalt = 0;   ///< DeployOptions::ecmpSalt the tables used

  [[nodiscard]] json::Value toJson() const;
  static Result<JournalRecord> fromJson(const json::Value& doc);
};

/// The journal folded down to "what should the fabric look like right now":
/// the last durable intent plus the open transaction, if any. This is the
/// whole input to the crash-recovery decision (controller/recovery.hpp).
struct JournalState {
  bool valid = false;          ///< at least one deploy/recovery record
  std::string topology;        ///< live intent
  std::string routing;
  std::uint32_t epoch = 0;
  std::uint64_t ecmpSalt = 0;

  bool txOpen = false;         ///< prepare journaled, no commit/abort yet
  bool txFlipped = false;      ///< flip marker journaled: roll FORWARD
  bool txGcStarted = false;    ///< gc marker journaled (still roll forward)
  std::string txTopology;      ///< the open transaction's target intent
  std::string txRouting;
  std::uint32_t txFromEpoch = 0;
  std::uint32_t txToEpoch = 0;
  std::uint64_t txEcmpSalt = 0;

  [[nodiscard]] json::Value toJson() const;
};

/// Fold records (in order) into the derived state.
[[nodiscard]] JournalState foldJournal(const std::vector<JournalRecord>& records);

/// Byte-oriented durable backend. Framing and checksums live in Journal, so
/// every backend gets torn-write tolerance for free.
class JournalStorage {
 public:
  virtual ~JournalStorage() = default;
  virtual Status<Error> append(std::string_view bytes) = 0;
  [[nodiscard]] virtual Result<std::string> read() const = 0;
  /// Atomically swap the whole journal for `bytes` (compaction). "Atomic"
  /// means a crash leaves either the old content or the new — never a mix —
  /// though a torn *prefix* of the new content must still replay safely
  /// (the framing guarantees that).
  virtual Status<Error> replaceAll(std::string_view bytes) = 0;
};

class MemoryJournalStorage final : public JournalStorage {
 public:
  Status<Error> append(std::string_view bytes) override {
    bytes_.append(bytes);
    return {};
  }
  [[nodiscard]] Result<std::string> read() const override { return bytes_; }
  Status<Error> replaceAll(std::string_view bytes) override {
    bytes_.assign(bytes);
    return {};
  }

  /// Test access: fault injection truncates or flips bytes here to model
  /// torn writes and media corruption.
  [[nodiscard]] std::string& bytes() { return bytes_; }

 private:
  std::string bytes_;
};

/// Appends to a file, flushed per record (the modeled fsync). Reads the
/// whole file back for replay; a missing file is an empty journal.
class FileJournalStorage final : public JournalStorage {
 public:
  explicit FileJournalStorage(std::string path) : path_(std::move(path)) {}
  ~FileJournalStorage() override;
  Status<Error> append(std::string_view bytes) override;
  [[nodiscard]] Result<std::string> read() const override;
  /// Write-to-temp + rename, closing the lazy append handle first so the
  /// next append reopens the compacted file, not the replaced inode.
  Status<Error> replaceAll(std::string_view bytes) override;
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;  ///< append handle, opened lazily
};

struct JournalReplay {
  std::vector<JournalRecord> records;
  JournalState state;            ///< foldJournal(records)
  std::size_t droppedBytes = 0;  ///< torn/corrupt tail discarded by replay
};

class Journal {
 public:
  /// Binds to (and scans) the storage: appends continue the durable
  /// sequence numbering, so a recovered controller journals seamlessly
  /// after the crashed one's records.
  explicit Journal(JournalStorage& storage);

  /// Frame, checksum, and durably append one record (seq is assigned here).
  Status<Error> append(JournalRecord record);

  /// Replication tap (controller/ha.hpp): called after every successful
  /// append() with the record as durably written (seq assigned) — the
  /// leader's streamer ships exactly what hit storage, never a reordering
  /// of it. Not invoked for appendReplica() or compact() rewrites.
  using AppendObserver = std::function<void(const JournalRecord&)>;
  void setAppendObserver(AppendObserver observer) {
    observer_ = std::move(observer);
  }

  /// Replica-side append (journal streaming): durably append a record that
  /// already carries the leader's seq, preserved verbatim so the replica's
  /// byte stream folds — and numbers — identically to the leader's. The
  /// next leader-side append() on this journal continues past it.
  Status<Error> appendReplica(const JournalRecord& record);

  /// Re-scan storage after an out-of-band rewrite (snapshot catch-up swaps
  /// the whole backing store via JournalStorage::replaceAll): picks up the
  /// new sequence horizon without constructing a fresh Journal.
  void rescan();

  /// Decode every intact record; a truncated or checksum-failing record
  /// ends the replay (the stream has no resync point past corruption —
  /// everything after the first bad frame is reported in droppedBytes).
  [[nodiscard]] Result<JournalReplay> replay() const;

  /// Checkpoint-and-truncate compaction: fold the whole journal into its
  /// derived state and rewrite storage as the minimal record sequence that
  /// folds back to exactly that state — one checkpoint record for the live
  /// intent, plus the open transaction's prepare/flip/gc markers when one is
  /// mid-flight. Sequence numbering continues across the compaction (the
  /// checkpoint records take fresh seqs), so recovery code can still order
  /// records written before and after. A torn tail in the pre-compaction
  /// journal is dropped, same as replay. Returns the number of records
  /// folded away.
  Result<std::size_t> compact();

  [[nodiscard]] std::uint64_t nextSeq() const { return nextSeq_; }

 private:
  JournalStorage* storage_;
  std::uint64_t nextSeq_ = 1;
  AppendObserver observer_;
};

}  // namespace sdt::controller
