#include "routing/routing.hpp"

#include "common/strings.hpp"
#include "routing/adaptive.hpp"
#include "routing/dragonfly.hpp"
#include "routing/fat_tree.hpp"
#include "routing/mesh_torus.hpp"
#include "routing/shortest_path.hpp"

namespace sdt::routing {

Result<std::vector<topo::SwitchId>> RoutingAlgorithm::tracePath(
    topo::HostId src, topo::HostId dst, std::uint64_t flowHash) const {
  std::vector<topo::SwitchId> path;
  topo::SwitchId sw = topo_->hostSwitch(src);
  const topo::SwitchId target = topo_->hostSwitch(dst);
  int vc = 0;
  path.push_back(sw);
  const int maxHops = 4 * topo_->numSwitches() + 8;
  while (sw != target) {
    if (static_cast<int>(path.size()) > maxHops) {
      return makeError(strFormat("routing loop: %s, host %d -> %d", name().c_str(), src, dst));
    }
    auto hop = nextHop(sw, dst, vc, flowHash);
    if (!hop) return hop.error();
    const auto peer = topo_->neighborOf(topo::SwitchPort{sw, hop.value().outPort});
    if (!peer) {
      return makeError(strFormat("%s: switch %d port %d has no fabric link",
                                 name().c_str(), sw, hop.value().outPort));
    }
    sw = peer->sw;
    vc = hop.value().vc;
    path.push_back(sw);
  }
  return path;
}

Result<std::unique_ptr<RoutingAlgorithm>> makeRouting(const std::string& strategy,
                                                      const topo::Topology& topo) {
  if (strategy == "shortest") {
    return std::unique_ptr<RoutingAlgorithm>(new ShortestPathRouting(topo));
  }
  if (strategy == "fattree-dfs") {
    auto r = FatTreeRouting::create(topo);
    if (!r) return r.error();
    return std::unique_ptr<RoutingAlgorithm>(std::move(r).value());
  }
  if (strategy == "dragonfly-minimal") {
    auto r = DragonflyMinimalRouting::create(topo);
    if (!r) return r.error();
    return std::unique_ptr<RoutingAlgorithm>(std::move(r).value());
  }
  if (strategy == "dragonfly-adaptive") {
    auto r = AdaptiveDragonflyRouting::create(topo);
    if (!r) return r.error();
    return std::unique_ptr<RoutingAlgorithm>(std::move(r).value());
  }
  if (strategy == "mesh-xy" || strategy == "mesh-xyz" || strategy == "torus-clue") {
    auto r = DimensionOrderRouting::create(topo);
    if (!r) return r.error();
    return std::unique_ptr<RoutingAlgorithm>(std::move(r).value());
  }
  return makeError("unknown routing strategy: " + strategy);
}

}  // namespace sdt::routing
