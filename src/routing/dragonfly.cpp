#include "routing/dragonfly.hpp"

#include "common/strings.hpp"

namespace sdt::routing {

DragonflyMinimalRouting::DragonflyMinimalRouting(const topo::Topology& topo, int a, int g)
    : RoutingAlgorithm(topo), a_(a), g_(g) {
  gateway_.assign(static_cast<std::size_t>(g),
                  std::vector<std::pair<topo::SwitchId, topo::PortId>>(
                      static_cast<std::size_t>(g), {-1, -1}));
  localPort_.resize(static_cast<std::size_t>(topo.numSwitches()));
  for (int li = 0; li < topo.numLinks(); ++li) {
    const topo::Link& link = topo.link(li);
    const int ga = link.a.sw / a_;
    const int gb = link.b.sw / a_;
    if (ga == gb) {
      localPort_[link.a.sw].emplace_back(link.b.sw, link.a.port);
      localPort_[link.b.sw].emplace_back(link.a.sw, link.b.port);
    } else {
      gateway_[ga][gb] = {link.a.sw, link.a.port};
      gateway_[gb][ga] = {link.b.sw, link.b.port};
    }
  }
}

Result<std::unique_ptr<DragonflyMinimalRouting>> DragonflyMinimalRouting::create(
    const topo::Topology& topo) {
  // Re-derive (a, g) from the generator's name; the structure itself is
  // validated by the gateway scan (every group pair must have a link).
  int a = 0, g = 0, h = 0;
  if (std::sscanf(topo.name().c_str(), "dragonfly-a%d-g%d-h%d", &a, &g, &h) != 3 ||
      a * g != topo.numSwitches()) {
    return makeError(strFormat("topology '%s' is not a generated dragonfly",
                               topo.name().c_str()));
  }
  std::unique_ptr<DragonflyMinimalRouting> r(new DragonflyMinimalRouting(topo, a, g));
  for (int gi = 0; gi < g; ++gi) {
    for (int gj = 0; gj < g; ++gj) {
      if (gi != gj && r->gateway_[gi][gj].first < 0) {
        return makeError(strFormat("dragonfly: groups %d and %d share no global link",
                                   gi, gj));
      }
    }
  }
  return r;
}

std::pair<topo::SwitchId, topo::PortId> DragonflyMinimalRouting::globalGateway(
    int group, int peerGroup) const {
  return gateway_[group][peerGroup];
}

topo::PortId DragonflyMinimalRouting::localPort(topo::SwitchId sw,
                                                topo::SwitchId peer) const {
  for (const auto& [p, port] : localPort_[sw]) {
    if (p == peer) return port;
  }
  return -1;
}

Result<Hop> DragonflyMinimalRouting::minimalStep(topo::SwitchId sw,
                                                 topo::SwitchId targetSw, int vc) const {
  const int myGroup = groupOf(sw);
  const int dstGroup = targetSw / a_;
  if (myGroup == dstGroup) {
    // Final local hop(s): direct link inside the group.
    const topo::PortId port = localPort(sw, targetSw);
    if (port < 0) {
      return makeError(strFormat("dragonfly: no local link %d -> %d", sw, targetSw));
    }
    return Hop{port, vc};
  }
  const auto [gwRouter, gwPort] = gateway_[myGroup][dstGroup];
  if (gwRouter == sw) {
    // Take the global link; bump to VC1 (deadlock avoidance).
    return Hop{gwPort, 1};
  }
  // Local hop toward this group's gateway router.
  const topo::PortId port = localPort(sw, gwRouter);
  if (port < 0) {
    return makeError(strFormat("dragonfly: no local link %d -> gateway %d", sw, gwRouter));
  }
  return Hop{port, vc};
}

Result<Hop> DragonflyMinimalRouting::nextHop(topo::SwitchId sw, topo::HostId dst, int vc,
                                             std::uint64_t /*flowHash*/) const {
  return minimalStep(sw, topo_->hostSwitch(dst), vc);
}

}  // namespace sdt::routing
