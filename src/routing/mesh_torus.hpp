// Dimension-order routing for 2D/3D meshes and tori (paper Table III:
// "X-Y routing", "X-Y-Z routing", and "Clue" for torus).
//
// Mesh: plain X-then-Y(-then-Z) dimension order. All turns are from a lower
// dimension into a higher one, so the channel dependency graph is acyclic
// and no VCs are needed ("deadlock avoidance by routing").
//
// Torus: dimension order plus the classic dateline scheme the Clue algorithm
// builds on: each dimension has two VC classes; a packet starts a dimension
// on class 0 and moves to class 1 when it crosses that dimension's wraparound
// ("dateline") link, which cuts the ring cycle. VCs encode (dimension, class)
// as  vc = 2*dim + class,  so downstream switches can tell a fresh dimension
// entry (reset to class 0) from continued travel.
#pragma once

#include <memory>

#include "routing/routing.hpp"
#include "topo/generators.hpp"

namespace sdt::routing {

class DimensionOrderRouting : public RoutingAlgorithm {
 public:
  /// Parses the grid shape from the generator name ("mesh2d-AxB",
  /// "mesh3d-AxBxC", "torus2d-AxB", "torus3d-AxBxC").
  static Result<std::unique_ptr<DimensionOrderRouting>> create(const topo::Topology& topo);

  [[nodiscard]] std::string name() const override {
    return wrap_ ? "torus-clue" : (shape_.z > 1 ? "mesh-xyz" : "mesh-xy");
  }
  [[nodiscard]] int numVcs() const override { return wrap_ ? 2 * dims() : 1; }
  [[nodiscard]] Result<Hop> nextHop(topo::SwitchId sw, topo::HostId dst, int vc,
                                    std::uint64_t flowHash) const override;

  [[nodiscard]] int dims() const { return shape_.z > 1 ? 3 : 2; }
  [[nodiscard]] const topo::MeshShape& shape() const { return shape_; }

 private:
  DimensionOrderRouting(const topo::Topology& topo, topo::MeshShape shape, bool wrap);

  /// Port on `sw` leading to `peer`; -1 when absent.
  [[nodiscard]] topo::PortId portToward(topo::SwitchId sw, topo::SwitchId peer) const;

  topo::MeshShape shape_;
  bool wrap_;
  std::vector<std::vector<std::pair<topo::SwitchId, topo::PortId>>> portTo_;
};

}  // namespace sdt::routing
