// Routing Strategy module (paper §V-2, Table III).
//
// A RoutingAlgorithm answers, for a packet at logical switch `sw` destined
// to host `dst` and currently on virtual channel `vc`: which output port and
// which VC next. The answer is a *logical* port — the controller translates
// it into physical flow entries for SDT, and the simulator consumes it
// directly for the full-testbed baseline, so both planes forward identically
// by construction.
//
// `flowHash` lets multipath algorithms (Fat-Tree ECMP) spread flows while
// staying per-flow deterministic — the same hash always takes the same path,
// like real switches hashing the 5-tuple.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.hpp"
#include "topo/topology.hpp"

namespace sdt::routing {

struct Hop {
  topo::PortId outPort = -1;
  int vc = 0;
};

class RoutingAlgorithm {
 public:
  explicit RoutingAlgorithm(const topo::Topology& topo) : topo_(&topo) {}
  virtual ~RoutingAlgorithm() = default;
  RoutingAlgorithm(const RoutingAlgorithm&) = delete;
  RoutingAlgorithm& operator=(const RoutingAlgorithm&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;
  /// Number of virtual channels the algorithm requires (Table III's
  /// deadlock-avoidance column; 1 means deadlock freedom needs no VCs).
  [[nodiscard]] virtual int numVcs() const { return 1; }

  /// Next hop for a packet at `sw` heading to `dst` on channel `vc`.
  /// When `sw` is the destination's own switch the packet leaves the fabric
  /// (the controller emits the host-port delivery rule), so algorithms may
  /// assume sw != hostSwitch(dst).
  [[nodiscard]] virtual Result<Hop> nextHop(topo::SwitchId sw, topo::HostId dst, int vc,
                                            std::uint64_t flowHash = 0) const = 0;

  [[nodiscard]] const topo::Topology& topology() const { return *topo_; }

  /// Follow nextHop() from `src`'s switch to `dst`'s switch; returns the
  /// switch sequence, or an error on a loop/dead end (shared by tests and
  /// the deadlock analyzer).
  [[nodiscard]] Result<std::vector<topo::SwitchId>> tracePath(
      topo::HostId src, topo::HostId dst, std::uint64_t flowHash = 0) const;

 protected:
  const topo::Topology* topo_;  ///< non-owning; caller keeps the topology alive
};

/// Factory matching the paper's Table III strategy names: "shortest",
/// "fattree-dfs", "dragonfly-minimal", "mesh-xy", "mesh-xyz", "torus-clue".
/// Mesh/torus names require the topology name to carry its shape (the
/// generators do). Fails on an unknown strategy.
Result<std::unique_ptr<RoutingAlgorithm>> makeRouting(const std::string& strategy,
                                                      const topo::Topology& topo);

}  // namespace sdt::routing
