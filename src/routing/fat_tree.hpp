// Fat-Tree routing (paper Table III: "Depth-First Search (DFS)").
//
// Implements the classic up*/down* discipline the DFS search converges to on
// a Fat-Tree: climb toward the core only as far as the lowest common level,
// then descend. Upward port choice is ECMP-hashed per flow; downward paths
// are unique by construction. Up/down paths cannot form channel cycles, so
// no virtual channels are needed (Table III: "No need").
//
// The switch-id layout is the one `makeFatTree` produces: cores first, then
// per pod the aggregation switches followed by the edge switches. create()
// re-derives k from the switch count and verifies the structure.
#pragma once

#include <memory>
#include <vector>

#include "routing/routing.hpp"

namespace sdt::routing {

class FatTreeRouting : public RoutingAlgorithm {
 public:
  static Result<std::unique_ptr<FatTreeRouting>> create(const topo::Topology& topo);

  [[nodiscard]] std::string name() const override { return "fattree-dfs"; }
  [[nodiscard]] Result<Hop> nextHop(topo::SwitchId sw, topo::HostId dst, int vc,
                                    std::uint64_t flowHash) const override;

  [[nodiscard]] int k() const { return k_; }

  /// Level of a switch: 0 = core, 1 = aggregation, 2 = edge.
  [[nodiscard]] int levelOf(topo::SwitchId sw) const;
  [[nodiscard]] int podOf(topo::SwitchId sw) const;

  /// All up-ports usable at `sw` toward `dst` (ECMP set; used by the
  /// deadlock analyzer to cover every branch).
  [[nodiscard]] std::vector<topo::PortId> upCandidates(topo::SwitchId sw,
                                                       topo::HostId dst) const;

 private:
  FatTreeRouting(const topo::Topology& topo, int k);

  [[nodiscard]] int numCore() const { return (k_ / 2) * (k_ / 2); }

  int k_;
  /// portTo_[sw] maps neighbor switch -> local out port (built once).
  std::vector<std::vector<std::pair<topo::SwitchId, topo::PortId>>> portTo_;

  [[nodiscard]] Result<topo::PortId> portToward(topo::SwitchId sw,
                                                topo::SwitchId neighbor) const;
};

}  // namespace sdt::routing
