// Active (adaptive) routing for Dragonfly (paper §VI-E, based on
// topology-custom UGAL [Rahman et al., SC'19]).
//
// At the injection router the algorithm compares the congestion of the
// minimal path against a Valiant detour through a flow-specific random
// intermediate group, using the port-load estimates the Network Monitor
// module collects (§V-3). The choice is encoded in the VC so downstream
// routers route consistently without per-packet state:
//   VC 0/1 : minimal mode (0 before the global hop, 1 after — as in
//            DragonflyMinimalRouting)
//   VC 2   : Valiant phase 1, heading to the intermediate group; once the
//            packet reaches it, the router demotes it to minimal mode VC0.
// Phase 1 is pure local->global (no local hop after its global), so VC2
// channels only depend on VC0/1 channels and the CDG stays acyclic.
#pragma once

#include <functional>
#include <memory>

#include "routing/dragonfly.hpp"

namespace sdt::routing {

/// Load estimate for (switch, out port): typically queued bytes or an EWMA
/// thereof, in arbitrary but consistent units. Defaults to "all zero",
/// which makes the algorithm purely minimal.
using CongestionOracle = std::function<double(topo::SwitchId, topo::PortId)>;

class AdaptiveDragonflyRouting : public DragonflyMinimalRouting {
 public:
  static Result<std::unique_ptr<AdaptiveDragonflyRouting>> create(
      const topo::Topology& topo);

  [[nodiscard]] std::string name() const override { return "dragonfly-adaptive"; }
  [[nodiscard]] int numVcs() const override { return 3; }
  [[nodiscard]] Result<Hop> nextHop(topo::SwitchId sw, topo::HostId dst, int vc,
                                    std::uint64_t flowHash) const override;

  void setCongestionOracle(CongestionOracle oracle) { oracle_ = std::move(oracle); }

  /// UGAL bias: take the detour only when
  ///   minimalCost > valiantCost * pathRatio + threshold.
  void setBias(double threshold) { threshold_ = threshold; }

  /// Intermediate group for a flow (deterministic; excludes src/dst groups).
  [[nodiscard]] int intermediateGroup(int srcGroup, int dstGroup,
                                      std::uint64_t flowHash) const;

 private:
  using DragonflyMinimalRouting::DragonflyMinimalRouting;

  [[nodiscard]] double loadOf(topo::SwitchId sw, topo::PortId port) const {
    return oracle_ ? oracle_(sw, port) : 0.0;
  }

  CongestionOracle oracle_;
  double threshold_ = 1.0;
};

}  // namespace sdt::routing
