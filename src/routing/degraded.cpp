#include "routing/degraded.hpp"

#include <deque>

#include "common/strings.hpp"

namespace sdt::routing {

DegradedRouting::DegradedRouting(const topo::Topology& topo,
                                 std::vector<int> severedLinks, int numVcs)
    : RoutingAlgorithm(topo), severed_(std::move(severedLinks)), vcs_(numVcs) {
  severedMask_.assign(topo.links().size(), 0);
  for (const int li : severed_) {
    if (li >= 0 && li < static_cast<int>(severedMask_.size())) severedMask_[li] = 1;
  }
  // Per-destination BFS over the surviving switch graph. Can't reuse
  // Topology::switchGraph(): its edge indices don't correspond to link
  // indices once parallel links exist, so walk the link list directly.
  const int n = topo.numSwitches();
  dist_.assign(static_cast<std::size_t>(n), {});
  for (int target = 0; target < n; ++target) {
    std::vector<int>& dist = dist_[target];
    dist.assign(static_cast<std::size_t>(n), -1);
    dist[target] = 0;
    std::deque<int> frontier{target};
    while (!frontier.empty()) {
      const int sw = frontier.front();
      frontier.pop_front();
      for (const int li : topo.linksOf(sw)) {
        if (severedMask_[li]) continue;
        const int peer = topo.link(li).peerOf(sw).sw;
        if (dist[peer] < 0) {
          dist[peer] = dist[sw] + 1;
          frontier.push_back(peer);
        }
      }
    }
  }
}

std::vector<topo::PortId> DegradedRouting::candidates(topo::SwitchId sw,
                                                      topo::HostId dst) const {
  const topo::SwitchId target = topo_->hostSwitch(dst);
  const std::vector<int>& dist = dist_[target];
  std::vector<topo::PortId> out;
  for (const int li : topo_->linksOf(sw)) {
    if (severedMask_[li]) continue;
    const topo::Link& link = topo_->link(li);
    const topo::SwitchPort mine = link.a.sw == sw ? link.a : link.b;
    const topo::SwitchPort peer = link.peerOf(sw);
    if (dist[peer.sw] >= 0 && dist[sw] >= 0 && dist[peer.sw] == dist[sw] - 1) {
      out.push_back(mine.port);
    }
  }
  return out;
}

bool DegradedRouting::reachable(topo::SwitchId sw, topo::HostId dst) const {
  return dist_[topo_->hostSwitch(dst)][sw] >= 0;
}

Result<Hop> DegradedRouting::nextHop(topo::SwitchId sw, topo::HostId dst, int vc,
                                     std::uint64_t flowHash) const {
  const auto cands = candidates(sw, dst);
  if (cands.empty()) {
    return makeError(strFormat(
        "degraded-shortest: no surviving route from switch %d to host %d (%zu link(s) severed)",
        sw, dst, severed_.size()));
  }
  return Hop{cands[flowHash % cands.size()], vc};
}

}  // namespace sdt::routing
