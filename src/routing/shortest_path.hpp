// BFS shortest-path routing with deterministic per-flow ECMP.
//
// The general-purpose strategy for WAN topologies (Table II's 261 Internet
// graphs) and any topology without a dedicated algorithm. Deadlock freedom
// is not guaranteed in general (WANs run lossy ethernet, where it is moot).
//
// Optionally congestion-aware: with a CongestionOracle installed the
// per-flow hash picks among the *least-loaded* equal-cost candidates
// instead of all of them, spreading elephant collisions under overload
// (same oracle contract as AdaptiveDragonflyRouting).
#pragma once

#include <functional>
#include <vector>

#include "routing/routing.hpp"

namespace sdt::routing {

class ShortestPathRouting : public RoutingAlgorithm {
 public:
  /// Load estimate for (switch, out port) — typically queued bytes.
  /// Shard-safety contract: the oracle runs inside a data-plane forwarding
  /// decision on the switch's owning shard, so it must read only state owned
  /// by that switch (its own egress queues), never another shard's.
  using CongestionOracle = std::function<double(topo::SwitchId, topo::PortId)>;

  explicit ShortestPathRouting(const topo::Topology& topo);

  [[nodiscard]] std::string name() const override { return "shortest"; }
  [[nodiscard]] Result<Hop> nextHop(topo::SwitchId sw, topo::HostId dst, int vc,
                                    std::uint64_t flowHash) const override;

  /// All equal-cost out-ports at `sw` toward `dst` (ECMP set).
  [[nodiscard]] std::vector<topo::PortId> candidates(topo::SwitchId sw,
                                                     topo::HostId dst) const;

  /// Weight ECMP choices by load: nextHop() restricts the hash pick to the
  /// candidates whose oracle load ties for minimum (deterministic at equal
  /// loads — the tie set is ordered by port id).
  void setCongestionOracle(CongestionOracle oracle) { oracle_ = std::move(oracle); }

 private:
  /// dist_[dstSwitch][sw] = hop distance in the switch graph.
  std::vector<std::vector<int>> dist_;
  CongestionOracle oracle_;
};

}  // namespace sdt::routing
