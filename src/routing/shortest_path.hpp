// BFS shortest-path routing with deterministic per-flow ECMP.
//
// The general-purpose strategy for WAN topologies (Table II's 261 Internet
// graphs) and any topology without a dedicated algorithm. Deadlock freedom
// is not guaranteed in general (WANs run lossy ethernet, where it is moot).
#pragma once

#include <vector>

#include "routing/routing.hpp"

namespace sdt::routing {

class ShortestPathRouting : public RoutingAlgorithm {
 public:
  explicit ShortestPathRouting(const topo::Topology& topo);

  [[nodiscard]] std::string name() const override { return "shortest"; }
  [[nodiscard]] Result<Hop> nextHop(topo::SwitchId sw, topo::HostId dst, int vc,
                                    std::uint64_t flowHash) const override;

  /// All equal-cost out-ports at `sw` toward `dst` (ECMP set).
  [[nodiscard]] std::vector<topo::PortId> candidates(topo::SwitchId sw,
                                                     topo::HostId dst) const;

 private:
  /// dist_[dstSwitch][sw] = hop distance in the switch graph.
  std::vector<std::vector<int>> dist_;
};

}  // namespace sdt::routing
