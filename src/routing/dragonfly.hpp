// Dragonfly minimal routing with VC-based deadlock avoidance
// (paper Table III: "Minimal routing" + "Changing VC" [Dally-Aoki/Kim]).
//
// A minimal Dragonfly path is  local* -> global -> local*, at most
// l-g-l. Cycles can only close through the final local hop, so packets bump
// from VC0 to VC1 when they traverse a global link: local channels before
// the global hop use VC0, local channels after it use VC1, and the channel
// dependency graph is acyclic (verified by tests via routing/deadlock.hpp).
//
// Structure (groups, global wiring) is re-derived from the topology built by
// `makeDragonfly`, whose canonical "consecutive" global arrangement wires
// one global link between every group pair when a*h == g-1.
#pragma once

#include <memory>
#include <vector>

#include "routing/routing.hpp"

namespace sdt::routing {

class DragonflyMinimalRouting : public RoutingAlgorithm {
 public:
  static Result<std::unique_ptr<DragonflyMinimalRouting>> create(const topo::Topology& topo);

  [[nodiscard]] std::string name() const override { return "dragonfly-minimal"; }
  [[nodiscard]] int numVcs() const override { return 2; }
  [[nodiscard]] Result<Hop> nextHop(topo::SwitchId sw, topo::HostId dst, int vc,
                                    std::uint64_t flowHash) const override;

  [[nodiscard]] int a() const { return a_; }
  [[nodiscard]] int g() const { return g_; }
  [[nodiscard]] int groupOf(topo::SwitchId sw) const { return sw / a_; }

  /// Router in `group` holding a global link to `peerGroup` plus the port;
  /// (-1,-1) if none. Exposed for the adaptive variant.
  [[nodiscard]] std::pair<topo::SwitchId, topo::PortId> globalGateway(int group,
                                                                      int peerGroup) const;

  /// Out-port of the local link sw -> peer inside one group; -1 if absent.
  [[nodiscard]] topo::PortId localPort(topo::SwitchId sw, topo::SwitchId peer) const;

 protected:
  DragonflyMinimalRouting(const topo::Topology& topo, int a, int g);

  /// Route one minimal step toward `targetSw`, bumping VC on global hops.
  [[nodiscard]] Result<Hop> minimalStep(topo::SwitchId sw, topo::SwitchId targetSw,
                                        int vc) const;

  int a_;
  int g_;
  /// gateway_[gi][gj] = (router in gi, port) carrying the gi->gj global link.
  std::vector<std::vector<std::pair<topo::SwitchId, topo::PortId>>> gateway_;
  /// localPort_[sw] = (peer switch, port) pairs inside sw's group.
  std::vector<std::vector<std::pair<topo::SwitchId, topo::PortId>>> localPort_;
};

}  // namespace sdt::routing
