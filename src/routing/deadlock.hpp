// Channel-dependency-graph (CDG) deadlock analysis (Dally & Seitz).
//
// A routing function is deadlock-free on wormhole/lossless (PFC) fabrics iff
// its channel dependency graph is acyclic. Channels are (link, direction,
// VC) triples; an edge c1 -> c2 exists when some packet can hold c1 while
// requesting c2 at the next switch. The builder walks every reachable
// routing state (switch, destination host, VC) from every injection point,
// probing several flow hashes so ECMP/adaptive branches are covered, and
// then runs cycle detection.
//
// Table III's "deadlock avoidance" column is validated by running this over
// every (topology, strategy) pair the paper lists.
#pragma once

#include <string>
#include <vector>

#include "routing/routing.hpp"

namespace sdt::routing {

struct Channel {
  int link = -1;  ///< index into Topology::links()
  int dir = 0;    ///< 0: a->b, 1: b->a
  int vc = 0;

  auto operator<=>(const Channel&) const = default;
};

struct DeadlockReport {
  bool deadlockFree = false;
  std::vector<Channel> cycle;  ///< a witness cycle when !deadlockFree
  int channelsUsed = 0;
  int dependencyEdges = 0;
  std::string error;  ///< non-empty when routing itself failed mid-analysis
};

/// Analyze one routing algorithm. `hashProbes` flow hashes are tried per
/// state so modulo-hashed ECMP choices are all enumerated (use >= the
/// largest ECMP fan-out; the default covers fat-trees up to k=16).
DeadlockReport analyzeDeadlock(const topo::Topology& topo, const RoutingAlgorithm& algo,
                               int hashProbes = 8);

/// Analyze the union CDG of several algorithm variants sharing one fabric
/// (e.g. adaptive routing probed in forced-minimal and forced-Valiant
/// modes); deadlock freedom must hold over the union.
DeadlockReport analyzeDeadlock(const topo::Topology& topo,
                               const std::vector<const RoutingAlgorithm*>& algos,
                               int hashProbes = 8);

}  // namespace sdt::routing
