// Shortest-path routing on a *degraded* topology: the logical graph minus a
// set of severed links.
//
// Used by SdtController::repair() when a physical failure cannot be
// re-projected onto a spare port: the affected logical links are marked
// severed and the survivors route around them. Same deterministic per-flow
// ECMP as ShortestPathRouting; pairs left disconnected by the damage simply
// have no candidates (nextHop errors), and repair() reports them as
// unreachable instead of installing black-hole entries.
#pragma once

#include <vector>

#include "routing/routing.hpp"

namespace sdt::routing {

class DegradedRouting : public RoutingAlgorithm {
 public:
  /// `severedLinks` are indices into Topology::links() to route around.
  /// `numVcs` preserves the VC dimension of the routing being replaced so
  /// recompiled flow tables keep their shape (entries still match per-VC).
  DegradedRouting(const topo::Topology& topo, std::vector<int> severedLinks,
                  int numVcs = 1);

  [[nodiscard]] std::string name() const override { return "degraded-shortest"; }
  [[nodiscard]] int numVcs() const override { return vcs_; }
  [[nodiscard]] Result<Hop> nextHop(topo::SwitchId sw, topo::HostId dst, int vc,
                                    std::uint64_t flowHash) const override;

  /// Equal-cost out-ports at `sw` toward `dst`, severed links excluded.
  [[nodiscard]] std::vector<topo::PortId> candidates(topo::SwitchId sw,
                                                     topo::HostId dst) const;

  [[nodiscard]] bool isSevered(int linkIndex) const {
    return linkIndex >= 0 && linkIndex < static_cast<int>(severedMask_.size()) &&
           severedMask_[linkIndex] != 0;
  }
  [[nodiscard]] const std::vector<int>& severedLinks() const { return severed_; }

  /// Whether `sw` can still reach `dst`'s switch over surviving links.
  [[nodiscard]] bool reachable(topo::SwitchId sw, topo::HostId dst) const;

 private:
  std::vector<int> severed_;
  std::vector<char> severedMask_;  ///< [link index] -> severed?
  /// dist_[dstSwitch][sw] = hop distance over surviving links (-1 unreachable).
  std::vector<std::vector<int>> dist_;
  int vcs_;
};

}  // namespace sdt::routing
