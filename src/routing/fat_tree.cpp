#include "routing/fat_tree.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace sdt::routing {

namespace {
/// Solve 5(k/2)^2 == numSwitches for even k (cores + k*(k/2+k/2) pods).
int inferK(int numSwitches) {
  const double half = std::sqrt(static_cast<double>(numSwitches) / 5.0);
  const int k = static_cast<int>(std::lround(half * 2.0));
  if (k < 2 || k % 2 != 0) return -1;
  const int expected = (k / 2) * (k / 2) + k * k;
  return expected == numSwitches ? k : -1;
}
}  // namespace

FatTreeRouting::FatTreeRouting(const topo::Topology& topo, int k)
    : RoutingAlgorithm(topo), k_(k) {
  portTo_.resize(static_cast<std::size_t>(topo.numSwitches()));
  for (int li = 0; li < topo.numLinks(); ++li) {
    const topo::Link& link = topo.link(li);
    portTo_[link.a.sw].emplace_back(link.b.sw, link.a.port);
    portTo_[link.b.sw].emplace_back(link.a.sw, link.b.port);
  }
}

Result<std::unique_ptr<FatTreeRouting>> FatTreeRouting::create(const topo::Topology& topo) {
  const int k = inferK(topo.numSwitches());
  if (k < 0) {
    return makeError(strFormat("topology '%s' (%d switches) is not a standard fat-tree",
                               topo.name().c_str(), topo.numSwitches()));
  }
  if (topo.numHosts() != k * k * k / 4) {
    return makeError(strFormat("fat-tree k=%d expects %d hosts, topology has %d", k,
                               k * k * k / 4, topo.numHosts()));
  }
  return std::unique_ptr<FatTreeRouting>(new FatTreeRouting(topo, k));
}

int FatTreeRouting::levelOf(topo::SwitchId sw) const {
  if (sw < numCore()) return 0;
  const int inPod = (sw - numCore()) % k_;
  return inPod < k_ / 2 ? 1 : 2;
}

int FatTreeRouting::podOf(topo::SwitchId sw) const {
  if (sw < numCore()) return -1;
  return (sw - numCore()) / k_;
}

Result<topo::PortId> FatTreeRouting::portToward(topo::SwitchId sw,
                                                topo::SwitchId neighbor) const {
  for (const auto& [peer, port] : portTo_[sw]) {
    if (peer == neighbor) return port;
  }
  return makeError(strFormat("fattree: no link %d -> %d", sw, neighbor));
}

std::vector<topo::PortId> FatTreeRouting::upCandidates(topo::SwitchId sw,
                                                       topo::HostId dst) const {
  std::vector<topo::PortId> out;
  const int level = levelOf(sw);
  const topo::SwitchId target = topo_->hostSwitch(dst);
  if (level == 2) {
    // Up to any aggregation switch of this pod — unless dst is local,
    // which nextHop never asks about.
    for (const auto& [peer, port] : portTo_[sw]) {
      if (levelOf(peer) == 1) out.push_back(port);
    }
  } else if (level == 1 && podOf(sw) != podOf(target)) {
    for (const auto& [peer, port] : portTo_[sw]) {
      if (levelOf(peer) == 0) out.push_back(port);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<Hop> FatTreeRouting::nextHop(topo::SwitchId sw, topo::HostId dst, int vc,
                                    std::uint64_t flowHash) const {
  const topo::SwitchId target = topo_->hostSwitch(dst);
  const int level = levelOf(sw);
  const int dstPod = podOf(target);

  if (level == 0) {
    // Core: descend to the (unique) aggregation switch of dst's pod.
    for (const auto& [peer, port] : portTo_[sw]) {
      if (podOf(peer) == dstPod) return Hop{port, vc};
    }
    return makeError(strFormat("fattree: core %d cannot reach pod %d", sw, dstPod));
  }
  if (level == 1) {
    if (podOf(sw) == dstPod) {
      // Descend to dst's edge switch.
      auto port = portToward(sw, target);
      if (!port) return port.error();
      return Hop{port.value(), vc};
    }
    const auto ups = upCandidates(sw, dst);
    if (ups.empty()) return makeError("fattree: aggregation switch has no core uplinks");
    return Hop{ups[flowHash % ups.size()], vc};
  }
  // Edge: if the destination hangs off another edge switch, go up.
  const auto ups = upCandidates(sw, dst);
  if (ups.empty()) return makeError("fattree: edge switch has no aggregation uplinks");
  return Hop{ups[flowHash % ups.size()], vc};
}

}  // namespace sdt::routing
